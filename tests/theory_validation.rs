//! Integration tests validating the paper's analysis (Sec. V) against
//! simulation at moderate scale.

use mec_location_privacy::core::detector::MlDetector;
use mec_location_privacy::core::metrics::{time_average, tracking_accuracy_series};
use mec_location_privacy::core::strategy::{ChaffStrategy, CmlStrategy, ImStrategy, MoStrategy};
use mec_location_privacy::core::theory::{
    im_tracking_accuracy, ml_tracking_accuracy, CmlProductChain, TheoremV4Bound, TheoremV5Bound,
};
use mec_location_privacy::markov::{models::ModelKind, MarkovChain};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn model(kind: ModelKind, seed: u64) -> MarkovChain {
    let mut rng = StdRng::seed_from_u64(seed);
    MarkovChain::new(kind.build(10, &mut rng).unwrap()).unwrap()
}

/// Mean accuracy of the random-guess eavesdropper under IM — the quantity
/// eq. (11) computes exactly.
fn simulate_im_random_guess(chain: &MarkovChain, n: usize, runs: usize, horizon: usize) -> f64 {
    use rand::Rng;
    let mut rng = StdRng::seed_from_u64(77);
    let mut total = 0.0;
    for _ in 0..runs {
        let user = chain.sample_trajectory(horizon, &mut rng);
        let guess = rng.random_range(0..n);
        total += if guess == 0 {
            1.0
        } else {
            let chaff = chain.sample_trajectory(horizon, &mut rng);
            user.coincidences(&chaff) as f64 / horizon as f64
        };
    }
    total / runs as f64
}

#[test]
fn equation_11_exact_for_random_guess_detector() {
    for kind in ModelKind::ALL {
        let chain = model(kind, 1);
        for n in [2, 5, 10] {
            let formula = im_tracking_accuracy(chain.initial(), n);
            let sim = simulate_im_random_guess(&chain, n, 600, 60);
            assert!(
                (formula - sim).abs() < 0.05,
                "{kind} N={n}: formula {formula} vs sim {sim}"
            );
        }
    }
}

#[test]
fn equation_12_exact_for_ml_strategy() {
    for kind in ModelKind::ALL {
        let chain = model(kind, 2);
        let horizon = 60;
        let formula = ml_tracking_accuracy(&chain, horizon).unwrap();
        // Simulate: the chaff follows the fixed ML trajectory; accuracy is
        // the co-location rate (the detector always picks the chaff or
        // ties with an identical-likelihood user prefix; over long runs
        // the difference is the tie correction, which vanishes).
        let mut rng = StdRng::seed_from_u64(3);
        let strategy = mec_location_privacy::core::strategy::MlStrategy;
        let mut total = 0.0;
        let runs = 400;
        for _ in 0..runs {
            let user = chain.sample_trajectory(horizon, &mut rng);
            let chaff = &strategy.generate(&chain, &user, 1, &mut rng).unwrap()[0];
            total += user.coincidences(chaff) as f64 / horizon as f64;
        }
        let sim = total / runs as f64;
        assert!(
            (formula - sim).abs() < 0.05,
            "{kind}: formula {formula} vs sim {sim}"
        );
    }
}

#[test]
fn theorem_v4_bound_dominates_simulated_cml_accuracy() {
    // Where the hypothesis holds, the bound must upper-bound the simulated
    // CML tracking accuracy at matching horizons (it is loose, so this is
    // a weak but genuine check of the inequality's direction).
    let chain = model(ModelKind::NonSkewed, 4);
    let bound = TheoremV4Bound::compute(&chain, 0.01, 10_000).unwrap();
    assert!(bound.hypothesis_holds());
    let mut rng = StdRng::seed_from_u64(5);
    for horizon in [50usize, 100] {
        let mut total = 0.0;
        let runs = 100;
        for _ in 0..runs {
            let user = chain.sample_trajectory(horizon, &mut rng);
            let chaff = CmlStrategy.generate(&chain, &user, 1, &mut rng).unwrap();
            let mut observed = vec![user];
            observed.extend(chaff);
            let detections = MlDetector.detect_prefixes(&chain, &observed).unwrap();
            total += time_average(&tracking_accuracy_series(&observed, 0, &detections));
        }
        let sim = total / runs as f64;
        let b = bound.evaluate(horizon).unwrap_or(1.0);
        assert!(sim <= b + 0.05, "horizon {horizon}: sim {sim} > bound {b}");
    }
}

#[test]
fn product_chain_drift_predicts_entropy_ordering() {
    // The information-theoretic reading of Theorem V.4: E[ct] =
    // H(chaff) - H(user). The user's entropy rate must exceed the CML
    // chaff's expected step log-loss for the drift to be negative.
    use mec_location_privacy::markov::entropy::entropy_rate;
    let chain = model(ModelKind::NonSkewed, 6);
    let product = CmlProductChain::build(&chain).unwrap();
    let user_entropy = entropy_rate(chain.matrix(), chain.initial());
    // E[user step loglik] = -H(user); E[ct] = E[user] - E[chaff steps].
    let chaff_step_loglik = -user_entropy - product.expected_ct();
    assert!(
        chaff_step_loglik > -user_entropy,
        "the chaff must be more predictable than the user: chaff {chaff_step_loglik} vs user {}",
        -user_entropy
    );
    assert!(product.expected_ct() < 0.0);
}

#[test]
fn theorem_v5_bound_dominates_simulated_mo_accuracy() {
    let chain = model(ModelKind::NonSkewed, 7);
    let mut rng = StdRng::seed_from_u64(8);
    let bound = TheoremV5Bound::estimate(&chain, 0.01, 40, 150, &mut rng).unwrap();
    if bound.mu_prime <= 0.0 {
        return; // hypothesis fails for this draw; nothing to check
    }
    // Simulated per-slot accuracy at a horizon where the bound applies.
    let horizon = 400;
    let Some(b) = bound.per_slot(horizon) else {
        return;
    };
    let mut total = 0.0;
    let runs = 60;
    for _ in 0..runs {
        let user = chain.sample_trajectory(horizon, &mut rng);
        let chaff = MoStrategy.generate(&chain, &user, 1, &mut rng).unwrap();
        let mut observed = vec![user];
        observed.extend(chaff);
        let detections = MlDetector.detect_prefixes(&chain, &observed).unwrap();
        let series = tracking_accuracy_series(&observed, 0, &detections);
        total += series[horizon - 1];
    }
    let sim = total / runs as f64;
    assert!(sim <= b + 0.05, "sim {sim} > bound {b}");
}

#[test]
fn im_with_many_chaffs_approaches_collision_floor() {
    // Lemma V.1 remark: IM accuracy floors at the collision probability,
    // never zero.
    let chain = model(ModelKind::SpatiallySkewed, 9);
    let floor = chain.initial().collision_probability();
    let mut rng = StdRng::seed_from_u64(10);
    let mut total = 0.0;
    let runs = 60;
    for _ in 0..runs {
        let user = chain.sample_trajectory(60, &mut rng);
        let chaffs = ImStrategy.generate(&chain, &user, 29, &mut rng).unwrap();
        let mut observed = vec![user];
        observed.extend(chaffs);
        let detections = MlDetector.detect_prefixes(&chain, &observed).unwrap();
        total += time_average(&tracking_accuracy_series(&observed, 0, &detections));
    }
    let sim = total / runs as f64;
    assert!(
        sim >= floor * 0.8,
        "IM cannot go below its floor: sim {sim}, floor {floor}"
    );
}

//! Cross-crate integration tests: the full system loop from mobility
//! model through MEC simulation to detection and metrics.

use mec_location_privacy::core::detector::{AdvancedDetector, MlDetector};
use mec_location_privacy::core::metrics::{time_average, tracking_accuracy_series};
use mec_location_privacy::core::strategy::{ChaffStrategy, ImStrategy, MoStrategy, OoStrategy};
use mec_location_privacy::markov::{models::ModelKind, MarkovChain};
use mec_location_privacy::mobility::pipeline::TraceDatasetBuilder;
use mec_location_privacy::sim::sim::{SimConfig, Simulation};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn chain(seed: u64) -> MarkovChain {
    let mut rng = StdRng::seed_from_u64(seed);
    MarkovChain::new(ModelKind::NonSkewed.build(10, &mut rng).unwrap()).unwrap()
}

#[test]
fn sim_observation_log_equals_direct_strategy_output() {
    // Running the MEC simulator with a deterministic strategy must produce
    // exactly the trajectories the strategy emits standalone: the
    // simulator adds system mechanics, not noise.
    let c = chain(1);
    let mut sim_rng = StdRng::seed_from_u64(2);
    let outcome = Simulation::new(&c, SimConfig::new(60, 1).without_anonymization())
        .run_planned(&OoStrategy, &mut sim_rng)
        .unwrap();
    let mut direct_rng = StdRng::seed_from_u64(3);
    let direct = OoStrategy
        .generate(&c, &outcome.user_cells, 1, &mut direct_rng)
        .unwrap();
    assert_eq!(outcome.observed[1], direct[0]);
}

#[test]
fn anonymization_does_not_change_tracking_accuracy() {
    // The ML detector is order-invariant and our metrics average over
    // ties, so the shuffled and unshuffled logs must score identically.
    let c = chain(4);
    for seed in 0..10 {
        let mut rng_a = StdRng::seed_from_u64(100 + seed);
        let mut rng_b = StdRng::seed_from_u64(100 + seed);
        let shuffled = Simulation::new(&c, SimConfig::new(40, 3))
            .run_planned(&ImStrategy, &mut rng_a)
            .unwrap();
        let ordered = Simulation::new(&c, SimConfig::new(40, 3).without_anonymization())
            .run_planned(&ImStrategy, &mut rng_b)
            .unwrap();
        let score = |observed: &[mec_location_privacy::markov::Trajectory], user: usize| {
            let detections = MlDetector.detect_prefixes(&c, observed).unwrap();
            time_average(&tracking_accuracy_series(observed, user, &detections))
        };
        let a = score(&shuffled.observed, shuffled.user_observed_index);
        let b = score(&ordered.observed, 0);
        assert!((a - b).abs() < 1e-12, "seed {seed}: {a} vs {b}");
    }
}

#[test]
fn trace_pipeline_feeds_strategies_end_to_end() {
    // Synthetic fleet -> Voronoi cells -> empirical model -> chaffs for a
    // protected user -> detection. Every stage must compose.
    let dataset = TraceDatasetBuilder::new()
        .num_nodes(25)
        .num_towers(200)
        .horizon_slots(30)
        .seed(42)
        .build()
        .unwrap();
    let model = dataset.model();
    let pool = dataset.trajectories();
    let user = 0;
    let mut rng = StdRng::seed_from_u64(5);
    for strategy in [&OoStrategy as &dyn ChaffStrategy, &MoStrategy, &ImStrategy] {
        let chaffs = strategy.generate(model, &pool[user], 2, &mut rng).unwrap();
        let mut observed = pool.to_vec();
        observed.extend(chaffs);
        let detections = MlDetector.detect_prefixes(model, &observed).unwrap();
        let accuracy = time_average(&tracking_accuracy_series(&observed, user, &detections));
        assert!((0.0..=1.0).contains(&accuracy), "{}", strategy.name());
    }
}

#[test]
fn oo_chaff_from_sim_defeats_basic_but_not_advanced_eavesdropper() {
    let c = chain(6);
    let mut basic_total = 0.0;
    let mut advanced_total = 0.0;
    let runs = 30;
    for seed in 0..runs {
        let mut rng = StdRng::seed_from_u64(200 + seed);
        let outcome = Simulation::new(&c, SimConfig::new(50, 1))
            .run_planned(&OoStrategy, &mut rng)
            .unwrap();
        let user = outcome.user_observed_index;
        let basic = MlDetector.detect_prefixes(&c, &outcome.observed).unwrap();
        basic_total += time_average(&tracking_accuracy_series(&outcome.observed, user, &basic));
        let detector = AdvancedDetector::new(&OoStrategy);
        let advanced = detector.detect_prefixes(&c, &outcome.observed).unwrap();
        advanced_total += time_average(&tracking_accuracy_series(
            &outcome.observed,
            user,
            &advanced,
        ));
    }
    let basic = basic_total / runs as f64;
    let advanced = advanced_total / runs as f64;
    assert!(basic < 0.2, "basic eavesdropper should lose: {basic}");
    assert!(
        advanced > 0.9,
        "advanced eavesdropper should win: {advanced}"
    );
}

#[test]
fn capacity_constraints_still_produce_usable_observations() {
    // With tight capacity the chaffs get displaced, but the observation
    // log stays well-formed and the detector still runs.
    let c = chain(7);
    let mut rng = StdRng::seed_from_u64(8);
    let outcome = Simulation::new(&c, SimConfig::new(30, 4).with_capacity(1))
        .run_planned(&ImStrategy, &mut rng)
        .unwrap();
    assert_eq!(outcome.observed.len(), 5);
    let detections = MlDetector.detect_prefixes(&c, &outcome.observed).unwrap();
    assert_eq!(detections.len(), 30);
    // Capacity 1 means perfect anti-co-location: accuracy equals
    // detection accuracy of the user's own trajectory.
    let tracking =
        tracking_accuracy_series(&outcome.observed, outcome.user_observed_index, &detections);
    let detection: Vec<f64> = detections
        .iter()
        .map(|d| d.prob_of(outcome.user_observed_index))
        .collect();
    assert_eq!(tracking, detection);
}

#[test]
fn facade_reexports_are_usable() {
    // The root crate must expose every layer under one namespace.
    use mec_location_privacy::{core, eval, markov, mobility, sim};
    let _ = markov::CellId::new(0);
    let _ = core::strategy::StrategyKind::Oo;
    let _ = mobility::geo::BoundingBox::san_francisco();
    let _ = sim::cost::CostModel::default();
    let _ = eval::experiments::SyntheticConfig::quick();
}

#[test]
fn facade_smoke_chain_sim_detect() {
    // Workspace bootstrap smoke test, entirely through the facade paths:
    // build a chain from `::markov`, simulate an observation log with
    // `::sim`, and run a `::core` detector over it.
    use mec_location_privacy::core::detector::MlDetector;
    use mec_location_privacy::markov::{models::ModelKind, MarkovChain};
    use mec_location_privacy::sim::sim::{SimConfig, Simulation};

    let mut rng = StdRng::seed_from_u64(9);
    let chain = MarkovChain::new(ModelKind::NonSkewed.build(8, &mut rng).unwrap()).unwrap();
    let outcome = Simulation::new(&chain, SimConfig::new(25, 2))
        .run_planned(&MoStrategy, &mut rng)
        .unwrap();
    assert_eq!(outcome.observed.len(), 3); // user + 2 chaffs

    let detection = MlDetector.detect(&chain, &outcome.observed).unwrap();
    assert!(!detection.tie_set().is_empty());
    assert!(detection.tie_set().iter().all(|&i| i < 3));
}

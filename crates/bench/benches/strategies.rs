//! Chaff-strategy complexity ablations.
//!
//! The paper quotes `O(T L²)` for the ML strategy's shortest path and
//! `O(T² L²)` for the OO dynamic program; the online strategies are
//! `O(T·s)`. These benches verify the scaling empirically and quantify
//! two implementation choices called out in DESIGN.md: iterating sparse
//! row supports, and the layered DP versus the paper's Dijkstra for the
//! trellis shortest path.

use chaff_bench::{fixture_chain, fixture_user};
use chaff_core::strategy::{
    ChaffStrategy, CmlStrategy, MlStrategy, MoStrategy, OoStrategy, RolloutStrategy,
};
use chaff_core::trellis;
use chaff_markov::models::ModelKind;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;
use std::time::Duration;

/// Strategy cost as the horizon grows (OO should scale quadratically,
/// the others linearly).
fn bench_strategies_vs_horizon(c: &mut Criterion) {
    let chain = fixture_chain(ModelKind::NonSkewed, 10, 1);
    let mut group = c.benchmark_group("strategy_vs_horizon");
    for horizon in [25usize, 50, 100, 200] {
        let user = fixture_user(&chain, horizon, 2);
        group.bench_with_input(BenchmarkId::new("ML", horizon), &horizon, |b, _| {
            let mut rng = StdRng::seed_from_u64(3);
            b.iter(|| {
                MlStrategy
                    .generate(&chain, black_box(&user), 1, &mut rng)
                    .unwrap()
            })
        });
        group.bench_with_input(BenchmarkId::new("OO", horizon), &horizon, |b, _| {
            let mut rng = StdRng::seed_from_u64(3);
            b.iter(|| {
                OoStrategy
                    .generate(&chain, black_box(&user), 1, &mut rng)
                    .unwrap()
            })
        });
        group.bench_with_input(BenchmarkId::new("MO", horizon), &horizon, |b, _| {
            let mut rng = StdRng::seed_from_u64(3);
            b.iter(|| {
                MoStrategy
                    .generate(&chain, black_box(&user), 1, &mut rng)
                    .unwrap()
            })
        });
        group.bench_with_input(BenchmarkId::new("CML", horizon), &horizon, |b, _| {
            let mut rng = StdRng::seed_from_u64(3);
            b.iter(|| {
                CmlStrategy
                    .generate(&chain, black_box(&user), 1, &mut rng)
                    .unwrap()
            })
        });
    }
    group.finish();
}

/// Strategy cost as the cell count grows.
fn bench_strategies_vs_cells(c: &mut Criterion) {
    let mut group = c.benchmark_group("strategy_vs_cells");
    for cells in [10usize, 25, 50, 100] {
        let chain = fixture_chain(ModelKind::NonSkewed, cells, 4);
        let user = fixture_user(&chain, 50, 5);
        group.bench_with_input(BenchmarkId::new("OO", cells), &cells, |b, _| {
            let mut rng = StdRng::seed_from_u64(6);
            b.iter(|| {
                OoStrategy
                    .generate(&chain, black_box(&user), 1, &mut rng)
                    .unwrap()
            })
        });
        group.bench_with_input(BenchmarkId::new("ML", cells), &cells, |b, _| {
            let mut rng = StdRng::seed_from_u64(6);
            b.iter(|| {
                MlStrategy
                    .generate(&chain, black_box(&user), 1, &mut rng)
                    .unwrap()
            })
        });
    }
    group.finish();
}

/// Dense (model a) versus sparse (model d) rows: the sparse-support
/// iteration that makes trace-scale OO tractable.
fn bench_dense_vs_sparse(c: &mut Criterion) {
    let mut group = c.benchmark_group("oo_dense_vs_sparse");
    let dense = fixture_chain(ModelKind::NonSkewed, 50, 7);
    let sparse = fixture_chain(ModelKind::SpatioTemporallySkewed, 50, 7);
    let user_dense = fixture_user(&dense, 80, 8);
    let user_sparse = fixture_user(&sparse, 80, 8);
    group.bench_function("dense_rows", |b| {
        let mut rng = StdRng::seed_from_u64(9);
        b.iter(|| {
            OoStrategy
                .generate(&dense, black_box(&user_dense), 1, &mut rng)
                .unwrap()
        })
    });
    group.bench_function("sparse_rows", |b| {
        let mut rng = StdRng::seed_from_u64(9);
        b.iter(|| {
            OoStrategy
                .generate(&sparse, black_box(&user_sparse), 1, &mut rng)
                .unwrap()
        })
    });
    group.finish();
}

/// Layered DP versus the paper's Dijkstra on the trellis.
fn bench_trellis_solvers(c: &mut Criterion) {
    let chain = fixture_chain(ModelKind::NonSkewed, 25, 10);
    let mut group = c.benchmark_group("trellis_solver");
    for horizon in [50usize, 200] {
        group.bench_with_input(
            BenchmarkId::new("layered_dp", horizon),
            &horizon,
            |b, &h| b.iter(|| trellis::most_likely_trajectory(&chain, black_box(h), None).unwrap()),
        );
        group.bench_with_input(BenchmarkId::new("dijkstra", horizon), &horizon, |b, &h| {
            b.iter(|| trellis::most_likely_trajectory_dijkstra(&chain, black_box(h), None).unwrap())
        });
    }
    group.finish();
}

/// The MDP-lookahead extension against plain myopia.
fn bench_rollout_vs_mo(c: &mut Criterion) {
    let chain = fixture_chain(ModelKind::SpatiallySkewed, 10, 11);
    let user = fixture_user(&chain, 60, 12);
    let mut group = c.benchmark_group("rollout_vs_mo");
    group.bench_function("MO", |b| {
        let mut rng = StdRng::seed_from_u64(13);
        b.iter(|| {
            MoStrategy
                .generate(&chain, black_box(&user), 1, &mut rng)
                .unwrap()
        })
    });
    for samples in [4usize, 16] {
        group.bench_with_input(BenchmarkId::new("rollout", samples), &samples, |b, &s| {
            let strategy = RolloutStrategy { samples: s };
            let mut rng = StdRng::seed_from_u64(13);
            b.iter(|| {
                strategy
                    .generate(&chain, black_box(&user), 1, &mut rng)
                    .unwrap()
            })
        });
    }
    group.finish();
}

fn configured() -> Criterion {
    Criterion::default()
        .sample_size(20)
        .measurement_time(Duration::from_secs(3))
        .warm_up_time(Duration::from_millis(500))
}

criterion_group! {
    name = strategies;
    config = configured();
    targets =
        bench_strategies_vs_horizon,
        bench_strategies_vs_cells,
        bench_dense_vs_sparse,
        bench_trellis_solvers,
        bench_rollout_vs_mo,
}
criterion_main!(strategies);

//! Detector benchmarks: the `O(N·T)` ML detector (eq. 1) and the
//! strategy-aware advanced detector (Sec. VI-A), whose cost is dominated
//! by evaluating the strategy map `Γ` per observed trajectory.

use chaff_bench::{fixture_chain, fixture_user};
use chaff_core::detector::{AdvancedDetector, MlDetector};
use chaff_core::strategy::{ChaffStrategy, ImStrategy, MlStrategy, MoStrategy, OoStrategy};
use chaff_markov::models::ModelKind;
use chaff_markov::Trajectory;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;
use std::time::Duration;

fn observations(n: usize, horizon: usize) -> (chaff_markov::MarkovChain, Vec<Trajectory>) {
    let chain = fixture_chain(ModelKind::NonSkewed, 10, 21);
    let user = fixture_user(&chain, horizon, 22);
    let mut rng = StdRng::seed_from_u64(23);
    let mut observed = vec![user.clone()];
    observed.extend(ImStrategy.generate(&chain, &user, n - 1, &mut rng).unwrap());
    (chain, observed)
}

/// Full-trajectory detection as the number of observed services grows.
fn bench_ml_detector_vs_n(c: &mut Criterion) {
    let mut group = c.benchmark_group("ml_detector_vs_n");
    for n in [2usize, 10, 50, 200] {
        let (chain, observed) = observations(n, 100);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| MlDetector.detect(&chain, black_box(&observed)).unwrap())
        });
    }
    group.finish();
}

/// Per-slot prefix detection (the tracking-accuracy workhorse).
fn bench_prefix_detection(c: &mut Criterion) {
    let mut group = c.benchmark_group("prefix_detection");
    for horizon in [50usize, 100, 400] {
        let (chain, observed) = observations(10, horizon);
        group.bench_with_input(BenchmarkId::from_parameter(horizon), &horizon, |b, _| {
            b.iter(|| {
                MlDetector
                    .detect_prefixes(&chain, black_box(&observed))
                    .unwrap()
            })
        });
    }
    group.finish();
}

/// The advanced detector's cost per strategy map: MO and ML maps are
/// cheap, the OO map runs a full dynamic program per trajectory.
fn bench_advanced_detector_maps(c: &mut Criterion) {
    let (chain, observed) = observations(5, 60);
    let mut group = c.benchmark_group("advanced_detector_map");
    let strategies: [(&str, &dyn ChaffStrategy); 3] = [
        ("ML", &MlStrategy),
        ("MO", &MoStrategy),
        ("OO", &OoStrategy),
    ];
    for (name, strategy) in strategies {
        group.bench_function(name, |b| {
            let detector = AdvancedDetector::new(strategy);
            b.iter(|| detector.detect(&chain, black_box(&observed)).unwrap())
        });
    }
    group.finish();
}

fn configured() -> Criterion {
    Criterion::default()
        .sample_size(30)
        .measurement_time(Duration::from_secs(3))
        .warm_up_time(Duration::from_millis(500))
}

criterion_group! {
    name = detectors;
    config = configured();
    targets =
        bench_ml_detector_vs_n,
        bench_prefix_detection,
        bench_advanced_detector_maps,
}
criterion_main!(detectors);

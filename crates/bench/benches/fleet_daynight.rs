//! Day/night commuter fleet benchmarks (time-varying-mobility tentpole).
//!
//! Tracks what the epoch dimension costs on the fleet hot paths at
//! `N = 10⁴`: (a) simulating a chaffed commuter fleet from epoch-active
//! chains (`simulate` — per-slot chain selection rides the existing
//! SplitMix64 lanes), and (b) scoring the same observed grid under the
//! schedule-aware detector against the stationary mixture
//! (`detect/epoch_aware` vs `detect/stationary` — table switching is a
//! per-slot pointer swap, so the two should track each other). CI
//! archives the records next to the other fleet groups and gates them
//! with `ci/compare_bench.py`; the records carry an `epochs` metadata
//! key so a baseline produced under a different schedule shape reads as
//! a fixture change.

use chaff_bench::record_bench_metadata_with;
use chaff_core::detector::{BatchPrefixDetector, DetectInput, DetectModel};
use chaff_eval::experiments::fleet_daynight::{build_registries, DayNightConfig};
use chaff_sim::fleet::{FleetChaffPolicy, FleetChaffStrategy, FleetConfig, FleetSimulation};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use std::time::Duration;

const USERS: usize = 10_000;
const BUDGET: usize = 1;

fn daynight_config() -> DayNightConfig {
    let mut config = DayNightConfig::default();
    config.num_users = USERS;
    config
}

/// Simulate the chaffed commuter fleet from the epoch-active chains.
fn bench_simulate(c: &mut Criterion) {
    let config = daynight_config();
    let (aware, _) = build_registries(&config).expect("registries");
    let policy = FleetChaffPolicy::uniform(FleetChaffStrategy::Im, BUDGET);
    let mut group = c.benchmark_group("fleet_daynight/simulate");
    group.bench_with_input(BenchmarkId::from_parameter(USERS), &USERS, |b, &n| {
        b.iter(|| {
            FleetSimulation::with_registry(
                &aware,
                FleetConfig::new(n, config.horizon()).with_seed(black_box(1709)),
            )
            .run_chaffed(&policy)
            .expect("fleet")
        })
    });
    group.finish();
}

/// Score one observed commuter grid under both adversary models.
fn bench_detect(c: &mut Criterion) {
    let config = daynight_config();
    let (aware, stationary) = build_registries(&config).expect("registries");
    let policy = FleetChaffPolicy::uniform(FleetChaffStrategy::Im, BUDGET);
    let outcome = FleetSimulation::with_registry(
        &aware,
        FleetConfig::new(USERS, config.horizon()).with_seed(1709),
    )
    .run_chaffed(&policy)
    .expect("fleet");
    let detector = BatchPrefixDetector::new();
    let mut group = c.benchmark_group("fleet_daynight/detect");
    group.bench_function(BenchmarkId::new("epoch_aware", USERS), |b| {
        b.iter(|| {
            detector
                .detect_prefixes(DetectInput::new(
                    DetectModel::Schedule(&aware),
                    black_box(&outcome.observed),
                ))
                .expect("detection")
        })
    });
    group.bench_function(BenchmarkId::new("stationary", USERS), |b| {
        b.iter(|| {
            detector
                .detect_prefixes(DetectInput::new(&stationary, black_box(&outcome.observed)))
                .expect("detection")
        })
    });
    group.finish();
}

fn bench_metadata(_c: &mut Criterion) {
    let config = daynight_config();
    let schedule = chaff_markov::EpochSchedule::day_night(config.day_slots, config.night_slots)
        .expect("schedule");
    record_bench_metadata_with(&[("epochs", schedule.num_epochs() as u64)]);
}

fn configured() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(Duration::from_secs(5))
        .warm_up_time(Duration::from_millis(500))
}

criterion_group! {
    name = fleet_daynight;
    config = configured();
    targets =
        bench_simulate,
        bench_detect,
        bench_metadata,
}
criterion_main!(fleet_daynight);

//! Fleet-scale detection benchmarks: the batched, sharded
//! `BatchPrefixDetector` against the per-trajectory `MlDetector` path at
//! `N = 1,000` and `N = 10,000` trajectories (T = 100), plus the
//! end-to-end fleet pipeline (simulate + detect).
//!
//! The acceptance bar for the fleet engine is a ≥ 5× speedup of batch
//! over per-trajectory prefix detection at `N = 10,000` on multi-core
//! hosts; run with `CRITERION_JSON=BENCH_fleet.json` to archive the
//! numbers.

use chaff_bench::fixture_chain;
use chaff_core::detector::{BatchPrefixDetector, DetectInput, MlDetector};
use chaff_markov::models::ModelKind;
use chaff_markov::Trajectory;
use chaff_sim::fleet::{FleetConfig, FleetSimulation};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use std::time::Duration;

const HORIZON: usize = 100;

/// A synthetic fleet observation set: `n` i.i.d. users of one model.
fn fleet_observations(n: usize) -> (chaff_markov::MarkovChain, Vec<Trajectory>) {
    let chain = fixture_chain(ModelKind::NonSkewed, 10, 31);
    let outcome = FleetSimulation::new(&chain, FleetConfig::new(n, HORIZON).with_seed(32))
        .run_natural()
        .expect("valid fleet");
    (chain, outcome.observed.to_trajectories())
}

/// Per-trajectory prefix detection (the `MlDetector` reference path).
fn bench_prefix_single(c: &mut Criterion) {
    let mut group = c.benchmark_group("batch_detection/single");
    for n in [1_000usize, 10_000] {
        let (chain, observed) = fleet_observations(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                MlDetector
                    .detect_prefixes(&chain, black_box(&observed))
                    .unwrap()
            })
        });
    }
    group.finish();
}

/// Batched, sharded prefix detection (the fleet engine's detection core).
fn bench_prefix_batch(c: &mut Criterion) {
    let mut group = c.benchmark_group("batch_detection/batch");
    for n in [1_000usize, 10_000] {
        let (chain, observed) = fleet_observations(n);
        let detector = BatchPrefixDetector::new();
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                detector
                    .detect_prefixes(DetectInput::new(&chain, black_box(&observed)))
                    .unwrap()
            })
        });
    }
    group.finish();
}

/// Batched detection against a prebuilt likelihood table (the amortized
/// fleet-driver path).
fn bench_prefix_batch_cached_table(c: &mut Criterion) {
    let mut group = c.benchmark_group("batch_detection/batch_cached");
    for n in [1_000usize, 10_000] {
        let (chain, observed) = fleet_observations(n);
        let table = chain.log_likelihood_table();
        let detector = BatchPrefixDetector::new();
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                detector
                    .detect_prefixes(DetectInput::new(&table, black_box(&observed)))
                    .unwrap()
            })
        });
    }
    group.finish();
}

/// End-to-end fleet pipeline: simulate N users and detect.
fn bench_fleet_pipeline(c: &mut Criterion) {
    let chain = fixture_chain(ModelKind::NonSkewed, 10, 33);
    let mut group = c.benchmark_group("fleet_pipeline");
    for n in [1_000usize, 10_000] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| {
                let outcome =
                    FleetSimulation::new(&chain, FleetConfig::new(n, HORIZON).with_seed(34))
                        .run_natural()
                        .unwrap();
                BatchPrefixDetector::new()
                    .detect_prefixes(DetectInput::new(&chain, black_box(&outcome.observed)))
                    .unwrap()
            })
        });
    }
    group.finish();
}

fn configured() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(Duration::from_secs(5))
        .warm_up_time(Duration::from_millis(500))
}

criterion_group! {
    name = batch_detection;
    config = configured();
    targets =
        bench_prefix_single,
        bench_prefix_batch,
        bench_prefix_batch_cached_table,
        bench_fleet_pipeline,
}
criterion_main!(batch_detection);

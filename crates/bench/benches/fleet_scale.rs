//! Columnar fleet-store benchmarks: the `N = 10⁵` scaling rung.
//!
//! Tracks (a) columnar fleet generation straight into the sharded
//! arena, (b) the streaming columnar detection kernel over the grid,
//! and (c) the end-to-end chaffed pipeline at `N = 50,000`. Joins the
//! CI `BENCH_fleet` baseline: `ci/compare_bench.py` gates both
//! `mean_ns` and — via the criterion shim's per-benchmark `VmHWM`
//! watermark — `peak_rss_bytes`, so a memory regression in the columnar
//! store fails CI the same way a runtime regression does.

use chaff_bench::{fixture_chain, record_bench_metadata};
use chaff_core::detector::{BatchPrefixDetector, DetectInput};
use chaff_markov::models::ModelKind;
use chaff_sim::fleet::{FleetChaffPolicy, FleetChaffStrategy, FleetConfig, FleetSimulation};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use std::time::Duration;

/// Matches `chaff_eval::experiments::fleet_scale::SCALE_HORIZON`.
const HORIZON: usize = 24;
const USERS: usize = 50_000;

fn policy(budget: usize) -> FleetChaffPolicy {
    FleetChaffPolicy::uniform(FleetChaffStrategy::Im, budget)
}

/// Columnar fleet generation (no chaffs): N users into one sharded
/// arena, no per-trajectory allocations.
fn bench_simulate(c: &mut Criterion) {
    let chain = fixture_chain(ModelKind::NonSkewed, 10, 51);
    let mut group = c.benchmark_group("fleet_scale/simulate");
    group.bench_with_input(BenchmarkId::from_parameter(USERS), &USERS, |b, &n| {
        b.iter(|| {
            FleetSimulation::new(
                &chain,
                FleetConfig::new(n, HORIZON).with_seed(black_box(52)),
            )
            .run_natural()
            .unwrap()
        })
    });
    group.finish();
}

/// Streaming columnar detection over a prebuilt observation grid.
fn bench_detect_columnar(c: &mut Criterion) {
    let chain = fixture_chain(ModelKind::NonSkewed, 10, 53);
    let outcome = FleetSimulation::new(&chain, FleetConfig::new(USERS, HORIZON).with_seed(54))
        .run_natural()
        .expect("valid fleet");
    let table = chain.log_likelihood_table();
    let detector = BatchPrefixDetector::new();
    let mut group = c.benchmark_group("fleet_scale/detect_columnar");
    group.bench_with_input(BenchmarkId::from_parameter(USERS), &USERS, |b, _| {
        b.iter(|| {
            detector
                .detect_prefixes(DetectInput::new(&table, black_box(&outcome.observed)))
                .unwrap()
        })
    });
    group.finish();
}

/// End-to-end chaffed columnar pipeline: simulate N users at B = 2 and
/// detect over the 3N-service grid.
fn bench_pipeline(c: &mut Criterion) {
    let chain = fixture_chain(ModelKind::NonSkewed, 10, 55);
    let table = chain.log_likelihood_table();
    let mut group = c.benchmark_group("fleet_scale/pipeline");
    group.bench_with_input(BenchmarkId::from_parameter(USERS), &USERS, |b, &n| {
        b.iter(|| {
            let outcome = FleetSimulation::new(&chain, FleetConfig::new(n, HORIZON).with_seed(56))
                .run_chaffed(&policy(2))
                .unwrap();
            BatchPrefixDetector::new()
                .detect_prefixes(DetectInput::new(&[&table], black_box(&outcome.observed)))
                .unwrap()
        })
    });
    group.finish();
}

/// Stamps pool size and lane width into the baseline before any record.
fn bench_metadata(_c: &mut Criterion) {
    record_bench_metadata();
}

fn configured() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(Duration::from_secs(5))
        .warm_up_time(Duration::from_millis(500))
}

criterion_group! {
    name = fleet_scale;
    config = configured();
    targets =
        bench_metadata,
        bench_simulate,
        bench_detect_columnar,
        bench_pipeline,
}
criterion_main!(fleet_scale);

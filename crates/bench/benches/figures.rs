//! One benchmark per reproduced paper artifact.
//!
//! Each bench regenerates a figure/table at reduced Monte Carlo scale
//! (the statistical content is the same; only the averaging is shorter),
//! so regressions in the experiment pipelines are caught and the relative
//! cost of each artifact is visible.

use chaff_eval::experiments::{
    self, fig10, fig4, fig5, fig6, fig7, fig8, fig9, multiuser, table1, theory,
};
use chaff_markov::models::ModelKind;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::time::Duration;

fn bench_config() -> experiments::SyntheticConfig {
    experiments::SyntheticConfig {
        num_cells: 10,
        horizon: 50,
        runs: 20,
        seed: 1709,
    }
}

fn bench_trace_config() -> experiments::TraceConfig {
    experiments::TraceConfig {
        num_nodes: 30,
        num_towers: 250,
        horizon: 30,
        top_k: 2,
        im_runs: 2,
        seed: 1709,
    }
}

fn bench_table1_kl(c: &mut Criterion) {
    let config = bench_config();
    c.bench_function("table1_kl_skewness", |b| {
        b.iter(|| table1::run(black_box(&config)).unwrap())
    });
}

fn bench_fig4_stationary(c: &mut Criterion) {
    let config = bench_config();
    c.bench_function("fig4_stationary_distributions", |b| {
        b.iter(|| fig4::run_all(black_box(&config)).unwrap())
    });
}

fn bench_fig5_pipeline(c: &mut Criterion) {
    let config = bench_config();
    c.bench_function("fig5_basic_eavesdropper", |b| {
        b.iter(|| fig5::run(black_box(&config), ModelKind::NonSkewed).unwrap())
    });
}

fn bench_fig6_ct(c: &mut Criterion) {
    let config = bench_config();
    c.bench_function("fig6_ct_distribution", |b| {
        b.iter(|| fig6::run(black_box(&config), ModelKind::NonSkewed).unwrap())
    });
}

fn bench_fig7_advanced(c: &mut Criterion) {
    let mut config = bench_config();
    config.runs = 8; // the advanced detector maps are the dominant cost
    c.bench_function("fig7_advanced_eavesdropper", |b| {
        b.iter(|| fig7::run(black_box(&config), ModelKind::NonSkewed).unwrap())
    });
}

fn bench_fig8_pipeline(c: &mut Criterion) {
    let config = bench_trace_config();
    c.bench_function("fig8_trace_pipeline", |b| {
        b.iter(|| fig8::run(black_box(&config)).unwrap())
    });
}

fn bench_fig9_trace_detect(c: &mut Criterion) {
    let config = bench_trace_config();
    c.bench_function("fig9_trace_per_user", |b| {
        b.iter(|| fig9::run(black_box(&config)).unwrap())
    });
}

fn bench_fig10_advanced_trace(c: &mut Criterion) {
    let config = bench_trace_config();
    c.bench_function("fig10_advanced_trace", |b| {
        b.iter(|| fig10::run(black_box(&config)).unwrap())
    });
}

fn bench_theory_bounds(c: &mut Criterion) {
    let mut config = bench_config();
    config.runs = 10;
    c.bench_function("theory_bounds_table", |b| {
        b.iter(|| theory::run(black_box(&config)).unwrap())
    });
}

fn bench_multiuser(c: &mut Criterion) {
    let mut config = bench_config();
    config.runs = 10;
    c.bench_function("multiuser_extension", |b| {
        b.iter(|| multiuser::run(black_box(&config), ModelKind::NonSkewed).unwrap())
    });
}

fn configured() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(Duration::from_secs(5))
        .warm_up_time(Duration::from_secs(1))
}

criterion_group! {
    name = figures;
    config = configured();
    targets =
        bench_table1_kl,
        bench_fig4_stationary,
        bench_fig5_pipeline,
        bench_fig6_ct,
        bench_fig7_advanced,
        bench_fig8_pipeline,
        bench_fig9_trace_detect,
        bench_fig10_advanced_trace,
        bench_theory_bounds,
        bench_multiuser,
}
criterion_main!(figures);

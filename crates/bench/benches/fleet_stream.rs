//! Streaming-engine benchmarks: per-slot step latency at scale.
//!
//! The batch benches measure whole-run throughput; an online observer
//! cares about the latency of *one slot* — draw/ingest, chaff, ring
//! push, incremental detection — and especially its tail, since one
//! slow slot stalls the live window. Each `iter` sample here is a
//! single [`StreamingFleetEngine::step`], so the criterion shim's
//! `p50_ns`/`p95_ns`/`p99_ns` fields are exactly the per-slot latency
//! percentiles, and the CI `BENCH_fleet` gate (`ci/compare_bench.py`)
//! fails on a >25% p99 regression the same way it does for `mean_ns`
//! and `peak_rss_bytes`.
//!
//! The engines are built with a horizon far beyond what the time
//! budget can consume, so the routine never hits the end-of-horizon
//! path mid-measurement; streaming state is horizon-independent, so
//! the oversized horizon costs nothing. Each bench function builds its
//! engine **once** and pre-warms it past the slot-ring depth before
//! handing it to the measurement loop, so every measured sample is a
//! steady-state step — construction, first-touch faulting and the
//! ring's initial buffer growth never contaminate the percentiles.

use chaff_bench::{fixture_chain, record_bench_metadata};
use chaff_markov::models::ModelKind;
use chaff_sim::fleet::{FleetChaffPolicy, FleetChaffStrategy, FleetConfig};
use chaff_sim::streaming::StreamingFleetEngine;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use std::time::Duration;

/// Far more slots than the measurement budget can step through.
const BENCH_HORIZON: usize = 1_000_000;

/// Per-slot step at the acceptance rung, chaffed: N = 10⁵ users at
/// B = 2, i.e. 300,000 observed services per slot.
fn bench_step_chaffed(c: &mut Criterion) {
    let chain = fixture_chain(ModelKind::NonSkewed, 10, 61);
    let policy = FleetChaffPolicy::uniform(FleetChaffStrategy::Im, 2);
    let users = 100_000usize;
    let mut engine = StreamingFleetEngine::new(
        &chain,
        FleetConfig::new(users, BENCH_HORIZON).with_seed(62),
        &policy,
    )
    .expect("valid streaming config");
    prewarm(&mut engine);
    let mut group = c.benchmark_group("fleet_stream/step_chaffed");
    group.bench_with_input(BenchmarkId::from_parameter(users), &users, |b, _| {
        b.iter(|| black_box(engine.step().unwrap()))
    });
    group.finish();
}

/// Per-slot step at the million-user rung (undefended): the acceptance
/// latency-percentile surface for N = 10⁶.
fn bench_step_million(c: &mut Criterion) {
    let chain = fixture_chain(ModelKind::NonSkewed, 10, 63);
    let policy = FleetChaffPolicy::uniform(FleetChaffStrategy::Im, 0);
    let users = 1_000_000usize;
    let mut engine = StreamingFleetEngine::new(
        &chain,
        FleetConfig::new(users, BENCH_HORIZON).with_seed(64),
        &policy,
    )
    .expect("valid streaming config");
    prewarm(&mut engine);
    let mut group = c.benchmark_group("fleet_stream/step");
    group.bench_with_input(BenchmarkId::from_parameter(users), &users, |b, _| {
        b.iter(|| black_box(engine.step().unwrap()))
    });
    group.finish();
}

/// Steps the shared engine past its slot-ring depth outside measurement:
/// the ring recycles buffers only once full, so the first `ring_depth`
/// steps allocate where every later step does not. After this, the
/// measured routine is pure steady-state — no construction, no buffer
/// growth — and `p99_ns` is the per-slot tail, not a setup artifact.
fn prewarm(engine: &mut StreamingFleetEngine) {
    for _ in 0..=engine.ring_depth() {
        engine
            .step()
            .expect("pre-warm step")
            .expect("horizon covers pre-warm");
    }
}

/// Stamps pool size and lane width into the baseline before any record.
fn bench_metadata(_c: &mut Criterion) {
    record_bench_metadata();
}

fn configured() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(Duration::from_secs(5))
        .warm_up_time(Duration::from_millis(500))
}

criterion_group! {
    name = fleet_stream;
    config = configured();
    targets =
        bench_metadata,
        bench_step_chaffed,
        bench_step_million,
}
criterion_main!(fleet_stream);

//! Defender–detector equilibrium benchmarks (ISSUE 9).
//!
//! Tracks the two costs the adaptive-budget loop adds on top of the
//! existing fleet pipeline: (a) one best-response re-apportionment of
//! the fleet-wide total at `N = 10⁴` users (`adapt_step` — pure
//! arithmetic, no simulation), and (b) one full best-response epoch at
//! a smaller fleet — simulate under the adaptive policy, detect,
//! bridge detections into [`AccuracyFeedback`], adapt (`epoch`). CI
//! archives the results next to the other fleet groups and fails on
//! >25% regressions (see `ci/compare_bench.py`).

use chaff_bench::fixture_chain;
use chaff_core::detector::{AccuracyFeedback, BatchPrefixDetector, DetectInput};
use chaff_markov::models::ModelKind;
use chaff_sim::fleet::{FleetChaffPolicy, FleetChaffStrategy, FleetConfig, FleetSimulation};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use std::time::Duration;

const ADAPT_USERS: usize = 10_000;
const EPOCH_USERS: usize = 500;
const HORIZON: usize = 20;

/// A deterministic synthetic accuracy vector: smoothly skewed so the
/// apportionment has real work (non-uniform shares, many remainder
/// ties), without depending on RNG state.
fn skewed_accuracies(n: usize) -> Vec<f64> {
    (0..n).map(|u| 0.05 + 0.9 * (u as f64 / n as f64)).collect()
}

/// One best-response re-apportionment over `N = 10⁴` budgets.
fn bench_adapt_step(c: &mut Criterion) {
    let accuracies = skewed_accuracies(ADAPT_USERS);
    let mut group = c.benchmark_group("fleet_equilibrium/adapt_step");
    group.bench_with_input(
        BenchmarkId::from_parameter(ADAPT_USERS),
        &ADAPT_USERS,
        |b, &n| {
            b.iter(|| {
                let mut policy = FleetChaffPolicy::adaptive(FleetChaffStrategy::Im, n, n);
                policy.adapt(black_box(&accuracies)).unwrap()
            })
        },
    );
    group.finish();
}

/// One full best-response epoch: simulate + detect + feedback + adapt.
fn bench_epoch(c: &mut Criterion) {
    let chain = fixture_chain(ModelKind::NonSkewed, 10, 43);
    let table = chain.log_likelihood_table();
    let detector = BatchPrefixDetector::new();
    let mut group = c.benchmark_group("fleet_equilibrium/epoch");
    group.bench_with_input(
        BenchmarkId::from_parameter(EPOCH_USERS),
        &EPOCH_USERS,
        |b, &n| {
            b.iter(|| {
                let mut policy = FleetChaffPolicy::adaptive(FleetChaffStrategy::Im, n, n);
                let outcome = FleetSimulation::new(
                    &chain,
                    FleetConfig::new(n, HORIZON).with_seed(black_box(44)),
                )
                .run_chaffed(&policy)
                .unwrap();
                let detections = detector
                    .detect_prefixes(DetectInput::new(&[&table], &outcome.observed))
                    .unwrap();
                let feedback = AccuracyFeedback::from_detections(
                    outcome.observed.num_trajectories(),
                    &detections,
                );
                let per_user: Vec<f64> = outcome
                    .user_observed_indices
                    .iter()
                    .map(|&u| feedback.accuracy(u))
                    .collect();
                policy.adapt(&per_user).unwrap()
            })
        },
    );
    group.finish();
}

fn configured() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(Duration::from_secs(5))
        .warm_up_time(Duration::from_millis(500))
}

criterion_group! {
    name = fleet_equilibrium;
    config = configured();
    targets =
        bench_adapt_step,
        bench_epoch,
}
criterion_main!(fleet_equilibrium);

//! Substrate benchmarks: Markov-chain operations and the trace pipeline's
//! geometric hot loops.

use chaff_bench::fixture_chain;
use chaff_markov::models::ModelKind;
use chaff_markov::{mixing, stationary};
use chaff_mobility::geo::BoundingBox;
use chaff_mobility::towers;
use chaff_mobility::voronoi::CellMap;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;
use std::time::Duration;

fn bench_stationary_solvers(c: &mut Criterion) {
    let mut group = c.benchmark_group("stationary_solver");
    for cells in [10usize, 50, 200] {
        let chain = fixture_chain(ModelKind::NonSkewed, cells, 31);
        group.bench_with_input(
            BenchmarkId::new("power_iteration", cells),
            &cells,
            |b, _| b.iter(|| stationary::stationary(black_box(chain.matrix())).unwrap()),
        );
        if cells <= 50 {
            group.bench_with_input(BenchmarkId::new("direct_solve", cells), &cells, |b, _| {
                b.iter(|| stationary::direct_solve(black_box(chain.matrix())).unwrap())
            });
        }
    }
    group.finish();
}

fn bench_mixing_time(c: &mut Criterion) {
    let chain = fixture_chain(ModelKind::NonSkewed, 10, 32);
    c.bench_function("mixing_time_eps_1e-2", |b| {
        b.iter(|| {
            mixing::mixing_time(black_box(chain.matrix()), chain.initial(), 0.01, 10_000).unwrap()
        })
    });
}

fn bench_trajectory_sampling(c: &mut Criterion) {
    let chain = fixture_chain(ModelKind::SpatioTemporallySkewed, 10, 33);
    c.bench_function("sample_trajectory_t100", |b| {
        let mut rng = StdRng::seed_from_u64(34);
        b.iter(|| chain.sample_trajectory(black_box(100), &mut rng))
    });
}

fn bench_voronoi_nearest(c: &mut Criterion) {
    let sf = BoundingBox::san_francisco();
    let mut rng = StdRng::seed_from_u64(35);
    let layout = towers::clustered_layout(959, 8, 2_000.0, 0.35, &sf, &mut rng).unwrap();
    let map = CellMap::new(layout).unwrap();
    let queries: Vec<_> = (0..1_000).map(|_| sf.sample(&mut rng)).collect();
    let mut group = c.benchmark_group("voronoi_nearest_1k_queries");
    group.bench_function("grid_index", |b| {
        b.iter(|| {
            for q in &queries {
                black_box(map.nearest(q));
            }
        })
    });
    group.bench_function("brute_force", |b| {
        b.iter(|| {
            for q in &queries {
                black_box(map.nearest_brute(q));
            }
        })
    });
    group.finish();
}

fn bench_product_chain(c: &mut Criterion) {
    let chain = fixture_chain(ModelKind::NonSkewed, 10, 36);
    c.bench_function("cml_product_chain_build", |b| {
        b.iter(|| chaff_core::theory::CmlProductChain::build(black_box(&chain)).unwrap())
    });
}

fn configured() -> Criterion {
    Criterion::default()
        .sample_size(20)
        .measurement_time(Duration::from_secs(3))
        .warm_up_time(Duration::from_millis(500))
}

criterion_group! {
    name = substrates;
    config = configured();
    targets =
        bench_stationary_solvers,
        bench_mixing_time,
        bench_trajectory_sampling,
        bench_voronoi_nearest,
        bench_product_chain,
}
criterion_main!(substrates);

//! Chaffed-fleet benchmarks: the budgeted multi-user game end to end.
//!
//! Tracks the cost of (a) simulating a fleet under a uniform IM chaff
//! policy, (b) batched detection over the enlarged `N · (1 + B)`
//! candidate set, (c) the multi-class (mixture) detection kernel over a
//! heterogeneous registry, and (d) the full simulate + detect pipeline.
//! CI archives the results in the `BENCH_fleet` baseline and fails on
//! >25% regressions (see `ci/compare_bench.py`).

use chaff_bench::fixture_chain;
use chaff_core::detector::{BatchPrefixDetector, DetectInput};
use chaff_markov::models::ModelKind;
use chaff_markov::{MobilityRegistry, Trajectory};
use chaff_sim::fleet::{FleetChaffPolicy, FleetChaffStrategy, FleetConfig, FleetSimulation};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use std::time::Duration;

const HORIZON: usize = 100;
const USERS: usize = 1_000;

fn policy(budget: usize) -> FleetChaffPolicy {
    FleetChaffPolicy::uniform(FleetChaffStrategy::Im, budget)
}

/// A chaffed observation set: `USERS` users with `budget` chaffs each.
fn chaffed_observations(budget: usize) -> (chaff_markov::MarkovChain, Vec<Trajectory>) {
    let chain = fixture_chain(ModelKind::NonSkewed, 10, 35);
    let outcome = FleetSimulation::new(&chain, FleetConfig::new(USERS, HORIZON).with_seed(36))
        .run_chaffed(&policy(budget))
        .expect("valid fleet");
    (chain, outcome.observed.to_trajectories())
}

/// Chaffed fleet simulation at per-user budgets 1 and 2.
fn bench_simulate(c: &mut Criterion) {
    let chain = fixture_chain(ModelKind::NonSkewed, 10, 35);
    let mut group = c.benchmark_group("fleet_chaff/simulate");
    for budget in [1usize, 2] {
        group.bench_with_input(
            BenchmarkId::from_parameter(budget),
            &budget,
            |b, &budget| {
                b.iter(|| {
                    FleetSimulation::new(
                        &chain,
                        FleetConfig::new(USERS, HORIZON).with_seed(black_box(36)),
                    )
                    .run_chaffed(&policy(budget))
                    .unwrap()
                })
            },
        );
    }
    group.finish();
}

/// Batched detection over the enlarged chaffed candidate set.
fn bench_detect(c: &mut Criterion) {
    let mut group = c.benchmark_group("fleet_chaff/detect");
    for budget in [1usize, 2] {
        let (chain, observed) = chaffed_observations(budget);
        let table = chain.log_likelihood_table();
        let detector = BatchPrefixDetector::new();
        group.bench_with_input(BenchmarkId::from_parameter(budget), &budget, |b, _| {
            b.iter(|| {
                detector
                    .detect_prefixes(DetectInput::new(&[&table], black_box(&observed)))
                    .unwrap()
            })
        });
    }
    group.finish();
}

/// The multi-class mixture kernel: detection over a heterogeneous
/// 3-class fleet (max-over-class scoring).
fn bench_detect_multi_class(c: &mut Criterion) {
    let registry = MobilityRegistry::new(vec![
        fixture_chain(ModelKind::NonSkewed, 10, 37),
        fixture_chain(ModelKind::SpatiallySkewed, 10, 38),
        fixture_chain(ModelKind::TemporallySkewed, 10, 39),
    ])
    .expect("shared cell space");
    let outcome =
        FleetSimulation::with_registry(&registry, FleetConfig::new(USERS, HORIZON).with_seed(40))
            .run_chaffed(&policy(1))
            .expect("valid fleet");
    let observed = outcome.observed.to_trajectories();
    let tables = registry.tables();
    let detector = BatchPrefixDetector::new();
    let mut group = c.benchmark_group("fleet_chaff/detect_multi_class");
    group.bench_with_input(BenchmarkId::from_parameter(3), &3, |b, _| {
        b.iter(|| {
            detector
                .detect_prefixes(DetectInput::new(&tables, black_box(&observed)))
                .unwrap()
        })
    });
    group.finish();
}

/// End-to-end chaffed pipeline: simulate the fleet under budget B = 2
/// and detect over the enlarged candidate set.
fn bench_pipeline(c: &mut Criterion) {
    let chain = fixture_chain(ModelKind::NonSkewed, 10, 41);
    let table = chain.log_likelihood_table();
    let mut group = c.benchmark_group("fleet_chaff/pipeline");
    group.bench_with_input(BenchmarkId::from_parameter(USERS), &USERS, |b, &n| {
        b.iter(|| {
            let outcome = FleetSimulation::new(&chain, FleetConfig::new(n, HORIZON).with_seed(42))
                .run_chaffed(&policy(2))
                .unwrap();
            BatchPrefixDetector::new()
                .detect_prefixes(DetectInput::new(&[&table], black_box(&outcome.observed)))
                .unwrap()
        })
    });
    group.finish();
}

fn configured() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(Duration::from_secs(5))
        .warm_up_time(Duration::from_millis(500))
}

criterion_group! {
    name = fleet_chaff;
    config = configured();
    targets =
        bench_simulate,
        bench_detect,
        bench_detect_multi_class,
        bench_pipeline,
}
criterion_main!(fleet_chaff);

//! Trace-ingestion benchmarks: the streaming, sharded pipeline against
//! the legacy single-threaded builder, plus the replica-amplified path
//! that feeds empirical fleets.
//!
//! Part of the `BENCH_fleet` CI baseline: `ci/compare_bench.py` gates
//! these like detection throughput, so a regression in the
//! regularize→quantize→estimate hot path fails CI.

use chaff_mobility::pipeline::TraceDatasetBuilder;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use std::time::Duration;

/// The common reduced-scale recipe: big enough that sharding matters,
/// small enough for CI (~60 nodes, ~260 cells, 60 one-minute slots).
fn builder(seed: u64) -> TraceDatasetBuilder {
    TraceDatasetBuilder::new()
        .num_nodes(60)
        .num_towers(300)
        .horizon_slots(60)
        .seed(seed)
}

/// The legacy fully-materialized single-threaded pipeline (the oracle).
fn bench_legacy(c: &mut Criterion) {
    let mut group = c.benchmark_group("ingestion/legacy");
    group.bench_with_input(BenchmarkId::from_parameter(60), &60, |b, _| {
        b.iter(|| builder(black_box(31)).build().unwrap())
    });
    group.finish();
}

/// The streamed engine at pinned shard counts (shards=1 measures pure
/// streaming overhead; higher counts measure the parallel speedup).
fn bench_streamed(c: &mut Criterion) {
    let mut group = c.benchmark_group("ingestion/streamed");
    for shards in [1usize, 4] {
        group.bench_with_input(
            BenchmarkId::from_parameter(shards),
            &shards,
            |b, &shards| {
                b.iter(|| {
                    builder(black_box(31))
                        .shards(shards)
                        .build_streaming()
                        .unwrap()
                })
            },
        );
    }
    group.finish();
}

/// The amplification path: 8 replica fleets (~480 nodes) through the
/// sharded engine — the rung towards the 10⁴–10⁵-node empirical fleets.
fn bench_amplified(c: &mut Criterion) {
    let mut group = c.benchmark_group("ingestion/amplified");
    group.bench_with_input(BenchmarkId::from_parameter(8), &8, |b, &replicas| {
        b.iter(|| {
            builder(black_box(32))
                .replicas(replicas)
                .shards(4)
                .build_streaming()
                .unwrap()
        })
    });
    group.finish();
}

fn configured() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(Duration::from_secs(5))
        .warm_up_time(Duration::from_millis(500))
}

criterion_group! {
    name = ingestion;
    config = configured();
    targets =
        bench_legacy,
        bench_streamed,
        bench_amplified,
}
criterion_main!(ingestion);

//! Persistent fleet-store benchmarks: checkpoint write, whole-grid
//! load and paged stream-detection (ISSUE 8 tentpole surface).
//!
//! Three groups cover the store's hot paths at the `N = 5 × 10⁴` rung:
//!
//! * `fleet_store/write` — serialize a finished fleet outcome into a
//!   fresh store file ([`FleetOutcome::checkpoint`]).
//! * `fleet_store/load` — reopen the file and rebuild the full
//!   observation grid and user arenas ([`FleetStoreReader::load`]).
//! * `fleet_store/stream_detect` — reopen the file and run the unified
//!   [`detect_prefixes`](chaff_core::detector::BatchPrefixDetector::detect_prefixes)
//!   entry over the paged [`SlotStream`](chaff_store::SlotStream),
//!   never materializing the grid.
//!
//! The criterion shim records `peak_rss_bytes` per group, so the CI
//! bench gate (`ci/compare_bench.py`) guards both the time and the
//! resident-set budget of every path — a regression that silently
//! materializes the grid inside the stream path shows up as an RSS
//! jump even if it is not slower.

use chaff_bench::{fixture_chain, record_bench_metadata};
use chaff_core::detector::{BatchPrefixDetector, DetectInput};
use chaff_markov::models::ModelKind;
use chaff_sim::fleet::{FleetConfig, FleetOutcome, FleetSimulation};
use chaff_store::FleetStoreReader;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use std::path::PathBuf;
use std::time::Duration;

/// Fleet size of the bench rung.
const USERS: usize = 50_000;

/// Persisted slots per store file.
const HORIZON: usize = 12;

fn store_path(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("chaff_bench_{}_{name}.store", std::process::id()))
}

/// One natural fleet outcome shared by every group in this binary.
fn fixture_outcome() -> FleetOutcome {
    let chain = fixture_chain(ModelKind::NonSkewed, 10, 71);
    FleetSimulation::new(&chain, FleetConfig::new(USERS, HORIZON).with_seed(72))
        .run_natural()
        .expect("valid fleet")
}

/// Checkpoint write: outcome → store file (overwritten every iter).
fn bench_write(c: &mut Criterion) {
    let outcome = fixture_outcome();
    let path = store_path("write");
    let mut group = c.benchmark_group("fleet_store/write");
    group.bench_with_input(BenchmarkId::from_parameter(USERS), &USERS, |b, _| {
        b.iter(|| outcome.checkpoint(black_box(&path)).unwrap())
    });
    group.finish();
    std::fs::remove_file(&path).ok();
}

/// Whole-grid restore: open + rebuild grid and arenas.
fn bench_load(c: &mut Criterion) {
    let outcome = fixture_outcome();
    let path = store_path("load");
    outcome.checkpoint(&path).expect("checkpoint");
    let mut group = c.benchmark_group("fleet_store/load");
    group.bench_with_input(BenchmarkId::from_parameter(USERS), &USERS, |b, _| {
        b.iter(|| {
            let mut reader = FleetStoreReader::open(black_box(&path)).unwrap();
            black_box(reader.load().unwrap())
        })
    });
    group.finish();
    std::fs::remove_file(&path).ok();
}

/// Paged detection straight off the file: one store page resident.
fn bench_stream_detect(c: &mut Criterion) {
    let chain = fixture_chain(ModelKind::NonSkewed, 10, 71);
    let outcome = fixture_outcome();
    let path = store_path("stream");
    outcome.checkpoint(&path).expect("checkpoint");
    let detector = BatchPrefixDetector::new();
    let mut group = c.benchmark_group("fleet_store/stream_detect");
    group.bench_with_input(BenchmarkId::from_parameter(USERS), &USERS, |b, _| {
        b.iter(|| {
            let mut reader = FleetStoreReader::open(black_box(&path)).unwrap();
            let mut stream = reader.stream_slots();
            black_box(
                detector
                    .detect_prefixes(DetectInput::new(&chain, &mut stream))
                    .unwrap(),
            )
        })
    });
    group.finish();
    std::fs::remove_file(&path).ok();
}

/// Stamps pool size and lane width into the baseline before any record.
fn bench_metadata(_c: &mut Criterion) {
    record_bench_metadata();
}

fn configured() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(Duration::from_secs(5))
        .warm_up_time(Duration::from_millis(500))
}

criterion_group! {
    name = fleet_store;
    config = configured();
    targets =
        bench_metadata,
        bench_write,
        bench_load,
        bench_stream_detect,
}
criterion_main!(fleet_store);

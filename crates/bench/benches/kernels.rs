//! Microbenchmarks of the vectorized per-slot detection kernels.
//!
//! `fleet_scale` measures whole detections; this group isolates the
//! three phases one slot is made of, so a regression report names the
//! phase, not just the pipeline: the gather+add accumulator advance
//! (dense and CSR storage), the two-pass running-max + tie-collection
//! argmax, and the CSR row walk behind each sparse gather. Widths cover
//! the paper-scale fleet rung (`N = 10⁴`) and the million-user rung
//! (`N = 10⁶`). Part of the CI `BENCH_fleet` baseline: the `kernels/*`
//! records are gated by `ci/compare_bench.py` on `mean_ns` / `p99_ns` /
//! `peak_rss_bytes` exactly like the pipeline groups.

use chaff_bench::{fixture_chain, record_bench_metadata};
use chaff_core::detector::kernel::{collect_ties, row_max};
use chaff_markov::models::ModelKind;
use chaff_markov::{CellId, LogLikelihoodTable, MarkovChain};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;
use std::time::Duration;

const WIDTHS: [usize; 2] = [10_000, 1_000_000];
const CELLS: usize = 10;

/// One slot of observations: `width` services' previous and current
/// cells, sampled from the chain so transition support matches reality.
fn slot_rows(chain: &MarkovChain, width: usize, seed: u64) -> (Vec<CellId>, Vec<CellId>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let prev: Vec<CellId> = (0..width)
        .map(|_| CellId::new(rng.random_range(0..CELLS)))
        .collect();
    let row: Vec<CellId> = prev.iter().map(|&p| chain.step(p, &mut rng)).collect();
    (prev, row)
}

/// Phase 1 — gather per-service increments and add into the running
/// accumulators, for both table storages.
fn bench_gather_add(c: &mut Criterion) {
    let chain = fixture_chain(ModelKind::NonSkewed, CELLS, 71);
    for (name, dense) in [("gather_add_dense", true), ("gather_add_sparse", false)] {
        let table = LogLikelihoodTable::with_storage(&chain, dense);
        let mut group = c.benchmark_group(format!("kernels/{name}"));
        for width in WIDTHS {
            let (prev, row) = slot_rows(&chain, width, 72);
            let mut accs = vec![0.0f64; width];
            group.bench_with_input(BenchmarkId::from_parameter(width), &width, |b, _| {
                b.iter(|| {
                    table
                        .add_step_batch(Some(black_box(&prev)), black_box(&row), &mut accs)
                        .unwrap()
                })
            });
        }
        group.finish();
    }
}

/// Phases 2+3 — the branchless two-pass argmax: exact row maximum, then
/// tolerance-band tie collection, over realistic accumulated scores.
fn bench_argmax(c: &mut Criterion) {
    let chain = fixture_chain(ModelKind::NonSkewed, CELLS, 73);
    let table = chain.log_likelihood_table();
    let mut group = c.benchmark_group("kernels/argmax");
    for width in WIDTHS {
        // Scores accumulated over a few slots, so magnitudes and tie
        // density match what detection actually scans.
        let mut scores = vec![0.0f64; width];
        let mut rows = slot_rows(&chain, width, 74);
        for _ in 0..8 {
            table
                .add_step_batch(Some(&rows.0), &rows.1, &mut scores)
                .unwrap();
            std::mem::swap(&mut rows.0, &mut rows.1);
        }
        let mut ties: Vec<(u32, f64)> = Vec::new();
        group.bench_with_input(BenchmarkId::from_parameter(width), &width, |b, _| {
            b.iter(|| {
                let best = row_max(black_box(&scores));
                ties.clear();
                collect_ties(&scores, 0, best, &mut ties);
                black_box(ties.len())
            })
        });
    }
    group.finish();
}

/// The CSR row walk behind every sparse gather: one binary-searched
/// `log_transition` lookup per (from, to) pair.
fn bench_csr_row_walk(c: &mut Criterion) {
    let chain = fixture_chain(ModelKind::NonSkewed, CELLS, 75);
    let table = LogLikelihoodTable::with_storage(&chain, false);
    let mut group = c.benchmark_group("kernels/csr_row_walk");
    for width in WIDTHS {
        let (prev, row) = slot_rows(&chain, width, 76);
        group.bench_with_input(BenchmarkId::from_parameter(width), &width, |b, _| {
            b.iter(|| {
                let mut acc = 0.0f64;
                for (&from, &to) in prev.iter().zip(black_box(&row)) {
                    acc += table.log_transition(from, to);
                }
                black_box(acc)
            })
        });
    }
    group.finish();
}

/// Stamps pool size and lane width into the baseline before any record.
fn bench_metadata(_c: &mut Criterion) {
    record_bench_metadata();
}

fn configured() -> Criterion {
    Criterion::default()
        .sample_size(20)
        .measurement_time(Duration::from_secs(3))
        .warm_up_time(Duration::from_millis(300))
}

criterion_group! {
    name = kernels;
    config = configured();
    targets =
        bench_metadata,
        bench_gather_add,
        bench_argmax,
        bench_csr_row_walk,
}
criterion_main!(kernels);

//! Benchmark-only crate: shared fixtures for the Criterion benches.
//!
//! The benches live in `benches/`:
//!
//! * `figures` — one benchmark per reproduced paper artifact (Table 1,
//!   Figs. 4–10, theory checks) at reduced Monte Carlo scale, so the cost
//!   of regenerating each result is tracked over time;
//! * `strategies` — chaff-strategy complexity ablations: OO's `O(T²·nnz)`
//!   against ML's `O(T·nnz)` and MO's `O(T·s)`, dense versus sparse
//!   models, and the trellis DP against the paper's Dijkstra;
//! * `detectors` — the `O(N·T)` ML detector and the strategy-aware
//!   advanced detector;
//! * `batch_detection` — the fleet engine's batched, sharded detection
//!   core against the per-trajectory path at `N = 1,000` / `10,000`,
//!   plus the end-to-end fleet pipeline (CI archives these as
//!   `BENCH_fleet.json`);
//! * `fleet_chaff` — the chaffed-fleet subsystem: policy-driven
//!   simulation, detection over the enlarged `N · (1 + B)` candidate
//!   set, the multi-class mixture kernel, and the end-to-end pipeline
//!   (also part of the CI baseline, gated by `ci/compare_bench.py`);
//! * `fleet_daynight` — the time-varying commuter fleet at `N = 10⁴`:
//!   simulation from epoch-active chains and schedule-aware detection
//!   against the stationary mixture; records stamp an `epochs` metadata
//!   key;
//! * `fleet_scale` — the columnar fleet store at `N = 50,000`:
//!   arena-backed generation, the streaming columnar detection kernel
//!   and the end-to-end chaffed pipeline; its records carry
//!   `peak_rss_bytes` so the CI gate catches memory regressions in the
//!   columnar store, not just runtime regressions;
//! * `ingestion` — the trace pipeline: legacy single-threaded builder vs
//!   the streamed, sharded engine (shard counts 1 and 4) and the
//!   replica-amplified path (also baseline-gated, so trace-pipeline
//!   throughput regressions fail CI like detection regressions);
//! * `substrates` — Markov/stationary/Voronoi substrate operations.

use chaff_markov::models::ModelKind;
use chaff_markov::MarkovChain;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A deterministic mobility model fixture shared by the benches.
pub fn fixture_chain(kind: ModelKind, cells: usize, seed: u64) -> MarkovChain {
    let mut rng = StdRng::seed_from_u64(seed);
    MarkovChain::new(kind.build(cells, &mut rng).expect("valid size")).expect("ergodic")
}

/// A deterministic user trajectory fixture.
pub fn fixture_user(chain: &MarkovChain, horizon: usize, seed: u64) -> chaff_markov::Trajectory {
    let mut rng = StdRng::seed_from_u64(seed);
    chain.sample_trajectory(horizon, &mut rng)
}

/// Stamps the measurement environment into the `CRITERION_JSON`
/// baseline: the worker-pool thread count every sharded hot path
/// dispatches onto, and the `f64` lane width the detection kernels chunk
/// by. Call once per bench binary (a no-op when `CRITERION_JSON` is
/// unset), so archived baselines record what machine shape produced
/// them — a 2× "regression" after a move from 16 to 8 cores reads as a
/// machine change, not a code change.
pub fn record_bench_metadata() {
    record_bench_metadata_with(&[]);
}

/// [`record_bench_metadata`] plus bench-specific keys — e.g. the
/// time-varying fleet benches stamp `epochs` so a baseline produced
/// under a different schedule shape reads as a fixture change, not a
/// code regression.
pub fn record_bench_metadata_with(extra: &[(&str, u64)]) {
    let mut pairs = vec![
        (
            "worker_pool_threads",
            chaff_core::pool::global().threads() as u64,
        ),
        ("lane_width", chaff_markov::LANE_WIDTH as u64),
    ];
    pairs.extend_from_slice(extra);
    criterion::record_metadata(&pairs);
}

//! Corruption battery over hand-built fixtures (ISSUE 8 satellite).
//!
//! `tests/fixtures/store/` holds one canonical store file plus damaged
//! variants — truncation, flipped payload byte, foreign magic, future
//! version, wrong cell width — committed as bytes so the *reader of
//! today* is exercised against the *files of yesterday*, not just
//! against its own writer. A sync test regenerates every fixture from
//! the current writer and fails if the committed bytes drift, which is
//! exactly the signal that a format change forgot to bump
//! `FORMAT_VERSION`.
//!
//! Regenerate after an intentional format bump with:
//! `cargo test -p chaff-store --test corruption -- --ignored`

use chaff_markov::CellId;
use chaff_store::crc32::crc32;
use chaff_store::{FleetStoreReader, FleetStoreWriter, StoreError, StoreMeta, StoreStats};
use std::path::PathBuf;

fn fixture_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/store")
}

fn temp_path(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("chaff_store_fixture_{}_{tag}", std::process::id()))
}

/// Builds the canonical fixture store (4 services, 2 users, 3 slots,
/// 2 shards) and returns its bytes. Fully deterministic: the writer
/// has no clocks, no randomness and no platform-dependent fields.
fn canonical_bytes() -> Vec<u8> {
    let meta = StoreMeta {
        num_services: 4,
        num_users: 2,
        horizon: 3,
        shard_starts: vec![0, 2, 4],
        user_observed_indices: vec![3, 0],
    };
    let path = temp_path("canonical");
    let mut writer = FleetStoreWriter::create(&path, meta).expect("create");
    for t in 0..3usize {
        let observed: Vec<CellId> = (0..4).map(|i| CellId::new((t * 4 + i) % 9)).collect();
        let users = [CellId::new(t % 9), CellId::new((t + 5) % 9)];
        writer.append_slot(&observed, &users).expect("append");
    }
    writer
        .finish(StoreStats {
            migrations: 6,
            spills: 1,
            user_slots: 6,
            chaff_services: 2,
        })
        .expect("finish");
    let bytes = std::fs::read(&path).expect("read back");
    std::fs::remove_file(&path).expect("cleanup");
    bytes
}

/// Every fixture as `(file name, bytes)`, derived from the canonical
/// store. The first observed data page sits at offset 4096 (the first
/// page boundary after the 64-byte header).
fn fixtures() -> Vec<(&'static str, Vec<u8>)> {
    let valid = canonical_bytes();
    let truncated = valid[..valid.len() - 5].to_vec();
    let mut bad_magic = valid.clone();
    bad_magic[0] = b'X';
    let mut wrong_version = valid.clone();
    wrong_version[8..12].copy_from_slice(&99u32.to_le_bytes());
    // Wrong cell width *with a recomputed header CRC*, so the reader's
    // verdict is the width — not a checksum excuse.
    let mut wrong_cell_width = valid.clone();
    wrong_cell_width[12..16].copy_from_slice(&8u32.to_le_bytes());
    let crc = crc32(&wrong_cell_width[..60]);
    wrong_cell_width[60..64].copy_from_slice(&crc.to_le_bytes());
    let mut flipped_page_byte = valid.clone();
    flipped_page_byte[4096 + 5] ^= 0x10;
    vec![
        ("valid.store", valid),
        ("truncated.store", truncated),
        ("bad_magic.store", bad_magic),
        ("wrong_version.store", wrong_version),
        ("wrong_cell_width.store", wrong_cell_width),
        ("flipped_page_byte.store", flipped_page_byte),
    ]
}

fn open_fixture(name: &str) -> Result<FleetStoreReader, StoreError> {
    let path = fixture_dir().join(name);
    assert!(
        path.exists(),
        "fixture {name} missing — run `cargo test -p chaff-store --test corruption -- --ignored`"
    );
    FleetStoreReader::open(&path)
}

/// Run once (with `--ignored`) to materialize the committed fixtures.
#[test]
#[ignore = "writes the committed fixture files; run manually after intentional format changes"]
fn regenerate_fixtures() {
    let dir = fixture_dir();
    std::fs::create_dir_all(&dir).expect("fixture dir");
    for (name, bytes) in fixtures() {
        std::fs::write(dir.join(name), bytes).expect("write fixture");
    }
}

/// The committed fixture bytes must match what the current writer
/// produces: drift means the format changed without a version bump.
#[test]
fn fixtures_are_in_sync_with_the_writer() {
    for (name, expected) in fixtures() {
        let committed = std::fs::read(fixture_dir().join(name)).unwrap_or_else(|_| {
            panic!(
                "fixture {name} missing — run \
                 `cargo test -p chaff-store --test corruption -- --ignored`"
            )
        });
        assert_eq!(
            committed, expected,
            "{name} drifted from the current writer: format change without a version bump?"
        );
    }
}

#[test]
fn valid_fixture_loads_completely() {
    let mut reader = open_fixture("valid.store").expect("valid fixture opens");
    assert_eq!(reader.num_services(), 4);
    assert_eq!(reader.num_users(), 2);
    assert_eq!(reader.horizon(), 3);
    assert_eq!(reader.stats().migrations, 6);
    let fleet = reader.load().expect("valid fixture loads");
    assert_eq!(fleet.observed.row(0)[1], CellId::new(1));
    assert_eq!(fleet.user_observed_indices, vec![3, 0]);
}

#[test]
fn truncated_file_is_a_typed_truncation_error() {
    assert!(matches!(
        open_fixture("truncated.store"),
        Err(StoreError::Truncated { .. })
    ));
}

#[test]
fn foreign_magic_is_rejected_as_not_a_store() {
    match open_fixture("bad_magic.store") {
        Err(StoreError::BadMagic { found }) => assert_eq!(found[0], b'X'),
        other => panic!("expected BadMagic, got {other:?}"),
    }
}

#[test]
fn future_version_is_reported_with_both_versions() {
    match open_fixture("wrong_version.store") {
        Err(StoreError::UnsupportedVersion { found, expected }) => {
            assert_eq!(found, 99);
            assert_eq!(expected, chaff_store::format::FORMAT_VERSION);
        }
        other => panic!("expected UnsupportedVersion, got {other:?}"),
    }
}

#[test]
fn wrong_cell_width_is_reported_with_both_widths() {
    match open_fixture("wrong_cell_width.store") {
        Err(StoreError::WrongCellWidth { found, expected }) => {
            assert_eq!(found, 8);
            assert_eq!(expected, 4);
        }
        other => panic!("expected WrongCellWidth, got {other:?}"),
    }
}

#[test]
fn flipped_payload_byte_names_the_offending_page_on_both_read_paths() {
    // The footer itself is intact, so the store opens; the damage
    // surfaces when the page is read, naming page 0 (the first observed
    // page) on the load path and the streaming path alike.
    let mut reader = open_fixture("flipped_page_byte.store").expect("footer is intact");
    match reader.load() {
        Err(StoreError::PageChecksum { page: 0, .. }) => {}
        other => panic!("expected PageChecksum naming page 0, got {other:?}"),
    }
    let mut stream = reader.stream_slots();
    match stream.next_row() {
        Err(StoreError::PageChecksum { page: 0, .. }) => {}
        other => panic!("expected PageChecksum naming page 0, got {other:?}"),
    }
}

#[test]
fn corrupt_footer_index_is_typed() {
    let bytes = canonical_bytes();
    // Flip a byte inside the index region (40 bytes before the tail).
    let mut corrupt = bytes.clone();
    let at = corrupt.len() - 28 - 30;
    corrupt[at] ^= 0x01;
    let path = temp_path("footer_corrupt");
    std::fs::write(&path, &corrupt).unwrap();
    assert!(matches!(
        FleetStoreReader::open(&path),
        Err(StoreError::FooterCorrupt { .. }) | Err(StoreError::Truncated { .. })
    ));
    std::fs::remove_file(&path).unwrap();

    // Damage the entry count in the tail itself.
    let mut corrupt = bytes;
    let len = corrupt.len();
    corrupt[len - 28] ^= 0xFF;
    let path = temp_path("tail_corrupt");
    std::fs::write(&path, &corrupt).unwrap();
    assert!(matches!(
        FleetStoreReader::open(&path),
        Err(StoreError::FooterCorrupt { .. })
    ));
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn flipped_header_byte_is_a_header_checksum_error() {
    let mut bytes = canonical_bytes();
    bytes[17] ^= 0x04; // inside num_services
    let path = temp_path("header_flip");
    std::fs::write(&path, &bytes).unwrap();
    assert!(matches!(
        FleetStoreReader::open(&path),
        Err(StoreError::HeaderChecksum { .. })
    ));
    std::fs::remove_file(&path).unwrap();
}

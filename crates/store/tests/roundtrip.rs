//! Property battery: write → load / stream round-trips are bit-for-bit
//! across population shapes, shard layouts and page boundaries.

use chaff_markov::CellId;
use chaff_store::{FleetStoreReader, FleetStoreWriter, StoreMeta, StoreStats};
use proptest::prelude::*;
use std::path::PathBuf;

/// SplitMix64 — deterministic per-case cell material without touching
/// the vendored RNG.
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn cell(seed: u64, t: usize, i: usize, num_cells: usize) -> CellId {
    CellId::new((mix(seed ^ ((t as u64) << 32) ^ i as u64) % num_cells as u64) as usize)
}

fn temp_path(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("chaff_store_prop_{}_{tag}", std::process::id()))
}

/// Builds a meta with `shards` roughly balanced shard ranges.
fn meta_for(num_services: usize, num_users: usize, horizon: usize, shards: usize) -> StoreMeta {
    let shards = shards.clamp(1, num_services.max(1));
    let chunk = num_services.div_ceil(shards).max(1);
    let mut shard_starts = vec![0];
    let mut lo = 0;
    while lo < num_services {
        let hi = (lo + chunk).min(num_services);
        shard_starts.push(hi);
        lo = hi;
    }
    if shard_starts.len() < 2 {
        shard_starts.push(num_services);
    }
    StoreMeta {
        num_services,
        num_users,
        horizon,
        shard_starts,
        user_observed_indices: (0..num_users).map(|u| u % num_services.max(1)).collect(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The tentpole round-trip: every cell, offset table and stat
    /// survives the disk unchanged, on both read paths.
    #[test]
    fn write_then_load_and_stream_are_bit_for_bit(
        seed in 0u64..10_000,
        num_users in 1usize..20,
        budget in 0usize..3,
        horizon in 0usize..12,
        shards in 1usize..8,
        num_cells in 1usize..50,
    ) {
        let num_services = num_users * (1 + budget);
        let meta = meta_for(num_services, num_users, horizon, shards);
        let path = temp_path(&format!("{seed}_{num_users}_{budget}_{horizon}_{shards}"));
        let mut writer = FleetStoreWriter::create(&path, meta.clone()).unwrap();
        for t in 0..horizon {
            let observed: Vec<CellId> =
                (0..num_services).map(|i| cell(seed, t, i, num_cells)).collect();
            let users: Vec<CellId> =
                (0..num_users).map(|u| cell(!seed, t, u, num_cells)).collect();
            writer.append_slot(&observed, &users).unwrap();
        }
        let stats = StoreStats {
            migrations: mix(seed) as usize % 1000,
            spills: mix(seed + 1) as usize % 1000,
            user_slots: num_users * horizon,
            chaff_services: num_services - num_users,
        };
        writer.finish(stats).unwrap();

        let mut reader = FleetStoreReader::open(&path).unwrap();
        prop_assert_eq!(reader.meta(), &meta);
        let fleet = reader.load().unwrap();
        prop_assert_eq!(fleet.stats, stats);
        prop_assert_eq!(&fleet.shard_starts, &meta.shard_starts);
        prop_assert_eq!(&fleet.user_observed_indices, &meta.user_observed_indices);
        prop_assert_eq!(fleet.observed.num_trajectories(), num_services);
        prop_assert_eq!(fleet.observed.horizon(), horizon);
        for t in 0..horizon {
            let observed: Vec<CellId> =
                (0..num_services).map(|i| cell(seed, t, i, num_cells)).collect();
            prop_assert_eq!(fleet.observed.row(t), &observed[..], "slot {}", t);
        }
        prop_assert_eq!(fleet.user_cells.num_trajectories(), num_users);
        for u in 0..num_users {
            let expected: Vec<CellId> =
                (0..horizon).map(|t| cell(!seed, t, u, num_cells)).collect();
            prop_assert_eq!(fleet.user_cells.row(u), &expected[..], "user {}", u);
        }
        // The streaming path replays the same rows in the same order.
        let mut stream = reader.stream_slots();
        for t in 0..horizon {
            let row = stream.next_row().unwrap().expect("within horizon").to_vec();
            prop_assert_eq!(&row[..], fleet.observed.row(t), "slot {}", t);
        }
        prop_assert!(stream.next_row().unwrap().is_none());
        std::fs::remove_file(&path).unwrap();
    }

    /// Fuzzing the bytes: flipping any single byte of a valid store
    /// either surfaces a typed error or (padding bytes only) leaves the
    /// decoded fleet identical — never a panic, never silent corruption.
    #[test]
    fn single_byte_flips_never_panic_or_corrupt_silently(
        seed in 0u64..1_000,
        flip_at in 0usize..100_000,
        flip_bit in 0u8..8,
    ) {
        let num_services = 12;
        let num_users = 4;
        let horizon = 6;
        let meta = meta_for(num_services, num_users, horizon, 3);
        let path = temp_path(&format!("fuzz_{seed}_{flip_at}_{flip_bit}"));
        let mut writer = FleetStoreWriter::create(&path, meta).unwrap();
        for t in 0..horizon {
            let observed: Vec<CellId> =
                (0..num_services).map(|i| cell(seed, t, i, 30)).collect();
            let users: Vec<CellId> = (0..num_users).map(|u| cell(!seed, t, u, 30)).collect();
            writer.append_slot(&observed, &users).unwrap();
        }
        writer.finish(StoreStats::default()).unwrap();
        let baseline = FleetStoreReader::open(&path).unwrap().load().unwrap();

        let mut bytes = std::fs::read(&path).unwrap();
        let at = flip_at % bytes.len();
        bytes[at] ^= 1 << flip_bit;
        std::fs::write(&path, &bytes).unwrap();

        match FleetStoreReader::open(&path) {
            Err(_) => {} // typed rejection at open: fine
            Ok(mut reader) => match reader.load() {
                Err(_) => {} // typed rejection at read: fine
                Ok(fleet) => prop_assert_eq!(
                    fleet, baseline,
                    "undetected flip at byte {} changed the fleet", at
                ),
            },
        }
        std::fs::remove_file(&path).unwrap();
    }
}

//! On-disk format v1: constants, header, page index and footer codecs.
//!
//! All integers are **little-endian**. The file is laid out as
//!
//! ```text
//! ┌──────────────────────── header (64 bytes, CRC-protected) ─────────┐
//! │ magic "CHAFFST\0" · version u32 · cell_width u32 · services u64   │
//! │ users u64 · horizon u64 · reserved[20] · header_crc u32           │
//! ├──────────────────────── pages (4096-aligned) ─────────────────────┤
//! │ page 0 payload … page k payload   (whole slot rows; zero padding  │
//! │ between pages; every payload checksummed via the footer index)    │
//! ├──────────────────────── footer ───────────────────────────────────┤
//! │ index: k × 40-byte entries (section, first_row, num_rows,         │
//! │        offset, len, crc)                                          │
//! │ tail:  num_entries u64 · index_crc u32 · index_len u64 ·          │
//! │        end magic "CHAFFEND"                                       │
//! └───────────────────────────────────────────────────────────────────┘
//! ```
//!
//! The footer is located from end of file (read the 28-byte tail, then
//! seek back `index_len`), so a write interrupted anywhere before the
//! final tail bytes is detected as [`StoreError::Truncated`] on open —
//! no partial store ever parses as a complete one.

use crate::crc32::crc32;
use crate::error::{Result, StoreError};

/// Leading file magic.
pub const MAGIC: [u8; 8] = *b"CHAFFST\0";
/// Trailing file magic — the last eight bytes of every complete store.
pub const END_MAGIC: [u8; 8] = *b"CHAFFEND";
/// Format version this build reads and writes.
pub const FORMAT_VERSION: u32 = 1;
/// Serialized cell width in bytes (`CellId` as little-endian `u32`).
pub const CELL_WIDTH: u32 = 4;
/// Fixed header size in bytes.
pub const HEADER_LEN: usize = 64;
/// Pages start on multiples of this file offset.
pub const PAGE_ALIGN: u64 = 4096;
/// Target page payload: rows are batched until the next row would push
/// the payload past this size (a single row larger than the target gets
/// a page of its own). Bounds the read-side buffer of
/// [`stream_slots`](crate::FleetStoreReader::stream_slots) to
/// `max(TARGET_PAGE_PAYLOAD, row_bytes)`.
pub const TARGET_PAGE_PAYLOAD: usize = 1 << 20;
/// Size of one serialized footer-index entry.
pub const PAGE_ENTRY_LEN: usize = 40;
/// Size of the fixed footer tail.
pub const FOOTER_TAIL_LEN: usize = 28;

/// Data sections a page can belong to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Section {
    /// Slot-major rows of the anonymized observed grid
    /// (`num_services` cells per row).
    Observed,
    /// Slot-major rows of the user ground truth (`num_users` cells per
    /// row); transposed into a `TrajectoryArena` on load.
    Users,
    /// The offsets blob written at finish: shard starts, user observed
    /// indices and fleet stats.
    Offsets,
}

impl Section {
    pub(crate) fn code(self) -> u32 {
        match self {
            Section::Observed => 1,
            Section::Users => 2,
            Section::Offsets => 3,
        }
    }

    pub(crate) fn from_code(code: u32) -> Option<Self> {
        match code {
            1 => Some(Section::Observed),
            2 => Some(Section::Users),
            3 => Some(Section::Offsets),
            _ => None,
        }
    }
}

/// The decoded fixed header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Header {
    /// Observed trajectories per slot row.
    pub num_services: u64,
    /// Ground-truth user trajectories per slot row.
    pub num_users: u64,
    /// Declared number of slots.
    pub horizon: u64,
}

impl Header {
    /// Serializes the header, computing its trailing CRC.
    pub fn encode(&self) -> [u8; HEADER_LEN] {
        let mut out = [0u8; HEADER_LEN];
        out[0..8].copy_from_slice(&MAGIC);
        out[8..12].copy_from_slice(&FORMAT_VERSION.to_le_bytes());
        out[12..16].copy_from_slice(&CELL_WIDTH.to_le_bytes());
        out[16..24].copy_from_slice(&self.num_services.to_le_bytes());
        out[24..32].copy_from_slice(&self.num_users.to_le_bytes());
        out[32..40].copy_from_slice(&self.horizon.to_le_bytes());
        // bytes 40..60 reserved, zero in v1.
        let crc = crc32(&out[..HEADER_LEN - 4]);
        out[HEADER_LEN - 4..].copy_from_slice(&crc.to_le_bytes());
        out
    }

    /// Decodes and validates a header: magic, version and cell width
    /// first (so a foreign or future file reports *what* it is rather
    /// than a checksum mismatch), then the CRC over the header bytes.
    ///
    /// # Errors
    ///
    /// [`StoreError::BadMagic`], [`StoreError::UnsupportedVersion`],
    /// [`StoreError::WrongCellWidth`] or [`StoreError::HeaderChecksum`].
    pub fn decode(bytes: &[u8; HEADER_LEN]) -> Result<Self> {
        if bytes[0..8] != MAGIC {
            let mut found = [0u8; 8];
            found.copy_from_slice(&bytes[0..8]);
            return Err(StoreError::BadMagic { found });
        }
        let version = u32::from_le_bytes(bytes[8..12].try_into().expect("4 bytes"));
        if version != FORMAT_VERSION {
            return Err(StoreError::UnsupportedVersion {
                found: version,
                expected: FORMAT_VERSION,
            });
        }
        let cell_width = u32::from_le_bytes(bytes[12..16].try_into().expect("4 bytes"));
        if cell_width != CELL_WIDTH {
            return Err(StoreError::WrongCellWidth {
                found: cell_width,
                expected: CELL_WIDTH,
            });
        }
        let stored = u32::from_le_bytes(bytes[HEADER_LEN - 4..].try_into().expect("4 bytes"));
        let computed = crc32(&bytes[..HEADER_LEN - 4]);
        if stored != computed {
            return Err(StoreError::HeaderChecksum { stored, computed });
        }
        Ok(Header {
            num_services: u64::from_le_bytes(bytes[16..24].try_into().expect("8 bytes")),
            num_users: u64::from_le_bytes(bytes[24..32].try_into().expect("8 bytes")),
            horizon: u64::from_le_bytes(bytes[32..40].try_into().expect("8 bytes")),
        })
    }
}

/// One footer-index entry describing a page.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PageEntry {
    /// Which section the page belongs to.
    pub section: Section,
    /// First slot row in the page (byte-chunk index for
    /// [`Section::Offsets`]).
    pub first_row: u64,
    /// Whole rows in the page (0 for [`Section::Offsets`]).
    pub num_rows: u64,
    /// Absolute file offset of the payload (4096-aligned).
    pub offset: u64,
    /// Payload length in bytes.
    pub len: u64,
    /// CRC32 of the payload.
    pub crc: u32,
}

impl PageEntry {
    /// Serializes the entry.
    pub fn encode(&self) -> [u8; PAGE_ENTRY_LEN] {
        let mut out = [0u8; PAGE_ENTRY_LEN];
        out[0..4].copy_from_slice(&self.section.code().to_le_bytes());
        out[4..12].copy_from_slice(&self.first_row.to_le_bytes());
        out[12..20].copy_from_slice(&self.num_rows.to_le_bytes());
        out[20..28].copy_from_slice(&self.offset.to_le_bytes());
        out[28..36].copy_from_slice(&self.len.to_le_bytes());
        out[36..40].copy_from_slice(&self.crc.to_le_bytes());
        out
    }

    /// Decodes one entry (`index` names it in errors).
    ///
    /// # Errors
    ///
    /// [`StoreError::FooterCorrupt`] on an unknown section code.
    pub fn decode(bytes: &[u8; PAGE_ENTRY_LEN], index: usize) -> Result<Self> {
        let code = u32::from_le_bytes(bytes[0..4].try_into().expect("4 bytes"));
        let section = Section::from_code(code).ok_or_else(|| StoreError::FooterCorrupt {
            reason: format!("page {index} names unknown section {code}"),
        })?;
        Ok(PageEntry {
            section,
            first_row: u64::from_le_bytes(bytes[4..12].try_into().expect("8 bytes")),
            num_rows: u64::from_le_bytes(bytes[12..20].try_into().expect("8 bytes")),
            offset: u64::from_le_bytes(bytes[20..28].try_into().expect("8 bytes")),
            len: u64::from_le_bytes(bytes[28..36].try_into().expect("8 bytes")),
            crc: u32::from_le_bytes(bytes[36..40].try_into().expect("4 bytes")),
        })
    }
}

/// Serializes the footer: the index entries followed by the fixed tail.
pub fn encode_footer(entries: &[PageEntry]) -> Vec<u8> {
    let mut out = Vec::with_capacity(entries.len() * PAGE_ENTRY_LEN + FOOTER_TAIL_LEN);
    for e in entries {
        out.extend_from_slice(&e.encode());
    }
    let index_crc = crc32(&out);
    out.extend_from_slice(&(entries.len() as u64).to_le_bytes());
    out.extend_from_slice(&index_crc.to_le_bytes());
    out.extend_from_slice(&((entries.len() * PAGE_ENTRY_LEN) as u64).to_le_bytes());
    out.extend_from_slice(&END_MAGIC);
    out
}

/// Decodes the fixed footer tail. Returns `(num_entries, index_crc,
/// index_len)`.
///
/// # Errors
///
/// [`StoreError::Truncated`] when the end magic is absent (the write
/// never completed) and [`StoreError::FooterCorrupt`] when the recorded
/// lengths disagree.
pub fn decode_footer_tail(bytes: &[u8; FOOTER_TAIL_LEN]) -> Result<(usize, u32, usize)> {
    if bytes[20..28] != END_MAGIC {
        return Err(StoreError::Truncated {
            context: "missing end-of-store magic (interrupted write?)",
        });
    }
    let num_entries = u64::from_le_bytes(bytes[0..8].try_into().expect("8 bytes"));
    let index_crc = u32::from_le_bytes(bytes[8..12].try_into().expect("4 bytes"));
    let index_len = u64::from_le_bytes(bytes[12..20].try_into().expect("8 bytes"));
    let expected_len = num_entries
        .checked_mul(PAGE_ENTRY_LEN as u64)
        .filter(|&l| l == index_len)
        .ok_or_else(|| StoreError::FooterCorrupt {
            reason: format!("{num_entries} entries disagree with index length {index_len}"),
        })?;
    usize::try_from(expected_len)
        .ok()
        .zip(usize::try_from(num_entries).ok())
        .map(|(len, n)| (n, index_crc, len))
        .ok_or_else(|| StoreError::FooterCorrupt {
            reason: format!("index length {index_len} exceeds the address space"),
        })
}

/// The next page-aligned offset at or after `pos`.
pub fn align_up(pos: u64) -> u64 {
    pos.div_ceil(PAGE_ALIGN) * PAGE_ALIGN
}

#[cfg(test)]
mod tests {
    use super::*;

    fn header() -> Header {
        Header {
            num_services: 30,
            num_users: 10,
            horizon: 12,
        }
    }

    #[test]
    fn header_round_trips() {
        let bytes = header().encode();
        assert_eq!(Header::decode(&bytes).unwrap(), header());
    }

    #[test]
    fn header_rejects_foreign_magic_before_anything_else() {
        let mut bytes = header().encode();
        bytes[0] = b'X';
        assert!(matches!(
            Header::decode(&bytes),
            Err(StoreError::BadMagic { .. })
        ));
    }

    #[test]
    fn header_reports_future_versions_without_a_checksum_excuse() {
        let mut bytes = header().encode();
        bytes[8..12].copy_from_slice(&2u32.to_le_bytes());
        // Deliberately stale CRC: the version verdict must win.
        assert!(matches!(
            Header::decode(&bytes),
            Err(StoreError::UnsupportedVersion {
                found: 2,
                expected: 1
            })
        ));
    }

    #[test]
    fn header_reports_wrong_cell_width() {
        let mut bytes = header().encode();
        bytes[12..16].copy_from_slice(&8u32.to_le_bytes());
        assert!(matches!(
            Header::decode(&bytes),
            Err(StoreError::WrongCellWidth {
                found: 8,
                expected: 4
            })
        ));
    }

    #[test]
    fn header_detects_flipped_payload_bytes() {
        let mut bytes = header().encode();
        bytes[17] ^= 0x40; // inside num_services
        assert!(matches!(
            Header::decode(&bytes),
            Err(StoreError::HeaderChecksum { .. })
        ));
    }

    #[test]
    fn page_entries_round_trip() {
        let entry = PageEntry {
            section: Section::Users,
            first_row: 3,
            num_rows: 9,
            offset: 8192,
            len: 360,
            crc: 0xDEAD_BEEF,
        };
        assert_eq!(PageEntry::decode(&entry.encode(), 0).unwrap(), entry);
    }

    #[test]
    fn footer_round_trips_and_detects_truncation() {
        let entries = vec![
            PageEntry {
                section: Section::Observed,
                first_row: 0,
                num_rows: 4,
                offset: 4096,
                len: 480,
                crc: 7,
            },
            PageEntry {
                section: Section::Offsets,
                first_row: 0,
                num_rows: 0,
                offset: 8192,
                len: 64,
                crc: 9,
            },
        ];
        let footer = encode_footer(&entries);
        let tail: [u8; FOOTER_TAIL_LEN] =
            footer[footer.len() - FOOTER_TAIL_LEN..].try_into().unwrap();
        let (n, crc, len) = decode_footer_tail(&tail).unwrap();
        assert_eq!(n, 2);
        assert_eq!(len, 2 * PAGE_ENTRY_LEN);
        assert_eq!(crc, crc32(&footer[..len]));
        // Chop one byte: the tail window shifts and the magic is gone.
        let chopped: [u8; FOOTER_TAIL_LEN] = footer
            [footer.len() - FOOTER_TAIL_LEN - 1..footer.len() - 1]
            .try_into()
            .unwrap();
        assert!(matches!(
            decode_footer_tail(&chopped),
            Err(StoreError::Truncated { .. })
        ));
    }

    #[test]
    fn alignment_rounds_up_to_page_boundaries() {
        assert_eq!(align_up(0), 0);
        assert_eq!(align_up(1), 4096);
        assert_eq!(align_up(4096), 4096);
        assert_eq!(align_up(4097), 8192);
    }
}

//! Typed store failures.
//!
//! Every corruption mode the format can detect maps to its own variant
//! — a truncated file, a flipped payload byte, a foreign or
//! future-versioned file — so callers can distinguish "retry the
//! download" from "this build cannot read that version". Nothing in the
//! read path panics on malformed bytes: the fuzz/corruption battery in
//! `tests/corruption.rs` holds that line.

use std::fmt;

/// Result alias for store operations.
pub type Result<T> = std::result::Result<T, StoreError>;

/// Errors raised by the paged fleet store.
#[derive(Debug)]
pub enum StoreError {
    /// An underlying file-system operation failed.
    Io(std::io::Error),
    /// The file does not start with the store magic — not a fleet store.
    BadMagic {
        /// The first eight bytes actually found.
        found: [u8; 8],
    },
    /// The file's format version is not the one this build reads.
    UnsupportedVersion {
        /// Version recorded in the header.
        found: u32,
        /// Version this build supports.
        expected: u32,
    },
    /// The file was written with a different cell width (the format
    /// serializes `CellId` as little-endian `u32`).
    WrongCellWidth {
        /// Cell width recorded in the header, in bytes.
        found: u32,
        /// Cell width this build reads, in bytes.
        expected: u32,
    },
    /// The fixed header's checksum does not match its bytes.
    HeaderChecksum {
        /// Checksum stored in the header.
        stored: u32,
        /// Checksum computed over the header bytes.
        computed: u32,
    },
    /// The file ends before a structure it promises (interrupted write:
    /// no trailing footer magic, or a page extends past end of file).
    Truncated {
        /// Which structure was cut short.
        context: &'static str,
    },
    /// The footer index is present but self-inconsistent.
    FooterCorrupt {
        /// What failed validation.
        reason: String,
    },
    /// A page's payload does not match its recorded checksum.
    PageChecksum {
        /// Zero-based page number (footer-index order), naming the
        /// offending page.
        page: usize,
        /// Checksum recorded in the footer index.
        stored: u32,
        /// Checksum computed over the payload read back.
        computed: u32,
    },
    /// A row handed to the writer has the wrong number of cells.
    RowArity {
        /// Which section the row was destined for.
        section: &'static str,
        /// Cells per row the store was created with.
        expected: usize,
        /// Cells actually supplied.
        found: usize,
    },
    /// The writer was finished (or the reader asked to load) with fewer
    /// slots than the declared horizon.
    Incomplete {
        /// Slots promised by the header.
        expected: usize,
        /// Slots actually present.
        found: usize,
    },
    /// The footer index or offsets section decodes but describes an
    /// impossible layout (gaps in row coverage, oversized counts).
    Layout {
        /// What failed validation.
        reason: String,
    },
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "store i/o error: {e}"),
            StoreError::BadMagic { found } => {
                write!(f, "not a fleet store (magic {found:02x?})")
            }
            StoreError::UnsupportedVersion { found, expected } => write!(
                f,
                "unsupported store format version {found} (this build reads {expected})"
            ),
            StoreError::WrongCellWidth { found, expected } => write!(
                f,
                "store written with {found}-byte cells, this build reads {expected}-byte cells"
            ),
            StoreError::HeaderChecksum { stored, computed } => write!(
                f,
                "header checksum mismatch (stored {stored:#010x}, computed {computed:#010x})"
            ),
            StoreError::Truncated { context } => {
                write!(f, "store truncated: {context}")
            }
            StoreError::FooterCorrupt { reason } => {
                write!(f, "store footer corrupt: {reason}")
            }
            StoreError::PageChecksum {
                page,
                stored,
                computed,
            } => write!(
                f,
                "page {page} checksum mismatch (stored {stored:#010x}, computed {computed:#010x})"
            ),
            StoreError::RowArity {
                section,
                expected,
                found,
            } => write!(
                f,
                "{section} row holds {found} cells, store expects {expected}"
            ),
            StoreError::Incomplete { expected, found } => write!(
                f,
                "store holds {found} slots of a declared horizon of {expected}"
            ),
            StoreError::Layout { reason } => write!(f, "store layout invalid: {reason}"),
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> Self {
        StoreError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_offending_page() {
        let err = StoreError::PageChecksum {
            page: 7,
            stored: 1,
            computed: 2,
        };
        assert!(err.to_string().contains("page 7"), "{err}");
    }

    #[test]
    fn io_errors_chain_their_source() {
        let err = StoreError::from(std::io::Error::new(std::io::ErrorKind::NotFound, "gone"));
        assert!(std::error::Error::source(&err).is_some());
        assert!(err.to_string().contains("gone"));
    }
}

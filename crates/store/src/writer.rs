//! The streamed append path: slot rows in, pages out.
//!
//! [`FleetStoreWriter`] never buffers more than one partial page per
//! section, so a `N = 10⁷` population streams to disk in
//! `O(max(row_bytes, TARGET_PAGE_PAYLOAD))` memory — the full grid
//! never exists in the writing process.

use crate::crc32::crc32;
use crate::error::{Result, StoreError};
use crate::format::{align_up, encode_footer, Header, PageEntry, Section, TARGET_PAGE_PAYLOAD};
use crate::meta::{StoreMeta, StoreStats};
use chaff_markov::CellId;
use std::fs::File;
use std::io::Write;
use std::path::Path;

/// One section's in-flight page: whole rows batched until the payload
/// reaches the target size.
#[derive(Debug)]
struct PageBuffer {
    section: Section,
    rows_per_page: usize,
    first_row: u64,
    num_rows: u64,
    bytes: Vec<u8>,
}

impl PageBuffer {
    fn new(section: Section, cells_per_row: usize) -> Self {
        let row_bytes = cells_per_row * 4;
        let rows_per_page = (TARGET_PAGE_PAYLOAD / row_bytes.max(1)).max(1);
        PageBuffer {
            section,
            rows_per_page,
            first_row: 0,
            num_rows: 0,
            bytes: Vec::with_capacity(rows_per_page.min(4096) * row_bytes),
        }
    }

    fn push_row(&mut self, row: &[CellId]) {
        for &cell in row {
            self.bytes
                .extend_from_slice(&(cell.index() as u32).to_le_bytes());
        }
        self.num_rows += 1;
    }

    fn is_full(&self) -> bool {
        self.num_rows as usize >= self.rows_per_page
    }
}

/// Streams a fleet to disk slot by slot; see the
/// [format module](crate::format) for the byte layout.
///
/// The writer is *transactional at the file level*: the footer that
/// makes the file a complete store is only written by
/// [`finish`](FleetStoreWriter::finish), so a crash (or a deliberate
/// kill) mid-write leaves a file that
/// [`FleetStoreReader::open`](crate::FleetStoreReader::open) rejects as
/// [`StoreError::Truncated`] rather than silently loading a partial
/// fleet.
#[derive(Debug)]
pub struct FleetStoreWriter {
    file: File,
    pos: u64,
    meta: StoreMeta,
    index: Vec<PageEntry>,
    observed: PageBuffer,
    users: PageBuffer,
    rows_written: usize,
}

impl FleetStoreWriter {
    /// Creates (truncating) the store file at `path` and writes the
    /// fixed header.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Layout`] when `meta` is internally
    /// inconsistent (see [`StoreMeta::validate`]) and [`StoreError::Io`]
    /// on file-system failures.
    pub fn create(path: impl AsRef<Path>, meta: StoreMeta) -> Result<Self> {
        meta.validate()?;
        let mut file = File::create(path)?;
        let header = Header {
            num_services: meta.num_services as u64,
            num_users: meta.num_users as u64,
            horizon: meta.horizon as u64,
        };
        file.write_all(&header.encode())?;
        Ok(FleetStoreWriter {
            file,
            pos: crate::format::HEADER_LEN as u64,
            observed: PageBuffer::new(Section::Observed, meta.num_services),
            users: PageBuffer::new(Section::Users, meta.num_users),
            meta,
            index: Vec::new(),
            rows_written: 0,
        })
    }

    /// The metadata this store was created with.
    pub fn meta(&self) -> &StoreMeta {
        &self.meta
    }

    /// Slots appended so far.
    pub fn rows_written(&self) -> usize {
        self.rows_written
    }

    /// Appends one slot: the anonymized observed row (every service's
    /// cell, post-shuffle order) and the ground-truth user row (every
    /// user's true cell).
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::RowArity`] when either row does not match
    /// the population declared at [`create`](FleetStoreWriter::create),
    /// [`StoreError::Layout`] when the declared horizon is already full,
    /// and [`StoreError::Io`] on write failures. Arity errors leave the
    /// writer untouched — the offending slot can be re-sent.
    pub fn append_slot(&mut self, observed_row: &[CellId], user_row: &[CellId]) -> Result<()> {
        if observed_row.len() != self.meta.num_services {
            return Err(StoreError::RowArity {
                section: "observed",
                expected: self.meta.num_services,
                found: observed_row.len(),
            });
        }
        if user_row.len() != self.meta.num_users {
            return Err(StoreError::RowArity {
                section: "users",
                expected: self.meta.num_users,
                found: user_row.len(),
            });
        }
        if self.rows_written >= self.meta.horizon {
            return Err(StoreError::Layout {
                reason: format!(
                    "slot {} past the declared horizon {}",
                    self.rows_written, self.meta.horizon
                ),
            });
        }
        self.observed.push_row(observed_row);
        self.users.push_row(user_row);
        self.rows_written += 1;
        if self.observed.is_full() {
            flush_page(
                &mut self.file,
                &mut self.pos,
                &mut self.index,
                &mut self.observed,
            )?;
        }
        if self.users.is_full() {
            flush_page(
                &mut self.file,
                &mut self.pos,
                &mut self.index,
                &mut self.users,
            )?;
        }
        Ok(())
    }

    /// Seals the store: flushes partial pages, writes the offsets
    /// section (shard starts, user indices, `stats`) and the footer
    /// index, then syncs the file. Only after this returns is the file
    /// a complete store.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Incomplete`] when fewer slots than the
    /// declared horizon were appended, and [`StoreError::Io`] on write
    /// failures.
    pub fn finish(mut self, stats: StoreStats) -> Result<()> {
        if self.rows_written != self.meta.horizon {
            return Err(StoreError::Incomplete {
                expected: self.meta.horizon,
                found: self.rows_written,
            });
        }
        flush_page(
            &mut self.file,
            &mut self.pos,
            &mut self.index,
            &mut self.observed,
        )?;
        flush_page(
            &mut self.file,
            &mut self.pos,
            &mut self.index,
            &mut self.users,
        )?;
        let blob = encode_offsets(&self.meta, stats);
        for (chunk_index, chunk) in blob.chunks(TARGET_PAGE_PAYLOAD).enumerate() {
            write_aligned(&mut self.file, &mut self.pos)?;
            self.index.push(PageEntry {
                section: Section::Offsets,
                first_row: chunk_index as u64,
                num_rows: 0,
                offset: self.pos,
                len: chunk.len() as u64,
                crc: crc32(chunk),
            });
            self.file.write_all(chunk)?;
            self.pos += chunk.len() as u64;
        }
        self.file.write_all(&encode_footer(&self.index))?;
        self.file.sync_all()?;
        Ok(())
    }
}

/// Pads the file to the next page boundary with zeros.
fn write_aligned(file: &mut File, pos: &mut u64) -> Result<()> {
    let target = align_up(*pos);
    const ZEROS: [u8; 4096] = [0; 4096];
    let mut gap = (target - *pos) as usize;
    while gap > 0 {
        let n = gap.min(ZEROS.len());
        file.write_all(&ZEROS[..n])?;
        gap -= n;
    }
    *pos = target;
    Ok(())
}

/// Flushes `buffer` (if non-empty) as one aligned, checksummed page.
fn flush_page(
    file: &mut File,
    pos: &mut u64,
    index: &mut Vec<PageEntry>,
    buffer: &mut PageBuffer,
) -> Result<()> {
    if buffer.num_rows == 0 {
        return Ok(());
    }
    write_aligned(file, pos)?;
    index.push(PageEntry {
        section: buffer.section,
        first_row: buffer.first_row,
        num_rows: buffer.num_rows,
        offset: *pos,
        len: buffer.bytes.len() as u64,
        crc: crc32(&buffer.bytes),
    });
    file.write_all(&buffer.bytes)?;
    *pos += buffer.bytes.len() as u64;
    buffer.first_row += buffer.num_rows;
    buffer.num_rows = 0;
    buffer.bytes.clear();
    Ok(())
}

/// Serializes the offsets section: length-prefixed `u64` tables, then
/// the four stats counters.
fn encode_offsets(meta: &StoreMeta, stats: StoreStats) -> Vec<u8> {
    let mut out = Vec::with_capacity(
        16 + 8 * (meta.shard_starts.len() + meta.user_observed_indices.len()) + 32,
    );
    let push_table = |table: &[usize], out: &mut Vec<u8>| {
        out.extend_from_slice(&(table.len() as u64).to_le_bytes());
        for &v in table {
            out.extend_from_slice(&(v as u64).to_le_bytes());
        }
    };
    push_table(&meta.shard_starts, &mut out);
    push_table(&meta.user_observed_indices, &mut out);
    for v in [
        stats.migrations,
        stats.spills,
        stats.user_slots,
        stats.chaff_services,
    ] {
        out.extend_from_slice(&(v as u64).to_le_bytes());
    }
    out
}

//! Fleet-shape metadata and aggregate stats carried by a store file.

use crate::error::{Result, StoreError};

/// The fleet shape and offset tables a store is created with.
///
/// Mirrors what `chaff_sim`'s fleet pipeline knows before the first
/// slot is generated: the observed population width, the user count,
/// the horizon, the sharded observation log's shard boundaries and the
/// post-anonymization index of every user's real service.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StoreMeta {
    /// Observed trajectories per slot (users + chaffs).
    pub num_services: usize,
    /// Ground-truth users.
    pub num_users: usize,
    /// Slots the store will hold.
    pub horizon: usize,
    /// Shard boundary prefix table of the observation log
    /// (`shard_starts[s]..shard_starts[s + 1]` is shard `s`'s service
    /// range; first entry 0, last entry `num_services`).
    pub shard_starts: Vec<usize>,
    /// Post-shuffle observed index of each user's real service
    /// (`num_users` entries, each `< num_services`).
    pub user_observed_indices: Vec<usize>,
}

impl StoreMeta {
    /// Validates the internal consistency of the metadata.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Layout`] naming the offending table when
    /// the shard starts are not a monotone prefix table over
    /// `num_services` or the user indices do not match the population.
    pub fn validate(&self) -> Result<()> {
        let starts_ok = self.shard_starts.len() >= 2
            && self.shard_starts.first() == Some(&0)
            && self.shard_starts.last() == Some(&self.num_services)
            && self.shard_starts.windows(2).all(|w| w[0] <= w[1]);
        if !starts_ok {
            return Err(StoreError::Layout {
                reason: format!(
                    "shard_starts {:?} is not a monotone prefix table over {} services",
                    self.shard_starts, self.num_services
                ),
            });
        }
        if self.user_observed_indices.len() != self.num_users {
            return Err(StoreError::Layout {
                reason: format!(
                    "{} user indices for {} users",
                    self.user_observed_indices.len(),
                    self.num_users
                ),
            });
        }
        if let Some(&bad) = self
            .user_observed_indices
            .iter()
            .find(|&&i| i >= self.num_services.max(1))
        {
            return Err(StoreError::Layout {
                reason: format!(
                    "user observed index {bad} exceeds {} services",
                    self.num_services
                ),
            });
        }
        Ok(())
    }
}

/// Aggregate fleet statistics persisted at
/// [`finish`](crate::FleetStoreWriter::finish) (the on-disk mirror of
/// `chaff_sim`'s `FleetStats`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Total service migrations across the run.
    pub migrations: usize,
    /// Capacity spills (placements diverted off the planned cell).
    pub spills: usize,
    /// User-slots simulated.
    pub user_slots: usize,
    /// Chaff services across the fleet.
    pub chaff_services: usize,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn meta() -> StoreMeta {
        StoreMeta {
            num_services: 6,
            num_users: 2,
            horizon: 3,
            shard_starts: vec![0, 4, 6],
            user_observed_indices: vec![5, 0],
        }
    }

    #[test]
    fn valid_meta_passes() {
        meta().validate().unwrap();
    }

    #[test]
    fn malformed_tables_are_rejected() {
        let mut m = meta();
        m.shard_starts = vec![0, 7];
        assert!(matches!(m.validate(), Err(StoreError::Layout { .. })));
        let mut m = meta();
        m.shard_starts = vec![4, 6];
        assert!(m.validate().is_err());
        let mut m = meta();
        m.user_observed_indices = vec![5];
        assert!(m.validate().is_err());
        let mut m = meta();
        m.user_observed_indices = vec![5, 6];
        assert!(m.validate().is_err());
    }
}

//! The two read paths: whole-grid restore and bounded-memory slot
//! streaming.
//!
//! [`FleetStoreReader::open`] validates the header, locates the footer
//! from end of file and cross-checks the page index before any payload
//! is touched — a truncated or bit-flipped file fails typed at open (or
//! at the first read of the damaged page), never with a panic.

use crate::crc32::crc32;
use crate::error::{Result, StoreError};
use crate::format::{
    decode_footer_tail, Header, PageEntry, Section, FOOTER_TAIL_LEN, HEADER_LEN, PAGE_ENTRY_LEN,
};
use crate::meta::{StoreMeta, StoreStats};
use chaff_markov::{CellGrid, CellId, TrajectoryArena};
use std::fs::File;
use std::io::{Read, Seek, SeekFrom};
use std::path::Path;

/// A fully restored fleet: what `chaff_sim`'s batch pipeline would have
/// produced in memory, plus the persisted offset tables and stats.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StoredFleet {
    /// The anonymized observed population, slot-major — bit-for-bit the
    /// grid that was appended.
    pub observed: CellGrid,
    /// Ground-truth user trajectories, trajectory-major.
    pub user_cells: TrajectoryArena,
    /// Shard boundary prefix table of the originating observation log.
    pub shard_starts: Vec<usize>,
    /// Post-shuffle observed index of each user's real service.
    pub user_observed_indices: Vec<usize>,
    /// Aggregate fleet statistics recorded at finish.
    pub stats: StoreStats,
}

/// Opens and reads store files; see the crate docs for the format.
#[derive(Debug)]
pub struct FleetStoreReader {
    file: File,
    pages: Vec<PageEntry>,
    /// Indices into `pages` for each data section, sorted by
    /// `first_row` (the order rows must be replayed in).
    observed_order: Vec<usize>,
    users_order: Vec<usize>,
    meta: StoreMeta,
    stats: StoreStats,
}

impl FleetStoreReader {
    /// Opens `path`, validating header, footer index and the offsets
    /// section (the data pages themselves are checksummed lazily as
    /// they are read).
    ///
    /// # Errors
    ///
    /// Every corruption mode maps to a typed [`StoreError`]: foreign
    /// files ([`BadMagic`](StoreError::BadMagic)), other format
    /// versions ([`UnsupportedVersion`](StoreError::UnsupportedVersion)),
    /// interrupted writes ([`Truncated`](StoreError::Truncated)),
    /// damaged indices ([`FooterCorrupt`](StoreError::FooterCorrupt))
    /// and damaged offset pages
    /// ([`PageChecksum`](StoreError::PageChecksum) naming the page).
    pub fn open(path: impl AsRef<Path>) -> Result<Self> {
        let mut file = File::open(path)?;
        let file_len = file.metadata()?.len();
        if file_len < (HEADER_LEN + FOOTER_TAIL_LEN) as u64 {
            return Err(StoreError::Truncated {
                context: "file shorter than header + footer",
            });
        }
        let mut header_bytes = [0u8; HEADER_LEN];
        file.read_exact(&mut header_bytes)?;
        let header = Header::decode(&header_bytes)?;

        let mut tail = [0u8; FOOTER_TAIL_LEN];
        file.seek(SeekFrom::Start(file_len - FOOTER_TAIL_LEN as u64))?;
        file.read_exact(&mut tail)?;
        let (num_entries, index_crc, index_len) = decode_footer_tail(&tail)?;
        let index_start = file_len
            .checked_sub((FOOTER_TAIL_LEN + index_len) as u64)
            .filter(|&s| s >= HEADER_LEN as u64)
            .ok_or(StoreError::Truncated {
                context: "footer index extends before the header",
            })?;
        let mut index_bytes = vec![0u8; index_len];
        file.seek(SeekFrom::Start(index_start))?;
        file.read_exact(&mut index_bytes)?;
        let computed = crc32(&index_bytes);
        if computed != index_crc {
            return Err(StoreError::FooterCorrupt {
                reason: format!(
                    "index checksum mismatch (stored {index_crc:#010x}, computed {computed:#010x})"
                ),
            });
        }
        let mut pages = Vec::with_capacity(num_entries);
        for (i, chunk) in index_bytes.chunks_exact(PAGE_ENTRY_LEN).enumerate() {
            let entry = PageEntry::decode(chunk.try_into().expect("exact chunk"), i)?;
            let end =
                entry
                    .offset
                    .checked_add(entry.len)
                    .ok_or_else(|| StoreError::FooterCorrupt {
                        reason: format!("page {i} offset + length overflows"),
                    })?;
            if entry.offset < HEADER_LEN as u64 || end > index_start {
                return Err(StoreError::Truncated {
                    context: "page payload extends past the footer",
                });
            }
            pages.push(entry);
        }

        let observed_order = ordered_coverage(
            &pages,
            Section::Observed,
            header.num_services as usize * 4,
            header.horizon,
        )?;
        let users_order = ordered_coverage(
            &pages,
            Section::Users,
            header.num_users as usize * 4,
            header.horizon,
        )?;

        let (shard_starts, user_observed_indices, stats) =
            read_offsets(&mut file, &pages, &header)?;
        let meta = StoreMeta {
            num_services: header.num_services as usize,
            num_users: header.num_users as usize,
            horizon: header.horizon as usize,
            shard_starts,
            user_observed_indices,
        };
        meta.validate()?;
        Ok(FleetStoreReader {
            file,
            pages,
            observed_order,
            users_order,
            meta,
            stats,
        })
    }

    /// The fleet shape and offset tables recorded in the store.
    pub fn meta(&self) -> &StoreMeta {
        &self.meta
    }

    /// Aggregate fleet statistics recorded at finish.
    pub fn stats(&self) -> StoreStats {
        self.stats
    }

    /// Observed trajectories per slot.
    pub fn num_services(&self) -> usize {
        self.meta.num_services
    }

    /// Ground-truth users.
    pub fn num_users(&self) -> usize {
        self.meta.num_users
    }

    /// Slots in the store.
    pub fn horizon(&self) -> usize {
        self.meta.horizon
    }

    /// Restores the whole fleet into memory, bit-for-bit equal to the
    /// arenas that were streamed in.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::PageChecksum`] (naming the page) when a
    /// payload was damaged on disk, [`StoreError::Truncated`] when it
    /// ends early, and [`StoreError::Io`] on read failures.
    pub fn load(&mut self) -> Result<StoredFleet> {
        let (num_services, num_users, horizon) = (
            self.meta.num_services,
            self.meta.num_users,
            self.meta.horizon,
        );
        let mut observed = CellGrid::new(num_services);
        let mut buf = Vec::new();
        let mut cells = Vec::new();
        for &page_no in &self.observed_order {
            let entry = self.pages[page_no];
            read_page(&mut self.file, &entry, page_no, &mut buf)?;
            decode_cells(&buf, &mut cells);
            for row in cells
                .chunks_exact(num_services.max(1))
                .take(entry.num_rows as usize)
            {
                observed.push_row(row).map_err(|e| StoreError::Layout {
                    reason: format!("observed row rejected: {e}"),
                })?;
            }
        }
        let mut user_cells = TrajectoryArena::new(num_users, horizon);
        for &page_no in &self.users_order {
            let entry = self.pages[page_no];
            read_page(&mut self.file, &entry, page_no, &mut buf)?;
            decode_cells(&buf, &mut cells);
            if num_users == 0 {
                continue;
            }
            for (r, row) in cells.chunks_exact(num_users).enumerate() {
                let t = entry.first_row as usize + r;
                for (i, &cell) in row.iter().enumerate() {
                    user_cells.row_mut(i)[t] = cell;
                }
            }
        }
        Ok(StoredFleet {
            observed,
            user_cells,
            shard_starts: self.meta.shard_starts.clone(),
            user_observed_indices: self.meta.user_observed_indices.clone(),
            stats: self.stats,
        })
    }

    /// A bounded-memory iterator over the observed slot rows, in slot
    /// order: one page buffer
    /// (`max(row_bytes, TARGET_PAGE_PAYLOAD)` bytes) is resident at a
    /// time, so an `N = 10⁷` population streams through detection
    /// without ever materializing the grid.
    pub fn stream_slots(&mut self) -> SlotStream<'_> {
        SlotStream {
            file: &mut self.file,
            pages: &self.pages,
            order: &self.observed_order,
            next_page: 0,
            num_services: self.meta.num_services,
            horizon: self.meta.horizon,
            emitted: 0,
            buf: Vec::new(),
            cells: Vec::new(),
            rows_in_buf: 0,
            row_cursor: 0,
        }
    }
}

/// Chunked-read iterator over observed slot rows (see
/// [`FleetStoreReader::stream_slots`]). Also a
/// [`chaff_core::detector::SlotRowSource`], so it plugs straight into
/// the unified
/// [`detect_prefixes`](chaff_core::detector::BatchPrefixDetector::detect_prefixes)
/// entry as [`DetectObservations::Paged`](chaff_core::detector::DetectObservations).
#[derive(Debug)]
pub struct SlotStream<'a> {
    file: &'a mut File,
    pages: &'a [PageEntry],
    order: &'a [usize],
    next_page: usize,
    num_services: usize,
    horizon: usize,
    emitted: usize,
    buf: Vec<u8>,
    cells: Vec<CellId>,
    rows_in_buf: usize,
    row_cursor: usize,
}

impl SlotStream<'_> {
    /// Observed trajectories per row.
    pub fn num_trajectories(&self) -> usize {
        self.num_services
    }

    /// Total rows the stream will yield.
    pub fn horizon(&self) -> usize {
        self.horizon
    }

    /// Rows yielded so far.
    pub fn rows_emitted(&self) -> usize {
        self.emitted
    }

    /// The next slot row, or `None` after the last slot. Each page is
    /// checksum-verified as it is paged in.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::PageChecksum`] naming the damaged page,
    /// [`StoreError::Truncated`] on short reads, and [`StoreError::Io`]
    /// on other read failures.
    pub fn next_row(&mut self) -> Result<Option<&[CellId]>> {
        if self.row_cursor >= self.rows_in_buf {
            if self.next_page >= self.order.len() {
                return Ok(None);
            }
            let page_no = self.order[self.next_page];
            let entry = self.pages[page_no];
            read_page(self.file, &entry, page_no, &mut self.buf)?;
            decode_cells(&self.buf, &mut self.cells);
            self.rows_in_buf = entry.num_rows as usize;
            self.row_cursor = 0;
            self.next_page += 1;
        }
        let start = self.row_cursor * self.num_services;
        self.row_cursor += 1;
        self.emitted += 1;
        Ok(Some(&self.cells[start..start + self.num_services]))
    }
}

impl chaff_core::detector::SlotRowSource for SlotStream<'_> {
    fn num_trajectories(&self) -> usize {
        self.num_services
    }

    fn horizon(&self) -> usize {
        self.horizon
    }

    fn next_row(&mut self) -> chaff_core::Result<Option<&[CellId]>> {
        let slot = self.emitted;
        SlotStream::next_row(self).map_err(|e| chaff_core::CoreError::RowSource {
            slot,
            reason: e.to_string(),
        })
    }
}

/// Seeks to and reads one page payload, verifying its checksum.
fn read_page(file: &mut File, entry: &PageEntry, page: usize, buf: &mut Vec<u8>) -> Result<()> {
    buf.resize(entry.len as usize, 0);
    file.seek(SeekFrom::Start(entry.offset))?;
    file.read_exact(buf).map_err(|e| {
        if e.kind() == std::io::ErrorKind::UnexpectedEof {
            StoreError::Truncated {
                context: "page payload ends before its recorded length",
            }
        } else {
            StoreError::Io(e)
        }
    })?;
    let computed = crc32(buf);
    if computed != entry.crc {
        return Err(StoreError::PageChecksum {
            page,
            stored: entry.crc,
            computed,
        });
    }
    Ok(())
}

/// Decodes a page payload into cells (little-endian `u32` each; every
/// `u32` is a valid [`CellId`], so this cannot fail — integrity is the
/// checksum's job).
fn decode_cells(bytes: &[u8], out: &mut Vec<CellId>) {
    out.clear();
    out.reserve(bytes.len() / 4);
    out.extend(
        bytes
            .chunks_exact(4)
            .map(|c| CellId::new(u32::from_le_bytes(c.try_into().expect("4-byte chunk")) as usize)),
    );
}

/// Validates that `section`'s pages tile `0..horizon` without gaps or
/// overlap and that each page's length matches its row count; returns
/// the page indices in row order.
fn ordered_coverage(
    pages: &[PageEntry],
    section: Section,
    row_bytes: usize,
    horizon: u64,
) -> Result<Vec<usize>> {
    let mut order: Vec<usize> = (0..pages.len())
        .filter(|&i| pages[i].section == section)
        .collect();
    order.sort_by_key(|&i| pages[i].first_row);
    let mut next_row = 0u64;
    for &i in &order {
        let e = &pages[i];
        if e.first_row != next_row {
            return Err(StoreError::Layout {
                reason: format!(
                    "page {i} starts at row {} but row {next_row} is next ({section:?})",
                    e.first_row
                ),
            });
        }
        if e.len != e.num_rows * row_bytes as u64 {
            return Err(StoreError::FooterCorrupt {
                reason: format!(
                    "page {i} length {} disagrees with {} rows of {row_bytes} bytes",
                    e.len, e.num_rows
                ),
            });
        }
        next_row += e.num_rows;
    }
    if next_row != horizon {
        return Err(StoreError::Incomplete {
            expected: horizon as usize,
            found: next_row as usize,
        });
    }
    Ok(order)
}

/// Reads and parses the offsets section.
fn read_offsets(
    file: &mut File,
    pages: &[PageEntry],
    header: &Header,
) -> Result<(Vec<usize>, Vec<usize>, StoreStats)> {
    let mut order: Vec<usize> = (0..pages.len())
        .filter(|&i| pages[i].section == Section::Offsets)
        .collect();
    order.sort_by_key(|&i| pages[i].first_row);
    let mut blob = Vec::new();
    let mut buf = Vec::new();
    for &page_no in &order {
        read_page(file, &pages[page_no], page_no, &mut buf)?;
        blob.extend_from_slice(&buf);
    }
    let mut cursor = 0usize;
    let shard_starts = take_table(&blob, &mut cursor)?;
    let user_observed_indices = take_table(&blob, &mut cursor)?;
    let stats = StoreStats {
        migrations: take_u64(&blob, &mut cursor)? as usize,
        spills: take_u64(&blob, &mut cursor)? as usize,
        user_slots: take_u64(&blob, &mut cursor)? as usize,
        chaff_services: take_u64(&blob, &mut cursor)? as usize,
    };
    if shard_starts.last() != Some(&(header.num_services as usize)) {
        return Err(StoreError::Layout {
            reason: "shard starts disagree with the header's service count".into(),
        });
    }
    Ok((shard_starts, user_observed_indices, stats))
}

/// Reads one little-endian `u64` out of the offsets blob.
fn take_u64(blob: &[u8], cursor: &mut usize) -> Result<u64> {
    let end = *cursor + 8;
    if end > blob.len() {
        return Err(StoreError::Layout {
            reason: "offsets section ends mid-field".into(),
        });
    }
    let v = u64::from_le_bytes(blob[*cursor..end].try_into().expect("8 bytes"));
    *cursor = end;
    Ok(v)
}

/// Reads one length-prefixed `u64` table out of the offsets blob.
fn take_table(blob: &[u8], cursor: &mut usize) -> Result<Vec<usize>> {
    let count = take_u64(blob, cursor)?;
    if count > ((blob.len() - *cursor) / 8) as u64 {
        return Err(StoreError::Layout {
            reason: format!("offsets table claims {count} entries past the section end"),
        });
    }
    (0..count)
        .map(|_| Ok(take_u64(blob, cursor)? as usize))
        .collect()
}

//! CRC32 (IEEE 802.3, reflected polynomial `0xEDB88320`) — the page and
//! header checksum of the store format.
//!
//! Hand-rolled (table-driven, one byte per step) because the workspace
//! vendors no checksum crate; the IEEE variant is the one every external
//! tool (`cksum -o3`, zlib, Python `binascii.crc32`) reproduces, so
//! store files can be audited without this code.

/// The 256-entry lookup table for the reflected IEEE polynomial.
const TABLE: [u32; 256] = build_table();

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

/// Incremental CRC32 state, for checksumming a page as it is buffered.
#[derive(Debug, Clone, Copy)]
pub struct Crc32 {
    state: u32,
}

impl Crc32 {
    /// A fresh checksum state.
    pub fn new() -> Self {
        Crc32 { state: 0xFFFF_FFFF }
    }

    /// Feeds `bytes` into the running checksum.
    pub fn update(&mut self, bytes: &[u8]) {
        let mut state = self.state;
        for &b in bytes {
            state = (state >> 8) ^ TABLE[((state ^ b as u32) & 0xFF) as usize];
        }
        self.state = state;
    }

    /// Finishes the checksum.
    pub fn finalize(self) -> u32 {
        !self.state
    }
}

impl Default for Crc32 {
    fn default() -> Self {
        Crc32::new()
    }
}

/// One-shot CRC32 of `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = Crc32::new();
    crc.update(bytes);
    crc.finalize()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_the_published_ieee_vectors() {
        // The canonical check value from the CRC catalogue.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn incremental_updates_equal_one_shot() {
        let data: Vec<u8> = (0..=255u8).cycle().take(10_000).collect();
        let mut crc = Crc32::new();
        for chunk in data.chunks(7) {
            crc.update(chunk);
        }
        assert_eq!(crc.finalize(), crc32(&data));
    }

    #[test]
    fn single_bit_flips_change_the_checksum() {
        let data = vec![0x5Au8; 4096];
        let base = crc32(&data);
        for byte in [0usize, 1000, 4095] {
            for bit in 0..8 {
                let mut corrupt = data.clone();
                corrupt[byte] ^= 1 << bit;
                assert_ne!(crc32(&corrupt), base, "byte {byte} bit {bit}");
            }
        }
    }
}

//! `chaff-store` — the persistent paged fleet store (ISSUE 8).
//!
//! Every experiment used to regenerate its fleet from scratch, capping
//! runs below the paper's "millions of users served by edge clouds"
//! regime (He et al., ICDCS'17). This crate persists a simulated fleet
//! — the anonymized observed [`CellGrid`](chaff_markov::CellGrid), the
//! ground-truth user [`TrajectoryArena`](chaff_markov::TrajectoryArena)
//! and the observation log's offset tables — in a versioned, paged,
//! checksummed on-disk format, so an `N = 10⁶`–`10⁷` experiment can
//! checkpoint, resume, and stream populations larger than RAM through
//! detection.
//!
//! Three access paths:
//!
//! * [`FleetStoreWriter`] — streamed append, one slot row at a time
//!   (from `FleetSimulation` or `StreamingFleetEngine` in `chaff-sim`);
//!   the full population never resides in memory.
//! * [`FleetStoreReader::load`] — whole-grid restore, bit-for-bit equal
//!   to the in-memory arenas (proptested across shards and budgets).
//! * [`FleetStoreReader::stream_slots`] — chunked-read iterator feeding
//!   the unified `chaff_core` detection entry page by page, enabling
//!   `N = 10⁷` detection in bounded RSS.
//!
//! See the [format module](mod@format) for the byte layout, [`error`] for
//! the corruption taxonomy, and the workspace ARCHITECTURE.md for the
//! design rationale and versioning policy.

pub mod crc32;
pub mod error;
pub mod format;
mod meta;
mod reader;
mod writer;

pub use error::{Result, StoreError};
pub use meta::{StoreMeta, StoreStats};
pub use reader::{FleetStoreReader, SlotStream, StoredFleet};
pub use writer::FleetStoreWriter;

#[cfg(test)]
mod tests {
    use super::*;
    use chaff_markov::CellId;
    use std::path::PathBuf;

    fn temp_path(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("chaff_store_{}_{name}", std::process::id()))
    }

    fn tiny_meta() -> StoreMeta {
        StoreMeta {
            num_services: 3,
            num_users: 1,
            horizon: 4,
            shard_starts: vec![0, 2, 3],
            user_observed_indices: vec![1],
        }
    }

    #[test]
    fn write_load_round_trips_bit_for_bit() {
        let path = temp_path("roundtrip");
        let mut writer = FleetStoreWriter::create(&path, tiny_meta()).unwrap();
        for t in 0..4usize {
            let observed: Vec<CellId> = (0..3).map(|i| CellId::new(t * 3 + i)).collect();
            let user = [CellId::new(t)];
            writer.append_slot(&observed, &user).unwrap();
        }
        let stats = StoreStats {
            migrations: 5,
            spills: 1,
            user_slots: 4,
            chaff_services: 2,
        };
        writer.finish(stats).unwrap();

        let mut reader = FleetStoreReader::open(&path).unwrap();
        assert_eq!(reader.num_services(), 3);
        assert_eq!(reader.num_users(), 1);
        assert_eq!(reader.horizon(), 4);
        let fleet = reader.load().unwrap();
        assert_eq!(fleet.stats, stats);
        assert_eq!(fleet.shard_starts, vec![0, 2, 3]);
        assert_eq!(fleet.user_observed_indices, vec![1]);
        for t in 0..4usize {
            let expected: Vec<CellId> = (0..3).map(|i| CellId::new(t * 3 + i)).collect();
            assert_eq!(fleet.observed.row(t), &expected[..]);
        }
        assert_eq!(
            fleet.user_cells.row(0),
            &[
                CellId::new(0),
                CellId::new(1),
                CellId::new(2),
                CellId::new(3)
            ]
        );
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn stream_slots_yields_the_written_rows_in_order() {
        let path = temp_path("stream");
        let mut writer = FleetStoreWriter::create(&path, tiny_meta()).unwrap();
        for t in 0..4usize {
            let observed: Vec<CellId> = (0..3).map(|i| CellId::new(t + i)).collect();
            writer.append_slot(&observed, &[CellId::new(t)]).unwrap();
        }
        writer.finish(StoreStats::default()).unwrap();
        let mut reader = FleetStoreReader::open(&path).unwrap();
        let mut stream = reader.stream_slots();
        assert_eq!(stream.num_trajectories(), 3);
        assert_eq!(stream.horizon(), 4);
        for t in 0..4usize {
            let expected: Vec<CellId> = (0..3).map(|i| CellId::new(t + i)).collect();
            assert_eq!(stream.next_row().unwrap().unwrap(), &expected[..]);
        }
        assert!(stream.next_row().unwrap().is_none());
        assert_eq!(stream.rows_emitted(), 4);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn writer_rejects_wrong_arity_and_stays_usable() {
        let path = temp_path("arity");
        let mut writer = FleetStoreWriter::create(&path, tiny_meta()).unwrap();
        let err = writer
            .append_slot(&[CellId::new(0)], &[CellId::new(0)])
            .unwrap_err();
        assert!(matches!(
            err,
            StoreError::RowArity {
                section: "observed",
                expected: 3,
                found: 1
            }
        ));
        let err = writer.append_slot(&[CellId::new(0); 3], &[]).unwrap_err();
        assert!(matches!(
            err,
            StoreError::RowArity {
                section: "users",
                ..
            }
        ));
        // The rejected slots were not counted.
        assert_eq!(writer.rows_written(), 0);
        for t in 0..4usize {
            writer
                .append_slot(&[CellId::new(t); 3], &[CellId::new(t)])
                .unwrap();
        }
        // A fifth slot exceeds the declared horizon.
        assert!(matches!(
            writer.append_slot(&[CellId::new(0); 3], &[CellId::new(0)]),
            Err(StoreError::Layout { .. })
        ));
        writer.finish(StoreStats::default()).unwrap();
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn finishing_early_is_an_incomplete_error() {
        let path = temp_path("incomplete");
        let writer = FleetStoreWriter::create(&path, tiny_meta()).unwrap();
        assert!(matches!(
            writer.finish(StoreStats::default()),
            Err(StoreError::Incomplete {
                expected: 4,
                found: 0
            })
        ));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn unfinished_files_do_not_open() {
        let path = temp_path("unfinished");
        let mut writer = FleetStoreWriter::create(&path, tiny_meta()).unwrap();
        for t in 0..4usize {
            writer
                .append_slot(&[CellId::new(t); 3], &[CellId::new(t)])
                .unwrap();
        }
        // Dropped without finish(): no footer, so open() must refuse.
        drop(writer);
        assert!(matches!(
            FleetStoreReader::open(&path),
            Err(StoreError::Truncated { .. })
        ));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn create_rejects_inconsistent_meta() {
        let mut meta = tiny_meta();
        meta.user_observed_indices = vec![9];
        assert!(matches!(
            FleetStoreWriter::create(temp_path("badmeta"), meta),
            Err(StoreError::Layout { .. })
        ));
    }

    #[test]
    fn multi_page_populations_split_and_reassemble() {
        // Rows big enough that the target payload forces several pages:
        // 70k cells/row × 4 B = 280 kB → 3 rows/page at the 1 MiB target.
        let n = 70_000;
        let horizon = 8;
        let meta = StoreMeta {
            num_services: n,
            num_users: 2,
            horizon,
            shard_starts: vec![0, n / 2, n],
            user_observed_indices: vec![7, 11],
        };
        let path = temp_path("multipage");
        let mut writer = FleetStoreWriter::create(&path, meta).unwrap();
        let row = |t: usize| -> Vec<CellId> {
            (0..n)
                .map(|i| CellId::new((i * 7 + t * 13) % 1000))
                .collect()
        };
        for t in 0..horizon {
            writer
                .append_slot(&row(t), &[CellId::new(t), CellId::new(t + 1)])
                .unwrap();
        }
        writer.finish(StoreStats::default()).unwrap();
        let mut reader = FleetStoreReader::open(&path).unwrap();
        let fleet = reader.load().unwrap();
        for t in 0..horizon {
            assert_eq!(fleet.observed.row(t), &row(t)[..], "slot {t}");
        }
        let mut stream = reader.stream_slots();
        for t in 0..horizon {
            assert_eq!(stream.next_row().unwrap().unwrap(), &row(t)[..], "slot {t}");
        }
        assert!(stream.next_row().unwrap().is_none());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn zero_horizon_stores_round_trip() {
        let meta = StoreMeta {
            num_services: 5,
            num_users: 2,
            horizon: 0,
            shard_starts: vec![0, 5],
            user_observed_indices: vec![0, 1],
        };
        let path = temp_path("empty");
        let writer = FleetStoreWriter::create(&path, meta).unwrap();
        writer.finish(StoreStats::default()).unwrap();
        let mut reader = FleetStoreReader::open(&path).unwrap();
        let fleet = reader.load().unwrap();
        assert_eq!(fleet.observed.horizon(), 0);
        assert_eq!(fleet.observed.num_trajectories(), 5);
        assert!(reader.stream_slots().next_row().unwrap().is_none());
        std::fs::remove_file(&path).unwrap();
    }
}

//! Parity battery for the streamed, sharded ingestion engine: the
//! streamed pipeline must reproduce the legacy single-threaded
//! `TraceDatasetBuilder::build` **bit-for-bit** across shard counts,
//! batch sizes and seeds — trajectories, node ids, and the empirical
//! model's transition matrix and occupancy included.

use chaff_mobility::pipeline::{TraceDataset, TraceDatasetBuilder};
use chaff_mobility::stream::{CrawdadDirStream, ReplicatedTaxiStream, TraceStream};
use chaff_mobility::taxi::TaxiFleetConfig;
use proptest::prelude::*;

/// A reduced-scale builder: big enough to exercise hotspot skew and the
/// inactivity filter, small enough that a debug-mode build stays in the
/// low milliseconds.
fn small(seed: u64) -> TraceDatasetBuilder {
    TraceDatasetBuilder::new()
        .num_nodes(18)
        .num_towers(90)
        .horizon_slots(24)
        .seed(seed)
}

/// Asserts full bit-for-bit dataset equality, empirical model included.
fn assert_dataset_eq(streamed: &TraceDataset, legacy: &TraceDataset, context: &str) {
    assert_eq!(
        streamed.cell_map().num_cells(),
        legacy.cell_map().num_cells(),
        "{context}: cell count"
    );
    assert_eq!(streamed.node_ids(), legacy.node_ids(), "{context}: ids");
    assert_eq!(
        streamed.trajectories(),
        legacy.trajectories(),
        "{context}: trajectories"
    );
    assert_eq!(
        streamed.empirical().visits(),
        legacy.empirical().visits(),
        "{context}: visits"
    );
    assert_eq!(
        streamed.empirical().num_transitions(),
        legacy.empirical().num_transitions(),
        "{context}: transitions"
    );
    assert_eq!(
        streamed.model().matrix(),
        legacy.model().matrix(),
        "{context}: matrix"
    );
    let pi_s = streamed.model().initial().as_slice();
    let pi_l = legacy.model().initial().as_slice();
    for (i, (a, b)) in pi_s.iter().zip(pi_l).enumerate() {
        assert_eq!(a.to_bits(), b.to_bits(), "{context}: initial[{i}]");
    }
}

#[test]
fn streamed_equals_legacy_across_the_issue_shard_counts() {
    // The ISSUE's acceptance sweep: shards ∈ {1, 2, 7}, several seeds.
    for seed in [0u64, 99, 1709, 20170605] {
        let legacy = small(seed).build().unwrap();
        for shards in [1usize, 2, 7] {
            let streamed = small(seed).shards(shards).build_streaming().unwrap();
            assert_dataset_eq(&streamed, &legacy, &format!("seed {seed}, shards {shards}"));
        }
    }
}

#[test]
fn streamed_equals_legacy_for_external_traces() {
    // The external-trace path (VecTraceStream + buffered window
    // discovery) must agree with the legacy builder too.
    let config = TaxiFleetConfig {
        num_nodes: 14,
        duration_s: 30 * 60,
        ..TaxiFleetConfig::default()
    };
    let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(4242);
    let traces = chaff_mobility::taxi::generate_fleet(&config, &mut rng).unwrap();
    let legacy = small(5)
        .horizon_slots(20)
        .with_traces(traces.clone())
        .build()
        .unwrap();
    for shards in [1usize, 2, 7] {
        let streamed = small(5)
            .horizon_slots(20)
            .with_traces(traces.clone())
            .shards(shards)
            .batch_nodes(3)
            .build_streaming()
            .unwrap();
        assert_dataset_eq(&streamed, &legacy, &format!("external, shards {shards}"));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn streamed_pipeline_is_bit_for_bit_shard_and_batch_independent(
        seed in 0u64..10_000,
        shard_pick in 0usize..3,
        batch in 1usize..40,
    ) {
        let shards = [1usize, 2, 7][shard_pick];
        let legacy = small(seed).build().unwrap();
        let streamed = small(seed)
            .shards(shards)
            .batch_nodes(batch)
            .build_streaming()
            .unwrap();
        assert_dataset_eq(
            &streamed,
            &legacy,
            &format!("seed {seed}, shards {shards}, batch {batch}"),
        );
    }
}

#[test]
fn amplified_fleets_scale_node_count_with_unique_ids() {
    let base = small(7).build_streaming().unwrap();
    let amplified = small(7).replicas(6).shards(2).build_streaming().unwrap();
    // Replicas are statistically independent fleets over the same towers:
    // the amplified survivor count grows roughly linearly.
    assert!(
        amplified.trajectories().len() >= 4 * base.trajectories().len(),
        "amplified {} vs base {}",
        amplified.trajectories().len(),
        base.trajectories().len()
    );
    assert_eq!(
        amplified.cell_map().num_cells(),
        base.cell_map().num_cells(),
        "amplification must not disturb the tower draw"
    );
    let mut ids: Vec<&str> = amplified.node_ids().iter().map(String::as_str).collect();
    ids.sort_unstable();
    ids.dedup();
    assert_eq!(ids.len(), amplified.node_ids().len(), "duplicate node ids");

    // Deterministic: the amplified build reproduces itself, and is
    // shard-count independent like the base pipeline.
    let again = small(7).replicas(6).shards(5).build_streaming().unwrap();
    assert_dataset_eq(&again, &amplified, "amplified re-run");
}

#[test]
fn amplified_empirical_model_explains_every_replica() {
    let amplified = small(11).replicas(4).build_streaming().unwrap();
    for (id, t) in amplified.node_ids().iter().zip(amplified.trajectories()) {
        assert!(
            amplified.model().log_likelihood(t).is_finite(),
            "trajectory of {id} must be explainable under the pooled model"
        );
    }
}

#[test]
fn crawdad_stream_feeds_build_from_stream() {
    // Round-trip a small synthetic fleet through the on-disk CRAWDAD
    // format, then ingest the directory through the streaming engine and
    // compare with handing the same traces to the legacy builder.
    let config = TaxiFleetConfig {
        num_nodes: 8,
        duration_s: 26 * 60,
        ..TaxiFleetConfig::default()
    };
    let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(999);
    let fleet = chaff_mobility::taxi::generate_fleet(&config, &mut rng).unwrap();
    let dir = std::env::temp_dir().join(format!("crawdad_ingest_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    for trace in &fleet {
        std::fs::write(
            dir.join(format!("new_{}.txt", trace.node_id)),
            chaff_mobility::crawdad::to_crawdad_text(trace),
        )
        .unwrap();
    }

    let stream = CrawdadDirStream::new(&dir).unwrap().with_bbox(config.bbox);
    let streamed = small(3)
        .horizon_slots(20)
        .shards(2)
        .batch_nodes(3)
        .build_from_stream(stream)
        .unwrap();

    // The text format rounds coordinates to 5 decimals, so compare
    // against the legacy build over the *reparsed* traces (exact parity
    // on identical inputs is covered by the proptests above).
    let reparsed = chaff_mobility::crawdad::load_directory(&dir).unwrap();
    let legacy = small(3)
        .horizon_slots(20)
        .with_traces(reparsed)
        .build()
        .unwrap();
    assert_dataset_eq(&streamed, &legacy, "crawdad directory");
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn replicated_stream_len_hint_tracks_emission() {
    let config = TaxiFleetConfig {
        num_nodes: 5,
        duration_s: 10 * 60,
        ..TaxiFleetConfig::default()
    };
    let mut stream = ReplicatedTaxiStream::new(config, 1, 3).unwrap();
    assert_eq!(stream.len_hint(), Some(15));
    let first = stream.next_batch(4).unwrap();
    assert_eq!(first.len(), 4);
    assert_eq!(stream.len_hint(), Some(11));
    let mut total = first.len();
    loop {
        let batch = stream.next_batch(4).unwrap();
        if batch.is_empty() {
            break;
        }
        total += batch.len();
    }
    assert_eq!(total, 15);
    assert_eq!(stream.len_hint(), Some(0));
}

//! Golden-dataset regression test: a tiny, hand-written CRAWDAD-format
//! fixture with exactly known quantization, so parser/interpolator/
//! quantizer/estimator drift is caught without running the synthetic
//! generator at all.
//!
//! Layout (see `tests/fixtures/golden/`): six towers on a 2×3 grid
//! (cells 0..6 in file order), three active nodes covering a 5-slot
//! 1-minute window starting at t = 1000, and one node (`new_delta`)
//! with a 400 s update gap that the 5-minute inactivity filter must
//! drop.

use chaff_markov::CellId;
use chaff_mobility::crawdad;
use chaff_mobility::geo::GeoPoint;
use chaff_mobility::pipeline::{TraceDataset, TraceDatasetBuilder};
use std::path::{Path, PathBuf};

fn fixture_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/golden")
}

fn fixture_towers() -> Vec<GeoPoint> {
    let text = std::fs::read_to_string(fixture_dir().join("towers.txt")).unwrap();
    text.lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
        .map(|l| {
            let mut fields = l.split_whitespace();
            let lat: f64 = fields.next().unwrap().parse().unwrap();
            let lon: f64 = fields.next().unwrap().parse().unwrap();
            GeoPoint::new(lat, lon)
        })
        .collect()
}

fn build_golden(streaming: bool) -> TraceDataset {
    let traces = crawdad::load_directory(&fixture_dir().join("crawdad")).unwrap();
    assert_eq!(traces.len(), 4, "fixture ships four node files");
    let builder = TraceDatasetBuilder::new()
        .with_towers(fixture_towers())
        .with_traces(traces)
        .horizon_slots(5)
        .slot_seconds(60);
    if streaming {
        builder.shards(2).batch_nodes(2).build_streaming().unwrap()
    } else {
        builder.build().unwrap()
    }
}

#[test]
fn golden_dataset_quantizes_exactly_as_checked_in() {
    for streaming in [false, true] {
        let ds = build_golden(streaming);
        let engine = if streaming { "streaming" } else { "legacy" };

        // All six towers survive the 100 m separation filter.
        assert_eq!(ds.cell_map().num_cells(), 6, "{engine}: cell count");

        // new_delta's 400 s gap exceeds the 5-minute threshold: three
        // active nodes remain, in sorted file order.
        assert_eq!(
            ds.node_ids(),
            ["new_alpha", "new_beta", "new_gamma"],
            "{engine}: active nodes"
        );

        // Exact per-slot quantization (records sit on slot boundaries, so
        // interpolation is pass-through).
        let expected: [&[usize]; 3] = [&[0, 0, 1, 1, 1], &[4, 4, 4, 4, 4], &[2, 2, 2, 5, 5]];
        for (node, (t, cells)) in ds.trajectories().iter().zip(expected).enumerate() {
            let got: Vec<usize> = t.iter().map(|c| c.index()).collect();
            assert_eq!(got, cells, "{engine}: node {node} trajectory");
        }

        // Empirical model invariants: every row of the transition matrix
        // is a probability distribution...
        let m = ds.model().matrix();
        for row in 0..6 {
            let sum: f64 = (0..6)
                .map(|col| m.prob(CellId::new(row), CellId::new(col)))
                .sum();
            assert!(
                (sum - 1.0).abs() < 1e-12,
                "{engine}: row {row} sums to {sum}"
            );
        }
        // ...with the exact hand-computed frequencies.
        assert_eq!(m.prob(CellId::new(0), CellId::new(1)), 0.5, "{engine}");
        assert_eq!(m.prob(CellId::new(0), CellId::new(0)), 0.5, "{engine}");
        assert_eq!(m.prob(CellId::new(1), CellId::new(1)), 1.0, "{engine}");
        assert!(
            (m.prob(CellId::new(2), CellId::new(5)) - 1.0 / 3.0).abs() < 1e-15,
            "{engine}"
        );
        assert_eq!(
            m.prob(CellId::new(3), CellId::new(3)),
            1.0,
            "{engine}: unvisited cell 3 must self-loop"
        );
        assert_eq!(m.prob(CellId::new(4), CellId::new(4)), 1.0, "{engine}");

        // Occupancy = visit frequency: 15 slots total over cells
        // [2, 3, 3, 0, 5, 2].
        assert_eq!(
            ds.empirical().visits(),
            [2, 3, 3, 0, 5, 2],
            "{engine}: visits"
        );
        assert_eq!(ds.empirical().num_transitions(), 12, "{engine}");
        let pi = ds.model().initial();
        assert!(
            (pi.prob(CellId::new(4)) - 5.0 / 15.0).abs() < 1e-15,
            "{engine}"
        );
        assert_eq!(pi.prob(CellId::new(3)), 0.0, "{engine}");
        assert_eq!(ds.empirical().support_size(), 5, "{engine}");
    }
}

#[test]
fn golden_dataset_is_engine_independent() {
    let legacy = build_golden(false);
    let streamed = build_golden(true);
    assert_eq!(legacy.node_ids(), streamed.node_ids());
    assert_eq!(legacy.trajectories(), streamed.trajectories());
    assert_eq!(legacy.model().matrix(), streamed.model().matrix());
}

#[test]
fn golden_occupancy_flags_round_trip() {
    // The fixture marks a handful of records occupied; the parser must
    // preserve them (the privacy pipeline ignores the flag, but drift
    // here would signal field-order bugs).
    let traces = crawdad::load_directory(&fixture_dir().join("crawdad")).unwrap();
    let alpha = &traces[0];
    assert_eq!(alpha.node_id, "new_alpha");
    let occupied: Vec<bool> = alpha.records.iter().map(|r| r.occupied).collect();
    assert_eq!(occupied, [true, false, false, true, false]);
}

//! Property-based tests for the mobility substrate.

use chaff_mobility::geo::{BoundingBox, GeoPoint};
use chaff_mobility::interpolate::{regularize, SlotGrid};
use chaff_mobility::record::{NodeTrace, TraceRecord};
use chaff_mobility::towers::min_separation_filter;
use chaff_mobility::voronoi::CellMap;
use proptest::prelude::*;

fn arb_point() -> impl Strategy<Value = GeoPoint> {
    (37.55f64..37.95, -122.6f64..-122.1).prop_map(|(lat, lon)| GeoPoint::new(lat, lon))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn distance_satisfies_triangle_inequality(
        a in arb_point(),
        b in arb_point(),
        c in arb_point(),
    ) {
        let ab = a.distance_m(&b);
        let bc = b.distance_m(&c);
        let ac = a.distance_m(&c);
        prop_assert!(ac <= ab + bc + 1e-6);
    }

    #[test]
    fn lerp_stays_between_endpoints(
        a in arb_point(),
        b in arb_point(),
        t in 0.0f64..1.0,
    ) {
        let p = a.lerp(&b, t);
        prop_assert!(p.lat >= a.lat.min(b.lat) - 1e-12);
        prop_assert!(p.lat <= a.lat.max(b.lat) + 1e-12);
        prop_assert!(p.lon >= a.lon.min(b.lon) - 1e-12);
        prop_assert!(p.lon <= a.lon.max(b.lon) + 1e-12);
    }

    #[test]
    fn separation_filter_is_idempotent(
        towers in proptest::collection::vec(arb_point(), 1..80),
        min_sep in 50.0f64..2_000.0,
    ) {
        let once = min_separation_filter(&towers, min_sep);
        let twice = min_separation_filter(&once, min_sep);
        prop_assert_eq!(&once, &twice);
        // And every kept pair respects the separation.
        for (i, a) in once.iter().enumerate() {
            for b in once.iter().skip(i + 1) {
                prop_assert!(a.distance_m(b) >= min_sep);
            }
        }
    }

    #[test]
    fn grid_nearest_equals_brute_force(
        towers in proptest::collection::vec(arb_point(), 1..120),
        queries in proptest::collection::vec(arb_point(), 1..30),
    ) {
        let map = CellMap::new(towers).unwrap();
        for q in &queries {
            let fast = map.nearest(q);
            let slow = map.nearest_brute(q);
            // Allow exact ties in distance to resolve to either tower.
            let df = map.tower(fast).distance_m(q);
            let ds = map.tower(slow).distance_m(q);
            prop_assert!((df - ds).abs() < 1e-9, "fast {df} vs brute {ds}");
        }
    }

    #[test]
    fn regularized_positions_are_within_record_hull(
        lats in proptest::collection::vec(37.6f64..37.9, 3..12),
    ) {
        // Build a dense trace (one update per 60 s) and regularize: every
        // interpolated latitude must lie within the sampled range.
        let records: Vec<TraceRecord> = lats
            .iter()
            .enumerate()
            .map(|(i, &lat)| TraceRecord {
                point: GeoPoint::new(lat, -122.4),
                occupied: false,
                timestamp: 60 * i as i64,
            })
            .collect();
        let n = records.len();
        let trace = NodeTrace::new("n", records);
        let grid = SlotGrid::minutes(0, n);
        let positions = regularize(&trace, &grid).expect("dense trace is active");
        let (lo, hi) = lats
            .iter()
            .fold((f64::INFINITY, f64::NEG_INFINITY), |(l, h), &v| {
                (l.min(v), h.max(v))
            });
        for p in positions {
            prop_assert!(p.lat >= lo - 1e-12 && p.lat <= hi + 1e-12);
        }
    }

    #[test]
    fn bounding_box_clamp_is_idempotent(p in arb_point(), q in arb_point()) {
        let bbox = BoundingBox::san_francisco();
        let once = bbox.clamp(&p);
        prop_assert_eq!(bbox.clamp(&once), once);
        let far = GeoPoint::new(q.lat + 10.0, q.lon - 10.0);
        prop_assert!(bbox.contains(&bbox.clamp(&far)));
    }
}

//! Error-path battery for trace ingestion: malformed records,
//! out-of-bbox points and empty-after-filter fleets must surface as
//! *typed* `MobilityError`s naming the offending node — never panics.

use chaff_mobility::geo::{BoundingBox, GeoPoint};
use chaff_mobility::interpolate::{inactivity_reason, regularize, SlotGrid};
use chaff_mobility::pipeline::TraceDatasetBuilder;
use chaff_mobility::record::{NodeTrace, TraceRecord};
use chaff_mobility::stream::{CrawdadDirStream, TraceStream};
use chaff_mobility::taxi::TaxiFleetConfig;
use chaff_mobility::{crawdad, MobilityError};
use proptest::prelude::*;
use std::io::Cursor;
use std::path::PathBuf;

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("trace_errors_{tag}_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn rec(ts: i64, lat: f64, lon: f64) -> TraceRecord {
    TraceRecord {
        point: GeoPoint::new(lat, lon),
        occupied: false,
        timestamp: ts,
    }
}

#[test]
fn malformed_directory_file_names_the_node_through_the_stream() {
    let dir = tmp_dir("malformed");
    std::fs::write(dir.join("new_ok.txt"), "37.7 -122.4 0 100\n").unwrap();
    std::fs::write(dir.join("new_sick.txt"), "37.7 not-a-longitude 0 100\n").unwrap();
    let mut stream = CrawdadDirStream::new(&dir).unwrap();
    let err = loop {
        match stream.next_batch(1) {
            Ok(batch) if batch.is_empty() => panic!("expected a parse failure"),
            Ok(_) => continue,
            Err(e) => break e,
        }
    };
    match err {
        MobilityError::Parse { node, line, reason } => {
            assert_eq!(node, "new_sick");
            assert_eq!(line, 1);
            assert!(reason.contains("longitude"), "{reason}");
        }
        other => panic!("unexpected error: {other:?}"),
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn out_of_bbox_record_names_node_and_record_index() {
    let dir = tmp_dir("bbox");
    // Two clean records, then a glitch that teleports the taxi to
    // Greenwich — record index 0 after time-sorting (timestamp 5).
    std::fs::write(
        dir.join("new_teleport.txt"),
        "37.70 -122.40 0 120\n37.70 -122.40 0 60\n51.48 0.00 0 5\n",
    )
    .unwrap();
    let stream = CrawdadDirStream::new(&dir)
        .unwrap()
        .with_bbox(BoundingBox::san_francisco());
    let err = TraceDatasetBuilder::new()
        .horizon_slots(2)
        .num_towers(60)
        .seed(1)
        .build_from_stream(stream)
        .unwrap_err();
    match err {
        MobilityError::OutOfBbox {
            node,
            record,
            lat,
            lon,
        } => {
            assert_eq!(node, "new_teleport");
            assert_eq!(record, 0, "records are time-sorted before validation");
            assert!((lat - 51.48).abs() < 1e-9);
            assert!(lon.abs() < 1e-9);
        }
        other => panic!("unexpected error: {other:?}"),
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn empty_after_filter_fleet_reports_examined_count_and_example() {
    // Every node has a window-breaking gap: both engines must return the
    // typed NoActiveNodes error, counting examined nodes and naming one.
    let traces: Vec<NodeTrace> = (0..6)
        .map(|i| {
            NodeTrace::new(
                format!("sparse_{i}"),
                vec![rec(0, 37.7, -122.4), rec(2_000, 37.71, -122.41)],
            )
        })
        .collect();
    let builder = || {
        TraceDatasetBuilder::new()
            .num_towers(60)
            .horizon_slots(10)
            .seed(3)
            .with_traces(traces.clone())
    };
    for err in [
        builder().build().unwrap_err(),
        builder()
            .shards(3)
            .batch_nodes(2)
            .build_streaming()
            .unwrap_err(),
    ] {
        match err {
            MobilityError::NoActiveNodes { examined, example } => {
                assert_eq!(examined, 6);
                let example = example.expect("a dropped node is known");
                assert!(example.contains("sparse_0"), "{example}");
                assert!(example.contains("gap"), "{example}");
            }
            other => panic!("unexpected error: {other:?}"),
        }
    }
}

#[test]
fn amplification_of_external_traces_is_rejected() {
    // Replicas only apply to the synthetic generator; silently ignoring
    // the knob would run an experiment at 1/R of the requested scale.
    let traces = vec![NodeTrace::new(
        "real_node",
        vec![rec(0, 37.7, -122.4), rec(60, 37.7, -122.4)],
    )];
    let err = TraceDatasetBuilder::new()
        .num_towers(60)
        .with_traces(traces)
        .replicas(8)
        .build_streaming()
        .unwrap_err();
    assert!(matches!(
        err,
        MobilityError::InvalidConfig {
            parameter: "replicas",
            ..
        }
    ));
    // replicas == 0 is invalid on every path.
    let err = TraceDatasetBuilder::new()
        .num_towers(60)
        .replicas(0)
        .build_streaming()
        .unwrap_err();
    assert!(matches!(
        err,
        MobilityError::InvalidConfig {
            parameter: "replicas",
            ..
        }
    ));
}

#[test]
fn invalid_fleet_config_is_rejected_by_the_streaming_engine() {
    let config = TaxiFleetConfig {
        speed_range_mps: (5.0, 2.0),
        ..TaxiFleetConfig::default()
    };
    let err = TraceDatasetBuilder::new()
        .num_towers(60)
        .fleet_config(config)
        .build_streaming()
        .unwrap_err();
    assert!(matches!(
        err,
        MobilityError::InvalidConfig {
            parameter: "speed_range_mps",
            ..
        }
    ));
}

#[test]
fn inactivity_diagnosis_names_concrete_causes() {
    let grid = SlotGrid::minutes(0, 10);
    let gappy = NodeTrace::new("g", vec![rec(0, 37.7, -122.4), rec(900, 37.7, -122.4)]);
    let reason = inactivity_reason(&gappy, &grid).unwrap();
    assert!(reason.to_string().contains("900"), "{reason}");
    let late = NodeTrace::new("l", vec![rec(60, 37.7, -122.4), rec(600, 37.7, -122.4)]);
    assert!(regularize(&late, &grid).is_none());
    assert!(inactivity_reason(&late, &grid)
        .unwrap()
        .to_string()
        .contains("do not cover"));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The parser never panics: any line of printable junk either parses
    /// or yields a typed error carrying the node id.
    #[test]
    fn parser_never_panics_on_junk(
        fields in proptest::collection::vec(-200.0f64..200.0, 0..6),
        garbage in 0usize..3,
    ) {
        let mut line = fields
            .iter()
            .map(|v| format!("{v:.4}"))
            .collect::<Vec<_>>()
            .join(" ");
        if garbage == 1 {
            line.push_str(" xyz");
        } else if garbage == 2 {
            line = format!("nan {line}");
        }
        match crawdad::parse_node("fuzz", Cursor::new(line)) {
            Ok(trace) => {
                for r in &trace.records {
                    prop_assert!((-90.0..=90.0).contains(&r.point.lat));
                    prop_assert!((-180.0..=180.0).contains(&r.point.lon));
                }
            }
            Err(MobilityError::Parse { node, .. }) => prop_assert_eq!(node, "fuzz"),
            Err(other) => prop_assert!(false, "unexpected error kind: {other:?}"),
        }
    }

    /// Regularization never panics and never invents positions outside
    /// the record hull, whatever the (sorted) timestamps are.
    #[test]
    fn regularize_never_panics(
        stamps in proptest::collection::vec(0i64..2_000, 0..12),
        num_slots in 0usize..8,
    ) {
        let records: Vec<TraceRecord> = stamps
            .iter()
            .enumerate()
            .map(|(i, &ts)| rec(ts, 37.6 + 0.001 * i as f64, -122.4))
            .collect();
        let trace = NodeTrace::new("n", records);
        let grid = SlotGrid {
            start_timestamp: 0,
            slot_s: 60,
            num_slots,
            max_gap_s: 300,
        };
        let diagnosed_inactive = inactivity_reason(&trace, &grid).is_some();
        match regularize(&trace, &grid) {
            Some(positions) => {
                prop_assert_eq!(positions.len(), num_slots);
                prop_assert!(!diagnosed_inactive);
            }
            None => prop_assert!(diagnosed_inactive),
        }
    }
}

//! Trace regularization: inactive-node filtering and linear interpolation.
//!
//! The paper (footnote 11): *"The traces have irregular update intervals.
//! We filter out inactive nodes (no update for 5 minutes) and regulate the
//! intervals through linear interpolation."* This module implements
//! exactly that: a node survives if it covers the whole evaluation window
//! with no inter-update gap exceeding the threshold, and its position at
//! each slot boundary is linearly interpolated between the bracketing
//! updates.

use crate::geo::GeoPoint;
use crate::record::NodeTrace;

/// The paper's inactivity threshold: 5 minutes.
pub const DEFAULT_MAX_GAP_S: i64 = 5 * 60;

/// Regularization parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SlotGrid {
    /// UNIX timestamp of slot 0.
    pub start_timestamp: i64,
    /// Slot length in seconds (the paper uses 1-minute slots).
    pub slot_s: i64,
    /// Number of slots (the paper uses a 100-slot window).
    pub num_slots: usize,
    /// Maximum tolerated gap between consecutive updates.
    pub max_gap_s: i64,
}

impl SlotGrid {
    /// A grid of `num_slots` one-minute slots starting at
    /// `start_timestamp`, with the paper's 5-minute inactivity threshold.
    pub fn minutes(start_timestamp: i64, num_slots: usize) -> Self {
        SlotGrid {
            start_timestamp,
            slot_s: 60,
            num_slots,
            max_gap_s: DEFAULT_MAX_GAP_S,
        }
    }

    /// The timestamp of slot `k`.
    pub fn slot_time(&self, k: usize) -> i64 {
        self.start_timestamp + self.slot_s * k as i64
    }
}

/// Why a node was dropped by the inactivity filter — the typed diagnosis
/// behind [`regularize`] returning `None`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InactivityReason {
    /// The trace has no records (or the slot grid has no slots).
    Empty,
    /// The trace does not span the whole evaluation window.
    DoesNotCoverWindow {
        /// First record timestamp (the window starts at the grid start).
        first: i64,
        /// Last record timestamp (the window ends at the grid's last slot).
        last: i64,
    },
    /// An inter-update gap inside the window exceeds the threshold.
    GapTooLarge {
        /// The offending gap, in seconds.
        gap_s: i64,
        /// Timestamp at which the gap starts.
        at: i64,
    },
}

impl std::fmt::Display for InactivityReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            InactivityReason::Empty => write!(f, "trace has no records"),
            InactivityReason::DoesNotCoverWindow { first, last } => {
                write!(f, "records {first}..{last} do not cover the window")
            }
            InactivityReason::GapTooLarge { gap_s, at } => {
                write!(f, "gap of {gap_s} s starting at {at} exceeds the threshold")
            }
        }
    }
}

/// Diagnoses why `trace` would be dropped by [`regularize`], or `None`
/// when the node is active. Exactly complements `regularize`:
/// `regularize(t, g).is_none() == inactivity_reason(t, g).is_some()`.
pub fn inactivity_reason(trace: &NodeTrace, grid: &SlotGrid) -> Option<InactivityReason> {
    let records = &trace.records;
    if records.is_empty() || grid.num_slots == 0 {
        return Some(InactivityReason::Empty);
    }
    let window_start = grid.slot_time(0);
    let window_end = grid.slot_time(grid.num_slots - 1);
    let first = records[0].timestamp;
    let last = records.last().expect("non-empty").timestamp;
    if first > window_start || last < window_end {
        return Some(InactivityReason::DoesNotCoverWindow { first, last });
    }
    for w in records.windows(2) {
        let (a, b) = (w[0].timestamp, w[1].timestamp);
        if b < window_start || a > window_end {
            continue;
        }
        if b - a > grid.max_gap_s {
            return Some(InactivityReason::GapTooLarge {
                gap_s: b - a,
                at: a,
            });
        }
    }
    None
}

/// Regularizes one node onto the slot grid.
///
/// Returns `None` — the node is *inactive* and must be dropped — when the
/// trace does not cover the whole window or has an update gap larger than
/// `grid.max_gap_s` anywhere inside it ([`inactivity_reason`] names the
/// cause). Otherwise returns one interpolated position per slot.
pub fn regularize(trace: &NodeTrace, grid: &SlotGrid) -> Option<Vec<GeoPoint>> {
    // One shared drop predicate: delegating keeps the documented
    // complement invariant with `inactivity_reason` structural rather
    // than maintained in two hand-synchronized copies.
    if inactivity_reason(trace, grid).is_some() {
        return None;
    }
    let records = &trace.records;
    let mut out = Vec::with_capacity(grid.num_slots);
    let mut cursor = 0usize;
    for k in 0..grid.num_slots {
        let t = grid.slot_time(k);
        while cursor + 1 < records.len() && records[cursor + 1].timestamp < t {
            cursor += 1;
        }
        let a = &records[cursor];
        let p = if a.timestamp >= t {
            a.point
        } else {
            let b = &records[cursor + 1];
            let span = (b.timestamp - a.timestamp) as f64;
            let frac = if span > 0.0 {
                (t - a.timestamp) as f64 / span
            } else {
                0.0
            };
            a.point.lerp(&b.point, frac)
        };
        out.push(p);
    }
    Some(out)
}

/// Regularizes a whole fleet, dropping inactive nodes; returns
/// `(node_id, positions)` pairs for the survivors.
pub fn regularize_fleet(traces: &[NodeTrace], grid: &SlotGrid) -> Vec<(String, Vec<GeoPoint>)> {
    traces
        .iter()
        .filter_map(|t| regularize(t, grid).map(|p| (t.node_id.clone(), p)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::TraceRecord;

    fn rec(ts: i64, lat: f64) -> TraceRecord {
        TraceRecord {
            point: GeoPoint::new(lat, -122.4),
            occupied: false,
            timestamp: ts,
        }
    }

    #[test]
    fn interpolates_linearly_between_updates() {
        let trace = NodeTrace::new("n", vec![rec(0, 37.0), rec(120, 37.2)]);
        let grid = SlotGrid {
            start_timestamp: 0,
            slot_s: 60,
            num_slots: 3,
            max_gap_s: 300,
        };
        let pos = regularize(&trace, &grid).unwrap();
        assert_eq!(pos.len(), 3);
        assert!((pos[0].lat - 37.0).abs() < 1e-12);
        assert!((pos[1].lat - 37.1).abs() < 1e-12); // midpoint at t=60
        assert!((pos[2].lat - 37.2).abs() < 1e-12);
    }

    #[test]
    fn drops_nodes_with_long_gaps() {
        let trace = NodeTrace::new("n", vec![rec(0, 37.0), rec(400, 37.1), rec(500, 37.2)]);
        let grid = SlotGrid {
            start_timestamp: 0,
            slot_s: 60,
            num_slots: 8,
            max_gap_s: 300,
        };
        assert!(regularize(&trace, &grid).is_none());
    }

    #[test]
    fn drops_nodes_not_covering_the_window() {
        let trace = NodeTrace::new("n", vec![rec(100, 37.0), rec(200, 37.1)]);
        let grid = SlotGrid {
            start_timestamp: 0,
            slot_s: 60,
            num_slots: 5,
            max_gap_s: 300,
        };
        assert!(regularize(&trace, &grid).is_none(), "starts after slot 0");
    }

    #[test]
    fn gap_outside_the_window_is_tolerated() {
        // Long gap before the window starts; dense coverage inside.
        let trace = NodeTrace::new(
            "n",
            vec![
                rec(-10_000, 36.9),
                rec(-60, 37.0),
                rec(60, 37.1),
                rec(200, 37.2),
            ],
        );
        let grid = SlotGrid {
            start_timestamp: 0,
            slot_s: 60,
            num_slots: 3,
            max_gap_s: 300,
        };
        assert!(regularize(&trace, &grid).is_some());
    }

    #[test]
    fn exact_update_times_are_passed_through() {
        let trace = NodeTrace::new("n", vec![rec(0, 37.0), rec(60, 37.5), rec(120, 37.9)]);
        let grid = SlotGrid::minutes(0, 3);
        let pos = regularize(&trace, &grid).unwrap();
        assert!((pos[1].lat - 37.5).abs() < 1e-12);
    }

    #[test]
    fn fleet_regularization_filters_and_labels() {
        let good = NodeTrace::new("good", vec![rec(0, 37.0), rec(60, 37.1), rec(120, 37.2)]);
        let bad = NodeTrace::new("bad", vec![rec(0, 37.0), rec(1_000, 37.1)]);
        let grid = SlotGrid::minutes(0, 3);
        let fleet = regularize_fleet(&[good, bad], &grid);
        assert_eq!(fleet.len(), 1);
        assert_eq!(fleet[0].0, "good");
    }

    #[test]
    fn inactivity_reason_complements_regularize() {
        let grid = SlotGrid::minutes(0, 5);
        let cases = vec![
            NodeTrace::new("empty", vec![]),
            NodeTrace::new("late", vec![rec(100, 37.0), rec(400, 37.1)]),
            NodeTrace::new("gappy", vec![rec(0, 37.0), rec(400, 37.1)]),
            NodeTrace::new(
                "good",
                (0..6)
                    .map(|i| rec(60 * i, 37.0 + 0.01 * i as f64))
                    .collect(),
            ),
        ];
        for trace in &cases {
            assert_eq!(
                regularize(trace, &grid).is_none(),
                inactivity_reason(trace, &grid).is_some(),
                "{}",
                trace.node_id
            );
        }
        assert_eq!(
            inactivity_reason(&cases[0], &grid),
            Some(InactivityReason::Empty)
        );
        assert!(matches!(
            inactivity_reason(&cases[1], &grid),
            Some(InactivityReason::DoesNotCoverWindow { first: 100, .. })
        ));
        assert_eq!(
            inactivity_reason(&cases[2], &grid),
            Some(InactivityReason::GapTooLarge { gap_s: 400, at: 0 })
        );
        // Reasons render with their numbers so error messages are useful.
        let text = InactivityReason::GapTooLarge { gap_s: 400, at: 0 }.to_string();
        assert!(text.contains("400"));
    }

    #[test]
    fn empty_grid_marks_every_node_inactive() {
        let trace = NodeTrace::new("n", vec![rec(0, 37.0)]);
        let grid = SlotGrid::minutes(0, 0);
        assert!(regularize(&trace, &grid).is_none());
        assert_eq!(
            inactivity_reason(&trace, &grid),
            Some(InactivityReason::Empty)
        );
    }

    #[test]
    fn paper_default_grid() {
        let grid = SlotGrid::minutes(1_000, 100);
        assert_eq!(grid.slot_time(0), 1_000);
        assert_eq!(grid.slot_time(99), 1_000 + 99 * 60);
        assert_eq!(grid.max_gap_s, 300);
    }
}

//! Per-slot pull over trace streams: the bridge from trace-major sources
//! to the slot-major streaming fleet engine.
//!
//! A [`TraceStream`] is *trace-major*: each
//! node's whole record history arrives as one unit. The streaming fleet
//! engine in `chaff-sim` is *slot-major*: it wants one row — every
//! user's cell at slot `t` — per step. [`SlotFeed`] converts between the
//! two: it drains the stream one batch at a time (raw GPS records live
//! only as long as their batch, exactly like
//! [`build_streaming`](crate::pipeline::TraceDatasetBuilder::build_streaming)),
//! regularizes and quantizes each active node into its compact cell
//! trajectory, transposes to slot-major storage (4 bytes per cell), and
//! then serves rows via [`next_row`](SlotFeed::next_row).
//!
//! The feed holds the quantized window — `O(nodes × slots)` at 4 bytes a
//! cell, the irreducible cost of transposing a trace-major source — but
//! never the raw records, which dominate real datasets by an order of
//! magnitude. Model-driven streaming (the engine's own `step`) needs no
//! feed and no window at all.

use crate::interpolate::{regularize, SlotGrid};
use crate::stream::TraceStream;
use crate::voronoi::CellMap;
use crate::{MobilityError, Result};
use chaff_markov::CellId;

/// Slot-major, pull-based view of a quantized trace window.
///
/// Build with [`from_stream`](SlotFeed::from_stream), then pull rows in
/// slot order:
///
/// ```
/// use chaff_mobility::feed::SlotFeed;
/// use chaff_mobility::geo::BoundingBox;
/// use chaff_mobility::interpolate::SlotGrid;
/// use chaff_mobility::stream::{TaxiTraceStream, TraceStream};
/// use chaff_mobility::taxi::TaxiFleetConfig;
/// use chaff_mobility::towers::clustered_layout;
/// use chaff_mobility::voronoi::CellMap;
/// use rand::{rngs::StdRng, SeedableRng};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut rng = StdRng::seed_from_u64(5);
/// let bbox = BoundingBox::san_francisco();
/// let towers = clustered_layout(60, 3, 2_000.0, 0.3, &bbox, &mut rng)?;
/// let cell_map = CellMap::new(towers)?;
/// let config = TaxiFleetConfig { num_nodes: 8, ..TaxiFleetConfig::default() };
/// let mut stream = TaxiTraceStream::new(config, 11)?;
/// let grid = SlotGrid::minutes(stream.window_start().unwrap_or(0), 20);
/// let mut feed = SlotFeed::from_stream(&mut stream, &cell_map, &grid, 4)?;
/// let mut slots = 0;
/// while let Some(row) = feed.next_row() {
///     assert_eq!(row.len(), feed.num_nodes());
///     slots += 1;
/// }
/// assert_eq!(slots, 20);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct SlotFeed {
    /// Identifiers of the surviving nodes, in stream arrival order.
    node_ids: Vec<String>,
    /// Slot-major cells: `cells[t * num_nodes + j]` is node `j` at slot
    /// `t`.
    cells: Vec<CellId>,
    num_slots: usize,
    cursor: usize,
    dropped: usize,
}

impl SlotFeed {
    /// Drains `stream` in batches of `batch_nodes`, regularizing each
    /// node onto `grid` and quantizing through `cell_map`. Nodes failing
    /// the activity filter are dropped (counted in
    /// [`dropped`](SlotFeed::dropped)), like the dataset pipeline.
    ///
    /// # Errors
    ///
    /// Propagates typed stream errors (I/O, parse, bounding-box faults
    /// naming the offending node) and returns
    /// [`MobilityError::NoActiveNodes`] when every emitted node is
    /// filtered out.
    pub fn from_stream(
        stream: &mut dyn TraceStream,
        cell_map: &CellMap,
        grid: &SlotGrid,
        batch_nodes: usize,
    ) -> Result<Self> {
        let mut node_ids = Vec::new();
        let mut trajectories: Vec<Vec<CellId>> = Vec::new();
        let mut examined = 0usize;
        loop {
            let batch = stream.next_batch(batch_nodes.max(1))?;
            if batch.is_empty() {
                break;
            }
            for trace in &batch {
                examined += 1;
                let Some(positions) = regularize(trace, grid) else {
                    continue; // inactive in this window, like the pipeline
                };
                node_ids.push(trace.node_id.clone());
                trajectories.push(cell_map.quantize(&positions).as_slice().to_vec());
            }
            // `batch` (the raw records) drops here; only the quantized
            // cells persist.
        }
        if node_ids.is_empty() {
            return Err(MobilityError::NoActiveNodes {
                examined,
                example: None,
            });
        }
        // Transpose trace-major -> slot-major so every pulled row is one
        // contiguous slice.
        let n = node_ids.len();
        let num_slots = grid.num_slots;
        let mut cells = vec![CellId::new(0); n * num_slots];
        for (j, trajectory) in trajectories.iter().enumerate() {
            debug_assert_eq!(trajectory.len(), num_slots);
            for (t, &cell) in trajectory.iter().enumerate() {
                cells[t * n + j] = cell;
            }
        }
        Ok(SlotFeed {
            node_ids,
            cells,
            num_slots,
            cursor: 0,
            dropped: examined - n,
        })
    }

    /// Number of surviving nodes (the width of every row).
    pub fn num_nodes(&self) -> usize {
        self.node_ids.len()
    }

    /// Number of slots in the window.
    pub fn num_slots(&self) -> usize {
        self.num_slots
    }

    /// Identifiers of the surviving nodes, aligned with row positions.
    pub fn node_ids(&self) -> &[String] {
        &self.node_ids
    }

    /// Nodes the activity filter dropped while draining the stream.
    pub fn dropped(&self) -> usize {
        self.dropped
    }

    /// The row of an arbitrary slot, if within the window.
    pub fn row(&self, t: usize) -> Option<&[CellId]> {
        if t >= self.num_slots {
            return None;
        }
        let n = self.num_nodes();
        Some(&self.cells[t * n..(t + 1) * n])
    }

    /// Pulls the next row in slot order; `None` once the window is
    /// exhausted.
    pub fn next_row(&mut self) -> Option<&[CellId]> {
        let t = self.cursor;
        if t >= self.num_slots {
            return None;
        }
        self.cursor += 1;
        self.row(t)
    }

    /// Slots already pulled through [`next_row`](SlotFeed::next_row).
    pub fn slots_pulled(&self) -> usize {
        self.cursor
    }

    /// Resets the pull cursor to slot zero.
    pub fn rewind(&mut self) {
        self.cursor = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::TraceDatasetBuilder;
    use crate::stream::{TaxiTraceStream, VecTraceStream};
    use crate::taxi::{generate_fleet, TaxiFleetConfig};
    use crate::towers::clustered_layout;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn small_fleet() -> TaxiFleetConfig {
        TaxiFleetConfig {
            num_nodes: 10,
            ..TaxiFleetConfig::default()
        }
    }

    fn towers(seed: u64) -> Vec<crate::geo::GeoPoint> {
        let mut rng = StdRng::seed_from_u64(seed);
        clustered_layout(
            80,
            3,
            2_000.0,
            0.3,
            &crate::geo::BoundingBox::san_francisco(),
            &mut rng,
        )
        .unwrap()
    }

    fn cell_map(seed: u64) -> CellMap {
        CellMap::new(towers(seed)).unwrap()
    }

    #[test]
    fn feed_rows_transpose_the_dataset_trajectories_bit_for_bit() {
        // One fixed set of towers and traces, fed to both paths.
        let mut rng = StdRng::seed_from_u64(77);
        let towers = towers(77);
        let traces = generate_fleet(&small_fleet(), &mut rng).unwrap();
        // Oracle: the legacy pipeline.
        let dataset = TraceDatasetBuilder::new()
            .horizon_slots(30)
            .with_towers(towers)
            .with_traces(traces.clone())
            .build()
            .unwrap();
        // Same traces through the per-slot feed, over the same quantizer.
        let start = traces
            .iter()
            .filter_map(|t| t.records.first().map(|r| r.timestamp))
            .min()
            .unwrap();
        let grid = SlotGrid::minutes(start, 30);
        let mut stream = VecTraceStream::new(traces);
        let mut feed = SlotFeed::from_stream(&mut stream, dataset.cell_map(), &grid, 3).unwrap();
        assert_eq!(feed.num_nodes(), dataset.trajectories().len());
        assert_eq!(feed.node_ids(), dataset.node_ids());
        let mut t = 0;
        while let Some(row) = feed.next_row() {
            for (j, trajectory) in dataset.trajectories().iter().enumerate() {
                assert_eq!(row[j], trajectory.get(t).unwrap(), "node {j}, slot {t}");
            }
            t += 1;
        }
        assert_eq!(t, 30);
    }

    #[test]
    fn feed_is_batch_size_invariant() {
        let map = cell_map(3);
        let reference = {
            let mut stream = TaxiTraceStream::new(small_fleet(), 21).unwrap();
            let grid = SlotGrid::minutes(stream.window_start().unwrap(), 15);
            SlotFeed::from_stream(&mut stream, &map, &grid, 1).unwrap()
        };
        for batch in [2usize, 5, 64] {
            let mut stream = TaxiTraceStream::new(small_fleet(), 21).unwrap();
            let grid = SlotGrid::minutes(stream.window_start().unwrap(), 15);
            let feed = SlotFeed::from_stream(&mut stream, &map, &grid, batch).unwrap();
            assert_eq!(feed.cells, reference.cells, "batch = {batch}");
            assert_eq!(feed.node_ids, reference.node_ids);
        }
    }

    #[test]
    fn all_inactive_nodes_yield_a_typed_error() {
        let map = cell_map(4);
        // A window starting long after every record: nothing is active.
        let mut stream = TaxiTraceStream::new(small_fleet(), 9).unwrap();
        let grid = SlotGrid::minutes(i64::MAX / 2, 10);
        match SlotFeed::from_stream(&mut stream, &map, &grid, 4) {
            Err(MobilityError::NoActiveNodes { examined, .. }) => assert_eq!(examined, 10),
            other => panic!("expected NoActiveNodes, got {other:?}"),
        }
    }

    #[test]
    fn pull_cursor_rewinds() {
        let map = cell_map(5);
        let mut stream = TaxiTraceStream::new(small_fleet(), 13).unwrap();
        let grid = SlotGrid::minutes(stream.window_start().unwrap(), 8);
        let mut feed = SlotFeed::from_stream(&mut stream, &map, &grid, 4).unwrap();
        let first: Vec<CellId> = feed.next_row().unwrap().to_vec();
        while feed.next_row().is_some() {}
        assert_eq!(feed.slots_pulled(), 8);
        feed.rewind();
        assert_eq!(feed.slots_pulled(), 0);
        assert_eq!(feed.next_row().unwrap(), &first[..]);
    }
}

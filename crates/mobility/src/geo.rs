//! Planar geography: points, distances and bounding boxes.
//!
//! Trace coordinates are WGS-84 latitude/longitude degrees. Distances use
//! the equirectangular approximation, which is accurate to well under 0.1%
//! at city scale (the San Francisco box of Fig. 8 spans ~45 km) and an
//! order of magnitude cheaper than the haversine formula inside the
//! nearest-tower hot loop; [`GeoPoint::haversine_m`] is provided for
//! exactness-sensitive callers and is cross-checked in tests.

use crate::{MobilityError, Result};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Mean Earth radius in meters.
pub const EARTH_RADIUS_M: f64 = 6_371_000.0;

/// A WGS-84 coordinate (degrees).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GeoPoint {
    /// Latitude in degrees, positive north.
    pub lat: f64,
    /// Longitude in degrees, positive east.
    pub lon: f64,
}

impl GeoPoint {
    /// Creates a point from latitude/longitude degrees.
    pub fn new(lat: f64, lon: f64) -> Self {
        GeoPoint { lat, lon }
    }

    /// Equirectangular distance in meters — the workhorse metric.
    pub fn distance_m(&self, other: &GeoPoint) -> f64 {
        let lat_mid = 0.5 * (self.lat + other.lat).to_radians();
        let dlat = (other.lat - self.lat).to_radians();
        let dlon = (other.lon - self.lon).to_radians() * lat_mid.cos();
        EARTH_RADIUS_M * (dlat * dlat + dlon * dlon).sqrt()
    }

    /// Haversine (great-circle) distance in meters.
    pub fn haversine_m(&self, other: &GeoPoint) -> f64 {
        let (lat1, lat2) = (self.lat.to_radians(), other.lat.to_radians());
        let dlat = lat2 - lat1;
        let dlon = (other.lon - self.lon).to_radians();
        let a = (dlat / 2.0).sin().powi(2) + lat1.cos() * lat2.cos() * (dlon / 2.0).sin().powi(2);
        2.0 * EARTH_RADIUS_M * a.sqrt().asin()
    }

    /// Linear interpolation between two points at fraction `t ∈ [0, 1]`.
    ///
    /// Component-wise interpolation is exact enough at city scale; this is
    /// what the paper's trace regularization does implicitly.
    pub fn lerp(&self, other: &GeoPoint, t: f64) -> GeoPoint {
        GeoPoint {
            lat: self.lat + (other.lat - self.lat) * t,
            lon: self.lon + (other.lon - self.lon) * t,
        }
    }
}

/// An axis-aligned latitude/longitude box.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BoundingBox {
    /// Southern edge (degrees).
    pub min_lat: f64,
    /// Northern edge (degrees).
    pub max_lat: f64,
    /// Western edge (degrees).
    pub min_lon: f64,
    /// Eastern edge (degrees).
    pub max_lon: f64,
}

impl BoundingBox {
    /// Creates a box, validating that it is non-empty.
    ///
    /// # Errors
    ///
    /// Returns an error when an edge pair is inverted or non-finite.
    pub fn new(min_lat: f64, max_lat: f64, min_lon: f64, max_lon: f64) -> Result<Self> {
        let all = [min_lat, max_lat, min_lon, max_lon];
        if all.iter().any(|v| !v.is_finite()) {
            return Err(MobilityError::InvalidBoundingBox {
                reason: "non-finite edge".into(),
            });
        }
        if min_lat >= max_lat || min_lon >= max_lon {
            return Err(MobilityError::InvalidBoundingBox {
                reason: format!(
                    "inverted edges: lat {min_lat}..{max_lat}, lon {min_lon}..{max_lon}"
                ),
            });
        }
        Ok(BoundingBox {
            min_lat,
            max_lat,
            min_lon,
            max_lon,
        })
    }

    /// The San Francisco box used in Fig. 8 of the paper
    /// (lon −122.6..−122.1, lat 37.55..37.95).
    pub fn san_francisco() -> Self {
        BoundingBox {
            min_lat: 37.55,
            max_lat: 37.95,
            min_lon: -122.6,
            max_lon: -122.1,
        }
    }

    /// Whether the point lies inside (inclusive).
    pub fn contains(&self, p: &GeoPoint) -> bool {
        p.lat >= self.min_lat
            && p.lat <= self.max_lat
            && p.lon >= self.min_lon
            && p.lon <= self.max_lon
    }

    /// The center of the box.
    pub fn center(&self) -> GeoPoint {
        GeoPoint {
            lat: 0.5 * (self.min_lat + self.max_lat),
            lon: 0.5 * (self.min_lon + self.max_lon),
        }
    }

    /// Samples a point uniformly in the box.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> GeoPoint {
        GeoPoint {
            lat: rng.random_range(self.min_lat..self.max_lat),
            lon: rng.random_range(self.min_lon..self.max_lon),
        }
    }

    /// Clamps a point into the box.
    pub fn clamp(&self, p: &GeoPoint) -> GeoPoint {
        GeoPoint {
            lat: p.lat.clamp(self.min_lat, self.max_lat),
            lon: p.lon.clamp(self.min_lon, self.max_lon),
        }
    }

    /// Box height in meters (south-north extent).
    pub fn height_m(&self) -> f64 {
        GeoPoint::new(self.min_lat, self.min_lon)
            .distance_m(&GeoPoint::new(self.max_lat, self.min_lon))
    }

    /// Box width in meters at the mid-latitude.
    pub fn width_m(&self) -> f64 {
        let mid = 0.5 * (self.min_lat + self.max_lat);
        GeoPoint::new(mid, self.min_lon).distance_m(&GeoPoint::new(mid, self.max_lon))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn equirectangular_close_to_haversine_at_city_scale() {
        let a = GeoPoint::new(37.7749, -122.4194); // SF downtown
        let b = GeoPoint::new(37.8044, -122.2712); // Oakland
        let eq = a.distance_m(&b);
        let hv = a.haversine_m(&b);
        assert!((eq - hv).abs() / hv < 1e-3, "eq={eq}, hv={hv}");
        // Sanity: roughly 13-14 km.
        assert!((12_000.0..15_000.0).contains(&hv), "hv={hv}");
    }

    #[test]
    fn distance_is_symmetric_and_zero_on_self() {
        let a = GeoPoint::new(37.6, -122.4);
        let b = GeoPoint::new(37.7, -122.3);
        assert_eq!(a.distance_m(&a), 0.0);
        assert!((a.distance_m(&b) - b.distance_m(&a)).abs() < 1e-9);
    }

    #[test]
    fn lerp_endpoints_and_midpoint() {
        let a = GeoPoint::new(37.0, -122.0);
        let b = GeoPoint::new(38.0, -121.0);
        assert_eq!(a.lerp(&b, 0.0), a);
        assert_eq!(a.lerp(&b, 1.0), b);
        let mid = a.lerp(&b, 0.5);
        assert!((mid.lat - 37.5).abs() < 1e-12);
        assert!((mid.lon + 121.5).abs() < 1e-12);
    }

    #[test]
    fn bounding_box_validation() {
        assert!(BoundingBox::new(38.0, 37.0, -122.0, -121.0).is_err());
        assert!(BoundingBox::new(37.0, 38.0, -121.0, -122.0).is_err());
        assert!(BoundingBox::new(f64::NAN, 38.0, -122.0, -121.0).is_err());
        assert!(BoundingBox::new(37.0, 38.0, -122.0, -121.0).is_ok());
    }

    #[test]
    fn san_francisco_box_matches_figure_8() {
        let sf = BoundingBox::san_francisco();
        assert!(sf.contains(&GeoPoint::new(37.7749, -122.4194)));
        assert!(!sf.contains(&GeoPoint::new(40.7, -74.0))); // NYC

        // The box spans tens of kilometers.
        assert!(sf.width_m() > 30_000.0 && sf.width_m() < 60_000.0);
        assert!(sf.height_m() > 30_000.0 && sf.height_m() < 60_000.0);
    }

    #[test]
    fn sampling_stays_in_the_box() {
        let sf = BoundingBox::san_francisco();
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..200 {
            assert!(sf.contains(&sf.sample(&mut rng)));
        }
    }

    #[test]
    fn clamp_pulls_points_inside() {
        let sf = BoundingBox::san_francisco();
        let outside = GeoPoint::new(39.0, -123.0);
        let clamped = sf.clamp(&outside);
        assert!(sf.contains(&clamped));
        assert_eq!(clamped.lat, sf.max_lat);
        assert_eq!(clamped.lon, sf.min_lon);
    }
}

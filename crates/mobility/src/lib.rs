//! Mobility and trace substrate for the chaff-based location-privacy
//! system.
//!
//! The paper's trace-driven evaluation (Sec. VII-B) builds a mobility model
//! from the CRAWDAD `epfl/mobility` taxi traces: node positions are
//! quantized into 959 Voronoi cells induced by cell-tower locations
//! (towers within 100 m of another ignored), inactive nodes (no update for
//! 5 minutes) are filtered, update intervals are regularized by linear
//! interpolation, and the 174 surviving traces induce an empirical
//! transition matrix and occupancy distribution.
//!
//! This crate implements that entire pipeline:
//!
//! * [`geo`] — planar geography: points, bounding boxes, distances;
//! * [`towers`] — cell-tower layout generators plus the paper's
//!   minimum-separation filter;
//! * [`voronoi`] — nearest-tower quantization with a grid index;
//! * [`record`] — raw GPS trace records and per-node traces;
//! * [`crawdad`] — parser for the CRAWDAD `epfl/mobility` text format, so
//!   the real dataset can be dropped in;
//! * [`taxi`] — a seeded synthetic taxi-fleet generator substituting for
//!   the (license-gated) real traces, tuned to reproduce their
//!   spatially/temporally skewed statistics;
//! * [`interpolate`] — inactive-node filtering and linear interpolation to
//!   regular slots (the paper's footnote 11);
//! * [`empirical`] — empirical Markov-model estimation from quantized
//!   trajectories, including the mergeable integer-count accumulator the
//!   sharded engine reduces over and its epoch-indexed variant (one
//!   count set per epoch of an `EpochSchedule`);
//! * [`commuter`] — a deterministic day/night commuter fleet, the
//!   canonical non-stationary workload for epoch-aware estimation;
//! * [`stream`] — streaming trace sources ([`stream::TraceStream`]):
//!   per-node record batches from the synthetic generator (bit-for-bit
//!   the eager stream), replica-amplified fleets for 10⁴–10⁵-node
//!   ingestion, and batched CRAWDAD directory reading;
//! * [`pipeline`] — the end-to-end dataset builder used by the evaluation
//!   harness, with the legacy single-threaded `build()` kept as the
//!   oracle and the sharded `build_streaming()` as the scaled engine;
//! * [`feed`] — the per-slot pull adapter ([`feed::SlotFeed`]): drains a
//!   trace-major [`stream::TraceStream`] into a compact slot-major
//!   window so the streaming fleet engine can ingest one row per slot.
//!
//! # Example
//!
//! ```
//! use chaff_mobility::pipeline::TraceDatasetBuilder;
//!
//! # fn main() -> Result<(), chaff_mobility::MobilityError> {
//! let dataset = TraceDatasetBuilder::new()
//!     .num_nodes(20)
//!     .num_towers(50)
//!     .horizon_slots(30)
//!     .seed(7)
//!     .build()?;
//! assert!(dataset.trajectories().len() <= 20); // inactive nodes filtered
//! assert_eq!(dataset.model().num_states(), dataset.cell_map().num_cells());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;

pub mod commuter;
pub mod crawdad;
pub mod empirical;
pub mod feed;
pub mod geo;
pub mod interpolate;
pub mod pipeline;
pub mod record;
pub mod stream;
pub mod taxi;
pub mod towers;
pub mod voronoi;

pub use error::MobilityError;

/// Convenient result alias for fallible operations in this crate.
pub type Result<T> = std::result::Result<T, MobilityError>;

//! Cell-tower layout generation and filtering.
//!
//! The paper obtains tower locations from antennasearch.com and keeps 959
//! of them after "ignoring towers within 100 meters of others" (Sec.
//! VII-B1). Real tower registries are not redistributable, so this module
//! generates layouts with the property that actually matters for the
//! experiments — an urban-core density gradient, which is what makes the
//! induced Voronoi cells small downtown and large in the periphery and
//! yields the skewed occupancy of Fig. 8(b).

use crate::geo::{BoundingBox, GeoPoint};
use crate::{MobilityError, Result};
use rand::Rng;

/// The paper's minimum tower separation (meters).
pub const DEFAULT_MIN_SEPARATION_M: f64 = 100.0;

/// Generates `n` towers uniformly in the box.
///
/// # Errors
///
/// Returns [`MobilityError::NoTowers`] when `n == 0`.
pub fn uniform_layout<R: Rng + ?Sized>(
    n: usize,
    bbox: &BoundingBox,
    rng: &mut R,
) -> Result<Vec<GeoPoint>> {
    if n == 0 {
        return Err(MobilityError::NoTowers);
    }
    Ok((0..n).map(|_| bbox.sample(rng)).collect())
}

/// Generates `n` towers with an urban density gradient: `clusters` hotspot
/// centers are drawn uniformly, and each tower is placed near a random
/// center with Gaussian scatter of `spread_m` meters (clamped to the box);
/// a `background` fraction of towers is spread uniformly instead.
///
/// # Errors
///
/// Returns an error when `n == 0`, `clusters == 0`, `spread_m <= 0` or
/// `background ∉ [0, 1]`.
pub fn clustered_layout<R: Rng + ?Sized>(
    n: usize,
    clusters: usize,
    spread_m: f64,
    background: f64,
    bbox: &BoundingBox,
    rng: &mut R,
) -> Result<Vec<GeoPoint>> {
    if n == 0 {
        return Err(MobilityError::NoTowers);
    }
    if clusters == 0 {
        return Err(MobilityError::InvalidConfig {
            parameter: "clusters",
            reason: "must be positive".into(),
        });
    }
    if !spread_m.is_finite() || spread_m <= 0.0 {
        return Err(MobilityError::InvalidConfig {
            parameter: "spread_m",
            reason: "must be positive".into(),
        });
    }
    if !(0.0..=1.0).contains(&background) {
        return Err(MobilityError::InvalidConfig {
            parameter: "background",
            reason: "must be in [0, 1]".into(),
        });
    }
    let centers: Vec<GeoPoint> = (0..clusters).map(|_| bbox.sample(rng)).collect();
    // Degrees per meter at the box's mid-latitude.
    let lat_per_m = 1.0 / 111_320.0;
    let mid_lat = bbox.center().lat.to_radians();
    let lon_per_m = lat_per_m / mid_lat.cos();
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        if rng.random::<f64>() < background {
            out.push(bbox.sample(rng));
            continue;
        }
        let center = centers[rng.random_range(0..clusters)];
        let (dx, dy) = gaussian_pair(rng);
        let p = GeoPoint::new(
            center.lat + dy * spread_m * lat_per_m,
            center.lon + dx * spread_m * lon_per_m,
        );
        out.push(bbox.clamp(&p));
    }
    Ok(out)
}

/// A standard-normal pair via Box–Muller.
fn gaussian_pair<R: Rng + ?Sized>(rng: &mut R) -> (f64, f64) {
    let u1: f64 = rng.random::<f64>().max(f64::MIN_POSITIVE);
    let u2: f64 = rng.random();
    let r = (-2.0 * u1.ln()).sqrt();
    let theta = 2.0 * std::f64::consts::PI * u2;
    (r * theta.cos(), r * theta.sin())
}

/// Greedily removes towers closer than `min_separation_m` to an
/// already-kept tower — the paper's "ignoring towers within 100 meters of
/// others".
///
/// Keeps towers in input order, so the result is deterministic for a
/// given layout.
pub fn min_separation_filter(towers: &[GeoPoint], min_separation_m: f64) -> Vec<GeoPoint> {
    let mut kept: Vec<GeoPoint> = Vec::with_capacity(towers.len());
    for &t in towers {
        if kept.iter().all(|k| k.distance_m(&t) >= min_separation_m) {
            kept.push(t);
        }
    }
    kept
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn uniform_layout_fills_the_box() {
        let sf = BoundingBox::san_francisco();
        let mut rng = StdRng::seed_from_u64(1);
        let towers = uniform_layout(500, &sf, &mut rng).unwrap();
        assert_eq!(towers.len(), 500);
        assert!(towers.iter().all(|t| sf.contains(t)));
    }

    #[test]
    fn clustered_layout_is_denser_near_centers() {
        let sf = BoundingBox::san_francisco();
        let mut rng = StdRng::seed_from_u64(2);
        let clustered = clustered_layout(2_000, 5, 1_500.0, 0.2, &sf, &mut rng).unwrap();
        assert_eq!(clustered.len(), 2_000);
        assert!(clustered.iter().all(|t| sf.contains(t)));
        // Clustering must pull the mean nearest-neighbor distance well
        // below that of an equally-sized uniform layout.
        let mean_nn = |towers: &[GeoPoint]| {
            let mut sum = 0.0;
            for (i, a) in towers.iter().enumerate().take(200) {
                sum += towers
                    .iter()
                    .enumerate()
                    .filter(|(j, _)| *j != i)
                    .map(|(_, b)| a.distance_m(b))
                    .fold(f64::INFINITY, f64::min);
            }
            sum / 200.0
        };
        let uniform = uniform_layout(2_000, &sf, &mut rng).unwrap();
        let (c_nn, u_nn) = (mean_nn(&clustered), mean_nn(&uniform));
        assert!(
            c_nn < 0.8 * u_nn,
            "clustered nn {c_nn} !< 0.8 * uniform nn {u_nn}"
        );
    }

    #[test]
    fn separation_filter_enforces_min_distance() {
        let sf = BoundingBox::san_francisco();
        let mut rng = StdRng::seed_from_u64(3);
        let towers = clustered_layout(3_000, 4, 800.0, 0.1, &sf, &mut rng).unwrap();
        let kept = min_separation_filter(&towers, 100.0);
        assert!(kept.len() < towers.len());
        for (i, a) in kept.iter().enumerate() {
            for b in kept.iter().skip(i + 1) {
                assert!(a.distance_m(b) >= 100.0);
            }
        }
    }

    #[test]
    fn separation_filter_keeps_first_of_each_pair() {
        let a = GeoPoint::new(37.7, -122.4);
        let b = GeoPoint::new(37.7001, -122.4); // ~11 m away
        let kept = min_separation_filter(&[a, b], 100.0);
        assert_eq!(kept.len(), 1);
        assert_eq!(kept[0], a);
    }

    #[test]
    fn config_validation() {
        let sf = BoundingBox::san_francisco();
        let mut rng = StdRng::seed_from_u64(4);
        assert!(uniform_layout(0, &sf, &mut rng).is_err());
        assert!(clustered_layout(10, 0, 100.0, 0.1, &sf, &mut rng).is_err());
        assert!(clustered_layout(10, 2, 0.0, 0.1, &sf, &mut rng).is_err());
        assert!(clustered_layout(10, 2, 100.0, 1.5, &sf, &mut rng).is_err());
    }
}

//! Voronoi quantization: mapping positions to their nearest tower's cell.
//!
//! The paper "quantize\[s\] the node locations into 959 Voronoi cells based
//! on cell tower locations" (Sec. VII-B1). Explicit Voronoi polygons are
//! never needed — only the nearest-tower query — so this module builds a
//! uniform grid index over the towers and answers queries by expanding
//! ring search, falling back to brute force for tiny layouts.

use crate::geo::{BoundingBox, GeoPoint};
use crate::{MobilityError, Result};
use chaff_markov::{CellId, Trajectory};

/// A nearest-tower quantizer; each tower induces one [`CellId`].
#[derive(Debug, Clone)]
pub struct CellMap {
    towers: Vec<GeoPoint>,
    bbox: BoundingBox,
    /// Grid of tower indices, row-major `rows × cols`.
    grid: Vec<Vec<u32>>,
    rows: usize,
    cols: usize,
}

/// Target mean number of towers per grid bucket.
const TARGET_PER_BUCKET: f64 = 2.0;

impl CellMap {
    /// Builds a quantizer from tower locations.
    ///
    /// The bounding box is inflated slightly beyond the towers' extent so
    /// that queries outside it still resolve.
    ///
    /// # Errors
    ///
    /// Returns [`MobilityError::NoTowers`] when `towers` is empty, and
    /// [`MarkovError::CellIndexOverflow`](chaff_markov::MarkovError::CellIndexOverflow)
    /// when the tower count exceeds the compact `u32` [`CellId`] space —
    /// this constructor is the dataset boundary where untrusted cell
    /// counts enter, so the checked conversion runs once here and every
    /// later `CellId::new(tower_index)` is guaranteed exact.
    pub fn new(towers: Vec<GeoPoint>) -> Result<Self> {
        if towers.is_empty() {
            return Err(MobilityError::NoTowers);
        }
        CellId::from_usize(towers.len() - 1)?;
        let pad = 1e-4; // ~11 m
        let min_lat = towers.iter().map(|t| t.lat).fold(f64::INFINITY, f64::min) - pad;
        let max_lat = towers
            .iter()
            .map(|t| t.lat)
            .fold(f64::NEG_INFINITY, f64::max)
            + pad;
        let min_lon = towers.iter().map(|t| t.lon).fold(f64::INFINITY, f64::min) - pad;
        let max_lon = towers
            .iter()
            .map(|t| t.lon)
            .fold(f64::NEG_INFINITY, f64::max)
            + pad;
        let bbox = BoundingBox::new(min_lat, max_lat, min_lon, max_lon)?;
        let buckets = ((towers.len() as f64 / TARGET_PER_BUCKET).sqrt().ceil() as usize).max(1);
        let (rows, cols) = (buckets, buckets);
        let mut grid = vec![Vec::new(); rows * cols];
        let index_of = |p: &GeoPoint| -> usize {
            let r = (((p.lat - bbox.min_lat) / (bbox.max_lat - bbox.min_lat)) * rows as f64)
                .floor()
                .clamp(0.0, (rows - 1) as f64) as usize;
            let c = (((p.lon - bbox.min_lon) / (bbox.max_lon - bbox.min_lon)) * cols as f64)
                .floor()
                .clamp(0.0, (cols - 1) as f64) as usize;
            r * cols + c
        };
        for (i, t) in towers.iter().enumerate() {
            grid[index_of(t)].push(i as u32);
        }
        Ok(CellMap {
            towers,
            bbox,
            grid,
            rows,
            cols,
        })
    }

    /// Number of cells (towers).
    pub fn num_cells(&self) -> usize {
        self.towers.len()
    }

    /// The tower location that defines `cell`.
    ///
    /// # Panics
    ///
    /// Panics if `cell` is out of range.
    pub fn tower(&self, cell: CellId) -> GeoPoint {
        self.towers[cell.index()]
    }

    /// All tower locations in cell order.
    pub fn towers(&self) -> &[GeoPoint] {
        &self.towers
    }

    /// Nearest tower by brute force — `O(n)`, the correctness oracle.
    pub fn nearest_brute(&self, p: &GeoPoint) -> CellId {
        let mut best = 0usize;
        let mut best_d = f64::INFINITY;
        for (i, t) in self.towers.iter().enumerate() {
            let d = t.distance_m(p);
            if d < best_d {
                best_d = d;
                best = i;
            }
        }
        CellId::new(best)
    }

    /// Nearest tower via the grid index: expand rings of buckets around
    /// the query until a candidate is found, then one extra ring to rule
    /// out closer towers in neighbouring buckets.
    pub fn nearest(&self, p: &GeoPoint) -> CellId {
        let clamped = self.bbox.clamp(p);
        let r0 = (((clamped.lat - self.bbox.min_lat) / (self.bbox.max_lat - self.bbox.min_lat))
            * self.rows as f64)
            .floor()
            .clamp(0.0, (self.rows - 1) as f64) as isize;
        let c0 = (((clamped.lon - self.bbox.min_lon) / (self.bbox.max_lon - self.bbox.min_lon))
            * self.cols as f64)
            .floor()
            .clamp(0.0, (self.cols - 1) as f64) as isize;

        let mut best: Option<(usize, f64)> = None;
        let max_ring = self.rows.max(self.cols) as isize;
        let mut settled_ring: Option<isize> = None;
        for ring in 0..=max_ring {
            if let Some(sr) = settled_ring {
                // One extra ring after the first hit is enough: a tower in
                // ring r is at least (r-1) bucket-widths away, so anything
                // beyond sr+1 cannot beat the current best.
                if ring > sr + 1 {
                    break;
                }
            }
            let mut found_in_ring = false;
            for dr in -ring..=ring {
                for dc in -ring..=ring {
                    if dr.abs().max(dc.abs()) != ring {
                        continue; // only the ring boundary
                    }
                    let (r, c) = (r0 + dr, c0 + dc);
                    if r < 0 || c < 0 || r >= self.rows as isize || c >= self.cols as isize {
                        continue;
                    }
                    for &i in &self.grid[r as usize * self.cols + c as usize] {
                        let d = self.towers[i as usize].distance_m(p);
                        found_in_ring = true;
                        match best {
                            Some((_, bd)) if bd <= d => {}
                            _ => best = Some((i as usize, d)),
                        }
                    }
                }
            }
            if found_in_ring && settled_ring.is_none() {
                settled_ring = Some(ring);
            }
        }
        CellId::new(best.expect("at least one tower exists").0)
    }

    /// Quantizes a position sequence into a cell trajectory.
    pub fn quantize(&self, positions: &[GeoPoint]) -> Trajectory {
        positions.iter().map(|p| self.nearest(p)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::towers;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn rejects_empty_layout() {
        assert!(matches!(CellMap::new(vec![]), Err(MobilityError::NoTowers)));
    }

    #[test]
    fn grid_nearest_matches_brute_force() {
        let sf = BoundingBox::san_francisco();
        let mut rng = StdRng::seed_from_u64(7);
        let layout = towers::clustered_layout(400, 5, 1_000.0, 0.2, &sf, &mut rng).unwrap();
        let map = CellMap::new(layout).unwrap();
        for _ in 0..500 {
            let p = sf.sample(&mut rng);
            assert_eq!(map.nearest(&p), map.nearest_brute(&p));
        }
    }

    #[test]
    fn nearest_of_a_tower_is_itself() {
        let sf = BoundingBox::san_francisco();
        let mut rng = StdRng::seed_from_u64(8);
        let layout = towers::uniform_layout(100, &sf, &mut rng).unwrap();
        // De-duplicate first: coincident towers would alias.
        let layout = towers::min_separation_filter(&layout, 1.0);
        let map = CellMap::new(layout.clone()).unwrap();
        for (i, t) in layout.iter().enumerate() {
            assert_eq!(map.nearest(t), CellId::new(i));
        }
    }

    #[test]
    fn queries_outside_the_box_resolve() {
        let map = CellMap::new(vec![
            GeoPoint::new(37.7, -122.4),
            GeoPoint::new(37.8, -122.3),
        ])
        .unwrap();
        // A far-north point is nearest to the northern tower.
        assert_eq!(map.nearest(&GeoPoint::new(40.0, -122.3)), CellId::new(1));
        // A far-south point is nearest to the southern tower.
        assert_eq!(map.nearest(&GeoPoint::new(36.0, -122.4)), CellId::new(0));
    }

    #[test]
    fn quantize_maps_every_position() {
        let sf = BoundingBox::san_francisco();
        let mut rng = StdRng::seed_from_u64(9);
        let layout = towers::uniform_layout(50, &sf, &mut rng).unwrap();
        let map = CellMap::new(layout).unwrap();
        let path: Vec<GeoPoint> = (0..20).map(|_| sf.sample(&mut rng)).collect();
        let traj = map.quantize(&path);
        assert_eq!(traj.len(), 20);
        assert!(traj.iter().all(|c| c.index() < map.num_cells()));
    }

    #[test]
    fn single_tower_layout() {
        let map = CellMap::new(vec![GeoPoint::new(37.7, -122.4)]).unwrap();
        assert_eq!(map.num_cells(), 1);
        assert_eq!(map.nearest(&GeoPoint::new(37.9, -122.1)), CellId::new(0));
    }
}

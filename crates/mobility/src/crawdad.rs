//! Parser for the CRAWDAD `epfl/mobility` trace format.
//!
//! The dataset the paper uses (\[30\], Piorkowski et al. 2009) ships one
//! text file per taxi (`new_<id>.txt`), each line holding
//! `latitude longitude occupancy timestamp` separated by spaces, newest
//! record first. The dataset itself is license-gated and not
//! redistributable; this parser lets the real files be dropped into the
//! pipeline unchanged, while [`crate::taxi`] provides a synthetic
//! stand-in with matching statistics.
//!
//! All errors are typed [`MobilityError`]s that name the offending node,
//! so a single corrupt file in a 500-file directory is identifiable from
//! the message alone. For streamed ingestion of a directory (one batch of
//! files at a time instead of a fully materialized `Vec`), see
//! [`crate::stream::CrawdadDirStream`].

use crate::geo::{BoundingBox, GeoPoint};
use crate::record::{NodeTrace, TraceRecord};
use crate::{MobilityError, Result};
use std::io::BufRead;
use std::path::{Path, PathBuf};

/// Parses one node file from any reader.
///
/// # Errors
///
/// Returns a parse error naming the node and the 1-based line number on
/// malformed input; blank lines are skipped.
pub fn parse_node<R: BufRead>(node_id: impl Into<String>, reader: R) -> Result<NodeTrace> {
    let node_id = node_id.into();
    let mut records = Vec::new();
    for (idx, line) in reader.lines().enumerate() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        records.push(parse_line(&node_id, trimmed, idx + 1)?);
    }
    Ok(NodeTrace::new(node_id, records))
}

fn parse_line(node: &str, line: &str, line_no: usize) -> Result<TraceRecord> {
    let mut fields = line.split_whitespace();
    let mut next_field = |name: &str| {
        fields.next().ok_or_else(|| MobilityError::Parse {
            node: node.to_string(),
            line: line_no,
            reason: format!("missing field '{name}'"),
        })
    };
    let lat: f64 = parse_field(node, next_field("latitude")?, "latitude", line_no)?;
    let lon: f64 = parse_field(node, next_field("longitude")?, "longitude", line_no)?;
    let occ: u8 = parse_field(node, next_field("occupancy")?, "occupancy", line_no)?;
    let ts: i64 = parse_field(node, next_field("timestamp")?, "timestamp", line_no)?;
    if !(-90.0..=90.0).contains(&lat) || !(-180.0..=180.0).contains(&lon) {
        return Err(MobilityError::Parse {
            node: node.to_string(),
            line: line_no,
            reason: format!("coordinates out of range: {lat}, {lon}"),
        });
    }
    Ok(TraceRecord {
        point: GeoPoint::new(lat, lon),
        occupied: occ != 0,
        timestamp: ts,
    })
}

fn parse_field<T: std::str::FromStr>(
    node: &str,
    raw: &str,
    name: &str,
    line_no: usize,
) -> Result<T> {
    raw.parse().map_err(|_| MobilityError::Parse {
        node: node.to_string(),
        line: line_no,
        reason: format!("invalid {name}: '{raw}'"),
    })
}

/// Checks that every record of `trace` lies inside `bbox`.
///
/// The CRAWDAD files occasionally contain GPS glitches that teleport a
/// taxi across the globe; quantizing such a record would silently assign
/// it to a border cell, so strict ingestion rejects it instead.
///
/// # Errors
///
/// Returns [`MobilityError::OutOfBbox`] naming the node and the (0-based,
/// time-sorted) record index of the first offender.
pub fn check_bbox(trace: &NodeTrace, bbox: &BoundingBox) -> Result<()> {
    for (record, r) in trace.records.iter().enumerate() {
        if !bbox.contains(&r.point) {
            return Err(MobilityError::OutOfBbox {
                node: trace.node_id.clone(),
                record,
                lat: r.point.lat,
                lon: r.point.lon,
            });
        }
    }
    Ok(())
}

/// Lists the `new_*.txt` node files of a CRAWDAD directory in sorted
/// (deterministic) order.
///
/// # Errors
///
/// Propagates directory-reading I/O errors.
pub fn node_files(dir: &Path) -> Result<Vec<PathBuf>> {
    let mut entries: Vec<_> = std::fs::read_dir(dir)?
        .collect::<std::io::Result<Vec<_>>>()?
        .into_iter()
        .map(|e| e.path())
        .filter(|p| {
            p.extension().is_some_and(|e| e == "txt")
                && p.file_stem()
                    .and_then(|s| s.to_str())
                    .is_some_and(|s| s.starts_with("new_"))
        })
        .collect();
    entries.sort();
    Ok(entries)
}

/// Loads every `new_*.txt` node file in a directory.
///
/// # Errors
///
/// Propagates I/O and parse errors; an empty directory yields an empty
/// vector (the caller decides whether that is fatal).
pub fn load_directory(dir: &Path) -> Result<Vec<NodeTrace>> {
    let mut traces = Vec::new();
    for path in node_files(dir)? {
        let stem = path
            .file_stem()
            .and_then(|s| s.to_str())
            .unwrap_or("unknown")
            .to_string();
        let file = std::fs::File::open(&path)?;
        traces.push(parse_node(stem, std::io::BufReader::new(file))?);
    }
    Ok(traces)
}

/// Serializes a trace back to the CRAWDAD line format (newest first), the
/// inverse of [`parse_node`]. Used to round-trip synthetic fleets into
/// dataset-shaped files.
pub fn to_crawdad_text(trace: &NodeTrace) -> String {
    let mut out = String::new();
    for r in trace.records.iter().rev() {
        out.push_str(&format!(
            "{:.5} {:.5} {} {}\n",
            r.point.lat,
            r.point.lon,
            u8::from(r.occupied),
            r.timestamp
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    const SAMPLE: &str = "\
37.75134 -122.39488 0 1213084687
37.75136 -122.39527 0 1213084659
37.75199 -122.3946 1 1213084540
";

    #[test]
    fn parses_the_documented_format() {
        let trace = parse_node("new_abboip", Cursor::new(SAMPLE)).unwrap();
        assert_eq!(trace.records.len(), 3);
        // Sorted ascending despite newest-first input.
        assert_eq!(trace.records[0].timestamp, 1213084540);
        assert!(trace.records[0].occupied);
        assert!((trace.records[2].point.lat - 37.75134).abs() < 1e-9);
    }

    #[test]
    fn skips_blank_lines() {
        let trace = parse_node("n", Cursor::new("\n37.7 -122.4 0 100\n\n")).unwrap();
        assert_eq!(trace.records.len(), 1);
    }

    #[test]
    fn reports_node_and_line_numbers_on_errors() {
        let bad = "37.7 -122.4 0 100\n37.7 -122.4 zero 100\n";
        let err = parse_node("new_bad", Cursor::new(bad)).unwrap_err();
        match err {
            MobilityError::Parse { node, line, reason } => {
                assert_eq!(node, "new_bad");
                assert_eq!(line, 2);
                assert!(reason.contains("occupancy"));
            }
            other => panic!("unexpected error: {other:?}"),
        }
    }

    #[test]
    fn rejects_out_of_range_coordinates() {
        let err = parse_node("n", Cursor::new("99.0 -122.4 0 100\n")).unwrap_err();
        assert!(matches!(err, MobilityError::Parse { line: 1, .. }));
    }

    #[test]
    fn rejects_missing_fields() {
        let err = parse_node("n", Cursor::new("37.7 -122.4 0\n")).unwrap_err();
        match err {
            MobilityError::Parse { reason, .. } => assert!(reason.contains("timestamp")),
            other => panic!("unexpected error: {other:?}"),
        }
    }

    #[test]
    fn bbox_check_names_node_and_record() {
        let trace = parse_node("new_glitchy", Cursor::new(SAMPLE)).unwrap();
        assert!(check_bbox(&trace, &BoundingBox::san_francisco()).is_ok());
        let london = BoundingBox::new(51.0, 52.0, -1.0, 1.0).unwrap();
        match check_bbox(&trace, &london).unwrap_err() {
            MobilityError::OutOfBbox { node, record, .. } => {
                assert_eq!(node, "new_glitchy");
                assert_eq!(record, 0);
            }
            other => panic!("unexpected error: {other:?}"),
        }
    }

    #[test]
    fn round_trips_through_text() {
        let trace = parse_node("n", Cursor::new(SAMPLE)).unwrap();
        let text = to_crawdad_text(&trace);
        let reparsed = parse_node("n", Cursor::new(text)).unwrap();
        assert_eq!(trace.records.len(), reparsed.records.len());
        for (a, b) in trace.records.iter().zip(&reparsed.records) {
            assert_eq!(a.timestamp, b.timestamp);
            assert_eq!(a.occupied, b.occupied);
            assert!((a.point.lat - b.point.lat).abs() < 1e-5);
        }
    }

    #[test]
    fn loads_directory_of_files() {
        let dir = std::env::temp_dir().join(format!("crawdad_test_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("new_a.txt"), SAMPLE).unwrap();
        std::fs::write(dir.join("new_b.txt"), SAMPLE).unwrap();
        std::fs::write(dir.join("readme.md"), "not a trace").unwrap();
        let traces = load_directory(&dir).unwrap();
        assert_eq!(traces.len(), 2);
        assert_eq!(traces[0].node_id, "new_a");
        let files = node_files(&dir).unwrap();
        assert_eq!(files.len(), 2);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}

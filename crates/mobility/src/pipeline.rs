//! The end-to-end trace pipeline of Sec. VII-B1.
//!
//! Assembles the full dataset the paper's trace-driven experiments run on:
//!
//! 1. generate (or load) cell towers and apply the 100 m separation filter;
//! 2. generate (or load) taxi traces;
//! 3. filter inactive nodes and regularize to 1-minute slots;
//! 4. quantize positions to Voronoi cells;
//! 5. estimate the empirical Markov model.
//!
//! With the default parameters this mirrors the paper's numbers: ~959
//! cells, up to 174 usable nodes, 100 slots.
//!
//! Two execution engines share the builder:
//!
//! * [`TraceDatasetBuilder::build`] — the legacy single-threaded path
//!   that materializes the whole fleet first; kept as the bit-for-bit
//!   oracle the streamed engine is property-tested against;
//! * [`TraceDatasetBuilder::build_streaming`] — the scaled path: a
//!   [`TraceStream`] source emits per-node record batches, the
//!   process-wide worker pool ([`chaff_core::pool`], like the fleet
//!   engine's sharding) runs the
//!   regularize→quantize stages per node, and per-shard
//!   [`EpochAccumulator`]s of integer transition counts (one count set
//!   per epoch of the configured schedule; a single set by default) are
//!   merged at the end — so the resulting [`TraceDataset`] is identical
//!   for every shard count and batch size. The [`replicas`](TraceDatasetBuilder::replicas)
//!   knob amplifies the synthetic fleet to 10⁴–10⁵ nodes via per-replica
//!   SplitMix64 seed streams.

use crate::empirical::{EmpiricalModel, EpochAccumulator};
use crate::geo::BoundingBox;
use crate::interpolate::{inactivity_reason, regularize, regularize_fleet, SlotGrid};
use crate::record::NodeTrace;
use crate::stream::{ReplicatedTaxiStream, TaxiTraceStream, TraceStream, VecTraceStream};
use crate::taxi::{generate_fleet, TaxiFleetConfig};
use crate::towers::{clustered_layout, min_separation_filter, DEFAULT_MIN_SEPARATION_M};
use crate::voronoi::CellMap;
use crate::{MobilityError, Result};
use chaff_markov::{EpochSchedule, MarkovChain, MobilityRegistry, Trajectory};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A fully assembled trace dataset: cells, per-node trajectories and the
/// empirical mobility model.
#[derive(Debug, Clone)]
pub struct TraceDataset {
    cell_map: CellMap,
    node_ids: Vec<String>,
    trajectories: Vec<Trajectory>,
    model: EmpiricalModel,
    epoch_schedule: EpochSchedule,
    /// Per-epoch estimates, present only when the builder was given a
    /// non-trivial epoch schedule. The pooled [`model`](Self::model) is
    /// always estimated schedule-blind, so enabling epochs never perturbs
    /// the stationary numbers.
    epoch_models: Option<Vec<EmpiricalModel>>,
}

impl TraceDataset {
    /// The Voronoi quantizer (one cell per tower).
    pub fn cell_map(&self) -> &CellMap {
        &self.cell_map
    }

    /// Identifiers of the surviving (active) nodes, aligned with
    /// [`trajectories`](TraceDataset::trajectories).
    pub fn node_ids(&self) -> &[String] {
        &self.node_ids
    }

    /// Quantized per-node trajectories.
    pub fn trajectories(&self) -> &[Trajectory] {
        &self.trajectories
    }

    /// The estimated empirical model.
    pub fn empirical(&self) -> &EmpiricalModel {
        &self.model
    }

    /// The empirical mobility chain (matrix + occupancy steady state),
    /// pooled over all slots regardless of any epoch schedule.
    pub fn model(&self) -> &MarkovChain {
        self.model.chain()
    }

    /// The slot → epoch map the dataset was estimated under (stationary
    /// unless [`TraceDatasetBuilder::epoch_schedule`] was set).
    pub fn epoch_schedule(&self) -> &EpochSchedule {
        &self.epoch_schedule
    }

    /// Per-epoch empirical models, when the builder was given an epoch
    /// schedule: `epoch_models()[e]` is estimated from exactly the slots
    /// `t` with `epoch_of(t) == e` (arrival convention).
    pub fn epoch_models(&self) -> Option<&[EmpiricalModel]> {
        self.epoch_models.as_deref()
    }

    /// Bridges the dataset into the detector stack: a single-class
    /// [`MobilityRegistry`] over the per-epoch chains when an epoch
    /// schedule was set, or over the pooled chain otherwise.
    ///
    /// # Errors
    ///
    /// Propagates registry shape validation (never fails for datasets
    /// built by this pipeline).
    pub fn registry(&self) -> Result<MobilityRegistry> {
        match &self.epoch_models {
            Some(models) => Ok(MobilityRegistry::with_epochs(
                models.iter().map(|m| vec![m.chain().clone()]).collect(),
                self.epoch_schedule.clone(),
            )?),
            None => Ok(MobilityRegistry::single(self.model.chain().clone())),
        }
    }
}

/// Builder for [`TraceDataset`] — synthetic by default, with hooks to
/// substitute real tower layouts or real CRAWDAD traces.
#[derive(Debug, Clone)]
pub struct TraceDatasetBuilder {
    num_towers: usize,
    tower_clusters: usize,
    tower_spread_m: f64,
    tower_background: f64,
    min_separation_m: f64,
    fleet: TaxiFleetConfig,
    horizon_slots: usize,
    slot_s: i64,
    seed: u64,
    shards: Option<usize>,
    batch_nodes: usize,
    replicas: usize,
    epoch_schedule: Option<EpochSchedule>,
    external_traces: Option<Vec<NodeTrace>>,
    external_towers: Option<Vec<crate::geo::GeoPoint>>,
}

impl Default for TraceDatasetBuilder {
    fn default() -> Self {
        TraceDatasetBuilder {
            // Generate extra towers so that after the 100 m filter roughly
            // the paper's 959 remain.
            num_towers: 1_100,
            tower_clusters: 6,
            tower_spread_m: 2_000.0,
            tower_background: 0.35,
            min_separation_m: DEFAULT_MIN_SEPARATION_M,
            fleet: TaxiFleetConfig::default(),
            horizon_slots: 100,
            slot_s: 60,
            seed: 20170605, // ICDCS'17 presentation date
            shards: None,
            batch_nodes: 256,
            replicas: 1,
            epoch_schedule: None,
            external_traces: None,
            external_towers: None,
        }
    }
}

impl TraceDatasetBuilder {
    /// Creates a builder with the paper's default scale.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the RNG seed controlling towers, hotspots and traces.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Number of towers to generate before separation filtering.
    pub fn num_towers(mut self, n: usize) -> Self {
        self.num_towers = n;
        self
    }

    /// Number of taxis to simulate.
    pub fn num_nodes(mut self, n: usize) -> Self {
        self.fleet.num_nodes = n;
        self.fleet.duration_s = self.fleet.duration_s.max(1);
        self
    }

    /// Number of evaluation slots (the paper's `T = 100`).
    pub fn horizon_slots(mut self, t: usize) -> Self {
        self.horizon_slots = t;
        self
    }

    /// Slot length in seconds (the paper's 1 minute).
    pub fn slot_seconds(mut self, s: i64) -> Self {
        self.slot_s = s;
        self
    }

    /// Pins the worker-thread count of
    /// [`build_streaming`](TraceDatasetBuilder::build_streaming); `None`
    /// (the default) sizes from available parallelism. Results never
    /// depend on this.
    pub fn shards(mut self, shards: usize) -> Self {
        self.shards = Some(shards.max(1));
        self
    }

    /// Nodes per streamed batch (streaming engine only; results never
    /// depend on this — it trades peak memory against thread-dispatch
    /// overhead).
    pub fn batch_nodes(mut self, n: usize) -> Self {
        self.batch_nodes = n.max(1);
        self
    }

    /// Amplifies the synthetic fleet to `replicas` statistical copies of
    /// the configured fleet, each drawn from an independent SplitMix64
    /// seed stream (streaming engine only). `1` (the default) keeps the
    /// legacy-identical single fleet.
    pub fn replicas(mut self, replicas: usize) -> Self {
        self.replicas = replicas;
        self
    }

    /// Additionally estimates one empirical model per epoch of `schedule`
    /// (slot `t` of the evaluation window counts toward
    /// `schedule.epoch_of(t)`, arrival convention). The pooled
    /// [`TraceDataset::model`] stays schedule-blind and bit-for-bit
    /// unchanged; the per-epoch estimates are exposed via
    /// [`TraceDataset::epoch_models`] / [`TraceDataset::registry`].
    pub fn epoch_schedule(mut self, schedule: EpochSchedule) -> Self {
        self.epoch_schedule = Some(schedule);
        self
    }

    /// Overrides the fleet configuration entirely.
    pub fn fleet_config(mut self, config: TaxiFleetConfig) -> Self {
        self.fleet = config;
        self
    }

    /// Uses real traces (e.g. from [`crate::crawdad::load_directory`])
    /// instead of the synthetic fleet.
    pub fn with_traces(mut self, traces: Vec<NodeTrace>) -> Self {
        self.external_traces = Some(traces);
        self
    }

    /// Uses a real tower layout instead of the synthetic one.
    pub fn with_towers(mut self, towers: Vec<crate::geo::GeoPoint>) -> Self {
        self.external_towers = Some(towers);
        self
    }

    /// Builds the tower layout and quantizer, consuming the tower portion
    /// of the seed stream exactly like the legacy path.
    fn build_cell_map(&self, rng: &mut StdRng) -> Result<CellMap> {
        let bbox: BoundingBox = self.fleet.bbox;
        let raw_towers = match &self.external_towers {
            Some(t) => t.clone(),
            None => clustered_layout(
                self.num_towers,
                self.tower_clusters,
                self.tower_spread_m,
                self.tower_background,
                &bbox,
                rng,
            )?,
        };
        let towers = min_separation_filter(&raw_towers, self.min_separation_m);
        CellMap::new(towers)
    }

    /// The fleet configuration with the duration extended a little beyond
    /// the window so interpolation has a bracketing update at the last
    /// slot.
    fn window_fleet_config(&self) -> TaxiFleetConfig {
        let mut fleet_config = self.fleet.clone();
        fleet_config.duration_s = self.slot_s * self.horizon_slots as i64 + 2 * self.slot_s;
        fleet_config
    }

    /// Runs the legacy single-threaded pipeline.
    ///
    /// Kept as the bit-for-bit oracle for the streamed engine
    /// ([`build_streaming`](TraceDatasetBuilder::build_streaming) is
    /// property-tested to agree exactly).
    ///
    /// # Errors
    ///
    /// Returns an error when the configuration is invalid, every node is
    /// filtered out as inactive, or model estimation fails.
    pub fn build(self) -> Result<TraceDataset> {
        let mut rng = StdRng::seed_from_u64(self.seed);

        // 1. Towers + separation filter.
        let cell_map = self.build_cell_map(&mut rng)?;

        // 2. Traces.
        let fleet_config = self.window_fleet_config();
        let traces = match self.external_traces {
            Some(t) => t,
            None => generate_fleet(&fleet_config, &mut rng)?,
        };

        // 3. Inactive filter + interpolation.
        let start = traces
            .iter()
            .filter_map(|t| t.records.first().map(|r| r.timestamp))
            .min()
            .unwrap_or(fleet_config.start_timestamp);
        let grid = SlotGrid {
            start_timestamp: start,
            slot_s: self.slot_s,
            num_slots: self.horizon_slots,
            max_gap_s: crate::interpolate::DEFAULT_MAX_GAP_S,
        };
        let regular = regularize_fleet(&traces, &grid);
        if regular.is_empty() {
            return Err(MobilityError::NoActiveNodes {
                examined: traces.len(),
                example: dropped_example(traces.first(), &grid),
            });
        }

        // 4. Quantization.
        let mut node_ids = Vec::with_capacity(regular.len());
        let mut trajectories = Vec::with_capacity(regular.len());
        for (id, positions) in regular {
            node_ids.push(id);
            trajectories.push(cell_map.quantize(&positions));
        }

        // 5. Empirical model (pooled, schedule-blind) plus the optional
        // per-epoch pass.
        let model = EmpiricalModel::estimate(&trajectories, cell_map.num_cells(), 0.0)?;
        let epoch_models = match &self.epoch_schedule {
            Some(schedule) => {
                let mut acc = EpochAccumulator::new(cell_map.num_cells(), schedule.clone())?;
                for trajectory in &trajectories {
                    acc.record(trajectory)?;
                }
                Some(acc.finish(0.0)?)
            }
            None => None,
        };
        Ok(TraceDataset {
            cell_map,
            node_ids,
            trajectories,
            model,
            epoch_schedule: self
                .epoch_schedule
                .unwrap_or_else(EpochSchedule::stationary),
            epoch_models,
        })
    }

    /// Runs the streaming, sharded pipeline.
    ///
    /// Stages 2–5 run incrementally: the source emits per-node record
    /// batches, each batch's regularize→quantize work is split over
    /// worker threads, and per-shard integer transition counts are merged
    /// at the end. The result is **bit-for-bit identical** to
    /// [`build`](TraceDatasetBuilder::build) for every shard count and
    /// batch size (property-tested), while raw GPS records only ever live
    /// one batch at a time. With
    /// [`replicas`](TraceDatasetBuilder::replicas)` > 1` the synthetic
    /// fleet is amplified instead (one independent seed stream per
    /// replica).
    ///
    /// # Errors
    ///
    /// As [`build`](TraceDatasetBuilder::build); additionally rejects
    /// `replicas == 0` and `replicas > 1` combined with external traces
    /// (only the synthetic generator can be amplified).
    pub fn build_streaming(mut self) -> Result<TraceDataset> {
        if self.replicas == 0 {
            return Err(MobilityError::InvalidConfig {
                parameter: "replicas",
                reason: "must be positive".into(),
            });
        }
        if self.replicas > 1 && self.external_traces.is_some() {
            return Err(MobilityError::InvalidConfig {
                parameter: "replicas",
                reason: "amplification applies to the synthetic fleet only; \
                         external traces cannot be replicated"
                    .into(),
            });
        }
        let mut rng = StdRng::seed_from_u64(self.seed);
        let cell_map = self.build_cell_map(&mut rng)?;
        let fleet_config = self.window_fleet_config();
        match self.external_traces.take() {
            Some(traces) => {
                let stream = VecTraceStream::new(traces);
                self.ingest(cell_map, &fleet_config, stream)
            }
            None if self.replicas > 1 => {
                let stream =
                    ReplicatedTaxiStream::new(fleet_config.clone(), self.seed, self.replicas)?;
                self.ingest(cell_map, &fleet_config, stream)
            }
            None => {
                // Continue the tower RNG, exactly like the legacy path.
                let stream = TaxiTraceStream::with_rng(fleet_config.clone(), rng)?;
                self.ingest(cell_map, &fleet_config, stream)
            }
        }
    }

    /// Runs the streaming engine over an arbitrary external source (e.g.
    /// a [`crate::stream::CrawdadDirStream`]), using the builder's tower
    /// layout, slot grid and shard configuration.
    ///
    /// Sources whose [`TraceStream::window_start`] is unknown are drained
    /// into memory first to locate the evaluation window (streaming is
    /// preserved when the source can name its start).
    ///
    /// # Errors
    ///
    /// As [`build`](TraceDatasetBuilder::build), plus source errors.
    pub fn build_from_stream<S: TraceStream>(self, stream: S) -> Result<TraceDataset> {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let cell_map = self.build_cell_map(&mut rng)?;
        let fleet_config = self.window_fleet_config();
        self.ingest(cell_map, &fleet_config, stream)
    }

    /// The shared streaming engine: window location, sharded
    /// regularize→quantize, accumulator merge, model estimation.
    fn ingest<S: TraceStream>(
        &self,
        cell_map: CellMap,
        fleet_config: &TaxiFleetConfig,
        mut stream: S,
    ) -> Result<TraceDataset> {
        // Locate the evaluation window without draining when possible;
        // buffer the whole stream otherwise (matching the legacy start
        // derivation: min first-record timestamp).
        let mut buffered;
        let (start, stream): (i64, &mut dyn TraceStream) = match stream.window_start() {
            Some(s) => (s, &mut stream),
            None => {
                let mut all = Vec::new();
                loop {
                    let batch = stream.next_batch(self.batch_nodes)?;
                    if batch.is_empty() {
                        break;
                    }
                    all.extend(batch);
                }
                buffered = VecTraceStream::new(all);
                let s = buffered
                    .window_start()
                    .unwrap_or(fleet_config.start_timestamp);
                (s, &mut buffered)
            }
        };
        let grid = SlotGrid {
            start_timestamp: start,
            slot_s: self.slot_s,
            num_slots: self.horizon_slots,
            max_gap_s: crate::interpolate::DEFAULT_MAX_GAP_S,
        };

        let shards = self.effective_shards();
        let schedule = self
            .epoch_schedule
            .clone()
            .unwrap_or_else(EpochSchedule::stationary);
        let mut accumulators: Vec<EpochAccumulator> = (0..shards)
            .map(|_| EpochAccumulator::new(cell_map.num_cells(), schedule.clone()))
            .collect::<Result<_>>()?;
        let hint = stream.len_hint().unwrap_or(0);
        let mut node_ids: Vec<String> = Vec::with_capacity(hint);
        let mut trajectories: Vec<Trajectory> = Vec::with_capacity(hint);
        let mut examined = 0usize;
        let mut example: Option<String> = None;

        loop {
            let batch = stream.next_batch(self.batch_nodes)?;
            if batch.is_empty() {
                break;
            }
            examined += batch.len();
            let mut results: Vec<Option<(String, Trajectory)>> = vec![None; batch.len()];
            let chunk = batch.len().div_ceil(shards);
            if shards <= 1 {
                process_chunk(&batch, &mut results, &grid, &cell_map, &mut accumulators[0]);
            } else {
                // Every ingested batch reuses the process-wide worker
                // pool — a long trace stream dispatches thousands of
                // batches without spawning a single thread per batch.
                chaff_core::pool::global().scope(|scope| {
                    for ((traces, outs), acc) in batch
                        .chunks(chunk)
                        .zip(results.chunks_mut(chunk))
                        .zip(accumulators.iter_mut())
                    {
                        let grid = &grid;
                        let cell_map = &cell_map;
                        scope.spawn(move || process_chunk(traces, outs, grid, cell_map, acc));
                    }
                });
            }
            for (trace, result) in batch.iter().zip(results) {
                match result {
                    Some((id, trajectory)) => {
                        node_ids.push(id);
                        trajectories.push(trajectory);
                    }
                    None => {
                        if example.is_none() {
                            example = dropped_example(Some(trace), &grid);
                        }
                    }
                }
            }
        }
        if trajectories.is_empty() {
            return Err(MobilityError::NoActiveNodes { examined, example });
        }

        // Merge per-shard integer counts (exact, order-independent) and
        // normalize once. The pooled model is estimated from the summed
        // per-epoch counts — exactly the counts a schedule-blind pass
        // would have produced, so it is bit-for-bit schedule-independent.
        let mut merged = accumulators.swap_remove(0);
        for acc in &accumulators {
            merged.merge(acc)?;
        }
        let model = merged.pooled()?.finish(0.0)?;
        let epoch_models = match self.epoch_schedule {
            Some(_) => Some(merged.finish(0.0)?),
            None => None,
        };
        Ok(TraceDataset {
            cell_map,
            node_ids,
            trajectories,
            model,
            epoch_schedule: schedule,
            epoch_models,
        })
    }

    fn effective_shards(&self) -> usize {
        self.shards
            .unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(std::num::NonZeroUsize::get)
                    .unwrap_or(1)
            })
            .max(1)
    }
}

/// One worker's share of a batch: regularize and quantize each node,
/// recording survivors' transitions into the worker-local accumulator.
fn process_chunk(
    traces: &[NodeTrace],
    outs: &mut [Option<(String, Trajectory)>],
    grid: &SlotGrid,
    cell_map: &CellMap,
    acc: &mut EpochAccumulator,
) {
    for (trace, out) in traces.iter().zip(outs.iter_mut()) {
        if let Some(positions) = regularize(trace, grid) {
            let trajectory = cell_map.quantize(&positions);
            acc.record(&trajectory)
                .expect("quantized cells are always in range");
            *out = Some((trace.node_id.clone(), trajectory));
        }
    }
}

/// Formats the representative dropped-node message for
/// [`MobilityError::NoActiveNodes`].
fn dropped_example(trace: Option<&NodeTrace>, grid: &SlotGrid) -> Option<String> {
    let trace = trace?;
    let reason = inactivity_reason(trace, grid)?;
    Some(format!("{}: {}", trace.node_id, reason))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::OnceLock;

    fn small() -> TraceDatasetBuilder {
        TraceDatasetBuilder::new()
            .num_nodes(25)
            .num_towers(120)
            .horizon_slots(40)
            .seed(99)
    }

    /// The shared small dataset: built once, reused by every test that
    /// only *reads* it (rebuilding per assertion dominated this suite's
    /// runtime before).
    fn small_dataset() -> &'static TraceDataset {
        static DATASET: OnceLock<TraceDataset> = OnceLock::new();
        DATASET.get_or_init(|| small().build().unwrap())
    }

    #[test]
    fn pipeline_produces_consistent_dataset() {
        let ds = small_dataset();
        assert!(!ds.trajectories().is_empty());
        assert_eq!(ds.node_ids().len(), ds.trajectories().len());
        for t in ds.trajectories() {
            assert_eq!(t.len(), 40);
            // Observed trajectories are explainable under the model.
            assert!(ds.model().log_likelihood(t).is_finite());
        }
        assert_eq!(ds.model().num_states(), ds.cell_map().num_cells());
    }

    #[test]
    fn pipeline_is_deterministic_per_seed() {
        let a = small_dataset();
        let b = small().build().unwrap();
        assert_eq!(a.trajectories(), b.trajectories());
        let c = small().seed(100).build().unwrap();
        assert_ne!(a.trajectories(), c.trajectories());
    }

    #[test]
    fn occupancy_is_spatially_skewed() {
        // The point of the hotspot fleet: the empirical steady state must
        // be far from uniform (Fig. 8b), i.e. collision probability well
        // above 1/L.
        let ds = small_dataset();
        let pi = ds.model().initial();
        let uniform_floor = 1.0 / ds.model().num_states() as f64;
        assert!(
            pi.collision_probability() > 3.0 * uniform_floor,
            "collision = {}, floor = {}",
            pi.collision_probability(),
            uniform_floor
        );
    }

    #[test]
    fn inactivity_filters_some_nodes() {
        // 3% inactivity per update over ~40 updates gives each node only a
        // ~30% survival chance: most nodes drop, a few remain.
        let mut builder = small();
        builder.fleet.inactivity_prob = 0.03;
        builder.fleet.inactivity_duration_s = 600;
        let ds = builder.build().unwrap();
        assert!(
            ds.trajectories().len() < 25,
            "expected some of the 25 nodes to be dropped, kept {}",
            ds.trajectories().len()
        );
    }

    #[test]
    fn paper_scale_configuration() {
        // Full-scale smoke test at the paper's dimensions, through the
        // streaming engine (this is the configuration Fig. 8 uses; the
        // streamed/legacy equality at this scale is covered by the parity
        // proptests at reduced size).
        let ds = TraceDatasetBuilder::new()
            .seed(7)
            .build_streaming()
            .unwrap();
        let cells = ds.cell_map().num_cells();
        assert!(
            (700..=1_100).contains(&cells),
            "cell count {cells} should be near the paper's 959"
        );
        assert!(
            ds.trajectories().len() >= 100,
            "{}",
            ds.trajectories().len()
        );
        assert_eq!(ds.trajectories()[0].len(), 100);
    }

    #[test]
    fn no_active_nodes_error_names_an_example() {
        // One lonely record per node: nothing covers the window.
        let traces = vec![NodeTrace::new(
            "lonely",
            vec![crate::record::TraceRecord {
                point: crate::geo::GeoPoint::new(37.7, -122.4),
                occupied: false,
                timestamp: 1_213_000_000,
            }],
        )];
        for build in [
            small().with_traces(traces.clone()).build().unwrap_err(),
            small()
                .with_traces(traces.clone())
                .build_streaming()
                .unwrap_err(),
        ] {
            match build {
                MobilityError::NoActiveNodes { examined, example } => {
                    assert_eq!(examined, 1);
                    let example = example.expect("example is derivable");
                    assert!(example.contains("lonely"), "{example}");
                }
                other => panic!("unexpected error: {other:?}"),
            }
        }
    }

    #[test]
    fn epoch_schedule_adds_models_without_perturbing_the_pooled_one() {
        let schedule = EpochSchedule::day_night(25, 15).unwrap();
        let epoch_ds = small().epoch_schedule(schedule.clone()).build().unwrap();
        let plain = small_dataset();
        // Pooled estimate is schedule-blind: bit-for-bit the plain build.
        assert_eq!(epoch_ds.model().matrix(), plain.model().matrix());
        assert_eq!(epoch_ds.trajectories(), plain.trajectories());
        assert!(plain.epoch_models().is_none());
        assert!(plain.epoch_schedule().is_stationary());
        // Per-epoch estimates exist and genuinely differ from the pool.
        let models = epoch_ds.epoch_models().expect("epochs were requested");
        assert_eq!(models.len(), 2);
        assert_eq!(epoch_ds.epoch_schedule(), &schedule);
        assert_ne!(models[0].chain().matrix(), plain.model().matrix());
        // The registry bridge carries the schedule into the detector stack.
        let registry = epoch_ds.registry().unwrap();
        assert_eq!(registry.num_epochs(), 2);
        assert_eq!(registry.num_classes(), 1);
        assert_eq!(plain.registry().unwrap().num_epochs(), 1);
        // Streaming with the same schedule agrees with the legacy build.
        let streamed = small().epoch_schedule(schedule).build_streaming().unwrap();
        assert_eq!(streamed.model().matrix(), epoch_ds.model().matrix());
        let streamed_models = streamed.epoch_models().unwrap();
        for (a, b) in streamed_models.iter().zip(models) {
            assert_eq!(a.chain().matrix(), b.chain().matrix());
            assert_eq!(a.visits(), b.visits());
        }
    }

    #[test]
    fn streaming_default_equals_legacy_on_the_shared_fixture() {
        // The cheap inline parity check (the exhaustive sweep over shard
        // counts and seeds lives in tests/streaming.rs).
        let streamed = small().build_streaming().unwrap();
        let legacy = small_dataset();
        assert_eq!(streamed.node_ids(), legacy.node_ids());
        assert_eq!(streamed.trajectories(), legacy.trajectories());
        assert_eq!(streamed.model().matrix(), legacy.model().matrix());
    }
}

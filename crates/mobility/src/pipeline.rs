//! The end-to-end trace pipeline of Sec. VII-B1.
//!
//! Assembles the full dataset the paper's trace-driven experiments run on:
//!
//! 1. generate (or load) cell towers and apply the 100 m separation filter;
//! 2. generate (or load) taxi traces;
//! 3. filter inactive nodes and regularize to 1-minute slots;
//! 4. quantize positions to Voronoi cells;
//! 5. estimate the empirical Markov model.
//!
//! With the default parameters this mirrors the paper's numbers: ~959
//! cells, up to 174 usable nodes, 100 slots.

use crate::empirical::EmpiricalModel;
use crate::geo::BoundingBox;
use crate::interpolate::{regularize_fleet, SlotGrid};
use crate::record::NodeTrace;
use crate::taxi::{generate_fleet, TaxiFleetConfig};
use crate::towers::{clustered_layout, min_separation_filter, DEFAULT_MIN_SEPARATION_M};
use crate::voronoi::CellMap;
use crate::{MobilityError, Result};
use chaff_markov::{MarkovChain, Trajectory};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A fully assembled trace dataset: cells, per-node trajectories and the
/// empirical mobility model.
#[derive(Debug, Clone)]
pub struct TraceDataset {
    cell_map: CellMap,
    node_ids: Vec<String>,
    trajectories: Vec<Trajectory>,
    model: EmpiricalModel,
}

impl TraceDataset {
    /// The Voronoi quantizer (one cell per tower).
    pub fn cell_map(&self) -> &CellMap {
        &self.cell_map
    }

    /// Identifiers of the surviving (active) nodes, aligned with
    /// [`trajectories`](TraceDataset::trajectories).
    pub fn node_ids(&self) -> &[String] {
        &self.node_ids
    }

    /// Quantized per-node trajectories.
    pub fn trajectories(&self) -> &[Trajectory] {
        &self.trajectories
    }

    /// The estimated empirical model.
    pub fn empirical(&self) -> &EmpiricalModel {
        &self.model
    }

    /// The empirical mobility chain (matrix + occupancy steady state).
    pub fn model(&self) -> &MarkovChain {
        self.model.chain()
    }
}

/// Builder for [`TraceDataset`] — synthetic by default, with hooks to
/// substitute real tower layouts or real CRAWDAD traces.
#[derive(Debug, Clone)]
pub struct TraceDatasetBuilder {
    num_towers: usize,
    tower_clusters: usize,
    tower_spread_m: f64,
    tower_background: f64,
    min_separation_m: f64,
    fleet: TaxiFleetConfig,
    horizon_slots: usize,
    slot_s: i64,
    seed: u64,
    external_traces: Option<Vec<NodeTrace>>,
    external_towers: Option<Vec<crate::geo::GeoPoint>>,
}

impl Default for TraceDatasetBuilder {
    fn default() -> Self {
        TraceDatasetBuilder {
            // Generate extra towers so that after the 100 m filter roughly
            // the paper's 959 remain.
            num_towers: 1_100,
            tower_clusters: 6,
            tower_spread_m: 2_000.0,
            tower_background: 0.35,
            min_separation_m: DEFAULT_MIN_SEPARATION_M,
            fleet: TaxiFleetConfig::default(),
            horizon_slots: 100,
            slot_s: 60,
            seed: 20170605, // ICDCS'17 presentation date
            external_traces: None,
            external_towers: None,
        }
    }
}

impl TraceDatasetBuilder {
    /// Creates a builder with the paper's default scale.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the RNG seed controlling towers, hotspots and traces.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Number of towers to generate before separation filtering.
    pub fn num_towers(mut self, n: usize) -> Self {
        self.num_towers = n;
        self
    }

    /// Number of taxis to simulate.
    pub fn num_nodes(mut self, n: usize) -> Self {
        self.fleet.num_nodes = n;
        self.fleet.duration_s = self.fleet.duration_s.max(1);
        self
    }

    /// Number of evaluation slots (the paper's `T = 100`).
    pub fn horizon_slots(mut self, t: usize) -> Self {
        self.horizon_slots = t;
        self
    }

    /// Slot length in seconds (the paper's 1 minute).
    pub fn slot_seconds(mut self, s: i64) -> Self {
        self.slot_s = s;
        self
    }

    /// Overrides the fleet configuration entirely.
    pub fn fleet_config(mut self, config: TaxiFleetConfig) -> Self {
        self.fleet = config;
        self
    }

    /// Uses real traces (e.g. from [`crate::crawdad::load_directory`])
    /// instead of the synthetic fleet.
    pub fn with_traces(mut self, traces: Vec<NodeTrace>) -> Self {
        self.external_traces = Some(traces);
        self
    }

    /// Uses a real tower layout instead of the synthetic one.
    pub fn with_towers(mut self, towers: Vec<crate::geo::GeoPoint>) -> Self {
        self.external_towers = Some(towers);
        self
    }

    /// Runs the pipeline.
    ///
    /// # Errors
    ///
    /// Returns an error when the configuration is invalid, every node is
    /// filtered out as inactive, or model estimation fails.
    pub fn build(self) -> Result<TraceDataset> {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let bbox: BoundingBox = self.fleet.bbox;

        // 1. Towers + separation filter.
        let raw_towers = match self.external_towers {
            Some(t) => t,
            None => clustered_layout(
                self.num_towers,
                self.tower_clusters,
                self.tower_spread_m,
                self.tower_background,
                &bbox,
                &mut rng,
            )?,
        };
        let towers = min_separation_filter(&raw_towers, self.min_separation_m);
        let cell_map = CellMap::new(towers)?;

        // 2. Traces.
        let mut fleet_config = self.fleet.clone();
        // Generate a little beyond the window so interpolation has a
        // bracketing update at the last slot.
        fleet_config.duration_s = self.slot_s * self.horizon_slots as i64 + 2 * self.slot_s;
        let traces = match self.external_traces {
            Some(t) => t,
            None => generate_fleet(&fleet_config, &mut rng)?,
        };

        // 3. Inactive filter + interpolation.
        let start = traces
            .iter()
            .filter_map(|t| t.records.first().map(|r| r.timestamp))
            .min()
            .unwrap_or(fleet_config.start_timestamp);
        let grid = SlotGrid {
            start_timestamp: start,
            slot_s: self.slot_s,
            num_slots: self.horizon_slots,
            max_gap_s: crate::interpolate::DEFAULT_MAX_GAP_S,
        };
        let regular = regularize_fleet(&traces, &grid);
        if regular.is_empty() {
            return Err(MobilityError::NoActiveNodes);
        }

        // 4. Quantization.
        let mut node_ids = Vec::with_capacity(regular.len());
        let mut trajectories = Vec::with_capacity(regular.len());
        for (id, positions) in regular {
            node_ids.push(id);
            trajectories.push(cell_map.quantize(&positions));
        }

        // 5. Empirical model.
        let model = EmpiricalModel::estimate(&trajectories, cell_map.num_cells(), 0.0)?;
        Ok(TraceDataset {
            cell_map,
            node_ids,
            trajectories,
            model,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> TraceDatasetBuilder {
        TraceDatasetBuilder::new()
            .num_nodes(25)
            .num_towers(120)
            .horizon_slots(40)
            .seed(99)
    }

    #[test]
    fn pipeline_produces_consistent_dataset() {
        let ds = small().build().unwrap();
        assert!(!ds.trajectories().is_empty());
        assert_eq!(ds.node_ids().len(), ds.trajectories().len());
        for t in ds.trajectories() {
            assert_eq!(t.len(), 40);
            // Observed trajectories are explainable under the model.
            assert!(ds.model().log_likelihood(t).is_finite());
        }
        assert_eq!(ds.model().num_states(), ds.cell_map().num_cells());
    }

    #[test]
    fn pipeline_is_deterministic_per_seed() {
        let a = small().build().unwrap();
        let b = small().build().unwrap();
        assert_eq!(a.trajectories(), b.trajectories());
        let c = small().seed(100).build().unwrap();
        assert_ne!(a.trajectories(), c.trajectories());
    }

    #[test]
    fn occupancy_is_spatially_skewed() {
        // The point of the hotspot fleet: the empirical steady state must
        // be far from uniform (Fig. 8b), i.e. collision probability well
        // above 1/L.
        let ds = small().build().unwrap();
        let pi = ds.model().initial();
        let uniform_floor = 1.0 / ds.model().num_states() as f64;
        assert!(
            pi.collision_probability() > 3.0 * uniform_floor,
            "collision = {}, floor = {}",
            pi.collision_probability(),
            uniform_floor
        );
    }

    #[test]
    fn inactivity_filters_some_nodes() {
        // 3% inactivity per update over ~40 updates gives each node only a
        // ~30% survival chance: most nodes drop, a few remain.
        let mut builder = small();
        builder.fleet.inactivity_prob = 0.03;
        builder.fleet.inactivity_duration_s = 600;
        let ds = builder.build().unwrap();
        assert!(
            ds.trajectories().len() < 25,
            "expected some of the 25 nodes to be dropped, kept {}",
            ds.trajectories().len()
        );
    }

    #[test]
    fn paper_scale_configuration() {
        // Full-scale smoke test at the paper's dimensions (kept fast by
        // quantizing only; this is the configuration Fig. 8 uses).
        let ds = TraceDatasetBuilder::new().seed(7).build().unwrap();
        let cells = ds.cell_map().num_cells();
        assert!(
            (700..=1_100).contains(&cells),
            "cell count {cells} should be near the paper's 959"
        );
        assert!(
            ds.trajectories().len() >= 100,
            "{}",
            ds.trajectories().len()
        );
        assert_eq!(ds.trajectories()[0].len(), 100);
    }
}

//! Deterministic day/night commuter fleet — the canonical *non-stationary*
//! trace source.
//!
//! The taxi generator ([`crate::taxi`]) is intentionally time-homogeneous:
//! one waypoint process runs for the whole window, so a single Markov
//! chain describes it well. Real populations are not like that — the
//! paper's Sec. VIII notes mobility is time-varying (day vs. night), which
//! is exactly what an [`EpochSchedule`]
//! models. This module provides the matching workload: commuters who sit
//! near a *work* anchor during day slots and near a *home* anchor during
//! night slots, with seeded per-slot jitter. Estimating one chain per
//! epoch recovers two sharply different mobility regimes; pooling them
//! into a single stationary chain blurs both.
//!
//! The stream is deterministic per seed and batch-size independent: node
//! `i` draws from its own SplitMix64-derived stream
//! ([`crate::stream::replica_seed`]`(seed, i)`), so any partition of the
//! fleet into batches yields the same records.

use crate::geo::{BoundingBox, GeoPoint};
use crate::record::{NodeTrace, TraceRecord};
use crate::stream::{replica_seed, TraceStream};
use crate::{MobilityError, Result};
use chaff_markov::EpochSchedule;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration for [`CommuterStream`].
#[derive(Debug, Clone, PartialEq)]
pub struct CommuterConfig {
    /// Number of commuters.
    pub num_nodes: usize,
    /// Day-epoch slots per cycle (spent near the work anchor).
    pub day_slots: usize,
    /// Night-epoch slots per cycle (spent near the home anchor).
    pub night_slots: usize,
    /// Number of day/night cycles to emit (the evaluation horizon is
    /// `cycles * (day_slots + night_slots)`; two extra bracketing records
    /// are emitted past the window for interpolation).
    pub cycles: usize,
    /// Slot length in seconds.
    pub slot_s: i64,
    /// UNIX timestamp of the window start.
    pub start_timestamp: i64,
    /// Geographic region.
    pub bbox: BoundingBox,
    /// Number of residential anchor points (homes cluster around these).
    pub num_homes: usize,
    /// Number of work anchor points (offices are fewer than homes, so day
    /// occupancy is more concentrated than night occupancy).
    pub num_offices: usize,
    /// Scatter of a commuter's personal anchor around its cluster point,
    /// in degrees.
    pub anchor_spread_deg: f64,
    /// Per-slot jitter around the personal anchor, in degrees.
    pub jitter_deg: f64,
    /// RNG seed for anchor layout and per-node streams.
    pub seed: u64,
}

impl Default for CommuterConfig {
    fn default() -> Self {
        CommuterConfig {
            num_nodes: 100,
            day_slots: 10,
            night_slots: 10,
            cycles: 2,
            slot_s: 60,
            start_timestamp: 1_213_000_000,
            bbox: BoundingBox::san_francisco(),
            num_homes: 6,
            num_offices: 3,
            anchor_spread_deg: 8e-3,
            jitter_deg: 2e-3,
            seed: 2017,
        }
    }
}

impl CommuterConfig {
    /// Validates parameter ranges.
    ///
    /// # Errors
    ///
    /// Returns [`MobilityError::InvalidConfig`] naming the first offending
    /// parameter.
    pub fn validate(&self) -> Result<()> {
        if self.num_nodes == 0 {
            return Err(invalid("num_nodes", "must be positive"));
        }
        if self.day_slots == 0 || self.night_slots == 0 {
            return Err(invalid(
                "day_slots",
                "need both day_slots and night_slots positive (a commuter \
                 fleet without both regimes is just the stationary case)",
            ));
        }
        if self.cycles == 0 {
            return Err(invalid("cycles", "must be positive"));
        }
        if self.slot_s <= 0 {
            return Err(invalid("slot_s", "must be positive"));
        }
        if self.num_homes == 0 || self.num_offices == 0 {
            return Err(invalid(
                "num_homes",
                "need at least one home and one office anchor",
            ));
        }
        for (name, v) in [
            ("anchor_spread_deg", self.anchor_spread_deg),
            ("jitter_deg", self.jitter_deg),
        ] {
            if !v.is_finite() || v < 0.0 {
                return Err(invalid(name, "must be non-negative"));
            }
        }
        Ok(())
    }

    /// The day/night epoch schedule this fleet moves under — feed it to
    /// [`crate::pipeline::TraceDatasetBuilder::epoch_schedule`] so the
    /// estimator buckets slots the way the generator does.
    ///
    /// # Errors
    ///
    /// Propagates schedule construction errors (empty pattern).
    pub fn schedule(&self) -> Result<EpochSchedule> {
        Ok(EpochSchedule::day_night(self.day_slots, self.night_slots)?)
    }

    /// Evaluation-window length: `cycles` full day/night periods.
    pub fn horizon_slots(&self) -> usize {
        self.cycles * (self.day_slots + self.night_slots)
    }
}

fn invalid(parameter: &'static str, reason: &str) -> MobilityError {
    MobilityError::InvalidConfig {
        parameter,
        reason: reason.into(),
    }
}

/// The commuter fleet as a [`TraceStream`] (see the module docs).
#[derive(Debug)]
pub struct CommuterStream {
    config: CommuterConfig,
    schedule: EpochSchedule,
    homes: Vec<GeoPoint>,
    offices: Vec<GeoPoint>,
    next: usize,
}

impl CommuterStream {
    /// Creates the stream, drawing the anchor layout from the config seed.
    ///
    /// # Errors
    ///
    /// Returns configuration errors from [`CommuterConfig::validate`].
    pub fn new(config: CommuterConfig) -> Result<Self> {
        config.validate()?;
        let schedule = config.schedule()?;
        let mut rng = StdRng::seed_from_u64(config.seed);
        let homes = sample_anchors(config.num_homes, &config.bbox, &mut rng);
        let offices = sample_anchors(config.num_offices, &config.bbox, &mut rng);
        Ok(CommuterStream {
            config,
            schedule,
            homes,
            offices,
            next: 0,
        })
    }

    /// The generator's own day/night schedule.
    pub fn schedule(&self) -> &EpochSchedule {
        &self.schedule
    }

    fn generate_node(&self, index: usize) -> NodeTrace {
        let config = &self.config;
        let mut rng = StdRng::seed_from_u64(replica_seed(config.seed, index as u64));
        // Personal anchors: a fixed offset around the node's clusters, so
        // each commuter reliably lands in the same cell every cycle.
        let home = scatter(
            self.homes[index % self.homes.len()],
            config.anchor_spread_deg,
            &config.bbox,
            &mut rng,
        );
        let office = scatter(
            self.offices[index % self.offices.len()],
            config.anchor_spread_deg,
            &config.bbox,
            &mut rng,
        );
        // Two records past the window so interpolation has a bracketing
        // update at the last slot (mirrors the taxi pipeline's margin).
        let total_slots = config.horizon_slots() + 2;
        let mut records = Vec::with_capacity(total_slots);
        for slot in 0..total_slots {
            let anchor = match self.schedule.epoch_of(slot) {
                0 => office,
                _ => home,
            };
            records.push(TraceRecord {
                point: scatter(anchor, config.jitter_deg, &config.bbox, &mut rng),
                occupied: false,
                timestamp: config.start_timestamp + slot as i64 * config.slot_s,
            });
        }
        NodeTrace::new(format!("commuter_{index:04}"), records)
    }
}

/// Uniform scatter within ±`spread_deg` of `center`, clamped to the box.
fn scatter<R: Rng + ?Sized>(
    center: GeoPoint,
    spread_deg: f64,
    bbox: &BoundingBox,
    rng: &mut R,
) -> GeoPoint {
    let spread = spread_deg.max(f64::MIN_POSITIVE);
    let p = GeoPoint::new(
        center.lat + rng.random_range(-spread..spread),
        center.lon + rng.random_range(-spread..spread),
    );
    bbox.clamp(&p)
}

fn sample_anchors<R: Rng + ?Sized>(n: usize, bbox: &BoundingBox, rng: &mut R) -> Vec<GeoPoint> {
    (0..n).map(|_| bbox.sample(rng)).collect()
}

impl TraceStream for CommuterStream {
    fn window_start(&self) -> Option<i64> {
        // Every commuter's first record sits at the window start.
        Some(self.config.start_timestamp)
    }

    fn len_hint(&self) -> Option<usize> {
        Some(self.config.num_nodes - self.next)
    }

    fn next_batch(&mut self, max_nodes: usize) -> Result<Vec<NodeTrace>> {
        let end = self.config.num_nodes.min(self.next + max_nodes);
        let batch = (self.next..end).map(|i| self.generate_node(i)).collect();
        self.next = end;
        Ok(batch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::TraceDatasetBuilder;

    fn small_config() -> CommuterConfig {
        CommuterConfig {
            num_nodes: 12,
            day_slots: 5,
            night_slots: 5,
            cycles: 2,
            ..CommuterConfig::default()
        }
    }

    fn drain(stream: &mut dyn TraceStream, batch: usize) -> Vec<NodeTrace> {
        let mut all = Vec::new();
        loop {
            let b = stream.next_batch(batch).unwrap();
            if b.is_empty() {
                return all;
            }
            all.extend(b);
        }
    }

    #[test]
    fn stream_is_deterministic_and_batch_size_independent() {
        let a = drain(&mut CommuterStream::new(small_config()).unwrap(), 5);
        let b = drain(&mut CommuterStream::new(small_config()).unwrap(), 1);
        assert_eq!(a, b);
        assert_eq!(a.len(), 12);
        let config = small_config();
        for trace in &a {
            // horizon + 2 bracketing records, one per slot, in the box.
            assert_eq!(trace.records.len(), config.horizon_slots() + 2);
            for (slot, r) in trace.records.iter().enumerate() {
                assert_eq!(
                    r.timestamp,
                    config.start_timestamp + slot as i64 * config.slot_s
                );
                assert!(config.bbox.contains(&r.point));
            }
        }
        let mut other_seed = small_config();
        other_seed.seed = 999;
        let c = drain(&mut CommuterStream::new(other_seed).unwrap(), 5);
        assert_ne!(a, c);
    }

    #[test]
    fn day_positions_sit_near_offices_and_night_near_homes() {
        let stream = CommuterStream::new(small_config()).unwrap();
        let schedule = stream.schedule().clone();
        let offices = stream.offices.clone();
        let homes = stream.homes.clone();
        let nearest = |p: &GeoPoint, anchors: &[GeoPoint]| {
            anchors
                .iter()
                .map(|a| p.distance_m(a))
                .fold(f64::INFINITY, f64::min)
        };
        let mut stream = stream;
        for trace in drain(&mut stream, 100) {
            for (slot, r) in trace.records.iter().enumerate() {
                let near = match schedule.epoch_of(slot) {
                    0 => &offices,
                    _ => &homes,
                };
                // Anchor spread + jitter stay well under the ~20 km
                // typical separation of independent uniform anchors.
                let d = nearest(&r.point, near);
                assert!(d < 2_500.0, "slot {slot}: {d} m from active anchors");
            }
        }
    }

    #[test]
    fn epoch_estimation_separates_the_two_regimes() {
        // End-to-end: commuter stream -> epoch-aware pipeline. The day and
        // night chains must differ sharply while the pooled chain blends
        // them.
        let config = small_config();
        let schedule = config.schedule().unwrap();
        let horizon = config.horizon_slots();
        let ds = TraceDatasetBuilder::new()
            .num_towers(80)
            .horizon_slots(horizon)
            .seed(11)
            .epoch_schedule(schedule)
            .build_from_stream(CommuterStream::new(config).unwrap())
            .unwrap();
        assert_eq!(ds.trajectories().len(), 12);
        let models = ds.epoch_models().expect("epochs requested");
        assert_eq!(models.len(), 2);
        assert_ne!(models[0].chain().matrix(), models[1].chain().matrix());
        // Day mass concentrates on fewer cells than night mass (3 offices
        // vs 6 homes), and the registry bridge is two-epoch.
        assert!(models[0].support_size() <= models[1].support_size());
        assert_eq!(ds.registry().unwrap().num_epochs(), 2);
    }

    #[test]
    fn config_validation_rejects_nonsense() {
        let mut c = small_config();
        c.num_nodes = 0;
        assert!(CommuterStream::new(c).is_err());
        let mut c = small_config();
        c.day_slots = 0;
        c.night_slots = 0;
        assert!(CommuterStream::new(c).is_err());
        let mut c = small_config();
        c.num_offices = 0;
        assert!(CommuterStream::new(c).is_err());
        let mut c = small_config();
        c.jitter_deg = f64::NAN;
        assert!(CommuterStream::new(c).is_err());
        let mut c = small_config();
        c.cycles = 0;
        assert!(CommuterStream::new(c).is_err());
    }
}

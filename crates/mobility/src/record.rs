//! Raw GPS trace records.

use crate::geo::GeoPoint;
use serde::{Deserialize, Serialize};

/// One GPS update of one node.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TraceRecord {
    /// Position at the update.
    pub point: GeoPoint,
    /// Whether the taxi carried a passenger (CRAWDAD's occupancy flag);
    /// unused by the privacy pipeline but preserved for fidelity.
    pub occupied: bool,
    /// UNIX timestamp (seconds).
    pub timestamp: i64,
}

/// The full update history of one node, sorted by ascending timestamp.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NodeTrace {
    /// Stable identifier (file stem for CRAWDAD data, generated for
    /// synthetic fleets).
    pub node_id: String,
    /// Updates in ascending time order.
    pub records: Vec<TraceRecord>,
}

impl NodeTrace {
    /// Creates a trace, sorting records by timestamp.
    pub fn new(node_id: impl Into<String>, mut records: Vec<TraceRecord>) -> Self {
        records.sort_by_key(|r| r.timestamp);
        NodeTrace {
            node_id: node_id.into(),
            records,
        }
    }

    /// Time span covered, in seconds (0 for fewer than two records).
    pub fn duration_s(&self) -> i64 {
        match (self.records.first(), self.records.last()) {
            (Some(a), Some(b)) => b.timestamp - a.timestamp,
            _ => 0,
        }
    }

    /// The largest gap between consecutive updates, in seconds
    /// (0 for fewer than two records).
    pub fn max_gap_s(&self) -> i64 {
        self.records
            .windows(2)
            .map(|w| w[1].timestamp - w[0].timestamp)
            .max()
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(ts: i64) -> TraceRecord {
        TraceRecord {
            point: GeoPoint::new(37.7, -122.4),
            occupied: false,
            timestamp: ts,
        }
    }

    #[test]
    fn constructor_sorts_by_time() {
        let t = NodeTrace::new("n1", vec![rec(30), rec(10), rec(20)]);
        let times: Vec<i64> = t.records.iter().map(|r| r.timestamp).collect();
        assert_eq!(times, vec![10, 20, 30]);
    }

    #[test]
    fn duration_and_max_gap() {
        let t = NodeTrace::new("n1", vec![rec(0), rec(60), rec(400)]);
        assert_eq!(t.duration_s(), 400);
        assert_eq!(t.max_gap_s(), 340);
        let empty = NodeTrace::new("n2", vec![]);
        assert_eq!(empty.duration_s(), 0);
        assert_eq!(empty.max_gap_s(), 0);
    }
}

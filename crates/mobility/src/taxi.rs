//! Synthetic taxi-fleet generator — the stand-in for the CRAWDAD
//! `epfl/mobility` dataset.
//!
//! The paper's pipeline only consumes three properties of the real traces:
//! (i) *spatially skewed* occupancy (taxis concentrate downtown),
//! (ii) *temporally skewed* dynamics (taxis drive towards destinations, so
//! successive cells are highly predictable), and (iii) heterogeneous
//! per-node predictability (a handful of users are trackable far above the
//! `1/N` baseline — Fig. 9a). The generator reproduces all three with a
//! hotspot-attracted waypoint process:
//!
//! * each taxi repeatedly picks a destination — a hotspot with probability
//!   `hotspot_bias`, else uniform in the box — and drives towards it at
//!   its cruising speed;
//! * a per-taxi speed drawn once (heterogeneity: slow taxis linger in few
//!   cells and become highly trackable);
//! * GPS updates arrive at irregular intervals (uniform around the mean),
//!   and taxis occasionally go *inactive* for longer than the 5-minute
//!   filter threshold, exactly the artifacts footnote 11 cleans up.

use crate::geo::{BoundingBox, GeoPoint};
use crate::record::{NodeTrace, TraceRecord};
use crate::{MobilityError, Result};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Configuration for [`generate_fleet`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TaxiFleetConfig {
    /// Number of taxis (the paper extracts 174 usable nodes).
    pub num_nodes: usize,
    /// Trace duration in seconds (the paper uses a 100-minute window).
    pub duration_s: i64,
    /// Mean seconds between GPS updates (the paper's traces update about
    /// once a minute).
    pub mean_update_interval_s: i64,
    /// Geographic region.
    pub bbox: BoundingBox,
    /// Number of hotspot destinations.
    pub num_hotspots: usize,
    /// Probability that a new destination is a hotspot.
    pub hotspot_bias: f64,
    /// Probability that a new destination is the taxi's personal home
    /// base (its waiting spot between fares). Home dwellers in quiet
    /// cells dominate their cell's empirical statistics and become the
    /// isolated, highly trackable "user 1" of Fig. 9(a).
    pub home_bias: f64,
    /// Gaussian-ish scatter around a hotspot, in degrees (spreads hotspot
    /// visitors over several Voronoi cells instead of stacking them in
    /// one).
    pub hotspot_jitter_deg: f64,
    /// Minimum / maximum cruising speed in m/s (drawn per taxi).
    pub speed_range_mps: (f64, f64),
    /// Range of per-taxi dwell propensity: on arrival a taxi parks with
    /// its personal probability drawn from this range. Dwellers produce
    /// the highly predictable, highly trackable users of Fig. 9(a);
    /// movers are hard to track.
    pub dwell_prob_range: (f64, f64),
    /// Min/max parking duration in seconds when a taxi dwells.
    pub dwell_duration_s: (i64, i64),
    /// Probability per update that the taxi goes inactive.
    pub inactivity_prob: f64,
    /// Inactivity duration in seconds (must exceed the 5-minute filter to
    /// matter).
    pub inactivity_duration_s: i64,
    /// UNIX timestamp of the window start.
    pub start_timestamp: i64,
}

impl Default for TaxiFleetConfig {
    fn default() -> Self {
        TaxiFleetConfig {
            num_nodes: 174,
            duration_s: 100 * 60,
            mean_update_interval_s: 60,
            bbox: BoundingBox::san_francisco(),
            num_hotspots: 8,
            hotspot_bias: 0.35,
            home_bias: 0.35,
            hotspot_jitter_deg: 0.02,
            speed_range_mps: (2.0, 14.0),
            dwell_prob_range: (0.1, 0.8),
            dwell_duration_s: (120, 900),
            // Survival compounds per update: 0.998^100 ≈ 0.82, so of 174
            // simulated taxis roughly 140 survive the 5-minute filter —
            // the same order as the paper's 174 usable nodes.
            inactivity_prob: 0.002,
            inactivity_duration_s: 8 * 60,
            start_timestamp: 1_213_000_000,
        }
    }
}

impl TaxiFleetConfig {
    /// Validates parameter ranges.
    ///
    /// # Errors
    ///
    /// Returns [`MobilityError::InvalidConfig`] naming the first offending
    /// parameter.
    pub fn validate(&self) -> Result<()> {
        if self.num_nodes == 0 {
            return Err(invalid("num_nodes", "must be positive"));
        }
        if self.duration_s <= 0 {
            return Err(invalid("duration_s", "must be positive"));
        }
        if self.mean_update_interval_s <= 0 {
            return Err(invalid("mean_update_interval_s", "must be positive"));
        }
        if self.num_hotspots == 0 {
            return Err(invalid("num_hotspots", "must be positive"));
        }
        if !(0.0..=1.0).contains(&self.hotspot_bias) {
            return Err(invalid("hotspot_bias", "must be in [0, 1]"));
        }
        if !(0.0..=1.0).contains(&self.home_bias) || self.hotspot_bias + self.home_bias > 1.0 {
            return Err(invalid("home_bias", "need hotspot_bias + home_bias <= 1"));
        }
        let (lo, hi) = self.speed_range_mps;
        if !(lo > 0.0 && hi >= lo) {
            return Err(invalid("speed_range_mps", "need 0 < lo <= hi"));
        }
        if !(0.0..=1.0).contains(&self.inactivity_prob) {
            return Err(invalid("inactivity_prob", "must be in [0, 1]"));
        }
        if self.inactivity_duration_s < 0 {
            return Err(invalid("inactivity_duration_s", "must be non-negative"));
        }
        if !self.hotspot_jitter_deg.is_finite() || self.hotspot_jitter_deg < 0.0 {
            return Err(invalid("hotspot_jitter_deg", "must be non-negative"));
        }
        let (dlo, dhi) = self.dwell_prob_range;
        if !(0.0..=1.0).contains(&dlo) || !(0.0..=1.0).contains(&dhi) || dlo > dhi {
            return Err(invalid("dwell_prob_range", "need 0 <= lo <= hi <= 1"));
        }
        let (tlo, thi) = self.dwell_duration_s;
        if tlo < 0 || thi < tlo {
            return Err(invalid("dwell_duration_s", "need 0 <= lo <= hi"));
        }
        Ok(())
    }
}

fn invalid(parameter: &'static str, reason: &str) -> MobilityError {
    MobilityError::InvalidConfig {
        parameter,
        reason: reason.into(),
    }
}

/// Generates a seeded synthetic fleet.
///
/// # Errors
///
/// Returns configuration errors from [`TaxiFleetConfig::validate`].
pub fn generate_fleet<R: Rng + ?Sized>(
    config: &TaxiFleetConfig,
    rng: &mut R,
) -> Result<Vec<NodeTrace>> {
    config.validate()?;
    let hotspots = sample_hotspots(config, rng);
    let traces = (0..config.num_nodes)
        .map(|i| generate_taxi(i, config, &hotspots, rng))
        .collect();
    Ok(traces)
}

/// Draws the fleet's hotspot destinations — the first RNG consumption of
/// [`generate_fleet`], split out so the streaming source
/// (`crate::stream::TaxiTraceStream`) reproduces the eager generator's
/// stream exactly.
pub(crate) fn sample_hotspots<R: Rng + ?Sized>(
    config: &TaxiFleetConfig,
    rng: &mut R,
) -> Vec<GeoPoint> {
    (0..config.num_hotspots)
        .map(|_| config.bbox.sample(rng))
        .collect()
}

pub(crate) fn generate_taxi<R: Rng + ?Sized>(
    index: usize,
    config: &TaxiFleetConfig,
    hotspots: &[GeoPoint],
    rng: &mut R,
) -> NodeTrace {
    let (lo, hi) = config.speed_range_mps;
    let speed = if hi > lo {
        rng.random_range(lo..hi)
    } else {
        lo
    };
    let (dlo, dhi) = config.dwell_prob_range;
    // The taxi's personal parking propensity: the source of the per-user
    // trackability heterogeneity in Fig. 9(a).
    let dwell_prob = if dhi > dlo {
        rng.random_range(dlo..dhi)
    } else {
        dlo
    };
    // The taxi's personal waiting spot between fares.
    let home = config.bbox.sample(rng);
    // Start near a hotspot or home with the same bias as destinations, so
    // the initial occupancy is already skewed.
    let mut position = pick_destination(config, hotspots, home, rng);
    let mut destination = pick_destination(config, hotspots, home, rng);
    let mut dwell_left = 0.0f64; // seconds of parking still to serve
    let mut t = config.start_timestamp;
    let end = config.start_timestamp + config.duration_s;
    let mut records = Vec::new();
    records.push(TraceRecord {
        point: position,
        occupied: rng.random::<f64>() < 0.5,
        timestamp: t,
    });
    while t < end {
        // Irregular update interval: uniform in [mean/2, 3*mean/2].
        let mean = config.mean_update_interval_s;
        let mut dt = rng.random_range(mean / 2..=mean + mean / 2).max(1);
        if rng.random::<f64>() < config.inactivity_prob {
            dt += config.inactivity_duration_s;
        }
        // Advance for dt seconds: serve any parking time first, then move
        // along the waypoint path, switching destinations on arrival.
        let mut time_left = dt as f64;
        let mut arrivals = 0usize;
        while time_left > 0.0 && arrivals < 64 {
            if dwell_left > 0.0 {
                let consumed = dwell_left.min(time_left);
                dwell_left -= consumed;
                time_left -= consumed;
                continue;
            }
            let dist = position.distance_m(&destination);
            let reach = speed * time_left;
            if dist <= reach {
                time_left -= dist / speed;
                position = destination;
                destination = pick_destination(config, hotspots, home, rng);
                arrivals += 1;
                if rng.random::<f64>() < dwell_prob {
                    let (tlo, thi) = config.dwell_duration_s;
                    dwell_left = if thi > tlo {
                        rng.random_range(tlo..=thi) as f64
                    } else {
                        tlo as f64
                    };
                }
            } else {
                position = position.lerp(&destination, reach / dist);
                time_left = 0.0;
            }
        }
        t += dt;
        if t > end {
            break;
        }
        records.push(TraceRecord {
            point: config.bbox.clamp(&position),
            occupied: rng.random::<f64>() < 0.5,
            timestamp: t,
        });
    }
    NodeTrace::new(format!("taxi_{index:03}"), records)
}

fn pick_destination<R: Rng + ?Sized>(
    config: &TaxiFleetConfig,
    hotspots: &[GeoPoint],
    home: GeoPoint,
    rng: &mut R,
) -> GeoPoint {
    let r: f64 = rng.random();
    if r < config.hotspot_bias {
        // Scatter around the hotspot so taxis spread over neighbouring
        // Voronoi cells instead of stacking in one.
        let h = hotspots[rng.random_range(0..hotspots.len())];
        let jitter = config.hotspot_jitter_deg.max(f64::MIN_POSITIVE);
        let p = GeoPoint::new(
            h.lat + rng.random_range(-jitter..jitter),
            h.lon + rng.random_range(-jitter..jitter),
        );
        config.bbox.clamp(&p)
    } else if r < config.hotspot_bias + config.home_bias {
        // Return to the personal waiting spot (tight ~100 m jitter: the
        // taxi reliably lands in the same cell).
        let jitter = 1e-3;
        let p = GeoPoint::new(
            home.lat + rng.random_range(-jitter..jitter),
            home.lon + rng.random_range(-jitter..jitter),
        );
        config.bbox.clamp(&p)
    } else {
        config.bbox.sample(rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn small_config() -> TaxiFleetConfig {
        TaxiFleetConfig {
            num_nodes: 12,
            duration_s: 30 * 60,
            ..TaxiFleetConfig::default()
        }
    }

    #[test]
    fn generates_requested_fleet() {
        let mut rng = StdRng::seed_from_u64(70);
        let fleet = generate_fleet(&small_config(), &mut rng).unwrap();
        assert_eq!(fleet.len(), 12);
        for trace in &fleet {
            assert!(trace.records.len() >= 2, "{}", trace.node_id);
            // Timestamps strictly increase.
            for w in trace.records.windows(2) {
                assert!(w[1].timestamp > w[0].timestamp);
            }
            // All positions in the box.
            for r in &trace.records {
                assert!(small_config().bbox.contains(&r.point));
            }
        }
    }

    #[test]
    fn fleet_is_deterministic_per_seed() {
        let a = generate_fleet(&small_config(), &mut StdRng::seed_from_u64(71)).unwrap();
        let b = generate_fleet(&small_config(), &mut StdRng::seed_from_u64(71)).unwrap();
        assert_eq!(a, b);
        let c = generate_fleet(&small_config(), &mut StdRng::seed_from_u64(72)).unwrap();
        assert_ne!(a, c);
    }

    #[test]
    fn movement_respects_speed_limit() {
        let config = small_config();
        let mut rng = StdRng::seed_from_u64(73);
        let fleet = generate_fleet(&config, &mut rng).unwrap();
        let (_, hi) = config.speed_range_mps;
        for trace in &fleet {
            for w in trace.records.windows(2) {
                let dt = (w[1].timestamp - w[0].timestamp) as f64;
                let dist = w[0].point.distance_m(&w[1].point);
                assert!(
                    dist <= hi * dt * 1.05 + 1.0,
                    "{}: {dist} m in {dt} s",
                    trace.node_id
                );
            }
        }
    }

    #[test]
    fn hotspot_bias_skews_occupancy() {
        // With full hotspot bias, positions concentrate near a handful of
        // points; with zero bias they spread uniformly. Compare dispersion.
        let mut biased_cfg = small_config();
        biased_cfg.hotspot_bias = 1.0;
        biased_cfg.home_bias = 0.0;
        biased_cfg.num_nodes = 30;
        let mut uniform_cfg = biased_cfg.clone();
        uniform_cfg.hotspot_bias = 0.0;
        let spread = |fleet: &[NodeTrace]| {
            let pts: Vec<GeoPoint> = fleet
                .iter()
                .flat_map(|t| t.records.iter().map(|r| r.point))
                .collect();
            let cx = pts.iter().map(|p| p.lat).sum::<f64>() / pts.len() as f64;
            let cy = pts.iter().map(|p| p.lon).sum::<f64>() / pts.len() as f64;
            let center = GeoPoint::new(cx, cy);
            pts.iter().map(|p| p.distance_m(&center)).sum::<f64>() / pts.len() as f64
        };
        // Same seed so the hotspot layout matches.
        // A single layout draw is noisy (the hotspots themselves may land
        // far apart), so compare the dispersion averaged over seeds.
        let mut biased_total = 0.0;
        let mut uniform_total = 0.0;
        for seed in 70..80 {
            let biased = generate_fleet(&biased_cfg, &mut StdRng::seed_from_u64(seed)).unwrap();
            let uniform = generate_fleet(&uniform_cfg, &mut StdRng::seed_from_u64(seed)).unwrap();
            biased_total += spread(&biased);
            uniform_total += spread(&uniform);
        }
        assert!(
            biased_total < uniform_total,
            "biased spread {biased_total} !< uniform spread {uniform_total}"
        );
    }

    #[test]
    fn inactivity_creates_long_gaps() {
        let mut config = small_config();
        config.inactivity_prob = 0.5;
        config.inactivity_duration_s = 600;
        let fleet = generate_fleet(&config, &mut StdRng::seed_from_u64(75)).unwrap();
        let max_gap = fleet.iter().map(NodeTrace::max_gap_s).max().unwrap();
        assert!(max_gap > 300, "max gap = {max_gap}");
    }

    #[test]
    fn config_validation_rejects_nonsense() {
        let mut c = small_config();
        c.num_nodes = 0;
        assert!(generate_fleet(&c, &mut StdRng::seed_from_u64(1)).is_err());
        let mut c = small_config();
        c.speed_range_mps = (5.0, 2.0);
        assert!(c.validate().is_err());
        let mut c = small_config();
        c.hotspot_bias = 1.5;
        assert!(c.validate().is_err());
    }
}

//! Streaming trace sources: per-node record batches instead of
//! whole-fleet `Vec`s.
//!
//! The legacy pipeline materializes every raw GPS record of every node
//! before the first slot is quantized — fine at the paper's 174 nodes,
//! a memory wall at the 10⁴–10⁵-node fleets the fleet engine simulates.
//! A [`TraceStream`] instead hands the ingestion engine
//! ([`crate::pipeline::TraceDatasetBuilder::build_streaming`]) one batch
//! of [`NodeTrace`]s at a time; raw records live only as long as their
//! batch, while the (much smaller) quantized trajectories and the
//! mergeable transition-count accumulator persist.
//!
//! Sources:
//!
//! * [`TaxiTraceStream`] — the synthetic taxi generator, emitting the
//!   *exact* node sequence of [`crate::taxi::generate_fleet`] (same RNG
//!   stream), so streamed ingestion is bit-for-bit comparable to the
//!   legacy builder;
//! * [`ReplicatedTaxiStream`] — the amplification knob: `R` statistical
//!   replicas of one fleet configuration, each driven by its own
//!   SplitMix64-derived seed, synthesizing 10⁴–10⁵-node fleets from a
//!   174-node recipe;
//! * [`CrawdadDirStream`] — the real dataset, one batch of `new_*.txt`
//!   files at a time, with optional strict bounding-box validation;
//! * [`VecTraceStream`] — adapter for already-materialized traces
//!   (external datasets, test fixtures).

use crate::crawdad;
use crate::geo::BoundingBox;
use crate::record::NodeTrace;
use crate::taxi::{self, TaxiFleetConfig};
use crate::{MobilityError, Result};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::path::{Path, PathBuf};

/// SplitMix64 over `base ^ index` — the per-replica seed derivation,
/// mirroring the fleet engine's per-user streams so replica streams never
/// correlate with each other or with the tower draw.
pub fn replica_seed(base: u64, replica: u64) -> u64 {
    let mut z = base ^ replica.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A source of node traces, delivered in batches.
///
/// Exhaustion is signalled by an empty batch; afterwards the stream keeps
/// returning empty batches.
pub trait TraceStream {
    /// Earliest first-record timestamp over every node the stream will
    /// emit, when known without draining the stream (the ingestion engine
    /// buffers the whole stream to find it otherwise).
    fn window_start(&self) -> Option<i64>;

    /// Total number of nodes the stream will emit, when known (sizing
    /// hint only — streams may emit fewer or more).
    fn len_hint(&self) -> Option<usize>;

    /// The next batch of up to `max_nodes` traces (empty = exhausted).
    ///
    /// # Errors
    ///
    /// Source-specific: I/O and parse errors for file-backed streams,
    /// configuration errors for generators.
    fn next_batch(&mut self, max_nodes: usize) -> Result<Vec<NodeTrace>>;
}

/// Adapter exposing an already-materialized trace set as a stream.
#[derive(Debug)]
pub struct VecTraceStream {
    traces: std::vec::IntoIter<NodeTrace>,
    window_start: Option<i64>,
    remaining: usize,
}

impl VecTraceStream {
    /// Wraps `traces` (emitted in order).
    pub fn new(traces: Vec<NodeTrace>) -> Self {
        let window_start = traces
            .iter()
            .filter_map(|t| t.records.first().map(|r| r.timestamp))
            .min();
        let remaining = traces.len();
        VecTraceStream {
            traces: traces.into_iter(),
            window_start,
            remaining,
        }
    }
}

impl TraceStream for VecTraceStream {
    fn window_start(&self) -> Option<i64> {
        self.window_start
    }

    fn len_hint(&self) -> Option<usize> {
        Some(self.remaining)
    }

    fn next_batch(&mut self, max_nodes: usize) -> Result<Vec<NodeTrace>> {
        let take = max_nodes.min(self.remaining);
        let batch: Vec<NodeTrace> = self.traces.by_ref().take(take).collect();
        self.remaining -= batch.len();
        Ok(batch)
    }
}

/// The synthetic taxi fleet as a stream: node `i` is generated lazily on
/// demand, drawing from exactly the RNG stream
/// [`crate::taxi::generate_fleet`] would have used (hotspots first, then
/// taxis in index order) — so a streamed build is bit-for-bit identical
/// to the eager one.
#[derive(Debug)]
pub struct TaxiTraceStream {
    config: TaxiFleetConfig,
    hotspots: Vec<crate::geo::GeoPoint>,
    rng: StdRng,
    next: usize,
}

impl TaxiTraceStream {
    /// Creates a stream seeded independently (hotspots are drawn from
    /// `seed`'s stream immediately).
    ///
    /// # Errors
    ///
    /// Returns configuration errors from [`TaxiFleetConfig::validate`].
    pub fn new(config: TaxiFleetConfig, seed: u64) -> Result<Self> {
        Self::with_rng(config, StdRng::seed_from_u64(seed))
    }

    /// Creates a stream continuing an existing RNG — the constructor the
    /// pipeline uses so the tower draw and the fleet draw share one
    /// stream, exactly like the legacy builder.
    ///
    /// # Errors
    ///
    /// Returns configuration errors from [`TaxiFleetConfig::validate`].
    pub fn with_rng(config: TaxiFleetConfig, mut rng: StdRng) -> Result<Self> {
        config.validate()?;
        let hotspots = taxi::sample_hotspots(&config, &mut rng);
        Ok(TaxiTraceStream {
            config,
            hotspots,
            rng,
            next: 0,
        })
    }
}

impl TraceStream for TaxiTraceStream {
    fn window_start(&self) -> Option<i64> {
        // Every synthetic taxi's first record sits at the window start.
        Some(self.config.start_timestamp)
    }

    fn len_hint(&self) -> Option<usize> {
        Some(self.config.num_nodes - self.next)
    }

    fn next_batch(&mut self, max_nodes: usize) -> Result<Vec<NodeTrace>> {
        let end = self.config.num_nodes.min(self.next + max_nodes);
        let batch = (self.next..end)
            .map(|i| taxi::generate_taxi(i, &self.config, &self.hotspots, &mut self.rng))
            .collect();
        self.next = end;
        Ok(batch)
    }
}

/// The amplification knob: `replicas` statistical copies of one
/// [`TaxiFleetConfig`], concatenated. Replica `r` draws its own hotspot
/// layout and taxis from an independent SplitMix64 stream
/// ([`replica_seed`]`(base_seed, r)`), and its node ids carry an `@r<r>`
/// suffix so the amplified fleet's identifiers stay unique.
#[derive(Debug)]
pub struct ReplicatedTaxiStream {
    config: TaxiFleetConfig,
    base_seed: u64,
    replicas: usize,
    current: Option<(usize, TaxiTraceStream)>,
    next_replica: usize,
    emitted: usize,
}

impl ReplicatedTaxiStream {
    /// Creates an amplified stream of `replicas` fleets.
    ///
    /// # Errors
    ///
    /// Returns configuration errors from [`TaxiFleetConfig::validate`],
    /// and an invalid-config error when `replicas == 0`.
    pub fn new(config: TaxiFleetConfig, base_seed: u64, replicas: usize) -> Result<Self> {
        if replicas == 0 {
            return Err(MobilityError::InvalidConfig {
                parameter: "replicas",
                reason: "must be positive".into(),
            });
        }
        config.validate()?;
        Ok(ReplicatedTaxiStream {
            config,
            base_seed,
            replicas,
            current: None,
            next_replica: 0,
            emitted: 0,
        })
    }

    /// Total nodes the amplified fleet will emit.
    pub fn total_nodes(&self) -> usize {
        self.config.num_nodes * self.replicas
    }
}

impl TraceStream for ReplicatedTaxiStream {
    fn window_start(&self) -> Option<i64> {
        Some(self.config.start_timestamp)
    }

    fn len_hint(&self) -> Option<usize> {
        Some(self.total_nodes() - self.emitted)
    }

    fn next_batch(&mut self, max_nodes: usize) -> Result<Vec<NodeTrace>> {
        loop {
            if self.current.is_none() {
                if self.next_replica >= self.replicas {
                    return Ok(Vec::new());
                }
                let r = self.next_replica;
                self.next_replica += 1;
                let stream = TaxiTraceStream::new(
                    self.config.clone(),
                    replica_seed(self.base_seed, r as u64),
                )?;
                self.current = Some((r, stream));
            }
            let (r, stream) = self.current.as_mut().expect("just ensured");
            let replica = *r;
            let mut batch = stream.next_batch(max_nodes)?;
            if batch.is_empty() {
                self.current = None;
                continue;
            }
            for trace in &mut batch {
                trace.node_id = format!("{}@r{replica:03}", trace.node_id);
            }
            self.emitted += batch.len();
            return Ok(batch);
        }
    }
}

/// Streams a CRAWDAD directory one batch of `new_*.txt` files at a time.
///
/// File order is sorted (deterministic). With
/// [`with_bbox`](CrawdadDirStream::with_bbox) set, every parsed trace is
/// validated against the box and an out-of-box record fails ingestion
/// with a typed [`MobilityError::OutOfBbox`] naming the node.
///
/// The earliest timestamp of a directory is unknown without reading every
/// file, so [`window_start`](TraceStream::window_start) is `None` unless
/// pinned via [`with_window_start`](CrawdadDirStream::with_window_start);
/// the ingestion engine buffers the whole stream in that case.
#[derive(Debug)]
pub struct CrawdadDirStream {
    files: Vec<PathBuf>,
    next: usize,
    bbox: Option<BoundingBox>,
    window_start: Option<i64>,
}

impl CrawdadDirStream {
    /// Opens a directory, listing (but not yet reading) its node files.
    ///
    /// # Errors
    ///
    /// Propagates directory-listing I/O errors.
    pub fn new(dir: &Path) -> Result<Self> {
        Ok(CrawdadDirStream {
            files: crawdad::node_files(dir)?,
            next: 0,
            bbox: None,
            window_start: None,
        })
    }

    /// Enables strict bounding-box validation of every record.
    pub fn with_bbox(mut self, bbox: BoundingBox) -> Self {
        self.bbox = Some(bbox);
        self
    }

    /// Pins the evaluation-window start so the engine can stream without
    /// buffering (the caller knows the dataset's time origin).
    pub fn with_window_start(mut self, start_timestamp: i64) -> Self {
        self.window_start = Some(start_timestamp);
        self
    }

    /// Number of node files discovered.
    pub fn num_files(&self) -> usize {
        self.files.len()
    }
}

impl TraceStream for CrawdadDirStream {
    fn window_start(&self) -> Option<i64> {
        self.window_start
    }

    fn len_hint(&self) -> Option<usize> {
        Some(self.files.len() - self.next)
    }

    fn next_batch(&mut self, max_nodes: usize) -> Result<Vec<NodeTrace>> {
        let end = self.files.len().min(self.next + max_nodes);
        let mut batch = Vec::with_capacity(end - self.next);
        for path in &self.files[self.next..end] {
            let stem = path
                .file_stem()
                .and_then(|s| s.to_str())
                .unwrap_or("unknown")
                .to_string();
            let file = std::fs::File::open(path)?;
            let trace = crawdad::parse_node(stem, std::io::BufReader::new(file))?;
            if let Some(bbox) = &self.bbox {
                crawdad::check_bbox(&trace, bbox)?;
            }
            batch.push(trace);
        }
        self.next = end;
        Ok(batch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::taxi::generate_fleet;

    fn small_config() -> TaxiFleetConfig {
        TaxiFleetConfig {
            num_nodes: 9,
            duration_s: 20 * 60,
            ..TaxiFleetConfig::default()
        }
    }

    /// Drains a stream with a given batch size.
    fn drain(stream: &mut dyn TraceStream, batch: usize) -> Vec<NodeTrace> {
        let mut all = Vec::new();
        loop {
            let b = stream.next_batch(batch).unwrap();
            if b.is_empty() {
                return all;
            }
            all.extend(b);
        }
    }

    #[test]
    fn taxi_stream_reproduces_the_eager_generator() {
        let config = small_config();
        let eager = generate_fleet(&config, &mut StdRng::seed_from_u64(55)).unwrap();
        for batch in [1usize, 4, 100] {
            let mut stream = TaxiTraceStream::new(config.clone(), 55).unwrap();
            assert_eq!(stream.window_start(), Some(config.start_timestamp));
            assert_eq!(stream.len_hint(), Some(9));
            let streamed = drain(&mut stream, batch);
            assert_eq!(streamed, eager, "batch = {batch}");
            // Exhausted streams stay exhausted.
            assert!(stream.next_batch(8).unwrap().is_empty());
        }
    }

    #[test]
    fn vec_stream_round_trips_and_reports_window_start() {
        let fleet = generate_fleet(&small_config(), &mut StdRng::seed_from_u64(56)).unwrap();
        let expected_start = fleet
            .iter()
            .filter_map(|t| t.records.first().map(|r| r.timestamp))
            .min();
        let mut stream = VecTraceStream::new(fleet.clone());
        assert_eq!(stream.window_start(), expected_start);
        assert_eq!(drain(&mut stream, 2), fleet);
        assert_eq!(VecTraceStream::new(Vec::new()).window_start(), None);
    }

    #[test]
    fn replicated_stream_amplifies_with_unique_ids() {
        let config = small_config();
        let mut stream = ReplicatedTaxiStream::new(config.clone(), 77, 3).unwrap();
        assert_eq!(stream.total_nodes(), 27);
        let all = drain(&mut stream, 4);
        assert_eq!(all.len(), 27);
        let mut ids: Vec<&str> = all.iter().map(|t| t.node_id.as_str()).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 27, "replica ids must be unique");
        // Replica r is exactly the fleet generated under its derived seed.
        let replica1 =
            generate_fleet(&config, &mut StdRng::seed_from_u64(replica_seed(77, 1))).unwrap();
        for (a, b) in all[9..18].iter().zip(&replica1) {
            assert_eq!(a.node_id, format!("{}@r001", b.node_id));
            assert_eq!(a.records, b.records);
        }
        // Replicas differ statistically (independent streams).
        assert_ne!(all[0].records, all[9].records);
    }

    #[test]
    fn replicated_stream_is_deterministic_and_batch_size_independent() {
        let a = drain(
            &mut ReplicatedTaxiStream::new(small_config(), 78, 2).unwrap(),
            3,
        );
        let b = drain(
            &mut ReplicatedTaxiStream::new(small_config(), 78, 2).unwrap(),
            100,
        );
        assert_eq!(a, b);
        assert!(ReplicatedTaxiStream::new(small_config(), 78, 0).is_err());
    }

    #[test]
    fn crawdad_stream_reads_batches_and_validates_bbox() {
        let dir = std::env::temp_dir().join(format!("crawdad_stream_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let sf = "37.751 -122.395 0 100\n37.752 -122.396 0 40\n";
        std::fs::write(dir.join("new_a.txt"), sf).unwrap();
        std::fs::write(dir.join("new_b.txt"), sf).unwrap();
        std::fs::write(dir.join("new_c.txt"), "51.5 -0.1 0 10\n").unwrap();

        let mut stream = CrawdadDirStream::new(&dir).unwrap();
        assert_eq!(stream.num_files(), 3);
        assert_eq!(stream.window_start(), None);
        let first = stream.next_batch(2).unwrap();
        assert_eq!(first.len(), 2);
        assert_eq!(first[0].node_id, "new_a");

        // Strict bbox rejects the London glitch, naming the node.
        let mut strict = CrawdadDirStream::new(&dir)
            .unwrap()
            .with_bbox(BoundingBox::san_francisco())
            .with_window_start(40);
        assert_eq!(strict.window_start(), Some(40));
        let _ = strict.next_batch(2).unwrap();
        match strict.next_batch(2).unwrap_err() {
            MobilityError::OutOfBbox { node, .. } => assert_eq!(node, "new_c"),
            other => panic!("unexpected error: {other:?}"),
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn replica_seeds_are_scrambled() {
        let seeds: Vec<u64> = (0..8).map(|r| replica_seed(123, r)).collect();
        let mut unique = seeds.clone();
        unique.sort_unstable();
        unique.dedup();
        assert_eq!(unique.len(), seeds.len());
    }
}

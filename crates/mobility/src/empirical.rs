//! Empirical Markov-model estimation from quantized trajectories.
//!
//! The paper models the 174 trace trajectories "as trajectories generated
//! independently from the same MC" and computes "the empirical transition
//! matrix and the empirical steady-state distribution" (Sec. VII-B1).
//! Transition probabilities are transition-count ratios; the empirical
//! steady state is the occupancy frequency over all trajectories and
//! slots. Rows of cells that are never left become self-loops so the
//! matrix stays stochastic.

use crate::Result;
use chaff_markov::{CellId, MarkovChain, StateDistribution, Trajectory, TransitionMatrix};
use serde::{Deserialize, Serialize};

/// An empirical mobility model estimated from trajectories.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EmpiricalModel {
    chain: MarkovChain,
    /// Per-cell visit counts over all trajectories and slots.
    visits: Vec<u64>,
    /// Total number of observed transitions.
    num_transitions: u64,
}

impl EmpiricalModel {
    /// Estimates the model.
    ///
    /// `smoothing` is an additive (Laplace) count applied to every
    /// transition and occupancy cell; 0 reproduces the paper's plain
    /// frequency estimates (recommended — smoothing densifies the matrix,
    /// which distorts the sparse-support structure the strategies exploit).
    ///
    /// # Errors
    ///
    /// Returns an error when `num_cells == 0`, when trajectories visit
    /// out-of-range cells, or when no slot was observed at all.
    pub fn estimate(trajectories: &[Trajectory], num_cells: usize, smoothing: f64) -> Result<Self> {
        if num_cells == 0 {
            return Err(chaff_markov::MarkovError::Empty.into());
        }
        let mut counts = vec![0.0f64; num_cells * num_cells];
        let mut visits = vec![0u64; num_cells];
        let mut num_transitions = 0u64;
        for trajectory in trajectories {
            let mut prev: Option<CellId> = None;
            for cell in trajectory.iter() {
                if cell.index() >= num_cells {
                    return Err(chaff_markov::MarkovError::CellOutOfRange {
                        cell: cell.index(),
                        states: num_cells,
                    }
                    .into());
                }
                visits[cell.index()] += 1;
                if let Some(p) = prev {
                    counts[p.index() * num_cells + cell.index()] += 1.0;
                    num_transitions += 1;
                }
                prev = Some(cell);
            }
        }
        if visits.iter().all(|&v| v == 0) {
            return Err(chaff_markov::MarkovError::Empty.into());
        }
        // Build rows: frequency + smoothing; unobserved rows self-loop.
        let mut rows = Vec::with_capacity(num_cells);
        for i in 0..num_cells {
            let row = &mut counts[i * num_cells..(i + 1) * num_cells];
            if smoothing > 0.0 {
                for w in row.iter_mut() {
                    *w += smoothing;
                }
            }
            let sum: f64 = row.iter().sum();
            if sum <= 0.0 {
                let mut self_loop = vec![0.0; num_cells];
                self_loop[i] = 1.0;
                rows.push(self_loop);
            } else {
                rows.push(row.iter().map(|w| w / sum).collect());
            }
        }
        let matrix = TransitionMatrix::from_rows(rows)?;
        let occupancy: Vec<f64> = visits.iter().map(|&v| v as f64 + smoothing).collect();
        let initial = StateDistribution::from_weights(occupancy)?;
        let chain = MarkovChain::with_initial(matrix, initial)?;
        Ok(EmpiricalModel {
            chain,
            visits,
            num_transitions,
        })
    }

    /// The estimated chain (matrix + empirical steady state).
    pub fn chain(&self) -> &MarkovChain {
        &self.chain
    }

    /// Per-cell visit counts.
    pub fn visits(&self) -> &[u64] {
        &self.visits
    }

    /// Total observed transitions.
    pub fn num_transitions(&self) -> u64 {
        self.num_transitions
    }

    /// Number of cells visited at least once.
    pub fn support_size(&self) -> usize {
        self.visits.iter().filter(|&&v| v > 0).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frequencies_match_counts() {
        // 0->1 twice, 0->0 once, 1->0 twice, 1->1 once.
        let t1 = Trajectory::from_indices([0, 1, 0, 0, 1]);
        let t2 = Trajectory::from_indices([1, 1, 0, 1, 0]);
        let model = EmpiricalModel::estimate(&[t1, t2], 2, 0.0).unwrap();
        let m = model.chain().matrix();
        // Transitions from 0: 0->1 x3, 0->0 x1 -> P(1|0) = 0.75.
        assert!((m.prob(CellId::new(0), CellId::new(1)) - 0.75).abs() < 1e-12);
        // Transitions from 1: 1->0 x3, 1->1 x1 -> P(0|1) = 0.75.
        assert!((m.prob(CellId::new(1), CellId::new(0)) - 0.75).abs() < 1e-12);
        assert_eq!(model.num_transitions(), 8);
    }

    #[test]
    fn occupancy_is_visit_frequency() {
        let t = Trajectory::from_indices([0, 0, 0, 1]);
        let model = EmpiricalModel::estimate(&[t], 3, 0.0).unwrap();
        let pi = model.chain().initial();
        assert!((pi.prob(CellId::new(0)) - 0.75).abs() < 1e-12);
        assert!((pi.prob(CellId::new(1)) - 0.25).abs() < 1e-12);
        assert_eq!(pi.prob(CellId::new(2)), 0.0);
        assert_eq!(model.support_size(), 2);
    }

    #[test]
    fn unvisited_rows_become_self_loops() {
        let t = Trajectory::from_indices([0, 1, 0]);
        let model = EmpiricalModel::estimate(&[t], 3, 0.0).unwrap();
        assert_eq!(
            model.chain().matrix().prob(CellId::new(2), CellId::new(2)),
            1.0
        );
    }

    #[test]
    fn observed_trajectories_have_positive_likelihood() {
        let trajectories = vec![
            Trajectory::from_indices([0, 1, 2, 1]),
            Trajectory::from_indices([2, 1, 0, 0]),
        ];
        let model = EmpiricalModel::estimate(&trajectories, 3, 0.0).unwrap();
        for t in &trajectories {
            assert!(
                model.chain().log_likelihood(t).is_finite(),
                "observed data must be explainable by the estimate"
            );
        }
    }

    #[test]
    fn smoothing_densifies_the_matrix() {
        let t = Trajectory::from_indices([0, 1]);
        let plain = EmpiricalModel::estimate(std::slice::from_ref(&t), 3, 0.0).unwrap();
        let smoothed = EmpiricalModel::estimate(&[t], 3, 1.0).unwrap();
        assert_eq!(
            plain.chain().matrix().prob(CellId::new(0), CellId::new(2)),
            0.0
        );
        assert!(
            smoothed
                .chain()
                .matrix()
                .prob(CellId::new(0), CellId::new(2))
                > 0.0
        );
        // Smoothed occupancy gives unvisited cells positive mass too.
        assert!(smoothed.chain().initial().prob(CellId::new(2)) > 0.0);
    }

    #[test]
    fn error_cases() {
        assert!(EmpiricalModel::estimate(&[], 0, 0.0).is_err());
        let out_of_range = Trajectory::from_indices([5]);
        assert!(EmpiricalModel::estimate(&[out_of_range], 3, 0.0).is_err());
        assert!(EmpiricalModel::estimate(&[Trajectory::new()], 3, 0.0).is_err());
    }
}

//! Empirical Markov-model estimation from quantized trajectories.
//!
//! The paper models the 174 trace trajectories "as trajectories generated
//! independently from the same MC" and computes "the empirical transition
//! matrix and the empirical steady-state distribution" (Sec. VII-B1).
//! Transition probabilities are transition-count ratios; the empirical
//! steady state is the occupancy frequency over all trajectories and
//! slots. Rows of cells that are never left become self-loops so the
//! matrix stays stochastic.

use crate::Result;
use chaff_markov::{CellId, MarkovChain, StateDistribution, Trajectory, TransitionMatrix};
use serde::{Deserialize, Serialize};

/// An empirical mobility model estimated from trajectories.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EmpiricalModel {
    chain: MarkovChain,
    /// Per-cell visit counts over all trajectories and slots.
    visits: Vec<u64>,
    /// Total number of observed transitions.
    num_transitions: u64,
}

/// A mergeable transition/occupancy *count* accumulator — the streaming
/// half of [`EmpiricalModel::estimate`].
///
/// Counts are integers (`u64`), so merging per-shard accumulators is
/// exact and commutative: the finished model is bit-for-bit identical no
/// matter how trajectories were partitioned over shards or in what order
/// the shards are merged. This is what lets the sharded ingestion
/// pipeline guarantee shard-count-independent results.
#[derive(Debug, Clone)]
pub struct EmpiricalAccumulator {
    num_cells: usize,
    /// Row-major `num_cells × num_cells` transition counts.
    counts: Vec<u64>,
    /// Per-cell visit counts.
    visits: Vec<u64>,
    num_transitions: u64,
}

impl EmpiricalAccumulator {
    /// Creates an empty accumulator over `num_cells` cells.
    ///
    /// # Errors
    ///
    /// Returns an error when `num_cells == 0`.
    pub fn new(num_cells: usize) -> Result<Self> {
        if num_cells == 0 {
            return Err(chaff_markov::MarkovError::Empty.into());
        }
        Ok(EmpiricalAccumulator {
            num_cells,
            counts: vec![0u64; num_cells * num_cells],
            visits: vec![0u64; num_cells],
            num_transitions: 0,
        })
    }

    /// Number of cells in the state space.
    pub fn num_cells(&self) -> usize {
        self.num_cells
    }

    /// Transitions recorded so far.
    pub fn num_transitions(&self) -> u64 {
        self.num_transitions
    }

    /// Records one trajectory's visits and transitions.
    ///
    /// # Errors
    ///
    /// Returns an error when the trajectory visits an out-of-range cell;
    /// counts recorded before the offending step are kept (callers that
    /// need all-or-nothing semantics should validate first).
    pub fn record(&mut self, trajectory: &Trajectory) -> Result<()> {
        let mut prev: Option<CellId> = None;
        for cell in trajectory.iter() {
            if cell.index() >= self.num_cells {
                return Err(chaff_markov::MarkovError::CellOutOfRange {
                    cell: cell.index(),
                    states: self.num_cells,
                }
                .into());
            }
            self.visits[cell.index()] += 1;
            if let Some(p) = prev {
                self.counts[p.index() * self.num_cells + cell.index()] += 1;
                self.num_transitions += 1;
            }
            prev = Some(cell);
        }
        Ok(())
    }

    /// Adds another accumulator's counts into this one (exact integer
    /// sums — commutative and associative).
    ///
    /// # Errors
    ///
    /// Returns a dimension-mismatch error when the cell spaces differ.
    pub fn merge(&mut self, other: &EmpiricalAccumulator) -> Result<()> {
        if other.num_cells != self.num_cells {
            return Err(chaff_markov::MarkovError::DimensionMismatch {
                expected: self.num_cells,
                found: other.num_cells,
            }
            .into());
        }
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        for (a, b) in self.visits.iter_mut().zip(&other.visits) {
            *a += b;
        }
        self.num_transitions += other.num_transitions;
        Ok(())
    }

    /// Normalizes the accumulated counts into an [`EmpiricalModel`] —
    /// identical math to [`EmpiricalModel::estimate`].
    ///
    /// # Errors
    ///
    /// Returns an error when no slot was recorded at all.
    pub fn finish(self, smoothing: f64) -> Result<EmpiricalModel> {
        let num_cells = self.num_cells;
        if self.visits.iter().all(|&v| v == 0) {
            return Err(chaff_markov::MarkovError::Empty.into());
        }
        // Build rows: frequency + smoothing; unobserved rows self-loop.
        // Counts are exact integers well below 2^53, so the f64 sums and
        // ratios below are independent of accumulation order.
        let mut rows = Vec::with_capacity(num_cells);
        for i in 0..num_cells {
            let row = &self.counts[i * num_cells..(i + 1) * num_cells];
            let weights: Vec<f64> = row.iter().map(|&c| c as f64 + smoothing).collect();
            let sum: f64 = weights.iter().sum();
            if sum <= 0.0 {
                let mut self_loop = vec![0.0; num_cells];
                self_loop[i] = 1.0;
                rows.push(self_loop);
            } else {
                rows.push(weights.iter().map(|w| w / sum).collect());
            }
        }
        let matrix = TransitionMatrix::from_rows(rows)?;
        let occupancy: Vec<f64> = self.visits.iter().map(|&v| v as f64 + smoothing).collect();
        let initial = StateDistribution::from_weights(occupancy)?;
        let chain = MarkovChain::with_initial(matrix, initial)?;
        Ok(EmpiricalModel {
            chain,
            visits: self.visits,
            num_transitions: self.num_transitions,
        })
    }
}

impl EmpiricalModel {
    /// Estimates the model.
    ///
    /// `smoothing` is an additive (Laplace) count applied to every
    /// transition and occupancy cell; 0 reproduces the paper's plain
    /// frequency estimates (recommended — smoothing densifies the matrix,
    /// which distorts the sparse-support structure the strategies exploit).
    ///
    /// Implemented on top of [`EmpiricalAccumulator`], so a sharded
    /// accumulate-and-merge produces bit-for-bit the same model.
    ///
    /// # Errors
    ///
    /// Returns an error when `num_cells == 0`, when trajectories visit
    /// out-of-range cells, or when no slot was observed at all.
    pub fn estimate(trajectories: &[Trajectory], num_cells: usize, smoothing: f64) -> Result<Self> {
        let mut acc = EmpiricalAccumulator::new(num_cells)?;
        for trajectory in trajectories {
            acc.record(trajectory)?;
        }
        acc.finish(smoothing)
    }

    /// The estimated chain (matrix + empirical steady state).
    pub fn chain(&self) -> &MarkovChain {
        &self.chain
    }

    /// Per-cell visit counts.
    pub fn visits(&self) -> &[u64] {
        &self.visits
    }

    /// Total observed transitions.
    pub fn num_transitions(&self) -> u64 {
        self.num_transitions
    }

    /// Number of cells visited at least once.
    pub fn support_size(&self) -> usize {
        self.visits.iter().filter(|&&v| v > 0).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frequencies_match_counts() {
        // 0->1 twice, 0->0 once, 1->0 twice, 1->1 once.
        let t1 = Trajectory::from_indices([0, 1, 0, 0, 1]);
        let t2 = Trajectory::from_indices([1, 1, 0, 1, 0]);
        let model = EmpiricalModel::estimate(&[t1, t2], 2, 0.0).unwrap();
        let m = model.chain().matrix();
        // Transitions from 0: 0->1 x3, 0->0 x1 -> P(1|0) = 0.75.
        assert!((m.prob(CellId::new(0), CellId::new(1)) - 0.75).abs() < 1e-12);
        // Transitions from 1: 1->0 x3, 1->1 x1 -> P(0|1) = 0.75.
        assert!((m.prob(CellId::new(1), CellId::new(0)) - 0.75).abs() < 1e-12);
        assert_eq!(model.num_transitions(), 8);
    }

    #[test]
    fn occupancy_is_visit_frequency() {
        let t = Trajectory::from_indices([0, 0, 0, 1]);
        let model = EmpiricalModel::estimate(&[t], 3, 0.0).unwrap();
        let pi = model.chain().initial();
        assert!((pi.prob(CellId::new(0)) - 0.75).abs() < 1e-12);
        assert!((pi.prob(CellId::new(1)) - 0.25).abs() < 1e-12);
        assert_eq!(pi.prob(CellId::new(2)), 0.0);
        assert_eq!(model.support_size(), 2);
    }

    #[test]
    fn unvisited_rows_become_self_loops() {
        let t = Trajectory::from_indices([0, 1, 0]);
        let model = EmpiricalModel::estimate(&[t], 3, 0.0).unwrap();
        assert_eq!(
            model.chain().matrix().prob(CellId::new(2), CellId::new(2)),
            1.0
        );
    }

    #[test]
    fn observed_trajectories_have_positive_likelihood() {
        let trajectories = vec![
            Trajectory::from_indices([0, 1, 2, 1]),
            Trajectory::from_indices([2, 1, 0, 0]),
        ];
        let model = EmpiricalModel::estimate(&trajectories, 3, 0.0).unwrap();
        for t in &trajectories {
            assert!(
                model.chain().log_likelihood(t).is_finite(),
                "observed data must be explainable by the estimate"
            );
        }
    }

    #[test]
    fn smoothing_densifies_the_matrix() {
        let t = Trajectory::from_indices([0, 1]);
        let plain = EmpiricalModel::estimate(std::slice::from_ref(&t), 3, 0.0).unwrap();
        let smoothed = EmpiricalModel::estimate(&[t], 3, 1.0).unwrap();
        assert_eq!(
            plain.chain().matrix().prob(CellId::new(0), CellId::new(2)),
            0.0
        );
        assert!(
            smoothed
                .chain()
                .matrix()
                .prob(CellId::new(0), CellId::new(2))
                > 0.0
        );
        // Smoothed occupancy gives unvisited cells positive mass too.
        assert!(smoothed.chain().initial().prob(CellId::new(2)) > 0.0);
    }

    #[test]
    fn error_cases() {
        assert!(EmpiricalModel::estimate(&[], 0, 0.0).is_err());
        let out_of_range = Trajectory::from_indices([5]);
        assert!(EmpiricalModel::estimate(&[out_of_range], 3, 0.0).is_err());
        assert!(EmpiricalModel::estimate(&[Trajectory::new()], 3, 0.0).is_err());
        assert!(EmpiricalAccumulator::new(0).is_err());
        let mut a = EmpiricalAccumulator::new(3).unwrap();
        let b = EmpiricalAccumulator::new(4).unwrap();
        assert!(a.merge(&b).is_err());
        assert!(a.record(&Trajectory::from_indices([0, 7])).is_err());
    }

    #[test]
    fn sharded_accumulation_matches_single_pass_bit_for_bit() {
        let trajectories = vec![
            Trajectory::from_indices([0, 1, 2, 1, 0]),
            Trajectory::from_indices([2, 2, 0, 1, 1]),
            Trajectory::from_indices([1, 0, 0, 2, 2]),
            Trajectory::from_indices([0, 2, 1, 1, 0]),
        ];
        let reference = EmpiricalModel::estimate(&trajectories, 3, 0.0).unwrap();
        // Partition over "shards" in several ways, merge in arbitrary
        // order: the finished model must be bitwise identical.
        for split in [1usize, 2, 3] {
            let mut shards: Vec<EmpiricalAccumulator> = (0..split)
                .map(|_| EmpiricalAccumulator::new(3).unwrap())
                .collect();
            for (i, t) in trajectories.iter().enumerate() {
                shards[i % split].record(t).unwrap();
            }
            // Merge back-to-front to exercise order-independence.
            let mut merged = EmpiricalAccumulator::new(3).unwrap();
            for shard in shards.iter().rev() {
                merged.merge(shard).unwrap();
            }
            let model = merged.finish(0.0).unwrap();
            assert_eq!(model.chain().matrix(), reference.chain().matrix());
            assert_eq!(model.visits(), reference.visits());
            assert_eq!(model.num_transitions(), reference.num_transitions());
            let pi_a = model.chain().initial().as_slice();
            let pi_b = reference.chain().initial().as_slice();
            for (a, b) in pi_a.iter().zip(pi_b) {
                assert_eq!(a.to_bits(), b.to_bits());
            }
        }
    }
}

//! Empirical Markov-model estimation from quantized trajectories.
//!
//! The paper models the 174 trace trajectories "as trajectories generated
//! independently from the same MC" and computes "the empirical transition
//! matrix and the empirical steady-state distribution" (Sec. VII-B1).
//! Transition probabilities are transition-count ratios; the empirical
//! steady state is the occupancy frequency over all trajectories and
//! slots. Rows of cells that are never left become self-loops so the
//! matrix stays stochastic.

use crate::Result;
use chaff_markov::{
    CellId, EpochSchedule, MarkovChain, StateDistribution, Trajectory, TransitionMatrix,
};
use serde::{Deserialize, Serialize};

/// An empirical mobility model estimated from trajectories.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EmpiricalModel {
    chain: MarkovChain,
    /// Per-cell visit counts over all trajectories and slots.
    visits: Vec<u64>,
    /// Total number of observed transitions.
    num_transitions: u64,
}

/// A mergeable transition/occupancy *count* accumulator — the streaming
/// half of [`EmpiricalModel::estimate`].
///
/// Counts are integers (`u64`), so merging per-shard accumulators is
/// exact and commutative: the finished model is bit-for-bit identical no
/// matter how trajectories were partitioned over shards or in what order
/// the shards are merged. This is what lets the sharded ingestion
/// pipeline guarantee shard-count-independent results.
#[derive(Debug, Clone)]
pub struct EmpiricalAccumulator {
    num_cells: usize,
    /// Row-major `num_cells × num_cells` transition counts.
    counts: Vec<u64>,
    /// Per-cell visit counts.
    visits: Vec<u64>,
    num_transitions: u64,
}

impl EmpiricalAccumulator {
    /// Creates an empty accumulator over `num_cells` cells.
    ///
    /// # Errors
    ///
    /// Returns an error when `num_cells == 0`.
    pub fn new(num_cells: usize) -> Result<Self> {
        if num_cells == 0 {
            return Err(chaff_markov::MarkovError::Empty.into());
        }
        Ok(EmpiricalAccumulator {
            num_cells,
            counts: vec![0u64; num_cells * num_cells],
            visits: vec![0u64; num_cells],
            num_transitions: 0,
        })
    }

    /// Number of cells in the state space.
    pub fn num_cells(&self) -> usize {
        self.num_cells
    }

    /// Transitions recorded so far.
    pub fn num_transitions(&self) -> u64 {
        self.num_transitions
    }

    /// Records one trajectory's visits and transitions.
    ///
    /// # Errors
    ///
    /// Returns an error when the trajectory visits an out-of-range cell;
    /// counts recorded before the offending step are kept (callers that
    /// need all-or-nothing semantics should validate first).
    pub fn record(&mut self, trajectory: &Trajectory) -> Result<()> {
        let mut prev: Option<CellId> = None;
        for cell in trajectory.iter() {
            self.record_step(prev, cell)?;
            prev = Some(cell);
        }
        Ok(())
    }

    /// Records a single arrival: one visit at `cell`, plus (when `prev` is
    /// given) one `prev → cell` transition. This is the per-slot unit the
    /// epoch-indexed accumulator routes to the slot's active epoch.
    ///
    /// # Errors
    ///
    /// Returns an error when `cell` (or `prev`) is out of range.
    pub fn record_step(&mut self, prev: Option<CellId>, cell: CellId) -> Result<()> {
        for c in prev.iter().chain(std::iter::once(&cell)) {
            if c.index() >= self.num_cells {
                return Err(chaff_markov::MarkovError::CellOutOfRange {
                    cell: c.index(),
                    states: self.num_cells,
                }
                .into());
            }
        }
        self.visits[cell.index()] += 1;
        if let Some(p) = prev {
            self.counts[p.index() * self.num_cells + cell.index()] += 1;
            self.num_transitions += 1;
        }
        Ok(())
    }

    /// Adds another accumulator's counts into this one (exact integer
    /// sums — commutative and associative).
    ///
    /// # Errors
    ///
    /// Returns a dimension-mismatch error when the cell spaces differ.
    pub fn merge(&mut self, other: &EmpiricalAccumulator) -> Result<()> {
        if other.num_cells != self.num_cells {
            return Err(chaff_markov::MarkovError::DimensionMismatch {
                expected: self.num_cells,
                found: other.num_cells,
            }
            .into());
        }
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        for (a, b) in self.visits.iter_mut().zip(&other.visits) {
            *a += b;
        }
        self.num_transitions += other.num_transitions;
        Ok(())
    }

    /// Normalizes the accumulated counts into an [`EmpiricalModel`] —
    /// identical math to [`EmpiricalModel::estimate`].
    ///
    /// # Errors
    ///
    /// Returns an error when no slot was recorded at all.
    pub fn finish(self, smoothing: f64) -> Result<EmpiricalModel> {
        let num_cells = self.num_cells;
        if self.visits.iter().all(|&v| v == 0) {
            return Err(chaff_markov::MarkovError::Empty.into());
        }
        // Build rows: frequency + smoothing; unobserved rows self-loop.
        // Counts are exact integers well below 2^53, so the f64 sums and
        // ratios below are independent of accumulation order.
        let mut rows = Vec::with_capacity(num_cells);
        for i in 0..num_cells {
            let row = &self.counts[i * num_cells..(i + 1) * num_cells];
            let weights: Vec<f64> = row.iter().map(|&c| c as f64 + smoothing).collect();
            let sum: f64 = weights.iter().sum();
            if sum <= 0.0 {
                let mut self_loop = vec![0.0; num_cells];
                self_loop[i] = 1.0;
                rows.push(self_loop);
            } else {
                rows.push(weights.iter().map(|w| w / sum).collect());
            }
        }
        let matrix = TransitionMatrix::from_rows(rows)?;
        let occupancy: Vec<f64> = self.visits.iter().map(|&v| v as f64 + smoothing).collect();
        let initial = StateDistribution::from_weights(occupancy)?;
        let chain = MarkovChain::with_initial(matrix, initial)?;
        Ok(EmpiricalModel {
            chain,
            visits: self.visits,
            num_transitions: self.num_transitions,
        })
    }
}

/// Epoch-indexed count accumulation: one [`EmpiricalAccumulator`] per
/// epoch of an [`EpochSchedule`], following the same arrival convention
/// as the detectors — the visit at slot `t` *and* the transition into
/// slot `t` both count toward `epoch_of(t)`.
///
/// Like the plain accumulator, all counts are exact integers, so per-shard
/// epoch accumulators merge commutatively and [`pooled`](Self::pooled)
/// (the sum over epochs) reproduces the stationary accumulator's counts
/// bit-for-bit — a one-epoch schedule *is* the stationary path.
#[derive(Debug, Clone)]
pub struct EpochAccumulator {
    schedule: EpochSchedule,
    epochs: Vec<EmpiricalAccumulator>,
}

impl EpochAccumulator {
    /// Creates an empty accumulator over `num_cells` cells, one count set
    /// per epoch of `schedule`.
    ///
    /// # Errors
    ///
    /// Returns an error when `num_cells == 0`.
    pub fn new(num_cells: usize, schedule: EpochSchedule) -> Result<Self> {
        let epochs = (0..schedule.num_epochs())
            .map(|_| EmpiricalAccumulator::new(num_cells))
            .collect::<Result<_>>()?;
        Ok(EpochAccumulator { schedule, epochs })
    }

    /// The slot → epoch map the counts are bucketed by.
    pub fn schedule(&self) -> &EpochSchedule {
        &self.schedule
    }

    /// Number of cells in the state space.
    pub fn num_cells(&self) -> usize {
        self.epochs[0].num_cells()
    }

    /// Records one trajectory, starting at slot 0 of the schedule: the
    /// arrival at slot `t` (visit + incoming transition) is counted in
    /// epoch `schedule.epoch_of(t)`.
    ///
    /// # Errors
    ///
    /// Returns an error when the trajectory visits an out-of-range cell;
    /// counts recorded before the offending step are kept.
    pub fn record(&mut self, trajectory: &Trajectory) -> Result<()> {
        let mut prev: Option<CellId> = None;
        for (slot, cell) in trajectory.iter().enumerate() {
            self.epochs[self.schedule.epoch_of(slot)].record_step(prev, cell)?;
            prev = Some(cell);
        }
        Ok(())
    }

    /// Adds another accumulator's per-epoch counts into this one.
    ///
    /// # Errors
    ///
    /// Returns a length-mismatch error when the schedules differ and a
    /// dimension-mismatch error when the cell spaces differ.
    pub fn merge(&mut self, other: &EpochAccumulator) -> Result<()> {
        if other.schedule != self.schedule {
            return Err(chaff_markov::MarkovError::LengthMismatch {
                expected: self.schedule.period(),
                found: other.schedule.period(),
            }
            .into());
        }
        for (a, b) in self.epochs.iter_mut().zip(&other.epochs) {
            a.merge(b)?;
        }
        Ok(())
    }

    /// Sums the per-epoch counts into one stationary accumulator — the
    /// exact counts a schedule-blind pass over the same trajectories would
    /// have produced, so the pooled model is bit-for-bit the stationary
    /// estimate.
    ///
    /// # Errors
    ///
    /// Never fails in practice (all epochs share one cell space); kept
    /// fallible for uniformity with [`merge`](Self::merge).
    pub fn pooled(&self) -> Result<EmpiricalAccumulator> {
        let mut pooled = self.epochs[0].clone();
        for epoch in &self.epochs[1..] {
            pooled.merge(epoch)?;
        }
        Ok(pooled)
    }

    /// Normalizes each epoch's counts into its own [`EmpiricalModel`].
    ///
    /// # Errors
    ///
    /// Returns an error when any epoch recorded no slot at all (e.g. a
    /// schedule period longer than every trajectory).
    pub fn finish(self, smoothing: f64) -> Result<Vec<EmpiricalModel>> {
        self.epochs
            .into_iter()
            .map(|acc| acc.finish(smoothing))
            .collect()
    }
}

impl EmpiricalModel {
    /// Estimates the model.
    ///
    /// `smoothing` is an additive (Laplace) count applied to every
    /// transition and occupancy cell; 0 reproduces the paper's plain
    /// frequency estimates (recommended — smoothing densifies the matrix,
    /// which distorts the sparse-support structure the strategies exploit).
    ///
    /// Implemented on top of [`EmpiricalAccumulator`], so a sharded
    /// accumulate-and-merge produces bit-for-bit the same model.
    ///
    /// # Errors
    ///
    /// Returns an error when `num_cells == 0`, when trajectories visit
    /// out-of-range cells, or when no slot was observed at all.
    pub fn estimate(trajectories: &[Trajectory], num_cells: usize, smoothing: f64) -> Result<Self> {
        let mut acc = EmpiricalAccumulator::new(num_cells)?;
        for trajectory in trajectories {
            acc.record(trajectory)?;
        }
        acc.finish(smoothing)
    }

    /// The estimated chain (matrix + empirical steady state).
    pub fn chain(&self) -> &MarkovChain {
        &self.chain
    }

    /// Per-cell visit counts.
    pub fn visits(&self) -> &[u64] {
        &self.visits
    }

    /// Total observed transitions.
    pub fn num_transitions(&self) -> u64 {
        self.num_transitions
    }

    /// Number of cells visited at least once.
    pub fn support_size(&self) -> usize {
        self.visits.iter().filter(|&&v| v > 0).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frequencies_match_counts() {
        // 0->1 twice, 0->0 once, 1->0 twice, 1->1 once.
        let t1 = Trajectory::from_indices([0, 1, 0, 0, 1]);
        let t2 = Trajectory::from_indices([1, 1, 0, 1, 0]);
        let model = EmpiricalModel::estimate(&[t1, t2], 2, 0.0).unwrap();
        let m = model.chain().matrix();
        // Transitions from 0: 0->1 x3, 0->0 x1 -> P(1|0) = 0.75.
        assert!((m.prob(CellId::new(0), CellId::new(1)) - 0.75).abs() < 1e-12);
        // Transitions from 1: 1->0 x3, 1->1 x1 -> P(0|1) = 0.75.
        assert!((m.prob(CellId::new(1), CellId::new(0)) - 0.75).abs() < 1e-12);
        assert_eq!(model.num_transitions(), 8);
    }

    #[test]
    fn occupancy_is_visit_frequency() {
        let t = Trajectory::from_indices([0, 0, 0, 1]);
        let model = EmpiricalModel::estimate(&[t], 3, 0.0).unwrap();
        let pi = model.chain().initial();
        assert!((pi.prob(CellId::new(0)) - 0.75).abs() < 1e-12);
        assert!((pi.prob(CellId::new(1)) - 0.25).abs() < 1e-12);
        assert_eq!(pi.prob(CellId::new(2)), 0.0);
        assert_eq!(model.support_size(), 2);
    }

    #[test]
    fn unvisited_rows_become_self_loops() {
        let t = Trajectory::from_indices([0, 1, 0]);
        let model = EmpiricalModel::estimate(&[t], 3, 0.0).unwrap();
        assert_eq!(
            model.chain().matrix().prob(CellId::new(2), CellId::new(2)),
            1.0
        );
    }

    #[test]
    fn observed_trajectories_have_positive_likelihood() {
        let trajectories = vec![
            Trajectory::from_indices([0, 1, 2, 1]),
            Trajectory::from_indices([2, 1, 0, 0]),
        ];
        let model = EmpiricalModel::estimate(&trajectories, 3, 0.0).unwrap();
        for t in &trajectories {
            assert!(
                model.chain().log_likelihood(t).is_finite(),
                "observed data must be explainable by the estimate"
            );
        }
    }

    #[test]
    fn smoothing_densifies_the_matrix() {
        let t = Trajectory::from_indices([0, 1]);
        let plain = EmpiricalModel::estimate(std::slice::from_ref(&t), 3, 0.0).unwrap();
        let smoothed = EmpiricalModel::estimate(&[t], 3, 1.0).unwrap();
        assert_eq!(
            plain.chain().matrix().prob(CellId::new(0), CellId::new(2)),
            0.0
        );
        assert!(
            smoothed
                .chain()
                .matrix()
                .prob(CellId::new(0), CellId::new(2))
                > 0.0
        );
        // Smoothed occupancy gives unvisited cells positive mass too.
        assert!(smoothed.chain().initial().prob(CellId::new(2)) > 0.0);
    }

    #[test]
    fn error_cases() {
        assert!(EmpiricalModel::estimate(&[], 0, 0.0).is_err());
        let out_of_range = Trajectory::from_indices([5]);
        assert!(EmpiricalModel::estimate(&[out_of_range], 3, 0.0).is_err());
        assert!(EmpiricalModel::estimate(&[Trajectory::new()], 3, 0.0).is_err());
        assert!(EmpiricalAccumulator::new(0).is_err());
        let mut a = EmpiricalAccumulator::new(3).unwrap();
        let b = EmpiricalAccumulator::new(4).unwrap();
        assert!(a.merge(&b).is_err());
        assert!(a.record(&Trajectory::from_indices([0, 7])).is_err());
    }

    #[test]
    fn sharded_accumulation_matches_single_pass_bit_for_bit() {
        let trajectories = vec![
            Trajectory::from_indices([0, 1, 2, 1, 0]),
            Trajectory::from_indices([2, 2, 0, 1, 1]),
            Trajectory::from_indices([1, 0, 0, 2, 2]),
            Trajectory::from_indices([0, 2, 1, 1, 0]),
        ];
        let reference = EmpiricalModel::estimate(&trajectories, 3, 0.0).unwrap();
        // Partition over "shards" in several ways, merge in arbitrary
        // order: the finished model must be bitwise identical.
        for split in [1usize, 2, 3] {
            let mut shards: Vec<EmpiricalAccumulator> = (0..split)
                .map(|_| EmpiricalAccumulator::new(3).unwrap())
                .collect();
            for (i, t) in trajectories.iter().enumerate() {
                shards[i % split].record(t).unwrap();
            }
            // Merge back-to-front to exercise order-independence.
            let mut merged = EmpiricalAccumulator::new(3).unwrap();
            for shard in shards.iter().rev() {
                merged.merge(shard).unwrap();
            }
            let model = merged.finish(0.0).unwrap();
            assert_eq!(model.chain().matrix(), reference.chain().matrix());
            assert_eq!(model.visits(), reference.visits());
            assert_eq!(model.num_transitions(), reference.num_transitions());
            let pi_a = model.chain().initial().as_slice();
            let pi_b = reference.chain().initial().as_slice();
            for (a, b) in pi_a.iter().zip(pi_b) {
                assert_eq!(a.to_bits(), b.to_bits());
            }
        }
    }

    #[test]
    fn epoch_accumulator_buckets_arrivals_by_slot() {
        // day/night(2, 2): slots 0,1 are epoch 0; slots 2,3 are epoch 1.
        let schedule = EpochSchedule::day_night(2, 2).unwrap();
        let mut acc = EpochAccumulator::new(2, schedule).unwrap();
        acc.record(&Trajectory::from_indices([0, 1, 1, 0])).unwrap();
        // Day: visits at slots 0,1 (cells 0,1) + transition 0->1 into slot 1.
        // Night: visits at slots 2,3 (cells 1,0) + transitions 1->1 (into
        // slot 2, the epoch boundary) and 1->0 (into slot 3).
        let models = acc.clone().finish(0.0).unwrap();
        assert_eq!(models.len(), 2);
        assert_eq!(models[0].num_transitions(), 1);
        assert_eq!(models[1].num_transitions(), 2);
        assert_eq!(models[0].visits(), &[1, 1]);
        assert_eq!(models[1].visits(), &[1, 1]);
        // Day saw only 0->1; night saw 1->1 (the boundary arrival at slot
        // 2 lands in the *arrival* epoch) and 1->0.
        let day = models[0].chain().matrix();
        assert_eq!(day.prob(CellId::new(0), CellId::new(1)), 1.0);
        let night = models[1].chain().matrix();
        assert!((night.prob(CellId::new(1), CellId::new(1)) - 0.5).abs() < 1e-12);
        assert!((night.prob(CellId::new(1), CellId::new(0)) - 0.5).abs() < 1e-12);
        // Pooled counts equal a schedule-blind pass, bit-for-bit.
        let mut blind = EmpiricalAccumulator::new(2).unwrap();
        blind
            .record(&Trajectory::from_indices([0, 1, 1, 0]))
            .unwrap();
        let pooled = acc.pooled().unwrap().finish(0.0).unwrap();
        let reference = blind.finish(0.0).unwrap();
        assert_eq!(pooled.chain().matrix(), reference.chain().matrix());
        assert_eq!(pooled.visits(), reference.visits());
    }

    #[test]
    fn one_epoch_accumulator_is_the_stationary_accumulator() {
        let trajectories = vec![
            Trajectory::from_indices([0, 1, 2, 1, 0]),
            Trajectory::from_indices([2, 2, 0, 1, 1]),
        ];
        let mut epoch = EpochAccumulator::new(3, EpochSchedule::stationary()).unwrap();
        let mut plain = EmpiricalAccumulator::new(3).unwrap();
        for t in &trajectories {
            epoch.record(t).unwrap();
            plain.record(t).unwrap();
        }
        let models = epoch.finish(0.0).unwrap();
        assert_eq!(models.len(), 1);
        let reference = plain.finish(0.0).unwrap();
        assert_eq!(models[0].chain().matrix(), reference.chain().matrix());
        for (a, b) in models[0]
            .chain()
            .initial()
            .as_slice()
            .iter()
            .zip(reference.chain().initial().as_slice())
        {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn epoch_accumulator_merge_and_error_paths() {
        let schedule = EpochSchedule::day_night(1, 1).unwrap();
        let mut a = EpochAccumulator::new(2, schedule.clone()).unwrap();
        let mut b = EpochAccumulator::new(2, schedule.clone()).unwrap();
        a.record(&Trajectory::from_indices([0, 1])).unwrap();
        b.record(&Trajectory::from_indices([1, 0])).unwrap();
        let mut merged = a.clone();
        merged.merge(&b).unwrap();
        let mut single = EpochAccumulator::new(2, schedule.clone()).unwrap();
        single.record(&Trajectory::from_indices([0, 1])).unwrap();
        single.record(&Trajectory::from_indices([1, 0])).unwrap();
        let m1 = merged.finish(0.0).unwrap();
        let m2 = single.finish(0.0).unwrap();
        for (x, y) in m1.iter().zip(&m2) {
            assert_eq!(x.chain().matrix(), y.chain().matrix());
        }
        // Mismatched schedules refuse to merge.
        let other = EpochAccumulator::new(2, EpochSchedule::stationary()).unwrap();
        assert!(a.merge(&other).is_err());
        // Out-of-range cells are rejected.
        assert!(a.record(&Trajectory::from_indices([0, 9])).is_err());
        // An epoch with no arrivals cannot be finished into a model.
        let starved = EpochAccumulator::new(2, EpochSchedule::day_night(3, 1).unwrap()).unwrap();
        let mut starved = starved;
        starved.record(&Trajectory::from_indices([0, 1])).unwrap();
        assert!(starved.finish(0.0).is_err());
    }
}

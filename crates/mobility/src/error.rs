//! Error type for the mobility/trace pipeline.

use std::error::Error;
use std::fmt;

/// Errors produced by the mobility/trace pipeline.
#[derive(Debug)]
pub enum MobilityError {
    /// A geographic bounding box was empty or inverted.
    InvalidBoundingBox {
        /// Human-readable reason.
        reason: String,
    },
    /// A tower layout ended up with no towers (e.g. everything filtered).
    NoTowers,
    /// A trace line could not be parsed.
    Parse {
        /// 1-based line number.
        line: usize,
        /// Human-readable reason.
        reason: String,
    },
    /// A configuration value was out of range.
    InvalidConfig {
        /// The offending parameter name.
        parameter: &'static str,
        /// Human-readable reason.
        reason: String,
    },
    /// Every node was filtered out as inactive.
    NoActiveNodes,
    /// An I/O error while reading trace files.
    Io(std::io::Error),
    /// An error bubbled up from the Markov substrate.
    Markov(chaff_markov::MarkovError),
}

impl fmt::Display for MobilityError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MobilityError::InvalidBoundingBox { reason } => {
                write!(f, "invalid bounding box: {reason}")
            }
            MobilityError::NoTowers => write!(f, "tower layout is empty"),
            MobilityError::Parse { line, reason } => {
                write!(f, "parse error at line {line}: {reason}")
            }
            MobilityError::InvalidConfig { parameter, reason } => {
                write!(f, "invalid configuration for {parameter}: {reason}")
            }
            MobilityError::NoActiveNodes => {
                write!(f, "every node was filtered out as inactive")
            }
            MobilityError::Io(e) => write!(f, "trace i/o error: {e}"),
            MobilityError::Markov(e) => write!(f, "markov substrate error: {e}"),
        }
    }
}

impl Error for MobilityError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            MobilityError::Io(e) => Some(e),
            MobilityError::Markov(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for MobilityError {
    fn from(e: std::io::Error) -> Self {
        MobilityError::Io(e)
    }
}

impl From<chaff_markov::MarkovError> for MobilityError {
    fn from(e: chaff_markov::MarkovError) -> Self {
        MobilityError::Markov(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let err = MobilityError::Parse {
            line: 3,
            reason: "expected 4 fields".into(),
        };
        assert!(err.to_string().contains("line 3"));
        assert!(err.source().is_none());
        let io: MobilityError = std::io::Error::other("boom").into();
        assert!(io.source().is_some());
    }
}

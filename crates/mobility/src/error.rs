//! Error type for the mobility/trace pipeline.

use std::error::Error;
use std::fmt;

/// Errors produced by the mobility/trace pipeline.
#[derive(Debug)]
pub enum MobilityError {
    /// A geographic bounding box was empty or inverted.
    InvalidBoundingBox {
        /// Human-readable reason.
        reason: String,
    },
    /// A tower layout ended up with no towers (e.g. everything filtered).
    NoTowers,
    /// A trace line could not be parsed.
    Parse {
        /// The node whose file contained the malformed line.
        node: String,
        /// 1-based line number.
        line: usize,
        /// Human-readable reason.
        reason: String,
    },
    /// A trace record fell outside the configured bounding box.
    OutOfBbox {
        /// The offending node.
        node: String,
        /// 0-based record index within the node's (time-sorted) trace.
        record: usize,
        /// Latitude of the offending record.
        lat: f64,
        /// Longitude of the offending record.
        lon: f64,
    },
    /// A configuration value was out of range.
    InvalidConfig {
        /// The offending parameter name.
        parameter: &'static str,
        /// Human-readable reason.
        reason: String,
    },
    /// Every node was filtered out as inactive.
    NoActiveNodes {
        /// How many nodes were examined before concluding none survive.
        examined: usize,
        /// A representative dropped node and why it was dropped
        /// (`"<node>: <reason>"`), when one is known.
        example: Option<String>,
    },
    /// An I/O error while reading trace files.
    Io(std::io::Error),
    /// An error bubbled up from the Markov substrate.
    Markov(chaff_markov::MarkovError),
}

impl fmt::Display for MobilityError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MobilityError::InvalidBoundingBox { reason } => {
                write!(f, "invalid bounding box: {reason}")
            }
            MobilityError::NoTowers => write!(f, "tower layout is empty"),
            MobilityError::Parse { node, line, reason } => {
                write!(f, "node '{node}': parse error at line {line}: {reason}")
            }
            MobilityError::OutOfBbox {
                node,
                record,
                lat,
                lon,
            } => {
                write!(
                    f,
                    "node '{node}': record {record} at ({lat}, {lon}) lies outside \
                     the configured bounding box"
                )
            }
            MobilityError::InvalidConfig { parameter, reason } => {
                write!(f, "invalid configuration for {parameter}: {reason}")
            }
            MobilityError::NoActiveNodes { examined, example } => {
                write!(
                    f,
                    "every node was filtered out as inactive ({examined} examined"
                )?;
                match example {
                    Some(example) => write!(f, "; e.g. {example})"),
                    None => write!(f, ")"),
                }
            }
            MobilityError::Io(e) => write!(f, "trace i/o error: {e}"),
            MobilityError::Markov(e) => write!(f, "markov substrate error: {e}"),
        }
    }
}

impl Error for MobilityError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            MobilityError::Io(e) => Some(e),
            MobilityError::Markov(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for MobilityError {
    fn from(e: std::io::Error) -> Self {
        MobilityError::Io(e)
    }
}

impl From<chaff_markov::MarkovError> for MobilityError {
    fn from(e: chaff_markov::MarkovError) -> Self {
        MobilityError::Markov(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let err = MobilityError::Parse {
            node: "new_abc".into(),
            line: 3,
            reason: "expected 4 fields".into(),
        };
        assert!(err.to_string().contains("line 3"));
        assert!(err.to_string().contains("new_abc"));
        assert!(err.source().is_none());
        let io: MobilityError = std::io::Error::other("boom").into();
        assert!(io.source().is_some());
    }

    #[test]
    fn no_active_nodes_names_an_example() {
        let bare = MobilityError::NoActiveNodes {
            examined: 7,
            example: None,
        };
        assert!(bare.to_string().contains("7 examined"));
        let with_example = MobilityError::NoActiveNodes {
            examined: 7,
            example: Some("taxi_003: gap of 412 s exceeds 300 s".into()),
        };
        assert!(with_example.to_string().contains("taxi_003"));
    }

    #[test]
    fn out_of_bbox_names_the_node_and_record() {
        let err = MobilityError::OutOfBbox {
            node: "new_x".into(),
            record: 4,
            lat: 51.5,
            lon: -0.1,
        };
        let text = err.to_string();
        assert!(text.contains("new_x"));
        assert!(text.contains("record 4"));
    }
}

//! Seeded, parallel Monte Carlo execution.
//!
//! Every experiment averages over independent runs (the paper uses 1000).
//! Runs are distributed over all cores through the process-wide worker
//! pool ([`chaff_core::pool`] — repeated sweeps never spawn fresh
//! threads); each run gets a deterministic seed derived from the
//! experiment seed and its run index, so results are reproducible
//! regardless of thread interleaving.

/// Derives the per-run seed from an experiment seed.
///
/// SplitMix64 over `base ^ run` — cheap, and avoids the correlated streams
/// that `base + run` would feed to the run's own PRNG.
pub fn run_seed(base: u64, run: u64) -> u64 {
    let mut z = base ^ run.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Runs `f(run_index, seed)` for `runs` independent runs in parallel and
/// returns the results in run order.
///
/// `f` must be deterministic in its arguments for reproducibility.
pub fn run_parallel<T, F>(runs: usize, base_seed: u64, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize, u64) -> T + Sync,
{
    let pool = chaff_core::pool::global();
    let threads = pool.threads().min(runs.max(1));
    if threads <= 1 || runs <= 1 {
        return (0..runs)
            .map(|i| f(i, run_seed(base_seed, i as u64)))
            .collect();
    }
    let mut results: Vec<Option<T>> = (0..runs).map(|_| None).collect();
    let chunk = runs.div_ceil(threads);
    pool.scope(|scope| {
        for (worker, slice) in results.chunks_mut(chunk).enumerate() {
            let f = &f;
            scope.spawn(move || {
                let offset = worker * chunk;
                for (j, slot) in slice.iter_mut().enumerate() {
                    let i = offset + j;
                    *slot = Some(f(i, run_seed(base_seed, i as u64)));
                }
            });
        }
    });
    results
        .into_iter()
        .map(|r| r.expect("every slot filled"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_are_in_run_order() {
        let out = run_parallel(100, 7, |i, _| i * 2);
        assert_eq!(out, (0..100).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn seeds_are_deterministic_and_distinct() {
        let a = run_parallel(50, 42, |_, seed| seed);
        let b = run_parallel(50, 42, |_, seed| seed);
        assert_eq!(a, b);
        let mut sorted = a.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 50, "seeds must not collide");
        let c = run_parallel(50, 43, |_, seed| seed);
        assert_ne!(a, c);
    }

    #[test]
    fn handles_edge_sizes() {
        assert!(run_parallel(0, 1, |i, _| i).is_empty());
        assert_eq!(run_parallel(1, 1, |i, _| i), vec![0]);
    }

    #[test]
    fn parallel_mean_matches_serial_mean() {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let serial: Vec<f64> = (0..64)
            .map(|i| StdRng::seed_from_u64(run_seed(5, i)).random::<f64>())
            .collect();
        let parallel = run_parallel(64, 5, |_, seed| StdRng::seed_from_u64(seed).random::<f64>());
        assert_eq!(serial, parallel);
    }
}

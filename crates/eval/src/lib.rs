//! Evaluation harness reproducing every figure of the paper's
//! evaluation (Sec. VII).
//!
//! One module per experiment, each producing [`report::Figure`] /
//! [`report::Table`] values that render to ASCII charts and CSV files:
//!
//! | Experiment | Paper artifact | Module |
//! |---|---|---|
//! | `table1` | in-text KL skewness values (Sec. VII-A1) | [`experiments::table1`] |
//! | `fig4` | steady-state distributions of models a–d | [`experiments::fig4`] |
//! | `fig5` | basic-eavesdropper accuracy vs time | [`experiments::fig5`] |
//! | `fig6` | CDF of the per-slot log-likelihood gap `c_t` | [`experiments::fig6`] |
//! | `fig7` | advanced-eavesdropper accuracy, robust strategies | [`experiments::fig7`] |
//! | `fig8` | trace cell layout and empirical steady state | [`experiments::fig8`] |
//! | `fig9` | trace: per-user accuracy, top-5 users with one chaff | [`experiments::fig9`] |
//! | `fig10` | trace: advanced eavesdropper with two chaffs | [`experiments::fig10`] |
//! | `theory` | eq. (11)/(12) and Theorem V.4 checks | [`experiments::theory`] |
//! | `multiuser` | extension: coexisting users as natural chaffs (fleet engine, N ≤ 10,000) | [`experiments::multiuser`] |
//! | `fleet_scaling` | extension: fleet-engine throughput (user-slots/sec) vs N | [`experiments::fleet_scaling`] |
//!
//! All experiments are deterministic given their seed; Monte Carlo
//! averaging runs on all cores via [`montecarlo`].
//!
//! The `repro` binary drives everything:
//!
//! ```text
//! repro fig5 --runs 1000 --out results/
//! repro all --quick
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
pub mod montecarlo;
pub mod report;

/// Convenient result alias; evaluation errors are boxed because they may
/// originate in any layer.
pub type Result<T> = std::result::Result<T, Box<dyn std::error::Error + Send + Sync>>;

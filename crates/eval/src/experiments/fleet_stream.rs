//! Extension experiment: the streaming online detection engine under
//! live per-slot latency accounting.
//!
//! The batch pipeline measures only end-to-end throughput; an online
//! adversary (the paper's eq. (11) detector run *as the fleet moves*)
//! cares about the per-slot step latency — how long the MEC-side
//! observer takes to ingest one slot, inject chaff, and update every
//! prefix likelihood — and especially about the tail, because one slow
//! slot stalls the whole observation window. This experiment drives
//! [`StreamingFleetEngine`] slot by slot, recording:
//!
//! * the **live accuracy curve** — per-slot tracking and detection
//!   accuracy as they evolve, i.e. what the adversary actually knows at
//!   slot `t`, before the horizon completes;
//! * **per-slot latency percentiles** (p50/p95/p99) over the measured
//!   step times, matching the fields the criterion shim now exports to
//!   the `BENCH_fleet` gate;
//! * the engine's **resident state** next to what the batch engine's
//!   full `services × horizon` observation grid would hold — the
//!   `O(width · ring + N)` vs `O(N · T)` bound the streaming design
//!   exists for.

use super::{build_model, SyntheticConfig};
use crate::report::{Figure, Series, Table};
use chaff_markov::models::ModelKind;
use chaff_markov::MarkovChain;
use chaff_sim::fleet::{FleetChaffPolicy, FleetChaffStrategy, FleetConfig};
use chaff_sim::streaming::StreamingFleetEngine;
use std::time::Instant;

/// Populations swept by the full experiment: the release acceptance
/// rung and the million-user rung (same rungs as `fleet_scale`, so the
/// two tables line up row for row).
pub const POPULATIONS: [usize; 2] = [100_000, 1_000_000];

/// Populations swept under `--quick`.
pub const QUICK_POPULATIONS: [usize; 2] = [10_000, 50_000];

/// Per-user chaff budgets swept (undefended baseline plus the
/// acceptance budget).
pub const BUDGETS: [usize; 2] = [0, 2];

/// Horizon used by the full sweep; matches `fleet_scale` so the
/// streamed and batch rows are directly comparable.
pub const STREAM_HORIZON: usize = 24;

/// One measured `(N, B)` cell of the streaming sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct StreamPoint {
    /// Fleet size `N`.
    pub num_users: usize,
    /// Per-user chaff budget `B`.
    pub budget: usize,
    /// Observed services `N · (1 + B)`.
    pub services: usize,
    /// Slots streamed.
    pub horizon: usize,
    /// Per-slot tracking accuracy, one entry per slot (the live curve).
    pub tracking_curve: Vec<f64>,
    /// Per-slot detection accuracy, one entry per slot.
    pub detection_curve: Vec<f64>,
    /// Median per-slot step latency, nanoseconds.
    pub p50_ns: f64,
    /// 95th-percentile per-slot step latency, nanoseconds.
    pub p95_ns: f64,
    /// 99th-percentile per-slot step latency, nanoseconds.
    pub p99_ns: f64,
    /// Engine-resident bytes after the run (ring + detector + lanes).
    pub state_bytes: usize,
    /// What the batch engine's full columnar observation grid would
    /// hold for the same population (4 bytes per cell).
    pub batch_grid_bytes: usize,
}

impl StreamPoint {
    /// Mean of the live tracking curve (the batch engine's
    /// time-averaged metric, reconstructed online).
    pub fn mean_tracking(&self) -> f64 {
        mean(&self.tracking_curve)
    }

    /// Mean of the live detection curve.
    pub fn mean_detection(&self) -> f64 {
        mean(&self.detection_curve)
    }

    /// Fraction of the batch grid the streaming engine keeps resident.
    pub fn memory_ratio(&self) -> f64 {
        self.state_bytes as f64 / self.batch_grid_bytes as f64
    }
}

fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    values.iter().sum::<f64>() / values.len() as f64
}

/// Nearest-rank percentile over per-slot latencies (same rule as the
/// vendored criterion shim, so the table and the `BENCH_fleet` gate
/// report the same statistic).
fn percentile(sorted_ns: &[f64], p: f64) -> f64 {
    if sorted_ns.is_empty() {
        return 0.0;
    }
    let rank = ((p / 100.0) * sorted_ns.len() as f64).ceil() as usize;
    sorted_ns[rank.clamp(1, sorted_ns.len()) - 1]
}

/// Streams one `(N, B)` cell to the horizon, timing every step.
///
/// # Errors
///
/// Propagates fleet-configuration and detection errors.
pub fn measure(
    chain: &MarkovChain,
    num_users: usize,
    budget: usize,
    horizon: usize,
    seed: u64,
    shards: Option<usize>,
) -> crate::Result<StreamPoint> {
    let mut config = FleetConfig::new(num_users, horizon).with_seed(seed);
    if let Some(shards) = shards {
        config = config.with_shards(shards);
    }
    let policy = FleetChaffPolicy::uniform(FleetChaffStrategy::Im, budget);
    let mut engine = StreamingFleetEngine::new(chain, config, &policy)?;
    let services = engine.num_services();
    let mut tracking_curve = Vec::with_capacity(horizon);
    let mut detection_curve = Vec::with_capacity(horizon);
    let mut latencies_ns = Vec::with_capacity(horizon);
    while {
        let started = Instant::now();
        let step = engine.step()?;
        let elapsed_ns = started.elapsed().as_secs_f64() * 1e9;
        if let Some(step) = &step {
            latencies_ns.push(elapsed_ns);
            tracking_curve.push(step.tracking_accuracy);
            detection_curve.push(step.detection_accuracy);
        }
        step.is_some()
    } {}
    latencies_ns.sort_by(f64::total_cmp);
    Ok(StreamPoint {
        num_users,
        budget,
        services,
        horizon,
        tracking_curve,
        detection_curve,
        p50_ns: percentile(&latencies_ns, 50.0),
        p95_ns: percentile(&latencies_ns, 95.0),
        p99_ns: percentile(&latencies_ns, 99.0),
        state_bytes: engine.state_bytes(),
        batch_grid_bytes: services * horizon * 4,
    })
}

/// Runs the sweep over `populations × budgets` at `horizon` slots.
/// Returns the summary table plus the live accuracy curves (one
/// tracking series per `(N, B)` cell) as a figure.
///
/// # Errors
///
/// Propagates model-construction and fleet errors.
pub fn run_with(
    config: &SyntheticConfig,
    populations: &[usize],
    budgets: &[usize],
    horizon: usize,
) -> crate::Result<(Table, Figure)> {
    let chain = build_model(ModelKind::NonSkewed, config)?;
    let mut table = Table::new(
        "fleet_stream",
        "streaming online detection: per-slot latency percentiles and live accuracy",
        vec![
            "N".into(),
            "B".into(),
            "services".into(),
            "tracking".into(),
            "detection".into(),
            "p50 us/slot".into(),
            "p95 us/slot".into(),
            "p99 us/slot".into(),
            "state MB".into(),
            "batch grid MB".into(),
        ],
    );
    let mut curves = Figure::new(
        "fleet_stream_curve",
        "live tracking accuracy while streaming (one series per N, B)",
        "slot",
        "tracking accuracy",
    );
    for (i, &n) in populations.iter().enumerate() {
        for (j, &b) in budgets.iter().enumerate() {
            let seed = config.seed ^ (0x57EA + (i * budgets.len() + j) as u64);
            let point = measure(&chain, n, b, horizon, seed, None)?;
            table.push(vec![
                point.num_users.to_string(),
                point.budget.to_string(),
                point.services.to_string(),
                format!("{:.4}", point.mean_tracking()),
                format!("{:.6}", point.mean_detection()),
                format!("{:.1}", point.p50_ns / 1e3),
                format!("{:.1}", point.p95_ns / 1e3),
                format!("{:.1}", point.p99_ns / 1e3),
                format!("{:.1}", point.state_bytes as f64 / 1e6),
                format!("{:.1}", point.batch_grid_bytes as f64 / 1e6),
            ]);
            curves.push(Series::from_values(
                format!("N={n} B={b}"),
                point.tracking_curve.clone(),
            ));
        }
    }
    Ok((table, curves))
}

/// Runs the full sweep.
///
/// # Errors
///
/// Propagates model-construction and fleet errors.
pub fn run(config: &SyntheticConfig) -> crate::Result<(Table, Figure)> {
    run_with(config, &POPULATIONS, &BUDGETS, STREAM_HORIZON)
}

#[cfg(test)]
mod tests {
    use super::*;
    use chaff_core::theory::im_tracking_accuracy;

    /// The acceptance rung: N = 100,000 streamed end to end with a
    /// horizon far past the ring depth, live accuracy matching eq. (11)
    /// and the resident state a small fraction of the batch grid.
    #[test]
    fn acceptance_one_hundred_thousand_users_streamed() {
        let config = SyntheticConfig::quick();
        let chain = build_model(ModelKind::NonSkewed, &config).unwrap();
        let point = measure(&chain, 100_000, 0, 24, 1709, None).unwrap();
        assert_eq!(point.services, 100_000);
        assert_eq!(point.tracking_curve.len(), 24);
        // Latency percentiles are ordered and positive.
        assert!(point.p50_ns > 0.0);
        assert!(point.p50_ns <= point.p95_ns && point.p95_ns <= point.p99_ns);
        // The live curve's mean lands on the eq. (11) prediction, like
        // the batch metric it reconstructs.
        let predicted = im_tracking_accuracy(chain.initial(), point.services);
        assert!(
            (point.mean_tracking() - predicted).abs() < 0.05,
            "tracking {} vs predicted {}",
            point.mean_tracking(),
            predicted
        );
        // The streaming engine never holds the batch grid.
        assert!(
            point.memory_ratio() < 1.0,
            "state {} vs grid {}",
            point.state_bytes,
            point.batch_grid_bytes
        );
    }

    /// The million-user smoke rung: short horizon, but the full
    /// per-slot path — draw, chaff, detect, live accuracy — at N = 10⁶.
    #[test]
    fn million_user_smoke() {
        let config = SyntheticConfig::quick();
        let chain = build_model(ModelKind::NonSkewed, &config).unwrap();
        let point = measure(&chain, 1_000_000, 0, 4, 1709, None).unwrap();
        assert_eq!(point.services, 1_000_000);
        assert_eq!(point.tracking_curve.len(), 4);
        assert!(point.p50_ns > 0.0 && point.p99_ns >= point.p50_ns);
        let predicted = im_tracking_accuracy(chain.initial(), point.services);
        assert!(
            (point.mean_tracking() - predicted).abs() < 0.05,
            "tracking {} vs predicted {}",
            point.mean_tracking(),
            predicted
        );
    }

    #[test]
    fn table_has_one_row_per_cell_and_one_curve_each() {
        let config = SyntheticConfig::quick();
        let (table, curves) = run_with(&config, &[64, 128], &[0, 1], 8).unwrap();
        assert_eq!(table.rows.len(), 4);
        assert_eq!(curves.series.len(), 4);
        assert_eq!(curves.series[0].y.len(), 8);
    }

    #[test]
    fn percentiles_use_nearest_rank() {
        let sorted: Vec<f64> = (1..=100).map(f64::from).collect();
        assert_eq!(percentile(&sorted, 50.0), 50.0);
        assert_eq!(percentile(&sorted, 95.0), 95.0);
        assert_eq!(percentile(&sorted, 99.0), 99.0);
        assert_eq!(percentile(&[7.0], 99.0), 7.0);
        assert_eq!(percentile(&[], 50.0), 0.0);
    }
}

//! Fig. 8: the trace-driven setting — (a) cell-tower layout over the San
//! Francisco box, (b) the empirical steady-state (occupancy) distribution
//! over the resulting Voronoi cells.

use super::TraceConfig;
use crate::report::{Figure, Series};
use chaff_markov::CellId;

/// Runs the experiment, returning the layout panel and the steady-state
/// panel.
///
/// # Errors
///
/// Propagates trace-pipeline errors.
pub fn run(config: &TraceConfig) -> crate::Result<(Figure, Figure)> {
    let dataset = config.build_dataset()?;

    let mut layout = Figure::new(
        "fig8a",
        format!(
            "cell tower layout ({} towers after 100 m filter)",
            dataset.cell_map().num_cells()
        ),
        "longitude",
        "latitude",
    );
    let towers = dataset.cell_map().towers();
    layout.push(Series::new(
        "towers",
        towers.iter().map(|t| t.lon).collect(),
        towers.iter().map(|t| t.lat).collect(),
    ));

    let model = dataset.model();
    let mut steady = Figure::new(
        "fig8b",
        "empirical steady-state distribution over cells",
        "cell",
        "probability",
    );
    let y: Vec<f64> = (0..model.num_states())
        .map(|i| model.initial().prob(CellId::new(i)))
        .collect();
    steady.push(Series::from_values("occupancy", y));
    Ok((layout, steady))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layout_and_steady_state_have_paper_shape() {
        let (layout, steady) = run(&TraceConfig::quick()).unwrap();
        let towers = &layout.series[0];
        assert!(!towers.x.is_empty());
        // All towers inside the SF box of Fig. 8a.
        for (&lon, &lat) in towers.x.iter().zip(&towers.y) {
            assert!((-122.6..=-122.1).contains(&lon));
            assert!((37.55..=37.95).contains(&lat));
        }
        // Fig. 8b: clearly spatially skewed — the max cell mass dwarfs the
        // uniform level, and mass sums to one.
        let occ = &steady.series[0].y;
        let uniform = 1.0 / occ.len() as f64;
        let max = occ.iter().copied().fold(0.0, f64::max);
        assert!(max > 5.0 * uniform, "max {max}, uniform {uniform}");
        assert!((occ.iter().sum::<f64>() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn full_scale_matches_paper_dimensions() {
        let (layout, steady) = run(&TraceConfig::default()).unwrap();
        let cells = layout.series[0].x.len();
        assert!((700..=1_100).contains(&cells), "cells = {cells}");
        assert_eq!(steady.series[0].y.len(), cells);
    }
}

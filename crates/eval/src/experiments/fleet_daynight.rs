//! Extension experiment: time-varying mobility — an epoch-aware detector
//! against a stationarity-assuming one on a commuter fleet.
//!
//! Everything upstream of this experiment models mobility as one chain
//! per class, implicitly assuming time-homogeneity over the window. Real
//! populations commute: the day-time chain and the night-time chain are
//! different objects, and the paper's Sec. VIII explicitly flags
//! time-varying mobility as the open extension. This experiment builds
//! the sharpest possible instance of that gap:
//!
//! * `2 · P` commuter classes over `2 · P` cells, arranged in *swapped
//!   pairs*: class `2p` lives at cell `a_p` and works at cell `b_p`,
//!   class `2p + 1` lives at `b_p` and works at `a_p`. Day chains anchor
//!   every user at the class's work cell, night chains at its home cell
//!   (with `1 − stickiness` uniform noise), under an
//!   [`EpochSchedule::day_night`] slot map.
//! * The fleet is simulated from the epoch-active chains
//!   ([`FleetSimulation`] with a non-stationary [`MobilityRegistry`]).
//! * Two eavesdroppers score the same observed services. Both play the
//!   paper's targeted game: to track a user of class `c` they rank every
//!   service under *that class's* model (a fleet-wide mixture argmax
//!   would crown one global winner per slot, telling us nothing about
//!   per-class model quality). The *epoch-aware* adversary uses the
//!   class's slot-active tables ([`DetectModel::Schedule`]); the
//!   *stationary* adversary uses the class's chains blended by epoch
//!   dwell time ([`EpochSchedule::slot_counts`]) — exactly what a
//!   stationarity-assuming estimator would recover from the same
//!   traffic.
//!
//! The swapped-pair construction makes the stationary observer's blind
//! spot structural, not statistical: with equal day and night dwell, the
//! blended chains of a pair are *identical*, so the stationary detector
//! cannot tell a class from its swapped twin and tracks the wrong anchor
//! about half the time. The epoch-aware detector separates them from the
//! first slot. Reported per budget `B`: tracking and detection accuracy
//! under both detectors, plus fleet throughput.

use crate::report::Table;
use chaff_core::detector::{BatchPrefixDetector, DetectInput, DetectModel};
use chaff_core::metrics::{
    detection_accuracy_series, time_average, tracking_accuracy_series_columnar,
};
use chaff_markov::{
    EpochSchedule, MarkovChain, MobilityRegistry, StateDistribution, TransitionMatrix,
};
use chaff_sim::fleet::{FleetChaffPolicy, FleetChaffStrategy, FleetConfig, FleetSimulation};
use std::time::Instant;

/// Per-user chaff budgets swept by the full experiment.
pub const BUDGETS: [usize; 2] = [0, 1];

/// Budgets swept under `--quick`.
pub const QUICK_BUDGETS: [usize; 1] = [0];

/// Configuration of the day/night commuter fleet.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DayNightConfig {
    /// Fleet size `N`.
    pub num_users: usize,
    /// Anchor pairs `P`: the fleet has `2P` classes over `2P` cells.
    pub num_pairs: usize,
    /// Day-epoch slots per cycle.
    pub day_slots: usize,
    /// Night-epoch slots per cycle.
    pub night_slots: usize,
    /// Day/night cycles simulated (horizon = `cycles · (day + night)`).
    pub cycles: usize,
    /// Probability mass a chain keeps on its epoch anchor (the rest is
    /// uniform noise).
    pub stickiness: f64,
    /// Experiment seed.
    pub seed: u64,
    /// Worker shards for simulation and detection; `None` sizes from
    /// available parallelism. Results never depend on this.
    pub shards: Option<usize>,
}

impl Default for DayNightConfig {
    fn default() -> Self {
        DayNightConfig {
            num_users: 10_000,
            num_pairs: 3,
            day_slots: 6,
            night_slots: 6,
            cycles: 2,
            stickiness: 0.9,
            seed: 1709,
            shards: None,
        }
    }
}

impl DayNightConfig {
    /// A reduced-scale configuration for tests and `--quick` runs.
    pub fn quick() -> Self {
        DayNightConfig {
            num_users: 400,
            num_pairs: 2,
            day_slots: 4,
            night_slots: 4,
            cycles: 2,
            stickiness: 0.9,
            seed: 1705,
            shards: None,
        }
    }

    /// Simulated slots: `cycles` full day/night periods (equal day and
    /// night dwell keeps the pair blends exactly symmetric).
    pub fn horizon(&self) -> usize {
        self.cycles * (self.day_slots + self.night_slots)
    }

    /// Commuter classes (`2P`): each anchor pair in both orientations.
    pub fn num_classes(&self) -> usize {
        2 * self.num_pairs
    }

    /// Cells (`2P`): one per anchor.
    pub fn num_cells(&self) -> usize {
        2 * self.num_pairs
    }
}

/// A chain that keeps `stickiness` mass on `anchor` from every cell (and
/// starts there with the same law): the one-parameter commuter regime.
fn anchored_chain(num_cells: usize, anchor: usize, stickiness: f64) -> crate::Result<MarkovChain> {
    let noise = (1.0 - stickiness) / num_cells as f64;
    let row: Vec<f64> = (0..num_cells)
        .map(|i| {
            if i == anchor {
                stickiness + noise
            } else {
                noise
            }
        })
        .collect();
    let matrix = TransitionMatrix::from_rows(vec![row.clone(); num_cells])?;
    let initial = StateDistribution::from_weights(row)?;
    Ok(MarkovChain::with_initial(matrix, initial)?)
}

/// The dwell-time blend of a class's day and night chains — the chain a
/// stationarity-assuming estimator converges to on this traffic.
fn blended_chain(
    day: &MarkovChain,
    night: &MarkovChain,
    day_weight: f64,
    night_weight: f64,
) -> crate::Result<MarkovChain> {
    let l = day.num_states();
    let total = day_weight + night_weight;
    let (wd, wn) = (day_weight / total, night_weight / total);
    let blend = |a: f64, b: f64| wd * a + wn * b;
    let rows: Vec<Vec<f64>> = (0..l)
        .map(|i| {
            (0..l)
                .map(|j| {
                    let (from, to) = (chaff_markov::CellId::new(i), chaff_markov::CellId::new(j));
                    blend(day.matrix().prob(from, to), night.matrix().prob(from, to))
                })
                .collect()
        })
        .collect();
    let initial: Vec<f64> = day
        .initial()
        .as_slice()
        .iter()
        .zip(night.initial().as_slice())
        .map(|(&a, &b)| blend(a, b))
        .collect();
    let matrix = TransitionMatrix::from_rows(rows)?;
    Ok(MarkovChain::with_initial(
        matrix,
        StateDistribution::from_weights(initial)?,
    )?)
}

/// Builds the two adversary models over one commuter population: the
/// epoch-aware registry (day and night chains under the day/night
/// schedule) and its stationary blend.
///
/// Both registries assign users round-robin over the same `2P` classes,
/// so user `u` means the same commuter under either detector.
///
/// # Errors
///
/// Propagates chain and registry shape errors.
pub fn build_registries(
    config: &DayNightConfig,
) -> crate::Result<(MobilityRegistry, MobilityRegistry)> {
    let cells = config.num_cells();
    let schedule = EpochSchedule::day_night(config.day_slots, config.night_slots)?;
    let mut day_chains = Vec::with_capacity(config.num_classes());
    let mut night_chains = Vec::with_capacity(config.num_classes());
    for class in 0..config.num_classes() {
        let pair = class / 2;
        let swapped = class % 2;
        let home = 2 * pair + swapped;
        let work = 2 * pair + 1 - swapped;
        day_chains.push(anchored_chain(cells, work, config.stickiness)?);
        night_chains.push(anchored_chain(cells, home, config.stickiness)?);
    }
    let counts = schedule.slot_counts(config.horizon());
    let blended: Vec<MarkovChain> = day_chains
        .iter()
        .zip(&night_chains)
        .map(|(d, n)| blended_chain(d, n, counts[0] as f64, counts[1] as f64))
        .collect::<crate::Result<_>>()?;
    let aware = MobilityRegistry::with_epochs(vec![day_chains, night_chains], schedule)?;
    let stationary = MobilityRegistry::new(blended)?;
    Ok((aware, stationary))
}

/// One measured budget cell: the same fleet outcome scored by both
/// detectors.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DayNightPoint {
    /// Fleet size `N`.
    pub num_users: usize,
    /// Commuter classes (`2P`).
    pub classes: usize,
    /// Per-user chaff budget `B`.
    pub budget: usize,
    /// Observed services (`N · (1 + B)`).
    pub services: usize,
    /// Simulated slots.
    pub horizon: usize,
    /// Mean time-average tracking accuracy, epoch-aware detector.
    pub aware_tracking: f64,
    /// Mean time-average tracking accuracy, stationary detector.
    pub stationary_tracking: f64,
    /// Mean time-average detection accuracy, epoch-aware detector.
    pub aware_detection: f64,
    /// Mean time-average detection accuracy, stationary detector.
    pub stationary_detection: f64,
    /// Fleet throughput, user-slots/sec over simulate + both detections.
    pub throughput: f64,
}

/// Sums time-average tracking and detection accuracy over one class's
/// users under that class's detections. Returns `(tracking, detection,
/// users)` un-normalised so callers can pool classes exactly.
fn accumulate_class(
    outcome: &chaff_sim::fleet::FleetOutcome,
    users: impl Iterator<Item = usize>,
    detections: &[chaff_core::detector::Detection],
) -> (f64, f64, usize) {
    let mut tracking = 0.0;
    let mut detection = 0.0;
    let mut count = 0usize;
    for user in users {
        let u = outcome.user_observed_indices[user];
        tracking += time_average(&tracking_accuracy_series_columnar(
            &outcome.observed,
            u,
            detections,
        ));
        detection += time_average(&detection_accuracy_series(u, detections));
        count += 1;
    }
    (tracking, detection, count)
}

/// Measures one budget cell: simulate the commuter fleet from the
/// epoch-active chains, then score the observed services under both
/// adversary models.
///
/// Both adversaries play the paper's targeted game: the services are
/// ranked once per *class* under that class's model (slot-active tables
/// for the epoch-aware one, the dwell-time blend for the stationary
/// one), and a user's accuracy is read from their own class's ranking.
///
/// # Errors
///
/// Propagates fleet and detection errors.
pub fn measure(
    aware: &MobilityRegistry,
    stationary: &MobilityRegistry,
    budget: usize,
    config: &DayNightConfig,
) -> crate::Result<DayNightPoint> {
    let mut fleet_config =
        FleetConfig::new(config.num_users, config.horizon()).with_seed(config.seed ^ 0xDA1_11677);
    if let Some(shards) = config.shards {
        fleet_config = fleet_config.with_shards(shards);
    }
    let detector = match config.shards {
        Some(s) => BatchPrefixDetector::with_shards(s),
        None => BatchPrefixDetector::new(),
    };
    let policy = FleetChaffPolicy::uniform(FleetChaffStrategy::Im, budget);
    let started = Instant::now();
    let outcome = FleetSimulation::with_registry(aware, fleet_config).run_chaffed(&policy)?;
    let mut aware_tracking = 0.0;
    let mut aware_detection = 0.0;
    let mut stationary_tracking = 0.0;
    let mut stationary_detection = 0.0;
    for class in 0..config.num_classes() {
        // The epoch-aware adversary models the target class with its
        // slot-active day/night chains...
        let per_epoch: Vec<Vec<MarkovChain>> = (0..aware.num_epochs())
            .map(|epoch| vec![aware.chain_at(class, epoch).clone()])
            .collect();
        let class_registry = MobilityRegistry::with_epochs(per_epoch, aware.schedule().clone())?;
        let aware_scores = detector.detect_prefixes(DetectInput::new(
            DetectModel::Schedule(&class_registry),
            &outcome.observed,
        ))?;
        // ...the stationary adversary with the class's dwell-time blend.
        let blended = stationary.chain(class).log_likelihood_table();
        let stationary_scores =
            detector.detect_prefixes(DetectInput::new(&blended, &outcome.observed))?;
        let members = (0..config.num_users).filter(|&u| aware.class_of(u) == class);
        let (t, d, _) = accumulate_class(&outcome, members.clone(), &aware_scores);
        aware_tracking += t;
        aware_detection += d;
        let (t, d, _) = accumulate_class(&outcome, members, &stationary_scores);
        stationary_tracking += t;
        stationary_detection += d;
    }
    let n = config.num_users as f64;
    let aware_tracking = aware_tracking / n;
    let aware_detection = aware_detection / n;
    let stationary_tracking = stationary_tracking / n;
    let stationary_detection = stationary_detection / n;
    let elapsed = started.elapsed().as_secs_f64();
    Ok(DayNightPoint {
        num_users: config.num_users,
        classes: config.num_classes(),
        budget,
        services: outcome.observed.num_trajectories(),
        horizon: config.horizon(),
        aware_tracking,
        stationary_tracking,
        aware_detection,
        stationary_detection,
        throughput: outcome.stats.user_slots as f64 / elapsed.max(f64::MIN_POSITIVE),
    })
}

/// Runs the budget sweep: one registry pair, one fleet run per budget,
/// both detectors on each run.
///
/// # Errors
///
/// Propagates chain, fleet and detection errors.
pub fn run_with(config: &DayNightConfig, budgets: &[usize]) -> crate::Result<Table> {
    let (aware, stationary) = build_registries(config)?;
    let mut table = Table::new(
        "fleet_daynight",
        "day/night commuter fleet: epoch-aware vs stationarity-assuming detection",
        vec![
            "N".into(),
            "classes".into(),
            "B".into(),
            "services".into(),
            "T".into(),
            "tracking (epoch)".into(),
            "tracking (stationary)".into(),
            "detection (epoch)".into(),
            "detection (stationary)".into(),
            "user-slots/s".into(),
        ],
    );
    for &budget in budgets {
        let point = measure(&aware, &stationary, budget, config)?;
        table.push(vec![
            point.num_users.to_string(),
            point.classes.to_string(),
            point.budget.to_string(),
            point.services.to_string(),
            point.horizon.to_string(),
            format!("{:.4}", point.aware_tracking),
            format!("{:.4}", point.stationary_tracking),
            format!("{:.6}", point.aware_detection),
            format!("{:.6}", point.stationary_detection),
            format!("{:.0}", point.throughput),
        ]);
    }
    Ok(table)
}

/// Runs the full sweep.
///
/// # Errors
///
/// Propagates chain, fleet and detection errors.
pub fn run(config: &DayNightConfig) -> crate::Result<Table> {
    run_with(config, &BUDGETS)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn swapped_pair_blends_are_identical_but_epochs_differ() {
        let config = DayNightConfig::quick();
        let (aware, stationary) = build_registries(&config).unwrap();
        assert_eq!(aware.num_epochs(), 2);
        assert_eq!(stationary.num_epochs(), 1);
        assert_eq!(aware.num_classes(), config.num_classes());
        for pair in 0..config.num_pairs {
            let (a, b) = (2 * pair, 2 * pair + 1);
            // The stationary observer cannot tell a class from its twin...
            assert_eq!(
                stationary.chain(a).matrix(),
                stationary.chain(b).matrix(),
                "pair {pair} blends must coincide"
            );
            // ...while the epoch-resolved chains are anchored oppositely.
            assert_ne!(aware.chain_at(a, 0).matrix(), aware.chain_at(b, 0).matrix());
            assert_eq!(aware.chain_at(a, 0).matrix(), aware.chain_at(b, 1).matrix());
        }
    }

    #[test]
    fn epoch_aware_detection_beats_stationary_at_quick_scale() {
        let config = DayNightConfig::quick();
        let (aware, stationary) = build_registries(&config).unwrap();
        let point = measure(&aware, &stationary, 0, &config).unwrap();
        assert_eq!(point.services, config.num_users);
        // The structural blind spot: the stationary detector confuses a
        // commuter with its swapped twin, so it tracks the wrong anchor
        // about half the time. Require a wide, not marginal, gap.
        assert!(
            point.aware_tracking > point.stationary_tracking + 0.15,
            "aware {} vs stationary {}",
            point.aware_tracking,
            point.stationary_tracking
        );
        // Per-slot argmax mass sums to 1 within each class's ranking, so
        // a class's members can share at most 1.0 of detection credit per
        // slot and the fleet mean is bounded by classes/N under any
        // model. The epoch-aware ranking keeps (nearly) all of that mass
        // on in-class services; the stationary one leaks about half to
        // each class's swapped twin.
        let ceiling = config.num_classes() as f64 / config.num_users as f64;
        assert!(point.aware_detection <= ceiling + 1e-9);
        assert!(point.stationary_detection <= ceiling + 1e-9);
        assert!(
            point.aware_detection > 0.8 * ceiling,
            "aware detection {} vs ceiling {}",
            point.aware_detection,
            ceiling
        );
        assert!(
            point.stationary_detection < 0.8 * point.aware_detection,
            "stationary detection {} should trail aware {}",
            point.stationary_detection,
            point.aware_detection
        );
    }

    #[test]
    fn results_are_shard_count_independent() {
        let mut config = DayNightConfig::quick();
        config.num_users = 120;
        let (aware, stationary) = build_registries(&config).unwrap();
        let mut reference: Option<DayNightPoint> = None;
        for shards in [1usize, 2, 7] {
            config.shards = Some(shards);
            let point = measure(&aware, &stationary, 1, &config).unwrap();
            if let Some(r) = &reference {
                assert_eq!(r.aware_tracking.to_bits(), point.aware_tracking.to_bits());
                assert_eq!(
                    r.stationary_tracking.to_bits(),
                    point.stationary_tracking.to_bits()
                );
                assert_eq!(r.services, point.services);
            } else {
                reference = Some(point);
            }
        }
    }

    #[test]
    fn table_has_one_row_per_budget() {
        let mut config = DayNightConfig::quick();
        config.num_users = 60;
        let table = run_with(&config, &[0, 1]).unwrap();
        assert_eq!(table.rows.len(), 2);
        assert_eq!(table.columns.len(), 10);
    }
}

//! Fig. 4: steady-state distributions of the four synthetic mobility
//! models. The deviation from uniform measures spatial skewness.

use super::{build_model, SyntheticConfig};
use crate::report::{Figure, Series};
use chaff_markov::models::ModelKind;
use chaff_markov::CellId;

/// Runs the experiment for one model, producing a bar-style figure with
/// one point per cell.
///
/// # Errors
///
/// Propagates model-construction errors.
pub fn run(config: &SyntheticConfig, kind: ModelKind) -> crate::Result<Figure> {
    let chain = build_model(kind, config)?;
    let mut figure = Figure::new(
        format!("fig4{}", kind.letter()),
        format!("steady-state distribution, {kind}"),
        "cell",
        "probability",
    );
    let y: Vec<f64> = (0..chain.num_states())
        .map(|i| chain.initial().prob(CellId::new(i)))
        .collect();
    figure.push(Series::from_values(kind.to_string(), y));
    Ok(figure)
}

/// Runs all four panels.
///
/// # Errors
///
/// Propagates model-construction errors.
pub fn run_all(config: &SyntheticConfig) -> crate::Result<Vec<Figure>> {
    ModelKind::ALL.iter().map(|&k| run(config, k)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn panels_match_figure_4_shapes() {
        let config = SyntheticConfig::default();
        let figures = run_all(&config).unwrap();
        assert_eq!(figures.len(), 4);
        let series = |i: usize| &figures[i].series[0].y;

        // (a) non-skewed: all masses moderate (no cell above 0.2).
        assert!(series(0).iter().all(|&p| p < 0.2), "{:?}", series(0));
        // (b) spatially-skewed: the hot cell (index 4) dominates at ~0.3.
        let b = series(1);
        assert!(b[4] > 0.2, "{b:?}");
        assert!(b[4] >= b.iter().copied().fold(0.0, f64::max) - 1e-12);
        // (c) temporally-skewed: uniform (each cell at 1/L).
        for &p in series(2) {
            assert!((p - 0.1).abs() < 1e-4, "{:?}", series(2));
        }
        // (d) both: geometric ramp peaking at the last cell near 0.5.
        let d = series(3);
        assert!(d[9] > 0.3 && d[9] > d[0] * 50.0, "{d:?}");
        // All are normalized.
        for i in 0..4 {
            let sum: f64 = series(i).iter().sum();
            assert!((sum - 1.0).abs() < 1e-6);
        }
    }
}

//! Fig. 6: the empirical CDF of the per-slot log-likelihood gap `c_t`
//! (eqs. 14–15) under the CML and MO strategies.
//!
//! `E[c_t] < 0` is the hypothesis of Theorems V.4/V.5 — when the whole
//! CDF sits left of zero, the chaff's moves are uniformly more likely
//! than the user's and the tracking accuracy decays exponentially.

use super::{build_model, SyntheticConfig};
use crate::montecarlo;
use crate::report::{Figure, Series};
use chaff_core::likelihood::{ct_series, empirical_cdf};
use chaff_core::strategy::{ChaffStrategy, CmlStrategy, MoStrategy};
use chaff_markov::models::ModelKind;
use chaff_markov::MarkovChain;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Maximum number of points kept per CDF curve (uniform subsample).
const MAX_CDF_POINTS: usize = 256;

fn one_run(chain: &MarkovChain, horizon: usize, seed: u64) -> (Vec<f64>, Vec<f64>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let user = chain.sample_trajectory(horizon, &mut rng);
    let collect = |strategy: &dyn ChaffStrategy, rng: &mut StdRng| -> Vec<f64> {
        let chaff = &strategy.generate(chain, &user, 1, rng).expect("valid user")[0];
        // Skip the initial-distribution term c_1: the figure studies the
        // steady per-transition gap.
        ct_series(chain, &user, chaff).expect("equal lengths")[1..].to_vec()
    };
    (
        collect(&CmlStrategy, &mut rng),
        collect(&MoStrategy, &mut rng),
    )
}

fn downsample(cdf: Vec<(f64, f64)>) -> Series {
    let n = cdf.len();
    let stride = n.div_ceil(MAX_CDF_POINTS).max(1);
    let mut x = Vec::new();
    let mut y = Vec::new();
    for (i, (v, p)) in cdf.into_iter().enumerate() {
        if i % stride == 0 || i == n - 1 {
            x.push(v);
            y.push(p);
        }
    }
    Series::new(String::new(), x, y)
}

/// Runs the experiment for one mobility model.
///
/// # Errors
///
/// Propagates model-construction errors.
pub fn run(config: &SyntheticConfig, kind: ModelKind) -> crate::Result<Figure> {
    let chain = build_model(kind, config)?;
    let per_run = montecarlo::run_parallel(config.runs, config.seed ^ 0x6, |_, seed| {
        one_run(&chain, config.horizon, seed)
    });
    let mut cml_samples = Vec::new();
    let mut mo_samples = Vec::new();
    for (cml, mo) in per_run {
        cml_samples.extend(cml);
        mo_samples.extend(mo);
    }
    let mut figure = Figure::new(
        format!("fig6{}", kind.letter()),
        format!("distribution of c_t, {kind}"),
        "c_t",
        "CDF",
    );
    let mut cml = downsample(empirical_cdf(cml_samples));
    cml.label = "CML".into();
    figure.push(cml);
    let mut mo = downsample(empirical_cdf(mo_samples));
    mo.label = "MO".into();
    figure.push(mo);
    Ok(figure)
}

/// Runs all four panels.
///
/// # Errors
///
/// Propagates model-construction errors.
pub fn run_all(config: &SyntheticConfig) -> crate::Result<Vec<Figure>> {
    ModelKind::ALL.iter().map(|&k| run(config, k)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cdfs_are_valid_and_mostly_negative() {
        let config = SyntheticConfig {
            runs: 40,
            horizon: 40,
            ..SyntheticConfig::default()
        };
        let figure = run(&config, ModelKind::NonSkewed).unwrap();
        assert_eq!(figure.series.len(), 2);
        for series in &figure.series {
            // Monotone CDF ending at 1.
            for w in series.y.windows(2) {
                assert!(w[1] >= w[0]);
            }
            assert!((series.y.last().unwrap() - 1.0).abs() < 1e-9);
            // Fig. 6(a): on the non-skewed model both strategies keep c_t
            // below zero almost always — the mass at c_t >= 0 is tiny.
            let frac_nonneg = series
                .x
                .iter()
                .zip(&series.y)
                .filter(|(&x, _)| x >= 0.0)
                .map(|(_, &y)| 1.0 - y)
                .next_back()
                .unwrap_or(0.0);
            assert!(frac_nonneg < 0.2, "{}: {frac_nonneg}", series.label);
        }
    }

    #[test]
    fn spatiotemporal_model_shows_heavier_upper_tail_for_mo() {
        // Fig. 6(d): under the doubly-skewed model MO's c_t distribution
        // extends into positive territory (it sometimes concedes
        // likelihood to dodge), while CML's stays negative.
        let config = SyntheticConfig {
            runs: 40,
            horizon: 60,
            ..SyntheticConfig::default()
        };
        let figure = run(&config, ModelKind::SpatioTemporallySkewed).unwrap();
        let max_x = |label: &str| {
            figure
                .series
                .iter()
                .find(|s| s.label == label)
                .unwrap()
                .x
                .iter()
                .copied()
                .fold(f64::NEG_INFINITY, f64::max)
        };
        assert!(max_x("MO") >= max_x("CML") - 1e-9);
    }
}

//! Fig. 10: the trace-driven evaluation of the *advanced* eavesdropper
//! with two chaffs per protected user.
//!
//! The eavesdropper knows the strategy: it computes the deterministic
//! strategy map `Γ(x)` for every observed trajectory, filters trajectories
//! that equal some `Γ(x)`, then runs prefix-ML on the survivors. The
//! deterministic strategies (ML, OO, MO) are thereby neutralized, while
//! the randomized RML/ROO substantially reduce accuracy (RMO shares MO's
//! likelihood-domination weakness on traces, Sec. VII-B3).
//!
//! Computing `Γ_OO` is a full dynamic program per trajectory, so the maps
//! of the (unchanging) trace pool are computed once per base strategy and
//! reused across protected users.

use super::{rank_users_by_trackability, TraceConfig};
use crate::report::Table;
use chaff_core::detector::{AdvancedDetector, MlDetector};
use chaff_core::metrics::{time_average, tracking_accuracy_series};
use chaff_core::strategy::{ChaffStrategy, StrategyKind};
use chaff_markov::{MarkovChain, Trajectory};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// The strategy columns of Fig. 10, in the paper's order.
const STRATEGIES: [StrategyKind; 7] = [
    StrategyKind::Im,
    StrategyKind::Ml,
    StrategyKind::Oo,
    StrategyKind::Mo,
    StrategyKind::Rmo,
    StrategyKind::Rml,
    StrategyKind::Roo,
];

/// Number of chaffs per protected user (the paper's "2 chaffs").
const NUM_CHAFFS: usize = 2;

/// Which deterministic *base* map the advanced eavesdropper uses against
/// each strategy (robust variants are predicted by their base strategy;
/// IM has no map).
fn base_map_of(kind: StrategyKind) -> Option<StrategyKind> {
    match kind {
        StrategyKind::Im => None,
        StrategyKind::Ml | StrategyKind::Rml => Some(StrategyKind::Ml),
        StrategyKind::Oo | StrategyKind::Roo => Some(StrategyKind::Oo),
        StrategyKind::Mo | StrategyKind::Rmo => Some(StrategyKind::Mo),
        _ => None,
    }
}

/// Advanced-eavesdropper accuracy for `user` given chaffs and the cached
/// pool maps for the base strategy in use.
fn advanced_accuracy(
    model: &MarkovChain,
    pool: &[Trajectory],
    pool_maps: Option<&[Option<Trajectory>]>,
    base: Option<&dyn ChaffStrategy>,
    user: usize,
    chaffs: Vec<Trajectory>,
) -> f64 {
    let mut observed = pool.to_vec();
    observed.extend(chaffs);
    let candidates: Option<Vec<usize>> = match (pool_maps, base) {
        (Some(maps), Some(base)) => {
            let mut all_maps = maps.to_vec();
            for extra in &observed[pool.len()..] {
                all_maps.push(base.deterministic_map(model, extra));
            }
            let survivors = AdvancedDetector::surviving_from_maps(&observed, &all_maps);
            if survivors.is_empty() {
                None // everything filtered: plain random guess == all
            } else {
                Some(survivors)
            }
        }
        _ => None,
    };
    let detections = MlDetector
        .detect_prefixes_among(model, &observed, candidates.as_deref())
        .expect("validated observations");
    time_average(&tracking_accuracy_series(&observed, user, &detections))
}

/// Runs the experiment.
///
/// # Errors
///
/// Propagates trace-pipeline and strategy errors.
pub fn run(config: &TraceConfig) -> crate::Result<Table> {
    let dataset = config.build_dataset()?;
    let model = dataset.model();
    let pool = dataset.trajectories();
    let ranked = rank_users_by_trackability(&dataset);
    let top_k = config.top_k.min(ranked.len());

    // Cache Γ_base(x) for every pool trajectory, per base strategy.
    let mut pool_map_cache: std::collections::HashMap<StrategyKind, Vec<Option<Trajectory>>> =
        std::collections::HashMap::new();
    for base_kind in [StrategyKind::Ml, StrategyKind::Oo, StrategyKind::Mo] {
        let base = base_kind.build();
        let maps: Vec<Option<Trajectory>> = pool
            .iter()
            .map(|x| base.deterministic_map(model, x))
            .collect();
        pool_map_cache.insert(base_kind, maps);
    }

    let mut table = Table::new(
        "fig10",
        "advanced eavesdropper, 2 chaffs (time-average accuracy)",
        {
            let mut cols = vec!["user".into()];
            cols.extend(STRATEGIES.iter().map(|s| s.to_string()));
            cols
        },
    );
    for (rank, &(user, _)) in ranked.iter().take(top_k).enumerate() {
        let mut row = vec![format!("user{} (#{})", rank + 1, user)];
        for kind in STRATEGIES {
            let strategy = kind.build();
            let base_kind = base_map_of(kind);
            let base = base_kind.map(StrategyKind::build);
            let pool_maps = base_kind.map(|k| pool_map_cache[&k].as_slice());
            // Randomized strategies averaged over config.im_runs draws;
            // deterministic ones need a single draw.
            let draws = if kind.is_deterministic() {
                1
            } else {
                config.im_runs
            };
            let mut total = 0.0;
            for draw in 0..draws {
                let mut rng =
                    StdRng::seed_from_u64(config.seed ^ ((user as u64) << 16) ^ draw as u64);
                let chaffs = strategy.generate(model, &pool[user], NUM_CHAFFS, &mut rng)?;
                total += advanced_accuracy(
                    model,
                    pool,
                    pool_maps,
                    base.as_deref().map(|b| b as &dyn ChaffStrategy),
                    user,
                    chaffs,
                );
            }
            row.push(format!("{:.4}", total / draws as f64));
        }
        table.push(row);
    }
    Ok(table)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn robust_strategies_beat_deterministic_ones_under_the_advanced_eavesdropper() {
        let config = TraceConfig::quick();
        let table = run(&config).unwrap();
        assert_eq!(table.rows.len(), config.top_k);
        let col = |name: &str| {
            table
                .columns
                .iter()
                .position(|c| c == name)
                .unwrap_or_else(|| panic!("missing column {name}"))
        };
        let parse = |cell: &str| cell.parse::<f64>().unwrap();
        // Average over the top users for a stable comparison.
        let avg = |name: &str| {
            table.rows.iter().map(|r| parse(&r[col(name)])).sum::<f64>() / table.rows.len() as f64
        };
        // Deterministic OO is neutralized (filtered out), robust ROO is
        // not: ROO must do strictly better on average.
        assert!(
            avg("ROO") < avg("OO"),
            "roo {} !< oo {}",
            avg("ROO"),
            avg("OO")
        );
        // RML's surviving chaff parks in heavy cells, which can *add*
        // co-location for crowd-tracked users (the same effect that gives
        // the ML strategy its eq.-12 floor), so only near-parity is a
        // stable claim at reduced scale.
        assert!(
            avg("RML") < avg("ML") + 0.1,
            "rml {} !< ml {} + 0.1",
            avg("RML"),
            avg("ML")
        );
        // On the most-trackable (detection-dominated) user, ROO must not
        // do worse than the neutralized OO.
        let top = &table.rows[0];
        assert!(
            parse(&top[col("ROO")]) <= parse(&top[col("OO")]) + 1e-9,
            "top user: roo {} > oo {}",
            parse(&top[col("ROO")]),
            parse(&top[col("OO")])
        );
    }
}

//! Analysis-versus-simulation checks for Sec. V.
//!
//! For each synthetic model: the exact IM accuracy of eq. (11) against
//! Monte Carlo, the exact ML accuracy of eq. (12) against Monte Carlo,
//! the CML product-chain drift `E[c_t]` (the hypothesis of Theorem V.4),
//! and the Theorem V.4 bound evaluated at a long horizon.

use super::{build_model, SyntheticConfig};
use crate::montecarlo;
use crate::report::Table;
use chaff_core::detector::MlDetector;
use chaff_core::metrics::{time_average, tracking_accuracy_series};
use chaff_core::strategy::{ChaffStrategy, ImStrategy, MlStrategy};
use chaff_core::theory::{im_tracking_accuracy, ml_tracking_accuracy, TheoremV4Bound};
use chaff_markov::models::ModelKind;
use chaff_markov::MarkovChain;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Horizon at which the Theorem V.4 bound is reported (it carries a
/// mixing-time prefactor, so it binds only at long horizons).
const BOUND_HORIZON: usize = 100_000;

fn simulate_strategy(
    chain: &MarkovChain,
    strategy: &(dyn ChaffStrategy + Sync),
    num_chaffs: usize,
    config: &SyntheticConfig,
    salt: u64,
) -> f64 {
    let accuracies = montecarlo::run_parallel(config.runs, config.seed ^ salt, |_, seed| {
        let mut rng = StdRng::seed_from_u64(seed);
        let user = chain.sample_trajectory(config.horizon, &mut rng);
        let chaffs = strategy
            .generate(chain, &user, num_chaffs, &mut rng)
            .expect("valid user");
        let mut observed = vec![user];
        observed.extend(chaffs);
        let detections = MlDetector
            .detect_prefixes(chain, &observed)
            .expect("validated observations");
        time_average(&tracking_accuracy_series(&observed, 0, &detections))
    });
    accuracies.iter().sum::<f64>() / accuracies.len().max(1) as f64
}

/// Simulates the uniform-random-guess eavesdropper that eq. (10)/(11)
/// models *exactly*: pick any of the `N` statistically identical
/// trajectories uniformly, score per-slot co-location with the user.
///
/// The ML detector deviates slightly upward on skewed models: when it
/// guesses wrong it has preferentially selected a high-likelihood chaff,
/// which co-locates with the user more often than an average one. The
/// table reports both so the gap is visible.
fn simulate_im_random_guess(
    chain: &MarkovChain,
    num_trajectories: usize,
    config: &SyntheticConfig,
    salt: u64,
) -> f64 {
    use rand::Rng;
    let accuracies = montecarlo::run_parallel(config.runs, config.seed ^ salt, |_, seed| {
        let mut rng = StdRng::seed_from_u64(seed);
        let user = chain.sample_trajectory(config.horizon, &mut rng);
        let guess = rng.random_range(0..num_trajectories);
        if guess == 0 {
            1.0
        } else {
            let chaff = chain.sample_trajectory(config.horizon, &mut rng);
            user.coincidences(&chaff) as f64 / config.horizon as f64
        }
    });
    accuracies.iter().sum::<f64>() / accuracies.len().max(1) as f64
}

/// Runs the experiment.
///
/// # Errors
///
/// Propagates model and product-chain construction errors.
pub fn run(config: &SyntheticConfig) -> crate::Result<Table> {
    let mut table = Table::new(
        "theory",
        "closed forms and bounds (Sec. V) vs simulation",
        vec![
            "model".into(),
            "P_IM eq.(11) N=2".into(),
            "P_IM sim guess N=2".into(),
            "P_IM sim ML N=2".into(),
            "P_IM eq.(11) N=10".into(),
            "P_IM sim guess N=10".into(),
            "P_IM sim ML N=10".into(),
            "P_ML eq.(12)".into(),
            "P_ML sim".into(),
            "E[c_t] CML".into(),
            format!("Thm V.4 bound @T={BOUND_HORIZON}"),
        ],
    );
    for kind in ModelKind::ALL {
        let chain = build_model(kind, config)?;
        let pi = chain.initial();
        let im2_formula = im_tracking_accuracy(pi, 2);
        let im10_formula = im_tracking_accuracy(pi, 10);
        let im2_guess = simulate_im_random_guess(&chain, 2, config, 0x1111);
        let im10_guess = simulate_im_random_guess(&chain, 10, config, 0x1112);
        let im2_sim = simulate_strategy(&chain, &ImStrategy, 1, config, 0x1101);
        let im10_sim = simulate_strategy(&chain, &ImStrategy, 9, config, 0x1102);
        let ml_formula = ml_tracking_accuracy(&chain, config.horizon)?;
        let ml_sim = simulate_strategy(&chain, &MlStrategy, 1, config, 0x1103);
        let (ect, bound_text) = match TheoremV4Bound::compute(&chain, 0.01, 20_000) {
            Ok(bound) => {
                let text = match bound.evaluate(BOUND_HORIZON) {
                    Some(b) => format!("{b:.2e}"),
                    None => "n/a (hypothesis fails)".into(),
                };
                (format!("{:.3}", -bound.mu), text)
            }
            Err(_) => ("n/a".into(), "n/a (no mixing)".into()),
        };
        table.push(vec![
            format!("({})", kind.letter()),
            format!("{im2_formula:.4}"),
            format!("{im2_guess:.4}"),
            format!("{im2_sim:.4}"),
            format!("{im10_formula:.4}"),
            format!("{im10_guess:.4}"),
            format!("{im10_sim:.4}"),
            format!("{ml_formula:.4}"),
            format!("{ml_sim:.4}"),
            ect,
            bound_text,
        ]);
    }
    Ok(table)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formulas_match_simulation() {
        let config = SyntheticConfig {
            runs: 300,
            horizon: 50,
            ..SyntheticConfig::default()
        };
        let table = run(&config).unwrap();
        assert_eq!(table.rows.len(), 4);
        for row in &table.rows {
            // eq. (11) models the random-guess eavesdropper exactly.
            let im2_formula: f64 = row[1].parse().unwrap();
            let im2_guess: f64 = row[2].parse().unwrap();
            assert!(
                (im2_formula - im2_guess).abs() < 0.06,
                "{}: eq11 {im2_formula} vs guess sim {im2_guess}",
                row[0]
            );
            let im10_formula: f64 = row[4].parse().unwrap();
            let im10_guess: f64 = row[5].parse().unwrap();
            assert!(
                (im10_formula - im10_guess).abs() < 0.06,
                "{}: eq11 {im10_formula} vs guess sim {im10_guess}",
                row[0]
            );
            // The ML detector tracks slightly better on skewed models
            // (when wrong it has preferentially picked a high-likelihood
            // chaff); allow that one-sided bias.
            let im2_ml: f64 = row[3].parse().unwrap();
            assert!(
                im2_ml > im2_formula - 0.06 && im2_ml < im2_formula + 0.15,
                "{}: eq11 {im2_formula} vs ML sim {im2_ml}",
                row[0]
            );
            let ml_formula: f64 = row[7].parse().unwrap();
            let ml_sim: f64 = row[8].parse().unwrap();
            assert!(
                (ml_formula - ml_sim).abs() < 0.06,
                "{}: eq12 {ml_formula} vs sim {ml_sim}",
                row[0]
            );
        }
    }

    #[test]
    fn random_model_satisfies_the_decay_hypothesis() {
        let config = SyntheticConfig::quick();
        let table = run(&config).unwrap();
        // Model (a): E[c_t] < 0 and the long-horizon bound is tiny.
        let row_a = &table.rows[0];
        let ect: f64 = row_a[9].parse().unwrap();
        assert!(ect < 0.0, "E[ct] = {ect}");
        let bound: f64 = row_a[10].parse().unwrap();
        assert!(bound < 0.01, "bound = {bound}");
    }
}

//! The unified experiment API (ISSUE 8 satellite): one trait, one
//! registry, one dispatch path.
//!
//! Every reproduced figure/table used to be wired into the `repro`
//! binary through a hand-written `match` arm with its own argument
//! plumbing; adding an experiment meant editing the binary in three
//! places. Now each experiment is an [`Experiment`] implementation
//! registered in [`registry`]: the binary resolves names by lookup
//! ([`find`]), `all` iterates the registry in its canonical order, and
//! an experiment's scale knobs come from one shared [`ExperimentCtx`].

use super::{SyntheticConfig, TraceConfig};
use crate::report::{Figure, Table};

/// Everything an experiment may need at run time: the scale
/// configurations (already adjusted for `--runs` / `--seed` /
/// `--quick`) plus the raw override flags for experiments with their
/// own config types.
#[derive(Debug, Clone)]
pub struct ExperimentCtx {
    /// Synthetic-model scales (Sec. VII-A).
    pub synth: SyntheticConfig,
    /// Trace-driven scales (Sec. VII-B).
    pub trace: TraceConfig,
    /// Whether `--quick` was requested (reduced sweeps).
    pub quick: bool,
    /// Raw `--seed` override, for experiments with their own config
    /// types.
    pub seed: Option<u64>,
}

impl ExperimentCtx {
    /// A quick-scale context for tests.
    pub fn quick() -> Self {
        ExperimentCtx {
            synth: SyntheticConfig::quick(),
            trace: TraceConfig::quick(),
            quick: true,
            seed: None,
        }
    }
}

/// What one experiment run produced: figures and tables, in emission
/// order.
#[derive(Debug, Default)]
pub struct ExperimentOutput {
    /// Figures to render/persist, in order.
    pub figures: Vec<Figure>,
    /// Tables to render/persist, in order.
    pub tables: Vec<Table>,
}

impl ExperimentOutput {
    /// An output holding one table.
    pub fn table(table: Table) -> Self {
        ExperimentOutput {
            figures: Vec::new(),
            tables: vec![table],
        }
    }

    /// An output holding the given figures.
    pub fn figures(figures: Vec<Figure>) -> Self {
        ExperimentOutput {
            figures,
            tables: Vec::new(),
        }
    }
}

/// One reproducible experiment: a stable name and a run entry.
pub trait Experiment {
    /// The name the `repro` binary resolves (e.g. `"fig5"`).
    fn name(&self) -> &'static str;

    /// Runs the experiment at the context's scales.
    ///
    /// # Errors
    ///
    /// Propagates simulation, persistence and reporting errors.
    fn run(&self, ctx: &ExperimentCtx) -> crate::Result<ExperimentOutput>;
}

macro_rules! experiment {
    ($struct_name:ident, $name:literal, $ctx:ident, $body:expr) => {
        struct $struct_name;
        impl Experiment for $struct_name {
            fn name(&self) -> &'static str {
                $name
            }
            fn run(&self, $ctx: &ExperimentCtx) -> crate::Result<ExperimentOutput> {
                $body
            }
        }
    };
}

experiment!(Table1, "table1", ctx, {
    Ok(ExperimentOutput::table(super::table1::run(&ctx.synth)?))
});

experiment!(Fig4, "fig4", ctx, {
    Ok(ExperimentOutput::figures(super::fig4::run_all(&ctx.synth)?))
});

experiment!(Fig5, "fig5", ctx, {
    Ok(ExperimentOutput::figures(super::fig5::run_all(&ctx.synth)?))
});

experiment!(Fig6, "fig6", ctx, {
    Ok(ExperimentOutput::figures(super::fig6::run_all(&ctx.synth)?))
});

experiment!(Fig7, "fig7", ctx, {
    Ok(ExperimentOutput::figures(super::fig7::run_all(&ctx.synth)?))
});

experiment!(Fig8, "fig8", ctx, {
    let (layout, steady) = super::fig8::run(&ctx.trace)?;
    Ok(ExperimentOutput::figures(vec![layout, steady]))
});

experiment!(Fig9, "fig9", ctx, {
    let (panel_a, table) = super::fig9::run(&ctx.trace)?;
    Ok(ExperimentOutput {
        figures: vec![panel_a],
        tables: vec![table],
    })
});

experiment!(Fig10, "fig10", ctx, {
    Ok(ExperimentOutput::table(super::fig10::run(&ctx.trace)?))
});

experiment!(Theory, "theory", ctx, {
    Ok(ExperimentOutput::table(super::theory::run(&ctx.synth)?))
});

experiment!(Multiuser, "multiuser", ctx, {
    let mut figures = Vec::new();
    for kind in chaff_markov::models::ModelKind::ALL {
        figures.push(super::multiuser::run(&ctx.synth, kind)?);
    }
    Ok(ExperimentOutput::figures(figures))
});

experiment!(FleetScaling, "fleet_scaling", ctx, {
    let populations: &[usize] = if ctx.quick {
        &super::fleet_scaling::QUICK_POPULATIONS
    } else {
        &super::fleet_scaling::POPULATIONS
    };
    Ok(ExperimentOutput::table(
        super::fleet_scaling::run_with_populations(&ctx.synth, populations)?,
    ))
});

experiment!(FleetChaff, "fleet_chaff", ctx, {
    let (populations, budgets): (&[usize], &[usize]) = if ctx.quick {
        (
            &super::fleet_chaff::QUICK_POPULATIONS,
            &super::fleet_chaff::QUICK_BUDGETS,
        )
    } else {
        (
            &super::fleet_chaff::POPULATIONS,
            &super::fleet_chaff::BUDGETS,
        )
    };
    Ok(ExperimentOutput::table(super::fleet_chaff::run_with(
        &ctx.synth,
        populations,
        budgets,
    )?))
});

experiment!(FleetEquilibrium, "fleet_equilibrium", ctx, {
    let populations: &[usize] = if ctx.quick {
        &super::fleet_equilibrium::QUICK_POPULATIONS
    } else {
        &super::fleet_equilibrium::POPULATIONS
    };
    Ok(ExperimentOutput::table(super::fleet_equilibrium::run_with(
        &ctx.synth,
        populations,
    )?))
});

experiment!(FleetScale, "fleet_scale", ctx, {
    let populations: &[usize] = if ctx.quick {
        &super::fleet_scale::QUICK_POPULATIONS
    } else {
        &super::fleet_scale::POPULATIONS
    };
    Ok(ExperimentOutput::table(super::fleet_scale::run_with(
        &ctx.synth,
        populations,
        &super::fleet_scale::BUDGETS,
        super::fleet_scale::SCALE_HORIZON,
    )?))
});

experiment!(FleetStream, "fleet_stream", ctx, {
    let populations: &[usize] = if ctx.quick {
        &super::fleet_stream::QUICK_POPULATIONS
    } else {
        &super::fleet_stream::POPULATIONS
    };
    let (table, curves) = super::fleet_stream::run_with(
        &ctx.synth,
        populations,
        &super::fleet_stream::BUDGETS,
        super::fleet_stream::STREAM_HORIZON,
    )?;
    Ok(ExperimentOutput {
        figures: vec![curves],
        tables: vec![table],
    })
});

experiment!(FleetPersist, "fleet_persist", ctx, {
    let populations: &[usize] = if ctx.quick {
        &super::fleet_persist::QUICK_POPULATIONS
    } else {
        &super::fleet_persist::POPULATIONS
    };
    Ok(ExperimentOutput::table(super::fleet_persist::run_with(
        &ctx.synth,
        populations,
    )?))
});

experiment!(FleetDaynight, "fleet_daynight", ctx, {
    let mut config = if ctx.quick {
        super::fleet_daynight::DayNightConfig::quick()
    } else {
        super::fleet_daynight::DayNightConfig::default()
    };
    if let Some(seed) = ctx.seed {
        config.seed = seed;
    }
    let budgets: &[usize] = if ctx.quick {
        &super::fleet_daynight::QUICK_BUDGETS
    } else {
        &super::fleet_daynight::BUDGETS
    };
    Ok(ExperimentOutput::table(super::fleet_daynight::run_with(
        &config, budgets,
    )?))
});

experiment!(TraceFleet, "trace_fleet", ctx, {
    let mut config = if ctx.quick {
        super::trace_fleet::TraceFleetConfig::quick()
    } else {
        super::trace_fleet::TraceFleetConfig::default()
    };
    if let Some(seed) = ctx.seed {
        config.seed = seed;
    }
    let budgets: &[usize] = if ctx.quick {
        &super::trace_fleet::QUICK_BUDGETS
    } else {
        &super::trace_fleet::BUDGETS
    };
    Ok(ExperimentOutput::table(super::trace_fleet::run_with(
        &config, budgets,
    )?))
});

/// Every experiment, in the canonical `all` execution order.
pub fn registry() -> Vec<Box<dyn Experiment>> {
    vec![
        Box::new(Table1),
        Box::new(Fig4),
        Box::new(Fig5),
        Box::new(Fig6),
        Box::new(Fig7),
        Box::new(Fig8),
        Box::new(Fig9),
        Box::new(Fig10),
        Box::new(Theory),
        Box::new(Multiuser),
        Box::new(FleetScaling),
        Box::new(FleetChaff),
        Box::new(FleetEquilibrium),
        Box::new(FleetScale),
        Box::new(FleetStream),
        Box::new(FleetPersist),
        Box::new(FleetDaynight),
        Box::new(TraceFleet),
    ]
}

/// Resolves one experiment by name.
pub fn find(name: &str) -> Option<Box<dyn Experiment>> {
    registry().into_iter().find(|e| e.name() == name)
}

/// The registered names, in canonical order (for usage strings).
pub fn names() -> Vec<&'static str> {
    registry().iter().map(|e| e.name()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_names_are_unique_and_resolvable() {
        let names = names();
        let mut sorted = names.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), names.len(), "duplicate experiment names");
        for name in names {
            assert!(find(name).is_some(), "{name} must resolve");
        }
        assert!(find("no_such_experiment").is_none());
    }

    #[test]
    fn registry_covers_the_new_persistence_tentpole() {
        assert!(names().contains(&"fleet_persist"));
    }

    #[test]
    fn registry_covers_the_equilibrium_tentpole() {
        assert!(names().contains(&"fleet_equilibrium"));
    }

    #[test]
    fn registry_covers_the_daynight_tentpole() {
        assert!(names().contains(&"fleet_daynight"));
    }

    #[test]
    fn a_cheap_experiment_runs_through_the_trait_entry() {
        let ctx = ExperimentCtx::quick();
        let out = find("table1").unwrap().run(&ctx).unwrap();
        assert_eq!(out.tables.len(), 1);
        assert!(out.figures.is_empty());
    }
}

//! Fig. 7: tracking accuracy of the *advanced* eavesdropper (aware of the
//! chaff-control strategy) against the IM strategy and the robust
//! randomized strategies RML / ROO / RMO, with `N = 10`.
//!
//! The paper's headline: the deterministic strategies collapse against
//! this eavesdropper (not shown in the figure), while slight random
//! perturbations both evade recognition and approximately preserve the
//! deterministic strategies' performance.

use super::{build_model, SyntheticConfig};
use crate::montecarlo;
use crate::report::{Figure, Series};
use chaff_core::detector::AdvancedDetector;
use chaff_core::metrics::{mean_series, tracking_accuracy_series};
use chaff_core::strategy::StrategyKind;
use chaff_markov::models::ModelKind;
use chaff_markov::MarkovChain;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Strategies shown in Fig. 7 (all with `N = 10`, i.e. 9 chaffs).
const STRATEGIES: [StrategyKind; 4] = [
    StrategyKind::Im,
    StrategyKind::Rml,
    StrategyKind::Roo,
    StrategyKind::Rmo,
];

/// Number of chaffs (the paper's `N − 1` with `N = 10`).
const NUM_CHAFFS: usize = 9;

fn one_run(chain: &MarkovChain, horizon: usize, seed: u64) -> Vec<Vec<f64>> {
    let mut rng = StdRng::seed_from_u64(seed);
    let user = chain.sample_trajectory(horizon, &mut rng);
    STRATEGIES
        .iter()
        .map(|kind| {
            let strategy = kind.build();
            let chaffs = strategy
                .generate(chain, &user, NUM_CHAFFS, &mut rng)
                .expect("valid user");
            let mut observed = vec![user.clone()];
            observed.extend(chaffs);
            let detector = AdvancedDetector::new(strategy.as_ref());
            let detections = detector
                .detect_prefixes(chain, &observed)
                .expect("valid observations");
            tracking_accuracy_series(&observed, 0, &detections)
        })
        .collect()
}

/// Runs the experiment for one mobility model.
///
/// # Errors
///
/// Propagates model-construction errors.
pub fn run(config: &SyntheticConfig, kind: ModelKind) -> crate::Result<Figure> {
    let chain = build_model(kind, config)?;
    let per_run = montecarlo::run_parallel(config.runs, config.seed ^ 0x7, |_, seed| {
        one_run(&chain, config.horizon, seed)
    });
    let mut figure = Figure::new(
        format!("fig7{}", kind.letter()),
        format!("advanced eavesdropper tracking accuracy (N = 10), {kind}"),
        "time",
        "accuracy",
    );
    for (s, kind) in STRATEGIES.iter().enumerate() {
        let series: Vec<Vec<f64>> = per_run.iter().map(|run| run[s].clone()).collect();
        figure.push(Series::from_values(kind.to_string(), mean_series(&series)));
    }
    Ok(figure)
}

/// Runs all four panels.
///
/// # Errors
///
/// Propagates model-construction errors.
pub fn run_all(config: &SyntheticConfig) -> crate::Result<Vec<Figure>> {
    ModelKind::ALL.iter().map(|&k| run(config, k)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use chaff_core::metrics::time_average;

    #[test]
    fn robust_strategies_hold_up_against_the_advanced_eavesdropper() {
        let config = SyntheticConfig {
            runs: 60,
            horizon: 40,
            ..SyntheticConfig::default()
        };
        let figure = run(&config, ModelKind::NonSkewed).unwrap();
        assert_eq!(figure.series.len(), 4);
        let avg =
            |label: &str| time_average(&figure.series.iter().find(|s| s.label == label).unwrap().y);
        // Nobody collapses to ~1 (that is the deterministic strategies'
        // fate, which the figure omits).
        for kind in STRATEGIES {
            assert!(
                avg(&kind.to_string()) < 0.6,
                "{kind}: {}",
                avg(&kind.to_string())
            );
        }
        // ROO/RML approximate their deterministic counterparts under a
        // basic eavesdropper: far below IM on the random model.
        assert!(
            avg("ROO") < avg("IM"),
            "roo {} vs im {}",
            avg("ROO"),
            avg("IM")
        );
        assert!(avg("RML") < avg("IM") + 0.1);
    }

    #[test]
    fn deterministic_strategies_do_collapse_for_contrast() {
        // Not part of the figure, but the paper asserts it; verify the
        // contrast that motivates the robust variants.
        let config = SyntheticConfig {
            runs: 20,
            horizon: 30,
            ..SyntheticConfig::default()
        };
        let chain = build_model(ModelKind::NonSkewed, &config).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        let mut total = 0.0;
        for _ in 0..config.runs {
            let user = chain.sample_trajectory(config.horizon, &mut rng);
            let strategy = StrategyKind::Oo.build();
            let chaffs = strategy.generate(&chain, &user, 1, &mut rng).unwrap();
            let mut observed = vec![user];
            observed.extend(chaffs);
            let detector = AdvancedDetector::new(strategy.as_ref());
            let detections = detector.detect_prefixes(&chain, &observed).unwrap();
            total += time_average(&tracking_accuracy_series(&observed, 0, &detections));
        }
        let mean = total / config.runs as f64;
        assert!(mean > 0.9, "deterministic OO should collapse: {mean}");
    }
}

//! Fig. 5: tracking accuracy of the *basic* eavesdropper versus time,
//! under each chaff-control strategy.
//!
//! Per Monte Carlo run, the user samples a trajectory from the model; each
//! strategy generates its chaffs; the eavesdropper performs prefix-ML
//! detection at every slot (tracking in real time) and scores a hit when
//! the detected trajectory co-locates with the user. Curves are averaged
//! over runs. The paper's strategy/chaff-count grid: IM, ML, OO, MO, CML
//! with `N = 2` and IM with `N = 10`.

use super::{build_model, SyntheticConfig};
use crate::montecarlo;
use crate::report::{Figure, Series};
use chaff_core::detector::MlDetector;
use chaff_core::metrics::{mean_series, tracking_accuracy_series};
use chaff_core::strategy::StrategyKind;
use chaff_markov::models::ModelKind;
use chaff_markov::MarkovChain;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// The paper's strategy grid for this figure: (strategy, number of
/// chaffs, label).
fn grid() -> Vec<(StrategyKind, usize, &'static str)> {
    vec![
        (StrategyKind::Im, 1, "IM (N = 2)"),
        (StrategyKind::Ml, 1, "ML (N = 2)"),
        (StrategyKind::Oo, 1, "OO (N = 2)"),
        (StrategyKind::Mo, 1, "MO (N = 2)"),
        (StrategyKind::Cml, 1, "CML (N = 2)"),
        (StrategyKind::Im, 9, "IM (N = 10)"),
    ]
}

/// One Monte Carlo run: per-strategy per-slot accuracy series.
fn one_run(chain: &MarkovChain, horizon: usize, seed: u64) -> Vec<Vec<f64>> {
    let mut rng = StdRng::seed_from_u64(seed);
    let user = chain.sample_trajectory(horizon, &mut rng);
    grid()
        .into_iter()
        .map(|(kind, num_chaffs, _)| {
            let strategy = kind.build();
            let chaffs = strategy
                .generate(chain, &user, num_chaffs, &mut rng)
                .expect("valid user trajectory");
            let mut observed = vec![user.clone()];
            observed.extend(chaffs);
            let detections = MlDetector
                .detect_prefixes(chain, &observed)
                .expect("validated observations");
            tracking_accuracy_series(&observed, 0, &detections)
        })
        .collect()
}

/// Runs the experiment for one mobility model.
///
/// # Errors
///
/// Propagates model-construction errors.
pub fn run(config: &SyntheticConfig, kind: ModelKind) -> crate::Result<Figure> {
    let chain = build_model(kind, config)?;
    let per_run = montecarlo::run_parallel(config.runs, config.seed, |_, seed| {
        one_run(&chain, config.horizon, seed)
    });
    let mut figure = Figure::new(
        format!("fig5{}", kind.letter()),
        format!("basic eavesdropper tracking accuracy, {kind}"),
        "time",
        "accuracy",
    );
    for (s, (_, _, label)) in grid().into_iter().enumerate() {
        let series: Vec<Vec<f64>> = per_run.iter().map(|run| run[s].clone()).collect();
        figure.push(Series::from_values(label, mean_series(&series)));
    }
    Ok(figure)
}

/// Runs all four panels.
///
/// # Errors
///
/// Propagates model-construction errors.
pub fn run_all(config: &SyntheticConfig) -> crate::Result<Vec<Figure>> {
    ModelKind::ALL.iter().map(|&k| run(config, k)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use chaff_core::metrics::time_average;

    fn by_label<'a>(figure: &'a Figure, label: &str) -> &'a Series {
        figure
            .series
            .iter()
            .find(|s| s.label == label)
            .unwrap_or_else(|| panic!("missing series {label}"))
    }

    #[test]
    fn reproduces_the_papers_qualitative_ordering() {
        let config = SyntheticConfig {
            runs: 120,
            horizon: 60,
            ..SyntheticConfig::default()
        };
        let figure = run(&config, ModelKind::NonSkewed).unwrap();
        assert_eq!(figure.series.len(), 6);

        let im2 = time_average(&by_label(&figure, "IM (N = 2)").y);
        let im10 = time_average(&by_label(&figure, "IM (N = 10)").y);
        let oo = time_average(&by_label(&figure, "OO (N = 2)").y);
        let mo = time_average(&by_label(&figure, "MO (N = 2)").y);
        let cml = time_average(&by_label(&figure, "CML (N = 2)").y);

        // (iii) IM benefits from more chaffs.
        assert!(im10 < im2, "im10 {im10} !< im2 {im2}");
        // (i) OO/MO/CML drive accuracy far below IM on the random model.
        assert!(oo < 0.35 * im2, "oo {oo} vs im2 {im2}");
        assert!(mo < 0.5 * im2, "mo {mo} vs im2 {im2}");
        assert!(cml < 0.5 * im2, "cml {cml} vs im2 {im2}");
        // Late-horizon accuracy of OO decays towards zero.
        let oo_tail = &by_label(&figure, "OO (N = 2)").y;
        let tail_mean = oo_tail[oo_tail.len() - 10..].iter().sum::<f64>() / 10.0;
        assert!(tail_mean < 0.1, "OO tail = {tail_mean}");
    }

    #[test]
    fn skewed_models_are_harder_to_hide_in() {
        // (ii) more skewness -> higher tracking accuracy for IM.
        let config = SyntheticConfig {
            runs: 80,
            horizon: 40,
            ..SyntheticConfig::default()
        };
        let plain = run(&config, ModelKind::NonSkewed).unwrap();
        let skewed = run(&config, ModelKind::SpatioTemporallySkewed).unwrap();
        let im_plain = time_average(&by_label(&plain, "IM (N = 2)").y);
        let im_skewed = time_average(&by_label(&skewed, "IM (N = 2)").y);
        assert!(
            im_skewed > im_plain,
            "skewed {im_skewed} !> plain {im_plain}"
        );
    }

    #[test]
    fn runs_are_deterministic_in_the_seed() {
        let config = SyntheticConfig {
            runs: 10,
            horizon: 20,
            ..SyntheticConfig::default()
        };
        let a = run(&config, ModelKind::TemporallySkewed).unwrap();
        let b = run(&config, ModelKind::TemporallySkewed).unwrap();
        assert_eq!(a, b);
    }
}

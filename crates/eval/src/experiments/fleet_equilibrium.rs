//! Tentpole experiment (ISSUE 9): the defender–detector equilibrium
//! sweep under adaptive chaff budgets.
//!
//! The fleet game of Sec. VII becomes dynamic once the defender can
//! *observe* the eavesdropper: each epoch the fleet operator reads the
//! detector's running per-user accuracy ([`AccuracyFeedback`]) and
//! plays a best response — shifting chaff budget towards the users the
//! detector currently locks onto
//! ([`FleetChaffPolicy::adapt`]) while conserving the fleet-wide
//! total. This experiment iterates that loop to a fixed point and asks
//! the paper-level question: *does adapting beat spending the same
//! total statically?*
//!
//! Per population rung `N` (total budget `N · B`):
//!
//! 1. score the three static baselines at equal total — uniform `B`
//!    per user, proportional (largest-remainder over `N · B`), and a
//!    per-class split that gives class 0 everything;
//! 2. run best-response iteration from the proportional start:
//!    simulate → detect → feed accuracies back → re-apportion, until
//!    the largest per-user budget movement falls below [`EPSILON`] or
//!    [`MAX_ROUNDS`] epochs elapse;
//! 3. report rounds-to-convergence and the equilibrium tracking /
//!    detection accuracy next to every baseline.
//!
//! The detector's feedback is *part of the game state*: budgets feed
//! back into budgets only, never into any RNG stream, so every epoch
//! re-simulates the same user trajectories (see
//! `adaptive_policy_runs_and_keeps_user_trajectories_fixed` in
//! `chaff-sim`).

use super::SyntheticConfig;
use crate::report::Table;
use chaff_core::detector::{AccuracyFeedback, BatchPrefixDetector, DetectInput};
use chaff_core::metrics::{
    detection_accuracy_series, time_average, tracking_accuracy_series_columnar,
};
use chaff_markov::MobilityRegistry;
use chaff_sim::fleet::{
    BudgetAllocation, FleetChaffPolicy, FleetChaffStrategy, FleetConfig, FleetSimulation,
    StrategyAllocation,
};
use chaff_sim::test_support::mixed_registry;

/// Populations swept by the full experiment.
pub const POPULATIONS: [usize; 3] = [100, 1_000, 10_000];

/// Populations swept under `--quick`.
pub const QUICK_POPULATIONS: [usize; 2] = [50, 200];

/// Per-user budget `B`; every allocation spends the same `N · B` total.
pub const BUDGET: usize = 1;

/// Slots per epoch. Short on purpose: the loop re-simulates the fleet
/// every epoch, and the equilibrium structure is horizon-independent.
pub const EQ_HORIZON: usize = 20;

/// Mobility classes in the heterogeneous registry (populations are
/// even, so the per-class baseline splits the total exactly).
pub const CLASSES: usize = 2;

/// Convergence threshold: the sweep stops once one best-response epoch
/// moves no per-user budget by `EPSILON` or more.
pub const EPSILON: usize = 2;

/// Epoch cap — the sweep reports `converged = false` if the budget
/// vector still moves after this many best responses.
pub const MAX_ROUNDS: usize = 16;

/// One scored allocation at one population rung.
#[derive(Debug, Clone, PartialEq)]
pub struct EquilibriumPoint {
    /// Fleet size `N`.
    pub num_users: usize,
    /// Fleet-wide chaff total (identical across allocations).
    pub total_budget: usize,
    /// Allocation label (`"uniform"`, `"proportional"`, `"per-class"`,
    /// `"adaptive"`).
    pub allocation: &'static str,
    /// Best-response epochs run (0 for the static baselines).
    pub rounds: usize,
    /// Whether the budget vector stopped moving within [`MAX_ROUNDS`]
    /// (vacuously true for the static baselines).
    pub converged: bool,
    /// Mean time-average tracking accuracy over all designated users.
    pub tracking_accuracy: f64,
    /// Mean time-average detection accuracy (exact identification).
    pub detection_accuracy: f64,
}

/// Fleet-wide accuracies of one policy plus the per-user feedback
/// vector the adaptive loop consumes.
struct Scored {
    tracking: f64,
    detection: f64,
    per_user: Vec<f64>,
}

/// The registry every rung runs on: deterministic in `seed`.
pub fn equilibrium_registry(seed: u64, num_cells: usize) -> MobilityRegistry {
    mixed_registry(seed, num_cells, CLASSES)
}

/// Runs one fleet under `policy` and scores it through the batched
/// detection core. The per-user feedback comes from the same
/// [`AccuracyFeedback`] bridge the streaming engine maintains online,
/// so batch sweeps and streamed deployments adapt on identical
/// numbers.
fn score(
    registry: &MobilityRegistry,
    policy: &FleetChaffPolicy,
    num_users: usize,
    horizon: usize,
    seed: u64,
) -> crate::Result<Scored> {
    let config = FleetConfig::new(num_users, horizon).with_seed(seed);
    let outcome = FleetSimulation::with_registry(registry, config).run_chaffed(policy)?;
    let detections = BatchPrefixDetector::new()
        .detect_prefixes(DetectInput::new(registry, &outcome.observed))?;
    let feedback =
        AccuracyFeedback::from_detections(outcome.observed.num_trajectories(), &detections);
    let mut tracking = 0.0;
    let mut detection = 0.0;
    let mut per_user = Vec::with_capacity(num_users);
    for &u in &outcome.user_observed_indices {
        tracking += time_average(&tracking_accuracy_series_columnar(
            &outcome.observed,
            u,
            &detections,
        ));
        detection += time_average(&detection_accuracy_series(u, &detections));
        per_user.push(feedback.accuracy(u));
    }
    Ok(Scored {
        tracking: tracking / num_users as f64,
        detection: detection / num_users as f64,
        per_user,
    })
}

fn static_point(
    registry: &MobilityRegistry,
    policy: &FleetChaffPolicy,
    label: &'static str,
    num_users: usize,
    horizon: usize,
    seed: u64,
) -> crate::Result<EquilibriumPoint> {
    let scored = score(registry, policy, num_users, horizon, seed)?;
    Ok(EquilibriumPoint {
        num_users,
        total_budget: num_users * BUDGET,
        allocation: label,
        rounds: 0,
        converged: true,
        tracking_accuracy: scored.tracking,
        detection_accuracy: scored.detection,
    })
}

/// Runs the best-response iteration for one population and returns the
/// equilibrium point together with the final budget vector.
///
/// Every epoch re-simulates under the *same* seed — the game is
/// repeated over one fixed fleet realization, so the only state that
/// moves between epochs is the budget vector itself, and a fixed point
/// of [`FleetChaffPolicy::adapt`] is a genuine mutual best response.
///
/// # Errors
///
/// Propagates simulation and detection errors.
pub fn equilibrium(
    registry: &MobilityRegistry,
    num_users: usize,
    horizon: usize,
    seed: u64,
) -> crate::Result<(EquilibriumPoint, Vec<usize>)> {
    let total = num_users * BUDGET;
    let mut policy = FleetChaffPolicy::adaptive(FleetChaffStrategy::Im, num_users, total);
    let mut scored = score(registry, &policy, num_users, horizon, seed)?;
    let mut rounds = 0;
    let mut converged = false;
    while rounds < MAX_ROUNDS {
        let delta = policy.adapt(&scored.per_user)?;
        rounds += 1;
        scored = score(registry, &policy, num_users, horizon, seed)?;
        if delta < EPSILON {
            converged = true;
            break;
        }
    }
    let budgets = policy
        .adaptive_budgets()
        .expect("the policy was built adaptive")
        .budgets()
        .to_vec();
    Ok((
        EquilibriumPoint {
            num_users,
            total_budget: total,
            allocation: "adaptive",
            rounds,
            converged,
            tracking_accuracy: scored.tracking,
            detection_accuracy: scored.detection,
        },
        budgets,
    ))
}

/// Scores the three static baselines plus the adaptive equilibrium at
/// one population rung, all at total `N · B`.
///
/// # Errors
///
/// Propagates simulation and detection errors.
pub fn measure(
    registry: &MobilityRegistry,
    num_users: usize,
    horizon: usize,
    seed: u64,
) -> crate::Result<Vec<EquilibriumPoint>> {
    let strategy = FleetChaffStrategy::Im;
    let uniform = FleetChaffPolicy::uniform(strategy, BUDGET);
    let proportional = FleetChaffPolicy::proportional(strategy, num_users * BUDGET);
    // All of the total on class 0; with the registry's round-robin
    // assignment and an even `N` this spends exactly `N · B`.
    let mut class_budgets = vec![0; CLASSES];
    class_budgets[0] = CLASSES * BUDGET;
    let per_class = FleetChaffPolicy::new(
        BudgetAllocation::PerClass(class_budgets),
        StrategyAllocation::Uniform(strategy),
    );
    let mut points = vec![
        static_point(registry, &uniform, "uniform", num_users, horizon, seed)?,
        static_point(
            registry,
            &proportional,
            "proportional",
            num_users,
            horizon,
            seed,
        )?,
        static_point(registry, &per_class, "per-class", num_users, horizon, seed)?,
    ];
    let (adaptive, _) = equilibrium(registry, num_users, horizon, seed)?;
    points.push(adaptive);
    Ok(points)
}

/// Runs the sweep over `populations` and renders the report table.
///
/// # Errors
///
/// Propagates [`measure`] errors.
pub fn run_with(config: &SyntheticConfig, populations: &[usize]) -> crate::Result<Table> {
    let registry = equilibrium_registry(config.seed, config.num_cells);
    let mut table = Table::new(
        "fleet_equilibrium",
        format!(
            "Defender–detector equilibrium: adaptive budgets vs static \
             baselines at equal total (B = {BUDGET}, T = {EQ_HORIZON}, \
             ε = {EPSILON})"
        ),
        vec![
            "N".into(),
            "total".into(),
            "allocation".into(),
            "rounds".into(),
            "converged".into(),
            "tracking".into(),
            "detection".into(),
        ],
    );
    for &num_users in populations {
        for point in measure(&registry, num_users, EQ_HORIZON, config.seed)? {
            table.push(vec![
                point.num_users.to_string(),
                point.total_budget.to_string(),
                point.allocation.into(),
                point.rounds.to_string(),
                point.converged.to_string(),
                format!("{:.4}", point.tracking_accuracy),
                format!("{:.6}", point.detection_accuracy),
            ]);
        }
    }
    Ok(table)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_allocation_spends_the_same_total() {
        let registry = equilibrium_registry(1709, 8);
        let points = measure(&registry, 40, 4, 11).unwrap();
        assert_eq!(points.len(), 4);
        for point in &points {
            assert_eq!(point.total_budget, 40 * BUDGET, "{}", point.allocation);
        }
        assert_eq!(points[3].allocation, "adaptive");
        assert!(points[3].rounds >= 1);
    }

    #[test]
    fn the_equilibrium_budget_vector_conserves_the_total() {
        let registry = equilibrium_registry(1709, 8);
        let (point, budgets) = equilibrium(&registry, 30, 6, 5).unwrap();
        assert_eq!(budgets.len(), 30);
        assert_eq!(budgets.iter().sum::<usize>(), point.total_budget);
    }

    #[test]
    fn table_has_four_rows_per_population() {
        let config = SyntheticConfig::quick();
        let table = run_with(&config, &[10, 20]).unwrap();
        assert_eq!(table.rows.len(), 8);
    }
}

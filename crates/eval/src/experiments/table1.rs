//! Table 1 (in-text, Sec. VII-A1): temporal skewness of the four
//! synthetic models, measured as the average pairwise KL divergence
//! between transition-matrix rows. The paper reports 0.44 / 0.34 / 8.18 /
//! 8.48 for models (a)–(d).

use super::{build_model, SyntheticConfig};
use crate::report::Table;
use chaff_markov::entropy::{avg_pairwise_row_kl, entropy_rate};
use chaff_markov::models::ModelKind;

/// Runs the experiment.
///
/// # Errors
///
/// Propagates model-construction errors.
pub fn run(config: &SyntheticConfig) -> crate::Result<Table> {
    let mut table = Table::new(
        "table1",
        "temporal/spatial skewness of the synthetic mobility models",
        vec![
            "model".into(),
            "avg pairwise row KL (paper: a=0.44 b=0.34 c=8.18 d=8.48)".into(),
            "entropy rate (nats)".into(),
            "collision probability".into(),
        ],
    );
    for kind in ModelKind::ALL {
        let chain = build_model(kind, config)?;
        let kl = avg_pairwise_row_kl(chain.matrix());
        let h = entropy_rate(chain.matrix(), chain.initial());
        let collision = chain.initial().collision_probability();
        table.push(vec![
            format!("({}) {}", kind.letter(), kind),
            format!("{kl:.2}"),
            format!("{h:.3}"),
            format!("{collision:.3}"),
        ]);
    }
    Ok(table)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn skewness_ordering_matches_the_paper() {
        let table = run(&SyntheticConfig::default()).unwrap();
        assert_eq!(table.rows.len(), 4);
        let kl: Vec<f64> = table
            .rows
            .iter()
            .map(|r| r[1].parse::<f64>().unwrap())
            .collect();
        // Random-walk models (c), (d) are an order of magnitude more
        // temporally skewed than the dense random models (a), (b).
        assert!(kl[2] > 5.0 && kl[3] > 5.0, "{kl:?}");
        assert!(kl[0] < 1.0 && kl[1] < 1.0, "{kl:?}");
        // Spatial skewness shows up in the collision probability instead.
        let collision: Vec<f64> = table
            .rows
            .iter()
            .map(|r| r[3].parse::<f64>().unwrap())
            .collect();
        assert!(collision[1] > collision[0], "{collision:?}");
        assert!(collision[3] > collision[2], "{collision:?}");
    }
}

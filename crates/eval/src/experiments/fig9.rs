//! Fig. 9: the trace-driven evaluation of the basic eavesdropper.
//!
//! (a) With no chaffs, per-user tracking accuracy across all nodes: a few
//! users are tracked far above the `1/N` random baseline (the paper finds
//! user 1 at 52% and users 2–5 above 15%).
//!
//! (b) Protecting the top-K most-trackable users with a *single* chaff:
//! IM barely helps, ML and OO cut the accuracy drastically, and MO
//! under-performs because the trace pool jointly dominates its myopic
//! trajectory in likelihood much of the time (Sec. VII-B2).

use super::{rank_users_by_trackability, TraceConfig};
use crate::montecarlo;
use crate::report::{Figure, Series, Table};
use chaff_core::detector::MlDetector;
use chaff_core::metrics::{time_average, tracking_accuracy_series};
use chaff_core::strategy::StrategyKind;
use chaff_markov::{MarkovChain, Trajectory};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// The strategy columns of Fig. 9(b), in the paper's order.
const STRATEGIES: [StrategyKind; 4] = [
    StrategyKind::Im,
    StrategyKind::Mo,
    StrategyKind::Ml,
    StrategyKind::Oo,
];

/// Tracking accuracy for `user` after appending `chaffs` to the pool.
fn accuracy_with_chaffs(
    model: &MarkovChain,
    pool: &[Trajectory],
    user: usize,
    chaffs: Vec<Trajectory>,
) -> f64 {
    let mut observed = pool.to_vec();
    observed.extend(chaffs);
    let detections = MlDetector
        .detect_prefixes(model, &observed)
        .expect("validated observations");
    time_average(&tracking_accuracy_series(&observed, user, &detections))
}

/// Runs the experiment, returning the per-user panel (a) and the top-K
/// table (b).
///
/// # Errors
///
/// Propagates trace-pipeline and strategy errors.
pub fn run(config: &TraceConfig) -> crate::Result<(Figure, Table)> {
    let dataset = config.build_dataset()?;
    let model = dataset.model();
    let pool = dataset.trajectories();
    let ranked = rank_users_by_trackability(&dataset);

    // Panel (a): accuracy per user, ranked descending, with the 1/N line.
    let mut panel_a = Figure::new(
        "fig9a",
        format!("no-chaff tracking accuracy across {} users", pool.len()),
        "user rank",
        "accuracy",
    );
    panel_a.push(Series::from_values(
        "accuracy (ranked)",
        ranked.iter().map(|&(_, a)| a).collect(),
    ));
    panel_a.push(Series::from_values(
        "1/N baseline",
        vec![1.0 / pool.len() as f64; ranked.len()],
    ));

    // Panel (b): top-K users, one chaff per strategy.
    let mut table = Table::new(
        "fig9b",
        "top users protected by a single chaff (time-average accuracy)",
        {
            let mut cols = vec!["user".into(), "no chaff".into()];
            cols.extend(STRATEGIES.iter().map(|s| s.to_string()));
            cols
        },
    );
    let top_k = config.top_k.min(ranked.len());
    for (rank, &(user, base_accuracy)) in ranked.iter().take(top_k).enumerate() {
        let mut row = vec![
            format!("user{} (#{})", rank + 1, user),
            format!("{base_accuracy:.4}"),
        ];
        for kind in STRATEGIES {
            let strategy = kind.build();
            let accuracy = if kind == StrategyKind::Im {
                // Randomized: average over config.im_runs draws.
                let runs = montecarlo::run_parallel(
                    config.im_runs,
                    config.seed ^ (user as u64) << 8,
                    |_, seed| {
                        let mut rng = StdRng::seed_from_u64(seed);
                        let chaffs = strategy
                            .generate(model, &pool[user], 1, &mut rng)
                            .expect("valid user");
                        accuracy_with_chaffs(model, pool, user, chaffs)
                    },
                );
                runs.iter().sum::<f64>() / runs.len().max(1) as f64
            } else {
                let mut rng = StdRng::seed_from_u64(config.seed);
                let chaffs = strategy.generate(model, &pool[user], 1, &mut rng)?;
                accuracy_with_chaffs(model, pool, user, chaffs)
            };
            row.push(format!("{accuracy:.4}"));
        }
        table.push(row);
    }
    Ok((panel_a, table))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(cell: &str) -> f64 {
        cell.parse().unwrap()
    }

    #[test]
    fn top_users_exceed_baseline_and_oo_protects_them() {
        let config = TraceConfig::quick();
        let (panel_a, table) = run(&config).unwrap();

        // Panel (a): ranked accuracies, top user far above baseline.
        let acc = &panel_a.series[0].y;
        let baseline = panel_a.series[1].y[0];
        assert!(
            acc[0] > 3.0 * baseline,
            "top {} vs 1/N {}",
            acc[0],
            baseline
        );
        for w in acc.windows(2) {
            assert!(w[0] >= w[1] - 1e-12, "ranked descending");
        }

        // Panel (b): OO never hurts, and across the top users OO provides
        // a substantial aggregate reduction. (Individual users whose
        // accuracy stems from co-location with *other* dominant
        // trajectories cannot be rescued by any chaff — see
        // EXPERIMENTS.md — so the strong claim is aggregate.)
        assert_eq!(table.rows.len(), config.top_k);
        let col = |name: &str| {
            table
                .columns
                .iter()
                .position(|c| c == name)
                .unwrap_or_else(|| panic!("missing column {name}"))
        };
        let mut base_total = 0.0;
        let mut oo_total = 0.0;
        let mut best_ratio = f64::INFINITY;
        for row in &table.rows {
            let base = parse(&row[col("no chaff")]);
            let oo = parse(&row[col("OO")]);
            let ml = parse(&row[col("ML")]);
            assert!(oo <= base + 0.02, "OO must not hurt: {oo} vs {base}");
            assert!(ml <= base + 0.02, "ML must not hurt: {ml} vs {base}");
            base_total += base;
            oo_total += oo;
            if base > 0.0 {
                best_ratio = best_ratio.min(oo / base);
            }
        }
        assert!(
            oo_total < 0.85 * base_total,
            "OO aggregate {oo_total} vs base {base_total}"
        );
        assert!(
            best_ratio < 0.5,
            "OO should rescue at least one top user: best ratio {best_ratio}"
        );
    }
}

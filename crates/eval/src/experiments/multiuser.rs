//! Extension experiment: coexisting users as natural chaffs, at fleet
//! scale.
//!
//! Sec. II-A remarks that in a multi-user system every other user (and
//! their chaffs) adds protection, so the single-user results are lower
//! bounds; the extended version (arXiv:1709.03133) frames them the same
//! way. Here all `N` trajectories are real users following the same
//! model — statistically identical to the IM strategy — and the measured
//! accuracy of tracking a designated user should match eq. (11).
//!
//! The sweep runs on the fleet engine
//! ([`chaff_sim::fleet::FleetSimulation`]) with the batched detection
//! core ([`BatchPrefixDetector`]), which keeps populations up to
//! `N = 10,000` tractable. Users are exchangeable, so each fleet run
//! averages the tracking accuracy over *every* user as its designated
//! target — `N` correlated-but-distinct samples per run — and the Monte
//! Carlo budget shrinks as the population grows.

use super::{build_model, SyntheticConfig};
use crate::montecarlo;
use crate::report::{Figure, Series};
use chaff_core::detector::{BatchPrefixDetector, DetectInput};
use chaff_core::metrics::{time_average, tracking_accuracy_series_columnar};
use chaff_core::theory::im_tracking_accuracy;
use chaff_markov::models::ModelKind;
use chaff_markov::MarkovChain;
use chaff_sim::fleet::{FleetConfig, FleetSimulation};

/// Population sizes swept: the paper-scale regime plus the fleet-scale
/// extension.
pub const POPULATIONS: [usize; 8] = [2, 5, 10, 20, 50, 100, 1_000, 10_000];

/// One fleet run: mean (over all designated users) time-average tracking
/// accuracy. Crate-visible so the `fleet_chaff` experiment can assert
/// its `B = 0` rows reproduce these numbers bit-for-bit.
pub(crate) fn fleet_run_accuracy(
    chain: &MarkovChain,
    n: usize,
    horizon: usize,
    seed: u64,
    shards: Option<usize>,
) -> f64 {
    let mut config = FleetConfig::new(n, horizon).with_seed(seed);
    if let Some(shards) = shards {
        config = config.with_shards(shards);
    }
    let detector = match shards {
        Some(s) => BatchPrefixDetector::with_shards(s),
        None => BatchPrefixDetector::new(),
    };
    let outcome = FleetSimulation::new(chain, config)
        .run_natural()
        .expect("valid fleet config");
    let detections = detector
        .detect_prefixes(DetectInput::new(chain, &outcome.observed))
        .expect("uniform fleet observations");
    let total: f64 = outcome
        .user_observed_indices
        .iter()
        .map(|&u| {
            time_average(&tracking_accuracy_series_columnar(
                &outcome.observed,
                u,
                &detections,
            ))
        })
        .sum();
    total / n as f64
}

/// Simulated tracking accuracy for one population size, spreading the
/// Monte Carlo budget across runs (small fleets) or users (large fleets).
fn population_accuracy(chain: &MarkovChain, n: usize, config: &SyntheticConfig, salt: u64) -> f64 {
    // Keep roughly `runs` designated-user samples regardless of N.
    let runs = config.runs.div_ceil(n).max(1);
    let base = config.seed ^ salt;
    if runs == 1 {
        // One big fleet: let the engine parallelize internally.
        fleet_run_accuracy(
            chain,
            n,
            config.horizon,
            montecarlo::run_seed(base, 0),
            None,
        )
    } else {
        // Many small fleets: parallelize over runs, keep each fleet
        // single-sharded so threads do not multiply.
        let accuracies = montecarlo::run_parallel(runs, base, |_, seed| {
            fleet_run_accuracy(chain, n, config.horizon, seed, Some(1))
        });
        accuracies.iter().sum::<f64>() / accuracies.len().max(1) as f64
    }
}

/// Runs the experiment for one model: simulated multi-user tracking
/// accuracy vs the eq. (11) prediction, as a function of the population
/// size `N`.
///
/// # Errors
///
/// Propagates model-construction errors.
pub fn run(config: &SyntheticConfig, kind: ModelKind) -> crate::Result<Figure> {
    let chain = build_model(kind, config)?;
    let mut simulated = Vec::with_capacity(POPULATIONS.len());
    for (i, &n) in POPULATIONS.iter().enumerate() {
        simulated.push(population_accuracy(&chain, n, config, 0xAA00 + i as u64));
    }
    let mut figure = Figure::new(
        format!("multiuser_{}", kind.letter()),
        format!("multi-user natural protection, {kind}"),
        "population size N",
        "accuracy of tracking one user",
    );
    let xs: Vec<f64> = POPULATIONS.iter().map(|&n| n as f64).collect();
    figure.push(Series::new("simulated", xs.clone(), simulated));
    figure.push(Series::new(
        "eq. (11)",
        xs,
        POPULATIONS
            .iter()
            .map(|&n| im_tracking_accuracy(chain.initial(), n))
            .collect(),
    ));
    Ok(figure)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simulation_matches_equation_11_through_fleet_scale() {
        let config = SyntheticConfig {
            runs: 2000,
            horizon: 40,
            ..SyntheticConfig::default()
        };
        let figure = run(&config, ModelKind::NonSkewed).unwrap();
        let sim = &figure.series[0].y;
        let formula = &figure.series[1].y;
        for ((s, f), &n) in sim.iter().zip(formula).zip(POPULATIONS.iter()) {
            assert!((s - f).abs() < 0.05, "N = {n}: sim {s} vs formula {f}");
        }
        // Accuracy decreases with population but plateaus at the
        // collision probability.
        assert!(sim.last().unwrap() < &sim[0]);
        let collision = sim.last().unwrap();
        assert!(
            (collision - formula.last().unwrap()).abs() < 0.05,
            "fleet-scale plateau"
        );
    }

    #[test]
    fn fleet_accuracy_is_deterministic_in_the_seed() {
        let config = SyntheticConfig::quick();
        let chain = build_model(ModelKind::NonSkewed, &config).unwrap();
        let a = fleet_run_accuracy(&chain, 200, 20, 99, None);
        let b = fleet_run_accuracy(&chain, 200, 20, 99, Some(3));
        assert_eq!(a, b, "shard count must not affect results");
    }
}

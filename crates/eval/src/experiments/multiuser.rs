//! Extension experiment: coexisting users as natural chaffs.
//!
//! Sec. II-A remarks that in a multi-user system every other user (and
//! their chaffs) adds protection, so the single-user results are lower
//! bounds. Here all `N` trajectories are real users following the same
//! model — statistically identical to the IM strategy — and the measured
//! accuracy of tracking a designated user should match eq. (11) exactly.

use super::{build_model, SyntheticConfig};
use crate::montecarlo;
use crate::report::{Figure, Series};
use chaff_core::detector::MlDetector;
use chaff_core::metrics::{time_average, tracking_accuracy_series};
use chaff_core::theory::im_tracking_accuracy;
use chaff_markov::models::ModelKind;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Population sizes swept.
const POPULATIONS: [usize; 5] = [2, 5, 10, 20, 50];

/// Runs the experiment for one model: simulated multi-user tracking
/// accuracy vs the eq. (11) prediction, as a function of the population
/// size `N`.
///
/// # Errors
///
/// Propagates model-construction errors.
pub fn run(config: &SyntheticConfig, kind: ModelKind) -> crate::Result<Figure> {
    let chain = build_model(kind, config)?;
    let mut simulated = Vec::with_capacity(POPULATIONS.len());
    for (i, &n) in POPULATIONS.iter().enumerate() {
        let accuracies =
            montecarlo::run_parallel(config.runs, config.seed ^ (0xAA00 + i as u64), |_, seed| {
                let mut rng = StdRng::seed_from_u64(seed);
                let observed: Vec<_> = (0..n)
                    .map(|_| chain.sample_trajectory(config.horizon, &mut rng))
                    .collect();
                let detections = MlDetector.detect_prefixes(&chain, &observed);
                // Track user 0 (all users are exchangeable).
                time_average(&tracking_accuracy_series(&observed, 0, &detections))
            });
        simulated.push(accuracies.iter().sum::<f64>() / accuracies.len().max(1) as f64);
    }
    let mut figure = Figure::new(
        format!("multiuser_{}", kind.letter()),
        format!("multi-user natural protection, {kind}"),
        "population size N",
        "accuracy of tracking one user",
    );
    let xs: Vec<f64> = POPULATIONS.iter().map(|&n| n as f64).collect();
    figure.push(Series::new("simulated", xs.clone(), simulated));
    figure.push(Series::new(
        "eq. (11)",
        xs,
        POPULATIONS
            .iter()
            .map(|&n| im_tracking_accuracy(chain.initial(), n))
            .collect(),
    ));
    Ok(figure)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simulation_matches_equation_11() {
        let config = SyntheticConfig {
            runs: 2000,
            horizon: 40,
            ..SyntheticConfig::default()
        };
        let figure = run(&config, ModelKind::NonSkewed).unwrap();
        let sim = &figure.series[0].y;
        let formula = &figure.series[1].y;
        for (s, f) in sim.iter().zip(formula) {
            assert!((s - f).abs() < 0.05, "sim {s} vs formula {f}");
        }
        // Accuracy decreases with population but plateaus at the
        // collision probability.
        assert!(sim.last().unwrap() < &sim[0]);
    }
}

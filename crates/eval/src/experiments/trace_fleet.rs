//! Extension experiment: trace-backed chaffed fleets — closing the loop
//! from raw GPS traces to fleet-scale detection numbers.
//!
//! The paper's synthetic fleet sweeps (`multiuser`, `fleet_chaff`) draw
//! every user from a hand-built Markov model. This experiment instead
//! *ingests* a (synthetic stand-in for the) CRAWDAD taxi dataset through
//! the streaming, sharded `chaff-mobility` pipeline, amplified to
//! 10⁴–10⁵ nodes via per-replica seed streams, then:
//!
//! 1. clusters the amplified nodes into mobility *classes* by how many
//!    distinct cells they visit (dwellers → movers — the heterogeneity
//!    axis of Esper et al., arXiv:2306.15740);
//! 2. estimates one empirical Markov chain per class (the per-class
//!    transition-count matrices of the trace window);
//! 3. wires the classes into a [`MobilityRegistry`] whose explicit
//!    assignment maps fleet user `u` onto the class of trace node
//!    `u mod nodes`;
//! 4. runs the whole population through
//!    [`FleetSimulation::run_chaffed`] under a uniform IM chaff policy
//!    and scores it with the multi-class batched detector — exactly the
//!    chaff-based formulation of He et al. (arXiv:1709.03133), but on
//!    empirical rather than synthetic mobility.
//!
//! Reported per budget `B`: tracking/detection accuracy over all users,
//! the eq. (11) reference at the *pooled* empirical occupancy, ingestion
//! throughput (nodes/sec through the streaming pipeline) and fleet
//! throughput (user-slots/sec through simulate + detect).

use crate::report::Table;
use chaff_core::detector::{BatchPrefixDetector, DetectInput};
use chaff_core::metrics::{
    detection_accuracy_series, time_average, tracking_accuracy_series_columnar,
};
use chaff_core::theory::im_tracking_accuracy;
use chaff_markov::{MarkovChain, MobilityRegistry};
use chaff_mobility::empirical::EmpiricalAccumulator;
use chaff_mobility::pipeline::{TraceDataset, TraceDatasetBuilder};
use chaff_sim::fleet::{FleetChaffPolicy, FleetChaffStrategy, FleetConfig, FleetSimulation};
use std::time::Instant;

/// Per-user chaff budgets swept by the full experiment.
pub const BUDGETS: [usize; 3] = [0, 1, 2];

/// Budgets swept under `--quick`.
pub const QUICK_BUDGETS: [usize; 2] = [0, 1];

/// Configuration of the trace-backed fleet experiment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceFleetConfig {
    /// Taxis per replica (the paper's 174 usable nodes).
    pub num_nodes: usize,
    /// Towers generated before the 100 m separation filter.
    pub num_towers: usize,
    /// Trace-window slots used for model estimation.
    pub dataset_slots: usize,
    /// Fleet replicas (amplification factor): the dataset holds about
    /// `num_nodes × replicas` nodes before inactivity filtering.
    pub replicas: usize,
    /// Number of empirical mobility classes to cluster nodes into.
    pub classes: usize,
    /// Slots to simulate the fleet for.
    pub fleet_horizon: usize,
    /// Experiment seed (ingestion and fleet).
    pub seed: u64,
    /// Worker shards for ingestion, simulation and detection; `None`
    /// sizes from available parallelism. Results never depend on this.
    pub shards: Option<usize>,
}

impl Default for TraceFleetConfig {
    fn default() -> Self {
        TraceFleetConfig {
            num_nodes: 174,
            num_towers: 1_100,
            dataset_slots: 100,
            // ~12,500 simulated taxis; ≈10⁴ survive the 5-minute filter.
            replicas: 72,
            classes: 3,
            fleet_horizon: 100,
            seed: 1709,
            shards: None,
        }
    }
}

impl TraceFleetConfig {
    /// A reduced-scale configuration for tests and `--quick` runs.
    pub fn quick() -> Self {
        TraceFleetConfig {
            num_nodes: 40,
            num_towers: 220,
            dataset_slots: 20,
            replicas: 4,
            classes: 2,
            fleet_horizon: 16,
            seed: 1705,
            shards: None,
        }
    }

    /// Builds the amplified trace dataset through the streaming engine.
    ///
    /// # Errors
    ///
    /// Propagates pipeline errors.
    pub fn build_dataset(&self) -> crate::Result<TraceDataset> {
        let mut builder = TraceDatasetBuilder::new()
            .num_nodes(self.num_nodes)
            .num_towers(self.num_towers)
            .horizon_slots(self.dataset_slots)
            .replicas(self.replicas)
            .seed(self.seed);
        if let Some(shards) = self.shards {
            builder = builder.shards(shards);
        }
        Ok(builder.build_streaming()?)
    }
}

/// One measured `(fleet, budget)` cell.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceFleetPoint {
    /// Active nodes in the amplified dataset (= simulated users).
    pub num_users: usize,
    /// Voronoi cells of the trace layout.
    pub cells: usize,
    /// Empirical mobility classes.
    pub classes: usize,
    /// Per-user chaff budget `B`.
    pub budget: usize,
    /// Observed services (`N · (1 + B)`).
    pub services: usize,
    /// Mean time-average tracking accuracy over all users.
    pub tracking_accuracy: f64,
    /// Mean time-average detection accuracy (exact identification).
    pub detection_accuracy: f64,
    /// eq. (11) reference at the pooled empirical occupancy and the
    /// chaffed population `N · (1 + B)` (a mixture-model approximation:
    /// per-class occupancies differ, so this is a guide, not an oracle).
    pub predicted: f64,
    /// Streaming-ingestion throughput in nodes/sec (amplified dataset
    /// build, shared across the budget sweep).
    pub ingest_throughput: f64,
    /// Fleet throughput in user-slots/sec over simulate + detect.
    pub fleet_throughput: f64,
}

/// Number of distinct cells a trajectory visits — the scalar mobility
/// feature the clustering orders nodes by. Kept as the single shared
/// definition so a future EM-style clustering can swap the feature (or
/// the whole assignment step) in one place.
pub fn distinct_cells(trajectory: &chaff_markov::Trajectory) -> usize {
    let mut cells: Vec<usize> = trajectory.iter().map(|c| c.index()).collect();
    cells.sort_unstable();
    cells.dedup();
    cells.len()
}

/// Clusters nodes into `classes` classes by how many distinct cells they
/// visit (ascending: class 0 holds the most dwelling, most trackable
/// nodes), returning one class label per node.
pub fn cluster_by_mobility(dataset: &TraceDataset, classes: usize) -> Vec<usize> {
    let n = dataset.trajectories().len();
    let classes = classes.clamp(1, n.max(1));
    let mobility: Vec<usize> = dataset.trajectories().iter().map(distinct_cells).collect();
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by_key(|&i| (mobility[i], i));
    let mut assignment = vec![0usize; n];
    let chunk = n.div_ceil(classes);
    for (class, nodes) in order.chunks(chunk).enumerate() {
        for &node in nodes {
            assignment[node] = class;
        }
    }
    assignment
}

/// Estimates one empirical chain per class and assembles the registry
/// with the node→class assignment.
///
/// # Errors
///
/// Propagates estimation and registry errors.
pub fn build_registry(
    dataset: &TraceDataset,
    assignment: Vec<usize>,
) -> crate::Result<MobilityRegistry> {
    let num_classes = assignment.iter().copied().max().map_or(0, |m| m + 1);
    let num_cells = dataset.cell_map().num_cells();
    let mut accumulators: Vec<EmpiricalAccumulator> = (0..num_classes)
        .map(|_| EmpiricalAccumulator::new(num_cells))
        .collect::<chaff_mobility::Result<_>>()?;
    for (trajectory, &class) in dataset.trajectories().iter().zip(&assignment) {
        accumulators[class].record(trajectory)?;
    }
    let chains: Vec<MarkovChain> = accumulators
        .into_iter()
        .map(|acc| acc.finish(0.0).map(|model| model.chain().clone()))
        .collect::<chaff_mobility::Result<_>>()?;
    Ok(MobilityRegistry::with_assignment(chains, assignment)?)
}

/// Measures one budget cell over an already-built dataset and registry.
///
/// # Errors
///
/// Propagates fleet and detection errors.
pub fn measure(
    dataset: &TraceDataset,
    registry: &MobilityRegistry,
    budget: usize,
    config: &TraceFleetConfig,
    ingest_throughput: f64,
) -> crate::Result<TraceFleetPoint> {
    let num_users = dataset.trajectories().len();
    let mut fleet_config =
        FleetConfig::new(num_users, config.fleet_horizon).with_seed(config.seed ^ 0x7ACE_F1EE7);
    if let Some(shards) = config.shards {
        fleet_config = fleet_config.with_shards(shards);
    }
    let detector = match config.shards {
        Some(s) => BatchPrefixDetector::with_shards(s),
        None => BatchPrefixDetector::new(),
    };
    let policy = FleetChaffPolicy::uniform(FleetChaffStrategy::Im, budget);
    let started = Instant::now();
    let outcome = FleetSimulation::with_registry(registry, fleet_config).run_chaffed(&policy)?;
    let detections = detector.detect_prefixes(DetectInput::new(registry, &outcome.observed))?;
    let elapsed = started.elapsed().as_secs_f64();
    let mut tracking = 0.0;
    let mut detection = 0.0;
    for &u in &outcome.user_observed_indices {
        tracking += time_average(&tracking_accuracy_series_columnar(
            &outcome.observed,
            u,
            &detections,
        ));
        detection += time_average(&detection_accuracy_series(u, &detections));
    }
    let services = outcome.observed.num_trajectories();
    Ok(TraceFleetPoint {
        num_users,
        cells: dataset.cell_map().num_cells(),
        classes: registry.num_classes(),
        budget,
        services,
        tracking_accuracy: tracking / num_users as f64,
        detection_accuracy: detection / num_users as f64,
        predicted: im_tracking_accuracy(dataset.model().initial(), services),
        ingest_throughput,
        fleet_throughput: outcome.stats.user_slots as f64 / elapsed.max(f64::MIN_POSITIVE),
    })
}

/// Runs the budget sweep: one streamed ingestion, one registry, one
/// fleet run per budget.
///
/// # Errors
///
/// Propagates pipeline, estimation and fleet errors.
pub fn run_with(config: &TraceFleetConfig, budgets: &[usize]) -> crate::Result<Table> {
    let started = Instant::now();
    let dataset = config.build_dataset()?;
    let ingest_elapsed = started.elapsed().as_secs_f64();
    let ingest_throughput =
        dataset.trajectories().len() as f64 / ingest_elapsed.max(f64::MIN_POSITIVE);
    let registry = build_registry(&dataset, cluster_by_mobility(&dataset, config.classes))?;
    let mut table = Table::new(
        "trace_fleet",
        "trace-backed chaffed fleets: streamed amplified ingestion -> per-class \
         empirical chains -> fleet detection",
        vec![
            "nodes".into(),
            "cells".into(),
            "classes".into(),
            "B".into(),
            "services".into(),
            "tracking".into(),
            "eq. (11) pooled".into(),
            "detection".into(),
            "ingest nodes/s".into(),
            "user-slots/s".into(),
        ],
    );
    for &budget in budgets {
        let point = measure(&dataset, &registry, budget, config, ingest_throughput)?;
        table.push(vec![
            point.num_users.to_string(),
            point.cells.to_string(),
            point.classes.to_string(),
            point.budget.to_string(),
            point.services.to_string(),
            format!("{:.4}", point.tracking_accuracy),
            format!("{:.4}", point.predicted),
            format!("{:.6}", point.detection_accuracy),
            format!("{:.0}", point.ingest_throughput),
            format!("{:.0}", point.fleet_throughput),
        ]);
    }
    Ok(table)
}

/// Runs the full sweep.
///
/// # Errors
///
/// Propagates pipeline, estimation and fleet errors.
pub fn run(config: &TraceFleetConfig) -> crate::Result<Table> {
    run_with(config, &BUDGETS)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clustering_orders_classes_by_mobility_and_covers_all_nodes() {
        let config = TraceFleetConfig::quick();
        let dataset = config.build_dataset().unwrap();
        let assignment = cluster_by_mobility(&dataset, 2);
        assert_eq!(assignment.len(), dataset.trajectories().len());
        // Every class-0 node visits no more cells than any class-1 node.
        let max0 = dataset
            .trajectories()
            .iter()
            .zip(&assignment)
            .filter(|(_, &c)| c == 0)
            .map(|(t, _)| distinct_cells(t))
            .max()
            .unwrap();
        let min1 = dataset
            .trajectories()
            .iter()
            .zip(&assignment)
            .filter(|(_, &c)| c == 1)
            .map(|(t, _)| distinct_cells(t))
            .min()
            .unwrap();
        assert!(max0 <= min1, "class 0 (dwellers) {max0} !<= class 1 {min1}");
    }

    #[test]
    fn registry_classes_explain_their_own_nodes_best() {
        let config = TraceFleetConfig::quick();
        let dataset = config.build_dataset().unwrap();
        let assignment = cluster_by_mobility(&dataset, 2);
        let registry = build_registry(&dataset, assignment.clone()).unwrap();
        assert_eq!(registry.num_classes(), 2);
        assert_eq!(registry.num_states(), dataset.cell_map().num_cells());
        // Pooled over each class, the class's own chain must dominate.
        let mut own = 0.0;
        let mut other = 0.0;
        for (t, &class) in dataset.trajectories().iter().zip(&assignment) {
            own += registry.chain(class).log_likelihood(t);
            other += registry.chain(1 - class).log_likelihood(t);
        }
        assert!(own > other, "own {own} !> other {other}");
        // The explicit assignment is what class_of consults.
        for (node, &class) in assignment.iter().enumerate() {
            assert_eq!(registry.class_of(node), class);
        }
    }

    #[test]
    fn quick_sweep_produces_one_row_per_budget() {
        let config = TraceFleetConfig::quick();
        let table = run_with(&config, &[0, 1]).unwrap();
        assert_eq!(table.rows.len(), 2);
    }

    #[test]
    fn chaff_budget_dilutes_detection_on_trace_fleets() {
        let config = TraceFleetConfig::quick();
        let dataset = config.build_dataset().unwrap();
        let registry = build_registry(&dataset, cluster_by_mobility(&dataset, 2)).unwrap();
        let b0 = measure(&dataset, &registry, 0, &config, 1.0).unwrap();
        let b2 = measure(&dataset, &registry, 2, &config, 1.0).unwrap();
        assert_eq!(b2.services, 3 * b0.services);
        assert!(
            b2.detection_accuracy < b0.detection_accuracy,
            "chaffed {} !< undefended {}",
            b2.detection_accuracy,
            b0.detection_accuracy
        );
        assert!(
            b2.tracking_accuracy <= b0.tracking_accuracy + 0.02,
            "chaffed tracking {} should not exceed undefended {}",
            b2.tracking_accuracy,
            b0.tracking_accuracy
        );
    }

    #[test]
    fn acceptance_amplified_ten_thousand_node_trace_fleet() {
        // The ISSUE 4 acceptance run: an amplified ≥10,000-node
        // trace-backed fleet, end to end — streamed sharded ingestion,
        // per-class empirical chains, run_chaffed, batched multi-class
        // detection.
        let config = TraceFleetConfig {
            num_nodes: 174,
            num_towers: 220,
            dataset_slots: 20,
            replicas: 64,
            classes: 3,
            fleet_horizon: 12,
            seed: 1709,
            shards: None,
        };
        let dataset = config.build_dataset().unwrap();
        assert!(
            dataset.trajectories().len() >= 10_000,
            "amplified fleet has only {} active nodes",
            dataset.trajectories().len()
        );
        let registry = build_registry(&dataset, cluster_by_mobility(&dataset, 3)).unwrap();
        assert_eq!(registry.num_classes(), 3);
        let point = measure(&dataset, &registry, 1, &config, 1.0).unwrap();
        assert_eq!(point.services, 2 * point.num_users);
        assert!(point.fleet_throughput > 0.0);
        // Sanity: accuracies are proper probabilities and tracking at
        // N ≥ 20,000 services sits near the pooled collision floor.
        assert!((0.0..=1.0).contains(&point.tracking_accuracy));
        assert!((0.0..=1.0).contains(&point.detection_accuracy));
        assert!(
            point.tracking_accuracy < 0.5,
            "tracking {} should be far below 1 at this scale",
            point.tracking_accuracy
        );
    }
}

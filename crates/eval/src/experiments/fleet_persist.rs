//! Tentpole experiment (ISSUE 8): persistent paged fleet store —
//! write → checkpoint → kill → resume → verify.
//!
//! The paper's fleet regime ("millions of users served by edge clouds",
//! He et al., ICDCS'17) makes regenerating a population for every
//! detector pass the dominant cost. This experiment exercises the full
//! persistence loop per population rung:
//!
//! 1. **Write.** A fresh [`StreamingFleetEngine`] streams the fleet
//!    into a store file slot by slot
//!    ([`run_to_store`](StreamingFleetEngine::run_to_store)) — the
//!    `N × T` grid never exists in the writing process.
//! 2. **Kill.** A truncated copy of the file (a simulated crash before
//!    `finish`) must be *rejected typed* by
//!    [`FleetStoreReader::open`], proving resume logic can distinguish
//!    a usable checkpoint from a torn one.
//! 3. **Resume.** The intact store is reopened and its slot rows are
//!    streamed page by page through the unified
//!    [`detect_prefixes`](BatchPrefixDetector::detect_prefixes) entry
//!    ([`DetectObservations::Paged`](chaff_core::detector::DetectObservations))
//!    — detection without ever materializing the grid.
//! 4. **Verify.** The paged detections must match the in-memory batch
//!    pipeline (simulate + columnar detect) *bit for bit*, compared via
//!    [`detection_checksum`]; the whole-grid
//!    [`FleetOutcome::restore`] path must reproduce the batch arenas
//!    exactly.

use super::SyntheticConfig;
use crate::report::Table;
use chaff_core::detector::{BatchPrefixDetector, DetectInput, Detection};
use chaff_markov::MobilityRegistry;
use chaff_sim::fleet::{FleetChaffPolicy, FleetConfig, FleetOutcome, FleetSimulation};
use chaff_sim::streaming::StreamingFleetEngine;
use chaff_sim::test_support::{mixed_registry, strategy_from};
use chaff_store::FleetStoreReader;
use std::path::Path;
use std::time::Instant;

/// Populations swept by the full experiment.
pub const POPULATIONS: [usize; 2] = [10_000, 100_000];

/// Populations swept under `--quick`.
pub const QUICK_POPULATIONS: [usize; 1] = [2_000];

/// Per-user chaff budget of the sweep (uniform CML policy): one chaff
/// each keeps the persisted width at `2N` while still exercising the
/// mixture detection path.
pub const BUDGET: usize = 1;

/// Slots persisted per rung. Short on purpose: persistence cost is
/// linear in `N · T` and the round-trip contract is slot-count
/// independent.
pub const PERSIST_HORIZON: usize = 12;

/// Mobility classes in the heterogeneous registry.
pub const CLASSES: usize = 3;

/// Order-sensitive FNV-1a checksum of a detection sequence: folds every
/// slot's tie-set length and indices.
/// Two detection runs agree bit-for-bit iff their checksums agree
/// (up to hash collision), which lets a `N = 10⁶` equality check
/// travel as one `u64` — the golden value pinned in tier-1.
pub fn detection_checksum(detections: &[Detection]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    let mut mix = |v: u64| {
        hash ^= v;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    };
    for detection in detections {
        mix(detection.tie_set().len() as u64);
        for &index in detection.tie_set() {
            mix(index as u64);
        }
    }
    hash
}

/// One measured rung of the persistence loop.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PersistPoint {
    /// Fleet size `N`.
    pub num_users: usize,
    /// Persisted services `N · (1 + B)`.
    pub services: usize,
    /// Store file size in bytes.
    pub file_bytes: u64,
    /// Seconds to stream-simulate and persist the fleet.
    pub write_secs: f64,
    /// Seconds to detect straight off the file, page by page.
    pub stream_detect_secs: f64,
    /// [`detection_checksum`] of the paged detections.
    pub checksum: u64,
    /// Whether paged detection matched the in-memory pipeline AND the
    /// whole-grid restore reproduced the batch arenas bit-for-bit.
    pub bit_equal: bool,
    /// Whether the truncated (killed mid-write) copy was rejected
    /// typed at open.
    pub kill_detected: bool,
}

/// The registry every rung runs on: deterministic in `seed`.
pub fn persist_registry(seed: u64, num_cells: usize) -> MobilityRegistry {
    mixed_registry(seed, num_cells, CLASSES)
}

/// Runs the write → kill → resume → verify loop for one population.
///
/// Store files are created under `dir` and removed before returning.
///
/// # Errors
///
/// Propagates simulation, store and detection errors.
pub fn measure(
    registry: &MobilityRegistry,
    num_users: usize,
    horizon: usize,
    seed: u64,
    dir: &Path,
) -> crate::Result<PersistPoint> {
    let policy = FleetChaffPolicy::uniform(strategy_from(1), BUDGET);
    let config = FleetConfig::new(num_users, horizon).with_seed(seed);
    let path = dir.join(format!(
        "fleet_persist_{num_users}_{}.store",
        std::process::id()
    ));

    // 1. Write: stream the fleet to disk.
    let mut engine = StreamingFleetEngine::with_registry(registry, config.clone(), &policy)?;
    let started = Instant::now();
    engine.run_to_store(&path)?;
    let write_secs = started.elapsed().as_secs_f64();
    let file_bytes = std::fs::metadata(&path)?.len();

    // 2. Kill: a copy truncated mid-write must be rejected typed.
    let kill_path = dir.join(format!(
        "fleet_persist_{num_users}_{}.killed",
        std::process::id()
    ));
    let bytes = std::fs::read(&path)?;
    std::fs::write(&kill_path, &bytes[..bytes.len() * 2 / 3])?;
    let kill_detected = FleetStoreReader::open(&kill_path).is_err();
    std::fs::remove_file(&kill_path)?;

    // 3. Resume: paged detection straight off the store file.
    let mut reader = FleetStoreReader::open(&path)?;
    let detector = BatchPrefixDetector::new();
    let started = Instant::now();
    let paged = {
        let mut stream = reader.stream_slots();
        detector.detect_prefixes(DetectInput::new(registry, &mut stream))?
    };
    let stream_detect_secs = started.elapsed().as_secs_f64();
    let checksum = detection_checksum(&paged);

    // 4. Verify against the in-memory batch pipeline.
    let outcome = FleetSimulation::with_registry(registry, config).run_chaffed(&policy)?;
    let reference = detector.detect_prefixes(DetectInput::new(registry, &outcome.observed))?;
    let restored = FleetOutcome::restore(&path)?;
    let bit_equal = paged == reference
        && restored.observed == outcome.observed
        && restored.user_cells == outcome.user_cells
        && restored.user_observed_indices == outcome.user_observed_indices
        && restored.stats == outcome.stats;
    std::fs::remove_file(&path)?;

    Ok(PersistPoint {
        num_users,
        services: num_users * (1 + BUDGET),
        file_bytes,
        write_secs,
        stream_detect_secs,
        checksum,
        bit_equal,
        kill_detected,
    })
}

/// Runs the sweep over `populations` and renders the report table.
///
/// # Errors
///
/// Propagates [`measure`] errors.
pub fn run_with(config: &SyntheticConfig, populations: &[usize]) -> crate::Result<Table> {
    let registry = persist_registry(config.seed, config.num_cells);
    let dir = std::env::temp_dir();
    let mut table = Table::new(
        "fleet_persist",
        format!(
            "Persistent paged fleet store: write / kill / resume / verify \
             (B = {BUDGET}, T = {PERSIST_HORIZON})"
        ),
        vec![
            "N".into(),
            "services".into(),
            "file MB".into(),
            "write s".into(),
            "stream-detect s".into(),
            "checksum".into(),
            "bit-equal".into(),
            "kill-detected".into(),
        ],
    );
    for &num_users in populations {
        let point = measure(&registry, num_users, PERSIST_HORIZON, config.seed, &dir)?;
        table.push(vec![
            format!("{}", point.num_users),
            format!("{}", point.services),
            format!("{:.1}", point.file_bytes as f64 / (1024.0 * 1024.0)),
            format!("{:.2}", point.write_secs),
            format!("{:.2}", point.stream_detect_secs),
            format!("{:#018x}", point.checksum),
            format!("{}", point.bit_equal),
            format!("{}", point.kill_detected),
        ]);
    }
    Ok(table)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn the_persistence_loop_round_trips_at_small_scale() {
        let registry = persist_registry(1709, 8);
        let point = measure(&registry, 120, 6, 9, &std::env::temp_dir()).unwrap();
        assert!(point.bit_equal);
        assert!(point.kill_detected);
        assert_eq!(point.services, 240);
        assert!(point.file_bytes > 0);
    }

    #[test]
    fn detection_checksums_separate_different_runs() {
        let a = [Detection::new(vec![0]), Detection::new(vec![1, 2])];
        let b = [Detection::new(vec![0]), Detection::new(vec![1, 3])];
        let c = [Detection::new(vec![0]), Detection::new(vec![1, 2])];
        assert_ne!(detection_checksum(&a), detection_checksum(&b));
        assert_eq!(detection_checksum(&a), detection_checksum(&c));
        assert_ne!(detection_checksum(&a), detection_checksum(&a[..1]));
    }
}

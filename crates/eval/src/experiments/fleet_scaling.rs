//! Extension experiment: fleet-engine throughput scaling.
//!
//! The ROADMAP's north star is serving millions of users; this
//! experiment measures how far the fleet engine gets on the current
//! host. For each population size it runs one natural-protection fleet
//! ([`chaff_sim::fleet::FleetSimulation`]) and one batched detection
//! pass ([`BatchPrefixDetector`]), reporting throughput in **user-slots
//! per second** (users × slots ÷ wall-clock) alongside the tracking accuracy
//! and its eq. (11) prediction — so a performance regression and a
//! correctness regression are visible in the same table.

use super::{build_model, SyntheticConfig};
use crate::report::Table;
use chaff_core::detector::{BatchPrefixDetector, DetectInput};
use chaff_core::metrics::{time_average, tracking_accuracy_series_columnar};
use chaff_core::theory::im_tracking_accuracy;
use chaff_markov::models::ModelKind;
use std::time::Instant;

/// Populations swept by the full experiment.
pub const POPULATIONS: [usize; 3] = [100, 1_000, 10_000];

/// Populations swept under `--quick`.
pub const QUICK_POPULATIONS: [usize; 3] = [50, 200, 1_000];

/// One measured row of the scaling table.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScalingPoint {
    /// Fleet size `N`.
    pub num_users: usize,
    /// Simulated user-slots.
    pub user_slots: usize,
    /// Fleet-simulation throughput (user-slots/sec).
    pub sim_throughput: f64,
    /// Batched-detection throughput (user-slots/sec).
    pub detect_throughput: f64,
    /// Mean tracking accuracy over all designated users.
    pub accuracy: f64,
    /// The eq. (11) prediction for this `N`.
    pub predicted: f64,
}

/// Measures one fleet size.
///
/// # Errors
///
/// Propagates fleet-configuration errors.
pub fn measure(
    chain: &chaff_markov::MarkovChain,
    num_users: usize,
    horizon: usize,
    seed: u64,
) -> crate::Result<ScalingPoint> {
    use chaff_sim::fleet::{FleetConfig, FleetSimulation};

    let config = FleetConfig::new(num_users, horizon).with_seed(seed);
    let sim_started = Instant::now();
    let outcome = FleetSimulation::new(chain, config).run_natural()?;
    let sim_elapsed = sim_started.elapsed().as_secs_f64();

    let detector = BatchPrefixDetector::new();
    let detect_started = Instant::now();
    let detections = detector.detect_prefixes(DetectInput::new(chain, &outcome.observed))?;
    let detect_elapsed = detect_started.elapsed().as_secs_f64();

    let total: f64 = outcome
        .user_observed_indices
        .iter()
        .map(|&u| {
            time_average(&tracking_accuracy_series_columnar(
                &outcome.observed,
                u,
                &detections,
            ))
        })
        .sum();
    let user_slots = outcome.stats.user_slots;
    Ok(ScalingPoint {
        num_users,
        user_slots,
        sim_throughput: user_slots as f64 / sim_elapsed.max(f64::MIN_POSITIVE),
        detect_throughput: user_slots as f64 / detect_elapsed.max(f64::MIN_POSITIVE),
        accuracy: total / num_users as f64,
        predicted: im_tracking_accuracy(chain.initial(), num_users),
    })
}

/// Runs the scaling sweep over `populations` (the repro binary passes
/// [`POPULATIONS`] or [`QUICK_POPULATIONS`]).
///
/// # Errors
///
/// Propagates model-construction and fleet errors.
pub fn run_with_populations(
    config: &SyntheticConfig,
    populations: &[usize],
) -> crate::Result<Table> {
    let chain = build_model(ModelKind::NonSkewed, config)?;
    let mut table = Table::new(
        "fleet_scaling",
        "fleet engine throughput and accuracy vs population size",
        vec![
            "N".into(),
            "user-slots".into(),
            "sim user-slots/s".into(),
            "detect user-slots/s".into(),
            "accuracy".into(),
            "eq. (11)".into(),
        ],
    );
    for (i, &n) in populations.iter().enumerate() {
        let point = measure(&chain, n, config.horizon, config.seed ^ (0xF1EE + i as u64))?;
        table.push(vec![
            point.num_users.to_string(),
            point.user_slots.to_string(),
            format!("{:.0}", point.sim_throughput),
            format!("{:.0}", point.detect_throughput),
            format!("{:.4}", point.accuracy),
            format!("{:.4}", point.predicted),
        ]);
    }
    Ok(table)
}

/// Runs the full sweep.
///
/// # Errors
///
/// Propagates model-construction and fleet errors.
pub fn run(config: &SyntheticConfig) -> crate::Result<Table> {
    run_with_populations(config, &POPULATIONS)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaling_points_are_sane() {
        let config = SyntheticConfig::quick();
        let chain = build_model(ModelKind::NonSkewed, &config).unwrap();
        let point = measure(&chain, 64, 10, 5).unwrap();
        assert_eq!(point.user_slots, 640);
        assert!(point.sim_throughput > 0.0);
        assert!(point.detect_throughput > 0.0);
        assert!((0.0..=1.0).contains(&point.accuracy));
        // With 64 exchangeable users the accuracy sits near eq. (11).
        assert!((point.accuracy - point.predicted).abs() < 0.1);
    }

    #[test]
    fn table_has_one_row_per_population() {
        let config = SyntheticConfig::quick();
        let table = run_with_populations(&config, &[8, 32]).unwrap();
        assert_eq!(table.rows.len(), 2);
    }
}

//! One module per reproduced figure/table; shared configuration here,
//! and the unified [`Experiment`] trait + registry in [`registry`].

pub mod fig10;
pub mod fig4;
pub mod fig5;
pub mod fig6;
pub mod fig7;
pub mod fig8;
pub mod fig9;
pub mod fleet_chaff;
pub mod fleet_daynight;
pub mod fleet_equilibrium;
pub mod fleet_persist;
pub mod fleet_scale;
pub mod fleet_scaling;
pub mod fleet_stream;
pub mod multiuser;
pub mod registry;
pub mod table1;
pub mod theory;
pub mod trace_fleet;

pub use registry::{find, Experiment, ExperimentCtx, ExperimentOutput};

use chaff_markov::models::ModelKind;
use chaff_markov::MarkovChain;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Configuration for the synthetic experiments (Sec. VII-A): the paper
/// uses `L = 10` cells, `T = 100` slots and 1000 Monte Carlo runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SyntheticConfig {
    /// Number of cells `L`.
    pub num_cells: usize,
    /// Number of slots `T`.
    pub horizon: usize,
    /// Monte Carlo runs.
    pub runs: usize,
    /// Experiment seed (controls the model draw and all runs).
    pub seed: u64,
}

impl Default for SyntheticConfig {
    fn default() -> Self {
        SyntheticConfig {
            num_cells: 10,
            horizon: 100,
            runs: 1000,
            seed: 1709,
        }
    }
}

impl SyntheticConfig {
    /// A reduced-scale configuration for tests and `--quick` runs.
    pub fn quick() -> Self {
        SyntheticConfig {
            num_cells: 10,
            horizon: 40,
            runs: 60,
            seed: 1709,
        }
    }
}

/// Configuration for the trace-driven experiments (Sec. VII-B).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceConfig {
    /// Taxis to simulate (paper: 174 usable nodes).
    pub num_nodes: usize,
    /// Towers to generate before the 100 m filter (paper: 959 cells kept).
    pub num_towers: usize,
    /// Slots (paper: 100 one-minute slots).
    pub horizon: usize,
    /// Number of top (most trackable) users to protect.
    pub top_k: usize,
    /// Monte Carlo draws for randomized strategies.
    pub im_runs: usize,
    /// Experiment seed.
    pub seed: u64,
}

impl Default for TraceConfig {
    fn default() -> Self {
        TraceConfig {
            num_nodes: 174,
            num_towers: 1_100,
            horizon: 100,
            top_k: 5,
            im_runs: 10,
            seed: 1709,
        }
    }
}

impl TraceConfig {
    /// A reduced-scale configuration for tests and `--quick` runs.
    pub fn quick() -> Self {
        TraceConfig {
            num_nodes: 40,
            num_towers: 350,
            horizon: 40,
            top_k: 3,
            im_runs: 3,
            // Chosen so the reduced-scale fleet still exhibits the
            // paper's qualitative Fig. 9 claims (a dominant trackable
            // user whom a single OO chaff rescues) under the vendored
            // deterministic RNG stream.
            seed: 1705,
        }
    }

    /// Builds the trace dataset for this configuration.
    ///
    /// # Errors
    ///
    /// Propagates pipeline errors.
    pub fn build_dataset(&self) -> crate::Result<chaff_mobility::pipeline::TraceDataset> {
        Ok(chaff_mobility::pipeline::TraceDatasetBuilder::new()
            .num_nodes(self.num_nodes)
            .num_towers(self.num_towers)
            .horizon_slots(self.horizon)
            .seed(self.seed)
            .build()?)
    }
}

/// Builds the mobility chain for one synthetic model, deterministically in
/// `(kind, config.seed, config.num_cells)` — so Table 1 and Figs. 4–7 all
/// see the *same* four models.
///
/// # Errors
///
/// Propagates model-construction errors.
pub fn build_model(kind: ModelKind, config: &SyntheticConfig) -> crate::Result<MarkovChain> {
    // Offset the seed per model so the random models (a) and (b) draw
    // independent matrices.
    let offset = match kind {
        ModelKind::NonSkewed => 0x0a,
        ModelKind::SpatiallySkewed => 0x0b,
        ModelKind::TemporallySkewed => 0x0c,
        ModelKind::SpatioTemporallySkewed => 0x0d,
    };
    let mut rng = StdRng::seed_from_u64(config.seed.wrapping_add(offset));
    let matrix = kind.build(config.num_cells, &mut rng)?;
    Ok(MarkovChain::new(matrix)?)
}

/// Ranks users of a trace dataset by how trackable they are without any
/// chaff (the per-user accuracy of Fig. 9a), descending. Returns
/// `(user_index, accuracy)` pairs.
pub fn rank_users_by_trackability(
    dataset: &chaff_mobility::pipeline::TraceDataset,
) -> Vec<(usize, f64)> {
    use chaff_core::detector::MlDetector;
    use chaff_core::metrics::{time_average, tracking_accuracy_series};

    let model = dataset.model();
    let observed = dataset.trajectories();
    let detections = MlDetector
        .detect_prefixes(model, observed)
        .expect("trace trajectories are uniform");
    let mut ranked: Vec<(usize, f64)> = (0..observed.len())
        .map(|u| {
            let series = tracking_accuracy_series(observed, u, &detections);
            (u, time_average(&series))
        })
        .collect();
    ranked.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite").then(a.0.cmp(&b.0)));
    ranked
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn models_are_deterministic_in_the_seed() {
        let config = SyntheticConfig::quick();
        for kind in ModelKind::ALL {
            let a = build_model(kind, &config).unwrap();
            let b = build_model(kind, &config).unwrap();
            assert_eq!(a.matrix(), b.matrix(), "{kind}");
        }
        // Models (a) and (b) must differ from each other.
        let a = build_model(ModelKind::NonSkewed, &config).unwrap();
        let b = build_model(ModelKind::SpatiallySkewed, &config).unwrap();
        assert_ne!(a.matrix(), b.matrix());
    }

    #[test]
    fn user_ranking_is_sorted_descending() {
        let dataset = TraceConfig::quick().build_dataset().unwrap();
        let ranked = rank_users_by_trackability(&dataset);
        assert_eq!(ranked.len(), dataset.trajectories().len());
        for w in ranked.windows(2) {
            assert!(w[0].1 >= w[1].1);
        }
        // The paper's headline observation: the top user is tracked far
        // above the 1/N baseline.
        let baseline = 1.0 / ranked.len() as f64;
        assert!(ranked[0].1 > 3.0 * baseline, "top = {}", ranked[0].1);
    }
}

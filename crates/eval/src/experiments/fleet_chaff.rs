//! Extension experiment: chaffed fleets at scale — the budgeted
//! multi-user game.
//!
//! The chaff-based arXiv version (He et al., 1709.03133) frames the
//! defense as a fleet-wide game: every user buys `B` chaff services, and
//! the eavesdropper's ML detector faces the enlarged candidate set of
//! `N · (1 + B)` trajectories. This experiment sweeps the per-user
//! budget `B` over whole fleets ([`FleetSimulation::run_chaffed`] under
//! a [`FleetChaffPolicy`], scored by the batched detection core) and
//! reports, per `(N, B)`:
//!
//! * the mean *tracking* accuracy over all designated users, against the
//!   eq. (11) prediction for the chaffed population `N · (1 + B)` and
//!   the undefended baseline at `N` (for the same seed, a `B = 0`
//!   [`measure`] call reproduces one `multiuser` fleet run bit-for-bit;
//!   the emitted table seeds each `(N, B)` cell independently, while
//!   `multiuser` additionally Monte-Carlo-averages over runs);
//! * the mean *detection* accuracy (naming exactly the user's service),
//!   which falls by the chaff-dilution factor `1 / (1 + B)`;
//! * engine throughput in **user-slots per second** (simulate + detect),
//!   so scaling regressions surface next to the accuracy numbers.

use super::{build_model, SyntheticConfig};
use crate::report::Table;
use chaff_core::detector::{BatchPrefixDetector, DetectInput};
use chaff_core::metrics::{
    detection_accuracy_series, time_average, tracking_accuracy_series_columnar,
};
use chaff_core::theory::im_tracking_accuracy;
use chaff_markov::models::ModelKind;
use chaff_markov::MarkovChain;
use chaff_sim::fleet::{FleetChaffPolicy, FleetChaffStrategy, FleetConfig, FleetSimulation};
use std::time::Instant;

/// Per-user chaff budgets swept by the full experiment.
pub const BUDGETS: [usize; 6] = [0, 1, 2, 3, 4, 5];

/// Budgets swept under `--quick`.
pub const QUICK_BUDGETS: [usize; 3] = [0, 1, 2];

/// Populations swept by the full experiment.
pub const POPULATIONS: [usize; 3] = [100, 1_000, 10_000];

/// Populations swept under `--quick`.
pub const QUICK_POPULATIONS: [usize; 2] = [50, 200];

/// One measured cell of the budget sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChaffPoint {
    /// Fleet size `N`.
    pub num_users: usize,
    /// Per-user chaff budget `B`.
    pub budget: usize,
    /// Observed services (`N · (1 + B)` under a uniform policy).
    pub services: usize,
    /// Mean time-average tracking accuracy over all designated users.
    pub tracking_accuracy: f64,
    /// Mean time-average detection accuracy (exact identification).
    pub detection_accuracy: f64,
    /// The eq. (11) prediction at the chaffed population `N · (1 + B)`.
    pub predicted: f64,
    /// The eq. (11) undefended baseline at `N` (the `B = 0` row's
    /// prediction).
    pub undefended_baseline: f64,
    /// Fleet-engine throughput, user-slots/sec over simulate + detect.
    pub throughput: f64,
}

/// Measures one `(N, B)` cell: a uniform IM policy over one fleet run,
/// scored through the chaff-aware batch detection path.
///
/// Uses the same per-user seeding, detection semantics and accuracy
/// aggregation as the `multiuser` experiment, so `budget = 0` reproduces
/// its eq. (11) numbers bit-for-bit.
///
/// # Errors
///
/// Propagates fleet-configuration errors.
pub fn measure(
    chain: &MarkovChain,
    num_users: usize,
    budget: usize,
    horizon: usize,
    seed: u64,
    shards: Option<usize>,
) -> crate::Result<ChaffPoint> {
    let mut config = FleetConfig::new(num_users, horizon).with_seed(seed);
    if let Some(shards) = shards {
        config = config.with_shards(shards);
    }
    let detector = match shards {
        Some(s) => BatchPrefixDetector::with_shards(s),
        None => BatchPrefixDetector::new(),
    };
    let policy = FleetChaffPolicy::uniform(FleetChaffStrategy::Im, budget);
    let started = Instant::now();
    let outcome = FleetSimulation::new(chain, config).run_chaffed(&policy)?;
    let table = chain.log_likelihood_table();
    let detections = detector.detect_prefixes(DetectInput::new(&table, &outcome.observed))?;
    let elapsed = started.elapsed().as_secs_f64();
    let mut tracking = 0.0;
    let mut detection = 0.0;
    for &u in &outcome.user_observed_indices {
        tracking += time_average(&tracking_accuracy_series_columnar(
            &outcome.observed,
            u,
            &detections,
        ));
        detection += time_average(&detection_accuracy_series(u, &detections));
    }
    let services = outcome.observed.num_trajectories();
    Ok(ChaffPoint {
        num_users,
        budget,
        services,
        tracking_accuracy: tracking / num_users as f64,
        detection_accuracy: detection / num_users as f64,
        predicted: im_tracking_accuracy(chain.initial(), services),
        undefended_baseline: im_tracking_accuracy(chain.initial(), num_users),
        throughput: outcome.stats.user_slots as f64 / elapsed.max(f64::MIN_POSITIVE),
    })
}

/// Runs the sweep over `populations × budgets` (the repro binary passes
/// the full or `--quick` constants).
///
/// # Errors
///
/// Propagates model-construction and fleet errors.
pub fn run_with(
    config: &SyntheticConfig,
    populations: &[usize],
    budgets: &[usize],
) -> crate::Result<Table> {
    let chain = build_model(ModelKind::NonSkewed, config)?;
    let mut table = Table::new(
        "fleet_chaff",
        "chaffed fleets: per-user budget sweep (uniform IM policy)",
        vec![
            "N".into(),
            "B".into(),
            "services".into(),
            "tracking".into(),
            "eq. (11) @N(1+B)".into(),
            "undefended eq. (11)".into(),
            "detection".into(),
            "user-slots/s".into(),
        ],
    );
    for (i, &n) in populations.iter().enumerate() {
        for (j, &b) in budgets.iter().enumerate() {
            let seed = config.seed ^ (0xC4AF + (i * budgets.len() + j) as u64);
            let point = measure(&chain, n, b, config.horizon, seed, None)?;
            table.push(vec![
                point.num_users.to_string(),
                point.budget.to_string(),
                point.services.to_string(),
                format!("{:.4}", point.tracking_accuracy),
                format!("{:.4}", point.predicted),
                format!("{:.4}", point.undefended_baseline),
                format!("{:.6}", point.detection_accuracy),
                format!("{:.0}", point.throughput),
            ]);
        }
    }
    Ok(table)
}

/// Runs the full sweep.
///
/// # Errors
///
/// Propagates model-construction and fleet errors.
pub fn run(config: &SyntheticConfig) -> crate::Result<Table> {
    run_with(config, &POPULATIONS, &BUDGETS)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_budget_matches_the_multiuser_experiment_bit_for_bit() {
        let config = SyntheticConfig::quick();
        let chain = build_model(ModelKind::NonSkewed, &config).unwrap();
        for (n, seed) in [(64usize, 7u64), (200, 99)] {
            let point = measure(&chain, n, 0, 20, seed, None).unwrap();
            let undefended = super::super::multiuser::fleet_run_accuracy(&chain, n, 20, seed, None);
            assert_eq!(
                point.tracking_accuracy.to_bits(),
                undefended.to_bits(),
                "N = {n}"
            );
            assert_eq!(point.predicted, point.undefended_baseline);
        }
    }

    #[test]
    fn acceptance_ten_thousand_users_budget_two() {
        // The ISSUE 3 acceptance run: N = 10,000 users, B = 2 chaffs
        // each, through simulation + batched detection to completion.
        let config = SyntheticConfig::quick();
        let chain = build_model(ModelKind::NonSkewed, &config).unwrap();
        let point = measure(&chain, 10_000, 2, 20, 1709, None).unwrap();
        assert_eq!(point.services, 30_000);
        assert!(point.throughput > 0.0);
        // Tracking accuracy sits at the eq. (11) value for the enlarged
        // population N(1+B).
        assert!(
            (point.tracking_accuracy - point.predicted).abs() < 0.05,
            "tracking {} vs predicted {}",
            point.tracking_accuracy,
            point.predicted
        );
        // ... which is strictly below the undefended baseline.
        assert!(point.predicted < point.undefended_baseline);
        // Detection accuracy is diluted by the chaff factor. Undefended,
        // the per-slot argmax mass always sits on real services, so the
        // mean detection accuracy is exactly 1/N; chaffed, only about
        // 1/(1+B) of the argmax mass lands on real services, so the mean
        // drops towards 1/(N(1+B)) — a factor-3 gap that dwarfs the
        // 20-slot sampling noise.
        let undefended = measure(&chain, 10_000, 0, 20, 1709, None).unwrap();
        assert!(
            point.detection_accuracy < undefended.detection_accuracy,
            "chaffed detection {} vs undefended {}",
            point.detection_accuracy,
            undefended.detection_accuracy
        );
    }

    #[test]
    fn detection_accuracy_falls_monotonically_with_budget() {
        let config = SyntheticConfig::quick();
        let chain = build_model(ModelKind::NonSkewed, &config).unwrap();
        let points: Vec<ChaffPoint> = BUDGETS
            .iter()
            .map(|&b| measure(&chain, 100, b, 60, 1709 ^ b as u64, None).unwrap())
            .collect();
        // The closed-form prediction is strictly decreasing in B ...
        for w in points.windows(2) {
            assert!(w[1].predicted < w[0].predicted);
        }
        // ... and the simulated accuracies follow within Monte Carlo
        // noise (each step down, with a noise allowance; strictly down
        // end to end).
        let noise = 0.02;
        for w in points.windows(2) {
            assert!(
                w[1].tracking_accuracy <= w[0].tracking_accuracy + noise,
                "B {} -> {}: tracking {} -> {}",
                w[0].budget,
                w[1].budget,
                w[0].tracking_accuracy,
                w[1].tracking_accuracy
            );
            assert!(
                w[1].detection_accuracy <= w[0].detection_accuracy + noise,
                "B {} -> {}: detection {} -> {}",
                w[0].budget,
                w[1].budget,
                w[0].detection_accuracy,
                w[1].detection_accuracy
            );
        }
        let first = points.first().unwrap();
        let last = points.last().unwrap();
        assert!(last.tracking_accuracy < first.tracking_accuracy);
        assert!(last.detection_accuracy < first.detection_accuracy);
        // Every simulated point tracks its eq. (11) prediction.
        for p in &points {
            assert!(
                (p.tracking_accuracy - p.predicted).abs() < 0.05,
                "B = {}: sim {} vs formula {}",
                p.budget,
                p.tracking_accuracy,
                p.predicted
            );
        }
    }

    #[test]
    fn table_has_one_row_per_population_budget_pair() {
        let config = SyntheticConfig::quick();
        let table = run_with(&config, &[8, 16], &[0, 1]).unwrap();
        assert_eq!(table.rows.len(), 4);
    }
}

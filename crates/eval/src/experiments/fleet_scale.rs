//! Extension experiment: the `N = 10⁵–10⁶` scaling rung on the compact
//! columnar store.
//!
//! The chaff-based arXiv version (He et al., 1709.03133) evaluates
//! anonymized MEC populations whose detection cost scales with the full
//! `users × horizon` product, and mobility/privacy effects only separate
//! cleanly at large populations (Esper et al., 2306.15740). This
//! experiment drives the fleet engine one to two orders of magnitude
//! past the previous `N = 10,000` ceiling: per-population it runs an
//! undefended fleet and a budget-`B` chaffed fleet end to end
//! ([`FleetSimulation::run_chaffed`] → columnar
//! [`BatchPrefixDetector`]), and reports — next to the usual accuracy
//! vs eq. (11) columns — the **measured memory footprint** of the
//! columnar observation grid against what the legacy per-trajectory
//! representation (one `Vec` per service, 8-byte cells) would have
//! cost. The columnar store is what makes the rung fit: 4 bytes per
//! cell in one allocation versus 8-byte cells plus a `Vec` header and a
//! heap allocation per service.

use super::{build_model, SyntheticConfig};
use crate::report::Table;
use chaff_core::detector::{BatchPrefixDetector, DetectInput};
use chaff_core::metrics::{mean_detection_accuracy, mean_tracking_accuracy_columnar};
use chaff_core::theory::im_tracking_accuracy;
use chaff_markov::models::ModelKind;
use chaff_markov::{MarkovChain, Trajectory};
use chaff_sim::fleet::{FleetChaffPolicy, FleetChaffStrategy, FleetConfig, FleetSimulation};
use std::time::Instant;

/// Populations swept by the full experiment: the release acceptance
/// rung and the million-user rung.
pub const POPULATIONS: [usize; 2] = [100_000, 1_000_000];

/// Populations swept under `--quick`.
pub const QUICK_POPULATIONS: [usize; 2] = [10_000, 50_000];

/// Per-user chaff budgets swept (undefended baseline plus the
/// acceptance budget).
pub const BUDGETS: [usize; 2] = [0, 2];

/// Horizon used by the full sweep. Shorter than the paper's `T = 100`:
/// at `N = 10⁶` with `B = 2` every slot costs 3 million cells, and the
/// population effects this experiment measures (eq. 11 dilution,
/// memory ceiling) are horizon-independent.
pub const SCALE_HORIZON: usize = 24;

/// One measured cell of the scale sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScalePoint {
    /// Fleet size `N`.
    pub num_users: usize,
    /// Per-user chaff budget `B`.
    pub budget: usize,
    /// Observed services `N · (1 + B)`.
    pub services: usize,
    /// Slots simulated.
    pub horizon: usize,
    /// Mean time-average tracking accuracy over all designated users.
    pub tracking_accuracy: f64,
    /// Mean time-average detection accuracy (exact identification).
    pub detection_accuracy: f64,
    /// The eq. (11) prediction at the chaffed population `N · (1 + B)`.
    pub predicted: f64,
    /// Fleet-engine throughput, user-slots/sec over simulate + detect.
    pub throughput: f64,
    /// Measured bytes of the columnar observation grid (4 per cell).
    pub observed_bytes: usize,
    /// What the legacy layout (`Vec<Trajectory>` of 8-byte cells plus a
    /// `Vec` header per service) would cost for the same population.
    pub legacy_bytes: usize,
}

impl ScalePoint {
    /// Fraction of the legacy layout's cell memory the columnar grid
    /// uses (≈ 0.5 from the 8 → 4 byte cells alone, lower still once
    /// per-trajectory headers are counted).
    pub fn memory_ratio(&self) -> f64 {
        self.observed_bytes as f64 / self.legacy_bytes as f64
    }
}

/// Measures one `(N, B)` cell: a uniform IM policy over one fleet run,
/// scored through the streaming columnar detection path, with memory
/// accounting for the observation grid.
///
/// # Errors
///
/// Propagates fleet-configuration and detection errors.
pub fn measure(
    chain: &MarkovChain,
    num_users: usize,
    budget: usize,
    horizon: usize,
    seed: u64,
    shards: Option<usize>,
) -> crate::Result<ScalePoint> {
    let mut config = FleetConfig::new(num_users, horizon).with_seed(seed);
    if let Some(shards) = shards {
        config = config.with_shards(shards);
    }
    let detector = match shards {
        Some(s) => BatchPrefixDetector::with_shards(s),
        None => BatchPrefixDetector::new(),
    };
    let policy = FleetChaffPolicy::uniform(FleetChaffStrategy::Im, budget);
    let table = chain.log_likelihood_table();
    let started = Instant::now();
    let outcome = FleetSimulation::new(chain, config).run_chaffed(&policy)?;
    let detections = detector.detect_prefixes(DetectInput::new(&table, &outcome.observed))?;
    let elapsed = started.elapsed().as_secs_f64();
    let services = outcome.observed.num_trajectories();
    // Histogram-based aggregates: the per-user series would cost
    // O(N · |ties|) per slot, which turns quadratic in N once tie sets
    // grow to ~N / L members (unavoidable at N = 10⁶ over small cell
    // spaces).
    let tracking = mean_tracking_accuracy_columnar(
        &outcome.observed,
        &outcome.user_observed_indices,
        &detections,
        chain.num_states(),
    );
    let detection = mean_detection_accuracy(services, &outcome.user_observed_indices, &detections);
    Ok(ScalePoint {
        num_users,
        budget,
        services,
        horizon,
        tracking_accuracy: tracking,
        detection_accuracy: detection,
        predicted: im_tracking_accuracy(chain.initial(), services),
        throughput: outcome.stats.user_slots as f64 / elapsed.max(f64::MIN_POSITIVE),
        observed_bytes: outcome.observed.cell_bytes(),
        legacy_bytes: services * (std::mem::size_of::<Trajectory>() + horizon * 8),
    })
}

/// Runs the sweep over `populations × budgets` at `horizon` slots.
///
/// # Errors
///
/// Propagates model-construction and fleet errors.
pub fn run_with(
    config: &SyntheticConfig,
    populations: &[usize],
    budgets: &[usize],
    horizon: usize,
) -> crate::Result<Table> {
    let chain = build_model(ModelKind::NonSkewed, config)?;
    let mut table = Table::new(
        "fleet_scale",
        "columnar fleet store: populations beyond 10^5 (uniform IM policy)",
        vec![
            "N".into(),
            "B".into(),
            "services".into(),
            "tracking".into(),
            "eq. (11) @N(1+B)".into(),
            "detection".into(),
            "user-slots/s".into(),
            "grid MB".into(),
            "legacy MB".into(),
        ],
    );
    for (i, &n) in populations.iter().enumerate() {
        for (j, &b) in budgets.iter().enumerate() {
            let seed = config.seed ^ (0x5CA1E + (i * budgets.len() + j) as u64);
            let point = measure(&chain, n, b, horizon, seed, None)?;
            table.push(vec![
                point.num_users.to_string(),
                point.budget.to_string(),
                point.services.to_string(),
                format!("{:.4}", point.tracking_accuracy),
                format!("{:.4}", point.predicted),
                format!("{:.6}", point.detection_accuracy),
                format!("{:.0}", point.throughput),
                format!("{:.1}", point.observed_bytes as f64 / 1e6),
                format!("{:.1}", point.legacy_bytes as f64 / 1e6),
            ]);
        }
    }
    Ok(table)
}

/// Runs the full sweep.
///
/// # Errors
///
/// Propagates model-construction and fleet errors.
pub fn run(config: &SyntheticConfig) -> crate::Result<Table> {
    run_with(config, &POPULATIONS, &BUDGETS, SCALE_HORIZON)
}

#[cfg(test)]
mod tests {
    use super::*;
    use chaff_markov::CellId;

    /// The ISSUE 5 release acceptance run: N = 100,000 users end to
    /// end — undefended and B = 2 chaffed — through the columnar
    /// simulate + detect pipeline, with the memory halving asserted
    /// from measured sizes.
    #[test]
    fn acceptance_one_hundred_thousand_users_undefended_and_chaffed() {
        let config = SyntheticConfig::quick();
        let chain = build_model(ModelKind::NonSkewed, &config).unwrap();
        let horizon = 12;
        let undefended = measure(&chain, 100_000, 0, horizon, 1709, None).unwrap();
        assert_eq!(undefended.services, 100_000);
        assert!(undefended.throughput > 0.0);
        assert!(
            (undefended.tracking_accuracy - undefended.predicted).abs() < 0.05,
            "tracking {} vs predicted {}",
            undefended.tracking_accuracy,
            undefended.predicted
        );

        let chaffed = measure(&chain, 100_000, 2, horizon, 1709, None).unwrap();
        assert_eq!(chaffed.services, 300_000);
        assert!(
            (chaffed.tracking_accuracy - chaffed.predicted).abs() < 0.05,
            "tracking {} vs predicted {}",
            chaffed.tracking_accuracy,
            chaffed.predicted
        );
        // Chaff dilution: the chaffed fleet is strictly harder to track
        // and to identify than the undefended one.
        assert!(chaffed.predicted < undefended.predicted);
        assert!(chaffed.detection_accuracy < undefended.detection_accuracy);

        // The columnar store measurably halves per-cell memory: 4-byte
        // cells in one grid versus the legacy 8-byte cells (before even
        // counting the legacy Vec header per service).
        assert_eq!(std::mem::size_of::<CellId>(), 4);
        assert_eq!(chaffed.observed_bytes, 300_000 * horizon * 4);
        assert!(
            chaffed.observed_bytes * 2 <= 300_000 * horizon * 8,
            "columnar {} bytes vs legacy cells {}",
            chaffed.observed_bytes,
            300_000 * horizon * 8
        );
        assert!(chaffed.memory_ratio() < 0.5, "{}", chaffed.memory_ratio());
    }

    /// Columnar detection output is bit-for-bit the legacy layout's at
    /// N = 10,000, for every shard count in {1, 2, 7}.
    #[test]
    fn columnar_detection_is_bit_for_bit_legacy_at_ten_thousand() {
        let config = SyntheticConfig::quick();
        let chain = build_model(ModelKind::NonSkewed, &config).unwrap();
        let policy = FleetChaffPolicy::uniform(FleetChaffStrategy::Im, 2);
        let outcome = FleetSimulation::new(&chain, FleetConfig::new(10_000, 20).with_seed(1709))
            .run_chaffed(&policy)
            .unwrap();
        let legacy = outcome.observed.to_trajectories();
        let table = chain.log_likelihood_table();
        for shards in [1usize, 2, 7] {
            let detector = BatchPrefixDetector::with_shards(shards);
            let columnar = detector
                .detect_prefixes(DetectInput::new(&table, &outcome.observed))
                .unwrap();
            let reference = detector
                .detect_prefixes(DetectInput::new(&table, &legacy))
                .unwrap();
            assert_eq!(columnar, reference, "shards = {shards}");
        }
    }

    /// The million-user smoke run (columnar grids ≈ 24 MB at T = 6; the
    /// legacy layout would need ≈ 72 MB plus a million allocations).
    /// Cheap enough for tier-1 because the whole pipeline — generation,
    /// detection, accuracy aggregation — is linear in `N`.
    #[test]
    fn million_user_smoke() {
        let config = SyntheticConfig::quick();
        let chain = build_model(ModelKind::NonSkewed, &config).unwrap();
        let point = measure(&chain, 1_000_000, 0, 6, 1709, None).unwrap();
        assert_eq!(point.services, 1_000_000);
        assert_eq!(point.observed_bytes, 1_000_000 * 6 * 4);
        assert!((0.0..=1.0).contains(&point.tracking_accuracy));
        assert!(
            (point.tracking_accuracy - point.predicted).abs() < 0.05,
            "tracking {} vs predicted {}",
            point.tracking_accuracy,
            point.predicted
        );
    }

    #[test]
    fn table_has_one_row_per_population_budget_pair() {
        let config = SyntheticConfig::quick();
        let table = run_with(&config, &[64, 128], &[0, 1], 8).unwrap();
        assert_eq!(table.rows.len(), 4);
    }
}

//! `repro` — regenerate every figure and table of the paper.
//!
//! ```text
//! repro <experiment> [--runs N] [--seed S] [--out DIR] [--quick]
//!
//! experiments: table1 fig4 fig5 fig6 fig7 fig8 fig9 fig10 theory
//!              multiuser fleet_scaling fleet_chaff fleet_scale
//!              fleet_stream trace_fleet all
//! ```
//!
//! ASCII renderings go to stdout; CSV files go to `--out` (default
//! `results/`).

use chaff_eval::experiments::{self, SyntheticConfig, TraceConfig};
use chaff_eval::report::{Figure, Table};
use std::path::{Path, PathBuf};
use std::process::ExitCode;

struct Args {
    experiment: String,
    runs: Option<usize>,
    seed: Option<u64>,
    out: PathBuf,
    quick: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = std::env::args().skip(1);
    let experiment = args.next().ok_or_else(usage)?;
    let mut parsed = Args {
        experiment,
        runs: None,
        seed: None,
        out: PathBuf::from("results"),
        quick: false,
    };
    while let Some(flag) = args.next() {
        match flag.as_str() {
            "--runs" => {
                let v = args.next().ok_or("--runs needs a value")?;
                parsed.runs = Some(v.parse().map_err(|_| format!("bad --runs '{v}'"))?);
            }
            "--seed" => {
                let v = args.next().ok_or("--seed needs a value")?;
                parsed.seed = Some(v.parse().map_err(|_| format!("bad --seed '{v}'"))?);
            }
            "--out" => {
                parsed.out = PathBuf::from(args.next().ok_or("--out needs a value")?);
            }
            "--quick" => parsed.quick = true,
            other => return Err(format!("unknown flag '{other}'\n{}", usage())),
        }
    }
    Ok(parsed)
}

fn usage() -> String {
    "usage: repro <table1|fig4|fig5|fig6|fig7|fig8|fig9|fig10|theory|multiuser|fleet_scaling|\
     fleet_chaff|fleet_scale|fleet_stream|trace_fleet|all> [--runs N] [--seed S] [--out DIR] \
     [--quick]"
        .to_string()
}

fn synthetic_config(args: &Args) -> SyntheticConfig {
    let mut config = if args.quick {
        SyntheticConfig::quick()
    } else {
        SyntheticConfig::default()
    };
    if let Some(runs) = args.runs {
        config.runs = runs;
    }
    if let Some(seed) = args.seed {
        config.seed = seed;
    }
    config
}

fn trace_config(args: &Args) -> TraceConfig {
    let mut config = if args.quick {
        TraceConfig::quick()
    } else {
        TraceConfig::default()
    };
    if let Some(seed) = args.seed {
        config.seed = seed;
    }
    if let Some(runs) = args.runs {
        config.im_runs = runs;
    }
    config
}

fn emit_figure(figure: &Figure, out: &Path) -> chaff_eval::Result<()> {
    println!("{}", figure.render_ascii(72, 18));
    let path = figure.write_csv(out)?;
    println!("  -> {}\n", path.display());
    Ok(())
}

fn emit_table(table: &Table, out: &Path) -> chaff_eval::Result<()> {
    println!("{}", table.render_ascii());
    let path = table.write_csv(out)?;
    println!("  -> {}\n", path.display());
    Ok(())
}

fn run_experiment(name: &str, args: &Args) -> chaff_eval::Result<()> {
    let synth = synthetic_config(args);
    let trace = trace_config(args);
    match name {
        "table1" => emit_table(&experiments::table1::run(&synth)?, &args.out)?,
        "fig4" => {
            for figure in experiments::fig4::run_all(&synth)? {
                emit_figure(&figure, &args.out)?;
            }
        }
        "fig5" => {
            for figure in experiments::fig5::run_all(&synth)? {
                emit_figure(&figure, &args.out)?;
            }
        }
        "fig6" => {
            for figure in experiments::fig6::run_all(&synth)? {
                emit_figure(&figure, &args.out)?;
            }
        }
        "fig7" => {
            for figure in experiments::fig7::run_all(&synth)? {
                emit_figure(&figure, &args.out)?;
            }
        }
        "fig8" => {
            let (layout, steady) = experiments::fig8::run(&trace)?;
            emit_figure(&layout, &args.out)?;
            emit_figure(&steady, &args.out)?;
        }
        "fig9" => {
            let (panel_a, table) = experiments::fig9::run(&trace)?;
            emit_figure(&panel_a, &args.out)?;
            emit_table(&table, &args.out)?;
        }
        "fig10" => emit_table(&experiments::fig10::run(&trace)?, &args.out)?,
        "theory" => emit_table(&experiments::theory::run(&synth)?, &args.out)?,
        "multiuser" => {
            for kind in chaff_markov::models::ModelKind::ALL {
                emit_figure(&experiments::multiuser::run(&synth, kind)?, &args.out)?;
            }
        }
        "fleet_scaling" => {
            let populations: &[usize] = if args.quick {
                &experiments::fleet_scaling::QUICK_POPULATIONS
            } else {
                &experiments::fleet_scaling::POPULATIONS
            };
            emit_table(
                &experiments::fleet_scaling::run_with_populations(&synth, populations)?,
                &args.out,
            )?;
        }
        "fleet_chaff" => {
            let (populations, budgets): (&[usize], &[usize]) = if args.quick {
                (
                    &experiments::fleet_chaff::QUICK_POPULATIONS,
                    &experiments::fleet_chaff::QUICK_BUDGETS,
                )
            } else {
                (
                    &experiments::fleet_chaff::POPULATIONS,
                    &experiments::fleet_chaff::BUDGETS,
                )
            };
            emit_table(
                &experiments::fleet_chaff::run_with(&synth, populations, budgets)?,
                &args.out,
            )?;
        }
        "fleet_scale" => {
            let populations: &[usize] = if args.quick {
                &experiments::fleet_scale::QUICK_POPULATIONS
            } else {
                &experiments::fleet_scale::POPULATIONS
            };
            emit_table(
                &experiments::fleet_scale::run_with(
                    &synth,
                    populations,
                    &experiments::fleet_scale::BUDGETS,
                    experiments::fleet_scale::SCALE_HORIZON,
                )?,
                &args.out,
            )?;
        }
        "fleet_stream" => {
            let populations: &[usize] = if args.quick {
                &experiments::fleet_stream::QUICK_POPULATIONS
            } else {
                &experiments::fleet_stream::POPULATIONS
            };
            let (table, curves) = experiments::fleet_stream::run_with(
                &synth,
                populations,
                &experiments::fleet_stream::BUDGETS,
                experiments::fleet_stream::STREAM_HORIZON,
            )?;
            emit_table(&table, &args.out)?;
            emit_figure(&curves, &args.out)?;
        }
        "trace_fleet" => {
            let mut config = if args.quick {
                experiments::trace_fleet::TraceFleetConfig::quick()
            } else {
                experiments::trace_fleet::TraceFleetConfig::default()
            };
            if let Some(seed) = args.seed {
                config.seed = seed;
            }
            let budgets: &[usize] = if args.quick {
                &experiments::trace_fleet::QUICK_BUDGETS
            } else {
                &experiments::trace_fleet::BUDGETS
            };
            emit_table(
                &experiments::trace_fleet::run_with(&config, budgets)?,
                &args.out,
            )?;
        }
        "all" => {
            for exp in [
                "table1",
                "fig4",
                "fig5",
                "fig6",
                "fig7",
                "fig8",
                "fig9",
                "fig10",
                "theory",
                "multiuser",
                "fleet_scaling",
                "fleet_chaff",
                "fleet_scale",
                "fleet_stream",
                "trace_fleet",
            ] {
                println!("==== {exp} ====");
                run_experiment(exp, args)?;
            }
        }
        other => return Err(format!("unknown experiment '{other}'\n{}", usage()).into()),
    }
    Ok(())
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    let started = std::time::Instant::now();
    match run_experiment(&args.experiment.clone(), &args) {
        Ok(()) => {
            println!("done in {:.1}s", started.elapsed().as_secs_f64());
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

//! `repro` — regenerate every figure and table of the paper.
//!
//! ```text
//! repro <experiment|all> [--runs N] [--seed S] [--out DIR] [--quick]
//! ```
//!
//! Experiments are resolved through the unified registry
//! (`chaff_eval::experiments::registry`): `repro <name>` runs one,
//! `repro all` runs every registered experiment in canonical order.
//! ASCII renderings go to stdout; CSV files go to `--out` (default
//! `results/`).

use chaff_eval::experiments::registry::{find, names, ExperimentCtx, ExperimentOutput};
use chaff_eval::experiments::{SyntheticConfig, TraceConfig};
use std::path::{Path, PathBuf};
use std::process::ExitCode;

struct Args {
    experiment: String,
    runs: Option<usize>,
    seed: Option<u64>,
    out: PathBuf,
    quick: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = std::env::args().skip(1);
    let experiment = args.next().ok_or_else(usage)?;
    let mut parsed = Args {
        experiment,
        runs: None,
        seed: None,
        out: PathBuf::from("results"),
        quick: false,
    };
    while let Some(flag) = args.next() {
        match flag.as_str() {
            "--runs" => {
                let v = args.next().ok_or("--runs needs a value")?;
                parsed.runs = Some(v.parse().map_err(|_| format!("bad --runs '{v}'"))?);
            }
            "--seed" => {
                let v = args.next().ok_or("--seed needs a value")?;
                parsed.seed = Some(v.parse().map_err(|_| format!("bad --seed '{v}'"))?);
            }
            "--out" => {
                parsed.out = PathBuf::from(args.next().ok_or("--out needs a value")?);
            }
            "--quick" => parsed.quick = true,
            other => return Err(format!("unknown flag '{other}'\n{}", usage())),
        }
    }
    Ok(parsed)
}

fn usage() -> String {
    format!(
        "usage: repro <{}|all> [--runs N] [--seed S] [--out DIR] [--quick]",
        names().join("|")
    )
}

fn context(args: &Args) -> ExperimentCtx {
    let mut synth = if args.quick {
        SyntheticConfig::quick()
    } else {
        SyntheticConfig::default()
    };
    if let Some(runs) = args.runs {
        synth.runs = runs;
    }
    if let Some(seed) = args.seed {
        synth.seed = seed;
    }
    let mut trace = if args.quick {
        TraceConfig::quick()
    } else {
        TraceConfig::default()
    };
    if let Some(seed) = args.seed {
        trace.seed = seed;
    }
    if let Some(runs) = args.runs {
        trace.im_runs = runs;
    }
    ExperimentCtx {
        synth,
        trace,
        quick: args.quick,
        seed: args.seed,
    }
}

fn emit(output: &ExperimentOutput, out: &Path) -> chaff_eval::Result<()> {
    for figure in &output.figures {
        println!("{}", figure.render_ascii(72, 18));
        let path = figure.write_csv(out)?;
        println!("  -> {}\n", path.display());
    }
    for table in &output.tables {
        println!("{}", table.render_ascii());
        let path = table.write_csv(out)?;
        println!("  -> {}\n", path.display());
    }
    Ok(())
}

fn run(args: &Args) -> chaff_eval::Result<()> {
    let ctx = context(args);
    if args.experiment == "all" {
        for experiment in chaff_eval::experiments::registry::registry() {
            println!("==== {} ====", experiment.name());
            emit(&experiment.run(&ctx)?, &args.out)?;
        }
        return Ok(());
    }
    let experiment = find(&args.experiment)
        .ok_or_else(|| format!("unknown experiment '{}'\n{}", args.experiment, usage()))?;
    emit(&experiment.run(&ctx)?, &args.out)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    let started = std::time::Instant::now();
    match run(&args) {
        Ok(()) => {
            println!("done in {:.1}s", started.elapsed().as_secs_f64());
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

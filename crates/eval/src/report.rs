//! Report artifacts: figures (line charts), tables, ASCII rendering and
//! CSV export.

use serde::{Deserialize, Serialize};
use std::fmt::Write as _;
use std::path::Path;

/// One line/series of a figure.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Series {
    /// Legend label (e.g. `"OO (N = 2)"`).
    pub label: String,
    /// X coordinates.
    pub x: Vec<f64>,
    /// Y coordinates, same length as `x`.
    pub y: Vec<f64>,
}

impl Series {
    /// Creates a series; truncates to the shorter of the two vectors.
    pub fn new(label: impl Into<String>, x: Vec<f64>, y: Vec<f64>) -> Self {
        let n = x.len().min(y.len());
        let mut x = x;
        let mut y = y;
        x.truncate(n);
        y.truncate(n);
        Series {
            label: label.into(),
            x,
            y,
        }
    }

    /// Builds a series from y-values with x = 1, 2, 3, …
    pub fn from_values(label: impl Into<String>, y: Vec<f64>) -> Self {
        let x = (1..=y.len()).map(|v| v as f64).collect();
        Series::new(label, x, y)
    }

    /// The mean of the y values (0 for an empty series).
    pub fn y_mean(&self) -> f64 {
        if self.y.is_empty() {
            0.0
        } else {
            self.y.iter().sum::<f64>() / self.y.len() as f64
        }
    }
}

/// A reproduced figure: a set of series plus axis metadata.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Figure {
    /// Identifier matching the paper (e.g. `"fig5a"`).
    pub id: String,
    /// Human-readable title.
    pub title: String,
    /// X-axis label.
    pub x_label: String,
    /// Y-axis label.
    pub y_label: String,
    /// The series.
    pub series: Vec<Series>,
}

impl Figure {
    /// Creates an empty figure.
    pub fn new(
        id: impl Into<String>,
        title: impl Into<String>,
        x_label: impl Into<String>,
        y_label: impl Into<String>,
    ) -> Self {
        Figure {
            id: id.into(),
            title: title.into(),
            x_label: x_label.into(),
            y_label: y_label.into(),
            series: Vec::new(),
        }
    }

    /// Adds a series.
    pub fn push(&mut self, series: Series) {
        self.series.push(series);
    }

    /// CSV export: header `x,<label1>,<label2>,…` aligned on the union of
    /// x values (missing points are blank).
    pub fn to_csv(&self) -> String {
        let mut xs: Vec<f64> = self
            .series
            .iter()
            .flat_map(|s| s.x.iter().copied())
            .collect();
        xs.sort_by(|a, b| a.partial_cmp(b).expect("finite x"));
        xs.dedup();
        let mut out = String::new();
        out.push('x');
        for s in &self.series {
            let _ = write!(out, ",{}", s.label.replace(',', ";"));
        }
        out.push('\n');
        for &x in &xs {
            let _ = write!(out, "{x}");
            for s in &self.series {
                match s.x.iter().position(|&v| v == x) {
                    Some(i) => {
                        let _ = write!(out, ",{}", s.y[i]);
                    }
                    None => out.push(','),
                }
            }
            out.push('\n');
        }
        out
    }

    /// Writes the CSV next to sibling figures in `dir` as `<id>.csv`.
    ///
    /// # Errors
    ///
    /// Propagates file-system errors.
    pub fn write_csv(&self, dir: &Path) -> std::io::Result<std::path::PathBuf> {
        std::fs::create_dir_all(dir)?;
        let path = dir.join(format!("{}.csv", self.id));
        std::fs::write(&path, self.to_csv())?;
        Ok(path)
    }

    /// Renders an ASCII line chart (markers only, one glyph per series).
    pub fn render_ascii(&self, width: usize, height: usize) -> String {
        const MARKERS: [char; 9] = ['o', 'x', '+', '*', '#', '@', '%', '&', '='];
        let width = width.max(20);
        let height = height.max(5);
        let (mut min_x, mut max_x) = (f64::INFINITY, f64::NEG_INFINITY);
        let (mut min_y, mut max_y) = (f64::INFINITY, f64::NEG_INFINITY);
        for s in &self.series {
            for (&x, &y) in s.x.iter().zip(&s.y) {
                if x.is_finite() && y.is_finite() {
                    min_x = min_x.min(x);
                    max_x = max_x.max(x);
                    min_y = min_y.min(y);
                    max_y = max_y.max(y);
                }
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "{} — {}", self.id, self.title);
        if !min_x.is_finite() {
            out.push_str("(no data)\n");
            return out;
        }
        if max_y == min_y {
            max_y = min_y + 1.0;
        }
        if max_x == min_x {
            max_x = min_x + 1.0;
        }
        let mut grid = vec![vec![' '; width]; height];
        for (si, s) in self.series.iter().enumerate() {
            let marker = MARKERS[si % MARKERS.len()];
            for (&x, &y) in s.x.iter().zip(&s.y) {
                if !x.is_finite() || !y.is_finite() {
                    continue;
                }
                let col = (((x - min_x) / (max_x - min_x)) * (width - 1) as f64).round() as usize;
                let row = (((max_y - y) / (max_y - min_y)) * (height - 1) as f64).round() as usize;
                grid[row.min(height - 1)][col.min(width - 1)] = marker;
            }
        }
        for (r, row) in grid.iter().enumerate() {
            let y_val = max_y - (max_y - min_y) * r as f64 / (height - 1) as f64;
            let line: String = row.iter().collect();
            let _ = writeln!(out, "{y_val:>8.3} |{line}");
        }
        let _ = writeln!(out, "{:>8} +{}", "", "-".repeat(width));
        let _ = writeln!(
            out,
            "{:>8}  {:<w$.3}{:>w2$.3}",
            "",
            min_x,
            max_x,
            w = width / 2,
            w2 = width - width / 2
        );
        let _ = writeln!(out, "  x: {}, y: {}", self.x_label, self.y_label);
        for (si, s) in self.series.iter().enumerate() {
            let _ = writeln!(
                out,
                "  {} {}  (mean {:.4})",
                MARKERS[si % MARKERS.len()],
                s.label,
                s.y_mean()
            );
        }
        out
    }
}

/// A reproduced table.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table {
    /// Identifier (e.g. `"table1"`).
    pub id: String,
    /// Human-readable title.
    pub title: String,
    /// Column headers.
    pub columns: Vec<String>,
    /// Rows of cells (stringified).
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates an empty table with the given columns.
    pub fn new(id: impl Into<String>, title: impl Into<String>, columns: Vec<String>) -> Self {
        Table {
            id: id.into(),
            title: title.into(),
            columns,
            rows: Vec::new(),
        }
    }

    /// Adds a row.
    ///
    /// # Panics
    ///
    /// Panics if the arity differs from the header.
    pub fn push(&mut self, row: Vec<String>) {
        assert_eq!(row.len(), self.columns.len(), "row arity mismatch");
        self.rows.push(row);
    }

    /// CSV export.
    pub fn to_csv(&self) -> String {
        let mut out = self.columns.join(",");
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.join(","));
            out.push('\n');
        }
        out
    }

    /// Writes the CSV into `dir` as `<id>.csv`.
    ///
    /// # Errors
    ///
    /// Propagates file-system errors.
    pub fn write_csv(&self, dir: &Path) -> std::io::Result<std::path::PathBuf> {
        std::fs::create_dir_all(dir)?;
        let path = dir.join(format!("{}.csv", self.id));
        std::fs::write(&path, self.to_csv())?;
        Ok(path)
    }

    /// Renders a fixed-width ASCII table.
    pub fn render_ascii(&self) -> String {
        let mut widths: Vec<usize> = self.columns.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "{} — {}", self.id, self.title);
        let render_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::from("|");
            for (cell, w) in cells.iter().zip(widths) {
                let _ = write!(line, " {cell:<w$} |");
            }
            line
        };
        let header = render_row(&self.columns, &widths);
        let rule = "-".repeat(header.len());
        let _ = writeln!(out, "{rule}\n{header}\n{rule}");
        for row in &self.rows {
            let _ = writeln!(out, "{}", render_row(row, &widths));
        }
        let _ = writeln!(out, "{rule}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_figure() -> Figure {
        let mut f = Figure::new("figX", "demo", "time", "accuracy");
        f.push(Series::from_values("A", vec![1.0, 0.5, 0.25]));
        f.push(Series::new("B", vec![1.0, 2.0], vec![0.1, 0.2]));
        f
    }

    #[test]
    fn series_constructors() {
        let s = Series::from_values("s", vec![5.0, 6.0]);
        assert_eq!(s.x, vec![1.0, 2.0]);
        assert!((s.y_mean() - 5.5).abs() < 1e-12);
        let t = Series::new("t", vec![1.0, 2.0, 3.0], vec![1.0]);
        assert_eq!(t.x.len(), 1);
    }

    #[test]
    fn csv_has_header_and_union_of_x() {
        let csv = sample_figure().to_csv();
        let mut lines = csv.lines();
        assert_eq!(lines.next().unwrap(), "x,A,B");
        // x values 1, 2, 3 all appear.
        let body: Vec<&str> = lines.collect();
        assert_eq!(body.len(), 3);
        assert!(body[0].starts_with("1,1,0.1"));
        assert!(body[2].starts_with("3,0.25,")); // B has no point at x=3
    }

    #[test]
    fn ascii_chart_contains_markers_and_legend() {
        let art = sample_figure().render_ascii(40, 10);
        assert!(art.contains('o'));
        assert!(art.contains('x'));
        assert!(art.contains("A"));
        assert!(art.contains("accuracy"));
    }

    #[test]
    fn empty_figure_renders_gracefully() {
        let f = Figure::new("empty", "no data", "x", "y");
        assert!(f.render_ascii(30, 8).contains("(no data)"));
        assert_eq!(f.to_csv(), "x\n");
    }

    #[test]
    fn table_rendering_and_csv() {
        let mut t = Table::new("t1", "demo", vec!["model".into(), "kl".into()]);
        t.push(vec!["a".into(), "0.44".into()]);
        t.push(vec!["c".into(), "8.18".into()]);
        let ascii = t.render_ascii();
        assert!(ascii.contains("| model |"));
        assert!(ascii.contains("8.18"));
        assert_eq!(t.to_csv().lines().count(), 3);
    }

    #[test]
    #[should_panic(expected = "row arity mismatch")]
    fn table_checks_arity() {
        let mut t = Table::new("t", "demo", vec!["a".into()]);
        t.push(vec!["1".into(), "2".into()]);
    }

    #[test]
    fn figures_write_to_disk() {
        let dir = std::env::temp_dir().join(format!("report_test_{}", std::process::id()));
        let path = sample_figure().write_csv(&dir).unwrap();
        assert!(path.exists());
        std::fs::remove_dir_all(&dir).unwrap();
    }
}

//! ISSUE 9 acceptance: the defender–detector equilibrium sweep at
//! `N = 10⁴` under the pinned seed.
//!
//! The best-response iteration must converge within [`MAX_ROUNDS`]
//! epochs, conserve the fleet-wide total, and end no worse (up to
//! Monte Carlo noise) than the best *static* allocation of the same
//! total — adapting can only ever reuse a static split, so the
//! equilibrium cannot lose to one.

use chaff_eval::experiments::fleet_equilibrium::{
    equilibrium, equilibrium_registry, measure, BUDGET, EQ_HORIZON, MAX_ROUNDS,
};

const SEED: u64 = 1709;
const N: usize = 10_000;

#[test]
fn acceptance_equilibrium_at_ten_thousand_users() {
    let registry = equilibrium_registry(SEED, 10);

    let (point, budgets) = equilibrium(&registry, N, EQ_HORIZON, SEED).unwrap();
    assert!(
        point.converged,
        "no equilibrium within {MAX_ROUNDS} epochs (last round {})",
        point.rounds
    );
    assert!(point.rounds <= MAX_ROUNDS);
    assert_eq!(budgets.len(), N);
    assert_eq!(budgets.iter().sum::<usize>(), N * BUDGET, "total leaked");

    // The equilibrium spends the same total as every static baseline
    // and must not lose to the best of them. The slack term covers
    // 20-slot sampling noise on accuracies of this magnitude; the
    // contract is "never meaningfully worse", not bit-equality.
    let points = measure(&registry, N, EQ_HORIZON, SEED).unwrap();
    let best_static = points
        .iter()
        .filter(|p| p.allocation != "adaptive")
        .map(|p| p.tracking_accuracy)
        .fold(f64::INFINITY, f64::min);
    let adaptive = points
        .iter()
        .find(|p| p.allocation == "adaptive")
        .expect("measure always scores the adaptive policy");
    assert!(
        adaptive.tracking_accuracy <= best_static + 0.01,
        "equilibrium tracking {} vs best static {}",
        adaptive.tracking_accuracy,
        best_static
    );
    assert!(adaptive.converged);
}

//! Acceptance test for the time-varying-mobility tentpole: on a
//! non-stationary commuter fleet at N = 10⁴, the epoch-aware detector
//! must strictly beat the stationarity-assuming one.

use chaff_eval::experiments::fleet_daynight::{build_registries, measure, DayNightConfig};

#[test]
fn epoch_aware_detector_strictly_beats_stationary_at_ten_thousand_users() {
    // The full-scale configuration: 10,000 commuters, 6 classes in
    // swapped home/work pairs, two full day/night cycles.
    let config = DayNightConfig::default();
    assert_eq!(config.num_users, 10_000);
    let (aware, stationary) = build_registries(&config).unwrap();
    assert_eq!(aware.num_epochs(), 2);

    let point = measure(&aware, &stationary, 0, &config).unwrap();
    assert_eq!(point.services, 10_000);
    // Strictly better — and by a structural margin, not noise: the
    // stationary blend cannot tell a commuter class from its swapped
    // twin, so it tracks the wrong anchor roughly half the time.
    assert!(
        point.aware_tracking > point.stationary_tracking,
        "epoch-aware tracking {} must strictly beat stationary {}",
        point.aware_tracking,
        point.stationary_tracking
    );
    assert!(
        point.aware_tracking > point.stationary_tracking + 0.2,
        "expected a wide structural gap, got {} vs {}",
        point.aware_tracking,
        point.stationary_tracking
    );
    assert!(point.throughput > 0.0);

    // Chaffed, the same ordering holds (chaff is drawn from the same
    // epoch-active chains, so the epoch-aware model stays the right one).
    let chaffed = measure(&aware, &stationary, 1, &config).unwrap();
    assert_eq!(chaffed.services, 20_000);
    assert!(
        chaffed.aware_tracking > chaffed.stationary_tracking,
        "chaffed: epoch-aware {} must strictly beat stationary {}",
        chaffed.aware_tracking,
        chaffed.stationary_tracking
    );
    // Chaff dilutes tracking under the epoch-aware detector relative to
    // its undefended run.
    assert!(chaffed.aware_tracking < point.aware_tracking + 0.02);
}

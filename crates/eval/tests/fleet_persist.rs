//! ISSUE 8 acceptance battery for the persistent paged fleet store.
//!
//! * **Golden round trip (tier-1).** A pinned `N = 10⁴` fleet is
//!   checkpointed, reloaded and paged-streamed; all three detection
//!   paths must reproduce one pinned checksum — any accidental change
//!   to the RNG streams, the store byte layout or the detection kernels
//!   trips this test.
//! * **`N = 10⁶` bounded-memory rung.** Write (streamed) → resume →
//!   detect off the file page by page; the paged path's peak-RSS delta
//!   must stay below *half* the whole-grid load path's, and every path
//!   must agree with the engine's own online detections bit-for-bit.
//! * **`N = 10⁷` smoke.** Write and stream back a ten-million-service
//!   population, verifying every streamed row against the in-memory
//!   grid.
//!
//! The RSS assertions measure `VmHWM` deltas after a
//! `/proc/self/clear_refs` peak reset, so the three tests serialize on
//! one mutex to keep concurrent allocations out of each other's
//! measurements.

use chaff_core::detector::{BatchPrefixDetector, DetectInput};
use chaff_eval::experiments::fleet_persist::detection_checksum;
use chaff_sim::fleet::{FleetChaffPolicy, FleetConfig, FleetOutcome, FleetSimulation};
use chaff_sim::streaming::StreamingFleetEngine;
use chaff_sim::test_support::{mixed_registry, nonskewed_chain, strategy_from};
use chaff_store::FleetStoreReader;
use std::path::PathBuf;
use std::sync::Mutex;

/// Serializes the tests in this binary: the RSS deltas below must not
/// see another test's allocations.
static SERIAL: Mutex<()> = Mutex::new(());

fn temp_path(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("chaff_accept_{}_{name}.store", std::process::id()))
}

/// Peak RSS in bytes (`VmHWM` from `/proc/self/status`); 0 when the
/// proc interface is unavailable (non-Linux), which disables the RSS
/// assertion but not the equality checks.
fn peak_rss_bytes() -> usize {
    let Ok(status) = std::fs::read_to_string("/proc/self/status") else {
        return 0;
    };
    status
        .lines()
        .find_map(|line| {
            let rest = line.strip_prefix("VmHWM:")?;
            rest.trim()
                .strip_suffix("kB")
                .map(|v| v.trim().parse::<usize>().ok())?
        })
        .map_or(0, |kb| kb * 1024)
}

/// Resets the peak-RSS watermark to the current RSS; returns whether
/// the reset interface exists.
fn reset_peak_rss() -> bool {
    std::fs::write("/proc/self/clear_refs", "5").is_ok()
}

/// The pinned `N = 10⁴` detection checksum: three mobility classes, one
/// CML chaff per user, 12 slots, seed 42, 7 generation shards. Any
/// change to the seed streams, the store format or the detection
/// kernels that perturbs detections shows up here.
const GOLDEN_CHECKSUM: u64 = 8_261_906_127_266_587_605;

#[test]
fn golden_round_trip_matches_the_pinned_detection_checksum() {
    let _guard = SERIAL.lock().unwrap();
    let registry = mixed_registry(1709, 10, 3);
    let policy = FleetChaffPolicy::uniform(strategy_from(1), 1);
    let config = FleetConfig::new(10_000, 12).with_seed(42).with_shards(7);
    let outcome = FleetSimulation::with_registry(&registry, config)
        .run_chaffed(&policy)
        .unwrap();
    let path = temp_path("golden");
    outcome.checkpoint(&path).unwrap();

    let detector = BatchPrefixDetector::with_shards(7);
    let in_memory = detector
        .detect_prefixes(DetectInput::new(&registry, &outcome.observed))
        .unwrap();
    assert_eq!(
        detection_checksum(&in_memory),
        GOLDEN_CHECKSUM,
        "in-memory detection drifted from the pinned golden checksum"
    );

    let restored = FleetOutcome::restore(&path).unwrap();
    assert_eq!(restored.observed, outcome.observed);
    assert_eq!(restored.user_cells, outcome.user_cells);
    assert_eq!(
        restored.user_observed_indices,
        outcome.user_observed_indices
    );
    assert_eq!(restored.stats, outcome.stats);
    let loaded = detector
        .detect_prefixes(DetectInput::new(&registry, &restored.observed))
        .unwrap();
    assert_eq!(loaded, in_memory, "whole-grid reload detection diverged");

    let mut reader = FleetStoreReader::open(&path).unwrap();
    let paged = {
        let mut stream = reader.stream_slots();
        detector
            .detect_prefixes(DetectInput::new(&registry, &mut stream))
            .unwrap()
    };
    assert_eq!(paged, in_memory, "paged detection diverged");
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn million_user_resume_detects_bit_for_bit_in_bounded_memory() {
    let _guard = SERIAL.lock().unwrap();
    const N: usize = 1_000_000;
    const T: usize = 24;
    let chain = nonskewed_chain(1709, 10);
    let policy = FleetChaffPolicy::uniform(strategy_from(0), 0);
    let config = FleetConfig::new(N, T).with_seed(7);
    let path = temp_path("million");

    // Write: the streaming engine appends straight to disk; its own
    // online detections are the in-memory reference (bit-for-bit the
    // batch pipeline, per tests/streaming_equivalence.rs in chaff-sim).
    let checksum_mem = {
        let mut engine = StreamingFleetEngine::new(&chain, config, &policy).unwrap();
        let steps = engine.run_to_store(&path).unwrap();
        assert_eq!(steps.len(), T);
        let detections: Vec<_> = steps.into_iter().map(|s| s.detection).collect();
        detection_checksum(&detections)
    };

    let detector = BatchPrefixDetector::new();

    // Resume, paged: detection straight off the file, page by page.
    let rss_works = reset_peak_rss();
    let stream_base = peak_rss_bytes();
    let checksum_paged = {
        let mut reader = FleetStoreReader::open(&path).unwrap();
        let mut stream = reader.stream_slots();
        let paged = detector
            .detect_prefixes(DetectInput::new(&chain, &mut stream))
            .unwrap();
        detection_checksum(&paged)
    };
    let stream_delta = peak_rss_bytes().saturating_sub(stream_base);

    // Resume, whole grid: load everything, then detect columnar.
    reset_peak_rss();
    let load_base = peak_rss_bytes();
    let checksum_loaded = {
        let mut reader = FleetStoreReader::open(&path).unwrap();
        let fleet = reader.load().unwrap();
        let loaded = detector
            .detect_prefixes(DetectInput::new(&chain, &fleet.observed))
            .unwrap();
        detection_checksum(&loaded)
    };
    let load_delta = peak_rss_bytes().saturating_sub(load_base);
    std::fs::remove_file(&path).unwrap();

    assert_eq!(checksum_paged, checksum_mem, "paged detection diverged");
    assert_eq!(checksum_loaded, checksum_mem, "loaded detection diverged");
    // The acceptance bound: streaming detection must peak below half
    // of what materializing the grid costs (the grid alone is
    // N × T × 4 B = 96 MB here; the stream path holds one page).
    if rss_works {
        assert!(
            2 * stream_delta < load_delta,
            "stream peak delta {stream_delta} B is not under half the load path's {load_delta} B"
        );
    }
}

#[test]
fn ten_million_service_store_writes_and_streams() {
    let _guard = SERIAL.lock().unwrap();
    const N: usize = 10_000_000;
    const T: usize = 2;
    let chain = nonskewed_chain(3, 10);
    let outcome = FleetSimulation::new(&chain, FleetConfig::new(N, T).with_seed(11))
        .run_natural()
        .unwrap();
    let path = temp_path("ten_million");
    outcome.checkpoint(&path).unwrap();

    let mut reader = FleetStoreReader::open(&path).unwrap();
    assert_eq!(reader.num_services(), N);
    assert_eq!(reader.num_users(), N);
    assert_eq!(reader.horizon(), T);
    let mut stream = reader.stream_slots();
    let mut rows = 0usize;
    while let Some(row) = stream.next_row().unwrap() {
        assert_eq!(row, outcome.observed.row(rows), "slot {rows} diverged");
        rows += 1;
    }
    assert_eq!(rows, T);
    std::fs::remove_file(&path).unwrap();
}

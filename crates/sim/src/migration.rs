//! Migration policies for the real service.
//!
//! The paper considers "the worst case (in terms of location privacy) that
//! the real service always follows the user" (Sec. I-A) — the
//! [`AlwaysFollow`] policy. [`LazyThreshold`] is the cost-aware
//! alternative from the service-migration literature the paper builds on
//! (its refs. 24, 25, 5, 14): the service migrates only once the user has
//! drifted beyond a distance threshold, trading communication cost against
//! migration cost. It is included for the cost-privacy ablation; note it
//! *weakens* the side channel (the service trajectory is a lagged,
//! quantized version of the user's), which the ablation bench quantifies.

use chaff_markov::CellId;

/// Decides where the real service should sit after each user move.
pub trait MigrationPolicy {
    /// Short name for reports.
    fn name(&self) -> &'static str;

    /// Given the service's current cell and the user's new cell, returns
    /// the cell the service should occupy this slot.
    fn place(&mut self, service: CellId, user: CellId) -> CellId;
}

/// Always co-locate the service with the user (delay-sensitive services;
/// the paper's standing assumption).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AlwaysFollow;

impl MigrationPolicy for AlwaysFollow {
    fn name(&self) -> &'static str {
        "always-follow"
    }

    fn place(&mut self, _service: CellId, user: CellId) -> CellId {
        user
    }
}

/// Migrate only when the user is more than `threshold` cells away (index
/// distance), then jump to the user's cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LazyThreshold {
    /// Maximum tolerated user-service distance in cells.
    pub threshold: usize,
}

impl MigrationPolicy for LazyThreshold {
    fn name(&self) -> &'static str {
        "lazy-threshold"
    }

    fn place(&mut self, service: CellId, user: CellId) -> CellId {
        if service.index().abs_diff(user.index()) > self.threshold {
            user
        } else {
            service
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn always_follow_tracks_the_user() {
        let mut p = AlwaysFollow;
        assert_eq!(p.place(CellId::new(0), CellId::new(7)), CellId::new(7));
        assert_eq!(p.place(CellId::new(7), CellId::new(7)), CellId::new(7));
    }

    #[test]
    fn lazy_waits_for_the_threshold() {
        let mut p = LazyThreshold { threshold: 2 };
        // Within threshold: stays.
        assert_eq!(p.place(CellId::new(5), CellId::new(6)), CellId::new(5));
        assert_eq!(p.place(CellId::new(5), CellId::new(7)), CellId::new(5));
        // Beyond: jumps to the user.
        assert_eq!(p.place(CellId::new(5), CellId::new(8)), CellId::new(8));
    }

    #[test]
    fn zero_threshold_degenerates_to_always_follow() {
        let mut lazy = LazyThreshold { threshold: 0 };
        let mut follow = AlwaysFollow;
        for (s, u) in [(0usize, 0usize), (0, 1), (3, 9), (9, 3)] {
            assert_eq!(
                lazy.place(CellId::new(s), CellId::new(u)),
                follow.place(CellId::new(s), CellId::new(u))
            );
        }
    }
}

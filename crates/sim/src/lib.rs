//! Slotted MEC simulator: the system context of the paper made executable.
//!
//! The paper's threat model (Secs. I–II) lives in an edge-cloud system:
//! services run in MECs (one per coverage cell), migrate to follow their
//! users, and a *cyber eavesdropper* inside the MEC platform observes
//! those migrations. This crate simulates that system end to end:
//!
//! * [`network`] — MEC nodes with optional per-node service capacity;
//! * [`migration`] — migration policies for the real service: the paper's
//!   worst-case *always-follow* (delay-sensitive services must stay
//!   co-located, Sec. II-A) plus a cost-aware *lazy* policy as the
//!   extension flagged in the paper's discussion;
//! * [`cost`] — migration / communication / chaff running costs, so the
//!   cost-privacy trade-off (Sec. VIII) is measurable;
//! * [`observer`] — the eavesdropper's observation log: anonymized but
//!   linkable per-service trajectories, exactly what the detectors in
//!   `chaff-core` consume;
//! * [`sim`] — the single-user driver, in two modes: fully online
//!   (per-slot chaff controllers) and planned (offline strategies like OO
//!   that need the user's whole trajectory);
//! * [`fleet`] — the fleet engine: sharded simulation of thousands to
//!   hundreds of thousands of concurrent users through one shared MEC
//!   world, paired with the batched detection core in `chaff-core`;
//! * [`streaming`] — the online counterpart: the same fleet advanced one
//!   slot at a time with incremental detection and a horizon-independent
//!   memory bound, bit-for-bit equal to the batch pipeline;
//! * [`persist`] — checkpoint / restore through the paged on-disk store
//!   (`chaff-store`): batch outcomes persist slot by slot, the streaming
//!   engine appends as it runs, and either file restores bit-for-bit.
//!
//! # Example
//!
//! ```
//! use chaff_sim::sim::{Simulation, SimConfig};
//! use chaff_core::strategy::MoStrategy;
//! use chaff_markov::{models::ModelKind, MarkovChain};
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut rng = StdRng::seed_from_u64(1);
//! let chain = MarkovChain::new(ModelKind::NonSkewed.build(10, &mut rng)?)?;
//! let outcome = Simulation::new(&chain, SimConfig::new(50, 1))
//!     .run_planned(&MoStrategy, &mut rng)?;
//! assert_eq!(outcome.observed.len(), 2); // user + 1 chaff
//! assert_eq!(outcome.observed[outcome.user_observed_index].len(), 50);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;

pub mod cost;
pub mod fleet;
pub mod migration;
pub mod network;
pub mod observer;
pub mod persist;
pub mod sim;
pub mod streaming;
pub mod test_support;

pub use error::SimError;

/// Convenient result alias for fallible operations in this crate.
pub type Result<T> = std::result::Result<T, SimError>;

//! The slot-at-a-time fleet engine: simulation, chaff injection,
//! anonymization and online detection fused into one causal loop.
//!
//! [`crate::fleet::FleetSimulation`] is batch-shaped: simulate the whole
//! horizon, then hand the finished [`chaff_markov::CellGrid`]
//! to the detector. The
//! paper's eavesdropper (eq. 11) is *online* — it observes one service
//! row per slot — and a real deployment never has the future.
//! [`StreamingFleetEngine`] advances one slot at a time:
//!
//! 1. **Draw / ingest.** Each user's next cell comes from its mobility
//!    chain ([`step`](StreamingFleetEngine::step)) or from an external
//!    per-slot feed ([`step_ingested`](StreamingFleetEngine::step_ingested),
//!    e.g. a quantized trace stream); each chaff lane advances its
//!    [`OnlineChaffController`] with its own RNG stream.
//! 2. **Place.** Optional shared-capacity replay through one
//!    [`MecNetwork`], exactly like the batch engine's sequential replay.
//! 3. **Anonymize.** The slot row is scattered through the fleet's
//!    Fisher–Yates permutation (drawn once, up front, from the same
//!    seed stream as the batch engine).
//! 4. **Detect.** The row feeds a
//!    [`StreamingPrefixDetector`], which shares the batch detector's
//!    per-slot kernel — and the slot's tracking/detection accuracy is
//!    computed incrementally from the row and the returned tie set.
//!
//! Because every random draw comes from the same per-user / per-chaff /
//! shuffle seed streams as the batch engine, and the detector shares the
//! batch per-slot kernel, a streamed run is **bit-for-bit** the batch
//! `run_chaffed` + unified `detect_prefixes` pipeline —
//! proptested across shard counts, budgets and mobility classes in
//! `tests/streaming_equivalence.rs`.
//!
//! # Memory bound
//!
//! The engine never materializes the `N × T` grid. It holds the
//! detector's running scores (`O(N · classes)`), one previous planned
//! row, a handful of row scratch buffers, per-user RNG/controller state
//! (`O(N)`), and a bounded ring of the most recent observed rows
//! (`O(width · ring_depth)`, [`ring_depth`](StreamingFleetEngine::ring_depth)
//! rows deep) for consumers that want a trailing window — `O(width ·
//! ring_depth + N)` total, independent of the horizon.
//!
//! Errors on ingest ([`SimError::StreamFault`]) are detected *before*
//! any engine state advances, so a broken or truncated stream leaves a
//! clean partial result — never a poisoned engine.

use crate::fleet::{
    chaff_seed, service_layout, shuffle_seed, user_seed, BudgetAllocation, FleetChaffPolicy,
    FleetConfig, FleetModel, FleetStats,
};
use crate::network::MecNetwork;
use crate::observer::fisher_yates;
use crate::{Result, SimError};
use chaff_core::detector::{Detection, StreamingPrefixDetector};
use chaff_core::strategy::OnlineChaffController;
use chaff_markov::{CellId, LogLikelihoodTable, MarkovChain, MobilityRegistry};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::VecDeque;

/// Default depth of the trailing observed-row ring.
pub const DEFAULT_RING_DEPTH: usize = 8;

/// Everything one streamed slot produces: the slot's detection and the
/// incremental accuracy samples. The per-slot means over a full run
/// equal the batch metrics
/// (`chaff_core::metrics::mean_tracking_accuracy_columnar` /
/// `mean_detection_accuracy`) exactly.
#[derive(Debug, Clone)]
pub struct SlotStep {
    /// The slot index just completed (0-based).
    pub slot: usize,
    /// The eavesdropper's argmax tie set for this slot's prefix.
    pub detection: Detection,
    /// This slot's mean-over-users tracking accuracy: the probability
    /// that a uniform guess over the tie set lands on a service sharing
    /// the user's cell.
    pub tracking_accuracy: f64,
    /// This slot's mean-over-users detection accuracy contribution: the
    /// tie-set mass on real user services, averaged over users.
    pub detection_accuracy: f64,
}

/// One user's persistent simulation state.
struct UserLane<'a> {
    /// The user's own mobility stream (unused on the ingest path).
    rng: StdRng,
    /// Current cell (`None` before the first slot).
    now: Option<CellId>,
    /// Chaff controllers with their independent RNG streams, in lane
    /// order.
    chaffs: Vec<(Box<dyn OnlineChaffController + 'a>, StdRng)>,
}

/// Bounded ring of the most recent observed slot rows (post-shuffle).
/// Buffers are recycled, so steady-state allocation is exactly
/// `depth × num_services` cells.
struct SlotRing {
    depth: usize,
    /// Absolute slot index of `rows.front()`.
    first_slot: usize,
    rows: VecDeque<Vec<CellId>>,
}

impl SlotRing {
    fn new(depth: usize) -> Self {
        SlotRing {
            depth: depth.max(1),
            first_slot: 0,
            rows: VecDeque::new(),
        }
    }

    fn push(&mut self, row: &[CellId]) {
        let mut buffer = if self.rows.len() == self.depth {
            self.first_slot += 1;
            self.rows.pop_front().unwrap_or_default()
        } else {
            Vec::with_capacity(row.len())
        };
        buffer.clear();
        buffer.extend_from_slice(row);
        self.rows.push_back(buffer);
    }

    fn bytes(&self) -> usize {
        self.rows.iter().map(|r| r.capacity() * 4).sum()
    }
}

/// The streaming fleet engine. Construct with
/// [`new`](StreamingFleetEngine::new) (homogeneous) or
/// [`with_registry`](StreamingFleetEngine::with_registry)
/// (heterogeneous), then call [`step`](StreamingFleetEngine::step) (or
/// [`step_ingested`](StreamingFleetEngine::step_ingested)) once per slot
/// until it returns `None`.
///
/// # Example
///
/// ```
/// use chaff_markov::{models::ModelKind, MarkovChain};
/// use chaff_sim::fleet::{FleetChaffPolicy, FleetChaffStrategy, FleetConfig};
/// use chaff_sim::streaming::StreamingFleetEngine;
/// use rand::{rngs::StdRng, SeedableRng};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut rng = StdRng::seed_from_u64(1);
/// let chain = MarkovChain::new(ModelKind::NonSkewed.build(10, &mut rng)?)?;
/// let policy = FleetChaffPolicy::uniform(FleetChaffStrategy::Im, 1);
/// let mut engine = StreamingFleetEngine::new(
///     &chain,
///     FleetConfig::new(50, 20).with_seed(7),
///     &policy,
/// )?;
/// let mut curve = Vec::new();
/// while let Some(step) = engine.step()? {
///     curve.push(step.tracking_accuracy); // live accuracy, slot by slot
/// }
/// assert_eq!(curve.len(), 20);
/// # Ok(())
/// # }
/// ```
pub struct StreamingFleetEngine<'a> {
    model: FleetModel<'a>,
    config: FleetConfig,
    service_starts: Vec<usize>,
    num_services: usize,
    /// `perm[original]` = post-shuffle position (identity when
    /// anonymization is off).
    perm: Vec<usize>,
    user_observed_indices: Vec<usize>,
    /// `is_user[observed index]`: does this column carry a real user?
    is_user: Vec<bool>,
    users: Vec<UserLane<'a>>,
    detector: StreamingPrefixDetector,
    ring: SlotRing,
    /// Previous slot's planned (pre-shuffle) row, for fast-path
    /// migration counting.
    planned_prev: Vec<CellId>,
    planned_row: Vec<CellId>,
    observed_row: Vec<CellId>,
    user_row: Vec<CellId>,
    /// Capacity replay state: the shared network plus each service's
    /// current actual cell.
    network: Option<(MecNetwork, Vec<CellId>)>,
    /// Cell histogram scratch for the per-slot tracking accuracy.
    histogram: Vec<usize>,
    stats: FleetStats,
    slot: usize,
}

impl<'a> StreamingFleetEngine<'a> {
    /// Creates a homogeneous streaming fleet (every user moves by
    /// `chain`) under `policy`.
    ///
    /// # Errors
    ///
    /// Same validation as
    /// [`FleetSimulation::run_chaffed`](crate::fleet::FleetSimulation::run_chaffed):
    /// rejects invalid configs, nonzero `chaffs_per_user`, mismatched
    /// per-class policies and overflowing budgets.
    pub fn new(
        chain: &'a MarkovChain,
        config: FleetConfig,
        policy: &FleetChaffPolicy,
    ) -> Result<Self> {
        Self::build(FleetModel::Homogeneous(chain), config, policy)
    }

    /// Creates a heterogeneous streaming fleet over a registry of
    /// mobility-model classes.
    ///
    /// # Errors
    ///
    /// See [`new`](Self::new).
    pub fn with_registry(
        registry: &'a MobilityRegistry,
        config: FleetConfig,
        policy: &FleetChaffPolicy,
    ) -> Result<Self> {
        Self::build(FleetModel::Heterogeneous(registry), config, policy)
    }

    fn build(
        model: FleetModel<'a>,
        config: FleetConfig,
        policy: &FleetChaffPolicy,
    ) -> Result<Self> {
        config.validate()?;
        if config.chaffs_per_user != 0 {
            return Err(SimError::InvalidConfig {
                parameter: "chaffs_per_user",
                reason: "the streaming engine takes budgets from the policy; leave \
                         chaffs_per_user at 0"
                    .into(),
            });
        }
        policy.validate(model.num_classes(), config.num_users)?;
        let n = config.num_users;
        let service_starts = service_layout(n, config.horizon, |user| {
            policy.budget_of(user, model.class_of(user), n)
        })?;
        let num_services = *service_starts.last().expect("layout has n + 1 entries");
        // Per-user persistent state: the same seed streams as the batch
        // engine's `simulate_user_into`, with controllers constructed in
        // lane order.
        let users: Vec<UserLane<'a>> = (0..n)
            .map(|user| {
                let budget = service_starts[user + 1] - service_starts[user] - 1;
                let class = model.class_of(user);
                let chaffs = (0..budget)
                    .map(|c| {
                        let seed = chaff_seed(config.seed, user as u64, c as u64);
                        // The same epoch-aware factory as the batch
                        // engine's `run_chaffed`: a multi-epoch registry
                        // steps one continuous controller against the
                        // epoch-active chains, the stationary path keeps
                        // the bare controller.
                        let strategy = policy.strategy_of(class);
                        let controller: Box<dyn OnlineChaffController + 'a> = match model {
                            FleetModel::Heterogeneous(r) if !r.is_stationary() => {
                                strategy.scheduled_controller(r, class)
                            }
                            _ => strategy.controller(model.chain_of(user)),
                        };
                        (controller, StdRng::seed_from_u64(seed))
                    })
                    .collect();
                UserLane {
                    rng: StdRng::seed_from_u64(user_seed(config.seed, user as u64)),
                    now: None,
                    chaffs,
                }
            })
            .collect();
        // The batch engine shuffles once, at assembly; the same
        // permutation (same seed stream) scatters every slot row here.
        let perm = if config.anonymize {
            let mut rng = StdRng::seed_from_u64(shuffle_seed(config.seed));
            fisher_yates(num_services, &mut rng)
        } else {
            (0..num_services).collect()
        };
        let user_observed_indices: Vec<usize> = (0..n).map(|u| perm[service_starts[u]]).collect();
        let mut is_user = vec![false; num_services];
        for &idx in &user_observed_indices {
            is_user[idx] = true;
        }
        // A multi-epoch registry arms the eavesdropper with the full
        // epoch-major table set (it knows the population's time-varying
        // model mix); stationary models keep the plain construction.
        let mut detector = match model {
            FleetModel::Heterogeneous(registry) if !registry.is_stationary() => {
                StreamingPrefixDetector::with_schedule(
                    registry.to_epoch_tables(),
                    registry.schedule().clone(),
                    num_services,
                    config.effective_shards(),
                )?
            }
            _ => {
                let tables: Vec<LogLikelihoodTable> = match model {
                    FleetModel::Homogeneous(chain) => vec![chain.log_likelihood_table()],
                    FleetModel::Heterogeneous(registry) => (0..registry.num_classes())
                        .map(|c| registry.table(c).clone())
                        .collect(),
                };
                StreamingPrefixDetector::with_shards(
                    tables,
                    num_services,
                    config.effective_shards(),
                )?
            }
        };
        // An adaptive policy needs the detector-side accuracy feedback to
        // compute its next epoch, so the running view is enabled up front
        // (other policies can opt in with `with_feedback`).
        if matches!(policy.allocation(), BudgetAllocation::Adaptive(_)) {
            detector = detector.with_feedback();
        }
        let network = match config.node_capacity {
            Some(capacity) => Some((
                MecNetwork::new(model.num_states(), Some(capacity))?,
                Vec::with_capacity(num_services),
            )),
            None => None,
        };
        let histogram = vec![0usize; model.num_states()];
        let stats = FleetStats {
            migrations: 0,
            spills: 0,
            user_slots: 0,
            chaff_services: num_services - n,
        };
        Ok(StreamingFleetEngine {
            model,
            config,
            service_starts,
            num_services,
            perm,
            user_observed_indices,
            is_user,
            users,
            detector,
            ring: SlotRing::new(DEFAULT_RING_DEPTH),
            planned_prev: Vec::with_capacity(num_services),
            planned_row: vec![CellId::new(0); num_services],
            observed_row: vec![CellId::new(0); num_services],
            user_row: vec![CellId::new(0); n],
            network,
            histogram,
            stats,
            slot: 0,
        })
    }

    /// Sets the depth of the trailing observed-row ring (clamped to at
    /// least one row).
    pub fn with_ring_depth(mut self, depth: usize) -> Self {
        self.ring = SlotRing::new(depth);
        self
    }

    /// Enables the detector's running per-column accuracy feedback even
    /// under a non-adaptive policy (adaptive policies enable it
    /// automatically). Retrieve per-user samples with
    /// [`user_feedback`](Self::user_feedback).
    pub fn with_feedback(mut self) -> Self {
        self.detector = self.detector.with_feedback();
        self
    }

    /// The running per-*user* detection accuracy: the detector's
    /// [`AccuracyFeedback`](chaff_core::detector::AccuracyFeedback)
    /// columns mapped back through the anonymization permutation to user
    /// order — exactly the vector
    /// [`FleetChaffPolicy::adapt`] consumes between epochs. `None` when
    /// feedback is not enabled.
    pub fn user_feedback(&self) -> Option<Vec<f64>> {
        self.detector.feedback().map(|feedback| {
            self.user_observed_indices
                .iter()
                .map(|&column| feedback.accuracy(column))
                .collect()
        })
    }

    /// Number of users `N`.
    pub fn num_users(&self) -> usize {
        self.config.num_users
    }

    /// Total services (users plus chaffs) per slot row.
    pub fn num_services(&self) -> usize {
        self.num_services
    }

    /// The configured horizon (the engine stops after this many slots).
    pub fn horizon(&self) -> usize {
        self.config.horizon
    }

    /// Slots completed so far.
    pub fn slots_run(&self) -> usize {
        self.slot
    }

    /// Depth of the trailing observed-row ring.
    pub fn ring_depth(&self) -> usize {
        self.ring.depth
    }

    /// Absolute slot indices currently buffered in the ring (the last
    /// `ring_depth` completed slots).
    pub fn buffered_slots(&self) -> std::ops::Range<usize> {
        self.ring.first_slot..self.ring.first_slot + self.ring.rows.len()
    }

    /// The observed (post-shuffle) row of an absolute slot index, if it
    /// is still buffered in the ring.
    pub fn observed_row(&self, slot: usize) -> Option<&[CellId]> {
        if !self.buffered_slots().contains(&slot) {
            return None;
        }
        self.ring
            .rows
            .get(slot - self.ring.first_slot)
            .map(Vec::as_slice)
    }

    /// The ground-truth user cells of the most recent slot (empty before
    /// the first step).
    pub fn last_user_row(&self) -> &[CellId] {
        if self.slot == 0 {
            &[]
        } else {
            &self.user_row
        }
    }

    /// `user_observed_indices[u]`: where user `u`'s real service sits in
    /// every observed row.
    pub fn user_observed_indices(&self) -> &[usize] {
        &self.user_observed_indices
    }

    /// Aggregate counters over the slots run so far. On a completed run
    /// these equal the batch engine's
    /// [`FleetStats`] bit-for-bit; on a
    /// truncated run they describe the clean partial prefix.
    pub fn stats(&self) -> FleetStats {
        self.stats
    }

    /// Bytes of horizon-independent engine state: the observed-row ring,
    /// the detector's running scores, the permutation/layout tables and
    /// the row scratch buffers. Per-user RNG/controller state is *not*
    /// included (it is `O(N)` but heap-layout dependent); the reported
    /// figure is the engine's `O(width · ring_depth + N)` columnar
    /// footprint, the quantity the memory-bound tests pin down.
    pub fn state_bytes(&self) -> usize {
        let rows = self.planned_prev.capacity() * 4
            + self.planned_row.capacity() * 4
            + self.observed_row.capacity() * 4
            + self.user_row.capacity() * 4;
        let tables = self.perm.capacity() * 8
            + self.service_starts.capacity() * 8
            + self.user_observed_indices.capacity() * 8
            + self.is_user.capacity()
            + self.histogram.capacity() * 8;
        let actual = self
            .network
            .as_ref()
            .map_or(0, |(_, actual)| actual.capacity() * 4);
        self.ring.bytes() + self.detector.state_bytes() + rows + tables + actual
    }

    /// Advances one slot, drawing every user's move from its mobility
    /// chain. Returns `None` once the configured horizon is exhausted.
    ///
    /// # Errors
    ///
    /// Propagates capacity errors ([`SimError::NoCapacity`]) from the
    /// shared-network replay.
    pub fn step(&mut self) -> Result<Option<SlotStep>> {
        if self.slot >= self.config.horizon {
            return Ok(None);
        }
        // Draw phase: each user advances by its own stream — the exact
        // draw order of the batch engine's `simulate_user_into`, which
        // interleaves user and chaff draws per slot but never across
        // users (independent streams make user order irrelevant).
        for user in 0..self.config.num_users {
            let chain = self.model.chain_at_slot(user, self.slot);
            let lane = &mut self.users[user];
            let cell = match lane.now {
                None => chain.initial().sample(&mut lane.rng),
                Some(prev) => chain.step(prev, &mut lane.rng),
            };
            self.user_row[user] = cell;
        }
        self.advance_slot()
    }

    /// Advances one slot with externally supplied user cells (trace
    /// ingestion): `user_cells[u]` is user `u`'s position this slot;
    /// chaff lanes still draw from their own streams. Returns `None`
    /// once the horizon is exhausted.
    ///
    /// The row is validated *before* any engine state advances: a bad
    /// row fails typed, naming the offending user and slot, and the
    /// engine remains exactly as it was — feed it a corrected row (or
    /// stop and keep the partial results).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::StreamFault`] when the row does not supply
    /// one cell per user or a cell falls outside the model's state
    /// space; propagates capacity errors from the shared-network replay.
    pub fn step_ingested(&mut self, user_cells: &[CellId]) -> Result<Option<SlotStep>> {
        if self.slot >= self.config.horizon {
            return Ok(None);
        }
        let n = self.config.num_users;
        if user_cells.len() != n {
            return Err(SimError::StreamFault {
                user: user_cells.len().min(n.saturating_sub(1)),
                slot: self.slot,
                reason: format!("slot row supplies {} cells for {n} users", user_cells.len()),
            });
        }
        let states = self.model.num_states();
        for (user, &cell) in user_cells.iter().enumerate() {
            if cell.index() >= states {
                return Err(SimError::StreamFault {
                    user,
                    slot: self.slot,
                    reason: format!(
                        "cell {} outside the {states}-cell state space",
                        cell.index()
                    ),
                });
            }
        }
        self.user_row.copy_from_slice(user_cells);
        self.advance_slot()
    }

    /// The shared slot tail: chaff injection, optional capacity replay,
    /// anonymized scatter, ring append, online detection and incremental
    /// accuracy. `self.user_row` holds this slot's user cells on entry.
    fn advance_slot(&mut self) -> Result<Option<SlotStep>> {
        let n = self.config.num_users;
        let slot = self.slot;
        // Chaff phase: always-follow for the real service, one
        // controller step per chaff lane (lane order, like the batch
        // engine).
        for user in 0..n {
            let cell = self.user_row[user];
            let lane = &mut self.users[user];
            lane.now = Some(cell);
            let col = self.service_starts[user];
            self.planned_row[col] = cell;
            for (offset, (controller, chaff_rng)) in lane.chaffs.iter_mut().enumerate() {
                self.planned_row[col + 1 + offset] = controller.next(cell, &[], chaff_rng);
            }
        }
        // Placement phase.
        if let Some((network, actual)) = &mut self.network {
            // Sequential capacity replay in global service order — the
            // batch engine's `replay_with_capacity`, one slot at a time.
            for (service, desired) in self.planned_row.iter().copied().enumerate() {
                let placed = if slot == 0 {
                    let cell = network.place_nearest(desired)?;
                    actual.push(cell);
                    cell
                } else {
                    let prev = actual[service];
                    let cell = network.migrate(prev, desired)?;
                    if cell != prev {
                        self.stats.migrations += 1;
                    }
                    actual[service] = cell;
                    cell
                };
                if placed != desired {
                    self.stats.spills += 1;
                }
                self.observed_row[self.perm[service]] = placed;
            }
        } else {
            // Fast path: planned placement is actual placement; count
            // migrations row against row.
            if slot > 0 {
                self.stats.migrations += self
                    .planned_row
                    .iter()
                    .zip(&self.planned_prev)
                    .filter(|(now, prev)| now != prev)
                    .count();
            }
            for (service, &cell) in self.planned_row.iter().enumerate() {
                self.observed_row[self.perm[service]] = cell;
            }
        }
        self.planned_prev.clear();
        self.planned_prev.extend_from_slice(&self.planned_row);
        self.ring.push(&self.observed_row);
        // Detection phase: the shared per-slot kernel. Cells come from a
        // validated model or a pre-validated ingest row, so this cannot
        // fail — but a typed propagation beats an unwrap if an invariant
        // ever breaks.
        let detection = self.detector.push_slot(&self.observed_row)?;
        // Incremental accuracy: the per-slot bodies of
        // `mean_tracking_accuracy_columnar` / `mean_detection_accuracy`.
        let tie = detection.tie_set();
        for &i in tie {
            self.histogram[self.observed_row[i].index()] += 1;
        }
        let mut hits = 0usize;
        for &u in &self.user_observed_indices {
            hits += self.histogram[self.observed_row[u].index()];
        }
        let tracking_accuracy = hits as f64 / tie.len() as f64 / n as f64;
        for &i in tie {
            self.histogram[self.observed_row[i].index()] = 0;
        }
        let named = tie.iter().filter(|&&i| self.is_user[i]).count();
        let detection_accuracy = named as f64 / tie.len() as f64 / n as f64;
        self.stats.user_slots += n;
        self.slot += 1;
        Ok(Some(SlotStep {
            slot,
            detection,
            tracking_accuracy,
            detection_accuracy,
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fleet::FleetChaffStrategy;

    fn chain(seed: u64) -> MarkovChain {
        crate::test_support::nonskewed_chain(seed, 10)
    }

    #[test]
    fn engine_runs_to_horizon_then_stops() {
        let c = chain(1);
        let policy = FleetChaffPolicy::uniform(FleetChaffStrategy::Im, 1);
        let mut engine =
            StreamingFleetEngine::new(&c, FleetConfig::new(8, 6).with_seed(3), &policy).unwrap();
        assert_eq!(engine.num_services(), 16);
        let mut slots = 0;
        while let Some(step) = engine.step().unwrap() {
            assert_eq!(step.slot, slots);
            assert!((0.0..=1.0).contains(&step.tracking_accuracy));
            assert!((0.0..=1.0).contains(&step.detection_accuracy));
            slots += 1;
        }
        assert_eq!(slots, 6);
        assert!(engine.step().unwrap().is_none());
        assert_eq!(engine.stats().user_slots, 8 * 6);
        assert_eq!(engine.stats().chaff_services, 8);
    }

    #[test]
    fn ring_keeps_only_the_trailing_window() {
        let c = chain(2);
        let policy = FleetChaffPolicy::uniform(FleetChaffStrategy::Im, 0);
        let mut engine = StreamingFleetEngine::new(&c, FleetConfig::new(5, 10), &policy)
            .unwrap()
            .with_ring_depth(3);
        for _ in 0..10 {
            engine.step().unwrap();
        }
        assert_eq!(engine.buffered_slots(), 7..10);
        assert!(engine.observed_row(6).is_none());
        assert!(engine.observed_row(7).is_some());
        assert!(engine.observed_row(9).is_some());
        assert!(engine.observed_row(10).is_none());
    }

    #[test]
    fn rejects_the_batch_engines_invalid_configs() {
        let c = chain(3);
        let policy = FleetChaffPolicy::uniform(FleetChaffStrategy::Im, 0);
        assert!(StreamingFleetEngine::new(&c, FleetConfig::new(0, 5), &policy).is_err());
        assert!(StreamingFleetEngine::new(&c, FleetConfig::new(5, 0), &policy).is_err());
        assert!(
            StreamingFleetEngine::new(&c, FleetConfig::new(5, 5).with_chaffs(1), &policy).is_err()
        );
        let bad = FleetChaffPolicy::per_class(vec![
            (FleetChaffStrategy::Im, 1),
            (FleetChaffStrategy::Cml, 1),
        ]);
        assert!(StreamingFleetEngine::new(&c, FleetConfig::new(5, 5), &bad).is_err());
        let huge = FleetChaffPolicy::uniform(FleetChaffStrategy::Im, usize::MAX);
        assert!(matches!(
            StreamingFleetEngine::new(&c, FleetConfig::new(2, 4), &huge),
            Err(SimError::BudgetOverflow { users: 2 })
        ));
    }

    #[test]
    fn ingest_faults_are_typed_and_do_not_poison_the_engine() {
        let c = chain(4);
        let policy = FleetChaffPolicy::uniform(FleetChaffStrategy::Cml, 1);
        let config = FleetConfig::new(4, 5).with_seed(9);
        let mut clean = StreamingFleetEngine::new(&c, config.clone(), &policy).unwrap();
        let mut poked = StreamingFleetEngine::new(&c, config, &policy).unwrap();
        let rows: Vec<Vec<CellId>> = (0..5)
            .map(|t| (0..4).map(|u| CellId::new((t + u) % 10)).collect())
            .collect();
        for (t, row) in rows.iter().enumerate() {
            // Wrong arity names the first user without a cell...
            match poked.step_ingested(&row[..2]).unwrap_err() {
                SimError::StreamFault { user, slot, .. } => {
                    assert_eq!((user, slot), (2, t));
                }
                other => panic!("unexpected error: {other:?}"),
            }
            // ...an out-of-range cell names its user...
            let mut bad = row.clone();
            bad[3] = CellId::new(999);
            match poked.step_ingested(&bad).unwrap_err() {
                SimError::StreamFault { user, slot, reason } => {
                    assert_eq!((user, slot), (3, t));
                    assert!(reason.contains("999"), "{reason}");
                }
                other => panic!("unexpected error: {other:?}"),
            }
            // ...and neither fault perturbed the stream.
            let a = clean.step_ingested(row).unwrap().unwrap();
            let b = poked.step_ingested(row).unwrap().unwrap();
            assert_eq!(a.detection, b.detection, "slot {t}");
            assert_eq!(
                a.tracking_accuracy.to_bits(),
                b.tracking_accuracy.to_bits(),
                "slot {t}"
            );
        }
        assert_eq!(poked.slots_run(), 5);
        assert_eq!(poked.stats(), clean.stats());
    }

    #[test]
    fn truncated_ingest_yields_a_clean_partial_result() {
        let c = chain(5);
        let policy = FleetChaffPolicy::uniform(FleetChaffStrategy::Im, 2);
        let mut engine =
            StreamingFleetEngine::new(&c, FleetConfig::new(3, 10).with_seed(11), &policy).unwrap();
        // The stream dies after 4 of 10 slots.
        for t in 0..4 {
            let row: Vec<CellId> = (0..3).map(|u| CellId::new((t + u) % 10)).collect();
            engine.step_ingested(&row).unwrap().unwrap();
        }
        assert_eq!(engine.slots_run(), 4);
        let stats = engine.stats();
        assert_eq!(stats.user_slots, 3 * 4);
        assert_eq!(stats.chaff_services, 6);
        // The partial engine is still serviceable: it can keep going
        // from where the stream stopped.
        let row: Vec<CellId> = vec![CellId::new(0); 3];
        assert!(engine.step_ingested(&row).unwrap().is_some());
        assert_eq!(engine.slots_run(), 5);
    }

    #[test]
    fn adaptive_policies_stream_per_user_feedback() {
        use crate::fleet::FleetSimulation;
        use chaff_core::detector::{AccuracyFeedback, BatchPrefixDetector, DetectInput};

        let c = chain(7);
        let config = FleetConfig::new(12, 9).with_seed(23);
        // A uniform policy leaves feedback off unless asked for...
        let uniform = FleetChaffPolicy::uniform(FleetChaffStrategy::Im, 1);
        let mut engine = StreamingFleetEngine::new(&c, config.clone(), &uniform).unwrap();
        assert!(engine.user_feedback().is_none());
        engine = StreamingFleetEngine::new(&c, config.clone(), &uniform)
            .unwrap()
            .with_feedback();
        assert!(engine.user_feedback().is_some());
        // ...an adaptive policy enables it automatically, and the
        // streamed per-user samples equal the batch bridge bit-for-bit.
        let adaptive = FleetChaffPolicy::adaptive(FleetChaffStrategy::Im, 12, 12);
        let mut engine = StreamingFleetEngine::new(&c, config.clone(), &adaptive).unwrap();
        while engine.step().unwrap().is_some() {}
        let streamed = engine.user_feedback().unwrap();

        let outcome = FleetSimulation::new(&c, config)
            .run_chaffed(&adaptive)
            .unwrap();
        let detections = BatchPrefixDetector::new()
            .detect_prefixes(DetectInput::new(&c, &outcome.observed))
            .unwrap();
        let bridged =
            AccuracyFeedback::from_detections(outcome.observed.num_trajectories(), &detections);
        for (u, &column) in outcome.user_observed_indices.iter().enumerate() {
            assert_eq!(
                streamed[u].to_bits(),
                bridged.accuracy(column).to_bits(),
                "user {u}"
            );
        }
        // The samples feed straight into the policy's adapt step.
        let mut policy = adaptive.clone();
        policy.adapt(&streamed).unwrap();
        assert_eq!(policy.adaptive_budgets().unwrap().total(), 12);
    }

    #[test]
    fn capacity_replay_spills_like_the_batch_engine() {
        let c = chain(6);
        let policy = FleetChaffPolicy::uniform(FleetChaffStrategy::Im, 1);
        let config = FleetConfig::new(3, 8)
            .with_capacity(1)
            .with_seed(7)
            .without_anonymization();
        let mut engine = StreamingFleetEngine::new(&c, config, &policy).unwrap();
        while let Some(step) = engine.step().unwrap() {
            let slot = step.slot;
            let row = engine.observed_row(slot).unwrap();
            let mut cells: Vec<usize> = row.iter().map(|c| c.index()).collect();
            cells.sort_unstable();
            cells.dedup();
            assert_eq!(cells.len(), 6, "capacity 1 keeps services disjoint");
        }
        assert!(engine.stats().spills > 0);
    }
}

//! The MEC network: one edge node per coverage cell, with optional
//! per-node service capacity.

use crate::{Result, SimError};
use chaff_markov::CellId;

/// The MEC deployment: node `i` serves cell `i`.
///
/// Tracks how many service instances each node currently hosts and
/// enforces an optional uniform capacity. Placement beyond capacity is
/// resolved by [`place_nearest`](MecNetwork::place_nearest), which spills
/// to the closest node (by cell-index distance, matching the 1-D random
/// walk models) with free capacity.
#[derive(Debug, Clone)]
pub struct MecNetwork {
    occupancy: Vec<usize>,
    capacity: Option<usize>,
}

impl MecNetwork {
    /// Creates a network of `num_cells` nodes with optional uniform
    /// `capacity` (in service instances per node).
    ///
    /// # Errors
    ///
    /// Returns an error when `num_cells == 0` or `capacity == Some(0)`.
    pub fn new(num_cells: usize, capacity: Option<usize>) -> Result<Self> {
        if num_cells == 0 {
            return Err(SimError::InvalidConfig {
                parameter: "num_cells",
                reason: "must be positive".into(),
            });
        }
        if capacity == Some(0) {
            return Err(SimError::InvalidConfig {
                parameter: "capacity",
                reason: "must be positive when set".into(),
            });
        }
        Ok(MecNetwork {
            occupancy: vec![0; num_cells],
            capacity,
        })
    }

    /// Number of MEC nodes.
    pub fn num_nodes(&self) -> usize {
        self.occupancy.len()
    }

    /// Instances currently hosted at `cell`'s node.
    pub fn occupancy(&self, cell: CellId) -> usize {
        self.occupancy[cell.index()]
    }

    /// Whether `cell`'s node can host one more instance.
    pub fn has_room(&self, cell: CellId) -> bool {
        match self.capacity {
            None => true,
            Some(k) => self.occupancy[cell.index()] < k,
        }
    }

    /// Places an instance at `cell` if there is room.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::NoCapacity`] when the node is full.
    pub fn place(&mut self, cell: CellId) -> Result<()> {
        if !self.has_room(cell) {
            return Err(SimError::NoCapacity { cell: cell.index() });
        }
        self.occupancy[cell.index()] += 1;
        Ok(())
    }

    /// Places an instance at `cell` or, if full, at the nearest cell (by
    /// index distance, ties to the lower index) with room. Returns the
    /// cell actually used.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::NoCapacity`] when every node is full.
    pub fn place_nearest(&mut self, cell: CellId) -> Result<CellId> {
        let n = self.num_nodes();
        for radius in 0..n {
            for candidate in [
                cell.index().checked_sub(radius),
                Some(cell.index() + radius),
            ]
            .into_iter()
            .flatten()
            {
                if candidate >= n {
                    continue;
                }
                let c = CellId::new(candidate);
                if self.has_room(c) {
                    self.occupancy[candidate] += 1;
                    return Ok(c);
                }
            }
        }
        Err(SimError::NoCapacity { cell: cell.index() })
    }

    /// Removes an instance from `cell`'s node.
    ///
    /// # Panics
    ///
    /// Panics (debug assertion) when the node is already empty — that is a
    /// simulator bookkeeping bug, not a user error.
    pub fn remove(&mut self, cell: CellId) {
        debug_assert!(self.occupancy[cell.index()] > 0, "removing from empty node");
        self.occupancy[cell.index()] = self.occupancy[cell.index()].saturating_sub(1);
    }

    /// Moves an instance between nodes, spilling to the nearest node with
    /// room when the target is full. Returns the destination actually
    /// used.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::NoCapacity`] when every node is full.
    pub fn migrate(&mut self, from: CellId, to: CellId) -> Result<CellId> {
        if from == to {
            return Ok(to);
        }
        self.remove(from);
        match self.place_nearest(to) {
            Ok(cell) => Ok(cell),
            Err(e) => {
                // Roll back so the caller's view stays consistent.
                self.occupancy[from.index()] += 1;
                Err(e)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_capacity_always_has_room() {
        let mut net = MecNetwork::new(3, None).unwrap();
        for _ in 0..100 {
            net.place(CellId::new(1)).unwrap();
        }
        assert_eq!(net.occupancy(CellId::new(1)), 100);
    }

    #[test]
    fn capacity_is_enforced() {
        let mut net = MecNetwork::new(3, Some(2)).unwrap();
        net.place(CellId::new(0)).unwrap();
        net.place(CellId::new(0)).unwrap();
        assert!(matches!(
            net.place(CellId::new(0)),
            Err(SimError::NoCapacity { cell: 0 })
        ));
    }

    #[test]
    fn place_nearest_spills_to_neighbors() {
        let mut net = MecNetwork::new(4, Some(1)).unwrap();
        assert_eq!(net.place_nearest(CellId::new(1)).unwrap(), CellId::new(1));
        // Cell 1 full: spills to 0 (lower index preferred at equal radius).
        assert_eq!(net.place_nearest(CellId::new(1)).unwrap(), CellId::new(0));
        assert_eq!(net.place_nearest(CellId::new(1)).unwrap(), CellId::new(2));
        assert_eq!(net.place_nearest(CellId::new(1)).unwrap(), CellId::new(3));
        assert!(net.place_nearest(CellId::new(1)).is_err());
    }

    #[test]
    fn migrate_moves_occupancy() {
        let mut net = MecNetwork::new(3, Some(1)).unwrap();
        net.place(CellId::new(0)).unwrap();
        let dest = net.migrate(CellId::new(0), CellId::new(2)).unwrap();
        assert_eq!(dest, CellId::new(2));
        assert_eq!(net.occupancy(CellId::new(0)), 0);
        assert_eq!(net.occupancy(CellId::new(2)), 1);
    }

    #[test]
    fn migrate_to_full_node_spills() {
        let mut net = MecNetwork::new(3, Some(1)).unwrap();
        net.place(CellId::new(0)).unwrap();
        net.place(CellId::new(2)).unwrap();
        // 2 is full; spilling from 2 tries 1.
        let dest = net.migrate(CellId::new(0), CellId::new(2)).unwrap();
        assert_eq!(dest, CellId::new(1));
    }

    #[test]
    fn migrate_self_is_noop() {
        let mut net = MecNetwork::new(2, Some(1)).unwrap();
        net.place(CellId::new(0)).unwrap();
        assert_eq!(
            net.migrate(CellId::new(0), CellId::new(0)).unwrap(),
            CellId::new(0)
        );
        assert_eq!(net.occupancy(CellId::new(0)), 1);
    }

    #[test]
    fn invalid_configs_rejected() {
        assert!(MecNetwork::new(0, None).is_err());
        assert!(MecNetwork::new(3, Some(0)).is_err());
    }
}

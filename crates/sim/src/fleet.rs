//! The fleet engine: sharded multi-user simulation over one shared MEC
//! world.
//!
//! Sec. II-A of the paper observes that in a real deployment every
//! coexisting user (and their chaffs) adds natural protection, making
//! single-user results lower bounds. [`FleetSimulation`] makes that
//! regime the first-class workload: `N` independent users — each with
//! their own mobility draw and optionally their own chaff services —
//! move through one MEC network with shared per-node capacity, and the
//! eavesdropper observes the union of all service trajectories under one
//! global anonymization shuffle.
//!
//! # The chaff-policy layer
//!
//! The chaff-based arXiv version (He et al., 1709.03133) frames the
//! defense as a *budgeted multi-user game*: each user buys some number of
//! chaff services. [`FleetChaffPolicy`] is that layer: it assigns every
//! user an online chaff strategy ([`FleetChaffStrategy`]: IM, CML or MO)
//! and a per-user budget via a [`BudgetAllocation`] — uniform (`B` chaffs
//! each), proportional (a fleet-wide total spread deterministically
//! across users), class-based (budget per mobility class), or *adaptive*
//! ([`AdaptiveBudgets`]: the same fleet-wide total re-apportioned between
//! epochs from detector-side accuracy feedback, the defender's move in
//! the best-response equilibrium sweep).
//! [`FleetSimulation::run_chaffed`] drives a whole fleet under one
//! policy; budget `B = 0` reproduces the undefended fleet bit-for-bit.
//!
//! # Heterogeneous mobility
//!
//! A fleet may mix mobility-model *classes* (commuters vs couriers):
//! construct with [`FleetSimulation::with_registry`] over a
//! [`MobilityRegistry`], and each user moves by (and its chaffs mimic)
//! the chain of its class — memory stays `O(classes)`, not `O(users)`.
//!
//! # Execution plan
//!
//! 1. **Layout.** Per-user budgets are pure functions of `(user, class,
//!    N)`, so the per-user service offset table is computed up front —
//!    with checked arithmetic, so a large budget × large `N` fails
//!    loudly ([`SimError::BudgetOverflow`]) instead of wrapping.
//! 2. **Generate (parallel, columnar).** Users are split into contiguous
//!    shards; each shard thread simulates its users slot by slot
//!    (always-follow placement, per-user chaff controllers) directly
//!    into its own columnar arena of the [`ShardedObservationLog`] and
//!    its row range of the ground-truth [`TrajectoryArena`] — one
//!    contiguous 4-byte-per-cell allocation per shard, no
//!    per-trajectory `Vec`s. Every user draws from an RNG seeded by
//!    SplitMix64 over `(fleet seed, user index)`, and every chaff from
//!    its own stream over `(fleet seed, user, chaff)` — so results are
//!    bit-identical for every shard count, growing the fleet never
//!    perturbs existing users' streams, and growing a user's chaff
//!    budget never perturbs the user's own trajectory.
//! 3. **Capacity replay (sequential, only when a capacity is set).** The
//!    planned placements are replayed through one shared [`MecNetwork`]
//!    in global service order, spilling to the nearest free node exactly
//!    like the single-user simulator.
//! 4. **Anonymize.** One Fisher–Yates permutation across all services,
//!    driven by the fleet seed, scattered into one slot-major
//!    [`CellGrid`].
//!
//! The outcome pairs with the streaming columnar detection core
//! (`chaff_core::detector::BatchPrefixDetector`, whose unified
//! `detect_prefixes` entry scores heterogeneous chaffed candidate sets
//! straight off the grid) for fleet-scale evaluation at `N = 10⁵–10⁶`,
//! and persists through `chaff-store` (see [`crate::persist`]) for
//! checkpoint/resume at `N = 10⁶–10⁷`.

use crate::network::MecNetwork;
use crate::observer::ShardedObservationLog;
use crate::{Result, SimError};
use chaff_core::strategy::{
    CmlController, EpochChains, ImController, MoController, OnlineChaffController,
};
use chaff_markov::{CellGrid, CellId, MarkovChain, MobilityRegistry, TrajectoryArena};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Fleet configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FleetConfig {
    /// Number of independent users `N`.
    pub num_users: usize,
    /// Chaff services launched per user by the *uniform legacy path*
    /// ([`FleetSimulation::run_online`]); [`FleetSimulation::run_chaffed`]
    /// takes budgets from its [`FleetChaffPolicy`] instead and requires
    /// this to stay 0.
    pub chaffs_per_user: usize,
    /// Number of slots to simulate.
    pub horizon: usize,
    /// Optional uniform per-MEC service capacity, shared by the whole
    /// fleet.
    pub node_capacity: Option<usize>,
    /// Whether to shuffle service order in the observation log.
    pub anonymize: bool,
    /// Master seed: drives every user's RNG, every chaff's RNG and the
    /// anonymization shuffle.
    pub seed: u64,
    /// Number of generation shards; `None` sizes from available
    /// parallelism. Results never depend on this.
    pub shards: Option<usize>,
}

impl FleetConfig {
    /// Creates a fleet of `num_users` users over `horizon` slots with no
    /// chaffs, no capacity limit, anonymization on and seed 0.
    pub fn new(num_users: usize, horizon: usize) -> Self {
        FleetConfig {
            num_users,
            chaffs_per_user: 0,
            horizon,
            node_capacity: None,
            anonymize: true,
            seed: 0,
            shards: None,
        }
    }

    /// Sets the number of chaffs per user (uniform legacy path only).
    pub fn with_chaffs(mut self, chaffs_per_user: usize) -> Self {
        self.chaffs_per_user = chaffs_per_user;
        self
    }

    /// Sets the shared per-node capacity.
    pub fn with_capacity(mut self, capacity: usize) -> Self {
        self.node_capacity = Some(capacity);
        self
    }

    /// Sets the master seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Pins the generation shard count (results are identical for every
    /// value; this only controls parallelism).
    pub fn with_shards(mut self, shards: usize) -> Self {
        self.shards = Some(shards.max(1));
        self
    }

    /// Disables observation-log shuffling.
    pub fn without_anonymization(mut self) -> Self {
        self.anonymize = false;
        self
    }

    /// Services per user (the real one plus its uniform chaffs) on the
    /// legacy uniform path.
    pub fn services_per_user(&self) -> usize {
        1 + self.chaffs_per_user
    }

    /// Total services across the fleet under the uniform budget (policy
    /// runs compute the true total from their allocation, with checked
    /// arithmetic; this display-oriented helper saturates instead).
    pub fn num_services(&self) -> usize {
        self.num_users.saturating_mul(self.services_per_user())
    }

    pub(crate) fn validate(&self) -> Result<()> {
        if self.num_users == 0 {
            return Err(SimError::InvalidConfig {
                parameter: "num_users",
                reason: "must be positive".into(),
            });
        }
        if self.horizon == 0 {
            return Err(SimError::InvalidConfig {
                parameter: "horizon",
                reason: "must be positive".into(),
            });
        }
        Ok(())
    }

    pub(crate) fn effective_shards(&self) -> usize {
        let requested = self.shards.unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1)
        });
        requested.clamp(1, self.num_users.max(1))
    }
}

/// An online chaff strategy a fleet policy can assign to users. Only the
/// paper's *online* strategies qualify — offline ones (ML, OO) need the
/// whole user trajectory in advance, which the strictly causal fleet
/// driver never has.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FleetChaffStrategy {
    /// Impersonating (Sec. IV-A): an independent draw of the user's
    /// chain; the only strategy whose protection grows with budget
    /// against the ML detector.
    Im,
    /// Constrained maximum likelihood (Sec. V-C1): greedy most-likely
    /// moves that never co-locate with the user.
    Cml,
    /// Myopic online (Algorithm 2): one-step lookahead on likelihood and
    /// co-location.
    Mo,
}

impl FleetChaffStrategy {
    /// Builds the per-slot controller for one chaff over `chain`.
    pub fn controller<'a>(self, chain: &'a MarkovChain) -> Box<dyn OnlineChaffController + 'a> {
        match self {
            FleetChaffStrategy::Im => Box::new(ImController::new(chain)),
            FleetChaffStrategy::Cml => Box::new(CmlController::new(chain)),
            FleetChaffStrategy::Mo => Box::new(MoController::new(chain)),
        }
    }

    /// Builds the per-slot controller for one chaff of a class-`class`
    /// user over the registry's epoch-active chains.
    ///
    /// The controller keeps one *continuous* cross-slot state (walk
    /// position, likelihood gap) while its chain switches with the
    /// slot's epoch — chaffs stay statistically indistinguishable from
    /// users across epoch boundaries (IM walks the same time-varying
    /// process the users do), and MO's γ race is scored under the same
    /// slot-active tables a schedule-aware detector applies. Controllers
    /// consume exactly the per-slot RNG draws of the stationary path (IM
    /// draws once per slot, CML and MO draw nothing), so a schedule
    /// whose epochs hold identical chains replays the stationary seed
    /// stream bit for bit.
    pub fn scheduled_controller<'a>(
        self,
        registry: &'a MobilityRegistry,
        class: usize,
    ) -> Box<dyn OnlineChaffController + 'a> {
        let chains = EpochChains::new(
            (0..registry.num_epochs())
                .map(|epoch| registry.chain_at(class, epoch))
                .collect(),
            registry.schedule().clone(),
        )
        .expect("registry epochs are shape-validated at construction");
        match self {
            FleetChaffStrategy::Im => Box::new(ImController::scheduled(chains)),
            FleetChaffStrategy::Cml => Box::new(CmlController::scheduled(chains)),
            FleetChaffStrategy::Mo => Box::new(MoController::scheduled(chains)),
        }
    }
}

impl std::fmt::Display for FleetChaffStrategy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            FleetChaffStrategy::Im => "IM",
            FleetChaffStrategy::Cml => "CML",
            FleetChaffStrategy::Mo => "MO",
        })
    }
}

/// How a [`FleetChaffPolicy`] distributes chaff budget over users.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BudgetAllocation {
    /// Every user gets exactly `B` chaffs.
    Uniform(usize),
    /// A fleet-wide total spread proportionally (i.e. as evenly as
    /// integers allow): user `u` gets `total / N` chaffs plus one more
    /// when `u < total mod N`. Deterministic and independent of sharding.
    Proportional {
        /// Total chaff services across the whole fleet.
        total: usize,
    },
    /// Budget per mobility class (indexed like the fleet's
    /// [`MobilityRegistry`]; a homogeneous fleet has exactly one class).
    PerClass(Vec<usize>),
    /// Feedback-adaptive: an explicit per-user budget vector, re-weighted
    /// between epochs from detector-side accuracy feedback
    /// ([`AdaptiveBudgets::adapt`]) while conserving the fleet-wide
    /// total. Within one epoch the vector is as static as any other
    /// allocation, so runs stay deterministic and shard-independent; and
    /// because budgets never feed the per-user / per-chaff seed streams,
    /// re-weighting never perturbs user trajectories.
    Adaptive(AdaptiveBudgets),
}

/// The state of the adaptive budget loop: a fleet-wide chaff total and
/// its current per-user split.
///
/// The initial split is exactly the proportional allocation (`total / N`
/// each, low indices taking the remainder). Each
/// [`adapt`](AdaptiveBudgets::adapt) epoch re-apportions the same total
/// by largest-remainder (Hamilton) rounding over *damped* weights — the
/// mean of each user's share of the reported detection accuracy and its
/// share of the current budget — so budget flows towards the users the
/// detector tracks best, half-way per epoch, without overshoot. Two
/// invariants hold by construction, under checked arithmetic:
///
/// * the budget vector always sums to the total (nothing is minted or
///   lost by rounding);
/// * uniform feedback is a fixed point: when every user reports the same
///   accuracy (including all-zero feedback), the proportional split
///   reproduces itself bit-for-bit, epoch after epoch.
///
/// All remainder and accuracy ties break towards the **lowest user
/// index** — mirroring the detector-side
/// [`AccuracyFeedback`](chaff_core::detector::AccuracyFeedback) ranking
/// rule — so the loop cannot oscillate run-to-run on tie order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AdaptiveBudgets {
    total: usize,
    budgets: Vec<usize>,
}

impl AdaptiveBudgets {
    /// The initial allocation: `total` chaffs over `num_users` users,
    /// split proportionally (low indices take the remainder). A fleet of
    /// zero users carries a zero total (the fleet config rejects `N = 0`
    /// before any run).
    pub fn new(num_users: usize, total: usize) -> Self {
        if num_users == 0 {
            return AdaptiveBudgets {
                total: 0,
                budgets: Vec::new(),
            };
        }
        let budgets = (0..num_users)
            .map(|u| total / num_users + usize::from(u < total % num_users))
            .collect();
        AdaptiveBudgets { total, budgets }
    }

    /// The conserved fleet-wide chaff total.
    pub fn total(&self) -> usize {
        self.total
    }

    /// The current per-user budget vector (always sums to
    /// [`total`](Self::total)).
    pub fn budgets(&self) -> &[usize] {
        &self.budgets
    }

    /// The current budget of one user.
    pub fn budget_of(&self, user: usize) -> usize {
        self.budgets[user]
    }

    /// One best-response epoch: re-apportions the total over damped
    /// weights `(accuracy share + budget share) / 2` by largest-remainder
    /// rounding, and returns the largest per-user budget movement (the
    /// quantity equilibrium sweeps compare against ε). All-zero feedback
    /// is treated as uniform, so a detector that never locked onto
    /// anyone leaves the allocation alone.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] when `accuracies` does not
    /// supply one finite non-negative sample per user, and
    /// [`SimError::BudgetOverflow`] if the apportionment sums ever
    /// overflow `usize` (checked arithmetic throughout).
    pub fn adapt(&mut self, accuracies: &[f64]) -> Result<usize> {
        let n = self.budgets.len();
        if accuracies.len() != n {
            return Err(SimError::InvalidConfig {
                parameter: "feedback.accuracies",
                reason: format!("{} accuracy samples for {n} users", accuracies.len()),
            });
        }
        for (user, &a) in accuracies.iter().enumerate() {
            if !a.is_finite() || a < 0.0 {
                return Err(SimError::InvalidConfig {
                    parameter: "feedback.accuracies",
                    reason: format!("user {user} reported accuracy {a}"),
                });
            }
        }
        if self.total == 0 || n == 0 {
            return Ok(0);
        }
        let overflow = || SimError::BudgetOverflow { users: n };
        let mass: f64 = accuracies.iter().sum();
        let uniform = 1.0 / n as f64;
        let total = self.total as f64;
        // Damped ideal seats: half the accuracy share, half the current
        // budget share. Identical inputs produce identical floats, so
        // remainder ties are exact — and broken by lowest user index.
        let ideals: Vec<f64> = (0..n)
            .map(|u| {
                let share = if mass > 0.0 {
                    accuracies[u] / mass
                } else {
                    uniform
                };
                0.5 * (share + self.budgets[u] as f64 / total) * total
            })
            .collect();
        let mut next: Vec<usize> = ideals.iter().map(|&x| x.floor() as usize).collect();
        let assigned = next
            .iter()
            .try_fold(0usize, |acc, &b| acc.checked_add(b))
            .ok_or_else(overflow)?;
        let leftover = self.total.checked_sub(assigned).ok_or_else(overflow)?;
        // Largest-remainder seats, ties to the lowest user index; the
        // round-robin wrap is unreachable for exact floors (leftover < N)
        // but keeps pathological float error from indexing out.
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_by(|&a, &b| {
            let (fa, fb) = (ideals[a] - ideals[a].floor(), ideals[b] - ideals[b].floor());
            fb.total_cmp(&fa).then(a.cmp(&b))
        });
        for k in 0..leftover {
            next[order[k % n]] = next[order[k % n]].checked_add(1).ok_or_else(overflow)?;
        }
        let delta = next
            .iter()
            .zip(&self.budgets)
            .map(|(&new, &old)| new.abs_diff(old))
            .max()
            .unwrap_or(0);
        self.budgets = next;
        Ok(delta)
    }
}

/// How a [`FleetChaffPolicy`] assigns chaff strategies to users.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StrategyAllocation {
    /// Every user runs the same strategy.
    Uniform(FleetChaffStrategy),
    /// One strategy per mobility class.
    PerClass(Vec<FleetChaffStrategy>),
}

/// The fleet-scale chaff-policy layer: assigns each user an online chaff
/// strategy and a per-user budget.
///
/// Budgets and strategies are pure functions of `(user, class, N)` — for
/// the adaptive allocation, of the current epoch's budget vector — so a
/// policy is deterministic, shard-independent, and stable under fleet
/// growth for the uniform and class-based allocations (the proportional
/// and adaptive allocations depend on `N` by design — they spread a
/// fixed total).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FleetChaffPolicy {
    allocation: BudgetAllocation,
    strategies: StrategyAllocation,
}

impl FleetChaffPolicy {
    /// Every user runs `strategy` with exactly `budget` chaffs.
    pub fn uniform(strategy: FleetChaffStrategy, budget: usize) -> Self {
        FleetChaffPolicy {
            allocation: BudgetAllocation::Uniform(budget),
            strategies: StrategyAllocation::Uniform(strategy),
        }
    }

    /// Every user runs `strategy`; a fleet-wide `total` of chaffs is
    /// spread as evenly as integers allow (low user indices take the
    /// remainder).
    pub fn proportional(strategy: FleetChaffStrategy, total: usize) -> Self {
        FleetChaffPolicy {
            allocation: BudgetAllocation::Proportional { total },
            strategies: StrategyAllocation::Uniform(strategy),
        }
    }

    /// Class-based assignment: class `c` users run `classes[c].0` with
    /// `classes[c].1` chaffs each. The length must match the fleet's
    /// number of mobility classes (checked at run time).
    pub fn per_class(classes: Vec<(FleetChaffStrategy, usize)>) -> Self {
        let (strategies, budgets) = classes.into_iter().unzip();
        FleetChaffPolicy {
            allocation: BudgetAllocation::PerClass(budgets),
            strategies: StrategyAllocation::PerClass(strategies),
        }
    }

    /// A custom combination of allocation and strategy assignment.
    pub fn new(allocation: BudgetAllocation, strategies: StrategyAllocation) -> Self {
        FleetChaffPolicy {
            allocation,
            strategies,
        }
    }

    /// Every user runs `strategy` under the feedback-adaptive allocation:
    /// `total` chaffs over `num_users` users, starting from the
    /// proportional split and re-weighted between epochs with
    /// [`adapt`](Self::adapt).
    pub fn adaptive(strategy: FleetChaffStrategy, num_users: usize, total: usize) -> Self {
        FleetChaffPolicy {
            allocation: BudgetAllocation::Adaptive(AdaptiveBudgets::new(num_users, total)),
            strategies: StrategyAllocation::Uniform(strategy),
        }
    }

    /// The policy's budget allocation.
    pub fn allocation(&self) -> &BudgetAllocation {
        &self.allocation
    }

    /// The adaptive budget state, when this policy is adaptive.
    pub fn adaptive_budgets(&self) -> Option<&AdaptiveBudgets> {
        match &self.allocation {
            BudgetAllocation::Adaptive(a) => Some(a),
            _ => None,
        }
    }

    /// One adaptive epoch: folds per-user accuracy feedback into the
    /// budget vector (see [`AdaptiveBudgets::adapt`]) and returns the
    /// largest per-user budget movement.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] for a non-adaptive policy or
    /// malformed feedback, and [`SimError::BudgetOverflow`] on
    /// apportionment overflow.
    pub fn adapt(&mut self, accuracies: &[f64]) -> Result<usize> {
        match &mut self.allocation {
            BudgetAllocation::Adaptive(a) => a.adapt(accuracies),
            _ => Err(SimError::InvalidConfig {
                parameter: "policy.allocation",
                reason: "adapt() requires BudgetAllocation::Adaptive".into(),
            }),
        }
    }

    /// The chaff budget of `user` (in class `class`, fleet size
    /// `num_users`).
    pub fn budget_of(&self, user: usize, class: usize, num_users: usize) -> usize {
        match &self.allocation {
            BudgetAllocation::Uniform(b) => *b,
            BudgetAllocation::Proportional { total } => {
                total / num_users + usize::from(user < total % num_users)
            }
            BudgetAllocation::PerClass(budgets) => budgets[class],
            BudgetAllocation::Adaptive(a) => a.budget_of(user),
        }
    }

    /// The chaff strategy of a user in class `class`.
    pub fn strategy_of(&self, class: usize) -> FleetChaffStrategy {
        match &self.strategies {
            StrategyAllocation::Uniform(s) => *s,
            StrategyAllocation::PerClass(v) => v[class],
        }
    }

    /// Total chaff services this policy launches across a fleet of
    /// `num_users` users mapped to classes by `class_of`.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::BudgetOverflow`] when the total does not fit
    /// `usize` — a large per-user budget times a large population must
    /// not wrap silently in release builds.
    pub fn total_budget(
        &self,
        num_users: usize,
        mut class_of: impl FnMut(usize) -> usize,
    ) -> Result<usize> {
        let overflow = || SimError::BudgetOverflow { users: num_users };
        match &self.allocation {
            BudgetAllocation::Uniform(b) => b.checked_mul(num_users).ok_or_else(overflow),
            BudgetAllocation::Proportional { total } => Ok(*total),
            BudgetAllocation::Adaptive(a) => Ok(a.total()),
            BudgetAllocation::PerClass(_) => (0..num_users).try_fold(0usize, |acc, u| {
                acc.checked_add(self.budget_of(u, class_of(u), num_users))
                    .ok_or_else(overflow)
            }),
        }
    }

    /// Checks class-indexed tables against the fleet's class count and
    /// user-indexed budget vectors against the fleet size.
    pub(crate) fn validate(&self, num_classes: usize, num_users: usize) -> Result<()> {
        if let BudgetAllocation::PerClass(budgets) = &self.allocation {
            if budgets.len() != num_classes {
                return Err(SimError::InvalidConfig {
                    parameter: "policy.budgets",
                    reason: format!(
                        "{} per-class budgets for {num_classes} mobility classes",
                        budgets.len()
                    ),
                });
            }
        }
        if let BudgetAllocation::Adaptive(a) = &self.allocation {
            if a.budgets().len() != num_users {
                return Err(SimError::InvalidConfig {
                    parameter: "policy.budgets",
                    reason: format!(
                        "{} adaptive per-user budgets for {num_users} users",
                        a.budgets().len()
                    ),
                });
            }
        }
        if let StrategyAllocation::PerClass(strategies) = &self.strategies {
            if strategies.len() != num_classes {
                return Err(SimError::InvalidConfig {
                    parameter: "policy.strategies",
                    reason: format!(
                        "{} per-class strategies for {num_classes} mobility classes",
                        strategies.len()
                    ),
                });
            }
        }
        Ok(())
    }
}

/// Aggregate fleet counters (per-service ledgers would dwarf the
/// trajectories at fleet scale).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FleetStats {
    /// Total service migrations (cell changes) across the fleet.
    pub migrations: usize,
    /// Placements diverted by capacity spills.
    pub spills: usize,
    /// Simulated user-slots (`num_users × horizon`), the throughput
    /// denominator.
    pub user_slots: usize,
    /// Chaff services launched across the fleet (0 on undefended runs).
    pub chaff_services: usize,
}

/// Everything a fleet run produces.
///
/// Both trajectory sets are columnar (one contiguous 4-byte-per-cell
/// arena each): at `N = 10⁶` users the per-trajectory representation's
/// allocation and pointer overhead alone would dwarf the cells.
#[derive(Debug, Clone)]
pub struct FleetOutcome {
    /// The eavesdropper's view: one column per service (all users' real
    /// services and chaffs together), shuffled when anonymization is on.
    /// Feed it straight to the unified
    /// `BatchPrefixDetector::detect_prefixes` entry; use
    /// [`CellGrid::trajectory`]/[`CellGrid::to_trajectories`] to bridge
    /// to per-trajectory consumers.
    pub observed: CellGrid,
    /// Ground truth: `user_observed_indices[u]` is the index of user
    /// `u`'s real service inside [`observed`](FleetOutcome::observed).
    pub user_observed_indices: Vec<usize>,
    /// Each user's physical cell per slot (row `u` = user `u`).
    pub user_cells: TrajectoryArena,
    /// Aggregate counters.
    pub stats: FleetStats,
}

/// The mobility substrate a fleet runs on: one shared chain, or a
/// registry of model classes. Shared with the slot-at-a-time engine in
/// [`crate::streaming`], which must mirror the batch engine's class
/// lookups exactly.
#[derive(Clone, Copy)]
pub(crate) enum FleetModel<'a> {
    /// Every user moves by the same chain.
    Homogeneous(&'a MarkovChain),
    /// User `u` moves by the chain of its registry class.
    Heterogeneous(&'a MobilityRegistry),
}

impl<'a> FleetModel<'a> {
    pub(crate) fn num_classes(&self) -> usize {
        match self {
            FleetModel::Homogeneous(_) => 1,
            FleetModel::Heterogeneous(r) => r.num_classes(),
        }
    }

    pub(crate) fn class_of(&self, user: usize) -> usize {
        match self {
            FleetModel::Homogeneous(_) => 0,
            FleetModel::Heterogeneous(r) => r.class_of(user),
        }
    }

    pub(crate) fn chain_of(&self, user: usize) -> &'a MarkovChain {
        match self {
            FleetModel::Homogeneous(c) => c,
            FleetModel::Heterogeneous(r) => r.chain_of(user),
        }
    }

    /// The chain governing user `user`'s arrival at slot `slot` — the
    /// epoch-active chain of the user's class. For homogeneous fleets and
    /// one-epoch registries this is [`chain_of`](Self::chain_of) at every
    /// slot, so the stationary draw sequence is untouched.
    #[inline]
    pub(crate) fn chain_at_slot(&self, user: usize, slot: usize) -> &'a MarkovChain {
        match self {
            FleetModel::Homogeneous(c) => c,
            FleetModel::Heterogeneous(r) => r.chain_of_at(user, slot),
        }
    }

    pub(crate) fn num_states(&self) -> usize {
        match self {
            FleetModel::Homogeneous(c) => c.num_states(),
            FleetModel::Heterogeneous(r) => r.num_states(),
        }
    }
}

/// A configured fleet simulation over one mobility model or a registry of
/// model classes.
///
/// # Example
///
/// ```
/// use chaff_core::detector::{BatchPrefixDetector, DetectInput};
/// use chaff_markov::{models::ModelKind, MarkovChain};
/// use chaff_sim::fleet::{FleetChaffPolicy, FleetChaffStrategy, FleetConfig, FleetSimulation};
/// use rand::{rngs::StdRng, SeedableRng};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut rng = StdRng::seed_from_u64(1);
/// let chain = MarkovChain::new(ModelKind::NonSkewed.build(10, &mut rng)?)?;
/// let policy = FleetChaffPolicy::uniform(FleetChaffStrategy::Im, 2);
/// let outcome = FleetSimulation::new(&chain, FleetConfig::new(200, 30).with_seed(7))
///     .run_chaffed(&policy)?;
/// assert_eq!(outcome.observed.num_trajectories(), 200 * 3); // real + 2 chaffs each
/// let detections =
///     BatchPrefixDetector::new().detect_prefixes(DetectInput::new(&chain, &outcome.observed))?;
/// assert_eq!(detections.len(), 30);
/// # Ok(())
/// # }
/// ```
pub struct FleetSimulation<'a> {
    model: FleetModel<'a>,
    config: FleetConfig,
}

impl<'a> FleetSimulation<'a> {
    /// Creates a homogeneous fleet simulation (every user moves by
    /// `chain`) with always-follow placement.
    pub fn new(chain: &'a MarkovChain, config: FleetConfig) -> Self {
        FleetSimulation {
            model: FleetModel::Homogeneous(chain),
            config,
        }
    }

    /// Creates a heterogeneous fleet over a registry of mobility-model
    /// classes: user `u` moves by (and its chaffs mimic)
    /// `registry.chain_of(u)` — or, for a multi-epoch registry, the
    /// epoch-active chain of `u`'s class at every slot.
    pub fn with_registry(registry: &'a MobilityRegistry, config: FleetConfig) -> Self {
        FleetSimulation {
            model: FleetModel::Heterogeneous(registry),
            config,
        }
    }

    /// Runs a fleet with no chaff services: every user's protection comes
    /// from the other users (the paper's natural-chaff observation).
    ///
    /// # Errors
    ///
    /// Propagates configuration and capacity errors; rejects a config
    /// with `chaffs_per_user > 0` (those need
    /// [`run_online`](FleetSimulation::run_online) or
    /// [`run_chaffed`](FleetSimulation::run_chaffed)).
    pub fn run_natural(self) -> Result<FleetOutcome> {
        if self.config.chaffs_per_user != 0 {
            return Err(SimError::InvalidConfig {
                parameter: "chaffs_per_user",
                reason: "run_natural simulates chaff-free fleets; use run_online".into(),
            });
        }
        // Zero budgets mean the factory is never consulted; if a layout
        // bug ever asked for a controller anyway, that surfaces as a
        // typed error instead of a panic.
        self.run_with(
            |_| 0,
            |user, _| {
                Err(SimError::InvalidConfig {
                    parameter: "chaffs_per_user",
                    reason: format!("natural fleet requested a chaff controller for user {user}"),
                })
            },
        )
    }

    /// Runs the fleet under a chaff policy: each user gets the strategy
    /// and budget the policy assigns to it (by user index and mobility
    /// class), with every chaff drawing from its own deterministic RNG
    /// stream. A policy whose budgets are all zero reproduces
    /// [`run_natural`](FleetSimulation::run_natural) bit-for-bit.
    ///
    /// # Errors
    ///
    /// Propagates configuration and capacity errors; rejects class-based
    /// policies whose tables do not match the fleet's class count, and a
    /// config with nonzero `chaffs_per_user` (ambiguous with the policy).
    pub fn run_chaffed(self, policy: &FleetChaffPolicy) -> Result<FleetOutcome> {
        if self.config.chaffs_per_user != 0 {
            return Err(SimError::InvalidConfig {
                parameter: "chaffs_per_user",
                reason: "run_chaffed takes budgets from the policy; leave chaffs_per_user at 0"
                    .into(),
            });
        }
        policy.validate(self.model.num_classes(), self.config.num_users)?;
        let n = self.config.num_users;
        let model = self.model;
        self.run_with(
            |user| policy.budget_of(user, model.class_of(user), n),
            |user, _chaff| {
                let class = model.class_of(user);
                let strategy = policy.strategy_of(class);
                // Time-varying fleets step one continuous controller
                // against the epoch-active chains; the stationary path
                // (every fleet until now) keeps the bare controller —
                // bit-for-bit the old stream.
                Ok(match model {
                    FleetModel::Heterogeneous(r) if !r.is_stationary() => {
                        strategy.scheduled_controller(r, class)
                    }
                    _ => strategy.controller(model.chain_of(user)),
                })
            },
        )
    }

    /// Runs the fleet with the uniform legacy interface:
    /// `make_controller(user, chaff)` builds the online chaff controller
    /// for chaff `chaff` of user `user`, and every user launches
    /// `config.chaffs_per_user` chaffs. The factory is called from worker
    /// threads (hence `Sync`) and must be deterministic in its arguments —
    /// all randomness should come from the per-slot RNG the controller
    /// receives (each chaff has its own deterministic stream).
    ///
    /// # Errors
    ///
    /// Propagates configuration and capacity errors.
    pub fn run_online<F>(self, make_controller: F) -> Result<FleetOutcome>
    where
        F: Fn(usize, usize) -> Box<dyn OnlineChaffController + 'a> + Sync,
    {
        let uniform = self.config.chaffs_per_user;
        self.run_with(|_| uniform, |user, chaff| Ok(make_controller(user, chaff)))
    }

    /// The shared driver: `budget_of(user)` chaffs per user, controllers
    /// from `make_controller`.
    fn run_with<B, F>(self, budget_of: B, make_controller: F) -> Result<FleetOutcome>
    where
        B: Fn(usize) -> usize + Sync,
        F: Fn(usize, usize) -> Result<Box<dyn OnlineChaffController + 'a>> + Sync,
    {
        self.config.validate()?;
        let service_starts = self.service_layout(&budget_of)?;
        let (user_cells, planned) = self.generate(&service_starts, &make_controller)?;
        self.assemble(user_cells, planned, &service_starts)
    }

    /// Phase 1 (layout): the per-user service offset table — see
    /// [`service_layout`]. Budgets are pure functions of the user index,
    /// so the whole layout exists before any worker starts.
    fn service_layout<B>(&self, budget_of: &B) -> Result<Vec<usize>>
    where
        B: Fn(usize) -> usize + Sync,
    {
        service_layout(self.config.num_users, self.config.horizon, budget_of)
    }

    /// Phase 2: per-user trajectory generation, sharded over users.
    /// Each worker fills one columnar arena of the planned observation
    /// log plus its row range of the ground-truth arena — zero
    /// per-trajectory allocations.
    fn generate<F>(
        &self,
        service_starts: &[usize],
        make_controller: &F,
    ) -> Result<(TrajectoryArena, ShardedObservationLog)>
    where
        F: Fn(usize, usize) -> Result<Box<dyn OnlineChaffController + 'a>> + Sync,
    {
        let n = self.config.num_users;
        let horizon = self.config.horizon;
        let shards = self.config.effective_shards();
        let chunk = n.div_ceil(shards);
        // Worker `w` owns users `w * chunk..` and, through the offset
        // table, their contiguous service range.
        let user_ranges: Vec<(usize, usize)> = (0..shards)
            .map(|w| (w * chunk, ((w + 1) * chunk).min(n)))
            .filter(|(lo, hi)| lo < hi)
            .collect();
        let mut shard_starts: Vec<usize> = user_ranges
            .iter()
            .map(|&(lo, _)| service_starts[lo])
            .collect();
        shard_starts.push(service_starts[n]);
        let mut planned = ShardedObservationLog::with_shard_starts(shard_starts, horizon)?;
        let mut user_cells = TrajectoryArena::new(n, horizon);
        let results: Vec<Result<()>> = {
            let arenas = planned.arenas_mut();
            let chunks = user_cells.chunks_of_rows_mut(chunk);
            let workers = user_ranges.iter().zip(chunks).zip(arenas);
            if user_ranges.len() <= 1 {
                workers
                    .map(|((&range, mut rows), (service_lo, arena))| {
                        self.fill_shard(
                            range,
                            &mut rows,
                            arena,
                            service_lo,
                            service_starts,
                            make_controller,
                        )
                    })
                    .collect()
            } else {
                // Generation shards run on the process-wide worker pool
                // (no per-run thread spawns); the pool re-raises worker
                // panics lowest shard first.
                let mut slots: Vec<Option<Result<()>>> = user_ranges.iter().map(|_| None).collect();
                chaff_core::pool::global().scope(|scope| {
                    for (((&range, mut rows), (service_lo, arena)), slot) in
                        workers.zip(slots.iter_mut())
                    {
                        let this = &*self;
                        scope.spawn(move || {
                            *slot = Some(this.fill_shard(
                                range,
                                &mut rows,
                                arena,
                                service_lo,
                                service_starts,
                                make_controller,
                            ));
                        });
                    }
                });
                slots
                    .into_iter()
                    .map(|s| s.expect("pool scope ran every generation shard"))
                    .collect()
            }
        };
        // Collect in shard order so the lowest erroring user wins
        // deterministically.
        for result in results {
            result?;
        }
        Ok((user_cells, planned))
    }

    /// One worker's generation pass over users `ulo..uhi`.
    fn fill_shard<F>(
        &self,
        (ulo, uhi): (usize, usize),
        rows: &mut chaff_markov::ArenaRowsMut<'_>,
        arena: &mut CellGrid,
        service_lo: usize,
        service_starts: &[usize],
        make_controller: &F,
    ) -> Result<()>
    where
        F: Fn(usize, usize) -> Result<Box<dyn OnlineChaffController + 'a>> + Sync,
    {
        for (j, user) in (ulo..uhi).enumerate() {
            let budget = service_starts[user + 1] - service_starts[user] - 1;
            let col = service_starts[user] - service_lo;
            self.simulate_user_into(user, budget, make_controller, rows.row_mut(j), arena, col)?;
        }
        Ok(())
    }

    /// Simulates one user: strictly causal per-slot moves with
    /// always-follow placement, mirroring `Simulation::run_online`,
    /// written straight into the columnar arenas. The user and each
    /// chaff draw from separate deterministic streams, so the chaff
    /// budget never perturbs the user's own trajectory.
    fn simulate_user_into<F>(
        &self,
        user: usize,
        budget: usize,
        make_controller: &F,
        user_row: &mut [CellId],
        services: &mut CellGrid,
        col: usize,
    ) -> Result<()>
    where
        F: Fn(usize, usize) -> Result<Box<dyn OnlineChaffController + 'a>> + Sync,
    {
        let mut rng = StdRng::seed_from_u64(user_seed(self.config.seed, user as u64));
        let mut chaff_lanes: Vec<(Box<dyn OnlineChaffController + 'a>, StdRng)> = (0..budget)
            .map(|c| {
                let seed = chaff_seed(self.config.seed, user as u64, c as u64);
                Ok((make_controller(user, c)?, StdRng::seed_from_u64(seed)))
            })
            .collect::<Result<_>>()?;
        let mut user_now: Option<CellId> = None;
        for (slot, user_slot) in user_row.iter_mut().enumerate() {
            // The arrival at `slot` is drawn from that slot's epoch-active
            // chain. Every chain consumes exactly one draw per step, so a
            // one-epoch model replays the stationary stream bit-for-bit.
            let chain = self.model.chain_at_slot(user, slot);
            let cell = match user_now {
                None => chain.initial().sample(&mut rng),
                Some(prev) => chain.step(prev, &mut rng),
            };
            user_now = Some(cell);
            *user_slot = cell;
            // Always-follow: the real service co-locates with the user.
            services.set(slot, col, cell);
            for (lane, (controller, chaff_rng)) in chaff_lanes.iter_mut().enumerate() {
                services.set(slot, col + 1 + lane, controller.next(cell, &[], chaff_rng));
            }
        }
        Ok(())
    }

    /// Phases 3–4: optional shared-capacity replay, then one global
    /// anonymization shuffle.
    fn assemble(
        &self,
        user_cells: TrajectoryArena,
        planned: ShardedObservationLog,
        service_starts: &[usize],
    ) -> Result<FleetOutcome> {
        let n = self.config.num_users;
        let horizon = self.config.horizon;
        let num_services = planned.num_services();
        let mut stats = FleetStats {
            migrations: 0,
            spills: 0,
            user_slots: n * horizon,
            chaff_services: num_services - n,
        };
        let log = if let Some(capacity) = self.config.node_capacity {
            self.replay_with_capacity(&planned, service_starts, capacity, &mut stats)?
        } else {
            // Fast path: without capacity limits the planned placement is
            // the actual placement; count migrations row against row
            // (contiguous columnar compares, no per-trajectory walk).
            for arena in planned.shard_grids() {
                for t in 1..arena.horizon() {
                    stats.migrations += arena
                        .row(t)
                        .iter()
                        .zip(arena.row(t - 1))
                        .filter(|(now, prev)| now != prev)
                        .count();
                }
            }
            planned
        };
        let (observed, user_observed_indices) = if self.config.anonymize {
            let mut rng = StdRng::seed_from_u64(shuffle_seed(self.config.seed));
            let (observed, perm) = log.into_anonymized(&mut rng);
            let indices = (0..n).map(|u| perm[service_starts[u]]).collect();
            (observed, indices)
        } else {
            let observed = log.into_ordered()?;
            let indices = service_starts[..n].to_vec();
            (observed, indices)
        };
        Ok(FleetOutcome {
            observed,
            user_observed_indices,
            user_cells,
            stats,
        })
    }

    /// Sequential replay through one shared MEC network: services are
    /// visited in global index order per slot, so spills are deterministic
    /// and identical for every shard count.
    fn replay_with_capacity(
        &self,
        planned: &ShardedObservationLog,
        service_starts: &[usize],
        capacity: usize,
        stats: &mut FleetStats,
    ) -> Result<ShardedObservationLog> {
        let horizon = self.config.horizon;
        let num_services = planned.num_services();
        let mut network = MecNetwork::new(self.model.num_states(), Some(capacity))?;
        let mut log = ShardedObservationLog::new(num_services, self.config.effective_shards())
            .with_user_layout(service_starts.to_vec());
        let mut actual: Vec<CellId> = Vec::with_capacity(num_services);
        let mut desired_row: Vec<CellId> = Vec::with_capacity(num_services);
        let mut locations = Vec::with_capacity(num_services);
        for slot in 0..horizon {
            planned.copy_slot_into(slot, &mut desired_row);
            locations.clear();
            for (service, &desired) in desired_row.iter().enumerate() {
                let placed = if slot == 0 {
                    let cell = network.place_nearest(desired)?;
                    actual.push(cell);
                    cell
                } else {
                    let prev = actual[service];
                    let cell = network.migrate(prev, desired)?;
                    if cell != prev {
                        stats.migrations += 1;
                    }
                    actual[service] = cell;
                    cell
                };
                if placed != desired {
                    stats.spills += 1;
                }
                locations.push(placed);
            }
            log.record_slot(&locations)?;
        }
        Ok(log)
    }
}

/// Derives user `u`'s RNG seed from the fleet seed — SplitMix64 over
/// `base ^ u`, matching the Monte Carlo seed derivation in `chaff-eval`
/// so streams never correlate across users.
pub fn user_seed(base: u64, user: u64) -> u64 {
    let mut z = base ^ user.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Derives the RNG seed for chaff `chaff` of user `user`: a second
/// SplitMix64 scramble over the user's seed under a chaff-lane salt, so
/// chaff streams are independent of the user's own stream (the budget
/// never perturbs the user's trajectory) and of each other.
pub fn chaff_seed(base: u64, user: u64, chaff: u64) -> u64 {
    user_seed(user_seed(base, user) ^ 0xC4AF_F000_0000_0000, chaff)
}

/// Seed stream for the anonymization shuffle (kept separate from user
/// streams so adding users never perturbs the permutation draw). Shared
/// with [`crate::streaming`], whose up-front permutation must be the
/// batch engine's draw bit-for-bit.
pub(crate) fn shuffle_seed(base: u64) -> u64 {
    user_seed(base, 0xF1EE_7000_0000_0001)
}

/// The per-user service offset table: user `u` owns global services
/// `starts[u]..starts[u + 1]` (real service first, then its chaffs).
/// Checked arithmetic throughout — oversized budgets fail typed
/// ([`SimError::BudgetOverflow`]) before any allocation, including the
/// `total × horizon` cell count the columnar stores would need. Shared by
/// the batch engine and [`crate::streaming`], so both lay services out
/// identically.
pub(crate) fn service_layout<B>(
    num_users: usize,
    horizon: usize,
    budget_of: B,
) -> Result<Vec<usize>>
where
    B: Fn(usize) -> usize,
{
    let overflow = || SimError::BudgetOverflow { users: num_users };
    let mut service_starts = Vec::with_capacity(num_users + 1);
    let mut total = 0usize;
    service_starts.push(0);
    for user in 0..num_users {
        let services = budget_of(user).checked_add(1).ok_or_else(overflow)?;
        total = total.checked_add(services).ok_or_else(overflow)?;
        service_starts.push(total);
    }
    total.checked_mul(horizon).ok_or_else(overflow)?;
    Ok(service_starts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use chaff_core::strategy::{CmlController, ImController};

    fn chain(seed: u64) -> MarkovChain {
        crate::test_support::nonskewed_chain(seed, 10)
    }

    fn registry(seed: u64, classes: usize) -> MobilityRegistry {
        crate::test_support::mixed_registry(seed, 10, classes)
    }

    #[test]
    fn natural_fleet_produces_consistent_outcome() {
        let c = chain(1);
        let outcome = FleetSimulation::new(&c, FleetConfig::new(25, 12).with_seed(5))
            .run_natural()
            .unwrap();
        assert_eq!(outcome.observed.num_trajectories(), 25);
        assert_eq!(outcome.user_cells.num_trajectories(), 25);
        assert_eq!(outcome.stats.user_slots, 25 * 12);
        assert_eq!(outcome.stats.chaff_services, 0);
        for (u, &idx) in outcome.user_observed_indices.iter().enumerate() {
            assert_eq!(
                outcome.observed.trajectory(idx).as_slice(),
                outcome.user_cells.row(u),
                "user {u}"
            );
        }
    }

    #[test]
    fn results_are_identical_across_shard_counts() {
        let c = chain(2);
        let reference =
            FleetSimulation::new(&c, FleetConfig::new(17, 9).with_seed(3).with_shards(1))
                .run_natural()
                .unwrap();
        for shards in [2, 4, 17, 64] {
            let outcome =
                FleetSimulation::new(&c, FleetConfig::new(17, 9).with_seed(3).with_shards(shards))
                    .run_natural()
                    .unwrap();
            assert_eq!(outcome.observed, reference.observed, "shards = {shards}");
            assert_eq!(
                outcome.user_observed_indices, reference.user_observed_indices,
                "shards = {shards}"
            );
        }
    }

    #[test]
    fn chaff_controllers_run_per_user() {
        let c = chain(3);
        let config = FleetConfig::new(6, 10)
            .with_chaffs(2)
            .with_seed(11)
            .without_anonymization();
        let outcome = FleetSimulation::new(&c, config)
            .run_online(|_, _| Box::new(CmlController::new(&c)))
            .unwrap();
        assert_eq!(outcome.observed.num_trajectories(), 6 * 3);
        assert_eq!(outcome.stats.chaff_services, 12);
        // Without anonymization user u's real service sits at u * 3.
        for (u, &idx) in outcome.user_observed_indices.iter().enumerate() {
            assert_eq!(idx, u * 3);
            assert_eq!(
                outcome.observed.trajectory(idx).as_slice(),
                outcome.user_cells.row(u)
            );
        }
        // CML is deterministic: both chaffs of a user coincide.
        for u in 0..6 {
            assert_eq!(
                outcome.observed.trajectory(u * 3 + 1),
                outcome.observed.trajectory(u * 3 + 2)
            );
        }
    }

    #[test]
    fn capacity_one_keeps_services_disjoint() {
        let c = chain(4);
        let config = FleetConfig::new(3, 8)
            .with_chaffs(1)
            .with_capacity(1)
            .with_seed(7)
            .without_anonymization();
        let outcome = FleetSimulation::new(&c, config)
            .run_online(|_, _| Box::new(ImController::new(&c)))
            .unwrap();
        for t in 0..8 {
            let mut cells: Vec<usize> = outcome.observed.row(t).iter().map(|c| c.index()).collect();
            cells.sort_unstable();
            cells.dedup();
            assert_eq!(cells.len(), 6, "slot {t}");
        }
        assert!(outcome.stats.spills > 0, "co-location attempts must spill");
    }

    #[test]
    fn user_streams_are_independent_of_population_size() {
        // Growing the fleet must not change the trajectories of existing
        // users (per-user seeding, not a shared stream).
        let c = chain(5);
        let small = FleetSimulation::new(&c, FleetConfig::new(4, 10).with_seed(21))
            .run_natural()
            .unwrap();
        let large = FleetSimulation::new(&c, FleetConfig::new(9, 10).with_seed(21))
            .run_natural()
            .unwrap();
        for u in 0..4 {
            assert_eq!(small.user_cells.row(u), large.user_cells.row(u), "user {u}");
        }
    }

    #[test]
    fn invalid_configs_are_rejected() {
        let c = chain(6);
        assert!(FleetSimulation::new(&c, FleetConfig::new(0, 5))
            .run_natural()
            .is_err());
        assert!(FleetSimulation::new(&c, FleetConfig::new(5, 0))
            .run_natural()
            .is_err());
        assert!(
            FleetSimulation::new(&c, FleetConfig::new(5, 5).with_chaffs(1))
                .run_natural()
                .is_err()
        );
        // run_chaffed rejects the ambiguous uniform legacy knob.
        let policy = FleetChaffPolicy::uniform(FleetChaffStrategy::Im, 1);
        assert!(
            FleetSimulation::new(&c, FleetConfig::new(5, 5).with_chaffs(1))
                .run_chaffed(&policy)
                .is_err()
        );
    }

    #[test]
    fn migrations_are_counted_on_the_fast_path() {
        let c = chain(7);
        let outcome = FleetSimulation::new(&c, FleetConfig::new(10, 20).with_seed(9))
            .run_natural()
            .unwrap();
        let expected: usize = (0..outcome.user_cells.num_trajectories())
            .map(|u| {
                let row = outcome.user_cells.row(u);
                row.windows(2).filter(|w| w[0] != w[1]).count()
            })
            .sum();
        assert_eq!(outcome.stats.migrations, expected);
    }

    #[test]
    fn uniform_policy_launches_budget_chaffs_per_user() {
        let c = chain(8);
        let policy = FleetChaffPolicy::uniform(FleetChaffStrategy::Im, 3);
        let outcome = FleetSimulation::new(&c, FleetConfig::new(7, 9).with_seed(13))
            .run_chaffed(&policy)
            .unwrap();
        assert_eq!(outcome.observed.num_trajectories(), 7 * 4);
        assert_eq!(outcome.stats.chaff_services, 21);
        for (u, &idx) in outcome.user_observed_indices.iter().enumerate() {
            assert_eq!(
                outcome.observed.trajectory(idx).as_slice(),
                outcome.user_cells.row(u),
                "user {u}"
            );
        }
    }

    #[test]
    fn proportional_allocation_spreads_the_total_with_low_index_remainder() {
        let policy = FleetChaffPolicy::proportional(FleetChaffStrategy::Im, 7);
        let budgets: Vec<usize> = (0..5).map(|u| policy.budget_of(u, 0, 5)).collect();
        assert_eq!(budgets, vec![2, 2, 1, 1, 1]);
        assert_eq!(budgets.iter().sum::<usize>(), 7);
        assert_eq!(policy.total_budget(5, |_| 0).unwrap(), 7);

        let c = chain(9);
        let outcome = FleetSimulation::new(
            &c,
            FleetConfig::new(5, 6).with_seed(17).without_anonymization(),
        )
        .run_chaffed(&policy)
        .unwrap();
        assert_eq!(outcome.observed.num_trajectories(), 5 + 7);
        // Real services sit at the per-user prefix offsets 0, 3, 6, 8, 10.
        assert_eq!(outcome.user_observed_indices, vec![0, 3, 6, 8, 10]);
    }

    #[test]
    fn budget_totals_fail_typed_instead_of_wrapping() {
        // Uniform: budget × N at the usize boundary. In release builds
        // the old unchecked multiply wrapped to a tiny total.
        let huge = FleetChaffPolicy::uniform(FleetChaffStrategy::Im, usize::MAX / 2);
        assert!(matches!(
            huge.total_budget(3, |_| 0),
            Err(SimError::BudgetOverflow { users: 3 })
        ));
        // The exact boundary still fits...
        let fit = FleetChaffPolicy::uniform(FleetChaffStrategy::Im, usize::MAX / 3);
        assert_eq!(fit.total_budget(3, |_| 0).unwrap(), usize::MAX / 3 * 3);
        // ... and per-class sums are checked the same way.
        let per_class = FleetChaffPolicy::per_class(vec![(FleetChaffStrategy::Im, usize::MAX / 2)]);
        assert!(matches!(
            per_class.total_budget(4, |_| 0),
            Err(SimError::BudgetOverflow { users: 4 })
        ));
        // Proportional totals are exact by construction.
        let prop = FleetChaffPolicy::proportional(FleetChaffStrategy::Im, usize::MAX);
        assert_eq!(prop.total_budget(1_000, |_| 0).unwrap(), usize::MAX);
    }

    #[test]
    fn oversized_per_user_budgets_are_rejected_by_the_driver() {
        // The service layout (budget + 1 real service per user, summed
        // over users) is checked before any allocation happens.
        let c = chain(16);
        let policy = FleetChaffPolicy::uniform(FleetChaffStrategy::Im, usize::MAX);
        let err = FleetSimulation::new(&c, FleetConfig::new(2, 4))
            .run_chaffed(&policy)
            .unwrap_err();
        assert!(
            matches!(err, SimError::BudgetOverflow { users: 2 }),
            "{err}"
        );
        let near = FleetChaffPolicy::uniform(FleetChaffStrategy::Im, usize::MAX / 2);
        let err = FleetSimulation::new(&c, FleetConfig::new(3, 4))
            .run_chaffed(&near)
            .unwrap_err();
        assert!(
            matches!(err, SimError::BudgetOverflow { users: 3 }),
            "{err}"
        );
    }

    #[test]
    fn class_based_policies_follow_the_registry() {
        let r = registry(10, 2);
        let policy = FleetChaffPolicy::per_class(vec![
            (FleetChaffStrategy::Im, 2),
            (FleetChaffStrategy::Cml, 0),
        ]);
        let outcome = FleetSimulation::with_registry(
            &r,
            FleetConfig::new(6, 8).with_seed(19).without_anonymization(),
        )
        .run_chaffed(&policy)
        .unwrap();
        // Users 0, 2, 4 are class 0 (budget 2); users 1, 3, 5 class 1
        // (budget 0): 3 * 3 + 3 * 1 services.
        assert_eq!(outcome.observed.num_trajectories(), 12);
        assert_eq!(outcome.stats.chaff_services, 6);
        assert_eq!(policy.total_budget(6, |u| r.class_of(u)).unwrap(), 6);

        // Wrong class arity is rejected.
        let bad = FleetChaffPolicy::per_class(vec![(FleetChaffStrategy::Im, 1)]);
        assert!(FleetSimulation::with_registry(&r, FleetConfig::new(6, 8))
            .run_chaffed(&bad)
            .is_err());
    }

    #[test]
    fn adaptive_budgets_start_proportional_and_conserve_the_total() {
        let mut a = AdaptiveBudgets::new(5, 7);
        assert_eq!(a.budgets(), &[2, 2, 1, 1, 1]);
        assert_eq!(a.total(), 7);
        // Skewed feedback moves budget towards the tracked users while
        // conserving the total...
        let delta = a.adapt(&[0.9, 0.02, 0.02, 0.02, 0.04]).unwrap();
        assert!(delta > 0);
        assert_eq!(a.budgets().iter().sum::<usize>(), 7);
        assert!(a.budget_of(0) > 2, "budgets {:?}", a.budgets());
        // ...and repeated epochs keep converging onto the tracked user.
        for _ in 0..10 {
            a.adapt(&[0.9, 0.02, 0.02, 0.02, 0.04]).unwrap();
            assert_eq!(a.budgets().iter().sum::<usize>(), 7);
        }
        assert!(a.budget_of(0) >= 5, "budgets {:?}", a.budgets());
    }

    #[test]
    fn uniform_feedback_is_a_fixed_point_of_the_adaptive_split() {
        // The ISSUE 9 reduction: feedback frozen at uniform accuracy must
        // keep the budget vector exactly at the static proportional
        // split — including the all-zero "no signal" case — so the
        // adaptive policy degrades gracefully to proportional.
        for (n, total) in [(5usize, 7usize), (4, 4), (3, 10), (6, 0), (7, 20)] {
            let proportional: Vec<usize> = (0..n)
                .map(|u| total / n + usize::from(u < total % n))
                .collect();
            let mut a = AdaptiveBudgets::new(n, total);
            assert_eq!(a.budgets(), proportional.as_slice());
            for accuracy in [0.0, 0.25, 1.0] {
                let delta = a.adapt(&vec![accuracy; n]).unwrap();
                assert_eq!(delta, 0, "N = {n}, total = {total}, a = {accuracy}");
                assert_eq!(a.budgets(), proportional.as_slice());
            }
        }
    }

    #[test]
    fn adaptive_remainder_ties_break_towards_the_lowest_user() {
        // Saturated detector ties hand every user identical feedback;
        // the leftover seats must land on the lowest indices (the same
        // deterministic rule as proportional), never oscillate.
        let mut a = AdaptiveBudgets::new(4, 6);
        assert_eq!(a.budgets(), &[2, 2, 1, 1]);
        a.adapt(&[0.25; 4]).unwrap();
        assert_eq!(a.budgets(), &[2, 2, 1, 1]);
    }

    #[test]
    fn adaptive_feedback_is_validated() {
        let mut a = AdaptiveBudgets::new(3, 5);
        assert!(matches!(
            a.adapt(&[0.1, 0.2]),
            Err(SimError::InvalidConfig { .. })
        ));
        assert!(matches!(
            a.adapt(&[0.1, f64::NAN, 0.2]),
            Err(SimError::InvalidConfig { .. })
        ));
        assert!(matches!(
            a.adapt(&[0.1, -0.5, 0.2]),
            Err(SimError::InvalidConfig { .. })
        ));
        // A non-adaptive policy refuses to adapt.
        let mut policy = FleetChaffPolicy::uniform(FleetChaffStrategy::Im, 1);
        assert!(matches!(
            policy.adapt(&[0.5]),
            Err(SimError::InvalidConfig { .. })
        ));
        // An adaptive policy built for the wrong fleet size is rejected
        // by the driver before any run.
        let c = chain(17);
        let wrong = FleetChaffPolicy::adaptive(FleetChaffStrategy::Im, 4, 4);
        assert!(FleetSimulation::new(&c, FleetConfig::new(6, 5))
            .run_chaffed(&wrong)
            .is_err());
    }

    #[test]
    fn adaptive_policy_runs_and_keeps_user_trajectories_fixed() {
        // Re-weighting budgets between epochs must never perturb the
        // users' own trajectories: per-user and per-chaff RNG streams are
        // keyed by (seed, user[, chaff]), not by budgets.
        let c = chain(18);
        let undefended = FleetSimulation::new(&c, FleetConfig::new(8, 12).with_seed(47))
            .run_natural()
            .unwrap();
        let mut policy = FleetChaffPolicy::adaptive(FleetChaffStrategy::Im, 8, 8);
        for epoch in 0..3 {
            let outcome = FleetSimulation::new(&c, FleetConfig::new(8, 12).with_seed(47))
                .run_chaffed(&policy)
                .unwrap();
            assert_eq!(outcome.user_cells, undefended.user_cells, "epoch {epoch}");
            assert_eq!(outcome.stats.chaff_services, 8);
            // Skew the allocation and go again.
            let mut feedback = vec![0.1; 8];
            feedback[epoch] = 0.9;
            policy.adapt(&feedback).unwrap();
        }
        assert_eq!(policy.adaptive_budgets().unwrap().total(), 8);
    }

    #[test]
    fn zero_budget_policy_reproduces_the_undefended_fleet() {
        let c = chain(11);
        let natural = FleetSimulation::new(&c, FleetConfig::new(23, 14).with_seed(29))
            .run_natural()
            .unwrap();
        let policy = FleetChaffPolicy::uniform(FleetChaffStrategy::Cml, 0);
        let chaffed = FleetSimulation::new(&c, FleetConfig::new(23, 14).with_seed(29))
            .run_chaffed(&policy)
            .unwrap();
        assert_eq!(chaffed.observed, natural.observed);
        assert_eq!(chaffed.user_observed_indices, natural.user_observed_indices);
        assert_eq!(chaffed.user_cells, natural.user_cells);
        assert_eq!(chaffed.stats, natural.stats);
    }

    #[test]
    fn chaff_budget_does_not_perturb_user_trajectories() {
        let c = chain(12);
        let undefended = FleetSimulation::new(&c, FleetConfig::new(9, 11).with_seed(31))
            .run_natural()
            .unwrap();
        for budget in [1, 3] {
            let policy = FleetChaffPolicy::uniform(FleetChaffStrategy::Im, budget);
            let chaffed = FleetSimulation::new(&c, FleetConfig::new(9, 11).with_seed(31))
                .run_chaffed(&policy)
                .unwrap();
            assert_eq!(chaffed.user_cells, undefended.user_cells, "B = {budget}");
        }
    }

    #[test]
    fn chaffed_results_are_identical_across_shard_counts() {
        let r = registry(13, 3);
        let policy = FleetChaffPolicy::proportional(FleetChaffStrategy::Im, 11);
        let run = |shards: usize| {
            FleetSimulation::with_registry(
                &r,
                FleetConfig::new(10, 7).with_seed(37).with_shards(shards),
            )
            .run_chaffed(&policy)
            .unwrap()
        };
        let reference = run(1);
        for shards in [2, 5, 10, 32] {
            let outcome = run(shards);
            assert_eq!(outcome.observed, reference.observed, "shards = {shards}");
            assert_eq!(
                outcome.user_observed_indices, reference.user_observed_indices,
                "shards = {shards}"
            );
        }
    }

    #[test]
    fn heterogeneous_users_follow_their_class_chains() {
        // A 2-class registry where class 1 is the (deterministic-ish)
        // temporally skewed walk: check users use distinct chains by
        // verifying per-class log-likelihood dominance on average.
        let r = registry(14, 2);
        let outcome = FleetSimulation::with_registry(
            &r,
            FleetConfig::new(40, 30)
                .with_seed(41)
                .without_anonymization(),
        )
        .run_natural()
        .unwrap();
        let mut own = 0.0;
        let mut other = 0.0;
        for u in 0..outcome.user_cells.num_trajectories() {
            let cells = outcome.user_cells.trajectory(u);
            let class = r.class_of(u);
            own += r.chain(class).log_likelihood(&cells);
            other += r.chain(1 - class).log_likelihood(&cells);
        }
        assert!(
            own > other,
            "users should be better explained by their own class ({own} vs {other})"
        );
    }

    #[test]
    fn chaff_streams_are_distinct_across_lanes() {
        let c = chain(15);
        let policy = FleetChaffPolicy::uniform(FleetChaffStrategy::Im, 2);
        let outcome = FleetSimulation::new(
            &c,
            FleetConfig::new(4, 25)
                .with_seed(43)
                .without_anonymization(),
        )
        .run_chaffed(&policy)
        .unwrap();
        // IM chaffs draw independently: the two lanes of a user must not
        // be identical (overwhelmingly unlikely over 25 slots).
        for u in 0..4 {
            assert_ne!(
                outcome.observed.trajectory(u * 3 + 1),
                outcome.observed.trajectory(u * 3 + 2),
                "user {u} chaff lanes collide"
            );
        }
    }
}

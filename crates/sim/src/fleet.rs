//! The fleet engine: sharded multi-user simulation over one shared MEC
//! world.
//!
//! Sec. II-A of the paper observes that in a real deployment every
//! coexisting user (and their chaffs) adds natural protection, making
//! single-user results lower bounds. [`FleetSimulation`] makes that
//! regime the first-class workload: `N` independent users — each with
//! their own mobility draw and optionally their own chaff controllers —
//! move through one MEC network with shared per-node capacity, and the
//! eavesdropper observes the union of all service trajectories under one
//! global anonymization shuffle.
//!
//! # Execution plan
//!
//! 1. **Generate (parallel).** Users are split into contiguous shards;
//!    each shard thread simulates its users slot by slot (always-follow
//!    placement, per-user chaff controllers) into its own arena of a
//!    [`ShardedObservationLog`]. Every user draws from an RNG seeded by
//!    SplitMix64 over `(fleet seed, user index)`, so results are
//!    bit-identical for every shard count.
//! 2. **Capacity replay (sequential, only when a capacity is set).** The
//!    planned placements are replayed through one shared [`MecNetwork`]
//!    in global service order, spilling to the nearest free node exactly
//!    like the single-user simulator.
//! 3. **Anonymize.** One Fisher–Yates permutation across all
//!    `N · (1 + chaffs)` services, driven by the fleet seed.
//!
//! The outcome pairs with the batched detection core
//! (`chaff_core::detector::BatchPrefixDetector`) for fleet-scale
//! evaluation.

use crate::network::MecNetwork;
use crate::observer::ShardedObservationLog;
use crate::{Result, SimError};
use chaff_core::strategy::OnlineChaffController;
use chaff_markov::{CellId, MarkovChain, Trajectory};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Fleet configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FleetConfig {
    /// Number of independent users `N`.
    pub num_users: usize,
    /// Chaff services launched per user (0 = natural protection only).
    pub chaffs_per_user: usize,
    /// Number of slots to simulate.
    pub horizon: usize,
    /// Optional uniform per-MEC service capacity, shared by the whole
    /// fleet.
    pub node_capacity: Option<usize>,
    /// Whether to shuffle service order in the observation log.
    pub anonymize: bool,
    /// Master seed: drives every user's RNG and the anonymization
    /// shuffle.
    pub seed: u64,
    /// Number of generation shards; `None` sizes from available
    /// parallelism. Results never depend on this.
    pub shards: Option<usize>,
}

impl FleetConfig {
    /// Creates a fleet of `num_users` users over `horizon` slots with no
    /// chaffs, no capacity limit, anonymization on and seed 0.
    pub fn new(num_users: usize, horizon: usize) -> Self {
        FleetConfig {
            num_users,
            chaffs_per_user: 0,
            horizon,
            node_capacity: None,
            anonymize: true,
            seed: 0,
            shards: None,
        }
    }

    /// Sets the number of chaffs per user.
    pub fn with_chaffs(mut self, chaffs_per_user: usize) -> Self {
        self.chaffs_per_user = chaffs_per_user;
        self
    }

    /// Sets the shared per-node capacity.
    pub fn with_capacity(mut self, capacity: usize) -> Self {
        self.node_capacity = Some(capacity);
        self
    }

    /// Sets the master seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Pins the generation shard count (results are identical for every
    /// value; this only controls parallelism).
    pub fn with_shards(mut self, shards: usize) -> Self {
        self.shards = Some(shards.max(1));
        self
    }

    /// Disables observation-log shuffling.
    pub fn without_anonymization(mut self) -> Self {
        self.anonymize = false;
        self
    }

    /// Services per user (the real one plus its chaffs).
    pub fn services_per_user(&self) -> usize {
        1 + self.chaffs_per_user
    }

    /// Total services across the fleet.
    pub fn num_services(&self) -> usize {
        self.num_users * self.services_per_user()
    }

    fn validate(&self) -> Result<()> {
        if self.num_users == 0 {
            return Err(SimError::InvalidConfig {
                parameter: "num_users",
                reason: "must be positive".into(),
            });
        }
        if self.horizon == 0 {
            return Err(SimError::InvalidConfig {
                parameter: "horizon",
                reason: "must be positive".into(),
            });
        }
        Ok(())
    }

    fn effective_shards(&self) -> usize {
        let requested = self.shards.unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1)
        });
        requested.clamp(1, self.num_users.max(1))
    }
}

/// Aggregate fleet counters (per-service ledgers would dwarf the
/// trajectories at fleet scale).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FleetStats {
    /// Total service migrations (cell changes) across the fleet.
    pub migrations: usize,
    /// Placements diverted by capacity spills.
    pub spills: usize,
    /// Simulated user-slots (`num_users × horizon`), the throughput
    /// denominator.
    pub user_slots: usize,
}

/// Everything a fleet run produces.
#[derive(Debug, Clone)]
pub struct FleetOutcome {
    /// The eavesdropper's view: one trajectory per service (all users'
    /// real services and chaffs together), shuffled when anonymization is
    /// on.
    pub observed: Vec<Trajectory>,
    /// Ground truth: `user_observed_indices[u]` is the index of user
    /// `u`'s real service inside [`observed`](FleetOutcome::observed).
    pub user_observed_indices: Vec<usize>,
    /// Each user's physical cell per slot.
    pub user_cells: Vec<Trajectory>,
    /// Aggregate counters.
    pub stats: FleetStats,
}

/// A configured fleet simulation over one mobility model.
///
/// # Example
///
/// ```
/// use chaff_core::detector::{BatchPrefixDetector, Detector};
/// use chaff_markov::{models::ModelKind, MarkovChain};
/// use chaff_sim::fleet::{FleetConfig, FleetSimulation};
/// use rand::{rngs::StdRng, SeedableRng};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut rng = StdRng::seed_from_u64(1);
/// let chain = MarkovChain::new(ModelKind::NonSkewed.build(10, &mut rng)?)?;
/// let outcome = FleetSimulation::new(&chain, FleetConfig::new(200, 30).with_seed(7))
///     .run_natural()?;
/// assert_eq!(outcome.observed.len(), 200);
/// let detections = BatchPrefixDetector::new().detect_prefixes(&chain, &outcome.observed)?;
/// assert_eq!(detections.len(), 30);
/// # Ok(())
/// # }
/// ```
pub struct FleetSimulation<'a> {
    chain: &'a MarkovChain,
    config: FleetConfig,
}

/// One user's simulated block: its physical trajectory plus the planned
/// trajectory of each of its services (real service first).
#[derive(Debug, Clone, Default)]
struct UserBlock {
    user_cells: Trajectory,
    services: Vec<Trajectory>,
}

impl<'a> FleetSimulation<'a> {
    /// Creates a fleet simulation with always-follow placement.
    pub fn new(chain: &'a MarkovChain, config: FleetConfig) -> Self {
        FleetSimulation { chain, config }
    }

    /// Runs a fleet with no chaff services: every user's protection comes
    /// from the other users (the paper's natural-chaff observation).
    ///
    /// # Errors
    ///
    /// Propagates configuration and capacity errors; rejects a config
    /// with `chaffs_per_user > 0` (those need
    /// [`run_online`](FleetSimulation::run_online)).
    pub fn run_natural(self) -> Result<FleetOutcome> {
        if self.config.chaffs_per_user != 0 {
            return Err(SimError::InvalidConfig {
                parameter: "chaffs_per_user",
                reason: "run_natural simulates chaff-free fleets; use run_online".into(),
            });
        }
        self.run_online(|_, _| -> Box<dyn OnlineChaffController> {
            unreachable!("no chaffs configured")
        })
    }

    /// Runs the fleet with `make_controller(user, chaff)` building the
    /// online chaff controller for chaff `chaff` of user `user`. The
    /// factory is called from worker threads (hence `Sync`) and must be
    /// deterministic in its arguments — all randomness should come from
    /// the per-slot RNG the controller receives.
    ///
    /// # Errors
    ///
    /// Propagates configuration and capacity errors.
    pub fn run_online<F>(self, make_controller: F) -> Result<FleetOutcome>
    where
        F: Fn(usize, usize) -> Box<dyn OnlineChaffController + 'a> + Sync,
    {
        self.config.validate()?;
        let blocks = self.generate(&make_controller);
        self.assemble(blocks)
    }

    /// Phase 1: per-user trajectory generation, sharded over users.
    fn generate<F>(&self, make_controller: &F) -> Vec<UserBlock>
    where
        F: Fn(usize, usize) -> Box<dyn OnlineChaffController + 'a> + Sync,
    {
        let n = self.config.num_users;
        let shards = self.config.effective_shards();
        let chunk = n.div_ceil(shards);
        let mut blocks: Vec<UserBlock> = vec![UserBlock::default(); n];
        if shards <= 1 {
            for (u, block) in blocks.iter_mut().enumerate() {
                *block = self.simulate_user(u, make_controller);
            }
        } else {
            std::thread::scope(|scope| {
                for (worker, slice) in blocks.chunks_mut(chunk).enumerate() {
                    let this = &*self;
                    scope.spawn(move || {
                        let offset = worker * chunk;
                        for (j, block) in slice.iter_mut().enumerate() {
                            *block = this.simulate_user(offset + j, make_controller);
                        }
                    });
                }
            });
        }
        blocks
    }

    /// Simulates one user: strictly causal per-slot moves with
    /// always-follow placement, mirroring `Simulation::run_online`.
    fn simulate_user<F>(&self, user: usize, make_controller: &F) -> UserBlock
    where
        F: Fn(usize, usize) -> Box<dyn OnlineChaffController + 'a> + Sync,
    {
        let horizon = self.config.horizon;
        let mut rng = StdRng::seed_from_u64(user_seed(self.config.seed, user as u64));
        let mut controllers: Vec<Box<dyn OnlineChaffController + 'a>> =
            (0..self.config.chaffs_per_user)
                .map(|c| make_controller(user, c))
                .collect();
        let mut user_cells = Trajectory::with_capacity(horizon);
        let mut services: Vec<Trajectory> = (0..self.config.services_per_user())
            .map(|_| Trajectory::with_capacity(horizon))
            .collect();
        let mut user_now: Option<CellId> = None;
        for _slot in 0..horizon {
            let cell = match user_now {
                None => self.chain.initial().sample(&mut rng),
                Some(prev) => self.chain.step(prev, &mut rng),
            };
            user_now = Some(cell);
            user_cells.push(cell);
            // Always-follow: the real service co-locates with the user.
            services[0].push(cell);
            for (chaff, controller) in services[1..].iter_mut().zip(&mut controllers) {
                chaff.push(controller.next(cell, &[], &mut rng));
            }
        }
        UserBlock {
            user_cells,
            services,
        }
    }

    /// Phases 2–3: optional shared-capacity replay, then one global
    /// anonymization shuffle.
    fn assemble(&self, blocks: Vec<UserBlock>) -> Result<FleetOutcome> {
        let per_user = self.config.services_per_user();
        let horizon = self.config.horizon;
        let mut stats = FleetStats {
            migrations: 0,
            spills: 0,
            user_slots: self.config.num_users * horizon,
        };
        let mut user_cells = Vec::with_capacity(blocks.len());
        let mut planned: Vec<Trajectory> = Vec::with_capacity(self.config.num_services());
        for block in blocks {
            user_cells.push(block.user_cells);
            planned.extend(block.services);
        }
        let log = if let Some(capacity) = self.config.node_capacity {
            self.replay_with_capacity(&planned, capacity, &mut stats)?
        } else {
            // Fast path: without capacity limits the planned placement is
            // the actual placement; count migrations per trajectory.
            for t in &planned {
                stats.migrations += t.as_slice().windows(2).filter(|w| w[0] != w[1]).count();
            }
            // The trajectories already exist, so a single arena suffices:
            // sharding only matters for concurrent fills.
            ShardedObservationLog::from_shards(vec![planned])
        };
        let (observed, user_observed_indices) = if self.config.anonymize {
            let mut rng = StdRng::seed_from_u64(shuffle_seed(self.config.seed));
            let (observed, perm) = log.into_anonymized(&mut rng);
            let indices = (0..self.config.num_users)
                .map(|u| perm[u * per_user])
                .collect();
            (observed, indices)
        } else {
            let observed = log.into_ordered();
            let indices = (0..self.config.num_users).map(|u| u * per_user).collect();
            (observed, indices)
        };
        Ok(FleetOutcome {
            observed,
            user_observed_indices,
            user_cells,
            stats,
        })
    }

    /// Sequential replay through one shared MEC network: services are
    /// visited in global index order per slot, so spills are deterministic
    /// and identical for every shard count.
    fn replay_with_capacity(
        &self,
        planned: &[Trajectory],
        capacity: usize,
        stats: &mut FleetStats,
    ) -> Result<ShardedObservationLog> {
        let horizon = self.config.horizon;
        let mut network = MecNetwork::new(self.chain.num_states(), Some(capacity))?;
        let mut log = ShardedObservationLog::new(planned.len(), self.config.effective_shards());
        let mut actual: Vec<CellId> = Vec::with_capacity(planned.len());
        let mut locations = Vec::with_capacity(planned.len());
        for slot in 0..horizon {
            locations.clear();
            for (service, plan) in planned.iter().enumerate() {
                let desired = plan.cell(slot);
                let placed = if slot == 0 {
                    let cell = network.place_nearest(desired)?;
                    actual.push(cell);
                    cell
                } else {
                    let prev = actual[service];
                    let cell = network.migrate(prev, desired)?;
                    if cell != prev {
                        stats.migrations += 1;
                    }
                    actual[service] = cell;
                    cell
                };
                if placed != desired {
                    stats.spills += 1;
                }
                locations.push(placed);
            }
            log.record_slot(&locations)?;
        }
        Ok(log)
    }
}

/// Derives user `u`'s RNG seed from the fleet seed — SplitMix64 over
/// `base ^ u`, matching the Monte Carlo seed derivation in `chaff-eval`
/// so streams never correlate across users.
pub fn user_seed(base: u64, user: u64) -> u64 {
    let mut z = base ^ user.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Seed stream for the anonymization shuffle (kept separate from user
/// streams so adding users never perturbs the permutation draw).
fn shuffle_seed(base: u64) -> u64 {
    user_seed(base, 0xF1EE_7000_0000_0001)
}

#[cfg(test)]
mod tests {
    use super::*;
    use chaff_core::strategy::{CmlController, ImController};
    use chaff_markov::models::ModelKind;

    fn chain(seed: u64) -> MarkovChain {
        let mut rng = StdRng::seed_from_u64(seed);
        MarkovChain::new(ModelKind::NonSkewed.build(10, &mut rng).unwrap()).unwrap()
    }

    #[test]
    fn natural_fleet_produces_consistent_outcome() {
        let c = chain(1);
        let outcome = FleetSimulation::new(&c, FleetConfig::new(25, 12).with_seed(5))
            .run_natural()
            .unwrap();
        assert_eq!(outcome.observed.len(), 25);
        assert_eq!(outcome.user_cells.len(), 25);
        assert_eq!(outcome.stats.user_slots, 25 * 12);
        for (u, &idx) in outcome.user_observed_indices.iter().enumerate() {
            assert_eq!(outcome.observed[idx], outcome.user_cells[u], "user {u}");
        }
    }

    #[test]
    fn results_are_identical_across_shard_counts() {
        let c = chain(2);
        let reference =
            FleetSimulation::new(&c, FleetConfig::new(17, 9).with_seed(3).with_shards(1))
                .run_natural()
                .unwrap();
        for shards in [2, 4, 17, 64] {
            let outcome =
                FleetSimulation::new(&c, FleetConfig::new(17, 9).with_seed(3).with_shards(shards))
                    .run_natural()
                    .unwrap();
            assert_eq!(outcome.observed, reference.observed, "shards = {shards}");
            assert_eq!(
                outcome.user_observed_indices, reference.user_observed_indices,
                "shards = {shards}"
            );
        }
    }

    #[test]
    fn chaff_controllers_run_per_user() {
        let c = chain(3);
        let config = FleetConfig::new(6, 10)
            .with_chaffs(2)
            .with_seed(11)
            .without_anonymization();
        let outcome = FleetSimulation::new(&c, config)
            .run_online(|_, _| Box::new(CmlController::new(&c)))
            .unwrap();
        assert_eq!(outcome.observed.len(), 6 * 3);
        // Without anonymization user u's real service sits at u * 3.
        for (u, &idx) in outcome.user_observed_indices.iter().enumerate() {
            assert_eq!(idx, u * 3);
            assert_eq!(outcome.observed[idx], outcome.user_cells[u]);
        }
        // CML is deterministic: both chaffs of a user coincide.
        for u in 0..6 {
            assert_eq!(outcome.observed[u * 3 + 1], outcome.observed[u * 3 + 2]);
        }
    }

    #[test]
    fn capacity_one_keeps_services_disjoint() {
        let c = chain(4);
        let config = FleetConfig::new(3, 8)
            .with_chaffs(1)
            .with_capacity(1)
            .with_seed(7)
            .without_anonymization();
        let outcome = FleetSimulation::new(&c, config)
            .run_online(|_, _| Box::new(ImController::new(&c)))
            .unwrap();
        for t in 0..8 {
            let mut cells: Vec<usize> =
                outcome.observed.iter().map(|x| x.cell(t).index()).collect();
            cells.sort_unstable();
            cells.dedup();
            assert_eq!(cells.len(), 6, "slot {t}");
        }
        assert!(outcome.stats.spills > 0, "co-location attempts must spill");
    }

    #[test]
    fn user_streams_are_independent_of_population_size() {
        // Growing the fleet must not change the trajectories of existing
        // users (per-user seeding, not a shared stream).
        let c = chain(5);
        let small = FleetSimulation::new(&c, FleetConfig::new(4, 10).with_seed(21))
            .run_natural()
            .unwrap();
        let large = FleetSimulation::new(&c, FleetConfig::new(9, 10).with_seed(21))
            .run_natural()
            .unwrap();
        assert_eq!(small.user_cells, large.user_cells[..4].to_vec());
    }

    #[test]
    fn invalid_configs_are_rejected() {
        let c = chain(6);
        assert!(FleetSimulation::new(&c, FleetConfig::new(0, 5))
            .run_natural()
            .is_err());
        assert!(FleetSimulation::new(&c, FleetConfig::new(5, 0))
            .run_natural()
            .is_err());
        assert!(
            FleetSimulation::new(&c, FleetConfig::new(5, 5).with_chaffs(1))
                .run_natural()
                .is_err()
        );
    }

    #[test]
    fn migrations_are_counted_on_the_fast_path() {
        let c = chain(7);
        let outcome = FleetSimulation::new(&c, FleetConfig::new(10, 20).with_seed(9))
            .run_natural()
            .unwrap();
        let expected: usize = outcome
            .user_cells
            .iter()
            .map(|t| t.as_slice().windows(2).filter(|w| w[0] != w[1]).count())
            .sum();
        assert_eq!(outcome.stats.migrations, expected);
    }
}

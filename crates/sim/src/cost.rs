//! Cost accounting: the price of privacy.
//!
//! The paper notes that "running chaff services is expensive" and that the
//! chaff budget `N − 1` models the user's willingness to pay (Secs. II-B,
//! VIII), leaving a quantitative cost-privacy study to future work. This
//! module supplies the measurement side of that study: per-service ledgers
//! of migration, communication and running costs that the evaluation
//! harness can put next to tracking accuracy.

use chaff_markov::CellId;
use serde::{Deserialize, Serialize};

/// Unit costs.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CostModel {
    /// Cost of migrating one service instance between MECs.
    pub migration: f64,
    /// Cost per slot per unit cell-index distance between a user and its
    /// (real) service when they are not co-located.
    pub communication_per_distance: f64,
    /// Cost per slot of simply running one service instance.
    pub running: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            migration: 1.0,
            communication_per_distance: 0.5,
            running: 0.1,
        }
    }
}

impl CostModel {
    /// Communication cost for one slot with the user at `user` and the
    /// real service at `service` (index distance as in the 1-D models).
    pub fn communication(&self, user: CellId, service: CellId) -> f64 {
        let d = user.index().abs_diff(service.index()) as f64;
        self.communication_per_distance * d
    }
}

/// Accumulated costs of one service instance.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct ServiceCosts {
    /// Number of migrations performed.
    pub migrations: usize,
    /// Total migration cost.
    pub migration_cost: f64,
    /// Total communication cost (real service only; chaffs serve nobody).
    pub communication_cost: f64,
    /// Total running cost.
    pub running_cost: f64,
}

impl ServiceCosts {
    /// Sum of all cost components.
    pub fn total(&self) -> f64 {
        self.migration_cost + self.communication_cost + self.running_cost
    }
}

/// Ledger for a whole simulation: index 0 is the real service, the rest
/// are chaffs.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct CostLedger {
    services: Vec<ServiceCosts>,
}

impl CostLedger {
    /// Creates a ledger for one real service plus `num_chaffs` chaffs.
    pub fn new(num_chaffs: usize) -> Self {
        CostLedger {
            services: vec![ServiceCosts::default(); num_chaffs + 1],
        }
    }

    /// Records a migration of service `index`.
    pub fn record_migration(&mut self, index: usize, model: &CostModel) {
        let s = &mut self.services[index];
        s.migrations += 1;
        s.migration_cost += model.migration;
    }

    /// Records one slot of running cost for service `index`.
    pub fn record_running(&mut self, index: usize, model: &CostModel) {
        self.services[index].running_cost += model.running;
    }

    /// Records one slot of communication cost for the real service.
    pub fn record_communication(&mut self, user: CellId, service: CellId, model: &CostModel) {
        self.services[0].communication_cost += model.communication(user, service);
    }

    /// Costs of the real service.
    pub fn real_service(&self) -> &ServiceCosts {
        &self.services[0]
    }

    /// Costs of chaff `i` (0-based).
    pub fn chaff(&self, i: usize) -> &ServiceCosts {
        &self.services[i + 1]
    }

    /// Number of chaffs tracked.
    pub fn num_chaffs(&self) -> usize {
        self.services.len() - 1
    }

    /// Total cost attributable to the chaff defense (everything except
    /// the real service's own costs).
    pub fn defense_cost(&self) -> f64 {
        self.services.iter().skip(1).map(ServiceCosts::total).sum()
    }

    /// Grand total.
    pub fn total(&self) -> f64 {
        self.services.iter().map(ServiceCosts::total).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn communication_scales_with_distance() {
        let m = CostModel::default();
        assert_eq!(m.communication(CellId::new(3), CellId::new(3)), 0.0);
        assert_eq!(m.communication(CellId::new(3), CellId::new(5)), 1.0);
        assert_eq!(m.communication(CellId::new(5), CellId::new(3)), 1.0);
    }

    #[test]
    fn ledger_attributes_costs_per_service() {
        let model = CostModel::default();
        let mut ledger = CostLedger::new(2);
        ledger.record_migration(0, &model);
        ledger.record_migration(1, &model);
        ledger.record_migration(1, &model);
        ledger.record_running(2, &model);
        ledger.record_communication(CellId::new(0), CellId::new(4), &model);
        assert_eq!(ledger.real_service().migrations, 1);
        assert_eq!(ledger.chaff(0).migrations, 2);
        assert!((ledger.chaff(1).running_cost - 0.1).abs() < 1e-12);
        assert!((ledger.real_service().communication_cost - 2.0).abs() < 1e-12);
        assert_eq!(ledger.num_chaffs(), 2);
        // Defense cost excludes the real service.
        assert!((ledger.defense_cost() - (2.0 + 0.1)).abs() < 1e-12);
        assert!((ledger.total() - (1.0 + 2.0 + 2.0 + 0.1)).abs() < 1e-12);
    }
}

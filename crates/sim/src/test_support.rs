//! Shared fleet-test fixtures.
//!
//! The fleet test batteries (`tests/fleet_properties.rs`,
//! `tests/streaming_equivalence.rs`, the unit tests in [`crate::fleet`]
//! and [`crate::streaming`]) all need the same scaffolding: a seeded
//! mobility chain, a mixed-class registry, a strategy picked from a
//! proptest tag, and a bit-for-bit outcome comparison. This module is
//! that scaffolding, written once — it is compiled into the library so
//! integration tests of this crate and downstream crates can share it,
//! but it is test tooling, not simulator API.

use crate::fleet::{FleetChaffStrategy, FleetOutcome};
use chaff_markov::{models::ModelKind, MarkovChain, MobilityRegistry};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A seeded non-skewed mobility chain over `cells` cells — the default
/// single-class fleet model.
///
/// # Panics
///
/// Panics if `cells` cannot form an ergodic model (e.g. zero).
pub fn nonskewed_chain(seed: u64, cells: usize) -> MarkovChain {
    let mut rng = StdRng::seed_from_u64(seed);
    MarkovChain::new(ModelKind::NonSkewed.build(cells, &mut rng).unwrap()).unwrap()
}

/// A seeded registry of `classes` mobility models over a shared
/// `cells`-cell space, cycling through the paper's model kinds
/// (non-skewed, spatially skewed, temporally skewed) so multi-class
/// fleets exercise genuinely different dynamics.
///
/// # Panics
///
/// Panics if the registry cannot be built (zero classes or cells).
pub fn mixed_registry(seed: u64, cells: usize, classes: usize) -> MobilityRegistry {
    let mut rng = StdRng::seed_from_u64(seed);
    let kinds = [
        ModelKind::NonSkewed,
        ModelKind::SpatiallySkewed,
        ModelKind::TemporallySkewed,
    ];
    MobilityRegistry::new(
        (0..classes)
            .map(|c| {
                MarkovChain::new(kinds[c % kinds.len()].build(cells, &mut rng).unwrap()).unwrap()
            })
            .collect(),
    )
    .unwrap()
}

/// Maps a proptest byte tag onto one of the online fleet strategies.
pub fn strategy_from(tag: u8) -> FleetChaffStrategy {
    match tag % 3 {
        0 => FleetChaffStrategy::Im,
        1 => FleetChaffStrategy::Cml,
        _ => FleetChaffStrategy::Mo,
    }
}

/// Asserts two fleet outcomes are bit-for-bit identical: observed grid,
/// user service indices, ground-truth cells and stats.
///
/// # Panics
///
/// Panics (test-style) on the first differing field.
pub fn assert_outcomes_equal(a: &FleetOutcome, b: &FleetOutcome) {
    assert_eq!(a.observed, b.observed);
    assert_eq!(a.user_observed_indices, b.user_observed_indices);
    assert_eq!(a.user_cells, b.user_cells);
    assert_eq!(a.stats, b.stats);
}

//! Checkpoint / resume bridge between the fleet engines and the
//! persistent paged store (`chaff-store`, ISSUE 8).
//!
//! Two write paths mirror the two fleet engines:
//!
//! * [`FleetOutcome::checkpoint`] — persist a finished batch run; the
//!   in-memory arenas are walked slot by slot, so the only extra
//!   allocation is one user row of scratch.
//! * [`StreamingFleetEngine::run_to_store`] — drive a fresh streaming
//!   engine to its horizon, appending every slot as it is produced. The
//!   `N × T` grid never exists in memory on this path: the writer holds
//!   at most one partial page per section, the engine one ring of
//!   recent rows.
//!
//! [`FleetOutcome::restore`] is the inverse of both: because the
//! streamed engine is bit-for-bit equal to the batch engine, a store
//! written by either path restores to the same [`FleetOutcome`].
//!
//! A run killed before `finish` leaves a footer-less file that
//! [`FleetStoreReader::open`] rejects as `StoreError::Truncated`
//! (surfaced here as [`SimError::Store`]) — resume logic can therefore
//! distinguish "checkpoint usable" from "regenerate" with one `open`.

use crate::fleet::{FleetOutcome, FleetStats};
use crate::streaming::{SlotStep, StreamingFleetEngine};
use crate::{Result, SimError};
use chaff_markov::CellId;
use chaff_store::{FleetStoreReader, FleetStoreWriter, StoreMeta, StoreStats};
use std::path::Path;

impl From<FleetStats> for StoreStats {
    fn from(s: FleetStats) -> Self {
        StoreStats {
            migrations: s.migrations,
            spills: s.spills,
            user_slots: s.user_slots,
            chaff_services: s.chaff_services,
        }
    }
}

impl From<StoreStats> for FleetStats {
    fn from(s: StoreStats) -> Self {
        FleetStats {
            migrations: s.migrations,
            spills: s.spills,
            user_slots: s.user_slots,
            chaff_services: s.chaff_services,
        }
    }
}

impl FleetOutcome {
    /// Persists this outcome as a complete store file at `path`
    /// (created or truncated).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Store`] on any store-layer failure (I/O,
    /// layout validation).
    pub fn checkpoint(&self, path: impl AsRef<Path>) -> Result<()> {
        let num_services = self.observed.num_trajectories();
        let num_users = self.user_cells.num_trajectories();
        let horizon = self.observed.horizon();
        let meta = StoreMeta {
            num_services,
            num_users,
            horizon,
            // The sharded log's boundaries are an artifact of generation
            // parallelism, erased by the anonymization shuffle; a
            // finished outcome persists the trivial single-shard table.
            shard_starts: vec![0, num_services],
            user_observed_indices: self.user_observed_indices.clone(),
        };
        let mut writer = FleetStoreWriter::create(path, meta).map_err(SimError::Store)?;
        let mut user_row = vec![CellId::new(0); num_users];
        for t in 0..horizon {
            for (u, cell) in user_row.iter_mut().enumerate() {
                *cell = self.user_cells.row(u)[t];
            }
            writer
                .append_slot(self.observed.row(t), &user_row)
                .map_err(SimError::Store)?;
        }
        writer.finish(self.stats.into()).map_err(SimError::Store)
    }

    /// Restores a fleet outcome from a store file, bit-for-bit equal to
    /// the outcome that was checkpointed (or streamed) into it.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Store`] when the file is missing, truncated,
    /// corrupt or from an unsupported format version — every mode is a
    /// typed [`chaff_store::StoreError`], never a panic.
    pub fn restore(path: impl AsRef<Path>) -> Result<FleetOutcome> {
        let mut reader = FleetStoreReader::open(path).map_err(SimError::Store)?;
        let fleet = reader.load().map_err(SimError::Store)?;
        Ok(FleetOutcome {
            observed: fleet.observed,
            user_observed_indices: fleet.user_observed_indices,
            user_cells: fleet.user_cells,
            stats: fleet.stats.into(),
        })
    }
}

impl StreamingFleetEngine<'_> {
    /// Drives a *fresh* engine to its horizon, appending every slot to a
    /// store file at `path` as it is produced, then seals the store.
    /// Returns the per-slot detection steps.
    ///
    /// Memory stays horizon-independent: the engine's ring plus at most
    /// one partial page per store section. The resulting file restores
    /// ([`FleetOutcome::restore`]) to exactly the batch engine's outcome
    /// for the same configuration and policy.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] when the engine has already
    /// run slots (the store must contain the full horizon from slot 0),
    /// [`SimError::Store`] on store-layer failures, and propagates
    /// engine errors from [`step`](StreamingFleetEngine::step).
    pub fn run_to_store(&mut self, path: impl AsRef<Path>) -> Result<Vec<SlotStep>> {
        if self.slots_run() != 0 {
            return Err(SimError::InvalidConfig {
                parameter: "slots_run",
                reason: format!(
                    "run_to_store needs a fresh engine, but {} slots have already run",
                    self.slots_run()
                ),
            });
        }
        let meta = StoreMeta {
            num_services: self.num_services(),
            num_users: self.num_users(),
            horizon: self.horizon(),
            shard_starts: vec![0, self.num_services()],
            user_observed_indices: self.user_observed_indices().to_vec(),
        };
        let mut writer = FleetStoreWriter::create(path, meta).map_err(SimError::Store)?;
        let mut steps = Vec::with_capacity(self.horizon());
        while let Some(step) = self.step()? {
            let observed = self
                .observed_row(step.slot)
                .expect("the slot just stepped is always ring-buffered");
            writer
                .append_slot(observed, self.last_user_row())
                .map_err(SimError::Store)?;
            steps.push(step);
        }
        writer
            .finish(self.stats().into())
            .map_err(SimError::Store)?;
        Ok(steps)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fleet::{FleetChaffPolicy, FleetConfig, FleetSimulation};
    use crate::test_support::{mixed_registry, strategy_from};
    use std::path::PathBuf;

    fn temp_path(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("chaff_persist_{}_{name}", std::process::id()))
    }

    fn outcome_eq(a: &FleetOutcome, b: &FleetOutcome) {
        assert_eq!(a.observed, b.observed);
        assert_eq!(a.user_observed_indices, b.user_observed_indices);
        assert_eq!(a.user_cells, b.user_cells);
        assert_eq!(a.stats, b.stats);
    }

    #[test]
    fn checkpoint_restore_round_trips_a_chaffed_fleet() {
        let registry = mixed_registry(1709, 8, 2);
        let policy = FleetChaffPolicy::uniform(strategy_from(1), 2);
        let config = FleetConfig::new(60, 9).with_seed(7).with_shards(3);
        let outcome = FleetSimulation::with_registry(&registry, config)
            .run_chaffed(&policy)
            .unwrap();
        let path = temp_path("roundtrip");
        outcome.checkpoint(&path).unwrap();
        let restored = FleetOutcome::restore(&path).unwrap();
        outcome_eq(&outcome, &restored);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn streamed_store_restores_to_the_batch_outcome() {
        let registry = mixed_registry(42, 10, 3);
        let policy = FleetChaffPolicy::uniform(strategy_from(2), 1);
        let config = FleetConfig::new(50, 11).with_seed(3);
        let batch = FleetSimulation::with_registry(&registry, config.clone())
            .run_chaffed(&policy)
            .unwrap();
        let mut engine = StreamingFleetEngine::with_registry(&registry, config, &policy).unwrap();
        let path = temp_path("streamed");
        let steps = engine.run_to_store(&path).unwrap();
        assert_eq!(steps.len(), 11);
        let restored = FleetOutcome::restore(&path).unwrap();
        outcome_eq(&batch, &restored);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn run_to_store_rejects_a_used_engine() {
        let registry = mixed_registry(5, 6, 1);
        let policy = FleetChaffPolicy::uniform(strategy_from(0), 0);
        let config = FleetConfig::new(4, 5).with_seed(1);
        let mut engine = StreamingFleetEngine::with_registry(&registry, config, &policy).unwrap();
        engine.step().unwrap();
        let err = engine.run_to_store(temp_path("used")).unwrap_err();
        assert!(matches!(err, SimError::InvalidConfig { .. }));
    }

    #[test]
    fn restoring_a_missing_or_truncated_file_is_a_typed_store_error() {
        let path = temp_path("missing");
        let err = FleetOutcome::restore(&path).unwrap_err();
        assert!(matches!(err, SimError::Store(_)));
        assert!(err.to_string().contains("fleet store"));
        // A footer-less (killed mid-write) file is rejected the same way.
        std::fs::write(&path, vec![0u8; 256]).unwrap();
        let err = FleetOutcome::restore(&path).unwrap_err();
        assert!(matches!(
            err,
            SimError::Store(chaff_store::StoreError::BadMagic { .. })
        ));
        std::fs::remove_file(&path).unwrap();
    }
}

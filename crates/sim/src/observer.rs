//! The cyber eavesdropper's observation log.
//!
//! The eavesdropper sees where every service instance runs and how it
//! migrates — it can *link* a service across slots (instances have stable
//! platform identities) but cannot tell from content which instance is
//! real (chaffs are independent instances of the same service type,
//! Sec. II-B). The log therefore exposes per-service trajectories under
//! shuffled indices, plus the ground-truth index for evaluation code only.

use chaff_markov::{CellId, Trajectory};
use rand::Rng;

/// Builder that records service locations slot by slot.
#[derive(Debug, Clone)]
pub struct ObservationLog {
    /// One trajectory per service; index 0 is the real service until
    /// shuffling.
    trajectories: Vec<Trajectory>,
}

impl ObservationLog {
    /// Creates a log for `num_services` services.
    pub fn new(num_services: usize) -> Self {
        ObservationLog {
            trajectories: vec![Trajectory::new(); num_services],
        }
    }

    /// Records the location of every service for the current slot.
    ///
    /// # Panics
    ///
    /// Panics if `locations` does not match the number of services.
    pub fn record_slot(&mut self, locations: &[CellId]) {
        assert_eq!(
            locations.len(),
            self.trajectories.len(),
            "one location per service"
        );
        for (t, &cell) in self.trajectories.iter_mut().zip(locations) {
            t.push(cell);
        }
    }

    /// Number of services tracked.
    pub fn num_services(&self) -> usize {
        self.trajectories.len()
    }

    /// Finalizes the log: shuffles service order (what the eavesdropper
    /// sees carries no ordering hint) and returns the trajectories
    /// together with the real service's post-shuffle index.
    pub fn into_anonymized<R: Rng + ?Sized>(self, rng: &mut R) -> (Vec<Trajectory>, usize) {
        let n = self.trajectories.len();
        // Fisher-Yates permutation of indices.
        let mut perm: Vec<usize> = (0..n).collect();
        for i in (1..n).rev() {
            let j = rng.random_range(0..=i);
            perm.swap(i, j);
        }
        let mut shuffled: Vec<Option<Trajectory>> = vec![None; n];
        let mut user_index = 0;
        for (original, trajectory) in self.trajectories.into_iter().enumerate() {
            let target = perm[original];
            if original == 0 {
                user_index = target;
            }
            shuffled[target] = Some(trajectory);
        }
        (
            shuffled
                .into_iter()
                .map(|t| t.expect("permutation is total"))
                .collect(),
            user_index,
        )
    }

    /// Finalizes the log without shuffling (index 0 stays the real
    /// service). Used by deterministic tests.
    pub fn into_ordered(self) -> Vec<Trajectory> {
        self.trajectories
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn records_per_service_trajectories() {
        let mut log = ObservationLog::new(2);
        log.record_slot(&[CellId::new(0), CellId::new(5)]);
        log.record_slot(&[CellId::new(1), CellId::new(5)]);
        let ts = log.into_ordered();
        assert_eq!(ts[0], Trajectory::from_indices([0, 1]));
        assert_eq!(ts[1], Trajectory::from_indices([5, 5]));
    }

    #[test]
    #[should_panic(expected = "one location per service")]
    fn slot_arity_is_checked() {
        let mut log = ObservationLog::new(2);
        log.record_slot(&[CellId::new(0)]);
    }

    #[test]
    fn anonymization_preserves_the_multiset_and_tracks_the_user() {
        let mut log = ObservationLog::new(3);
        log.record_slot(&[CellId::new(0), CellId::new(1), CellId::new(2)]);
        log.record_slot(&[CellId::new(0), CellId::new(1), CellId::new(2)]);
        let original: Vec<Trajectory> = log.clone_for_test();
        let mut rng = StdRng::seed_from_u64(3);
        let (shuffled, user_index) = log.into_anonymized(&mut rng);
        assert_eq!(shuffled.len(), 3);
        // The user's trajectory is found at the reported index.
        assert_eq!(shuffled[user_index], original[0]);
        // Same multiset of trajectories.
        let mut a: Vec<String> = original.iter().map(|t| t.to_string()).collect();
        let mut b: Vec<String> = shuffled.iter().map(|t| t.to_string()).collect();
        a.sort();
        b.sort();
        assert_eq!(a, b);
    }

    #[test]
    fn shuffle_actually_permutes() {
        // Across seeds, the user must not always stay at index 0.
        let mut seen_nonzero = false;
        for seed in 0..20 {
            let mut log = ObservationLog::new(4);
            log.record_slot(&[
                CellId::new(0),
                CellId::new(1),
                CellId::new(2),
                CellId::new(3),
            ]);
            let mut rng = StdRng::seed_from_u64(seed);
            let (_, idx) = log.into_anonymized(&mut rng);
            if idx != 0 {
                seen_nonzero = true;
            }
        }
        assert!(seen_nonzero);
    }

    impl ObservationLog {
        fn clone_for_test(&self) -> Vec<Trajectory> {
            self.trajectories.clone()
        }
    }
}

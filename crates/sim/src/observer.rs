//! The cyber eavesdropper's observation log.
//!
//! The eavesdropper sees where every service instance runs and how it
//! migrates — it can *link* a service across slots (instances have stable
//! platform identities) but cannot tell from content which instance is
//! real (chaffs are independent instances of the same service type,
//! Sec. II-B). The log therefore exposes per-service trajectories under
//! shuffled indices, plus the ground-truth index for evaluation code only.
//!
//! Two implementations share those semantics:
//!
//! * [`ObservationLog`] — the single-simulation log (one user plus
//!   chaffs);
//! * [`ShardedObservationLog`] — the fleet-scale log: per-shard
//!   trajectory arenas that can be filled concurrently, with one global
//!   Fisher–Yates permutation at anonymization time so the result is
//!   identical to a flat log regardless of the shard layout.

use crate::{Result, SimError};
use chaff_markov::{CellId, Trajectory};
use rand::Rng;

/// Samples a Fisher–Yates permutation of `0..n`: `perm[original]` is the
/// post-shuffle position of `original`.
fn fisher_yates<R: Rng + ?Sized>(n: usize, rng: &mut R) -> Vec<usize> {
    let mut perm: Vec<usize> = (0..n).collect();
    for i in (1..n).rev() {
        let j = rng.random_range(0..=i);
        perm.swap(i, j);
    }
    perm
}

/// The user owning global service index `service` under the per-user
/// prefix layout `starts` (`n + 1` entries, last = total services).
/// Indices at or past the total clamp to the last user.
fn owner_of(starts: &[usize], service: usize) -> usize {
    match starts.binary_search(&service) {
        Ok(u) => u.min(starts.len().saturating_sub(2)),
        Err(pos) => pos.saturating_sub(1),
    }
}

/// Applies `perm` to `trajectories`: output slot `perm[original]` receives
/// trajectory `original`.
fn apply_permutation(trajectories: Vec<Trajectory>, perm: &[usize]) -> Vec<Trajectory> {
    let mut shuffled: Vec<Option<Trajectory>> = vec![None; trajectories.len()];
    for (original, trajectory) in trajectories.into_iter().enumerate() {
        shuffled[perm[original]] = Some(trajectory);
    }
    shuffled
        .into_iter()
        .map(|t| t.expect("permutation is total"))
        .collect()
}

/// Builder that records service locations slot by slot.
#[derive(Debug, Clone)]
pub struct ObservationLog {
    /// One trajectory per service; index 0 is the real service until
    /// shuffling.
    trajectories: Vec<Trajectory>,
}

impl ObservationLog {
    /// Creates a log for `num_services` services.
    pub fn new(num_services: usize) -> Self {
        ObservationLog {
            trajectories: vec![Trajectory::new(); num_services],
        }
    }

    /// Records the location of every service for the current slot.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::ObservationArity`] (naming the offending
    /// slot) if `locations` does not match the number of services —
    /// recoverable, so fleet-scale drivers don't take down sibling users
    /// on one malformed slot.
    pub fn record_slot(&mut self, locations: &[CellId]) -> Result<()> {
        if locations.len() != self.trajectories.len() {
            return Err(SimError::ObservationArity {
                expected: self.trajectories.len(),
                found: locations.len(),
                slot: self.trajectories.first().map_or(0, Trajectory::len),
                user: None,
            });
        }
        for (t, &cell) in self.trajectories.iter_mut().zip(locations) {
            t.push(cell);
        }
        Ok(())
    }

    /// Number of services tracked.
    pub fn num_services(&self) -> usize {
        self.trajectories.len()
    }

    /// Finalizes the log: shuffles service order (what the eavesdropper
    /// sees carries no ordering hint) and returns the trajectories
    /// together with the real service's post-shuffle index.
    pub fn into_anonymized<R: Rng + ?Sized>(self, rng: &mut R) -> (Vec<Trajectory>, usize) {
        let perm = fisher_yates(self.trajectories.len(), rng);
        let user_index = perm.first().copied().unwrap_or(0);
        (apply_permutation(self.trajectories, &perm), user_index)
    }

    /// Finalizes the log without shuffling (index 0 stays the real
    /// service). Used by deterministic tests.
    pub fn into_ordered(self) -> Vec<Trajectory> {
        self.trajectories
    }
}

/// Fleet-scale observation log: contiguous per-shard trajectory arenas.
///
/// Shards partition the global service index space into contiguous
/// ranges, so a fleet driver can hand each worker thread exclusive
/// mutable access to its own arena (via
/// [`arenas_mut`](ShardedObservationLog::arenas_mut)) and fill all of
/// them concurrently with zero synchronization. Anonymization runs a
/// *single* Fisher–Yates over one global permutation — the shard layout
/// leaves no trace in what the eavesdropper sees.
#[derive(Debug, Clone)]
pub struct ShardedObservationLog {
    /// Arena `s` holds services `starts[s]..starts[s + 1]`.
    arenas: Vec<Vec<Trajectory>>,
    starts: Vec<usize>,
    /// Optional fleet layout: `user_starts[u]..user_starts[u + 1]` are
    /// the services of user `u`. Only used to attribute errors to users.
    user_starts: Option<Vec<usize>>,
}

impl ShardedObservationLog {
    /// Creates a log for `num_services` services split into (at most)
    /// `num_shards` balanced contiguous arenas.
    pub fn new(num_services: usize, num_shards: usize) -> Self {
        let shards = num_shards.clamp(1, num_services.max(1));
        let chunk = num_services.div_ceil(shards).max(1);
        let mut arenas = Vec::new();
        let mut starts = vec![0];
        let mut lo = 0;
        while lo < num_services {
            let hi = (lo + chunk).min(num_services);
            arenas.push(vec![Trajectory::new(); hi - lo]);
            starts.push(hi);
            lo = hi;
        }
        if arenas.is_empty() {
            arenas.push(Vec::new());
            starts = vec![0, 0];
        }
        ShardedObservationLog {
            arenas,
            starts,
            user_starts: None,
        }
    }

    /// Builds the log directly from per-shard trajectory arenas (in
    /// global service order): the zero-copy path for drivers that
    /// generate whole trajectories shard by shard.
    pub fn from_shards(arenas: Vec<Vec<Trajectory>>) -> Self {
        let mut starts = Vec::with_capacity(arenas.len() + 1);
        starts.push(0);
        for arena in &arenas {
            starts.push(starts.last().expect("non-empty") + arena.len());
        }
        if arenas.is_empty() {
            return ShardedObservationLog::new(0, 1);
        }
        ShardedObservationLog {
            arenas,
            starts,
            user_starts: None,
        }
    }

    /// Attaches the fleet's per-user service layout
    /// (`user_starts[u]..user_starts[u + 1]` are user `u`'s services, the
    /// final entry being the total), so arity errors can name the
    /// offending user instead of only a global position.
    pub fn with_user_layout(mut self, user_starts: Vec<usize>) -> Self {
        self.user_starts = Some(user_starts);
        self
    }

    /// Total number of services tracked.
    pub fn num_services(&self) -> usize {
        *self.starts.last().expect("non-empty starts")
    }

    /// Number of shard arenas.
    pub fn num_shards(&self) -> usize {
        self.arenas.len()
    }

    /// The global service range `(lo, hi)` owned by shard `s`.
    ///
    /// # Panics
    ///
    /// Panics if `s >= num_shards()`.
    pub fn shard_range(&self, s: usize) -> (usize, usize) {
        (self.starts[s], self.starts[s + 1])
    }

    /// Exclusive access to every arena with its global start index —
    /// distribute these to worker threads (e.g. with
    /// `std::thread::scope`) to fill the log concurrently.
    pub fn arenas_mut(&mut self) -> Vec<(usize, &mut [Trajectory])> {
        self.starts
            .iter()
            .copied()
            .zip(self.arenas.iter_mut())
            .map(|(lo, arena)| (lo, arena.as_mut_slice()))
            .collect()
    }

    /// Records the location of every service for the current slot (the
    /// streaming fill used by capacity-constrained replay).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::ObservationArity`] if `locations` does not
    /// match the number of services, naming the offending slot and —
    /// when a user layout is attached via
    /// [`with_user_layout`](ShardedObservationLog::with_user_layout) —
    /// the user owning the first divergent service index.
    pub fn record_slot(&mut self, locations: &[CellId]) -> Result<()> {
        let expected = self.num_services();
        if locations.len() != expected {
            let divergent = locations.len().min(expected);
            return Err(SimError::ObservationArity {
                expected,
                found: locations.len(),
                slot: self.slots_recorded(),
                user: self
                    .user_starts
                    .as_deref()
                    .map(|starts| owner_of(starts, divergent)),
            });
        }
        for (arena, lo) in self.arenas.iter_mut().zip(&self.starts) {
            for (t, &cell) in arena.iter_mut().zip(&locations[*lo..]) {
                t.push(cell);
            }
        }
        Ok(())
    }

    /// Number of slots recorded so far (the length of the first
    /// non-empty arena's first trajectory; streaming fills keep all
    /// trajectories in lockstep).
    fn slots_recorded(&self) -> usize {
        self.arenas
            .iter()
            .find_map(|arena| arena.first())
            .map_or(0, Trajectory::len)
    }

    /// Finalizes the log: one global Fisher–Yates shuffle across all
    /// shards. Returns the shuffled trajectories and the permutation
    /// (`perm[original]` is the post-shuffle index of service
    /// `original`), so callers can locate every ground-truth service.
    pub fn into_anonymized<R: Rng + ?Sized>(self, rng: &mut R) -> (Vec<Trajectory>, Vec<usize>) {
        let n = self.num_services();
        let perm = fisher_yates(n, rng);
        let flat: Vec<Trajectory> = self.arenas.into_iter().flatten().collect();
        (apply_permutation(flat, &perm), perm)
    }

    /// Finalizes the log without shuffling (global service order).
    pub fn into_ordered(self) -> Vec<Trajectory> {
        self.arenas.into_iter().flatten().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn records_per_service_trajectories() {
        let mut log = ObservationLog::new(2);
        log.record_slot(&[CellId::new(0), CellId::new(5)]).unwrap();
        log.record_slot(&[CellId::new(1), CellId::new(5)]).unwrap();
        let ts = log.into_ordered();
        assert_eq!(ts[0], Trajectory::from_indices([0, 1]));
        assert_eq!(ts[1], Trajectory::from_indices([5, 5]));
    }

    #[test]
    fn slot_arity_is_a_recoverable_error() {
        let mut log = ObservationLog::new(2);
        let err = log.record_slot(&[CellId::new(0)]).unwrap_err();
        assert!(matches!(
            err,
            SimError::ObservationArity {
                expected: 2,
                found: 1,
                slot: 0,
                user: None
            }
        ));
        // The log stays usable after the rejected slot.
        log.record_slot(&[CellId::new(0), CellId::new(1)]).unwrap();
        // A later mismatch names the later slot.
        let err = log.record_slot(&[CellId::new(0)]).unwrap_err();
        assert!(matches!(err, SimError::ObservationArity { slot: 1, .. }));
        assert_eq!(log.into_ordered()[0].len(), 1);
    }

    #[test]
    fn anonymization_preserves_the_multiset_and_tracks_the_user() {
        let mut log = ObservationLog::new(3);
        log.record_slot(&[CellId::new(0), CellId::new(1), CellId::new(2)])
            .unwrap();
        log.record_slot(&[CellId::new(0), CellId::new(1), CellId::new(2)])
            .unwrap();
        let original: Vec<Trajectory> = log.clone_for_test();
        let mut rng = StdRng::seed_from_u64(3);
        let (shuffled, user_index) = log.into_anonymized(&mut rng);
        assert_eq!(shuffled.len(), 3);
        // The user's trajectory is found at the reported index.
        assert_eq!(shuffled[user_index], original[0]);
        // Same multiset of trajectories.
        let mut a: Vec<String> = original.iter().map(|t| t.to_string()).collect();
        let mut b: Vec<String> = shuffled.iter().map(|t| t.to_string()).collect();
        a.sort();
        b.sort();
        assert_eq!(a, b);
    }

    #[test]
    fn shuffle_actually_permutes() {
        // Across seeds, the user must not always stay at index 0.
        let mut seen_nonzero = false;
        for seed in 0..20 {
            let mut log = ObservationLog::new(4);
            log.record_slot(&[
                CellId::new(0),
                CellId::new(1),
                CellId::new(2),
                CellId::new(3),
            ])
            .unwrap();
            let mut rng = StdRng::seed_from_u64(seed);
            let (_, idx) = log.into_anonymized(&mut rng);
            if idx != 0 {
                seen_nonzero = true;
            }
        }
        assert!(seen_nonzero);
    }

    #[test]
    fn sharded_log_partitions_services_contiguously() {
        let log = ShardedObservationLog::new(10, 3);
        assert_eq!(log.num_services(), 10);
        assert_eq!(log.num_shards(), 3);
        let mut covered = 0;
        for s in 0..log.num_shards() {
            let (lo, hi) = log.shard_range(s);
            assert_eq!(lo, covered);
            covered = hi;
        }
        assert_eq!(covered, 10);
    }

    #[test]
    fn sharded_record_slot_matches_flat_log() {
        let mut flat = ObservationLog::new(5);
        let mut sharded = ShardedObservationLog::new(5, 2);
        for t in 0..4 {
            let locations: Vec<CellId> = (0..5).map(|i| CellId::new((i + t) % 5)).collect();
            flat.record_slot(&locations).unwrap();
            sharded.record_slot(&locations).unwrap();
        }
        assert_eq!(flat.into_ordered(), sharded.into_ordered());
    }

    #[test]
    fn sharded_record_slot_rejects_wrong_arity() {
        let mut log = ShardedObservationLog::new(3, 2);
        assert!(matches!(
            log.record_slot(&[CellId::new(0)]),
            Err(SimError::ObservationArity {
                expected: 3,
                found: 1,
                slot: 0,
                user: None
            })
        ));
    }

    #[test]
    fn arity_errors_name_the_offending_user_and_slot() {
        // Fleet layout: user 0 owns services 0..3, user 1 owns 3..5.
        let mut log = ShardedObservationLog::new(5, 2).with_user_layout(vec![0, 3, 5]);
        let full: Vec<CellId> = (0..5).map(CellId::new).collect();
        log.record_slot(&full).unwrap();
        log.record_slot(&full).unwrap();
        // Slot 2, four locations: the first missing service is index 4,
        // owned by user 1.
        let err = log.record_slot(&full[..4]).unwrap_err();
        assert!(
            matches!(
                err,
                SimError::ObservationArity {
                    expected: 5,
                    found: 4,
                    slot: 2,
                    user: Some(1)
                }
            ),
            "got {err:?}"
        );
        let msg = err.to_string();
        assert!(msg.contains("slot 2"), "{msg}");
        assert!(msg.contains("user 1"), "{msg}");
        // A location missing inside user 0's range points at user 0.
        let err = log.record_slot(&full[..2]).unwrap_err();
        assert!(matches!(
            err,
            SimError::ObservationArity { user: Some(0), .. }
        ));
        // Extra locations overflow the fleet: attributed to the last user.
        let six: Vec<CellId> = (0..6).map(CellId::new).collect();
        let err = log.record_slot(&six).unwrap_err();
        assert!(matches!(
            err,
            SimError::ObservationArity {
                expected: 5,
                found: 6,
                slot: 2,
                user: Some(1)
            }
        ));
    }

    #[test]
    fn sharded_anonymization_is_one_global_shuffle() {
        // Same seed, different shard layouts -> identical anonymized view.
        let fill = |num_shards: usize| {
            let mut log = ShardedObservationLog::new(6, num_shards);
            for (lo, arena) in log.arenas_mut() {
                for (j, t) in arena.iter_mut().enumerate() {
                    *t = Trajectory::from_indices([lo + j, lo + j]);
                }
            }
            log
        };
        let mut outputs = Vec::new();
        for num_shards in [1, 2, 3, 6] {
            let mut rng = StdRng::seed_from_u64(77);
            let (shuffled, perm) = fill(num_shards).into_anonymized(&mut rng);
            // perm maps originals to their observed slots.
            for (original, &target) in perm.iter().enumerate() {
                assert_eq!(
                    shuffled[target],
                    Trajectory::from_indices([original, original])
                );
            }
            outputs.push(shuffled);
        }
        for o in &outputs[1..] {
            assert_eq!(o, &outputs[0]);
        }
    }

    #[test]
    fn from_shards_preserves_global_order() {
        let arenas = vec![
            vec![Trajectory::from_indices([0]), Trajectory::from_indices([1])],
            vec![Trajectory::from_indices([2])],
        ];
        let log = ShardedObservationLog::from_shards(arenas);
        assert_eq!(log.num_services(), 3);
        assert_eq!(log.shard_range(1), (2, 3));
        let ordered = log.into_ordered();
        for (i, t) in ordered.iter().enumerate() {
            assert_eq!(t, &Trajectory::from_indices([i]));
        }
    }

    impl ObservationLog {
        fn clone_for_test(&self) -> Vec<Trajectory> {
            self.trajectories.clone()
        }
    }
}

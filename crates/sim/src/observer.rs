//! The cyber eavesdropper's observation log.
//!
//! The eavesdropper sees where every service instance runs and how it
//! migrates — it can *link* a service across slots (instances have stable
//! platform identities) but cannot tell from content which instance is
//! real (chaffs are independent instances of the same service type,
//! Sec. II-B). The log therefore exposes per-service trajectories under
//! shuffled indices, plus the ground-truth index for evaluation code only.
//!
//! Two implementations share those semantics:
//!
//! * [`ObservationLog`] — the single-simulation log (one user plus
//!   chaffs), per-trajectory storage at paper scale;
//! * [`ShardedObservationLog`] — the fleet-scale log: **columnar**
//!   per-shard arenas. Each shard holds one contiguous slot-major
//!   [`CellGrid`] (4 bytes per cell, zero per-trajectory allocations)
//!   over its contiguous service range, with an offset table mapping
//!   shards to global service indices — `O(shards + users)` metadata on
//!   top of the cells. Worker threads fill disjoint arenas concurrently;
//!   anonymization runs a *single* Fisher–Yates over one global
//!   permutation, so the shard layout leaves no trace in what the
//!   eavesdropper sees.

use crate::{Result, SimError};
use chaff_markov::{CellGrid, CellId, Trajectory};
use rand::Rng;

/// Samples a Fisher–Yates permutation of `0..n`: `perm[original]` is the
/// post-shuffle position of `original`. Shared with [`crate::streaming`],
/// which draws the same permutation up front and scatters each slot row
/// through it as the row is generated.
pub(crate) fn fisher_yates<R: Rng + ?Sized>(n: usize, rng: &mut R) -> Vec<usize> {
    let mut perm: Vec<usize> = (0..n).collect();
    for i in (1..n).rev() {
        let j = rng.random_range(0..=i);
        perm.swap(i, j);
    }
    perm
}

/// The user owning global service index `service` under the per-user
/// prefix layout `starts` (`n + 1` entries, last = total services).
/// Indices at or past the total clamp to the last user.
fn owner_of(starts: &[usize], service: usize) -> usize {
    match starts.binary_search(&service) {
        Ok(u) => u.min(starts.len().saturating_sub(2)),
        Err(pos) => pos.saturating_sub(1),
    }
}

/// Applies `perm` to `trajectories`: output slot `perm[original]` receives
/// trajectory `original`.
fn apply_permutation(trajectories: Vec<Trajectory>, perm: &[usize]) -> Vec<Trajectory> {
    let mut shuffled = vec![Trajectory::new(); trajectories.len()];
    for (original, trajectory) in trajectories.into_iter().enumerate() {
        shuffled[perm[original]] = trajectory;
    }
    shuffled
}

/// Builder that records service locations slot by slot.
#[derive(Debug, Clone)]
pub struct ObservationLog {
    /// One trajectory per service; index 0 is the real service until
    /// shuffling.
    trajectories: Vec<Trajectory>,
}

impl ObservationLog {
    /// Creates a log for `num_services` services.
    pub fn new(num_services: usize) -> Self {
        ObservationLog {
            trajectories: vec![Trajectory::new(); num_services],
        }
    }

    /// Records the location of every service for the current slot.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::ObservationArity`] (naming the offending
    /// slot) if `locations` does not match the number of services —
    /// recoverable, so fleet-scale drivers don't take down sibling users
    /// on one malformed slot.
    pub fn record_slot(&mut self, locations: &[CellId]) -> Result<()> {
        if locations.len() != self.trajectories.len() {
            return Err(SimError::ObservationArity {
                expected: self.trajectories.len(),
                found: locations.len(),
                slot: self.trajectories.first().map_or(0, Trajectory::len),
                user: None,
            });
        }
        for (t, &cell) in self.trajectories.iter_mut().zip(locations) {
            t.push(cell);
        }
        Ok(())
    }

    /// Number of services tracked.
    pub fn num_services(&self) -> usize {
        self.trajectories.len()
    }

    /// Finalizes the log: shuffles service order (what the eavesdropper
    /// sees carries no ordering hint) and returns the trajectories
    /// together with the real service's post-shuffle index.
    pub fn into_anonymized<R: Rng + ?Sized>(self, rng: &mut R) -> (Vec<Trajectory>, usize) {
        let perm = fisher_yates(self.trajectories.len(), rng);
        let user_index = perm.first().copied().unwrap_or(0);
        (apply_permutation(self.trajectories, &perm), user_index)
    }

    /// Finalizes the log without shuffling (index 0 stays the real
    /// service). Used by deterministic tests.
    pub fn into_ordered(self) -> Vec<Trajectory> {
        self.trajectories
    }
}

/// Fleet-scale observation log: compact columnar per-shard arenas.
///
/// Shards partition the global service index space into contiguous
/// ranges; shard `s` stores its services' cells in one slot-major
/// [`CellGrid`] (`arena.row(t)[j]` is the cell of global service
/// `starts[s] + j` at slot `t`). A fleet driver hands each worker thread
/// exclusive mutable access to its own arena (via
/// [`arenas_mut`](ShardedObservationLog::arenas_mut)) and fills all of
/// them concurrently with zero synchronization and zero per-trajectory
/// allocations. Anonymization runs a *single* Fisher–Yates over one
/// global permutation — the shard layout leaves no trace in what the
/// eavesdropper sees.
///
/// Memory: `4 bytes × services × horizon` of cells
/// ([`cell_bytes`](ShardedObservationLog::cell_bytes)) plus
/// `O(shards + users)` offsets
/// ([`offset_bytes`](ShardedObservationLog::offset_bytes)).
#[derive(Debug, Clone)]
pub struct ShardedObservationLog {
    /// Arena `s` holds services `starts[s]..starts[s + 1]`, slot-major.
    arenas: Vec<CellGrid>,
    starts: Vec<usize>,
    /// Total services across all arenas (`starts` last entry, cached so
    /// no slice access needs an unwrap).
    num_services: usize,
    /// Optional fleet layout: `user_starts[u]..user_starts[u + 1]` are
    /// the services of user `u`. Only used to attribute errors to users.
    user_starts: Option<Vec<usize>>,
}

impl ShardedObservationLog {
    /// Creates a streaming log for `num_services` services split into
    /// (at most) `num_shards` balanced contiguous arenas, with no slots
    /// recorded yet (grow it with
    /// [`record_slot`](ShardedObservationLog::record_slot)).
    pub fn new(num_services: usize, num_shards: usize) -> Self {
        let shards = num_shards.clamp(1, num_services.max(1));
        let chunk = num_services.div_ceil(shards).max(1);
        let mut arenas = Vec::new();
        let mut starts = vec![0];
        let mut lo = 0;
        while lo < num_services {
            let hi = (lo + chunk).min(num_services);
            arenas.push(CellGrid::new(hi - lo));
            starts.push(hi);
            lo = hi;
        }
        if arenas.is_empty() {
            arenas.push(CellGrid::new(0));
            starts = vec![0, 0];
        }
        ShardedObservationLog {
            arenas,
            starts,
            num_services,
            user_starts: None,
        }
    }

    /// Creates a zero-filled log with explicit shard boundaries
    /// (`shard_starts[s]..shard_starts[s + 1]` is shard `s`'s service
    /// range) and a fixed horizon — the generation-side layout, where
    /// each worker scatter-fills its arena via
    /// [`arenas_mut`](ShardedObservationLog::arenas_mut).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] when `shard_starts` is not a
    /// monotone prefix table beginning at 0 with at least two entries.
    pub fn with_shard_starts(shard_starts: Vec<usize>, horizon: usize) -> Result<Self> {
        let valid = shard_starts.len() >= 2
            && shard_starts.first() == Some(&0)
            && shard_starts.windows(2).all(|w| w[0] <= w[1]);
        if !valid {
            return Err(SimError::InvalidConfig {
                parameter: "shard_starts",
                reason: "must be a monotone prefix table starting at 0".into(),
            });
        }
        let num_services = shard_starts.last().copied().unwrap_or(0);
        let arenas = shard_starts
            .windows(2)
            .map(|w| CellGrid::with_horizon(w[1] - w[0], horizon))
            .collect();
        Ok(ShardedObservationLog {
            arenas,
            starts: shard_starts,
            num_services,
            user_starts: None,
        })
    }

    /// Builds the log directly from per-shard columnar arenas (in global
    /// service order): the zero-copy path for drivers that generate
    /// whole populations shard by shard.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::ObservationArity`] when the arenas disagree
    /// on the horizon (mixed-length populations cannot be anonymized
    /// into one grid).
    pub fn from_shards(arenas: Vec<CellGrid>) -> Result<Self> {
        let horizon = arenas.first().map_or(0, CellGrid::horizon);
        let mut starts = Vec::with_capacity(arenas.len() + 1);
        let mut total = 0usize;
        starts.push(0);
        for arena in &arenas {
            if arena.horizon() != horizon {
                return Err(SimError::ObservationArity {
                    expected: horizon,
                    found: arena.horizon(),
                    slot: horizon.min(arena.horizon()),
                    user: None,
                });
            }
            total += arena.num_trajectories();
            starts.push(total);
        }
        if arenas.is_empty() {
            return Ok(ShardedObservationLog::new(0, 1));
        }
        Ok(ShardedObservationLog {
            arenas,
            starts,
            num_services: total,
            user_starts: None,
        })
    }

    /// Attaches the fleet's per-user service layout
    /// (`user_starts[u]..user_starts[u + 1]` are user `u`'s services, the
    /// final entry being the total), so arity errors can name the
    /// offending user instead of only a global position.
    pub fn with_user_layout(mut self, user_starts: Vec<usize>) -> Self {
        self.user_starts = Some(user_starts);
        self
    }

    /// Total number of services tracked.
    pub fn num_services(&self) -> usize {
        self.num_services
    }

    /// Number of shard arenas.
    pub fn num_shards(&self) -> usize {
        self.arenas.len()
    }

    /// Number of slots recorded so far (arenas always advance in
    /// lockstep).
    pub fn horizon(&self) -> usize {
        self.arenas.first().map_or(0, CellGrid::horizon)
    }

    /// The global service range `(lo, hi)` owned by shard `s`.
    ///
    /// # Panics
    ///
    /// Panics if `s >= num_shards()`.
    pub fn shard_range(&self, s: usize) -> (usize, usize) {
        (self.starts[s], self.starts[s + 1])
    }

    /// Read access to the per-shard columnar arenas, in global service
    /// order (shard `s` covers [`shard_range`](Self::shard_range)`(s)`).
    pub fn shard_grids(&self) -> &[CellGrid] {
        &self.arenas
    }

    /// Exclusive access to every arena with its global start index —
    /// distribute these to worker threads (e.g. jobs on the shared
    /// `chaff_core::pool`) to fill the log concurrently.
    pub fn arenas_mut(&mut self) -> Vec<(usize, &mut CellGrid)> {
        self.starts
            .iter()
            .copied()
            .zip(self.arenas.iter_mut())
            .collect()
    }

    /// Bytes spent on cell storage across all arenas (4 bytes per cell).
    pub fn cell_bytes(&self) -> usize {
        self.arenas.iter().map(CellGrid::cell_bytes).sum()
    }

    /// Bytes spent on offset tables (per-shard starts plus the optional
    /// per-user layout) — the `O(shards + users)` metadata overhead.
    pub fn offset_bytes(&self) -> usize {
        let entries = self.starts.len() + self.user_starts.as_ref().map_or(0, Vec::len);
        entries * std::mem::size_of::<usize>()
    }

    /// Copies every service's planned cell for `slot` into `out`
    /// (cleared first), in global service order — the read side of
    /// capacity-constrained replay.
    ///
    /// # Panics
    ///
    /// Panics if `slot >= horizon()`.
    pub fn copy_slot_into(&self, slot: usize, out: &mut Vec<CellId>) {
        out.clear();
        out.reserve(self.num_services);
        for arena in &self.arenas {
            out.extend_from_slice(arena.row(slot));
        }
    }

    /// Records the location of every service for the current slot (the
    /// streaming fill used by capacity-constrained replay).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::ObservationArity`] if `locations` does not
    /// match the number of services, naming the offending slot and —
    /// when a user layout is attached via
    /// [`with_user_layout`](ShardedObservationLog::with_user_layout) —
    /// the user owning the first divergent service index.
    pub fn record_slot(&mut self, locations: &[CellId]) -> Result<()> {
        let expected = self.num_services;
        if locations.len() != expected {
            let divergent = locations.len().min(expected);
            return Err(SimError::ObservationArity {
                expected,
                found: locations.len(),
                slot: self.horizon(),
                user: self
                    .user_starts
                    .as_deref()
                    .map(|starts| owner_of(starts, divergent)),
            });
        }
        for (arena, lo) in self.arenas.iter_mut().zip(&self.starts) {
            let width = arena.num_trajectories();
            arena.push_row(&locations[*lo..*lo + width])?;
        }
        Ok(())
    }

    /// Finalizes the log: one global Fisher–Yates shuffle across all
    /// shards, scattered into a single slot-major [`CellGrid`]. Returns
    /// the shuffled grid and the permutation (`perm[original]` is the
    /// post-shuffle index of service `original`), so callers can locate
    /// every ground-truth service.
    pub fn into_anonymized<R: Rng + ?Sized>(self, rng: &mut R) -> (CellGrid, Vec<usize>) {
        let ShardedObservationLog {
            arenas,
            starts,
            num_services,
            ..
        } = self;
        let perm = fisher_yates(num_services, rng);
        let horizon = arenas.first().map_or(0, CellGrid::horizon);
        let mut out = CellGrid::with_horizon(num_services, horizon);
        // Consume arena by arena so each shard's cells are freed right
        // after their scatter: peak memory stays at one output grid plus
        // a single shard, not two full copies of the population.
        for (arena, lo) in arenas.into_iter().zip(starts) {
            for t in 0..horizon {
                for (j, &cell) in arena.row(t).iter().enumerate() {
                    out.set(t, perm[lo + j], cell);
                }
            }
        }
        (out, perm)
    }

    /// Finalizes the log without shuffling (global service order).
    ///
    /// # Errors
    ///
    /// Every constructor keeps arena widths consistent with the offset
    /// table, so the concatenation cannot fail today; a future
    /// invariant break surfaces as the underlying arity error rather
    /// than a silently truncated grid.
    pub fn into_ordered(mut self) -> Result<CellGrid> {
        if self.arenas.len() == 1 {
            // Single arena: the shard *is* the global grid.
            return Ok(self.arenas.remove(0));
        }
        let horizon = self.horizon();
        let mut out = CellGrid::new(self.num_services);
        let mut row: Vec<CellId> = Vec::with_capacity(self.num_services);
        for t in 0..horizon {
            self.copy_slot_into(t, &mut row);
            out.push_row(&row)?;
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn records_per_service_trajectories() {
        let mut log = ObservationLog::new(2);
        log.record_slot(&[CellId::new(0), CellId::new(5)]).unwrap();
        log.record_slot(&[CellId::new(1), CellId::new(5)]).unwrap();
        let ts = log.into_ordered();
        assert_eq!(ts[0], Trajectory::from_indices([0, 1]));
        assert_eq!(ts[1], Trajectory::from_indices([5, 5]));
    }

    #[test]
    fn slot_arity_is_a_recoverable_error() {
        let mut log = ObservationLog::new(2);
        let err = log.record_slot(&[CellId::new(0)]).unwrap_err();
        assert!(matches!(
            err,
            SimError::ObservationArity {
                expected: 2,
                found: 1,
                slot: 0,
                user: None
            }
        ));
        // The log stays usable after the rejected slot.
        log.record_slot(&[CellId::new(0), CellId::new(1)]).unwrap();
        // A later mismatch names the later slot.
        let err = log.record_slot(&[CellId::new(0)]).unwrap_err();
        assert!(matches!(err, SimError::ObservationArity { slot: 1, .. }));
        assert_eq!(log.into_ordered()[0].len(), 1);
    }

    #[test]
    fn anonymization_preserves_the_multiset_and_tracks_the_user() {
        let mut log = ObservationLog::new(3);
        log.record_slot(&[CellId::new(0), CellId::new(1), CellId::new(2)])
            .unwrap();
        log.record_slot(&[CellId::new(0), CellId::new(1), CellId::new(2)])
            .unwrap();
        let original: Vec<Trajectory> = log.clone_for_test();
        let mut rng = StdRng::seed_from_u64(3);
        let (shuffled, user_index) = log.into_anonymized(&mut rng);
        assert_eq!(shuffled.len(), 3);
        // The user's trajectory is found at the reported index.
        assert_eq!(shuffled[user_index], original[0]);
        // Same multiset of trajectories.
        let mut a: Vec<String> = original.iter().map(|t| t.to_string()).collect();
        let mut b: Vec<String> = shuffled.iter().map(|t| t.to_string()).collect();
        a.sort();
        b.sort();
        assert_eq!(a, b);
    }

    #[test]
    fn shuffle_actually_permutes() {
        // Across seeds, the user must not always stay at index 0.
        let mut seen_nonzero = false;
        for seed in 0..20 {
            let mut log = ObservationLog::new(4);
            log.record_slot(&[
                CellId::new(0),
                CellId::new(1),
                CellId::new(2),
                CellId::new(3),
            ])
            .unwrap();
            let mut rng = StdRng::seed_from_u64(seed);
            let (_, idx) = log.into_anonymized(&mut rng);
            if idx != 0 {
                seen_nonzero = true;
            }
        }
        assert!(seen_nonzero);
    }

    #[test]
    fn sharded_log_partitions_services_contiguously() {
        let log = ShardedObservationLog::new(10, 3);
        assert_eq!(log.num_services(), 10);
        assert_eq!(log.num_shards(), 3);
        let mut covered = 0;
        for s in 0..log.num_shards() {
            let (lo, hi) = log.shard_range(s);
            assert_eq!(lo, covered);
            covered = hi;
        }
        assert_eq!(covered, 10);
    }

    #[test]
    fn sharded_record_slot_matches_flat_log() {
        let mut flat = ObservationLog::new(5);
        let mut sharded = ShardedObservationLog::new(5, 2);
        for t in 0..4 {
            let locations: Vec<CellId> = (0..5).map(|i| CellId::new((i + t) % 5)).collect();
            flat.record_slot(&locations).unwrap();
            sharded.record_slot(&locations).unwrap();
        }
        assert_eq!(
            flat.into_ordered(),
            sharded.into_ordered().unwrap().to_trajectories()
        );
    }

    #[test]
    fn sharded_record_slot_rejects_wrong_arity() {
        let mut log = ShardedObservationLog::new(3, 2);
        assert!(matches!(
            log.record_slot(&[CellId::new(0)]),
            Err(SimError::ObservationArity {
                expected: 3,
                found: 1,
                slot: 0,
                user: None
            })
        ));
    }

    #[test]
    fn arity_errors_name_the_offending_user_and_slot() {
        // Fleet layout: user 0 owns services 0..3, user 1 owns 3..5.
        let mut log = ShardedObservationLog::new(5, 2).with_user_layout(vec![0, 3, 5]);
        let full: Vec<CellId> = (0..5).map(CellId::new).collect();
        log.record_slot(&full).unwrap();
        log.record_slot(&full).unwrap();
        // Slot 2, four locations: the first missing service is index 4,
        // owned by user 1.
        let err = log.record_slot(&full[..4]).unwrap_err();
        assert!(
            matches!(
                err,
                SimError::ObservationArity {
                    expected: 5,
                    found: 4,
                    slot: 2,
                    user: Some(1)
                }
            ),
            "got {err:?}"
        );
        let msg = err.to_string();
        assert!(msg.contains("slot 2"), "{msg}");
        assert!(msg.contains("user 1"), "{msg}");
        // A location missing inside user 0's range points at user 0.
        let err = log.record_slot(&full[..2]).unwrap_err();
        assert!(matches!(
            err,
            SimError::ObservationArity { user: Some(0), .. }
        ));
        // Extra locations overflow the fleet: attributed to the last user.
        let six: Vec<CellId> = (0..6).map(CellId::new).collect();
        let err = log.record_slot(&six).unwrap_err();
        assert!(matches!(
            err,
            SimError::ObservationArity {
                expected: 5,
                found: 6,
                slot: 2,
                user: Some(1)
            }
        ));
    }

    #[test]
    fn sharded_anonymization_is_one_global_shuffle() {
        // Same seed, different shard layouts -> identical anonymized view.
        let fill = |num_shards: usize| {
            let mut log = ShardedObservationLog::new(6, num_shards);
            for t in 0..2 {
                let row: Vec<CellId> = (0..6).map(CellId::new).collect();
                let _ = t;
                log.record_slot(&row).unwrap();
            }
            // Overwrite via arenas so each service's cells encode its
            // global index.
            for (lo, arena) in log.arenas_mut() {
                let width = arena.num_trajectories();
                for t in 0..2 {
                    for j in 0..width {
                        arena.set(t, j, CellId::new(lo + j));
                    }
                }
            }
            log
        };
        let mut outputs = Vec::new();
        for num_shards in [1, 2, 3, 6] {
            let mut rng = StdRng::seed_from_u64(77);
            let (shuffled, perm) = fill(num_shards).into_anonymized(&mut rng);
            // perm maps originals to their observed slots.
            for (original, &target) in perm.iter().enumerate() {
                assert_eq!(
                    shuffled.trajectory(target),
                    Trajectory::from_indices([original, original])
                );
            }
            outputs.push(shuffled);
        }
        for o in &outputs[1..] {
            assert_eq!(o, &outputs[0]);
        }
    }

    #[test]
    fn from_shards_preserves_global_order() {
        let arenas = vec![
            CellGrid::from_trajectories(&[
                Trajectory::from_indices([0]),
                Trajectory::from_indices([1]),
            ])
            .unwrap(),
            CellGrid::from_trajectories(&[Trajectory::from_indices([2])]).unwrap(),
        ];
        let log = ShardedObservationLog::from_shards(arenas).unwrap();
        assert_eq!(log.num_services(), 3);
        assert_eq!(log.shard_range(1), (2, 3));
        let ordered = log.into_ordered().unwrap();
        for (i, t) in ordered.to_trajectories().iter().enumerate() {
            assert_eq!(t, &Trajectory::from_indices([i]));
        }
    }

    #[test]
    fn from_shards_rejects_mismatched_horizons() {
        let arenas = vec![
            CellGrid::from_trajectories(&[Trajectory::from_indices([0, 1])]).unwrap(),
            CellGrid::from_trajectories(&[Trajectory::from_indices([2])]).unwrap(),
        ];
        assert!(matches!(
            ShardedObservationLog::from_shards(arenas),
            Err(SimError::ObservationArity { .. })
        ));
    }

    #[test]
    fn memory_footprint_is_four_bytes_per_cell_plus_offsets() {
        let mut log = ShardedObservationLog::with_shard_starts(vec![0, 40, 100], 12).unwrap();
        assert_eq!(log.cell_bytes(), 100 * 12 * 4);
        // Offsets: 3 shard starts, no user layout yet.
        assert_eq!(log.offset_bytes(), 3 * std::mem::size_of::<usize>());
        log = log.with_user_layout((0..=50).map(|u| u * 2).collect());
        assert_eq!(log.offset_bytes(), (3 + 51) * std::mem::size_of::<usize>());
    }

    #[test]
    fn with_shard_starts_rejects_malformed_tables() {
        assert!(ShardedObservationLog::with_shard_starts(vec![], 4).is_err());
        assert!(ShardedObservationLog::with_shard_starts(vec![0], 4).is_err());
        assert!(ShardedObservationLog::with_shard_starts(vec![1, 2], 4).is_err());
        assert!(ShardedObservationLog::with_shard_starts(vec![0, 3, 2], 4).is_err());
        assert!(ShardedObservationLog::with_shard_starts(vec![0, 2, 2, 5], 4).is_ok());
    }

    #[test]
    fn copy_slot_into_reads_global_service_order() {
        let mut log = ShardedObservationLog::new(4, 2);
        log.record_slot(&[
            CellId::new(9),
            CellId::new(8),
            CellId::new(7),
            CellId::new(6),
        ])
        .unwrap();
        let mut row = Vec::new();
        log.copy_slot_into(0, &mut row);
        assert_eq!(
            row,
            vec![
                CellId::new(9),
                CellId::new(8),
                CellId::new(7),
                CellId::new(6)
            ]
        );
    }

    impl ObservationLog {
        fn clone_for_test(&self) -> Vec<Trajectory> {
            self.trajectories.clone()
        }
    }
}

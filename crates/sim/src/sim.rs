//! The simulation driver.
//!
//! Two modes:
//!
//! * [`Simulation::run_planned`] — sample the user's whole trajectory
//!   first, generate chaffs with any batch [`ChaffStrategy`] (this is how
//!   the offline OO/ML strategies integrate), then replay everything
//!   through the MEC machinery;
//! * [`Simulation::run_online`] — strictly causal: per-slot user moves,
//!   migration policy and [`OnlineChaffController`]s.
//!
//! Both modes produce a [`SimOutcome`] with the anonymized observation
//! log (what the eavesdropper sees), ground truth for evaluation, a cost
//! ledger, and a structured event trace.

use crate::cost::{CostLedger, CostModel};
use crate::migration::{AlwaysFollow, MigrationPolicy};
use crate::network::MecNetwork;
use crate::observer::ObservationLog;
use crate::{Result, SimError};
use chaff_core::strategy::{ChaffStrategy, OnlineChaffController};
use chaff_markov::{CellId, MarkovChain, Trajectory};
use rand::RngCore;

/// Simulation parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct SimConfig {
    /// Number of slots to simulate.
    pub horizon: usize,
    /// Number of chaff services (the paper's `N − 1`).
    pub num_chaffs: usize,
    /// Optional uniform per-MEC service capacity.
    pub node_capacity: Option<usize>,
    /// Unit costs for the ledger.
    pub cost_model: CostModel,
    /// Whether to shuffle service order in the observation log (on by
    /// default; turn off for deterministic debugging).
    pub anonymize: bool,
}

impl SimConfig {
    /// Creates a configuration with default costs, no capacity limit and
    /// anonymization on.
    pub fn new(horizon: usize, num_chaffs: usize) -> Self {
        SimConfig {
            horizon,
            num_chaffs,
            node_capacity: None,
            cost_model: CostModel::default(),
            anonymize: true,
        }
    }

    /// Sets the per-node capacity.
    pub fn with_capacity(mut self, capacity: usize) -> Self {
        self.node_capacity = Some(capacity);
        self
    }

    /// Sets the cost model.
    pub fn with_cost_model(mut self, model: CostModel) -> Self {
        self.cost_model = model;
        self
    }

    /// Disables observation-log shuffling.
    pub fn without_anonymization(mut self) -> Self {
        self.anonymize = false;
        self
    }

    fn validate(&self) -> Result<()> {
        if self.horizon == 0 {
            return Err(SimError::InvalidConfig {
                parameter: "horizon",
                reason: "must be positive".into(),
            });
        }
        Ok(())
    }
}

/// A structured record of something that happened in the MEC system.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimEvent {
    /// A service instance was launched.
    Launched {
        /// Service index (0 = real service).
        service: usize,
        /// Launch cell.
        cell: CellId,
    },
    /// A service instance migrated between MECs.
    Migrated {
        /// Service index (0 = real service).
        service: usize,
        /// Slot at which the migration happened.
        slot: usize,
        /// Origin cell.
        from: CellId,
        /// Destination cell.
        to: CellId,
    },
    /// A placement was redirected because the requested node was full.
    Spilled {
        /// Service index (0 = real service).
        service: usize,
        /// Slot at which the spill happened.
        slot: usize,
        /// The cell the service wanted.
        requested: CellId,
        /// The cell it got.
        actual: CellId,
    },
}

/// Everything a simulation run produces.
#[derive(Debug, Clone)]
pub struct SimOutcome {
    /// The eavesdropper's view: one trajectory per service, shuffled when
    /// anonymization is on.
    pub observed: Vec<Trajectory>,
    /// Index of the real service inside [`observed`](SimOutcome::observed)
    /// (ground truth, not available to the eavesdropper).
    pub user_observed_index: usize,
    /// The user's physical cell per slot.
    pub user_cells: Trajectory,
    /// The real service's cell per slot (equals `user_cells` under
    /// always-follow; lags under the lazy policy).
    pub service_cells: Trajectory,
    /// Cost accounting for the real service and every chaff.
    pub ledger: CostLedger,
    /// Structured event trace.
    pub events: Vec<SimEvent>,
}

/// A configured simulation over one mobility model.
pub struct Simulation<'a> {
    chain: &'a MarkovChain,
    config: SimConfig,
    policy: Box<dyn MigrationPolicy + 'a>,
}

impl<'a> Simulation<'a> {
    /// Creates a simulation with the paper's always-follow migration
    /// policy.
    pub fn new(chain: &'a MarkovChain, config: SimConfig) -> Self {
        Simulation {
            chain,
            config,
            policy: Box::new(AlwaysFollow),
        }
    }

    /// Replaces the migration policy (e.g. with
    /// [`LazyThreshold`](crate::migration::LazyThreshold)).
    pub fn with_policy(mut self, policy: impl MigrationPolicy + 'a) -> Self {
        self.policy = Box::new(policy);
        self
    }

    /// Planned mode: the user's trajectory is sampled up front and chaffs
    /// come from a batch strategy (required for the offline OO and ML
    /// strategies; equivalent for online ones).
    ///
    /// # Errors
    ///
    /// Propagates configuration, strategy and capacity errors.
    pub fn run_planned(
        mut self,
        strategy: &dyn ChaffStrategy,
        rng: &mut dyn RngCore,
    ) -> Result<SimOutcome> {
        self.config.validate()?;
        let user_cells = self.chain.sample_trajectory(self.config.horizon, rng);
        let service_cells = self.apply_policy(&user_cells);
        let chaffs = strategy.generate(self.chain, &service_cells, self.config.num_chaffs, rng)?;
        self.assemble(user_cells, service_cells, chaffs, rng)
    }

    /// Online mode: strictly causal per-slot simulation with one
    /// controller per chaff. `make_controller(i)` builds the controller
    /// for chaff `i`.
    ///
    /// # Errors
    ///
    /// Propagates configuration and capacity errors.
    pub fn run_online<F>(
        mut self,
        mut make_controller: F,
        rng: &mut dyn RngCore,
    ) -> Result<SimOutcome>
    where
        F: FnMut(usize) -> Box<dyn OnlineChaffController + 'a>,
    {
        self.config.validate()?;
        let mut controllers: Vec<Box<dyn OnlineChaffController + 'a>> = (0..self.config.num_chaffs)
            .map(&mut make_controller)
            .collect();
        let mut user_cells = Trajectory::with_capacity(self.config.horizon);
        let mut service_cells = Trajectory::with_capacity(self.config.horizon);
        let mut chaffs: Vec<Trajectory> = (0..self.config.num_chaffs)
            .map(|_| Trajectory::with_capacity(self.config.horizon))
            .collect();
        let mut user_now: Option<CellId> = None;
        for _slot in 0..self.config.horizon {
            let cell = match user_now {
                None => self.chain.initial().sample(rng),
                Some(prev) => self.chain.step(prev, rng),
            };
            user_now = Some(cell);
            user_cells.push(cell);
            let service_prev = service_cells.last().unwrap_or(cell);
            // The controllers observe the *service* trajectory — that is
            // what the eavesdropper will compare against.
            let observed_cell = self.policy.place(service_prev, cell);
            service_cells.push(observed_cell);
            for (chaff, controller) in chaffs.iter_mut().zip(&mut controllers) {
                chaff.push(controller.next(observed_cell, &[], rng));
            }
        }
        self.assemble(user_cells, service_cells, chaffs, rng)
    }

    fn apply_policy(&mut self, user_cells: &Trajectory) -> Trajectory {
        let mut service = Trajectory::with_capacity(user_cells.len());
        for cell in user_cells.iter() {
            let prev = service.last().unwrap_or(cell);
            service.push(self.policy.place(prev, cell));
        }
        service
    }

    /// Replays planned trajectories through the MEC network (capacity,
    /// costs, events) and builds the outcome.
    fn assemble(
        &self,
        user_cells: Trajectory,
        service_cells: Trajectory,
        chaff_plans: Vec<Trajectory>,
        rng: &mut dyn RngCore,
    ) -> Result<SimOutcome> {
        let horizon = self.config.horizon;
        let mut network = MecNetwork::new(self.chain.num_states(), self.config.node_capacity)?;
        let mut ledger = CostLedger::new(self.config.num_chaffs);
        let mut events = Vec::new();
        let mut log = ObservationLog::new(1 + self.config.num_chaffs);
        // actual[i]: where service i really sits (spills may divert it).
        let mut actual: Vec<CellId> = Vec::with_capacity(1 + self.config.num_chaffs);
        for slot in 0..horizon {
            let mut locations = Vec::with_capacity(1 + self.config.num_chaffs);
            for service in 0..=self.config.num_chaffs {
                let desired = if service == 0 {
                    service_cells.cell(slot)
                } else {
                    chaff_plans[service - 1].cell(slot)
                };
                let placed = if slot == 0 {
                    let cell = network.place_nearest(desired)?;
                    events.push(SimEvent::Launched { service, cell });
                    actual.push(cell);
                    cell
                } else {
                    let prev = actual[service];
                    let cell = network.migrate(prev, desired)?;
                    if cell != prev {
                        events.push(SimEvent::Migrated {
                            service,
                            slot,
                            from: prev,
                            to: cell,
                        });
                        ledger.record_migration(service, &self.config.cost_model);
                    }
                    actual[service] = cell;
                    cell
                };
                if placed != desired {
                    events.push(SimEvent::Spilled {
                        service,
                        slot,
                        requested: desired,
                        actual: placed,
                    });
                }
                ledger.record_running(service, &self.config.cost_model);
                locations.push(placed);
            }
            ledger.record_communication(
                user_cells.cell(slot),
                locations[0],
                &self.config.cost_model,
            );
            log.record_slot(&locations)?;
        }
        let (observed, user_observed_index) = if self.config.anonymize {
            log.into_anonymized(rng)
        } else {
            (log.into_ordered(), 0)
        };
        Ok(SimOutcome {
            observed,
            user_observed_index,
            user_cells,
            service_cells,
            ledger,
            events,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::migration::LazyThreshold;
    use chaff_core::detector::MlDetector;
    use chaff_core::strategy::{CmlStrategy, ImStrategy, MoController, OoStrategy};
    use chaff_markov::models::ModelKind;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn chain(seed: u64) -> MarkovChain {
        let mut rng = StdRng::seed_from_u64(seed);
        MarkovChain::new(ModelKind::NonSkewed.build(10, &mut rng).unwrap()).unwrap()
    }

    #[test]
    fn planned_run_produces_consistent_outcome() {
        let c = chain(1);
        let mut rng = StdRng::seed_from_u64(2);
        let outcome = Simulation::new(&c, SimConfig::new(40, 3))
            .run_planned(&ImStrategy, &mut rng)
            .unwrap();
        assert_eq!(outcome.observed.len(), 4);
        for t in &outcome.observed {
            assert_eq!(t.len(), 40);
        }
        // Under always-follow the observed user trajectory equals the
        // physical one.
        assert_eq!(
            outcome.observed[outcome.user_observed_index],
            outcome.user_cells
        );
        assert_eq!(outcome.service_cells, outcome.user_cells);
    }

    #[test]
    fn online_run_matches_planned_for_online_strategies() {
        // CML is deterministic and online, so planned and online modes
        // must produce the same chaff trajectory for the same user moves.
        let c = chain(3);
        let mut rng_a = StdRng::seed_from_u64(7);
        let mut rng_b = StdRng::seed_from_u64(7);
        let planned = Simulation::new(&c, SimConfig::new(30, 1).without_anonymization())
            .run_planned(&CmlStrategy, &mut rng_a)
            .unwrap();
        let online = Simulation::new(&c, SimConfig::new(30, 1).without_anonymization())
            .run_online(
                |_| Box::new(chaff_core::strategy::CmlController::new(&c)),
                &mut rng_b,
            )
            .unwrap();
        // Same seed, same user sampling order -> same user trajectory.
        assert_eq!(planned.user_cells, online.user_cells);
        assert_eq!(planned.observed[1], online.observed[1]);
    }

    #[test]
    fn ledger_counts_migrations_and_running_costs() {
        let c = chain(4);
        let mut rng = StdRng::seed_from_u64(5);
        let outcome = Simulation::new(&c, SimConfig::new(25, 1).without_anonymization())
            .run_planned(&ImStrategy, &mut rng)
            .unwrap();
        // Running cost: 25 slots x 0.1 per service.
        assert!((outcome.ledger.real_service().running_cost - 2.5).abs() < 1e-9);
        // Migration count equals the number of cell changes.
        let user_moves = outcome
            .user_cells
            .as_slice()
            .windows(2)
            .filter(|w| w[0] != w[1])
            .count();
        assert_eq!(outcome.ledger.real_service().migrations, user_moves);
        // Always-follow never pays communication cost.
        assert_eq!(outcome.ledger.real_service().communication_cost, 0.0);
    }

    #[test]
    fn lazy_policy_trades_migrations_for_communication() {
        let c = chain(6);
        let mut rng_a = StdRng::seed_from_u64(8);
        let mut rng_b = StdRng::seed_from_u64(8);
        let follow = Simulation::new(&c, SimConfig::new(60, 0).without_anonymization())
            .run_planned(&ImStrategy, &mut rng_a)
            .unwrap();
        let lazy = Simulation::new(&c, SimConfig::new(60, 0).without_anonymization())
            .with_policy(LazyThreshold { threshold: 3 })
            .run_planned(&ImStrategy, &mut rng_b)
            .unwrap();
        assert!(lazy.ledger.real_service().migrations < follow.ledger.real_service().migrations);
        assert!(lazy.ledger.real_service().communication_cost > 0.0);
        // The lazy service trajectory differs from the user's.
        assert_ne!(lazy.service_cells, lazy.user_cells);
    }

    #[test]
    fn capacity_one_forces_spills() {
        // Capacity 1 per node: the chaff can never share the user's cell,
        // and any co-location attempt must spill.
        let c = chain(9);
        let mut rng = StdRng::seed_from_u64(10);
        let outcome = Simulation::new(
            &c,
            SimConfig::new(30, 2)
                .with_capacity(1)
                .without_anonymization(),
        )
        .run_planned(&ImStrategy, &mut rng)
        .unwrap();
        // No two services ever share a cell.
        for t in 0..30 {
            let mut cells: Vec<usize> = outcome
                .observed
                .iter()
                .map(|tr| tr.cell(t).index())
                .collect();
            cells.sort_unstable();
            cells.dedup();
            assert_eq!(cells.len(), 3, "slot {t}");
        }
    }

    #[test]
    fn end_to_end_detection_against_the_sim_log() {
        // The full loop: simulate, hand the anonymized log to the
        // detector, score tracking accuracy. With an OO chaff the detector
        // must not pick the user uniquely.
        let c = chain(11);
        let mut rng = StdRng::seed_from_u64(12);
        let outcome = Simulation::new(&c, SimConfig::new(50, 1))
            .run_planned(&OoStrategy, &mut rng)
            .unwrap();
        let d = MlDetector.detect(&c, &outcome.observed).unwrap();
        let chaff_index = 1 - outcome.user_observed_index;
        assert!(
            d.tie_set().contains(&chaff_index),
            "the OO chaff must win or tie the likelihood race"
        );
    }

    #[test]
    fn online_mode_with_mo_controllers() {
        let c = chain(13);
        let mut rng = StdRng::seed_from_u64(14);
        let outcome = Simulation::new(&c, SimConfig::new(40, 2).without_anonymization())
            .run_online(|_| Box::new(MoController::new(&c)), &mut rng)
            .unwrap();
        assert_eq!(outcome.observed.len(), 3);
        // MO chaffs are deterministic, so both controllers coincide.
        assert_eq!(outcome.observed[1], outcome.observed[2]);
    }

    #[test]
    fn zero_horizon_is_rejected() {
        let c = chain(15);
        let mut rng = StdRng::seed_from_u64(16);
        assert!(Simulation::new(&c, SimConfig::new(0, 1))
            .run_planned(&ImStrategy, &mut rng)
            .is_err());
    }

    #[test]
    fn event_trace_is_complete() {
        let c = chain(17);
        let mut rng = StdRng::seed_from_u64(18);
        let outcome = Simulation::new(&c, SimConfig::new(20, 1).without_anonymization())
            .run_planned(&ImStrategy, &mut rng)
            .unwrap();
        let launches = outcome
            .events
            .iter()
            .filter(|e| matches!(e, SimEvent::Launched { .. }))
            .count();
        assert_eq!(launches, 2);
        let migrations = outcome
            .events
            .iter()
            .filter(|e| matches!(e, SimEvent::Migrated { .. }))
            .count();
        let ledger_migrations: usize = outcome.ledger.real_service().migrations
            + (0..1)
                .map(|i| outcome.ledger.chaff(i).migrations)
                .sum::<usize>();
        assert_eq!(migrations, ledger_migrations);
    }
}

//! Error type for the MEC simulator.

use std::error::Error;
use std::fmt;

/// Errors produced by the MEC simulator.
#[derive(Debug)]
pub enum SimError {
    /// A configuration value was out of range.
    InvalidConfig {
        /// The offending parameter.
        parameter: &'static str,
        /// Human-readable reason.
        reason: String,
    },
    /// The initial placement could not satisfy the capacity constraints.
    NoCapacity {
        /// The cell where placement was attempted.
        cell: usize,
    },
    /// An observation-log slot did not contain one location per service.
    ObservationArity {
        /// Number of services the log tracks.
        expected: usize,
        /// Number of locations supplied for the slot.
        found: usize,
        /// The slot being recorded when the mismatch was detected.
        slot: usize,
        /// The user owning the first divergent service index, when the
        /// log knows the fleet's per-user layout (the last user when
        /// extra locations overflow the fleet).
        user: Option<usize>,
    },
    /// A fleet-wide chaff budget (or service count derived from it)
    /// overflowed `usize`: a large per-user budget times a large
    /// population must fail loudly instead of wrapping in release
    /// builds.
    BudgetOverflow {
        /// Fleet size whose total budget overflowed.
        users: usize,
    },
    /// A per-slot ingest row fed to the streaming fleet engine was
    /// unusable mid-stream: the engine names the offending user and slot
    /// and leaves its state untouched, so the stream yields a clean
    /// partial result instead of a poisoned engine.
    StreamFault {
        /// The user whose supplied cell (or missing entry) broke the
        /// slot row.
        user: usize,
        /// The slot being ingested when the fault was detected.
        slot: usize,
        /// Human-readable description of the fault.
        reason: String,
    },
    /// A fleet checkpoint could not be written or restored: an error
    /// bubbled up from the persistent paged store.
    Store(chaff_store::StoreError),
    /// An error bubbled up from the strategy/detector layer.
    Core(chaff_core::CoreError),
    /// An error bubbled up from the Markov substrate.
    Markov(chaff_markov::MarkovError),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::InvalidConfig { parameter, reason } => {
                write!(f, "invalid configuration for {parameter}: {reason}")
            }
            SimError::NoCapacity { cell } => {
                write!(f, "no MEC capacity available around cell {cell}")
            }
            SimError::ObservationArity {
                expected,
                found,
                slot,
                user,
            } => {
                write!(
                    f,
                    "observation slot {slot} has {found} locations for {expected} services"
                )?;
                if let Some(user) = user {
                    write!(f, " (first divergence in user {user}'s services)")?;
                }
                Ok(())
            }
            SimError::BudgetOverflow { users } => {
                write!(
                    f,
                    "total chaff budget overflows usize for a fleet of {users} users"
                )
            }
            SimError::StreamFault { user, slot, reason } => {
                write!(f, "stream fault at slot {slot}, user {user}: {reason}")
            }
            SimError::Store(e) => write!(f, "fleet store error: {e}"),
            SimError::Core(e) => write!(f, "strategy error: {e}"),
            SimError::Markov(e) => write!(f, "markov substrate error: {e}"),
        }
    }
}

impl Error for SimError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SimError::Store(e) => Some(e),
            SimError::Core(e) => Some(e),
            SimError::Markov(e) => Some(e),
            _ => None,
        }
    }
}

impl From<chaff_store::StoreError> for SimError {
    fn from(e: chaff_store::StoreError) -> Self {
        SimError::Store(e)
    }
}

impl From<chaff_core::CoreError> for SimError {
    fn from(e: chaff_core::CoreError) -> Self {
        SimError::Core(e)
    }
}

impl From<chaff_markov::MarkovError> for SimError {
    fn from(e: chaff_markov::MarkovError) -> Self {
        SimError::Markov(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_display() {
        let err: SimError = chaff_core::CoreError::EmptyTrajectory.into();
        assert!(err.source().is_some());
        assert!(err.to_string().contains("strategy"));
        let err = SimError::NoCapacity { cell: 4 };
        assert!(err.to_string().contains('4'));
    }
}

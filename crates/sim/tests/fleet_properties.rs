//! Property-based determinism tests for the chaffed fleet engine.
//!
//! ISSUE 3's contract: a [`FleetSimulation`] with chaff enabled must be
//! bit-for-bit identical across shard counts and across re-runs with the
//! same master seed, and a budget of `B = 0` must exactly reproduce the
//! undefended fleet results.

use chaff_sim::fleet::{
    BudgetAllocation, FleetChaffPolicy, FleetChaffStrategy, FleetConfig, FleetSimulation,
    StrategyAllocation,
};
use chaff_sim::test_support::{
    assert_outcomes_equal as outcomes_equal, mixed_registry as registry, nonskewed_chain as chain,
    strategy_from,
};
use proptest::prelude::*;

proptest! {
    #[test]
    fn chaffed_fleets_are_bit_for_bit_reproducible_across_shards_and_reruns(
        model_seed in 0u64..1_000,
        fleet_seed in 0u64..1_000,
        num_users in 2usize..16,
        horizon in 1usize..12,
        budget in 0usize..4,
        strategy_tag in 0u8..3,
        classes in 1usize..4,
        shards in 2usize..32,
    ) {
        let r = registry(model_seed, 8, classes);
        let policy = FleetChaffPolicy::uniform(strategy_from(strategy_tag), budget);
        let run = |shard_count: usize| {
            FleetSimulation::with_registry(
                &r,
                FleetConfig::new(num_users, horizon)
                    .with_seed(fleet_seed)
                    .with_shards(shard_count),
            )
            .run_chaffed(&policy)
            .unwrap()
        };
        let reference = run(1);
        // Re-run with the same seed and shard count: identical.
        outcomes_equal(&reference, &run(1));
        // Any other shard count: identical.
        outcomes_equal(&reference, &run(shards));
        outcomes_equal(&reference, &run(num_users));
    }

    #[test]
    fn zero_budget_reproduces_the_undefended_fleet_exactly(
        model_seed in 0u64..1_000,
        fleet_seed in 0u64..1_000,
        num_users in 2usize..16,
        horizon in 1usize..12,
        strategy_tag in 0u8..3,
        alloc_tag in 0u8..4,
        accuracy in 0.0f64..1.0,
    ) {
        let c = chain(model_seed, 8);
        let strategy = strategy_from(strategy_tag);
        // Every allocation shape that yields all-zero budgets must
        // collapse onto the undefended fleet — including an adaptive
        // policy that has already folded in feedback epochs, since a
        // zero total has nothing to redistribute.
        let policy = match alloc_tag % 4 {
            0 => FleetChaffPolicy::uniform(strategy, 0),
            1 => FleetChaffPolicy::proportional(strategy, 0),
            2 => FleetChaffPolicy::new(
                BudgetAllocation::PerClass(vec![0]),
                StrategyAllocation::Uniform(strategy),
            ),
            _ => {
                let mut adaptive = FleetChaffPolicy::adaptive(strategy, num_users, 0);
                let feedback = vec![accuracy; num_users];
                for _ in 0..3 {
                    prop_assert_eq!(adaptive.adapt(&feedback).unwrap(), 0);
                }
                adaptive
            }
        };
        let config = FleetConfig::new(num_users, horizon).with_seed(fleet_seed);
        let undefended = FleetSimulation::new(&c, config.clone())
            .run_natural()
            .unwrap();
        let chaffed = FleetSimulation::new(&c, config)
            .run_chaffed(&policy)
            .unwrap();
        outcomes_equal(&undefended, &chaffed);
    }

    #[test]
    fn columnar_outcome_costs_four_bytes_per_cell(
        model_seed in 0u64..1_000,
        fleet_seed in 0u64..1_000,
        num_users in 2usize..16,
        horizon in 1usize..12,
        budget in 0usize..4,
    ) {
        // ISSUE 5's memory contract: the observed fleet is one columnar
        // grid (4 bytes per cell), the ground truth one arena — no
        // per-trajectory allocation anywhere in the outcome.
        let c = chain(model_seed, 8);
        let policy = FleetChaffPolicy::uniform(FleetChaffStrategy::Im, budget);
        let outcome = FleetSimulation::new(
            &c,
            FleetConfig::new(num_users, horizon).with_seed(fleet_seed),
        )
        .run_chaffed(&policy)
        .unwrap();
        let services = num_users * (1 + budget);
        prop_assert_eq!(outcome.observed.num_trajectories(), services);
        prop_assert_eq!(outcome.observed.cell_bytes(), services * horizon * 4);
        prop_assert_eq!(outcome.user_cells.cell_bytes(), num_users * horizon * 4);
    }

    #[test]
    fn uniform_frozen_feedback_reduces_adaptive_to_proportional(
        model_seed in 0u64..1_000,
        fleet_seed in 0u64..1_000,
        num_users in 2usize..16,
        horizon in 1usize..12,
        total in 0usize..24,
        strategy_tag in 0u8..3,
        epochs in 0usize..4,
        level in 0u8..3,
    ) {
        // ISSUE 9's fixed-point contract: when the detector's feedback is
        // frozen at a uniform accuracy vector the best-response step has
        // nothing to exploit, so the adaptive allocation must stay on the
        // proportional split and the chaffed fleet must be bit-for-bit
        // the run a static proportional policy produces.
        let c = chain(model_seed, 8);
        let strategy = strategy_from(strategy_tag);
        let accuracy = match level % 3 {
            0 => 0.0,
            1 => 0.25,
            _ => 1.0,
        };
        let mut adaptive = FleetChaffPolicy::adaptive(strategy, num_users, total);
        let feedback = vec![accuracy; num_users];
        for _ in 0..epochs {
            prop_assert_eq!(adaptive.adapt(&feedback).unwrap(), 0);
        }
        let proportional = FleetChaffPolicy::proportional(strategy, total);
        for user in 0..num_users {
            prop_assert_eq!(
                adaptive.budget_of(user, 0, num_users),
                proportional.budget_of(user, 0, num_users),
            );
        }
        let config = FleetConfig::new(num_users, horizon).with_seed(fleet_seed);
        let static_run = FleetSimulation::new(&c, config.clone())
            .run_chaffed(&proportional)
            .unwrap();
        let adaptive_run = FleetSimulation::new(&c, config)
            .run_chaffed(&adaptive)
            .unwrap();
        outcomes_equal(&static_run, &adaptive_run);
    }

    #[test]
    fn proportional_budgets_always_sum_to_the_total(
        total in 0usize..40,
        num_users in 1usize..24,
    ) {
        let policy = FleetChaffPolicy::proportional(FleetChaffStrategy::Im, total);
        let sum: usize = (0..num_users)
            .map(|u| policy.budget_of(u, 0, num_users))
            .sum();
        prop_assert_eq!(sum, total);
        // Budgets differ by at most one across users (even spread).
        let budgets: Vec<usize> = (0..num_users)
            .map(|u| policy.budget_of(u, 0, num_users))
            .collect();
        let min = *budgets.iter().min().unwrap();
        let max = *budgets.iter().max().unwrap();
        prop_assert!(max - min <= 1);
    }
}

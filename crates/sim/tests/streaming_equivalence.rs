//! Streaming-vs-batch differential battery (ISSUE 6).
//!
//! The streaming fleet engine must be a pure *scheduling* change: a
//! slot-at-a-time run has to reproduce, bit for bit, the batch pipeline
//! (`FleetSimulation::run_chaffed` followed by
//! the unified `detect_prefixes` entry) — observed rows, user service
//! indices, stats and every per-slot detection — across shard counts
//! {1, 2, 7}, budgets {0, 2} and multi-class registries, on both the
//! model-drawn ([`StreamingFleetEngine::step`]) and ingested
//! ([`StreamingFleetEngine::step_ingested`]) paths. Alongside: a pinned
//! `N = 10⁴` golden checksum, the `O(width · ring_depth + N)` memory
//! bound at `N = 10⁵` with a horizon far beyond the ring, and the
//! error-path contract (typed mid-stream faults that never poison the
//! engine, truncated streams that yield clean partial prefixes).

use chaff_core::detector::BatchPrefixDetector;
use chaff_core::metrics::{mean_detection_accuracy, mean_tracking_accuracy_columnar};
use chaff_markov::{CellId, MobilityRegistry};
use chaff_sim::fleet::{FleetChaffPolicy, FleetConfig, FleetOutcome, FleetSimulation};
use chaff_sim::streaming::StreamingFleetEngine;
use chaff_sim::test_support::{mixed_registry, nonskewed_chain, strategy_from};
use chaff_sim::SimError;
use proptest::prelude::*;

/// Drives a streaming engine to completion and checks every emitted slot
/// against the batch outcome + batch detections, then the aggregate
/// state (rows, indices, stats, accuracy means).
fn assert_stream_equals_batch(
    mut engine: StreamingFleetEngine<'_>,
    batch: &FleetOutcome,
    batch_detections: &[chaff_core::detector::Detection],
    num_cells: usize,
    context: &str,
) {
    let horizon = batch_detections.len();
    let mut tracking = Vec::with_capacity(horizon);
    let mut detection_acc = Vec::with_capacity(horizon);
    while let Some(step) = engine.step().expect("streamed slot") {
        assert_eq!(
            &step.detection, &batch_detections[step.slot],
            "{context}: detection diverged at slot {}",
            step.slot
        );
        tracking.push(step.tracking_accuracy);
        detection_acc.push(step.detection_accuracy);
    }
    assert_eq!(engine.slots_run(), horizon, "{context}");
    for t in 0..horizon {
        assert_eq!(
            engine.observed_row(t).expect("ring covers the horizon"),
            batch.observed.row(t),
            "{context}: observed row diverged at slot {t}"
        );
    }
    assert_eq!(
        engine.user_observed_indices(),
        &batch.user_observed_indices[..],
        "{context}"
    );
    assert_eq!(engine.stats(), batch.stats, "{context}");
    // The per-slot accuracy curve must average to the batch metrics.
    // (Equal up to float summation order — the streamed curve divides
    // per slot, the batch metric once at the end.)
    let batch_tracking = mean_tracking_accuracy_columnar(
        &batch.observed,
        &batch.user_observed_indices,
        batch_detections,
        num_cells,
    );
    let batch_detection = mean_detection_accuracy(
        batch.observed.num_trajectories(),
        &batch.user_observed_indices,
        batch_detections,
    );
    let stream_tracking = tracking.iter().sum::<f64>() / horizon as f64;
    let stream_detection = detection_acc.iter().sum::<f64>() / horizon as f64;
    assert!(
        (stream_tracking - batch_tracking).abs() <= 1e-12,
        "{context}: tracking mean {stream_tracking} vs batch {batch_tracking}"
    );
    assert!(
        (stream_detection - batch_detection).abs() <= 1e-12,
        "{context}: detection mean {stream_detection} vs batch {batch_detection}"
    );
}

/// Runs the batch pipeline for a registry fleet: simulation + columnar
/// prefix detection.
fn batch_pipeline(
    registry: &MobilityRegistry,
    config: FleetConfig,
    policy: &FleetChaffPolicy,
    shards: usize,
) -> (FleetOutcome, Vec<chaff_core::detector::Detection>) {
    let outcome = FleetSimulation::with_registry(registry, config)
        .run_chaffed(policy)
        .expect("batch fleet");
    let detections = BatchPrefixDetector::with_shards(shards)
        .detect_prefixes(chaff_core::detector::DetectInput::new(
            registry,
            &outcome.observed,
        ))
        .expect("batch detection");
    (outcome, detections)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The tentpole contract: for every (shards, budget) combination in
    /// the acceptance matrix, over a multi-class registry, the streamed
    /// run is bit-for-bit the batch pipeline.
    #[test]
    fn streamed_fleet_is_bit_for_bit_the_batch_pipeline(
        model_seed in 0u64..1_000,
        fleet_seed in 0u64..1_000,
        num_users in 2usize..12,
        horizon in 1usize..10,
        classes in 1usize..4,
        strategy_tag in 0u8..3,
    ) {
        let registry = mixed_registry(model_seed, 8, classes);
        for shards in [1usize, 2, 7] {
            for budget in [0usize, 2] {
                let policy = FleetChaffPolicy::uniform(strategy_from(strategy_tag), budget);
                let config = FleetConfig::new(num_users, horizon)
                    .with_seed(fleet_seed)
                    .with_shards(shards);
                let (batch, detections) =
                    batch_pipeline(&registry, config.clone(), &policy, shards);
                let engine = StreamingFleetEngine::with_registry(&registry, config, &policy)
                    .expect("engine")
                    .with_ring_depth(horizon);
                assert_stream_equals_batch(
                    engine,
                    &batch,
                    &detections,
                    registry.num_states(),
                    &format!("shards = {shards}, budget = {budget}, classes = {classes}"),
                );
            }
        }
    }

    /// The ingest path reproduces the drawn path: feeding the batch
    /// run's ground-truth user cells through `step_ingested` yields the
    /// same observed fleet and detections (chaff lanes draw from their
    /// own seed streams either way).
    #[test]
    fn ingested_user_cells_reproduce_the_batch_pipeline(
        model_seed in 0u64..1_000,
        fleet_seed in 0u64..1_000,
        num_users in 2usize..10,
        horizon in 1usize..10,
        classes in 1usize..4,
        budget in 0usize..3,
    ) {
        let registry = mixed_registry(model_seed, 8, classes);
        let policy = FleetChaffPolicy::uniform(strategy_from(1), budget);
        let config = FleetConfig::new(num_users, horizon).with_seed(fleet_seed);
        let (batch, detections) = batch_pipeline(&registry, config.clone(), &policy, 2);
        let mut engine = StreamingFleetEngine::with_registry(&registry, config, &policy)
            .expect("engine")
            .with_ring_depth(horizon);
        for (t, expected) in detections.iter().enumerate() {
            let row: Vec<CellId> =
                (0..num_users).map(|u| batch.user_cells.row(u)[t]).collect();
            let step = engine.step_ingested(&row).expect("ingest").expect("within horizon");
            prop_assert_eq!(&step.detection, expected, "slot {}", t);
        }
        for t in 0..horizon {
            prop_assert_eq!(
                engine.observed_row(t).expect("ring"),
                batch.observed.row(t),
                "slot {}",
                t
            );
        }
        prop_assert_eq!(engine.stats(), batch.stats);
    }

    /// Capacity replay streams identically too: shared-network placement
    /// with spills is a per-slot sequential process in both engines.
    #[test]
    fn capacity_constrained_fleets_stream_bit_for_bit(
        model_seed in 0u64..1_000,
        fleet_seed in 0u64..1_000,
        num_users in 2usize..8,
        horizon in 1usize..8,
        budget in 0usize..3,
        capacity in 1usize..3,
    ) {
        let registry = mixed_registry(model_seed, 8, 2);
        let policy = FleetChaffPolicy::uniform(strategy_from(2), budget);
        // Capacity sized so the whole fleet always fits the network.
        let services = num_users * (1 + budget);
        let config = FleetConfig::new(num_users, horizon)
            .with_seed(fleet_seed)
            .with_capacity(capacity * services);
        let (batch, detections) = batch_pipeline(&registry, config.clone(), &policy, 2);
        let engine = StreamingFleetEngine::with_registry(&registry, config, &policy)
            .expect("engine")
            .with_ring_depth(horizon);
        assert_stream_equals_batch(
            engine,
            &batch,
            &detections,
            registry.num_states(),
            "capacity replay",
        );
    }

    /// Error-path contract: a bad row mid-stream fails typed — naming
    /// the offending user and slot — without perturbing the engine, no
    /// matter where in the stream the fault lands.
    #[test]
    fn mid_stream_faults_are_typed_and_never_poison(
        model_seed in 0u64..1_000,
        fleet_seed in 0u64..1_000,
        num_users in 2usize..8,
        horizon in 2usize..10,
        fault_slot in 0usize..10,
        bad_user in 0usize..8,
        fault_kind in 0u8..2,
    ) {
        let fault_slot = fault_slot % horizon;
        let bad_user = bad_user % num_users;
        let chain = nonskewed_chain(model_seed, 8);
        let policy = FleetChaffPolicy::uniform(strategy_from(0), 1);
        let config = FleetConfig::new(num_users, horizon).with_seed(fleet_seed);
        let mut clean = StreamingFleetEngine::new(&chain, config.clone(), &policy).expect("engine");
        let mut faulted = StreamingFleetEngine::new(&chain, config, &policy).expect("engine");
        for t in 0..horizon {
            let row: Vec<CellId> = (0..num_users)
                .map(|u| CellId::new((model_seed as usize + t * 3 + u) % 8))
                .collect();
            if t == fault_slot {
                let err = if fault_kind == 0 {
                    faulted.step_ingested(&row[..bad_user]).unwrap_err()
                } else {
                    let mut bad = row.clone();
                    bad[bad_user] = CellId::new(8 + bad_user);
                    faulted.step_ingested(&bad).unwrap_err()
                };
                match err {
                    SimError::StreamFault { user, slot, .. } => {
                        prop_assert_eq!(slot, t);
                        prop_assert_eq!(user, bad_user);
                    }
                    other => prop_assert!(false, "expected StreamFault, got {:?}", other),
                }
            }
            let a = clean.step_ingested(&row).expect("clean").expect("slot");
            let b = faulted.step_ingested(&row).expect("faulted engine unpoisoned").expect("slot");
            prop_assert_eq!(a.detection, b.detection, "slot {}", t);
            prop_assert_eq!(
                a.tracking_accuracy.to_bits(),
                b.tracking_accuracy.to_bits(),
                "slot {}",
                t
            );
        }
        prop_assert_eq!(clean.stats(), faulted.stats());
    }

    /// Truncation contract: stopping the stream after `k` slots leaves a
    /// clean partial result that is exactly the first `k` slots of the
    /// full run — detections, stats and buffered rows alike.
    #[test]
    fn truncated_streams_are_clean_prefixes_of_full_runs(
        model_seed in 0u64..1_000,
        fleet_seed in 0u64..1_000,
        num_users in 2usize..8,
        horizon in 2usize..10,
        cut in 1usize..9,
    ) {
        let cut = cut.min(horizon - 1);
        let registry = mixed_registry(model_seed, 8, 2);
        let policy = FleetChaffPolicy::uniform(strategy_from(1), 2);
        let config = FleetConfig::new(num_users, horizon).with_seed(fleet_seed);
        let mut full = StreamingFleetEngine::with_registry(&registry, config.clone(), &policy)
            .expect("engine")
            .with_ring_depth(horizon);
        let mut truncated = StreamingFleetEngine::with_registry(&registry, config, &policy)
            .expect("engine")
            .with_ring_depth(horizon);
        let mut full_steps = Vec::new();
        while let Some(step) = full.step().expect("full run") {
            full_steps.push(step);
        }
        for (t, expected) in full_steps.iter().take(cut).enumerate() {
            let step = truncated.step().expect("truncated run").expect("slot");
            prop_assert_eq!(&step.detection, &expected.detection, "slot {}", t);
        }
        // The stream "dies" here; what remains is a serviceable partial.
        prop_assert_eq!(truncated.slots_run(), cut);
        prop_assert_eq!(truncated.stats().user_slots, num_users * cut);
        for t in 0..cut {
            prop_assert_eq!(
                truncated.observed_row(t).expect("ring"),
                full.observed_row(t).expect("ring"),
                "slot {}",
                t
            );
        }
    }
}

/// FNV-1a over a detection stream: tie-set lengths and indices, slot by
/// slot — a compact, layout-independent fingerprint.
fn detection_checksum(detections: &[chaff_core::detector::Detection]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    let mut eat = |value: u64| {
        hash ^= value;
        hash = hash.wrapping_mul(0x1000_0000_01b3);
    };
    for d in detections {
        eat(d.tie_set().len() as u64);
        for &i in d.tie_set() {
            eat(i as u64);
        }
    }
    hash
}

/// The deterministic `N = 10⁴` rung: a pinned multi-class chaffed fleet
/// streams to the same detections as the batch pipeline, and the
/// detection stream's checksum is pinned so *any* behavioural drift in
/// either path — not just divergence between them — fails loudly.
#[test]
fn ten_thousand_user_golden_stream_matches_batch_and_its_pinned_checksum() {
    let registry = mixed_registry(1709, 10, 3);
    let policy = FleetChaffPolicy::uniform(strategy_from(1), 1);
    let config = FleetConfig::new(10_000, 12).with_seed(42).with_shards(7);
    let (batch, detections) = batch_pipeline(&registry, config.clone(), &policy, 7);
    let mut engine = StreamingFleetEngine::with_registry(&registry, config, &policy)
        .expect("engine")
        .with_ring_depth(12);
    let mut streamed = Vec::with_capacity(12);
    while let Some(step) = engine.step().expect("slot") {
        streamed.push(step.detection);
    }
    assert_eq!(streamed, detections);
    assert_eq!(engine.stats(), batch.stats);
    let checksum = detection_checksum(&streamed);
    assert_eq!(checksum, detection_checksum(&detections));
    assert_eq!(
        checksum, GOLDEN_CHECKSUM,
        "pinned N = 10⁴ detection stream drifted"
    );
}

/// Pinned by the first verified run of the golden test; both engines
/// must keep reproducing it bit for bit.
const GOLDEN_CHECKSUM: u64 = 10_860_112_576_840_803_285;

/// The acceptance-scale memory bound: at `N = 10⁵` with a horizon far
/// beyond the ring depth, engine state is `O(width · ring_depth + N)` —
/// constant across slots and far below the `O(N · T)` batch grid.
#[test]
fn hundred_thousand_user_stream_memory_is_horizon_independent() {
    let n = 100_000;
    let horizon = 96; // T = 12 × ring_depth: the grid would be 38.4 MB.
    let chain = nonskewed_chain(7, 10);
    let policy = FleetChaffPolicy::uniform(strategy_from(0), 0);
    let mut engine =
        StreamingFleetEngine::new(&chain, FleetConfig::new(n, horizon).with_seed(9), &policy)
            .expect("engine");
    assert_eq!(engine.ring_depth(), 8);
    // Steady state is reached once the ring is full.
    for _ in 0..engine.ring_depth() {
        engine.step().expect("slot").expect("slot");
    }
    let after_ring_full = engine.state_bytes();
    while engine.step().expect("slot").is_some() {}
    assert_eq!(engine.slots_run(), horizon);
    let after_all = engine.state_bytes();
    assert_eq!(
        after_ring_full, after_all,
        "state grew with the horizon: {after_ring_full} -> {after_all}"
    );
    // Far below the batch grid (N × T × 4 bytes), and linear in N.
    let grid_bytes = n * horizon * 4;
    assert!(
        after_all < grid_bytes / 3,
        "{after_all} vs grid {grid_bytes}"
    );
    assert!(after_all <= 128 * n, "{after_all} exceeds 128 bytes/user");
}

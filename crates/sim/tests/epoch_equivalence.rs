//! Epoch-reduction differential battery (time-varying-mobility tentpole).
//!
//! The epoch machinery must be a pure *representation* change: a
//! one-epoch schedule, and a multi-epoch schedule whose epochs all hold
//! the same chains, have to reproduce the stationary pipeline bit for
//! bit — simulated fleet outcomes, and every detection surface the
//! workspace exposes (row-major batch, columnar grid, paged store
//! stream, and the online [`StreamingPrefixDetector`]) — across shard
//! counts {1, 2, 7} and budgets {0, 2}, mirroring the
//! `streaming_equivalence` battery's acceptance matrix.

use chaff_core::detector::{
    BatchPrefixDetector, DetectInput, DetectModel, Detection, StreamingPrefixDetector,
};
use chaff_markov::{EpochSchedule, MarkovChain, MobilityRegistry, Trajectory};
use chaff_sim::fleet::{FleetChaffPolicy, FleetConfig, FleetOutcome, FleetSimulation};
use chaff_sim::test_support::{assert_outcomes_equal, mixed_registry, strategy_from};
use proptest::prelude::*;

/// The same chains under a one-epoch schedule: must be indistinguishable
/// from the stationary registry everywhere.
fn single_epoch_twin(registry: &MobilityRegistry) -> MobilityRegistry {
    let chains: Vec<MarkovChain> = (0..registry.num_classes())
        .map(|c| registry.chain(c).clone())
        .collect();
    MobilityRegistry::with_epochs(vec![chains], EpochSchedule::stationary())
        .expect("one-epoch registry")
}

/// The same chains duplicated into both epochs of a genuine day/night
/// schedule: the multi-epoch selection path runs on every slot, but the
/// selected tables never differ — still bit-for-bit stationary.
fn duplicated_epoch_twin(
    registry: &MobilityRegistry,
    day: usize,
    night: usize,
) -> MobilityRegistry {
    let chains: Vec<MarkovChain> = (0..registry.num_classes())
        .map(|c| registry.chain(c).clone())
        .collect();
    MobilityRegistry::with_epochs(
        vec![chains.clone(), chains],
        EpochSchedule::day_night(day, night).expect("day/night schedule"),
    )
    .expect("two-epoch registry")
}

/// Transposes the slot-major observed grid into row-major trajectories,
/// for the `&[Trajectory]` detection surface.
fn to_trajectories(outcome: &FleetOutcome) -> Vec<Trajectory> {
    let services = outcome.observed.num_trajectories();
    let horizon = outcome.observed.horizon();
    let mut trajectories = vec![Trajectory::new(); services];
    for t in 0..horizon {
        for (j, &cell) in outcome.observed.row(t).iter().enumerate() {
            trajectories[j].push(cell);
        }
    }
    trajectories
}

/// Runs every detection surface under a schedule registry and asserts
/// each one equals the stationary reference detections.
fn assert_schedule_detections_match(
    registry: &MobilityRegistry,
    outcome: &FleetOutcome,
    reference: &[Detection],
    shards: usize,
    context: &str,
) {
    let detector = BatchPrefixDetector::with_shards(shards);
    // Columnar (the grid the fleet pipeline hands to detection).
    let columnar = detector
        .detect_prefixes(DetectInput::new(
            DetectModel::Schedule(registry),
            &outcome.observed,
        ))
        .expect("columnar schedule detection");
    assert_eq!(columnar, reference, "{context}: columnar diverged");
    // Row-major batch over materialized trajectories.
    let trajectories = to_trajectories(outcome);
    let row_major = detector
        .detect_prefixes(DetectInput::new(
            DetectModel::Schedule(registry),
            &trajectories[..],
        ))
        .expect("row-major schedule detection");
    assert_eq!(row_major, reference, "{context}: row-major diverged");
    // Online: one push per slot through the schedule-aware streaming
    // detector.
    let mut streaming = StreamingPrefixDetector::with_schedule(
        registry.to_epoch_tables(),
        registry.schedule().clone(),
        outcome.observed.num_trajectories(),
        shards,
    )
    .expect("streaming detector");
    for (t, expected) in reference.iter().enumerate() {
        let detection = streaming
            .push_slot(outcome.observed.row(t))
            .expect("streamed slot");
        assert_eq!(&detection, expected, "{context}: streaming slot {t}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The reduction contract over the acceptance matrix: one-epoch and
    /// duplicated-epoch registries simulate and detect bit-for-bit like
    /// their stationary source, for shards {1, 2, 7} × budgets {0, 2}.
    #[test]
    fn trivial_schedules_reduce_to_stationary_across_the_matrix(
        model_seed in 0u64..1_000,
        fleet_seed in 0u64..1_000,
        num_users in 2usize..10,
        horizon in 1usize..10,
        classes in 1usize..4,
        strategy_tag in 0u8..3,
        day in 1usize..4,
        night in 1usize..4,
    ) {
        let stationary = mixed_registry(model_seed, 8, classes);
        let single = single_epoch_twin(&stationary);
        let duplicated = duplicated_epoch_twin(&stationary, day, night);
        prop_assert!(single.is_stationary());
        prop_assert!(!duplicated.is_stationary());
        for shards in [1usize, 2, 7] {
            for budget in [0usize, 2] {
                let context = format!(
                    "shards = {shards}, budget = {budget}, classes = {classes}"
                );
                let policy = FleetChaffPolicy::uniform(strategy_from(strategy_tag), budget);
                let config = FleetConfig::new(num_users, horizon)
                    .with_seed(fleet_seed)
                    .with_shards(shards);
                let batch = FleetSimulation::with_registry(&stationary, config.clone())
                    .run_chaffed(&policy)
                    .expect("stationary fleet");
                // Simulation: the epoch-selection path must not perturb
                // one seed stream.
                for twin in [&single, &duplicated] {
                    let outcome = FleetSimulation::with_registry(twin, config.clone())
                        .run_chaffed(&policy)
                        .expect("schedule fleet");
                    assert_outcomes_equal(&batch, &outcome);
                }
                // Detection: every surface, both trivial schedules.
                let reference = BatchPrefixDetector::with_shards(shards)
                    .detect_prefixes(DetectInput::new(&stationary, &batch.observed))
                    .expect("stationary detection");
                for twin in [&single, &duplicated] {
                    assert_schedule_detections_match(
                        twin,
                        &batch,
                        &reference,
                        shards,
                        &context,
                    );
                }
            }
        }
    }
}

/// The paged surface, deterministically: a checkpointed fleet streamed
/// back from disk detects identically under the stationary model, the
/// one-epoch schedule and the duplicated two-epoch schedule.
#[test]
fn paged_detection_honors_the_reduction_to_stationary() {
    let stationary = mixed_registry(1709, 10, 3);
    let single = single_epoch_twin(&stationary);
    let duplicated = duplicated_epoch_twin(&stationary, 3, 2);
    let policy = FleetChaffPolicy::uniform(strategy_from(1), 2);
    let config = FleetConfig::new(64, 12).with_seed(42).with_shards(2);
    let outcome = FleetSimulation::with_registry(&stationary, config)
        .run_chaffed(&policy)
        .expect("fleet");
    let detector = BatchPrefixDetector::with_shards(2);
    let reference = detector
        .detect_prefixes(DetectInput::new(&stationary, &outcome.observed))
        .expect("in-memory detection");
    let path = std::env::temp_dir().join(format!("epoch_equivalence_{}.store", std::process::id()));
    outcome.checkpoint(&path).expect("checkpoint");
    for twin in [&single, &duplicated] {
        let mut reader = chaff_store::FleetStoreReader::open(&path).expect("open store");
        let paged = {
            let mut stream = reader.stream_slots();
            detector
                .detect_prefixes(DetectInput::new(DetectModel::Schedule(twin), &mut stream))
                .expect("paged schedule detection")
        };
        assert_eq!(paged, reference, "paged surface diverged");
    }
    std::fs::remove_file(&path).expect("cleanup");
}

//! The vectorized per-slot detection kernels shared by the batch and
//! streaming detectors.
//!
//! One slot of fleet-scale ML detection is three phases over a shard's
//! contiguous lane block:
//!
//! 1. **gather/add** — [`LogLikelihoodTable::add_step_batch`] gathers the
//!    per-user log-likelihood increments and adds them into the running
//!    prefix scores, with the table-storage dispatch hoisted out of the
//!    loop and the loop body chunked in [`LANE_WIDTH`] `f64` lanes;
//! 2. **running max** — [`row_max`] reduces the refreshed scores to the
//!    exact row maximum with a branchless chunked compare-select (no
//!    data-dependent branches, unlike the legacy compare-per-user scan);
//! 3. **tie collection** — [`collect_ties`] re-scans the scores and emits
//!    every lane within [`LOG_LIKELIHOOD_TOLERANCE`]
//!    of the maximum, in ascending index order.
//!
//! # Why results stay bit-for-bit identical to the scalar kernels
//!
//! * Each user's accumulator receives exactly one add per slot, in slot
//!   order, regardless of chunking — per-user sums are unchanged to the
//!   last bit.
//! * The maximum of a set of non-NaN floats does not depend on the
//!   visit order, so the chunked lane reduction equals the legacy
//!   left-to-right running max. (Scores are sums of log-probs ≤ 0:
//!   no NaN and no `-0.0`/`+0.0` ambiguity can arise.)
//! * The legacy fold's retain-on-new-max bookkeeping ends in exactly
//!   the set `{ i : loglik_cmp(score_i, final_max) == Equal }` in
//!   ascending index order — which is what the two-pass collection
//!   computes directly (see [`fold`]'s docs for the argument).
//!
//! The differential batteries in `tests/columnar.rs`,
//! `tests/streaming_equivalence.rs` and `tests/kernels.rs` hold the
//! kernels to that guarantee.

use crate::{loglik_cmp, Result, LOG_LIKELIHOOD_TOLERANCE};
use chaff_markov::{CellId, LogLikelihoodTable, MarkovError};
use std::borrow::Borrow;

pub use chaff_markov::LANE_WIDTH;

use super::batch::service_index;

/// Maps substrate errors onto the detector error vocabulary: cell-range
/// and arity failures keep the variants the scalar kernels reported, so
/// callers observe identical errors from either implementation.
pub(crate) fn map_markov(e: MarkovError) -> crate::CoreError {
    match e {
        MarkovError::CellOutOfRange { cell, states } => {
            crate::CoreError::CellOutOfRange { cell, states }
        }
        MarkovError::LengthMismatch { expected, found } => {
            crate::CoreError::LengthMismatch { expected, found }
        }
        other => crate::CoreError::Markov(other),
    }
}

/// The exact maximum of `scores` (`-inf` for an empty row), computed as a
/// branchless two-pass reduction: [`LANE_WIDTH`] independent running
/// maxima over the chunked body (compare-select per lane, no
/// data-dependent branch), then a horizontal reduce folding in the
/// remainder.
///
/// Equals the legacy left-to-right `if s > best` scan for every NaN-free
/// input — the maximum of a set does not depend on visit order.
pub fn row_max(scores: &[f64]) -> f64 {
    let mut chunks = scores.chunks_exact(LANE_WIDTH);
    let mut lanes = [f64::NEG_INFINITY; LANE_WIDTH];
    for chunk in &mut chunks {
        for i in 0..LANE_WIDTH {
            lanes[i] = if chunk[i] > lanes[i] {
                chunk[i]
            } else {
                lanes[i]
            };
        }
    }
    let mut best = f64::NEG_INFINITY;
    for &lane in &lanes {
        if lane > best {
            best = lane;
        }
    }
    for &s in chunks.remainder() {
        if s > best {
            best = s;
        }
    }
    best
}

/// Lane-wise maximum fold: `scores[j] = max(scores[j], block[j])` with the
/// legacy strict-`>` comparison, chunked in [`LANE_WIDTH`] lanes. The
/// mixture kernel folds one mobility class per call, in ascending class
/// order — the same per-user comparison sequence as the scalar
/// class walk.
pub fn lane_max_into(scores: &mut [f64], block: &[f64]) {
    let mut score_chunks = scores.chunks_exact_mut(LANE_WIDTH);
    let mut block_chunks = block.chunks_exact(LANE_WIDTH);
    for (s, b) in (&mut score_chunks).zip(&mut block_chunks) {
        for i in 0..LANE_WIDTH {
            s[i] = if b[i] > s[i] { b[i] } else { s[i] };
        }
    }
    for (s, b) in score_chunks
        .into_remainder()
        .iter_mut()
        .zip(block_chunks.remainder())
    {
        if *b > *s {
            *s = *b;
        }
    }
}

/// Appends `(global index, score)` for every lane whose score is within
/// tolerance of `best` (`loglik_cmp(score, best) == Equal`), in ascending
/// index order. Lane `j` maps to global service index `lo + j`; the
/// caller guarantees `lo + scores.len()` fits the `u32` index space
/// (every detector entry point checks the population against
/// [`MAX_POPULATION`](super::MAX_POPULATION) first).
///
/// The scan prefilters with a single vectorizable `>=` compare against
/// `best - LOG_LIKELIHOOD_TOLERANCE` — an exact superset of the
/// tolerance-equality test, so no tie is ever missed and the full
/// comparison runs only on (rare) near-max lanes.
pub fn collect_ties(scores: &[f64], lo: usize, best: f64, out: &mut Vec<(u32, f64)>) {
    let threshold = best - LOG_LIKELIHOOD_TOLERANCE;
    for (j, &s) in scores.iter().enumerate() {
        if s >= threshold && loglik_cmp(s, best).is_eq() {
            out.push((service_index(lo, j), s));
        }
    }
}

/// Advances one slot of the single-table columnar kernel: the cumulative
/// score of trajectory `lo + j` moves from `accs[j]` to
/// `accs[j] + increment(prev_row[j] -> row[j])` (the `log π` initial
/// increment when `prev_row` is `None`, i.e. at slot zero), and the
/// refreshed scores pass through the two-pass running-max + tie-collection
/// argmax into `best` / `slot`.
///
/// This is *the* per-slot inner loop of the batch columnar pass, shared
/// verbatim with [`StreamingPrefixDetector`](super::StreamingPrefixDetector)
/// so the online path is bit-for-bit the batch path by construction. The
/// phases and the bit-for-bit argument are in the [module docs](self).
///
/// # Errors
///
/// [`CoreError::CellOutOfRange`](crate::CoreError::CellOutOfRange) (lowest
/// lane first) for cells outside the table's state space,
/// [`CoreError::LengthMismatch`](crate::CoreError::LengthMismatch) when
/// `prev_row` or `accs` disagrees with `row` on arity — in both cases
/// before any accumulator is touched.
pub fn advance_slot_single(
    table: &LogLikelihoodTable,
    lo: usize,
    row: &[CellId],
    prev_row: Option<&[CellId]>,
    accs: &mut [f64],
    best: &mut f64,
    slot: &mut Vec<(u32, f64)>,
) -> Result<()> {
    table
        .add_step_batch(prev_row, row, accs)
        .map_err(map_markov)?;
    let row_best = row_max(accs);
    if row_best > *best {
        *best = row_best;
        slot.retain(|&(_, s)| loglik_cmp(s, row_best).is_eq());
    }
    collect_ties(accs, lo, *best, slot);
    Ok(())
}

/// Advances one slot of the multi-class (mixture) columnar kernel. The
/// accumulator block is class-major: `accs[k * width + j]` is trajectory
/// `lo + j`'s running score under class `k` (`width == row.len()`), so
/// each class advances through one contiguous
/// [`add_step_batch`](LogLikelihoodTable::add_step_batch) call. The
/// per-trajectory prefix score — the *maximum* lane across classes, the
/// best class explanation — is materialized into `scores` (ascending
/// class fold, legacy comparison order) and passed through the same
/// two-pass argmax as the single-table kernel.
///
/// Shared between the batch mixture pass and
/// [`StreamingPrefixDetector`](super::StreamingPrefixDetector), exactly
/// like [`advance_slot_single`].
///
/// # Errors
///
/// Same errors as [`advance_slot_single`]; a failure on a later class
/// leaves earlier classes advanced (callers either discard the block or
/// pre-validate the row, so a partial advance is never observed).
#[allow(clippy::too_many_arguments)] // hot kernel: flat args keep the call free of wrapper structs
pub fn advance_slot_mixture<T: Borrow<LogLikelihoodTable>>(
    tables: &[T],
    lo: usize,
    row: &[CellId],
    prev_row: Option<&[CellId]>,
    accs: &mut [f64],
    scores: &mut [f64],
    best: &mut f64,
    slot: &mut Vec<(u32, f64)>,
) -> Result<()> {
    let width = row.len();
    debug_assert_eq!(accs.len(), width * tables.len());
    debug_assert_eq!(scores.len(), width);
    for (k, table) in tables.iter().enumerate() {
        table
            .borrow()
            .add_step_batch(prev_row, row, &mut accs[k * width..(k + 1) * width])
            .map_err(map_markov)?;
    }
    // scores[j] = max over classes of accs[k * width + j]: seeding from
    // class 0 then strict-`>` folding classes 1.. reproduces the legacy
    // `-inf`-seeded ascending class walk value-for-value (class 0 either
    // beats `-inf` or *is* `-inf`).
    scores.copy_from_slice(&accs[..width]);
    for k in 1..tables.len() {
        lane_max_into(scores, &accs[k * width..(k + 1) * width]);
    }
    let row_best = row_max(scores);
    if row_best > *best {
        *best = row_best;
        slot.retain(|&(_, s)| loglik_cmp(s, row_best).is_eq());
    }
    collect_ties(scores, lo, *best, slot);
    Ok(())
}

/// Folds one cumulative score into a slot's running max / tie trackers —
/// the legacy scalar argmax, kept for the per-trajectory shard passes and
/// as the differential reference for the two-pass kernels. Calls must
/// arrive in increasing trajectory index per slot so tie sets stay
/// ascending.
///
/// The running tie tracking is equivalent to `argmax_set`'s two-pass
/// (exact max, then tolerance filter): the running max only grows, so a
/// score outside tolerance of the running max can never re-enter, and
/// every max update re-filters the surviving candidates.
#[inline(always)]
pub fn fold(best: &mut f64, slot: &mut Vec<(u32, f64)>, i: u32, acc: f64) {
    if acc > *best {
        *best = acc;
        slot.retain(|&(_, s)| loglik_cmp(s, acc).is_eq());
        slot.push((i, acc));
    } else if loglik_cmp(acc, *best).is_eq() {
        slot.push((i, acc));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn row_max_matches_scalar_scan_on_lane_straddling_widths() {
        for width in [0usize, 1, 7, 8, 9, 15, 16, 17, 40] {
            let scores: Vec<f64> = (0..width).map(|j| -((j * 37 % 11) as f64)).collect();
            let mut expected = f64::NEG_INFINITY;
            for &s in &scores {
                if s > expected {
                    expected = s;
                }
            }
            assert_eq!(row_max(&scores).to_bits(), expected.to_bits(), "{width}");
        }
    }

    #[test]
    fn collect_ties_matches_fold_on_tie_dense_rows() {
        // Scores clustered within and just outside the tolerance band.
        let scores = [
            -1.0,
            -1.0 + 1e-10,
            -1.0 - 1e-10,
            -1.0 - 2e-9,
            -1.0 + 1e-10,
            f64::NEG_INFINITY,
        ];
        let best = row_max(&scores);
        let mut two_pass = Vec::new();
        collect_ties(&scores, 5, best, &mut two_pass);
        let mut legacy_best = f64::NEG_INFINITY;
        let mut legacy = Vec::new();
        for (j, &s) in scores.iter().enumerate() {
            fold(&mut legacy_best, &mut legacy, (5 + j) as u32, s);
        }
        assert_eq!(legacy_best.to_bits(), best.to_bits());
        assert_eq!(two_pass, legacy);
    }

    #[test]
    fn all_neg_infinity_rows_tie_everywhere() {
        let scores = [f64::NEG_INFINITY; 11];
        let best = row_max(&scores);
        assert_eq!(best, f64::NEG_INFINITY);
        let mut out = Vec::new();
        collect_ties(&scores, 0, best, &mut out);
        assert_eq!(out.len(), 11);
    }

    #[test]
    fn lane_max_into_is_an_elementwise_running_max() {
        let mut scores = vec![
            -3.0,
            -1.0,
            f64::NEG_INFINITY,
            -2.0,
            -5.0,
            -4.0,
            -9.0,
            -8.0,
            -7.0,
        ];
        let block = vec![
            -2.0,
            -4.0,
            -6.0,
            -2.0,
            f64::NEG_INFINITY,
            -1.0,
            -9.5,
            -0.5,
            -7.0,
        ];
        let expected: Vec<f64> = scores
            .iter()
            .zip(&block)
            .map(|(&s, &b)| if b > s { b } else { s })
            .collect();
        lane_max_into(&mut scores, &block);
        assert_eq!(scores, expected);
    }
}

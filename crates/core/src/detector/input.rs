//! The unified detection input: one entry point over every model and
//! observation representation.
//!
//! [`BatchPrefixDetector`](super::BatchPrefixDetector) historically grew
//! one `detect_prefixes*` method per *(model, observations)* pairing —
//! six near-identical signatures whose call sites had to be rewritten
//! every time a new representation (columnar grids, then paged stores)
//! arrived. [`DetectInput`] collapses that matrix: callers name the
//! model once ([`DetectModel`]), the observations once
//! ([`DetectObservations`]), and
//! [`detect_prefixes`](super::BatchPrefixDetector::detect_prefixes)
//! dispatches internally. Every combination produces bit-for-bit
//! identical detections to the dedicated legacy entry points this type
//! replaced.
//!
//! The third observation form, [`DetectObservations::Paged`], is the
//! fleet-store path: a [`SlotRowSource`] lends one slot-major observed
//! row at a time (e.g. `chaff_store::SlotStream` paging rows off disk),
//! and detection runs through the online kernel in `O(N)` state —
//! populations larger than RAM never materialize a grid.

use chaff_markov::{
    CellGrid, CellId, LogLikelihoodTable, MarkovChain, MobilityRegistry, Trajectory,
};

/// A lending iterator of slot-major observed rows — the abstraction that
/// lets detection consume observations it cannot (or should not) hold in
/// memory at once.
///
/// Contract: [`next_row`](Self::next_row) yields exactly
/// [`horizon`](Self::horizon) rows of exactly
/// [`num_trajectories`](Self::num_trajectories) cells each, in slot
/// order, then `Ok(None)` forever. A source that stops early or runs
/// long makes the paged detection path fail with
/// [`CoreError::RowSource`](crate::CoreError::RowSource); a source may
/// also surface its own faults (I/O errors, checksum mismatches) as
/// that same variant.
pub trait SlotRowSource {
    /// Number of concurrent services `N` covered by every row.
    fn num_trajectories(&self) -> usize;

    /// Number of slot rows `T` the source will yield in total.
    fn horizon(&self) -> usize;

    /// Lends the next slot row (all `N` observed cells of one slot, in
    /// service order), or `Ok(None)` once the horizon is exhausted.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::RowSource`](crate::CoreError::RowSource)
    /// when the backing medium fails to produce the row.
    fn next_row(&mut self) -> crate::Result<Option<&[CellId]>>;
}

/// The mobility knowledge the eavesdropper scores against.
#[derive(Debug, Clone, Copy)]
pub enum DetectModel<'a> {
    /// A single mobility chain; its log-likelihood table is built on the
    /// fly (use [`Table`](Self::Table) to amortize the table across
    /// repeated detection rounds).
    Chain(&'a MarkovChain),
    /// A prebuilt single-class log-likelihood table.
    Table(&'a LogLikelihoodTable),
    /// One table per mobility-model class: generalized-likelihood-ratio
    /// detection, scoring each prefix by its best class. A single-entry
    /// slice is exactly the [`Table`](Self::Table) path.
    Tables(&'a [&'a LogLikelihoodTable]),
    /// A [`MobilityRegistry`] — shorthand for
    /// [`Tables`](Self::Tables) over the registry's per-class tables.
    /// For a multi-epoch registry this is the *stationary view*: only
    /// epoch 0's tables are scored (the pre-epoch behavior). Use
    /// [`Schedule`](Self::Schedule) to exploit the time-of-day
    /// structure.
    Registry(&'a MobilityRegistry),
    /// A [`MobilityRegistry`] scored *with* its
    /// [`EpochSchedule`](chaff_markov::EpochSchedule)
    /// (chaff_markov): the arrival at slot `s` is scored under epoch
    /// `schedule.epoch_of(s)`'s per-class tables — the time-aware
    /// eavesdropper. A one-epoch registry reduces bit-for-bit to
    /// [`Registry`](Self::Registry). Explicit opt-in: the plain
    /// `From<&MobilityRegistry>` conversion still builds the stationary
    /// view.
    Schedule(&'a MobilityRegistry),
}

/// The observation set the eavesdropper scores.
pub enum DetectObservations<'a> {
    /// One [`Trajectory`] per service (the paper-scale representation).
    Trajectories(&'a [Trajectory]),
    /// A slot-major [`CellGrid`] — the fleet engine's zero-copy path.
    Columnar(&'a CellGrid),
    /// A paged stream of slot rows — the persistent-store path, running
    /// detection in `O(N)` state without materializing the grid.
    Paged(&'a mut dyn SlotRowSource),
}

impl std::fmt::Debug for DetectObservations<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DetectObservations::Trajectories(xs) => f
                .debug_tuple("Trajectories")
                .field(&format_args!("{} trajectories", xs.len()))
                .finish(),
            DetectObservations::Columnar(grid) => f
                .debug_tuple("Columnar")
                .field(&format_args!(
                    "{} x {}",
                    grid.num_trajectories(),
                    grid.horizon()
                ))
                .finish(),
            DetectObservations::Paged(source) => f
                .debug_tuple("Paged")
                .field(&format_args!(
                    "{} x {}",
                    source.num_trajectories(),
                    source.horizon()
                ))
                .finish(),
        }
    }
}

/// One detection request: a model paired with an observation set, the
/// sole argument of
/// [`BatchPrefixDetector::detect_prefixes`](super::BatchPrefixDetector::detect_prefixes).
///
/// Most call sites build it through [`new`](Self::new), whose `impl
/// Into` parameters accept the natural references directly:
///
/// ```
/// use chaff_core::detector::{BatchPrefixDetector, DetectInput, DetectModel};
/// use chaff_markov::{models::ModelKind, CellGrid, MarkovChain};
/// use rand::{rngs::StdRng, SeedableRng};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut rng = StdRng::seed_from_u64(5);
/// let chain = MarkovChain::new(ModelKind::NonSkewed.build(10, &mut rng)?)?;
/// let observed: Vec<_> = (0..16).map(|_| chain.sample_trajectory(12, &mut rng)).collect();
/// let grid = CellGrid::from_trajectories(&observed)?;
/// let table = chain.log_likelihood_table();
///
/// let detector = BatchPrefixDetector::new();
/// // Chain x trajectories, table x columnar, tables x columnar: one entry.
/// let a = detector.detect_prefixes(DetectInput::new(&chain, &observed))?;
/// let b = detector.detect_prefixes(DetectInput::new(&table, &grid))?;
/// let c = detector.detect_prefixes(DetectInput::new(DetectModel::Tables(&[&table]), &grid))?;
/// assert_eq!(a, b);
/// assert_eq!(b, c);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct DetectInput<'a> {
    /// The mobility knowledge to score against.
    pub model: DetectModel<'a>,
    /// The observation set to score.
    pub observations: DetectObservations<'a>,
}

impl<'a> DetectInput<'a> {
    /// Pairs a model with an observation set. Accepts the natural
    /// references (`&MarkovChain`, `&LogLikelihoodTable`,
    /// `&MobilityRegistry`, `&[Trajectory]`, `&CellGrid`, `&mut impl
    /// SlotRowSource`, ...) directly via `Into`.
    pub fn new(
        model: impl Into<DetectModel<'a>>,
        observations: impl Into<DetectObservations<'a>>,
    ) -> Self {
        DetectInput {
            model: model.into(),
            observations: observations.into(),
        }
    }
}

impl<'a> From<&'a MarkovChain> for DetectModel<'a> {
    fn from(chain: &'a MarkovChain) -> Self {
        DetectModel::Chain(chain)
    }
}

impl<'a> From<&'a LogLikelihoodTable> for DetectModel<'a> {
    fn from(table: &'a LogLikelihoodTable) -> Self {
        DetectModel::Table(table)
    }
}

impl<'a> From<&'a [&'a LogLikelihoodTable]> for DetectModel<'a> {
    fn from(tables: &'a [&'a LogLikelihoodTable]) -> Self {
        DetectModel::Tables(tables)
    }
}

impl<'a, const N: usize> From<&'a [&'a LogLikelihoodTable; N]> for DetectModel<'a> {
    fn from(tables: &'a [&'a LogLikelihoodTable; N]) -> Self {
        DetectModel::Tables(tables)
    }
}

impl<'a> From<&'a Vec<&'a LogLikelihoodTable>> for DetectModel<'a> {
    fn from(tables: &'a Vec<&'a LogLikelihoodTable>) -> Self {
        DetectModel::Tables(tables)
    }
}

impl<'a> From<&'a MobilityRegistry> for DetectModel<'a> {
    fn from(registry: &'a MobilityRegistry) -> Self {
        DetectModel::Registry(registry)
    }
}

impl<'a> From<&'a [Trajectory]> for DetectObservations<'a> {
    fn from(observed: &'a [Trajectory]) -> Self {
        DetectObservations::Trajectories(observed)
    }
}

impl<'a> From<&'a Vec<Trajectory>> for DetectObservations<'a> {
    fn from(observed: &'a Vec<Trajectory>) -> Self {
        DetectObservations::Trajectories(observed)
    }
}

impl<'a, const N: usize> From<&'a [Trajectory; N]> for DetectObservations<'a> {
    fn from(observed: &'a [Trajectory; N]) -> Self {
        DetectObservations::Trajectories(observed)
    }
}

impl<'a> From<&'a CellGrid> for DetectObservations<'a> {
    fn from(grid: &'a CellGrid) -> Self {
        DetectObservations::Columnar(grid)
    }
}

impl<'a, S: SlotRowSource> From<&'a mut S> for DetectObservations<'a> {
    fn from(source: &'a mut S) -> Self {
        DetectObservations::Paged(source)
    }
}

impl<'a> From<&'a mut dyn SlotRowSource> for DetectObservations<'a> {
    fn from(source: &'a mut dyn SlotRowSource) -> Self {
        DetectObservations::Paged(source)
    }
}

/// In-memory [`SlotRowSource`] over a [`CellGrid`]: lends the grid's
/// slot rows in order. Exists so the paged detection path can be
/// exercised (and differentially tested) without a disk-backed store,
/// and as the reference implementation of the source contract.
#[derive(Debug)]
pub struct GridRowSource<'a> {
    grid: &'a CellGrid,
    next: usize,
}

impl<'a> GridRowSource<'a> {
    /// Wraps a grid as a slot-row source starting at slot zero.
    pub fn new(grid: &'a CellGrid) -> Self {
        GridRowSource { grid, next: 0 }
    }
}

impl SlotRowSource for GridRowSource<'_> {
    fn num_trajectories(&self) -> usize {
        self.grid.num_trajectories()
    }

    fn horizon(&self) -> usize {
        self.grid.horizon()
    }

    fn next_row(&mut self) -> crate::Result<Option<&[CellId]>> {
        if self.next >= self.grid.horizon() {
            return Ok(None);
        }
        let row = self.grid.row(self.next);
        self.next += 1;
        Ok(Some(row))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chaff_markov::models::ModelKind;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn grid_row_source_lends_every_row_then_none() {
        let mut rng = StdRng::seed_from_u64(9);
        let chain = MarkovChain::new(ModelKind::NonSkewed.build(8, &mut rng).unwrap()).unwrap();
        let observed: Vec<Trajectory> = (0..5)
            .map(|_| chain.sample_trajectory(7, &mut rng))
            .collect();
        let grid = CellGrid::from_trajectories(&observed).unwrap();
        let mut source = GridRowSource::new(&grid);
        assert_eq!(source.num_trajectories(), 5);
        assert_eq!(source.horizon(), 7);
        for t in 0..7 {
            assert_eq!(source.next_row().unwrap().unwrap(), grid.row(t));
        }
        assert!(source.next_row().unwrap().is_none());
        assert!(source.next_row().unwrap().is_none());
    }

    #[test]
    fn conversions_build_the_expected_variants() {
        let mut rng = StdRng::seed_from_u64(10);
        let chain = MarkovChain::new(ModelKind::NonSkewed.build(6, &mut rng).unwrap()).unwrap();
        let table = chain.log_likelihood_table();
        let registry = MobilityRegistry::single(chain.clone());
        let observed: Vec<Trajectory> = (0..3)
            .map(|_| chain.sample_trajectory(4, &mut rng))
            .collect();
        let grid = CellGrid::from_trajectories(&observed).unwrap();

        assert!(matches!(
            DetectInput::new(&chain, &observed).model,
            DetectModel::Chain(_)
        ));
        assert!(matches!(
            DetectInput::new(&table, &observed).model,
            DetectModel::Table(_)
        ));
        assert!(matches!(
            DetectInput::new(&[&table], &grid).model,
            DetectModel::Tables(ts) if ts.len() == 1
        ));
        assert!(matches!(
            DetectInput::new(&registry, &grid).model,
            DetectModel::Registry(_)
        ));
        // The schedule-aware view is explicit opt-in, never inferred
        // from the registry reference.
        assert!(matches!(
            DetectInput::new(DetectModel::Schedule(&registry), &grid).model,
            DetectModel::Schedule(_)
        ));
        assert!(matches!(
            DetectInput::new(&chain, &grid).observations,
            DetectObservations::Columnar(_)
        ));
        let mut source = GridRowSource::new(&grid);
        let input = DetectInput::new(&chain, &mut source);
        assert!(matches!(input.observations, DetectObservations::Paged(_)));
        // Debug is cheap but load-bearing for error reports.
        assert!(format!("{input:?}").contains("Paged"));
    }
}

//! The eavesdropper's side: trajectory detectors.
//!
//! A detector observes `N` anonymous service trajectories (one real user,
//! `N − 1` chaffs) and guesses which one belongs to the user. The basic
//! eavesdropper ([`MlDetector`]) knows the user's mobility model and runs
//! maximum-likelihood detection (eq. 1). The advanced eavesdropper
//! ([`AdvancedDetector`]) also knows the chaff-control strategy and filters
//! out trajectories the strategy would produce before running ML detection
//! (Sec. VI-A).
//!
//! Detection is exposed in two forms:
//!
//! * [`MlDetector::detect`] — one decision from full trajectories;
//! * [`MlDetector::detect_prefixes`] — one decision per slot `t` using only
//!   the first `t` observations, which is what "tracking accuracy at time
//!   t" means in the paper's figures (the eavesdropper tracks in real
//!   time).
//!
//! Both forms sit behind the shared [`Detector`] trait; the fleet engine
//! swaps in [`BatchPrefixDetector`], which computes identical detections
//! from a cached likelihood table in parallel shards (see [`batch`]).
//! Fleet-scale call sites use the batched detector's unified entry
//! directly: [`BatchPrefixDetector::detect_prefixes`] takes one
//! [`DetectInput`] covering every model representation (chain, table,
//! per-class tables, registry) crossed with every observation
//! representation (trajectories, columnar grid, paged [`SlotRowSource`]
//! stream — see [`input`]).
//!
//! Ties are returned explicitly as the full argmax set; accuracy metrics
//! average over the set, which equals the expectation over the paper's
//! "random guess among ties" without adding Monte Carlo noise.

mod advanced;
pub mod batch;
pub mod input;
pub mod kernel;
mod ml;
pub mod streaming;

pub use advanced::AdvancedDetector;
pub use batch::{BatchPrefixDetector, PrefixScores, MAX_POPULATION};
pub use input::{DetectInput, DetectModel, DetectObservations, GridRowSource, SlotRowSource};
pub use ml::MlDetector;
pub use streaming::{AccuracyFeedback, StreamingPrefixDetector};

use chaff_markov::{MarkovChain, Trajectory};

/// The shared interface of every eavesdropper-side detector.
///
/// A detector maps an observation set (one anonymous trajectory per
/// service) to the decision(s) an eavesdropper would make:
/// [`detect`](Detector::detect) from full trajectories,
/// [`detect_prefixes`](Detector::detect_prefixes) once per slot. All
/// implementations validate the observation set the same way (non-empty,
/// equal lengths, cells in range) and return the same tie-set semantics,
/// so simulation drivers can switch the per-trajectory and batched cores
/// freely.
pub trait Detector {
    /// Short name used in reports and logs (e.g. `"ML"`).
    fn name(&self) -> &'static str;

    /// One decision from the full trajectories.
    ///
    /// # Errors
    ///
    /// Returns an error when no trajectories are supplied, when they are
    /// empty, have differing lengths, or visit out-of-range cells.
    fn detect(&self, chain: &MarkovChain, observed: &[Trajectory]) -> crate::Result<Detection>;

    /// One decision per slot `t`, using only slots `0..=t`.
    ///
    /// # Errors
    ///
    /// Same conditions as [`detect`](Detector::detect).
    fn detect_prefixes(
        &self,
        chain: &MarkovChain,
        observed: &[Trajectory],
    ) -> crate::Result<Vec<Detection>>;
}

impl Detector for MlDetector {
    fn name(&self) -> &'static str {
        "ML"
    }

    fn detect(&self, chain: &MarkovChain, observed: &[Trajectory]) -> crate::Result<Detection> {
        MlDetector::detect(self, chain, observed)
    }

    fn detect_prefixes(
        &self,
        chain: &MarkovChain,
        observed: &[Trajectory],
    ) -> crate::Result<Vec<Detection>> {
        MlDetector::detect_prefixes(self, chain, observed)
    }
}

impl Detector for BatchPrefixDetector {
    fn name(&self) -> &'static str {
        "batch-ML"
    }

    fn detect(&self, chain: &MarkovChain, observed: &[Trajectory]) -> crate::Result<Detection> {
        BatchPrefixDetector::detect(self, chain, observed)
    }

    fn detect_prefixes(
        &self,
        chain: &MarkovChain,
        observed: &[Trajectory],
    ) -> crate::Result<Vec<Detection>> {
        BatchPrefixDetector::detect_prefixes(self, DetectInput::new(chain, observed))
    }
}

impl Detector for AdvancedDetector<'_> {
    fn name(&self) -> &'static str {
        "advanced"
    }

    fn detect(&self, chain: &MarkovChain, observed: &[Trajectory]) -> crate::Result<Detection> {
        AdvancedDetector::detect(self, chain, observed)
    }

    fn detect_prefixes(
        &self,
        chain: &MarkovChain,
        observed: &[Trajectory],
    ) -> crate::Result<Vec<Detection>> {
        AdvancedDetector::detect_prefixes(self, chain, observed)
    }
}

/// Outcome of one detection decision: the set of trajectory indices that
/// attain the maximum posterior (usually a single element; larger on ties).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Detection {
    tie_set: Vec<usize>,
}

impl Detection {
    /// Creates a detection from the argmax index set.
    ///
    /// # Panics
    ///
    /// Panics if `tie_set` is empty — a detector must always guess.
    pub fn new(tie_set: Vec<usize>) -> Self {
        assert!(
            !tie_set.is_empty(),
            "a detection must name at least one index"
        );
        Detection { tie_set }
    }

    /// The argmax index set (non-empty, strictly increasing).
    pub fn tie_set(&self) -> &[usize] {
        &self.tie_set
    }

    /// Whether the decision is unique.
    pub fn is_unique(&self) -> bool {
        self.tie_set.len() == 1
    }

    /// Probability that a uniform random guess over the tie set names
    /// `index`.
    pub fn prob_of(&self, index: usize) -> f64 {
        if self.tie_set.contains(&index) {
            1.0 / self.tie_set.len() as f64
        } else {
            0.0
        }
    }
}

/// Selects the argmax set of a score slice under the log-likelihood
/// tolerance, optionally restricted to `candidates`.
///
/// Returns indices in increasing order. Used by both detectors.
pub(crate) fn argmax_set(scores: &[f64], candidates: Option<&[usize]>) -> Vec<usize> {
    let indices: Vec<usize> = match candidates {
        Some(c) => c.to_vec(),
        None => (0..scores.len()).collect(),
    };
    let mut best = f64::NEG_INFINITY;
    for &i in &indices {
        if scores[i] > best {
            best = scores[i];
        }
    }
    indices
        .into_iter()
        .filter(|&i| crate::loglik_cmp(scores[i], best).is_eq())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn detection_probability_splits_over_ties() {
        let d = Detection::new(vec![0, 2]);
        assert_eq!(d.prob_of(0), 0.5);
        assert_eq!(d.prob_of(1), 0.0);
        assert_eq!(d.prob_of(2), 0.5);
        assert!(!d.is_unique());
    }

    #[test]
    #[should_panic(expected = "at least one index")]
    fn empty_detection_panics() {
        Detection::new(vec![]);
    }

    #[test]
    fn argmax_set_finds_all_ties() {
        let scores = [1.0, 3.0, 3.0 + 1e-12, -1.0];
        assert_eq!(argmax_set(&scores, None), vec![1, 2]);
    }

    #[test]
    fn argmax_set_respects_candidates() {
        let scores = [5.0, 3.0, 4.0];
        assert_eq!(argmax_set(&scores, Some(&[1, 2])), vec![2]);
    }

    #[test]
    fn argmax_set_with_all_neg_infinity() {
        let scores = [f64::NEG_INFINITY, f64::NEG_INFINITY];
        assert_eq!(argmax_set(&scores, None), vec![0, 1]);
    }
}

//! The fleet-scale detection core: batched, sharded prefix detection.
//!
//! [`MlDetector::detect_prefixes`](super::MlDetector::detect_prefixes)
//! walks the transition matrix per trajectory (one `ln` per step) and
//! re-scans all `N` cumulative scores per slot through `argmax_set` —
//! fine for the paper's `N ≤ 50` populations, prohibitive for fleets.
//! [`BatchPrefixDetector`] produces *identical* detections from a
//! different execution plan:
//!
//! 1. the mobility model's log-likelihoods are cached once in a
//!    [`LogLikelihoodTable`] (columnar kernel, no `ln` on the hot path);
//! 2. trajectories are split into contiguous index shards, and each shard
//!    accumulates its slice of the flat `N × T` cumulative-score matrix
//!    slot by slot on the process-wide worker [`pool`](crate::pool) (no
//!    per-call thread spawns) through the vectorized per-slot kernels of
//!    [`kernel`];
//! 3. every shard extracts its per-slot argmax candidates (and optional
//!    top-k) *during* the accumulation pass, so building the per-slot
//!    [`Detection`]s is a cheap cross-shard merge instead of a fresh
//!    `O(N)` scan with an index-vector allocation per slot.
//!
//! Determinism: each trajectory's score is accumulated in slot order by
//! exactly one shard, maxima merge with exact comparisons, and tie sets
//! are emitted in increasing index order — so results are bit-for-bit
//! independent of the shard count and equal to the per-trajectory path.
//!
//! All of this sits behind **one entry point**:
//! [`BatchPrefixDetector::detect_prefixes`] takes a [`DetectInput`]
//! pairing a model ([`DetectModel`]: chain, table, per-class tables, or
//! registry) with an observation set ([`DetectObservations`]:
//! trajectories, a columnar grid, or a paged [`SlotRowSource`] stream)
//! and dispatches to the matching execution plan. Heterogeneous
//! (multi-class) models score the enlarged chaffed candidate set against
//! one table per mobility-model class (best class per prefix), with the
//! same sharded, reproducible semantics; paged observations run through
//! the online kernel ([`StreamingPrefixDetector`](super::StreamingPrefixDetector))
//! in `O(N)` state, so fleet stores larger than RAM stream straight into
//! detection. Time-varying models enter through
//! [`DetectModel::Schedule`]: a multi-epoch
//! [`MobilityRegistry`] is scored with
//! its [`EpochSchedule`](chaff_markov::EpochSchedule), each slot under
//! that slot's epoch tables, via the same online kernel.

use super::input::{DetectInput, DetectModel, DetectObservations, GridRowSource, SlotRowSource};
use super::kernel::{self, fold};
use super::ml::validate_observations;
use super::{argmax_set, Detection};
use crate::{loglik_cmp, Result};
use chaff_markov::{CellGrid, LogLikelihoodTable, MarkovChain, MobilityRegistry, Trajectory};

/// Largest supported population: candidate trackers store service
/// indices as `u32` (half the footprint of `usize` at fleet scale), so
/// populations beyond this are rejected with
/// [`CoreError::PopulationTooLarge`](crate::CoreError::PopulationTooLarge)
/// instead of silently truncating indices.
pub const MAX_POPULATION: usize = u32::MAX as usize;

/// Rejects populations whose service indices would not fit `u32`.
pub(super) fn ensure_population_fits(population: usize) -> Result<()> {
    if population > MAX_POPULATION {
        return Err(crate::CoreError::PopulationTooLarge {
            population,
            max: MAX_POPULATION,
        });
    }
    Ok(())
}

/// The global service index `lo + j` as `u32` — exact because every
/// entry path checks the population against [`MAX_POPULATION`] first
/// (so `lo + j < n <= u32::MAX` and the cast can never truncate).
#[inline(always)]
pub(super) fn service_index(lo: usize, j: usize) -> u32 {
    debug_assert!(lo + j <= MAX_POPULATION);
    (lo + j) as u32
}

/// Batched maximum-likelihood prefix detector for fleet-scale populations.
///
/// Semantically equivalent to [`MlDetector`](super::MlDetector) (eq. 1,
/// evaluated per prefix); see the [module docs](self) for the execution
/// plan. Construct with [`new`](BatchPrefixDetector::new) to size shards
/// from the machine, or [`with_shards`](BatchPrefixDetector::with_shards)
/// to pin the shard count (results do not depend on it).
///
/// # Example
///
/// ```
/// use chaff_core::detector::{BatchPrefixDetector, DetectInput, MlDetector};
/// use chaff_markov::{models::ModelKind, MarkovChain};
/// use rand::{rngs::StdRng, SeedableRng};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut rng = StdRng::seed_from_u64(5);
/// let chain = MarkovChain::new(ModelKind::NonSkewed.build(10, &mut rng)?)?;
/// let observed: Vec<_> = (0..64).map(|_| chain.sample_trajectory(30, &mut rng)).collect();
/// let batch = BatchPrefixDetector::new().detect_prefixes(DetectInput::new(&chain, &observed))?;
/// let single = MlDetector.detect_prefixes(&chain, &observed)?;
/// assert_eq!(batch, single);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BatchPrefixDetector {
    /// Requested shard count; `None` sizes from available parallelism.
    shards: Option<usize>,
}

impl BatchPrefixDetector {
    /// Creates a detector that sizes its shard count from
    /// `std::thread::available_parallelism`.
    pub fn new() -> Self {
        BatchPrefixDetector { shards: None }
    }

    /// Creates a detector with a fixed shard count (clamped to at least
    /// one). Detections are identical for every shard count; this only
    /// controls parallelism.
    pub fn with_shards(shards: usize) -> Self {
        BatchPrefixDetector {
            shards: Some(shards.max(1)),
        }
    }

    /// The shard count used for a population of `n` trajectories.
    fn effective_shards(&self, n: usize) -> usize {
        let requested = self.shards.unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1)
        });
        requested.clamp(1, n.max(1))
    }

    /// Detects over full trajectories (the final-slot decision), scoring
    /// every trajectory against the cached table in parallel shards.
    ///
    /// # Errors
    ///
    /// Same validation errors as [`MlDetector::detect`](super::MlDetector::detect).
    pub fn detect(&self, chain: &MarkovChain, observed: &[Trajectory]) -> Result<Detection> {
        validate_observations(chain, observed)?;
        let table = chain.log_likelihood_table();
        let n = observed.len();
        let shards = self.effective_shards(n);
        let mut scores = vec![0.0f64; n];
        if shards <= 1 {
            for (score, x) in scores.iter_mut().zip(observed) {
                *score = table.log_likelihood(x);
            }
        } else {
            let chunk = n.div_ceil(shards);
            crate::pool::global().scope(|scope| {
                for (slice, xs) in scores.chunks_mut(chunk).zip(observed.chunks(chunk)) {
                    let table = &table;
                    scope.spawn(move || {
                        for (score, x) in slice.iter_mut().zip(xs) {
                            *score = table.log_likelihood(x);
                        }
                    });
                }
            });
        }
        Ok(Detection::new(argmax_set(&scores, None)))
    }

    /// Detects once per slot using observation prefixes — the unified
    /// entry point over every *(model, observations)* pairing (see
    /// [`DetectInput`]). Produces exactly the `Detection` sequence of
    /// [`MlDetector::detect_prefixes`](super::MlDetector::detect_prefixes)
    /// for every combination: the representation changes the execution
    /// plan, never the result.
    ///
    /// ```
    /// use chaff_core::detector::{BatchPrefixDetector, DetectInput, MlDetector};
    /// use chaff_markov::{models::ModelKind, MarkovChain};
    /// use rand::{rngs::StdRng, SeedableRng};
    ///
    /// # fn main() -> Result<(), Box<dyn std::error::Error>> {
    /// let mut rng = StdRng::seed_from_u64(5);
    /// let chain = MarkovChain::new(ModelKind::NonSkewed.build(10, &mut rng)?)?;
    /// let observed: Vec<_> = (0..64).map(|_| chain.sample_trajectory(30, &mut rng)).collect();
    /// let batch = BatchPrefixDetector::new().detect_prefixes(DetectInput::new(&chain, &observed))?;
    /// let single = MlDetector.detect_prefixes(&chain, &observed)?;
    /// assert_eq!(batch, single);
    /// # Ok(())
    /// # }
    /// ```
    ///
    /// # Errors
    ///
    /// The observation-shape errors of
    /// [`MlDetector::detect`](super::MlDetector::detect), plus
    /// [`MarkovError::Empty`](chaff_markov::MarkovError::Empty) /
    /// [`MarkovError::DimensionMismatch`](chaff_markov::MarkovError::DimensionMismatch)
    /// for empty or inconsistent multi-class table sets,
    /// [`CoreError::PopulationTooLarge`](crate::CoreError::PopulationTooLarge)
    /// past [`MAX_POPULATION`], and
    /// [`CoreError::RowSource`](crate::CoreError::RowSource) when a paged
    /// source fails or disagrees with its declared horizon.
    pub fn detect_prefixes(&self, input: DetectInput<'_>) -> Result<Vec<Detection>> {
        let DetectInput {
            model,
            observations,
        } = input;
        // A genuinely time-varying model runs its own driver; a
        // one-epoch `Schedule` *is* the registry's stationary view and
        // falls through to the `Registry` arm verbatim (the
        // reduction-to-stationary guarantee).
        let model = match model {
            DetectModel::Schedule(registry) if !registry.is_stationary() => {
                return self.prefixes_schedule(registry, observations);
            }
            DetectModel::Schedule(registry) => DetectModel::Registry(registry),
            other => other,
        };
        // Resolve the model to a per-class table slice; the `Chain` arm
        // owns its freshly built table, the others borrow the caller's.
        let built_table;
        let single_ref: [&LogLikelihoodTable; 1];
        let registry_refs: Vec<&LogLikelihoodTable>;
        let tables: &[&LogLikelihoodTable] = match model {
            DetectModel::Chain(chain) => {
                built_table = chain.log_likelihood_table();
                single_ref = [&built_table];
                &single_ref
            }
            DetectModel::Table(table) => {
                single_ref = [table];
                &single_ref
            }
            DetectModel::Tables(tables) => tables,
            // `Schedule` was normalized above: multi-epoch registries
            // returned early, one-epoch ones became `Registry`. Scoring
            // epoch 0 here keeps the match total without a panic site.
            DetectModel::Registry(registry) | DetectModel::Schedule(registry) => {
                registry_refs = registry.tables();
                &registry_refs
            }
        };
        match observations {
            DetectObservations::Trajectories(observed) => {
                self.prefixes_trajectories(tables, observed)
            }
            DetectObservations::Columnar(grid) => self.prefixes_columnar(tables, grid),
            DetectObservations::Paged(source) => self.prefixes_paged(tables, source),
        }
    }

    /// Per-trajectory workhorse: single-table fast path, mixture pass
    /// otherwise. Shapes are checked up front; cell ranges are checked
    /// inside the sharded pass (fused with the first read of each tile)
    /// so the hot path never walks the observation set twice.
    fn prefixes_trajectories(
        &self,
        tables: &[&LogLikelihoodTable],
        observed: &[Trajectory],
    ) -> Result<Vec<Detection>> {
        let first = validate_tables(tables)?;
        let horizon = validate_shape(observed)?;
        let scores = if tables.len() == 1 {
            self.run(first, observed, 0, false)?
        } else {
            self.run_sharded(observed.len(), horizon, |range| {
                shard_pass_mixture(tables, observed, range)
            })?
        };
        Ok(merge_detections(&scores))
    }

    /// Columnar workhorse: streams the slot-major grid row by row,
    /// keeping only `O(shard width)` running state — the full `N × T`
    /// score matrix is never materialized. Bit-for-bit equal to the
    /// per-trajectory workhorse over [`CellGrid::to_trajectories`], for
    /// every shard count.
    fn prefixes_columnar(
        &self,
        tables: &[&LogLikelihoodTable],
        observed: &CellGrid,
    ) -> Result<Vec<Detection>> {
        let first = validate_tables(tables)?;
        validate_grid(observed)?;
        let scores =
            self.run_sharded(observed.num_trajectories(), observed.horizon(), |range| {
                if tables.len() == 1 {
                    shard_pass_columnar(first, observed, range)
                } else {
                    shard_pass_columnar_mixture(tables, observed, range)
                }
            })?;
        Ok(merge_detections(&scores))
    }

    /// Paged workhorse: pulls slot rows from the source and pushes them
    /// through a [`StreamingPrefixDetector`](super::StreamingPrefixDetector)
    /// sized like this detector's shards — the same per-slot kernels as
    /// the columnar pass, so detections are bit-for-bit equal to loading
    /// the whole grid, while state stays `O(N · classes)` regardless of
    /// how large the backing store is.
    fn prefixes_paged(
        &self,
        tables: &[&LogLikelihoodTable],
        source: &mut dyn SlotRowSource,
    ) -> Result<Vec<Detection>> {
        validate_tables(tables)?;
        let n = source.num_trajectories();
        let horizon = source.horizon();
        if n == 0 {
            return Err(crate::CoreError::NoTrajectories);
        }
        if horizon == 0 {
            return Err(crate::CoreError::EmptyTrajectory);
        }
        ensure_population_fits(n)?;
        let owned: Vec<LogLikelihoodTable> = tables.iter().map(|&t| t.clone()).collect();
        let mut online =
            super::StreamingPrefixDetector::with_shards(owned, n, self.effective_shards(n))?;
        let mut out = Vec::with_capacity(horizon);
        while let Some(row) = source.next_row()? {
            if out.len() == horizon {
                return Err(crate::CoreError::RowSource {
                    slot: out.len(),
                    reason: format!("source ran past its declared horizon of {horizon} slots"),
                });
            }
            out.push(online.push_slot(row)?);
        }
        if out.len() != horizon {
            return Err(crate::CoreError::RowSource {
                slot: out.len(),
                reason: format!(
                    "source ended after {} of {horizon} declared slot rows",
                    out.len()
                ),
            });
        }
        Ok(out)
    }

    /// Time-varying workhorse behind [`DetectModel::Schedule`]: every
    /// observation representation is driven slot row by slot row through
    /// a schedule-aware
    /// [`StreamingPrefixDetector`](super::StreamingPrefixDetector), so
    /// the arrival at slot `s` is scored under epoch
    /// `schedule.epoch_of(s)`'s per-class tables — the same per-slot
    /// kernels as every stationary path, with the table set swapped by
    /// the epoch clock. Detections stay bit-for-bit independent of the
    /// shard count and of the observation representation.
    fn prefixes_schedule(
        &self,
        registry: &MobilityRegistry,
        observations: DetectObservations<'_>,
    ) -> Result<Vec<Detection>> {
        match observations {
            DetectObservations::Trajectories(observed) => {
                validate_shape(observed)?;
                let grid = CellGrid::from_trajectories(observed)?;
                self.schedule_paged(registry, &mut GridRowSource::new(&grid))
            }
            DetectObservations::Columnar(grid) => {
                validate_grid(grid)?;
                self.schedule_paged(registry, &mut GridRowSource::new(grid))
            }
            DetectObservations::Paged(source) => self.schedule_paged(registry, source),
        }
    }

    /// The row-drive loop of [`prefixes_schedule`](Self::prefixes_schedule):
    /// [`prefixes_paged`](Self::prefixes_paged) with the detector built
    /// from the registry's full epoch-major table set.
    fn schedule_paged(
        &self,
        registry: &MobilityRegistry,
        source: &mut dyn SlotRowSource,
    ) -> Result<Vec<Detection>> {
        let n = source.num_trajectories();
        let horizon = source.horizon();
        if n == 0 {
            return Err(crate::CoreError::NoTrajectories);
        }
        if horizon == 0 {
            return Err(crate::CoreError::EmptyTrajectory);
        }
        ensure_population_fits(n)?;
        let mut online = super::StreamingPrefixDetector::with_schedule(
            registry.to_epoch_tables(),
            registry.schedule().clone(),
            n,
            self.effective_shards(n),
        )?;
        let mut out = Vec::with_capacity(horizon);
        while let Some(row) = source.next_row()? {
            if out.len() == horizon {
                return Err(crate::CoreError::RowSource {
                    slot: out.len(),
                    reason: format!("source ran past its declared horizon of {horizon} slots"),
                });
            }
            out.push(online.push_slot(row)?);
        }
        if out.len() != horizon {
            return Err(crate::CoreError::RowSource {
                slot: out.len(),
                reason: format!(
                    "source ended after {} of {horizon} declared slot rows",
                    out.len()
                ),
            });
        }
        Ok(out)
    }

    /// Scores every prefix, returning the full flat `N × T`
    /// cumulative-score matrix with per-slot argmax sets and global top-`k`
    /// rankings extracted incrementally during the sharded pass.
    ///
    /// # Errors
    ///
    /// Same validation errors as [`MlDetector::detect`](super::MlDetector::detect).
    pub fn score_prefixes(
        &self,
        chain: &MarkovChain,
        observed: &[Trajectory],
        top_k: usize,
    ) -> Result<PrefixScores> {
        validate_observations(chain, observed)?;
        ensure_population_fits(observed.len())?;
        let table = chain.log_likelihood_table();
        let shard_scores = self.run(&table, observed, top_k, true)?;
        let detections = merge_detections(&shard_scores);
        let top = merge_top_k(&shard_scores, top_k);
        let n = observed.len();
        let horizon = shard_scores.horizon;
        // Assemble the flat slot-major matrix from the shard blocks.
        let mut scores = vec![0.0f64; n * horizon];
        for t in 0..horizon {
            let row = &mut scores[t * n..(t + 1) * n];
            for shard in &shard_scores.shards {
                let width = shard.hi - shard.lo;
                // The block pass always materializes its slice
                // (`keep_block` above); `Option::iter` keeps that
                // invariant structural instead of a panic site.
                for block in shard.block.iter() {
                    row[shard.lo..shard.hi].copy_from_slice(&block[t * width..(t + 1) * width]);
                }
            }
        }
        Ok(PrefixScores {
            num_trajectories: n,
            horizon,
            scores,
            detections,
            top_k: top_k.min(n),
            top,
        })
    }

    /// The sharded accumulation pass. `observed` must already be
    /// validated. `top_k == 0` skips top-k bookkeeping; `keep_block`
    /// materializes each shard's slice of the cumulative-score matrix
    /// (needed by [`score_prefixes`](Self::score_prefixes) only — the
    /// plain detection path tracks candidates with a running column and
    /// never writes the matrix).
    fn run(
        &self,
        table: &LogLikelihoodTable,
        observed: &[Trajectory],
        top_k: usize,
        keep_block: bool,
    ) -> Result<ShardedScores> {
        let horizon = observed.first().map_or(0, Trajectory::len);
        self.run_sharded(observed.len(), horizon, |range| {
            if keep_block {
                shard_pass_block(table, observed, range, top_k)
            } else {
                shard_pass_light(table, observed, range)
            }
        })
    }

    /// The sharding scaffold shared by every pass: splits the population
    /// of `n` trajectories into contiguous index ranges, runs `pass` per
    /// range (on the shared worker pool when more than one range exists)
    /// and collects results in shard order.
    fn run_sharded<F>(&self, n: usize, horizon: usize, pass: F) -> Result<ShardedScores>
    where
        F: Fn((usize, usize)) -> Result<ShardScores> + Sync,
    {
        let shards = self.effective_shards(n);
        let chunk = n.div_ceil(shards);
        let ranges: Vec<(usize, usize)> = (0..shards)
            .map(|s| (s * chunk, ((s + 1) * chunk).min(n)))
            .filter(|(lo, hi)| lo < hi)
            .collect();
        let shards: Result<Vec<ShardScores>> = if ranges.len() <= 1 {
            pass(ranges.first().map_or((0, 0), |&r| r)).map(|s| vec![s])
        } else {
            // Dispatch onto the process-wide worker pool — repeated
            // detection calls reuse the same parked threads instead of
            // spawning per call. Collecting results in shard order makes
            // the lowest erroring shard win, so the same error *variant*
            // surfaces for every shard count (the reported cell may
            // differ from the sequential path's, which scans trajectory
            // by trajectory rather than slot-paired). A panicking shard
            // is re-raised on the caller's thread by the pool scope,
            // lowest shard first.
            let mut slots: Vec<Option<Result<ShardScores>>> = ranges.iter().map(|_| None).collect();
            crate::pool::global().scope(|scope| {
                for (&range, slot) in ranges.iter().zip(slots.iter_mut()) {
                    let pass = &pass;
                    scope.spawn(move || *slot = Some(pass(range)));
                }
            });
            slots
                .into_iter()
                .map(|s| s.expect("pool scope ran every shard"))
                .collect()
        };
        Ok(ShardedScores {
            horizon,
            shards: shards?,
        })
    }
}

/// Validates a per-class table set: non-empty, all tables over the same
/// cell space. Returns the first table (the whole set for single-class
/// dispatch decisions).
fn validate_tables<'a>(tables: &[&'a LogLikelihoodTable]) -> Result<&'a LogLikelihoodTable> {
    let first = *tables
        .first()
        .ok_or(crate::CoreError::Markov(chaff_markov::MarkovError::Empty))?;
    for table in &tables[1..] {
        if table.num_states() != first.num_states() {
            return Err(crate::CoreError::Markov(
                chaff_markov::MarkovError::DimensionMismatch {
                    expected: first.num_states(),
                    found: table.num_states(),
                },
            ));
        }
    }
    Ok(first)
}

/// Validates the shape of an observation set (non-empty, equal lengths)
/// without touching cell contents; the sharded pass range-checks cells as
/// it first reads them.
fn validate_shape(observed: &[Trajectory]) -> Result<usize> {
    if observed.is_empty() {
        return Err(crate::CoreError::NoTrajectories);
    }
    ensure_population_fits(observed.len())?;
    let horizon = observed[0].len();
    if horizon == 0 {
        return Err(crate::CoreError::EmptyTrajectory);
    }
    for x in observed {
        if x.len() != horizon {
            return Err(crate::CoreError::LengthMismatch {
                expected: horizon,
                found: x.len(),
            });
        }
    }
    Ok(horizon)
}

/// Validates a columnar observation grid (non-empty in both dimensions,
/// population within the `u32` index space); cells are range-checked by
/// the streaming pass on first read.
fn validate_grid(observed: &CellGrid) -> Result<()> {
    if observed.num_trajectories() == 0 {
        return Err(crate::CoreError::NoTrajectories);
    }
    if observed.horizon() == 0 {
        return Err(crate::CoreError::EmptyTrajectory);
    }
    ensure_population_fits(observed.num_trajectories())
}

/// Flattens per-slot candidate lists into the concatenated tie layout of
/// [`ShardScores`] (no score block, no top-k) — the shared tail of every
/// detection-only shard pass.
fn light_shard_scores(
    (lo, hi): (usize, usize),
    maxima: Vec<f64>,
    candidates: Vec<Vec<(u32, f64)>>,
) -> ShardScores {
    let horizon = maxima.len();
    let mut ties = Vec::new();
    let mut tie_starts = Vec::with_capacity(horizon + 1);
    tie_starts.push(0);
    for slot in candidates {
        ties.extend(slot);
        tie_starts.push(ties.len());
    }
    ShardScores {
        lo,
        hi,
        block: None,
        maxima,
        ties,
        tie_starts,
        top: Vec::new(),
        top_starts: vec![0; horizon + 1],
    }
}

/// Advances one slot of the single-table columnar kernel: the cumulative
/// score of trajectory `lo + j` moves from `accs[j]` to
/// `accs[j] + increment(prev_row[j] -> row[j])` (or is initialized from
/// `log_initial` when `prev_row` is `None`, i.e. at slot zero), and every
/// updated score is folded into the slot's running max / tie trackers in
/// ascending index order.
///
/// The columnar streaming shard pass behind the single-table grid
/// requests of [`BatchPrefixDetector::detect_prefixes`]: walks
/// the grid slot row by slot row (unit stride, exactly the storage
/// order), carrying one running cumulative score per owned trajectory
/// and folding each into the per-slot max/tie trackers via
/// [`advance_slot_single`]. State is `O(width + horizon)` — no `N × T`
/// block, no per-trajectory allocation.
///
/// Scores are bit-for-bit those of the per-trajectory pass: each
/// trajectory's increments are added in slot order either way, and per
/// slot the fold visits trajectories in ascending index order.
fn shard_pass_columnar(
    table: &LogLikelihoodTable,
    observed: &CellGrid,
    (lo, hi): (usize, usize),
) -> Result<ShardScores> {
    let horizon = observed.horizon();
    let width = hi - lo;
    let mut maxima = vec![f64::NEG_INFINITY; horizon];
    let mut candidates: Vec<Vec<(u32, f64)>> = vec![Vec::new(); horizon];
    let mut accs = vec![0.0f64; width];
    for ((t, best), slot) in (0..horizon)
        .zip(maxima.iter_mut())
        .zip(candidates.iter_mut())
    {
        let row = &observed.row(t)[lo..hi];
        let prev_row = if t == 0 {
            None
        } else {
            Some(&observed.row(t - 1)[lo..hi])
        };
        kernel::advance_slot_single(table, lo, row, prev_row, &mut accs, best, slot)?;
    }
    Ok(light_shard_scores((lo, hi), maxima, candidates))
}

/// The columnar multi-class (mixture) shard pass behind the multi-table
/// grid requests of [`BatchPrefixDetector::detect_prefixes`]: one
/// running accumulator per `(trajectory, class)` pair (class-major per
/// trajectory), scoring each prefix by its best class via
/// [`advance_slot_mixture`] — the same generalized-likelihood-ratio
/// semantics, accumulation order and fold order as the per-trajectory
/// mixture pass, so results are bit-for-bit equal and shard-count
/// independent.
fn shard_pass_columnar_mixture(
    tables: &[&LogLikelihoodTable],
    observed: &CellGrid,
    (lo, hi): (usize, usize),
) -> Result<ShardScores> {
    let horizon = observed.horizon();
    let width = hi - lo;
    let classes = tables.len();
    let mut maxima = vec![f64::NEG_INFINITY; horizon];
    let mut candidates: Vec<Vec<(u32, f64)>> = vec![Vec::new(); horizon];
    // Class-major: accs[k * width + j] is trajectory `lo + j`'s running
    // score under class `k`, so each class advances contiguously.
    let mut accs = vec![0.0f64; width * classes];
    let mut scores = vec![0.0f64; width];
    for ((t, best), slot) in (0..horizon)
        .zip(maxima.iter_mut())
        .zip(candidates.iter_mut())
    {
        let row = &observed.row(t)[lo..hi];
        let prev_row = if t == 0 {
            None
        } else {
            Some(&observed.row(t - 1)[lo..hi])
        };
        kernel::advance_slot_mixture(
            tables,
            lo,
            row,
            prev_row,
            &mut accs,
            &mut scores,
            best,
            slot,
        )?;
    }
    Ok(light_shard_scores((lo, hi), maxima, candidates))
}

/// One shard's per-slot extraction summaries (and, for the score-matrix
/// path, its slice of the cumulative-score matrix).
struct ShardScores {
    /// Trajectory index range `[lo, hi)` owned by this shard.
    lo: usize,
    hi: usize,
    /// Slot-major cumulative scores for the owned range
    /// (`block[t * (hi - lo) + (i - lo)]`); `None` on the light path.
    block: Option<Vec<f64>>,
    /// Per-slot maximum over the owned range.
    maxima: Vec<f64>,
    /// Concatenated per-slot argmax candidates `(global index, score)`,
    /// ascending by index within a slot; slot `t` occupies
    /// `ties[tie_starts[t]..tie_starts[t + 1]]`.
    ties: Vec<(u32, f64)>,
    tie_starts: Vec<usize>,
    /// Concatenated per-slot local top-k `(index, score)` entries, best
    /// first; empty when top-k extraction is off.
    top: Vec<(u32, f64)>,
    top_starts: Vec<usize>,
}

struct ShardedScores {
    horizon: usize,
    shards: Vec<ShardScores>,
}

/// The multi-class (mixture) shard pass behind the multi-table
/// trajectory requests of [`BatchPrefixDetector::detect_prefixes`]: each
/// trajectory
/// carries one accumulator per model class, and its prefix score at slot
/// `t` is the *maximum* accumulator — the best class explanation of the
/// prefix. Accumulation stays per-trajectory and slot-ordered, so results
/// are bit-for-bit independent of the shard count.
fn shard_pass_mixture(
    tables: &[&LogLikelihoodTable],
    observed: &[Trajectory],
    (lo, hi): (usize, usize),
) -> Result<ShardScores> {
    let horizon = observed.first().map_or(0, Trajectory::len);
    let states = tables[0].num_states();
    let mut maxima = vec![f64::NEG_INFINITY; horizon];
    let mut candidates: Vec<Vec<(u32, f64)>> = vec![Vec::new(); horizon];
    let mut accs = vec![0.0f64; tables.len()];
    for (j, x) in observed[lo..hi].iter().enumerate() {
        let i = service_index(lo, j);
        accs.fill(0.0);
        let mut prev = None;
        for ((&cell, best), slot) in x
            .as_slice()
            .iter()
            .zip(maxima.iter_mut())
            .zip(candidates.iter_mut())
        {
            if cell.index() >= states {
                return Err(crate::CoreError::CellOutOfRange {
                    cell: cell.index(),
                    states,
                });
            }
            // Max over classes of the running per-class score; -inf
            // accumulators are fine (impossible under every class).
            let mut score = f64::NEG_INFINITY;
            for (acc, table) in accs.iter_mut().zip(tables) {
                *acc += table.step(prev, cell);
                if *acc > score {
                    score = *acc;
                }
            }
            prev = Some(cell);
            fold(best, slot, i, score);
        }
    }
    Ok(light_shard_scores((lo, hi), maxima, candidates))
}

/// The detection-only shard pass: walks each trajectory once (unit
/// stride), accumulating its score in a register and folding it into
/// per-slot running max / tie-candidate trackers — no `N × T` block is
/// ever written, and cells are range-checked on their first (and only)
/// read instead of in a separate validation pass.
fn shard_pass_light(
    table: &LogLikelihoodTable,
    observed: &[Trajectory],
    (lo, hi): (usize, usize),
) -> Result<ShardScores> {
    let horizon = observed.first().map_or(0, Trajectory::len);
    let states = table.num_states();
    let mut maxima = vec![f64::NEG_INFINITY; horizon];
    let mut candidates: Vec<Vec<(u32, f64)>> = vec![Vec::new(); horizon];

    let shard = &observed[lo..hi];
    // Two trajectories per iteration: their accumulators form independent
    // floating-point dependency chains, which roughly halves the
    // add-latency bound of this loop. Lane order (even index first)
    // preserves ascending tie sets.
    let mut pairs = shard.chunks_exact(2);
    let mut j = 0usize;
    for pair in pairs.by_ref() {
        let ia = service_index(lo, j);
        let ib = ia + 1;
        let mut acc_a = 0.0f64;
        let mut acc_b = 0.0f64;
        let mut prev_a = None;
        let mut prev_b = None;
        // Zipping ties the slot trackers to the cells without bounds
        // checks (equal lengths were validated up front).
        for (((&cell_a, &cell_b), best), slot) in pair[0]
            .as_slice()
            .iter()
            .zip(pair[1].as_slice())
            .zip(maxima.iter_mut())
            .zip(candidates.iter_mut())
        {
            // Lane a first, so within one slot the lower trajectory
            // index reports its cell. (Across slots the paired scan can
            // surface a different — equally invalid — cell than the
            // sequential path: the error *variant* always matches.)
            if cell_a.index() >= states {
                return Err(crate::CoreError::CellOutOfRange {
                    cell: cell_a.index(),
                    states,
                });
            }
            if cell_b.index() >= states {
                return Err(crate::CoreError::CellOutOfRange {
                    cell: cell_b.index(),
                    states,
                });
            }
            // -inf + -inf is fine; +inf never occurs (increments are
            // log-probs <= 0), so no NaN can appear.
            acc_a += table.step(prev_a, cell_a);
            acc_b += table.step(prev_b, cell_b);
            prev_a = Some(cell_a);
            prev_b = Some(cell_b);
            fold(best, slot, ia, acc_a);
            fold(best, slot, ib, acc_b);
        }
        j += 2;
    }
    for x in pairs.remainder() {
        let i = service_index(lo, j);
        let mut acc = 0.0f64;
        let mut prev = None;
        for ((&cell, best), slot) in x
            .as_slice()
            .iter()
            .zip(maxima.iter_mut())
            .zip(candidates.iter_mut())
        {
            if cell.index() >= states {
                return Err(crate::CoreError::CellOutOfRange {
                    cell: cell.index(),
                    states,
                });
            }
            acc += table.step(prev, cell);
            prev = Some(cell);
            fold(best, slot, i, acc);
        }
        j += 1;
    }
    Ok(light_shard_scores((lo, hi), maxima, candidates))
}

/// The score-matrix shard pass: fills this shard's slot-major block from
/// the columnar kernel (the increments become cumulative scores in
/// place) and extracts per-slot candidates and top-k from each finished
/// row.
fn shard_pass_block(
    table: &LogLikelihoodTable,
    observed: &[Trajectory],
    (lo, hi): (usize, usize),
    top_k: usize,
) -> Result<ShardScores> {
    let width = hi - lo;
    let horizon = observed.first().map_or(0, Trajectory::len);
    let mut block = table
        .step_log_likelihoods_batch(&observed[lo..hi])
        .map_err(kernel::map_markov)?;
    let mut maxima = Vec::with_capacity(horizon);
    let mut ties = Vec::new();
    let mut tie_starts = Vec::with_capacity(horizon + 1);
    tie_starts.push(0);
    let mut top = Vec::new();
    let mut top_starts = Vec::with_capacity(horizon + 1);
    top_starts.push(0);
    for t in 0..horizon {
        if t > 0 {
            let (prev, cur) = block.split_at_mut(t * width);
            let prev = &prev[(t - 1) * width..];
            // -inf + -inf is fine; +inf never occurs (increments are
            // log-probs <= 0), so no NaN can appear.
            for (c, p) in cur[..width].iter_mut().zip(prev) {
                *c += p;
            }
        }
        let row = &block[t * width..(t + 1) * width];
        // Exact max first, tolerance filter second — the same two-pass
        // semantics as `argmax_set`, but over this shard's contiguous row.
        let mut best = f64::NEG_INFINITY;
        for &s in row {
            if s > best {
                best = s;
            }
        }
        maxima.push(best);
        for (j, &s) in row.iter().enumerate() {
            if loglik_cmp(s, best).is_eq() {
                ties.push((service_index(lo, j), s));
            }
        }
        tie_starts.push(ties.len());
        if top_k > 0 {
            let start = top.len();
            for (j, &s) in row.iter().enumerate() {
                insert_top_k(&mut top, start, top_k, service_index(lo, j), s);
            }
        }
        top_starts.push(top.len());
    }
    Ok(ShardScores {
        lo,
        hi,
        block: Some(block),
        maxima,
        ties,
        tie_starts,
        top,
        top_starts,
    })
}

/// Inserts `(index, score)` into the slot's running top-k buffer
/// (`buffer[start..]`), kept sorted best-first with ties broken towards
/// the lower index. Scores are never NaN (sums of log-probabilities).
pub(super) fn insert_top_k(
    buffer: &mut Vec<(u32, f64)>,
    start: usize,
    k: usize,
    index: u32,
    score: f64,
) {
    let slot = &buffer[start..];
    let pos = slot.partition_point(|&(i, s)| s > score || (s == score && i < index));
    if pos >= k {
        return;
    }
    buffer.insert(start + pos, (index, score));
    if buffer.len() - start > k {
        buffer.pop();
    }
}

/// Merges shard-local per-slot candidates into global detections.
///
/// A shard candidate within tolerance of the *global* best is necessarily
/// within tolerance of its shard-local best (local max ≤ global max), so
/// filtering the shard candidate lists against the merged maximum loses
/// nothing; shards are visited in index order, which keeps tie sets
/// ascending exactly like `argmax_set`.
fn merge_detections(scores: &ShardedScores) -> Vec<Detection> {
    let mut out = Vec::with_capacity(scores.horizon);
    for t in 0..scores.horizon {
        let mut best = f64::NEG_INFINITY;
        for shard in &scores.shards {
            if shard.maxima[t] > best {
                best = shard.maxima[t];
            }
        }
        let mut tie_set = Vec::new();
        for shard in &scores.shards {
            for &(i, s) in &shard.ties[shard.tie_starts[t]..shard.tie_starts[t + 1]] {
                if loglik_cmp(s, best).is_eq() {
                    tie_set.push(i as usize);
                }
            }
        }
        out.push(Detection::new(tie_set));
    }
    out
}

/// Merges shard-local top-k lists into the global per-slot top-k ranking
/// (indices only, best first; ties broken towards the lower index).
fn merge_top_k(scores: &ShardedScores, k: usize) -> Vec<usize> {
    if k == 0 {
        return Vec::new();
    }
    let mut out = Vec::with_capacity(scores.horizon * k);
    let mut merged: Vec<(u32, f64)> = Vec::new();
    for t in 0..scores.horizon {
        merged.clear();
        for shard in &scores.shards {
            merged.extend_from_slice(&shard.top[shard.top_starts[t]..shard.top_starts[t + 1]]);
        }
        merged.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
        merged.truncate(k);
        out.extend(merged.iter().map(|&(i, _)| i as usize));
    }
    out
}

/// The flat `N × T` cumulative-score matrix produced by
/// [`BatchPrefixDetector::score_prefixes`], with per-slot detections and
/// top-k rankings extracted incrementally during the sharded pass.
#[derive(Debug, Clone)]
pub struct PrefixScores {
    num_trajectories: usize,
    horizon: usize,
    /// Slot-major flat matrix: `scores[t * N + i]` is trajectory `i`'s
    /// cumulative log-likelihood after slot `t`.
    scores: Vec<f64>,
    detections: Vec<Detection>,
    top_k: usize,
    /// Concatenated per-slot global top-k indices (`top_k` per slot).
    top: Vec<usize>,
}

impl PrefixScores {
    /// Number of trajectories `N`.
    pub fn num_trajectories(&self) -> usize {
        self.num_trajectories
    }

    /// Number of slots `T`.
    pub fn horizon(&self) -> usize {
        self.horizon
    }

    /// All `N` cumulative scores after slot `t` (one slot-major row of the
    /// flat matrix).
    ///
    /// # Panics
    ///
    /// Panics if `t >= horizon()`.
    pub fn scores_at(&self, t: usize) -> &[f64] {
        &self.scores[t * self.num_trajectories..(t + 1) * self.num_trajectories]
    }

    /// Trajectory `i`'s cumulative score after slot `t`.
    ///
    /// # Panics
    ///
    /// Panics if `t` or `i` is out of range.
    pub fn score(&self, t: usize, i: usize) -> f64 {
        assert!(i < self.num_trajectories, "trajectory index out of range");
        self.scores[t * self.num_trajectories + i]
    }

    /// The detection (argmax tie set) at slot `t`.
    ///
    /// # Panics
    ///
    /// Panics if `t >= horizon()`.
    pub fn detection(&self, t: usize) -> &Detection {
        &self.detections[t]
    }

    /// All per-slot detections.
    pub fn detections(&self) -> &[Detection] {
        &self.detections
    }

    /// Consumes the matrix, returning the per-slot detections.
    pub fn into_detections(self) -> Vec<Detection> {
        self.detections
    }

    /// The `k` requested at construction (clamped to `N`).
    pub fn top_k(&self) -> usize {
        self.top_k
    }

    /// The global top-k trajectory indices at slot `t`, best first; ties
    /// break towards the lower index. Empty when constructed with
    /// `top_k == 0`.
    ///
    /// # Panics
    ///
    /// Panics if `t >= horizon()`.
    pub fn top_k_at(&self, t: usize) -> &[usize] {
        assert!(t < self.horizon, "slot out of range");
        if self.top_k == 0 {
            return &[];
        }
        &self.top[t * self.top_k..(t + 1) * self.top_k]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::detector::MlDetector;
    use crate::CoreError;
    use chaff_markov::models::ModelKind;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn fleet(seed: u64, n: usize, horizon: usize) -> (MarkovChain, Vec<Trajectory>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let chain = MarkovChain::new(ModelKind::NonSkewed.build(10, &mut rng).unwrap()).unwrap();
        let observed = (0..n)
            .map(|_| chain.sample_trajectory(horizon, &mut rng))
            .collect();
        (chain, observed)
    }

    #[test]
    fn matches_single_trajectory_path_bit_for_bit() {
        let (chain, observed) = fleet(41, 137, 23);
        let single = MlDetector.detect_prefixes(&chain, &observed).unwrap();
        for shards in [1, 2, 3, 8, 137, 500] {
            let batch = BatchPrefixDetector::with_shards(shards)
                .detect_prefixes(DetectInput::new(&chain, &observed))
                .unwrap();
            assert_eq!(batch, single, "shards = {shards}");
        }
    }

    #[test]
    fn full_detection_matches_ml_detector() {
        let (chain, observed) = fleet(42, 64, 31);
        let batch = BatchPrefixDetector::with_shards(4)
            .detect(&chain, &observed)
            .unwrap();
        let single = MlDetector.detect(&chain, &observed).unwrap();
        assert_eq!(batch, single);
    }

    #[test]
    fn score_matrix_matches_prefix_log_likelihoods() {
        let (chain, observed) = fleet(43, 17, 12);
        let scores = BatchPrefixDetector::with_shards(3)
            .score_prefixes(&chain, &observed, 0)
            .unwrap();
        assert_eq!(scores.num_trajectories(), 17);
        assert_eq!(scores.horizon(), 12);
        for (i, x) in observed.iter().enumerate() {
            let prefix = chain.prefix_log_likelihoods(x);
            for (t, &expected) in prefix.iter().enumerate() {
                assert_eq!(
                    scores.score(t, i).to_bits(),
                    expected.to_bits(),
                    "trajectory {i}, slot {t}"
                );
            }
        }
        assert_eq!(
            scores.detections(),
            MlDetector
                .detect_prefixes(&chain, &observed)
                .unwrap()
                .as_slice()
        );
    }

    #[test]
    fn top_k_ranks_by_score_with_index_tie_breaks() {
        let (chain, observed) = fleet(44, 29, 9);
        let scores = BatchPrefixDetector::with_shards(4)
            .score_prefixes(&chain, &observed, 5)
            .unwrap();
        for t in 0..scores.horizon() {
            let top = scores.top_k_at(t);
            assert_eq!(top.len(), 5);
            // Reference: full sort of the slot row.
            let row = scores.scores_at(t);
            let mut expected: Vec<usize> = (0..row.len()).collect();
            expected.sort_by(|&a, &b| row[b].total_cmp(&row[a]).then(a.cmp(&b)));
            assert_eq!(top, &expected[..5], "slot {t}");
            // The argmax is always ranked first.
            assert_eq!(top[0], scores.detection(t).tie_set()[0]);
        }
    }

    #[test]
    fn top_k_is_independent_of_shard_count() {
        let (chain, observed) = fleet(45, 41, 11);
        let reference = BatchPrefixDetector::with_shards(1)
            .score_prefixes(&chain, &observed, 7)
            .unwrap();
        for shards in [2, 5, 16] {
            let scores = BatchPrefixDetector::with_shards(shards)
                .score_prefixes(&chain, &observed, 7)
                .unwrap();
            for t in 0..scores.horizon() {
                assert_eq!(scores.top_k_at(t), reference.top_k_at(t), "slot {t}");
            }
        }
    }

    #[test]
    fn identical_trajectories_tie_across_shard_boundaries() {
        let (chain, mut observed) = fleet(46, 6, 8);
        // Force cross-shard ties: everyone walks the same path.
        let x = observed[0].clone();
        for slot in observed.iter_mut() {
            *slot = x.clone();
        }
        let detections = BatchPrefixDetector::with_shards(3)
            .detect_prefixes(DetectInput::new(&chain, &observed))
            .unwrap();
        for d in &detections {
            assert_eq!(d.tie_set(), &[0, 1, 2, 3, 4, 5]);
        }
    }

    #[test]
    fn rejects_what_the_single_path_rejects() {
        let (chain, _) = fleet(47, 2, 4);
        let d = BatchPrefixDetector::new();
        let none: &[Trajectory] = &[];
        assert!(matches!(
            d.detect_prefixes(DetectInput::new(&chain, none)),
            Err(CoreError::NoTrajectories)
        ));
        assert!(matches!(
            d.detect_prefixes(DetectInput::new(&chain, &[Trajectory::new()])),
            Err(CoreError::EmptyTrajectory)
        ));
        let ragged = vec![
            Trajectory::from_indices([0, 1]),
            Trajectory::from_indices([0]),
        ];
        assert!(matches!(
            d.detect_prefixes(DetectInput::new(&chain, &ragged)),
            Err(CoreError::LengthMismatch { .. })
        ));
        let out = vec![Trajectory::from_indices([999])];
        assert!(matches!(
            d.detect(&chain, &out),
            Err(CoreError::CellOutOfRange { .. })
        ));
    }

    fn two_class_tables(seed: u64) -> (MarkovChain, MarkovChain) {
        let mut rng = StdRng::seed_from_u64(seed);
        let a = MarkovChain::new(ModelKind::NonSkewed.build(10, &mut rng).unwrap()).unwrap();
        let b = MarkovChain::new(ModelKind::SpatiallySkewed.build(10, &mut rng).unwrap()).unwrap();
        (a, b)
    }

    #[test]
    fn mixture_with_one_table_matches_single_table_path_bit_for_bit() {
        let (chain, observed) = fleet(48, 53, 17);
        let table = chain.log_likelihood_table();
        let d = BatchPrefixDetector::with_shards(4);
        let single = d
            .detect_prefixes(DetectInput::new(&table, &observed))
            .unwrap();
        let multi = d
            .detect_prefixes(DetectInput::new(&[&table], &observed))
            .unwrap();
        assert_eq!(single, multi);
    }

    #[test]
    fn mixture_matches_naive_max_over_class_reference() {
        let (a, b) = two_class_tables(49);
        let mut rng = StdRng::seed_from_u64(50);
        let mut observed: Vec<Trajectory> =
            (0..21).map(|_| a.sample_trajectory(15, &mut rng)).collect();
        observed.extend((0..20).map(|_| b.sample_trajectory(15, &mut rng)));
        let (ta, tb) = (a.log_likelihood_table(), b.log_likelihood_table());
        let detections = BatchPrefixDetector::with_shards(3)
            .detect_prefixes(DetectInput::new(&[&ta, &tb], &observed))
            .unwrap();
        // Reference: per-trajectory prefix scores under each class, max
        // per slot, then the shared argmax-set semantics.
        let horizon = observed[0].len();
        for (t, detection) in detections.iter().enumerate().take(horizon) {
            let scores: Vec<f64> = observed
                .iter()
                .map(|x| a.prefix_log_likelihoods(x)[t].max(b.prefix_log_likelihoods(x)[t]))
                .collect();
            let expected = crate::detector::argmax_set(&scores, None);
            assert_eq!(detection.tie_set(), &expected[..], "slot {t}");
        }
    }

    #[test]
    fn mixture_is_independent_of_shard_count() {
        let (a, b) = two_class_tables(51);
        let mut rng = StdRng::seed_from_u64(52);
        let observed: Vec<Trajectory> = (0..37)
            .map(|i| {
                if i % 2 == 0 {
                    a.sample_trajectory(12, &mut rng)
                } else {
                    b.sample_trajectory(12, &mut rng)
                }
            })
            .collect();
        let (ta, tb) = (a.log_likelihood_table(), b.log_likelihood_table());
        let reference = BatchPrefixDetector::with_shards(1)
            .detect_prefixes(DetectInput::new(&[&ta, &tb], &observed))
            .unwrap();
        for shards in [2, 5, 37, 100] {
            let detections = BatchPrefixDetector::with_shards(shards)
                .detect_prefixes(DetectInput::new(&[&ta, &tb], &observed))
                .unwrap();
            assert_eq!(detections, reference, "shards = {shards}");
        }
    }

    #[test]
    fn mixture_rejects_empty_and_mismatched_tables() {
        let (chain, observed) = fleet(53, 4, 6);
        let d = BatchPrefixDetector::new();
        let no_tables: &[&LogLikelihoodTable] = &[];
        assert!(matches!(
            d.detect_prefixes(DetectInput::new(no_tables, &observed)),
            Err(CoreError::Markov(chaff_markov::MarkovError::Empty))
        ));
        let table = chain.log_likelihood_table();
        let mut rng = StdRng::seed_from_u64(54);
        let other = MarkovChain::new(ModelKind::NonSkewed.build(7, &mut rng).unwrap()).unwrap();
        let small = other.log_likelihood_table();
        assert!(matches!(
            d.detect_prefixes(DetectInput::new(&[&table, &small], &observed)),
            Err(CoreError::Markov(
                chaff_markov::MarkovError::DimensionMismatch {
                    expected: 10,
                    found: 7
                }
            ))
        ));
        // Shape errors match the single-table path.
        let none: &[Trajectory] = &[];
        assert!(matches!(
            d.detect_prefixes(DetectInput::new(&[&table, &table], none)),
            Err(CoreError::NoTrajectories)
        ));
    }

    #[test]
    fn populations_beyond_u32_are_rejected_not_truncated() {
        // The cap itself cannot be exercised with a real allocation
        // (2^32 trajectories), so the guard is tested directly: it is
        // the only gate in front of every `as u32` index narrowing.
        assert!(ensure_population_fits(MAX_POPULATION).is_ok());
        let err = ensure_population_fits(MAX_POPULATION + 1).unwrap_err();
        assert!(matches!(
            err,
            CoreError::PopulationTooLarge { population, max }
                if population == MAX_POPULATION + 1 && max == MAX_POPULATION
        ));
        assert!(err.to_string().contains("exceeds"));
    }

    #[test]
    fn columnar_detection_matches_trajectory_path_bit_for_bit() {
        let (chain, observed) = fleet(55, 137, 23);
        let grid = CellGrid::from_trajectories(&observed).unwrap();
        let table = chain.log_likelihood_table();
        let reference = MlDetector.detect_prefixes(&chain, &observed).unwrap();
        for shards in [1, 2, 3, 8, 137, 500] {
            let d = BatchPrefixDetector::with_shards(shards);
            let columnar = d.detect_prefixes(DetectInput::new(&chain, &grid)).unwrap();
            assert_eq!(columnar, reference, "shards = {shards}");
            let with_table = d.detect_prefixes(DetectInput::new(&table, &grid)).unwrap();
            assert_eq!(with_table, reference, "shards = {shards} (table)");
        }
    }

    #[test]
    fn paged_detection_matches_columnar_bit_for_bit() {
        use crate::detector::input::GridRowSource;
        let (chain, observed) = fleet(59, 97, 19);
        let grid = CellGrid::from_trajectories(&observed).unwrap();
        let reference = BatchPrefixDetector::with_shards(1)
            .detect_prefixes(DetectInput::new(&chain, &grid))
            .unwrap();
        for shards in [1, 2, 7, 97] {
            let mut source = GridRowSource::new(&grid);
            let paged = BatchPrefixDetector::with_shards(shards)
                .detect_prefixes(DetectInput::new(&chain, &mut source))
                .unwrap();
            assert_eq!(paged, reference, "shards = {shards}");
        }
        // Registry models route through the same paged path.
        let registry = chaff_markov::MobilityRegistry::single(chain.clone());
        let mut source = GridRowSource::new(&grid);
        let via_registry = BatchPrefixDetector::with_shards(3)
            .detect_prefixes(DetectInput::new(&registry, &mut source))
            .unwrap();
        assert_eq!(via_registry, reference);
    }

    #[test]
    fn paged_sources_that_break_their_contract_are_typed_errors() {
        struct LyingSource {
            rows: Vec<Vec<chaff_markov::CellId>>,
            claimed_horizon: usize,
            next: usize,
        }
        impl SlotRowSource for LyingSource {
            fn num_trajectories(&self) -> usize {
                self.rows.first().map_or(0, Vec::len)
            }
            fn horizon(&self) -> usize {
                self.claimed_horizon
            }
            fn next_row(&mut self) -> crate::Result<Option<&[chaff_markov::CellId]>> {
                if self.next >= self.rows.len() {
                    return Ok(None);
                }
                let row = &self.rows[self.next];
                self.next += 1;
                Ok(Some(row))
            }
        }
        let (chain, observed) = fleet(60, 8, 5);
        let grid = CellGrid::from_trajectories(&observed).unwrap();
        let rows: Vec<Vec<chaff_markov::CellId>> = (0..5).map(|t| grid.row(t).to_vec()).collect();
        let d = BatchPrefixDetector::with_shards(2);
        // Fewer rows than declared.
        let mut short = LyingSource {
            rows: rows[..3].to_vec(),
            claimed_horizon: 5,
            next: 0,
        };
        assert!(matches!(
            d.detect_prefixes(DetectInput::new(&chain, &mut short)),
            Err(CoreError::RowSource { slot: 3, .. })
        ));
        // More rows than declared.
        let mut long = LyingSource {
            rows: rows.clone(),
            claimed_horizon: 3,
            next: 0,
        };
        assert!(matches!(
            d.detect_prefixes(DetectInput::new(&chain, &mut long)),
            Err(CoreError::RowSource { slot: 3, .. })
        ));
        // Degenerate declared shapes use the usual shape errors.
        let mut empty = LyingSource {
            rows: Vec::new(),
            claimed_horizon: 5,
            next: 0,
        };
        assert!(matches!(
            d.detect_prefixes(DetectInput::new(&chain, &mut empty)),
            Err(CoreError::NoTrajectories)
        ));
        let mut no_slots = LyingSource {
            rows: rows[..1].to_vec(),
            claimed_horizon: 0,
            next: 0,
        };
        assert!(matches!(
            d.detect_prefixes(DetectInput::new(&chain, &mut no_slots)),
            Err(CoreError::EmptyTrajectory)
        ));
    }

    #[test]
    fn columnar_mixture_matches_trajectory_mixture_bit_for_bit() {
        let (a, b) = two_class_tables(56);
        let mut rng = StdRng::seed_from_u64(57);
        let mut observed: Vec<Trajectory> =
            (0..23).map(|_| a.sample_trajectory(15, &mut rng)).collect();
        observed.extend((0..18).map(|_| b.sample_trajectory(15, &mut rng)));
        let grid = CellGrid::from_trajectories(&observed).unwrap();
        let (ta, tb) = (a.log_likelihood_table(), b.log_likelihood_table());
        let reference = BatchPrefixDetector::with_shards(1)
            .detect_prefixes(DetectInput::new(&[&ta, &tb], &observed))
            .unwrap();
        for shards in [1, 2, 7, 41] {
            let columnar = BatchPrefixDetector::with_shards(shards)
                .detect_prefixes(DetectInput::new(&[&ta, &tb], &grid))
                .unwrap();
            assert_eq!(columnar, reference, "shards = {shards}");
        }
        // The single-class dispatch is the single-table path.
        let single = BatchPrefixDetector::with_shards(3)
            .detect_prefixes(DetectInput::new(&[&ta], &grid))
            .unwrap();
        assert_eq!(
            single,
            BatchPrefixDetector::with_shards(3)
                .detect_prefixes(DetectInput::new(&ta, &grid))
                .unwrap()
        );
    }

    #[test]
    fn columnar_rejects_what_the_trajectory_path_rejects() {
        let (chain, observed) = fleet(58, 4, 6);
        let d = BatchPrefixDetector::new();
        let empty = CellGrid::new(0);
        assert!(matches!(
            d.detect_prefixes(DetectInput::new(&chain, &empty)),
            Err(CoreError::NoTrajectories)
        ));
        let no_slots = CellGrid::new(3);
        assert!(matches!(
            d.detect_prefixes(DetectInput::new(&chain, &no_slots)),
            Err(CoreError::EmptyTrajectory)
        ));
        let out = CellGrid::from_trajectories(&[Trajectory::from_indices([999, 1])]).unwrap();
        assert!(matches!(
            d.detect_prefixes(DetectInput::new(&chain, &out)),
            Err(CoreError::CellOutOfRange { .. })
        ));
        let grid = CellGrid::from_trajectories(&observed).unwrap();
        let no_tables: &[&LogLikelihoodTable] = &[];
        assert!(matches!(
            d.detect_prefixes(DetectInput::new(no_tables, &grid)),
            Err(CoreError::Markov(chaff_markov::MarkovError::Empty))
        ));
    }

    #[test]
    fn impossible_trajectories_stay_neg_infinity() {
        let m = chaff_markov::TransitionMatrix::from_rows(vec![vec![0.0, 1.0], vec![0.5, 0.5]])
            .unwrap();
        let chain = MarkovChain::new(m).unwrap();
        let impossible = Trajectory::from_indices([0, 0]); // P(0->0) = 0
        let possible = Trajectory::from_indices([0, 1]);
        let detections = BatchPrefixDetector::with_shards(2)
            .detect_prefixes(DetectInput::new(&chain, &[impossible, possible]))
            .unwrap();
        assert_eq!(detections[1].tie_set(), &[1]);
    }

    /// Every `(model, observations)` pairing a retired legacy entry
    /// point used to own must stay bit-for-bit equal to the canonical
    /// chain-over-trajectories request through the unified entry.
    #[test]
    fn every_detect_input_pairing_matches_the_unified_entry() {
        let (chain, observed) = fleet(70, 31, 9);
        let grid = CellGrid::from_trajectories(&observed).unwrap();
        let table = chain.log_likelihood_table();
        let d = BatchPrefixDetector::with_shards(3);
        let unified = d
            .detect_prefixes(DetectInput::new(&chain, &observed))
            .unwrap();
        assert_eq!(
            d.detect_prefixes(DetectInput::new(&table, &observed))
                .unwrap(),
            unified
        );
        assert_eq!(
            d.detect_prefixes(DetectInput::new(&[&table], &observed))
                .unwrap(),
            unified
        );
        assert_eq!(
            d.detect_prefixes(DetectInput::new(&chain, &grid)).unwrap(),
            unified
        );
        assert_eq!(
            d.detect_prefixes(DetectInput::new(&table, &grid)).unwrap(),
            unified
        );
        assert_eq!(
            d.detect_prefixes(DetectInput::new(&[&table], &grid))
                .unwrap(),
            unified
        );
    }

    #[test]
    fn schedule_model_reduces_to_registry_when_stationary() {
        // A one-epoch `Schedule` must be bit-for-bit the `Registry` view
        // for every observation representation — the batch-entry face of
        // the reduction-to-stationary guarantee.
        let (chain, observed) = fleet(74, 27, 11);
        let mut rng = StdRng::seed_from_u64(75);
        let other = MarkovChain::new(
            chaff_markov::models::ModelKind::SpatiallySkewed
                .build(10, &mut rng)
                .unwrap(),
        )
        .unwrap();
        let registry = MobilityRegistry::new(vec![chain, other]).unwrap();
        let grid = CellGrid::from_trajectories(&observed).unwrap();
        let d = BatchPrefixDetector::with_shards(3);
        let stationary = d
            .detect_prefixes(DetectInput::new(&registry, &grid))
            .unwrap();
        assert_eq!(
            d.detect_prefixes(DetectInput::new(
                DetectModel::Schedule(&registry),
                &observed
            ))
            .unwrap(),
            stationary
        );
        assert_eq!(
            d.detect_prefixes(DetectInput::new(DetectModel::Schedule(&registry), &grid))
                .unwrap(),
            stationary
        );
        let mut source = GridRowSource::new(&grid);
        assert_eq!(
            d.detect_prefixes(DetectInput::new(
                DetectModel::Schedule(&registry),
                &mut source
            ))
            .unwrap(),
            stationary
        );
    }

    #[test]
    fn schedule_model_scores_each_slot_under_its_epoch() {
        // A genuinely multi-epoch registry: the batch `Schedule` path
        // must match a hand-driven schedule-aware streaming detector for
        // every representation and shard count, and differ from the
        // stationary (epoch-0) view somewhere on the horizon.
        let (day, observed) = fleet(76, 33, 14);
        let mut rng = StdRng::seed_from_u64(77);
        let night = MarkovChain::new(
            chaff_markov::models::ModelKind::SpatiallySkewed
                .build(10, &mut rng)
                .unwrap(),
        )
        .unwrap();
        let schedule = chaff_markov::EpochSchedule::day_night(4, 3).unwrap();
        let registry = MobilityRegistry::with_epochs(
            vec![vec![day.clone()], vec![night.clone()]],
            schedule.clone(),
        )
        .unwrap();
        let grid = CellGrid::from_trajectories(&observed).unwrap();
        let mut online = super::super::StreamingPrefixDetector::with_schedule(
            registry.to_epoch_tables(),
            schedule,
            grid.num_trajectories(),
            1,
        )
        .unwrap();
        let reference: Vec<Detection> = (0..grid.horizon())
            .map(|t| online.push_slot(grid.row(t)).unwrap())
            .collect();
        for shards in [1, 2, 7] {
            let d = BatchPrefixDetector::with_shards(shards);
            assert_eq!(
                d.detect_prefixes(DetectInput::new(
                    DetectModel::Schedule(&registry),
                    &observed
                ))
                .unwrap(),
                reference,
                "trajectories, shards {shards}"
            );
            assert_eq!(
                d.detect_prefixes(DetectInput::new(DetectModel::Schedule(&registry), &grid))
                    .unwrap(),
                reference,
                "columnar, shards {shards}"
            );
            let mut source = GridRowSource::new(&grid);
            assert_eq!(
                d.detect_prefixes(DetectInput::new(
                    DetectModel::Schedule(&registry),
                    &mut source
                ))
                .unwrap(),
                reference,
                "paged, shards {shards}"
            );
        }
        let stationary = BatchPrefixDetector::with_shards(2)
            .detect_prefixes(DetectInput::new(&registry, &grid))
            .unwrap();
        assert_ne!(
            stationary, reference,
            "the night epoch never changed a detection"
        );
    }
}

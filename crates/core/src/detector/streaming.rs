//! Online (slot-at-a-time) prefix detection over a columnar stream.
//!
//! [`BatchPrefixDetector`](super::BatchPrefixDetector) consumes a finished
//! [`CellGrid`](chaff_markov::CellGrid): the whole fleet must be simulated
//! before the first detection. The paper's eavesdropper (eq. 11) is
//! inherently online — it observes one service row per slot and tracks in
//! real time. [`StreamingPrefixDetector`] is that adversary: feed it one
//! observation row per slot ([`push_slot`](StreamingPrefixDetector::push_slot))
//! and it returns the slot's [`Detection`] immediately, carrying only the
//! running cumulative-score state between slots.
//!
//! Both paths share one per-slot kernel
//! ([`advance_slot_single`](super::kernel::advance_slot_single) /
//! [`advance_slot_mixture`](super::kernel::advance_slot_mixture) in
//! [`kernel`]), so a streamed run is bit-for-bit the batch
//! run *by construction*: the same accumulator updates in the same order,
//! the same two-pass argmax over the refreshed scores, the same
//! cross-shard merge semantics. Multi-shard pushes dispatch onto the
//! process-wide [`pool`] — a per-slot push never spawns an
//! OS thread.
//!
//! State is `O(N · classes)` — independent of the horizon. The batch
//! path's per-shard maxima/tie concatenations (sized by the horizon)
//! never exist here; each slot's candidates are merged and discarded
//! before the next row arrives.

use super::{batch, kernel, Detection};
use crate::{loglik_cmp, pool, Result};
use chaff_markov::{CellId, EpochSchedule, LogLikelihoodTable};

/// Running per-column detection-accuracy feedback, accumulated from the
/// tie set of every slot with no extra pass over the scores: column `i`
/// gains `1 / |tie set|` mass whenever it appears in a slot's argmax set
/// (the expectation of the paper's "random guess among ties"), so
/// [`accuracy`](Self::accuracy) is exactly the column's time-average
/// detection accuracy over the slots recorded so far. Memory is one
/// `f64` per column — `O(N)`, independent of the horizon.
///
/// This is the defender-side view an adaptive chaff allocator consumes:
/// [`ranked`](Self::ranked) orders columns most-detected first, and when
/// accuracies tie — including the saturated case where every slot's
/// argmax ties across the whole population, giving every column equal
/// mass — it breaks ties deterministically towards the **lowest column
/// index**. Without that rule an adaptive budget loop could oscillate
/// run-to-run on tie order; with it, equal feedback always produces the
/// same ranking (pinned by test).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct AccuracyFeedback {
    /// Cumulative tie-set mass per observed column.
    mass: Vec<f64>,
    /// Slots recorded so far (the accuracy denominator).
    slots: usize,
}

impl AccuracyFeedback {
    /// An empty feedback accumulator over `num_services` observed
    /// columns.
    pub fn new(num_services: usize) -> Self {
        AccuracyFeedback {
            mass: vec![0.0; num_services],
            slots: 0,
        }
    }

    /// Builds the feedback a streaming detector would have accumulated
    /// over `detections` — the batch-path bridge: one pass over the tie
    /// sets, never a rescore of the trajectories.
    pub fn from_detections(num_services: usize, detections: &[Detection]) -> Self {
        let mut feedback = AccuracyFeedback::new(num_services);
        for detection in detections {
            feedback.record(detection);
        }
        feedback
    }

    /// Folds one slot's detection into the running mass.
    pub fn record(&mut self, detection: &Detection) {
        self.record_tie_set(detection.tie_set());
    }

    fn record_tie_set(&mut self, tie: &[usize]) {
        let share = 1.0 / tie.len() as f64;
        for &i in tie {
            self.mass[i] += share;
        }
        self.slots += 1;
    }

    /// Number of observed columns tracked.
    pub fn num_services(&self) -> usize {
        self.mass.len()
    }

    /// Slots recorded so far.
    pub fn slots(&self) -> usize {
        self.slots
    }

    /// Column `i`'s running time-average detection accuracy (0 before
    /// the first slot).
    pub fn accuracy(&self, column: usize) -> f64 {
        if self.slots == 0 {
            0.0
        } else {
            self.mass[column] / self.slots as f64
        }
    }

    /// All running accuracies, in column order.
    pub fn accuracies(&self) -> Vec<f64> {
        (0..self.mass.len()).map(|i| self.accuracy(i)).collect()
    }

    /// Columns ordered most-detected first; equal accuracies — including
    /// fully saturated ties — break towards the lowest column index, so
    /// the ranking is deterministic for every run with equal feedback.
    pub fn ranked(&self) -> Vec<usize> {
        let mut order: Vec<usize> = (0..self.mass.len()).collect();
        order.sort_by(|&a, &b| self.mass[b].total_cmp(&self.mass[a]).then(a.cmp(&b)));
        order
    }

    /// Bytes of running state: one `f64` of tie mass per column.
    pub fn state_bytes(&self) -> usize {
        self.mass.capacity() * 8
    }
}

/// Incremental maximum-likelihood prefix detector: one [`Detection`] per
/// pushed slot row, bit-for-bit equal to
/// [`BatchPrefixDetector::detect_prefixes`](super::BatchPrefixDetector::detect_prefixes)
/// over the columnar grid formed by the pushed rows, for every shard
/// count.
///
/// # Example
///
/// ```
/// use chaff_core::detector::{BatchPrefixDetector, DetectInput, StreamingPrefixDetector};
/// use chaff_markov::{models::ModelKind, CellGrid, MarkovChain};
/// use rand::{rngs::StdRng, SeedableRng};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut rng = StdRng::seed_from_u64(5);
/// let chain = MarkovChain::new(ModelKind::NonSkewed.build(10, &mut rng)?)?;
/// let observed: Vec<_> = (0..32).map(|_| chain.sample_trajectory(20, &mut rng)).collect();
/// let grid = CellGrid::from_trajectories(&observed)?;
///
/// let batch = BatchPrefixDetector::new().detect_prefixes(DetectInput::new(&chain, &grid))?;
/// let mut online = StreamingPrefixDetector::new(vec![chain.log_likelihood_table()], 32)?;
/// for t in 0..grid.horizon() {
///     assert_eq!(online.push_slot(grid.row(t))?, batch[t]);
/// }
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct StreamingPrefixDetector {
    /// Epoch-major table storage: `epoch_tables[epoch]` holds one table
    /// per mobility-model class (generalized-likelihood-ratio detection:
    /// best class per prefix). Stationary detectors hold exactly one
    /// epoch. Owned, so the detector can be embedded in long-lived
    /// engines without borrowing the model.
    epoch_tables: Vec<Vec<LogLikelihoodTable>>,
    /// The slot → epoch map; `slots_seen` is the epoch clock, so the
    /// tables scoring the arrival at slot `s` are
    /// `epoch_tables[schedule.epoch_of(s)]`.
    schedule: EpochSchedule,
    states: usize,
    population: usize,
    top_k: usize,
    /// Contiguous index shards, each owning its slice of the running
    /// class-major accumulator block.
    lanes: Vec<ShardLane>,
    /// The previous slot's row (empty before the first push) — the only
    /// observation history the detector keeps.
    prev_row: Vec<CellId>,
    slots_seen: usize,
    /// Global top-k of the most recent slot (empty when `top_k == 0`).
    last_top: Vec<usize>,
    /// Opt-in running per-column accuracy feedback (see
    /// [`with_feedback`](StreamingPrefixDetector::with_feedback)).
    feedback: Option<AccuracyFeedback>,
}

/// One shard's running state: the index range it owns, the cumulative
/// score accumulators for every `(trajectory, class)` lane in that range,
/// and the reusable per-slot scratch its shard pass writes into — owning
/// the scratch keeps the steady-state push loop allocation-free.
#[derive(Debug, Clone)]
struct ShardLane {
    lo: usize,
    hi: usize,
    /// Class-major accumulator block: `accs[k * width + j]` is trajectory
    /// `lo + j`'s running score under class `k` (`width == hi - lo`;
    /// single-class layouts collapse to `accs[j]`) — the layout the
    /// mixture kernel advances one contiguous class block at a time.
    accs: Vec<f64>,
    /// Per-trajectory best-class scores of the current slot (mixture
    /// only; empty — and unused — for single-class layouts, where `accs`
    /// already *is* the per-trajectory score row).
    scores: Vec<f64>,
    /// The slot's shard-local exact maximum (reset every push).
    best: f64,
    /// Argmax candidates `(global index, score)`, ascending by index
    /// (reset every push, capacity retained).
    candidates: Vec<(u32, f64)>,
    /// Shard-local top-k `(index, score)`, best first (reset every push,
    /// capacity retained).
    top: Vec<(u32, f64)>,
}

impl StreamingPrefixDetector {
    /// Creates a detector for `population` concurrent services scored
    /// against `tables` (one per mobility-model class), sizing its shard
    /// count from `std::thread::available_parallelism`.
    ///
    /// # Errors
    ///
    /// Returns [`MarkovError::Empty`](chaff_markov::MarkovError::Empty)
    /// when no tables are supplied,
    /// [`MarkovError::DimensionMismatch`](chaff_markov::MarkovError::DimensionMismatch)
    /// when the class tables disagree on the cell space,
    /// [`CoreError::NoTrajectories`](crate::CoreError::NoTrajectories)
    /// for an empty population and
    /// [`CoreError::PopulationTooLarge`](crate::CoreError::PopulationTooLarge)
    /// past [`MAX_POPULATION`](super::MAX_POPULATION).
    pub fn new(tables: Vec<LogLikelihoodTable>, population: usize) -> Result<Self> {
        let shards = std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1);
        Self::with_shards(tables, population, shards)
    }

    /// [`new`](Self::new) with a pinned shard count (clamped to at least
    /// one). Detections are identical for every shard count; this only
    /// controls parallelism.
    ///
    /// # Errors
    ///
    /// Same errors as [`new`](Self::new).
    pub fn with_shards(
        tables: Vec<LogLikelihoodTable>,
        population: usize,
        shards: usize,
    ) -> Result<Self> {
        Self::with_schedule(
            vec![tables],
            EpochSchedule::stationary(),
            population,
            shards,
        )
    }

    /// Creates a schedule-aware detector: `epoch_tables[epoch]` holds one
    /// table per mobility-model class, and the arrival at pushed slot `s`
    /// is scored under `epoch_tables[schedule.epoch_of(s)]`. A one-epoch
    /// schedule is bit-for-bit [`with_shards`](Self::with_shards) — this
    /// *is* the stationary code path, uniformly represented.
    ///
    /// # Errors
    ///
    /// The errors of [`new`](Self::new), plus
    /// [`MarkovError::LengthMismatch`](chaff_markov::MarkovError::LengthMismatch)
    /// when `epoch_tables` does not cover `schedule.num_epochs()` or the
    /// epochs disagree on the class count.
    pub fn with_schedule(
        epoch_tables: Vec<Vec<LogLikelihoodTable>>,
        schedule: EpochSchedule,
        population: usize,
        shards: usize,
    ) -> Result<Self> {
        let first_epoch = epoch_tables
            .first()
            .ok_or(crate::CoreError::Markov(chaff_markov::MarkovError::Empty))?;
        let first = first_epoch
            .first()
            .ok_or(crate::CoreError::Markov(chaff_markov::MarkovError::Empty))?;
        if epoch_tables.len() != schedule.num_epochs() {
            return Err(crate::CoreError::Markov(
                chaff_markov::MarkovError::LengthMismatch {
                    expected: schedule.num_epochs(),
                    found: epoch_tables.len(),
                },
            ));
        }
        let classes = first_epoch.len();
        let states = first.num_states();
        for tables in &epoch_tables {
            if tables.len() != classes {
                return Err(crate::CoreError::Markov(
                    chaff_markov::MarkovError::LengthMismatch {
                        expected: classes,
                        found: tables.len(),
                    },
                ));
            }
            for table in tables {
                if table.num_states() != states {
                    return Err(crate::CoreError::Markov(
                        chaff_markov::MarkovError::DimensionMismatch {
                            expected: states,
                            found: table.num_states(),
                        },
                    ));
                }
            }
        }
        if population == 0 {
            return Err(crate::CoreError::NoTrajectories);
        }
        batch::ensure_population_fits(population)?;
        // The same contiguous chunking as the batch scaffold, so each
        // trajectory's accumulator lives on exactly one shard.
        let shards = shards.max(1).clamp(1, population);
        let chunk = population.div_ceil(shards);
        let lanes = (0..shards)
            .map(|s| (s * chunk, ((s + 1) * chunk).min(population)))
            .filter(|&(lo, hi)| lo < hi)
            .map(|(lo, hi)| ShardLane {
                lo,
                hi,
                accs: vec![0.0f64; (hi - lo) * classes],
                scores: if classes > 1 {
                    vec![0.0f64; hi - lo]
                } else {
                    Vec::new()
                },
                best: f64::NEG_INFINITY,
                candidates: Vec::new(),
                top: Vec::new(),
            })
            .collect();
        Ok(StreamingPrefixDetector {
            epoch_tables,
            schedule,
            states,
            population,
            top_k: 0,
            lanes,
            prev_row: Vec::new(),
            slots_seen: 0,
            last_top: Vec::new(),
            feedback: None,
        })
    }

    /// Enables per-slot global top-`k` ranking alongside the argmax
    /// detection (retrieve with [`last_top_k`](Self::last_top_k)).
    pub fn with_top_k(mut self, k: usize) -> Self {
        self.top_k = k.min(self.population);
        self
    }

    /// Enables the running [`AccuracyFeedback`] view: every pushed slot
    /// folds its tie set into a per-column accuracy accumulator, `O(N)`
    /// extra memory and `O(|tie set|)` extra work per slot — no second
    /// pass over the scores. Retrieve with
    /// [`feedback`](Self::feedback).
    pub fn with_feedback(mut self) -> Self {
        self.feedback = Some(AccuracyFeedback::new(self.population));
        self
    }

    /// The running accuracy feedback, when enabled with
    /// [`with_feedback`](Self::with_feedback).
    pub fn feedback(&self) -> Option<&AccuracyFeedback> {
        self.feedback.as_ref()
    }

    /// Number of concurrent services the detector scores.
    pub fn population(&self) -> usize {
        self.population
    }

    /// Number of mobility-model classes (tables per epoch).
    pub fn num_classes(&self) -> usize {
        self.epoch_tables[0].len()
    }

    /// Number of epochs (1 for stationary detectors).
    pub fn num_epochs(&self) -> usize {
        self.epoch_tables.len()
    }

    /// The slot → epoch map driving table selection
    /// ([`EpochSchedule::stationary`] unless built with
    /// [`with_schedule`](Self::with_schedule)).
    pub fn schedule(&self) -> &EpochSchedule {
        &self.schedule
    }

    /// Number of slot rows pushed so far.
    pub fn slots_seen(&self) -> usize {
        self.slots_seen
    }

    /// Bytes of horizon-independent running state: the accumulator block
    /// (`8 · N · classes`), the mixture best-class score row (`8 · N`,
    /// absent for single-class layouts), the previous slot row
    /// (`4 · N`), and — when enabled — the accuracy-feedback mass
    /// (`8 · N`). This is the detector's whole memory of the stream — it
    /// does not grow with the number of slots pushed.
    pub fn state_bytes(&self) -> usize {
        let accs: usize = self
            .lanes
            .iter()
            .map(|l| (l.accs.len() + l.scores.len()) * 8)
            .sum();
        let feedback = self
            .feedback
            .as_ref()
            .map_or(0, AccuracyFeedback::state_bytes);
        accs + self.prev_row.capacity() * 4 + feedback
    }

    /// The most recent slot's global top-k service indices, best first
    /// (ties towards the lower index); empty before the first push or
    /// when top-k is disabled.
    pub fn last_top_k(&self) -> &[usize] {
        &self.last_top
    }

    /// Consumes one slot row (the observed cell of every service at this
    /// slot, in service order) and returns the slot's detection.
    ///
    /// The row is validated *before* any accumulator is touched, so a
    /// failed push leaves the detector exactly as it was — the stream can
    /// be resumed or abandoned with a clean partial result, never a
    /// poisoned engine.
    ///
    /// # Errors
    ///
    /// Returns
    /// [`CoreError::LengthMismatch`](crate::CoreError::LengthMismatch)
    /// when the row does not cover the population and
    /// [`CoreError::CellOutOfRange`](crate::CoreError::CellOutOfRange)
    /// when any cell falls outside the model's state space.
    pub fn push_slot(&mut self, row: &[CellId]) -> Result<Detection> {
        if row.len() != self.population {
            return Err(crate::CoreError::LengthMismatch {
                expected: self.population,
                found: row.len(),
            });
        }
        // Full-row range check up front: the shared kernels check again
        // (they are the batch inner loop, verbatim), but by then half the
        // accumulators could have advanced — this pass makes failure
        // atomic.
        for &cell in row {
            if cell.index() >= self.states {
                return Err(crate::CoreError::CellOutOfRange {
                    cell: cell.index(),
                    states: self.states,
                });
            }
        }
        let prev = if self.slots_seen == 0 {
            None
        } else {
            Some(self.prev_row.as_slice())
        };
        // The epoch clock is the slot counter: the arrival at slot
        // `slots_seen` is scored under that slot's epoch tables. A
        // stationary schedule always selects epoch 0.
        let tables = self.epoch_tables[self.schedule.epoch_of(self.slots_seen)].as_slice();
        let top_k = self.top_k;
        if self.lanes.len() <= 1 {
            for lane in self.lanes.iter_mut() {
                advance_lane(tables, lane, row, prev, top_k)?;
            }
        } else {
            // Dispatch the shard passes onto the process-wide worker pool
            // (no per-push thread spawns); the pool scope re-raises shard
            // panics lowest index first, and errors are collected in
            // shard order — the batch scaffold's semantics.
            let mut slots: Vec<Option<Result<()>>> = self.lanes.iter().map(|_| None).collect();
            pool::global().scope(|scope| {
                for (lane, slot) in self.lanes.iter_mut().zip(slots.iter_mut()) {
                    scope.spawn(move || *slot = Some(advance_lane(tables, lane, row, prev, top_k)));
                }
            });
            for slot in slots {
                slot.expect("pool scope ran every shard lane")?;
            }
        }
        // Cross-shard merge: exact global max first, tolerance filter
        // second, shards visited in index order — `merge_detections` for
        // a single slot.
        let mut best = f64::NEG_INFINITY;
        for lane in &self.lanes {
            if lane.best > best {
                best = lane.best;
            }
        }
        let mut tie_set = Vec::new();
        for lane in &self.lanes {
            for &(i, s) in &lane.candidates {
                if loglik_cmp(s, best).is_eq() {
                    tie_set.push(i as usize);
                }
            }
        }
        if self.top_k > 0 {
            let mut merged: Vec<(u32, f64)> = Vec::new();
            for lane in &self.lanes {
                merged.extend_from_slice(&lane.top);
            }
            merged.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
            merged.truncate(self.top_k);
            self.last_top.clear();
            self.last_top
                .extend(merged.iter().map(|&(i, _)| i as usize));
        }
        if let Some(feedback) = &mut self.feedback {
            feedback.record_tie_set(&tie_set);
        }
        self.prev_row.clear();
        self.prev_row.extend_from_slice(row);
        self.slots_seen += 1;
        Ok(Detection::new(tie_set))
    }
}

/// Advances one shard by one slot through the shared vectorized kernel
/// and extracts the slot's argmax candidates (and optional top-k) from
/// the refreshed accumulators into the lane's reusable scratch.
fn advance_lane(
    tables: &[LogLikelihoodTable],
    lane: &mut ShardLane,
    row: &[CellId],
    prev: Option<&[CellId]>,
    top_k: usize,
) -> Result<()> {
    lane.best = f64::NEG_INFINITY;
    lane.candidates.clear();
    lane.top.clear();
    let shard_row = &row[lane.lo..lane.hi];
    let shard_prev = prev.map(|p| &p[lane.lo..lane.hi]);
    // Dispatch exactly like the batch entry point: one table runs the
    // single-table kernel, several run the mixture kernel.
    if tables.len() == 1 {
        kernel::advance_slot_single(
            &tables[0],
            lane.lo,
            shard_row,
            shard_prev,
            &mut lane.accs,
            &mut lane.best,
            &mut lane.candidates,
        )?;
    } else {
        kernel::advance_slot_mixture(
            tables,
            lane.lo,
            shard_row,
            shard_prev,
            &mut lane.accs,
            &mut lane.scores,
            &mut lane.best,
            &mut lane.candidates,
        )?;
    }
    if top_k > 0 {
        // The per-trajectory score row the kernel just refreshed: the
        // accumulators themselves for one class, the materialized
        // best-class row for a mixture.
        let scores = if tables.len() == 1 {
            &lane.accs
        } else {
            &lane.scores
        };
        for (j, &score) in scores.iter().enumerate() {
            batch::insert_top_k(
                &mut lane.top,
                0,
                top_k,
                batch::service_index(lane.lo, j),
                score,
            );
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::detector::BatchPrefixDetector;
    use crate::CoreError;
    use chaff_markov::models::ModelKind;
    use chaff_markov::{CellGrid, MarkovChain, Trajectory};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn fleet(seed: u64, n: usize, horizon: usize) -> (MarkovChain, CellGrid) {
        let mut rng = StdRng::seed_from_u64(seed);
        let chain = MarkovChain::new(ModelKind::NonSkewed.build(10, &mut rng).unwrap()).unwrap();
        let observed: Vec<Trajectory> = (0..n)
            .map(|_| chain.sample_trajectory(horizon, &mut rng))
            .collect();
        let grid = CellGrid::from_trajectories(&observed).unwrap();
        (chain, grid)
    }

    fn two_class_grid(seed: u64, horizon: usize) -> (MarkovChain, MarkovChain, CellGrid) {
        let mut rng = StdRng::seed_from_u64(seed);
        let a = MarkovChain::new(ModelKind::NonSkewed.build(10, &mut rng).unwrap()).unwrap();
        let b = MarkovChain::new(ModelKind::SpatiallySkewed.build(10, &mut rng).unwrap()).unwrap();
        let mut observed: Vec<Trajectory> = (0..23)
            .map(|_| a.sample_trajectory(horizon, &mut rng))
            .collect();
        observed.extend((0..18).map(|_| b.sample_trajectory(horizon, &mut rng)));
        let grid = CellGrid::from_trajectories(&observed).unwrap();
        (a, b, grid)
    }

    #[test]
    fn streamed_detections_match_batch_bit_for_bit() {
        let (chain, grid) = fleet(61, 137, 23);
        let reference = BatchPrefixDetector::with_shards(1)
            .detect_prefixes(crate::detector::DetectInput::new(&chain, &grid))
            .unwrap();
        for shards in [1, 2, 7, 137, 500] {
            let mut online = StreamingPrefixDetector::with_shards(
                vec![chain.log_likelihood_table()],
                grid.num_trajectories(),
                shards,
            )
            .unwrap();
            for (t, expected) in reference.iter().enumerate() {
                let detection = online.push_slot(grid.row(t)).unwrap();
                assert_eq!(&detection, expected, "slot {t}, shards {shards}");
            }
            assert_eq!(online.slots_seen(), grid.horizon());
        }
    }

    #[test]
    fn streamed_mixture_matches_batch_mixture_bit_for_bit() {
        let (a, b, grid) = two_class_grid(62, 15);
        let (ta, tb) = (a.log_likelihood_table(), b.log_likelihood_table());
        let reference = BatchPrefixDetector::with_shards(1)
            .detect_prefixes(crate::detector::DetectInput::new(&[&ta, &tb], &grid))
            .unwrap();
        for shards in [1, 2, 7, 41] {
            let mut online = StreamingPrefixDetector::with_shards(
                vec![ta.clone(), tb.clone()],
                grid.num_trajectories(),
                shards,
            )
            .unwrap();
            for (t, expected) in reference.iter().enumerate() {
                let detection = online.push_slot(grid.row(t)).unwrap();
                assert_eq!(&detection, expected, "slot {t}, shards {shards}");
            }
        }
    }

    #[test]
    fn streamed_top_k_matches_the_batch_ranking() {
        let (chain, grid) = fleet(63, 29, 9);
        let observed = grid.to_trajectories();
        let scores = BatchPrefixDetector::with_shards(4)
            .score_prefixes(&chain, &observed, 5)
            .unwrap();
        let mut online = StreamingPrefixDetector::with_shards(
            vec![chain.log_likelihood_table()],
            grid.num_trajectories(),
            3,
        )
        .unwrap()
        .with_top_k(5);
        assert!(online.last_top_k().is_empty());
        for t in 0..grid.horizon() {
            online.push_slot(grid.row(t)).unwrap();
            assert_eq!(online.last_top_k(), scores.top_k_at(t), "slot {t}");
        }
    }

    #[test]
    fn state_is_horizon_independent() {
        let (chain, grid) = fleet(64, 50, 40);
        let mut online =
            StreamingPrefixDetector::with_shards(vec![chain.log_likelihood_table()], 50, 2)
                .unwrap();
        online.push_slot(grid.row(0)).unwrap();
        let after_one = online.state_bytes();
        for t in 1..grid.horizon() {
            online.push_slot(grid.row(t)).unwrap();
        }
        assert_eq!(online.state_bytes(), after_one);
        // 8 bytes of accumulator + 4 bytes of previous row per service.
        assert_eq!(after_one, 50 * 8 + 50 * 4);
    }

    #[test]
    fn streamed_feedback_matches_the_batch_bridge() {
        // The opt-in running feedback must equal what the batch bridge
        // reconstructs from the same detections — for every shard count.
        let (chain, grid) = fleet(71, 41, 17);
        let reference = BatchPrefixDetector::with_shards(2)
            .detect_prefixes(crate::detector::DetectInput::new(&chain, &grid))
            .unwrap();
        let bridged = AccuracyFeedback::from_detections(grid.num_trajectories(), &reference);
        for shards in [1, 3, 41] {
            let mut online = StreamingPrefixDetector::with_shards(
                vec![chain.log_likelihood_table()],
                grid.num_trajectories(),
                shards,
            )
            .unwrap()
            .with_feedback();
            for t in 0..grid.horizon() {
                online.push_slot(grid.row(t)).unwrap();
            }
            let feedback = online.feedback().unwrap();
            assert_eq!(feedback, &bridged, "shards {shards}");
            assert_eq!(feedback.slots(), grid.horizon());
            // The per-column accuracies are the columns' time-average
            // detection accuracies: they sum to 1 per slot.
            let total: f64 = feedback.accuracies().iter().sum();
            assert!((total - 1.0).abs() < 1e-9, "total mass {total}");
        }
    }

    #[test]
    fn feedback_state_is_horizon_independent_and_opt_in() {
        let (chain, grid) = fleet(72, 50, 30);
        let mut online =
            StreamingPrefixDetector::with_shards(vec![chain.log_likelihood_table()], 50, 2)
                .unwrap()
                .with_feedback();
        online.push_slot(grid.row(0)).unwrap();
        let after_one = online.state_bytes();
        for t in 1..grid.horizon() {
            online.push_slot(grid.row(t)).unwrap();
        }
        assert_eq!(online.state_bytes(), after_one);
        // The plain detector's 8 + 4 bytes per service, plus 8 bytes of
        // feedback mass per column.
        assert_eq!(after_one, 50 * 8 + 50 * 4 + 50 * 8);
    }

    #[test]
    fn saturated_ties_rank_by_lowest_column_index() {
        // When every slot's argmax ties across the whole population —
        // e.g. all services glued to one cell under a deterministic-ish
        // row — every column accumulates identical mass, and the ranking
        // must deterministically prefer the lowest index (the pinned
        // tie-break that keeps adaptive budget loops from oscillating on
        // tie order).
        let mut rng = StdRng::seed_from_u64(73);
        let chain = MarkovChain::new(ModelKind::NonSkewed.build(10, &mut rng).unwrap()).unwrap();
        let mut online =
            StreamingPrefixDetector::with_shards(vec![chain.log_likelihood_table()], 6, 3)
                .unwrap()
                .with_feedback();
        for t in 0..9 {
            // All six services share one cell per slot: identical scores,
            // a full tie, every slot.
            let row = vec![chaff_markov::CellId::new(t % 10); 6];
            let detection = online.push_slot(&row).unwrap();
            assert_eq!(detection.tie_set(), &[0, 1, 2, 3, 4, 5]);
        }
        let feedback = online.feedback().unwrap();
        for i in 0..6 {
            assert!((feedback.accuracy(i) - 1.0 / 6.0).abs() < 1e-12);
        }
        assert_eq!(feedback.ranked(), vec![0, 1, 2, 3, 4, 5]);
        // Distinct masses still rank by accuracy first.
        let skewed = AccuracyFeedback::from_detections(
            3,
            &[
                Detection::new(vec![2]),
                Detection::new(vec![2]),
                Detection::new(vec![0, 1]),
            ],
        );
        assert_eq!(skewed.ranked(), vec![2, 0, 1]);
    }

    #[test]
    fn empty_feedback_reports_zero_accuracy() {
        let feedback = AccuracyFeedback::new(4);
        assert_eq!(feedback.num_services(), 4);
        assert_eq!(feedback.slots(), 0);
        assert_eq!(feedback.accuracy(2), 0.0);
        assert_eq!(feedback.ranked(), vec![0, 1, 2, 3]);
    }

    #[test]
    fn schedule_selects_the_slot_active_tables() {
        // A 2-epoch schedule holding the SAME table in both epochs is
        // bit-for-bit the stationary detector (the epoch machinery adds
        // nothing); holding genuinely different tables, the detector must
        // score day slots under the day table — checked by comparing
        // against a hand-rolled per-slot re-dispatch.
        let (chain, grid) = fleet(81, 19, 12);
        let mut rng = StdRng::seed_from_u64(82);
        let other =
            MarkovChain::new(ModelKind::SpatiallySkewed.build(10, &mut rng).unwrap()).unwrap();
        let (table, other_table) = (chain.log_likelihood_table(), other.log_likelihood_table());
        let schedule = EpochSchedule::day_night(3, 2).unwrap();

        let mut stationary =
            StreamingPrefixDetector::with_shards(vec![table.clone()], 19, 3).unwrap();
        let mut duplicated = StreamingPrefixDetector::with_schedule(
            vec![vec![table.clone()], vec![table.clone()]],
            schedule.clone(),
            19,
            3,
        )
        .unwrap();
        let mut varying = StreamingPrefixDetector::with_schedule(
            vec![vec![table.clone()], vec![other_table.clone()]],
            schedule.clone(),
            19,
            3,
        )
        .unwrap();
        assert_eq!(varying.num_epochs(), 2);
        assert_eq!(varying.num_classes(), 1);
        assert_eq!(varying.schedule(), &schedule);

        // Reference for the varying detector: score each slot with the
        // epoch-active single table by hand.
        let mut accs = vec![0.0f64; 19];
        let mut diverged = false;
        for t in 0..grid.horizon() {
            let expect_dup = stationary.push_slot(grid.row(t)).unwrap();
            assert_eq!(duplicated.push_slot(grid.row(t)).unwrap(), expect_dup);

            let active = if schedule.epoch_of(t) == 0 {
                &table
            } else {
                &other_table
            };
            for (j, acc) in accs.iter_mut().enumerate() {
                let now = grid.row(t)[j];
                let prev = (t > 0).then(|| grid.row(t - 1)[j]);
                *acc += active.step(prev, now);
            }
            let best = accs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            let tie: Vec<usize> = (0..19)
                .filter(|&j| loglik_cmp(accs[j], best).is_eq())
                .collect();
            let got = varying.push_slot(grid.row(t)).unwrap();
            assert_eq!(got.tie_set(), &tie[..], "slot {t}");
            if got != expect_dup {
                diverged = true;
            }
        }
        // The night table genuinely changes detections on this fixture.
        assert!(diverged, "epoch tables never changed a detection");
    }

    #[test]
    fn with_schedule_validates_epoch_shapes() {
        let (chain, _) = fleet(83, 4, 3);
        let table = chain.log_likelihood_table();
        let two = EpochSchedule::day_night(1, 1).unwrap();
        assert!(matches!(
            StreamingPrefixDetector::with_schedule(vec![vec![table.clone()]], two.clone(), 4, 1),
            Err(CoreError::Markov(
                chaff_markov::MarkovError::LengthMismatch {
                    expected: 2,
                    found: 1
                }
            ))
        ));
        assert!(matches!(
            StreamingPrefixDetector::with_schedule(
                vec![vec![table.clone(), table.clone()], vec![table.clone()]],
                two,
                4,
                1
            ),
            Err(CoreError::Markov(
                chaff_markov::MarkovError::LengthMismatch {
                    expected: 2,
                    found: 1
                }
            ))
        ));
        assert!(matches!(
            StreamingPrefixDetector::with_schedule(
                vec![Vec::new()],
                EpochSchedule::stationary(),
                4,
                1
            ),
            Err(CoreError::Markov(chaff_markov::MarkovError::Empty))
        ));
    }

    #[test]
    fn rejects_invalid_construction() {
        let (chain, _) = fleet(65, 4, 3);
        assert!(matches!(
            StreamingPrefixDetector::new(vec![], 4),
            Err(CoreError::Markov(chaff_markov::MarkovError::Empty))
        ));
        assert!(matches!(
            StreamingPrefixDetector::new(vec![chain.log_likelihood_table()], 0),
            Err(CoreError::NoTrajectories)
        ));
        let mut rng = StdRng::seed_from_u64(66);
        let other = MarkovChain::new(ModelKind::NonSkewed.build(7, &mut rng).unwrap()).unwrap();
        assert!(matches!(
            StreamingPrefixDetector::new(
                vec![chain.log_likelihood_table(), other.log_likelihood_table()],
                4
            ),
            Err(CoreError::Markov(
                chaff_markov::MarkovError::DimensionMismatch {
                    expected: 10,
                    found: 7
                }
            ))
        ));
    }

    #[test]
    fn failed_pushes_leave_the_detector_unpoisoned() {
        let (chain, grid) = fleet(67, 12, 8);
        let make = || {
            StreamingPrefixDetector::with_shards(vec![chain.log_likelihood_table()], 12, 3).unwrap()
        };
        let mut clean = make();
        let mut poked = make();
        let mut bad_row = grid.row(0).to_vec();
        bad_row[7] = chaff_markov::CellId::new(999);
        for t in 0..grid.horizon() {
            // A wrong-arity row and an out-of-range row both fail...
            assert!(matches!(
                poked.push_slot(&grid.row(t)[..5]),
                Err(CoreError::LengthMismatch {
                    expected: 12,
                    found: 5
                })
            ));
            assert!(matches!(
                poked.push_slot(&bad_row),
                Err(CoreError::CellOutOfRange { cell: 999, .. })
            ));
            // ...without perturbing the stream: both detectors keep
            // producing identical detections.
            let expected = clean.push_slot(grid.row(t)).unwrap();
            let got = poked.push_slot(grid.row(t)).unwrap();
            assert_eq!(got, expected, "slot {t}");
        }
        assert_eq!(poked.slots_seen(), grid.horizon());
    }
}

//! The strategy-aware advanced eavesdropper (Sec. VI-A): recognizes and
//! discards trajectories the user's chaff strategy would have produced.

use super::{ml::full_log_likelihoods, Detection, MlDetector};
use crate::strategy::ChaffStrategy;
use crate::Result;
use chaff_markov::{MarkovChain, Trajectory};

/// The advanced eavesdropper: aware of the chaff-control strategy
/// (Sec. VI-A).
///
/// For a deterministic strategy with map `Γ`, the eavesdropper computes
/// `Γ(x)` for every observed trajectory `x` and *ignores* any trajectory
/// `x' ≠ x` with `x' = Γ(x)` — it must be a chaff manufactured for some
/// candidate user trajectory. ML detection then runs on the survivors; if
/// everything is filtered out, the eavesdropper falls back to a uniform
/// random guess over all trajectories.
///
/// This detector defeats the deterministic strategies almost surely (the
/// user is mis-tracked only in the measure-zero event that the user
/// happens to walk `Γ` of a chaff, Sec. VI-A3) — which is precisely why
/// the robust randomized variants exist. Against a randomized strategy the
/// filter almost never fires and the detector degrades to plain ML.
///
/// # Example
///
/// ```
/// use chaff_core::detector::AdvancedDetector;
/// use chaff_core::strategy::{ChaffStrategy, MlStrategy};
/// use chaff_markov::{models::ModelKind, MarkovChain};
/// use rand::{rngs::StdRng, SeedableRng};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut rng = StdRng::seed_from_u64(9);
/// let chain = MarkovChain::new(ModelKind::NonSkewed.build(8, &mut rng)?)?;
/// let user = chain.sample_trajectory(30, &mut rng);
/// let chaffs = MlStrategy.generate(&chain, &user, 1, &mut rng)?;
/// let mut observed = vec![user];
/// observed.extend(chaffs);
///
/// // Knowing the ML strategy, the eavesdropper filters the chaff out and
/// // tracks the user exactly.
/// let detector = AdvancedDetector::new(&MlStrategy);
/// let d = detector.detect(&chain, &observed)?;
/// assert_eq!(d.tie_set(), &[0]);
/// # Ok(())
/// # }
/// ```
pub struct AdvancedDetector<'a> {
    strategy: &'a dyn ChaffStrategy,
}

impl<'a> AdvancedDetector<'a> {
    /// Creates a detector that knows `strategy` (and its tie-breakers).
    pub fn new(strategy: &'a dyn ChaffStrategy) -> Self {
        AdvancedDetector { strategy }
    }

    /// The indices of observed trajectories that survive the strategy
    /// filter. Empty result means everything was filtered (the caller
    /// falls back to a random guess over all indices).
    pub fn surviving_candidates(&self, chain: &MarkovChain, observed: &[Trajectory]) -> Vec<usize> {
        let maps: Vec<Option<Trajectory>> = observed
            .iter()
            .map(|x| self.strategy.deterministic_map(chain, x))
            .collect();
        Self::surviving_from_maps(observed, &maps)
    }

    /// The filter stage with precomputed strategy maps: `maps[v]` must be
    /// `Γ(observed[v])` (or `None` for randomized strategies).
    ///
    /// Computing `Γ` dominates the advanced eavesdropper's cost on large
    /// trace models (the OO map is a full dynamic program per trajectory),
    /// so evaluation code caches the maps of the unchanging trace pool and
    /// calls this directly.
    ///
    /// # Panics
    ///
    /// Panics if `maps` and `observed` have different lengths.
    pub fn surviving_from_maps(observed: &[Trajectory], maps: &[Option<Trajectory>]) -> Vec<usize> {
        assert_eq!(observed.len(), maps.len(), "one map per observation");
        let n = observed.len();
        let mut ignored = vec![false; n];
        for (v, map) in maps.iter().enumerate() {
            let Some(gamma_v) = map else { continue };
            for (u, x_u) in observed.iter().enumerate() {
                if u != v && x_u == gamma_v {
                    ignored[u] = true;
                }
            }
        }
        (0..n).filter(|&u| !ignored[u]).collect()
    }

    /// Detects over full trajectories.
    ///
    /// # Errors
    ///
    /// Same validation errors as [`MlDetector::detect`].
    pub fn detect(&self, chain: &MarkovChain, observed: &[Trajectory]) -> Result<Detection> {
        // Validate once via the score computation.
        let scores = full_log_likelihoods(chain, observed)?;
        let candidates = self.surviving_candidates(chain, observed);
        if candidates.is_empty() {
            // Everything filtered: uniform random guess over all.
            return Ok(Detection::new((0..observed.len()).collect()));
        }
        Ok(Detection::new(super::argmax_set(
            &scores,
            Some(&candidates),
        )))
    }

    /// Detects once per slot over trajectory prefixes, with the strategy
    /// filter applied to the full trajectories.
    ///
    /// The filter is structural (it identifies manufactured trajectories),
    /// so it is computed once; the ML race among survivors is then tracked
    /// per slot exactly as for the basic eavesdropper.
    ///
    /// # Errors
    ///
    /// Same validation errors as [`MlDetector::detect`].
    pub fn detect_prefixes(
        &self,
        chain: &MarkovChain,
        observed: &[Trajectory],
    ) -> Result<Vec<Detection>> {
        full_log_likelihoods(chain, observed)?; // validation only
        let candidates = self.surviving_candidates(chain, observed);
        if candidates.is_empty() {
            let horizon = observed[0].len();
            let all: Vec<usize> = (0..observed.len()).collect();
            return Ok(vec![Detection::new(all); horizon]);
        }
        MlDetector.detect_prefixes_among(chain, observed, Some(&candidates))
    }
}

impl std::fmt::Debug for AdvancedDetector<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AdvancedDetector")
            .field("strategy", &self.strategy.name())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::{ImStrategy, MlStrategy, MoStrategy, OoStrategy, RmlStrategy};
    use chaff_markov::models::ModelKind;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup(seed: u64) -> (MarkovChain, Trajectory) {
        let mut rng = StdRng::seed_from_u64(seed);
        let chain = MarkovChain::new(ModelKind::NonSkewed.build(10, &mut rng).unwrap()).unwrap();
        let user = chain.sample_trajectory(40, &mut rng);
        (chain, user)
    }

    #[test]
    fn defeats_deterministic_ml_strategy() {
        let (chain, user) = setup(91);
        let mut rng = StdRng::seed_from_u64(92);
        let chaffs = MlStrategy.generate(&chain, &user, 3, &mut rng).unwrap();
        let mut observed = vec![user];
        observed.extend(chaffs);
        let detector = AdvancedDetector::new(&MlStrategy);
        let d = detector.detect(&chain, &observed).unwrap();
        assert_eq!(d.tie_set(), &[0], "user must be identified");
    }

    #[test]
    fn defeats_deterministic_oo_and_mo() {
        let mut rng = StdRng::seed_from_u64(93);
        for strategy in [&OoStrategy as &dyn ChaffStrategy, &MoStrategy] {
            let (chain, user) = setup(94);
            let chaffs = strategy.generate(&chain, &user, 1, &mut rng).unwrap();
            let mut observed = vec![user];
            observed.extend(chaffs);
            let detector = AdvancedDetector::new(strategy);
            let d = detector.detect(&chain, &observed).unwrap();
            assert_eq!(d.tie_set(), &[0], "{}", strategy.name());
        }
    }

    #[test]
    fn im_strategy_gives_no_filtering_power() {
        let (chain, user) = setup(95);
        let mut rng = StdRng::seed_from_u64(96);
        let chaffs = ImStrategy.generate(&chain, &user, 4, &mut rng).unwrap();
        let mut observed = vec![user];
        observed.extend(chaffs);
        let detector = AdvancedDetector::new(&ImStrategy);
        let survivors = detector.surviving_candidates(&chain, &observed);
        assert_eq!(survivors.len(), 5, "nothing can be filtered");
        // The decision must coincide with the basic ML detector's.
        let adv = detector.detect(&chain, &observed).unwrap();
        let basic = MlDetector.detect(&chain, &observed).unwrap();
        assert_eq!(adv, basic);
    }

    #[test]
    fn robust_randomization_usually_survives_the_filter() {
        let mut rng = StdRng::seed_from_u64(97);
        let mut chaff_survived = 0;
        let runs = 20;
        for seed in 0..runs {
            let (chain, user) = setup(200 + seed);
            let chaffs = RmlStrategy.generate(&chain, &user, 2, &mut rng).unwrap();
            let mut observed = vec![user];
            observed.extend(chaffs);
            let detector = AdvancedDetector::new(&RmlStrategy);
            let survivors = detector.surviving_candidates(&chain, &observed);
            if survivors.iter().any(|&u| u != 0) {
                chaff_survived += 1;
            }
        }
        assert!(
            chaff_survived >= runs * 3 / 4,
            "chaff survived in {chaff_survived}/{runs} runs"
        );
    }

    #[test]
    fn prefix_detection_matches_full_detection_at_horizon() {
        let (chain, user) = setup(98);
        let mut rng = StdRng::seed_from_u64(99);
        let chaffs = OoStrategy.generate(&chain, &user, 1, &mut rng).unwrap();
        let mut observed = vec![user];
        observed.extend(chaffs);
        let detector = AdvancedDetector::new(&OoStrategy);
        let full = detector.detect(&chain, &observed).unwrap();
        let prefixes = detector.detect_prefixes(&chain, &observed).unwrap();
        assert_eq!(prefixes.last().unwrap(), &full);
    }

    #[test]
    fn all_filtered_falls_back_to_random_guess() {
        // Observe only manufactured trajectories: user not present.
        let (chain, user) = setup(100);
        let gamma = MlStrategy.deterministic_map(&chain, &user).unwrap();
        let observed = vec![gamma.clone(), gamma];
        let detector = AdvancedDetector::new(&MlStrategy);
        let d = detector.detect(&chain, &observed).unwrap();
        assert_eq!(d.tie_set(), &[0, 1]);
    }
}

//! The basic maximum-likelihood eavesdropper (eq. 1), full-trajectory
//! and per-prefix variants.

use super::{argmax_set, Detection};
use crate::{CoreError, Result};
use chaff_markov::{MarkovChain, Trajectory};

/// The basic eavesdropper: a maximum-likelihood detector (eq. 1).
///
/// Knows the user's mobility model (transition matrix and steady state,
/// e.g. from profiling typical users) but not the chaff-control strategy.
/// Among the observed trajectories it picks the one with the largest
/// likelihood `π(x_1) ∏ P(x_t | x_{t−1})`; under equal priors this is the
/// maximum-a-posteriori choice.
///
/// # Example
///
/// ```
/// use chaff_core::detector::MlDetector;
/// use chaff_markov::{MarkovChain, Trajectory, TransitionMatrix};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let m = TransitionMatrix::from_rows(vec![vec![0.9, 0.1], vec![0.3, 0.7]])?;
/// let chain = MarkovChain::new(m)?;
/// let likely = Trajectory::from_indices([0, 0, 0]);
/// let unlikely = Trajectory::from_indices([0, 1, 0]);
/// let d = MlDetector.detect(&chain, &[unlikely, likely])?;
/// assert_eq!(d.tie_set(), &[1]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MlDetector;

impl MlDetector {
    /// Detects over full trajectories.
    ///
    /// # Errors
    ///
    /// Returns an error when no trajectories are supplied, when they are
    /// empty, or when their lengths differ.
    pub fn detect(&self, chain: &MarkovChain, observed: &[Trajectory]) -> Result<Detection> {
        let scores = full_log_likelihoods(chain, observed)?;
        Ok(Detection::new(argmax_set(&scores, None)))
    }

    /// Detects once per slot using trajectory prefixes: element `t` of the
    /// result is the decision an eavesdropper would make after observing
    /// slots `0..=t`.
    ///
    /// Runs in `O(N · T)` total — cumulative log-likelihoods are updated
    /// incrementally. For fleet-scale populations prefer
    /// [`BatchPrefixDetector`](super::BatchPrefixDetector), which produces
    /// identical detections from a cached likelihood table in parallel
    /// shards.
    ///
    /// # Errors
    ///
    /// Same conditions as [`detect`](MlDetector::detect).
    pub fn detect_prefixes(
        &self,
        chain: &MarkovChain,
        observed: &[Trajectory],
    ) -> Result<Vec<Detection>> {
        self.detect_prefixes_among(chain, observed, None)
    }

    /// [`detect_prefixes`](MlDetector::detect_prefixes) restricted to a
    /// candidate subset — the second stage of the advanced eavesdropper.
    /// Exposed so evaluation code can combine cached strategy-map filters
    /// with prefix detection.
    ///
    /// A `None` candidate set means all indices are candidates.
    ///
    /// # Errors
    ///
    /// Same conditions as [`detect`](MlDetector::detect).
    pub fn detect_prefixes_among(
        &self,
        chain: &MarkovChain,
        observed: &[Trajectory],
        candidates: Option<&[usize]>,
    ) -> Result<Vec<Detection>> {
        let horizon = validate_observations(chain, observed)?;
        let n = observed.len();
        let mut cumulative = vec![0.0f64; n];
        let steps: Vec<Vec<f64>> = observed
            .iter()
            .map(|x| chain.step_log_likelihoods(x))
            .collect();
        let mut out = Vec::with_capacity(horizon);
        for t in 0..horizon {
            for (acc, step) in cumulative.iter_mut().zip(&steps) {
                // -inf + inf cannot occur: increments are log-probs <= 0.
                *acc += step[t];
            }
            out.push(Detection::new(argmax_set(&cumulative, candidates)));
        }
        Ok(out)
    }
}

/// Validates an observation set: non-empty, equal-length, in-range
/// trajectories. Returns the common horizon.
///
/// Shared by every detector front-end so batch and per-trajectory paths
/// reject exactly the same inputs.
pub(crate) fn validate_observations(chain: &MarkovChain, observed: &[Trajectory]) -> Result<usize> {
    if observed.is_empty() {
        return Err(CoreError::NoTrajectories);
    }
    let horizon = observed[0].len();
    if horizon == 0 {
        return Err(CoreError::EmptyTrajectory);
    }
    for x in observed {
        if x.len() != horizon {
            return Err(CoreError::LengthMismatch {
                expected: horizon,
                found: x.len(),
            });
        }
        for cell in x.iter() {
            if cell.index() >= chain.num_states() {
                return Err(CoreError::CellOutOfRange {
                    cell: cell.index(),
                    states: chain.num_states(),
                });
            }
        }
    }
    Ok(horizon)
}

/// Validates the observation set and returns full-trajectory
/// log-likelihood scores.
pub(crate) fn full_log_likelihoods(
    chain: &MarkovChain,
    observed: &[Trajectory],
) -> Result<Vec<f64>> {
    validate_observations(chain, observed)?;
    Ok(observed.iter().map(|x| chain.log_likelihood(x)).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use chaff_markov::TransitionMatrix;

    fn chain() -> MarkovChain {
        let m = TransitionMatrix::from_rows(vec![vec![0.9, 0.1], vec![0.3, 0.7]]).unwrap();
        MarkovChain::new(m).unwrap()
    }

    #[test]
    fn picks_highest_likelihood() {
        let c = chain();
        let stay = Trajectory::from_indices([0, 0, 0, 0]);
        let bounce = Trajectory::from_indices([0, 1, 0, 1]);
        let d = MlDetector.detect(&c, &[bounce, stay]).unwrap();
        assert_eq!(d.tie_set(), &[1]);
    }

    #[test]
    fn identical_trajectories_tie() {
        let c = chain();
        let x = Trajectory::from_indices([0, 0, 1]);
        let d = MlDetector.detect(&c, &[x.clone(), x.clone(), x]).unwrap();
        assert_eq!(d.tie_set(), &[0, 1, 2]);
    }

    #[test]
    fn prefix_detection_can_switch_over_time() {
        let c = chain();
        // a starts in the likelier cell but then keeps paying the 0.1-cost
        // transition; b starts worse but self-loops cheaply.
        let a = Trajectory::from_indices([0, 1, 0, 1, 0, 1]);
        let b = Trajectory::from_indices([1, 1, 1, 1, 1, 1]);
        let detections = MlDetector.detect_prefixes(&c, &[a, b]).unwrap();
        assert_eq!(detections[0].tie_set(), &[0]); // pi(0) = 0.75 > pi(1)
        assert_eq!(detections[5].tie_set(), &[1]); // b has overtaken
    }

    #[test]
    fn prefix_detection_last_slot_matches_full_detection() {
        let c = chain();
        let xs = vec![
            Trajectory::from_indices([0, 0, 1, 1]),
            Trajectory::from_indices([1, 0, 0, 0]),
            Trajectory::from_indices([0, 1, 1, 0]),
        ];
        let full = MlDetector.detect(&c, &xs).unwrap();
        let prefixes = MlDetector.detect_prefixes(&c, &xs).unwrap();
        assert_eq!(prefixes.last().unwrap(), &full);
    }

    #[test]
    fn prefix_detection_rejects_what_detect_rejects() {
        let c = chain();
        assert!(matches!(
            MlDetector.detect_prefixes(&c, &[]),
            Err(CoreError::NoTrajectories)
        ));
        assert!(matches!(
            MlDetector.detect_prefixes(&c, &[Trajectory::new()]),
            Err(CoreError::EmptyTrajectory)
        ));
        let short = Trajectory::from_indices([0]);
        let long = Trajectory::from_indices([0, 1]);
        assert!(matches!(
            MlDetector.detect_prefixes(&c, &[long.clone(), short]),
            Err(CoreError::LengthMismatch { .. })
        ));
        let out = Trajectory::from_indices([0, 5]);
        assert!(matches!(
            MlDetector.detect_prefixes_among(&c, &[long, out], None),
            Err(CoreError::CellOutOfRange { .. })
        ));
    }

    #[test]
    fn error_cases() {
        let c = chain();
        assert!(matches!(
            MlDetector.detect(&c, &[]),
            Err(CoreError::NoTrajectories)
        ));
        assert!(matches!(
            MlDetector.detect(&c, &[Trajectory::new()]),
            Err(CoreError::EmptyTrajectory)
        ));
        let short = Trajectory::from_indices([0]);
        let long = Trajectory::from_indices([0, 1]);
        assert!(matches!(
            MlDetector.detect(&c, &[long, short]),
            Err(CoreError::LengthMismatch { .. })
        ));
        let out = Trajectory::from_indices([5]);
        assert!(matches!(
            MlDetector.detect(&c, &[out]),
            Err(CoreError::CellOutOfRange { .. })
        ));
    }

    #[test]
    fn impossible_trajectories_lose_to_possible_ones() {
        let m = TransitionMatrix::from_rows(vec![vec![0.0, 1.0], vec![0.5, 0.5]]).unwrap();
        let c = MarkovChain::new(m).unwrap();
        let impossible = Trajectory::from_indices([0, 0]); // P(0->0) = 0
        let possible = Trajectory::from_indices([0, 1]);
        let d = MlDetector.detect(&c, &[impossible, possible]).unwrap();
        assert_eq!(d.tie_set(), &[1]);
    }
}
